package bcc

// One benchmark per paper table/figure (regenerating the artifact at reduced
// Monte-Carlo budgets and reporting its headline metric), plus micro
// benchmarks for the kernels on the training hot path.
//
// Full-size artifact regeneration is the bccbench command's job; these
// benches keep every experiment exercised and tracked by `go test -bench`.

import (
	"context"
	"fmt"
	"strconv"
	"testing"

	"bcc/internal/cluster"
	"bcc/internal/coding"
	"bcc/internal/core"
	"bcc/internal/coupon"
	"bcc/internal/experiments"
	"bcc/internal/rngutil"
	"bcc/internal/vecmath"
)

func benchOptions() experiments.Options {
	return experiments.Options{Quick: true, Seed: 1}
}

func parseCell(b *testing.B, tab *experiments.Table, row, col int) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		b.Fatalf("cell (%d,%d)=%q: %v", row, col, tab.Rows[row][col], err)
	}
	return v
}

// BenchmarkFig2Tradeoff regenerates the Fig. 2 threshold-vs-load tradeoff.
func BenchmarkFig2Tradeoff(b *testing.B) {
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Fig2(context.Background(), benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		last = tab
	}
	// First row: smallest r; report the BCC measured threshold.
	b.ReportMetric(parseCell(b, last, 0, 3), "K_bcc_measured")
}

// BenchmarkFig4RunningTime regenerates the Fig. 4 running-time comparison.
func BenchmarkFig4RunningTime(b *testing.B) {
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Fig4(context.Background(), benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		last = tab
	}
	// Rows: uncoded, cyclicrep, bcc. Report BCC's total and its speedup.
	bccTotal := parseCell(b, last, 2, 4)
	uncodedTotal := parseCell(b, last, 0, 4)
	b.ReportMetric(bccTotal, "bcc_total_s")
	b.ReportMetric(100*(1-bccTotal/uncodedTotal), "bcc_speedup_pct")
}

// BenchmarkTable1Breakdown regenerates the Table I breakdown.
func BenchmarkTable1Breakdown(b *testing.B) {
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Table1(context.Background(), benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		last = tab
	}
	b.ReportMetric(parseCell(b, last, 2, 1), "bcc_recovery_threshold")
	b.ReportMetric(parseCell(b, last, 2, 2), "bcc_comm_s")
}

// BenchmarkTable2Breakdown regenerates the Table II breakdown.
func BenchmarkTable2Breakdown(b *testing.B) {
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Table2(context.Background(), benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		last = tab
	}
	b.ReportMetric(parseCell(b, last, 2, 4), "bcc_total_s")
}

// BenchmarkFig5Heterogeneous regenerates the Fig. 5 LB-vs-BCC comparison.
func BenchmarkFig5Heterogeneous(b *testing.B) {
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Fig5(context.Background(), benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		last = tab
	}
	lb := parseCell(b, last, 0, 1)
	gbcc := parseCell(b, last, 1, 1)
	b.ReportMetric(100*(1-gbcc/lb), "reduction_pct")
}

// BenchmarkTheorem1Check regenerates the Theorem 1 achievability check.
func BenchmarkTheorem1Check(b *testing.B) {
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Theorem1(context.Background(), benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		last = tab
	}
	b.ReportMetric(parseCell(b, last, 0, 3), "measured_K_r2")
}

// BenchmarkTheorem2Bounds regenerates the Theorem 2 bracket.
func BenchmarkTheorem2Bounds(b *testing.B) {
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Theorem2(context.Background(), benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		last = tab
	}
	b.ReportMetric(parseCell(b, last, 3, 1), "bound_ratio")
}

// BenchmarkCommLoad regenerates the communication-load comparison.
func BenchmarkCommLoad(b *testing.B) {
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		tab, err := experiments.CommLoad(context.Background(), benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		last = tab
	}
	b.ReportMetric(parseCell(b, last, 0, 2), "bcc_load_r2")
}

// BenchmarkFractionalRepetition regenerates the FR early-finish ablation.
func BenchmarkFractionalRepetition(b *testing.B) {
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Fractional(context.Background(), benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		last = tab
	}
	b.ReportMetric(parseCell(b, last, 0, 3), "fr_measured_K")
}

// BenchmarkTailBound regenerates the Lemma 2 tail-bound validation.
func BenchmarkTailBound(b *testing.B) {
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		tab, err := experiments.TailBound(context.Background(), benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		last = tab
	}
	b.ReportMetric(parseCell(b, last, 1, 2), "empirical_tail_eps025")
}

// BenchmarkMultiBatchAblation regenerates the one-batch design ablation.
func BenchmarkMultiBatchAblation(b *testing.B) {
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		tab, err := experiments.MultiBatch(context.Background(), benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		last = tab
	}
	b.ReportMetric(parseCell(b, last, 0, 4), "k1_measured_K")
}

// BenchmarkApproxCoverage regenerates the approximate-coverage tradeoff.
func BenchmarkApproxCoverage(b *testing.B) {
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Approx(context.Background(), benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		last = tab
	}
	b.ReportMetric(parseCell(b, last, 0, 2), "phi06_avg_K")
}

// BenchmarkSkewRobustness regenerates the skewed-selection study.
func BenchmarkSkewRobustness(b *testing.B) {
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Skew(context.Background(), benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		last = tab
	}
	b.ReportMetric(parseCell(b, last, len(last.Rows)-1, 2), "zipf15_measured_K")
}

// BenchmarkHeteroTrain regenerates the end-to-end §IV training comparison.
func BenchmarkHeteroTrain(b *testing.B) {
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		tab, err := experiments.HeteroTrain(context.Background(), benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		last = tab
	}
	lb := parseCell(b, last, 0, 1)
	g := parseCell(b, last, 1, 1)
	b.ReportMetric(100*(1-g/lb), "speedup_pct")
}

// BenchmarkConvergence regenerates the wall-clock convergence comparison.
func BenchmarkConvergence(b *testing.B) {
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Convergence(context.Background(), benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		last = tab
	}
	b.ReportMetric(parseCell(b, last, 2, 3), "bcc_time_to_target_s")
}

// BenchmarkScaling regenerates the cluster-size scaling study.
func BenchmarkScaling(b *testing.B) {
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Scaling(context.Background(), benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		last = tab
	}
	b.ReportMetric(parseCell(b, last, 0, 2), "bcc_total_s_smallest_n")
}

// ---------------------------------------------------------------------------
// Micro benchmarks: scheme encode/decode and training-loop kernels
// ---------------------------------------------------------------------------

func benchPlan(b *testing.B, scheme string, m, n, r int) (coding.Plan, [][]float64) {
	return benchPlanDim(b, scheme, m, n, r, benchGradDim)
}

func benchPlanDim(b *testing.B, scheme string, m, n, r, dim int) (coding.Plan, [][]float64) {
	b.Helper()
	s, err := coding.Lookup(scheme)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := s.Plan(m, n, r, rngutil.New(1))
	if err != nil {
		b.Skipf("%s rejects m=%d n=%d r=%d: %v", scheme, m, n, r, err)
	}
	rng := rngutil.New(2)
	gs := make([][]float64, m)
	for u := range gs {
		g := make([]float64, dim)
		for t := range g {
			g[t] = rng.Normal()
		}
		gs[u] = g
	}
	return plan, gs
}

// benchGradDim is the payload dimension of the micro benchmarks (the
// paper's scenario-one gradient is p=1024 per partial gradient).
const benchGradDim = 1024

func benchEncodeDecode(b *testing.B, scheme string) {
	plan, gs := benchPlan(b, scheme, 50, 50, 10)
	assign := plan.Assignments()
	order := rngutil.New(3).Perm(50)
	dst := make([]float64, benchGradDim)
	dec := plan.NewDecoder()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec.Reset()
		for _, w := range order {
			parts := make([][]float64, len(assign[w]))
			for k, u := range assign[w] {
				parts[k] = gs[u]
			}
			for _, msg := range coding.Encode(plan, w, parts) {
				dec.Offer(msg)
			}
			if dec.Decodable() {
				break
			}
		}
		if err := dec.DecodeInto(dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecode isolates the master's decode path for every registered
// scheme over a payload-size sweep (p = 1024 is the paper's scenario-one
// gradient, p = 16384 a realistic sparse-workload dimension where the
// decode combination dominates): messages are encoded once up front, then
// each round resets the reused decoder, offers messages until decodable and
// decodes in place. allocs/op is reported; the steady-state decode of the
// coverage schemes is allocation-free and the linear-coded schemes hit
// their plan-level solve caches after the first round.
func BenchmarkDecode(b *testing.B) {
	for _, scheme := range coding.Names() {
		for _, dim := range []int{1024, 16384} {
			b.Run(fmt.Sprintf("%s/p=%d", scheme, dim), func(b *testing.B) {
				benchDecodeDim(b, scheme, dim, 0)
			})
		}
	}
}

// BenchmarkDecodeParallel measures the sharded decode of the schemes whose
// combination fans out across cores, at the dimension where sharding pays.
func BenchmarkDecodeParallel(b *testing.B) {
	for _, scheme := range []string{"cyclicrep", "cyclicmds", "bccmulti"} {
		for _, par := range []int{2, 4} {
			b.Run(fmt.Sprintf("%s/p=16384/par=%d", scheme, par), func(b *testing.B) {
				benchDecodeDim(b, scheme, 16384, par)
			})
		}
	}
}

func benchDecodeDim(b *testing.B, scheme string, dim, decodePar int) {
	plan, gs := benchPlanDim(b, scheme, 50, 50, 10, dim)
	assign := plan.Assignments()
	order := rngutil.New(3).Perm(50)
	msgs := make([][]coding.Message, 50)
	for _, w := range order {
		parts := make([][]float64, len(assign[w]))
		for k, u := range assign[w] {
			parts[k] = gs[u]
		}
		msgs[w] = coding.Encode(plan, w, parts)
	}
	dec := plan.NewDecoder()
	coding.SetDecodeParallelism(dec, decodePar)
	dst := make([]float64, dim)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec.Reset()
		for _, w := range order {
			for _, msg := range msgs[w] {
				dec.Offer(msg)
			}
			if dec.Decodable() {
				break
			}
		}
		if err := dec.DecodeInto(dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeDecodeBCC measures one full encode+decode round of BCC at
// the paper's scenario-one size (m=n=50, r=10, p=1024).
func BenchmarkEncodeDecodeBCC(b *testing.B) { benchEncodeDecode(b, "bcc") }

// BenchmarkEncodeDecodeCyclicRep measures CR, whose decode solves a least-
// squares system per iteration.
func BenchmarkEncodeDecodeCyclicRep(b *testing.B) { benchEncodeDecode(b, "cyclicrep") }

// BenchmarkEncodeDecodeCyclicMDS measures the complex-coded MDS scheme.
func BenchmarkEncodeDecodeCyclicMDS(b *testing.B) { benchEncodeDecode(b, "cyclicmds") }

// BenchmarkEncodeDecodeUncoded measures the baseline.
func BenchmarkEncodeDecodeUncoded(b *testing.B) { benchEncodeDecode(b, "uncoded") }

// BenchmarkSimIteration measures full simulated training iterations
// (gradient computation + encode + DES + decode + Nesterov step).
func BenchmarkSimIteration(b *testing.B) {
	job, err := core.NewJob(core.Spec{
		Examples: 50, Workers: 50, Load: 10,
		DataPoints: 500, Dim: 256, Iterations: 1, Seed: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fresh, err := core.NewJob(core.Spec{
			Examples: 50, Workers: 50, Load: 10,
			DataPoints: 500, Dim: 256, Iterations: 10, Seed: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := fresh.Run(); err != nil {
			b.Fatal(err)
		}
	}
	_ = job
}

// BenchmarkSimIterationFaults is BenchmarkSimIteration under an active
// fault scenario: it reports how much the per-iteration fault bookkeeping
// (plan queries, reachable-worker accounting, slowdown-wrapped latency)
// adds on top of the fault-free baseline, and its allocs/op pins the fault
// path staying allocation-clean in steady state.
func BenchmarkSimIterationFaults(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fresh, err := core.NewJob(core.Spec{
			Examples: 50, Workers: 50, Load: 10,
			DataPoints: 500, Dim: 256, Iterations: 10, Seed: 4,
			FaultScenario: "flaky-tail",
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := fresh.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCouponSimulate measures the classic collector simulation used
// throughout the Monte-Carlo validations.
func BenchmarkCouponSimulate(b *testing.B) {
	rng := rngutil.New(5)
	for i := 0; i < b.N; i++ {
		coupon.SimulateDraws(100, rng)
	}
}

// BenchmarkGemv measures the dense kernel behind every gradient evaluation.
func BenchmarkGemv(b *testing.B) {
	rng := rngutil.New(6)
	a := vecmath.NewMatrix(512, 512)
	for i := range a.Data {
		a.Data[i] = rng.Normal()
	}
	x := make([]float64, 512)
	for i := range x {
		x[i] = rng.Normal()
	}
	b.SetBytes(512 * 512 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vecmath.Gemv(a, x)
	}
}

// BenchmarkParallelGemv measures the sharded variant.
func BenchmarkParallelGemv(b *testing.B) {
	rng := rngutil.New(7)
	a := vecmath.NewMatrix(2048, 512)
	for i := range a.Data {
		a.Data[i] = rng.Normal()
	}
	x := make([]float64, 512)
	for i := range x {
		x[i] = rng.Normal()
	}
	b.SetBytes(2048 * 512 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vecmath.ParallelGemv(a, x, 0)
	}
}

// BenchmarkShiftExpDraw measures the latency sampler on the sim hot path.
func BenchmarkShiftExpDraw(b *testing.B) {
	lat, err := cluster.NewShiftExp(64, []cluster.ShiftExpParams{{
		ComputeShift: 1e-5, ComputeMu: 1e4, CommShift: 1e-3, CommMu: 10,
	}}, rngutil.New(8))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lat.Compute(i%64, i, 100)
	}
}

// BenchmarkHeteroAllocate measures the P2 load allocator (golden-section +
// bisection) on the Fig. 5 cluster.
func BenchmarkHeteroAllocate(b *testing.B) {
	c := PaperFig5Cluster()
	for i := 0; i < b.N; i++ {
		if _, err := c.Allocate(3107); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRuntimes compares the per-iteration overhead of the sim, live
// and tcp transports driving the shared master engine on one fixed small
// Spec. It is the baseline for future runtime-performance PRs: the reported
// ns/cluster-iter isolates what each transport adds on top of the identical
// engine/decode/optimizer work.
func BenchmarkRuntimes(b *testing.B) {
	const iters = 5
	// The observed cases attach a counting Observer: the per-iteration hook
	// must add no measurable overhead to the engine loop (compare the
	// ns/cluster-iter of "sim" vs "sim-observed").
	cases := []struct {
		name      string
		runtime   core.Runtime
		pipelined bool
		observed  bool
	}{
		{"sim", core.RuntimeSim, false, false},
		{"sim-observed", core.RuntimeSim, false, true},
		{"live", core.RuntimeLive, false, false},
		{"live-observed", core.RuntimeLive, false, true},
		{"tcp", core.RuntimeTCP, false, false},
		// Pipelined live exercises the preemptible worker path.
		{"live-pipelined", core.RuntimeLive, true, false},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			callbacks := 0
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				spec := core.Spec{
					Examples: 8, Workers: 8, Load: 2,
					DataPoints: 64, Dim: 64, Iterations: iters,
					Seed: 11, Runtime: tc.runtime, TimeScale: 1e-9,
					Pipelined: tc.pipelined,
				}
				if tc.observed {
					spec.Observer = cluster.ObserverFuncs{
						Iteration: func(cluster.IterStats) { callbacks++ },
					}
				}
				job, err := core.NewJob(spec)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := job.Run(); err != nil {
					b.Fatal(err)
				}
			}
			if tc.observed && callbacks != b.N*iters {
				b.Fatalf("observer saw %d iterations, want %d", callbacks, b.N*iters)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*iters), "ns/cluster-iter")
		})
	}
}

// benchTCPCodec measures a full training run over loopback TCP with the
// given frame codec; the payload is a p=2048 gradient, so codec overhead is
// visible.
func benchTCPCodec(b *testing.B, codec string) {
	for i := 0; i < b.N; i++ {
		job, err := core.NewJob(core.Spec{
			Examples: 10, Workers: 10, Load: 2,
			DataPoints: 40, Dim: 2048, Iterations: 5,
			Seed: 9, Runtime: "tcp", TimeScale: 1e-9,
		})
		if err != nil {
			b.Fatal(err)
		}
		cfg := &cluster.Config{
			Plan: job.Plan, Model: job.Model, Units: job.Units, Opt: job.Opt,
			Iterations: 5,
		}
		if _, err := cluster.RunLive(cfg, cluster.LiveOptions{
			TimeScale: 1e-9, TCP: true, Codec: codec,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTCPCodecGob measures the gob frame codec end to end.
func BenchmarkTCPCodecGob(b *testing.B) { benchTCPCodec(b, "gob") }

// BenchmarkTCPCodecWire measures the compact binary frame codec end to end.
func BenchmarkTCPCodecWire(b *testing.B) { benchTCPCodec(b, "wire") }
