module bcc

go 1.24
