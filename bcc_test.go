package bcc

import (
	"bytes"
	"context"
	"errors"
	"math"
	"strings"
	"testing"
)

func TestTrainQuickstart(t *testing.T) {
	res, err := Train(Spec{
		Examples: 10, Workers: 20, Load: 2,
		DataPoints: 100, Dim: 16,
		Iterations: 10, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iters) != 10 {
		t.Fatalf("iterations %d", len(res.Iters))
	}
	if res.AvgWorkersHeard <= 0 {
		t.Fatal("no workers heard")
	}
}

func TestSchemesExported(t *testing.T) {
	names := Schemes()
	if len(names) != 9 {
		t.Fatalf("schemes: %v", names)
	}
	for _, n := range names {
		s, err := LookupScheme(n)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name() != n {
			t.Fatalf("scheme %q reports name %q", n, s.Name())
		}
	}
}

func TestTheoryHelpers(t *testing.T) {
	if h := Harmonic(5); math.Abs(h-137.0/60) > 1e-12 {
		t.Fatalf("H_5 = %v", h)
	}
	k := RecoveryThreshold(50, 10)
	if math.Abs(k-5*Harmonic(5)) > 1e-12 {
		t.Fatalf("K_BCC = %v", k)
	}
	if lb := RecoveryLowerBound(50, 10); lb != 5 {
		t.Fatalf("lower bound %v", lb)
	}
	if rt := RandomizedThreshold(50, 10); rt <= k {
		t.Fatalf("randomized %v should exceed BCC %v", rt, k)
	}
}

func TestHeteroExports(t *testing.T) {
	c := PaperFig5Cluster()
	if len(c) != 100 {
		t.Fatalf("cluster size %d", len(c))
	}
	alloc, err := c.Allocate(600)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.TotalLoad() < 600 {
		t.Fatalf("allocation %d below target", alloc.TotalLoad())
	}
}

func TestLatencyExports(t *testing.T) {
	lat, err := NewShiftExpLatency(4, []ShiftExpParams{{ComputeShift: 1, ComputeMu: 10}}, NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if c := lat.Compute(0, 0, 3); c < 3 {
		t.Fatalf("compute %v below shift", c)
	}
	var z ZeroLatency
	if z.Compute(0, 0, 100) != 0 {
		t.Fatal("zero latency should cost nothing")
	}
	f := FixedLatency{PerPoint: 2}
	if f.Compute(0, 0, 3) != 6 {
		t.Fatal("fixed latency arithmetic wrong")
	}
}

func TestRunExperimentExported(t *testing.T) {
	var buf bytes.Buffer
	tab, err := RunExperiment("tailbound", ExperimentOptions{Quick: true}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "tailbound" || buf.Len() == 0 {
		t.Fatal("experiment did not render")
	}
	ids := Experiments()
	if len(ids) < 10 || ids[0] != "fig2" {
		t.Fatalf("experiment ids: %v", ids)
	}
}

func TestParameterizedSchemeInstall(t *testing.T) {
	// Build a job, replace its plan with a custom-parameterized scheme, and
	// train.
	job, err := NewJob(Spec{
		Examples: 20, Workers: 100, Load: 4,
		DataPoints: 80, Dim: 8, Iterations: 5, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := BCCApproxScheme{Phi: 0.6}.Plan(20, 100, 4, NewRNG(14))
	if err != nil {
		t.Fatal(err)
	}
	job.Plan = plan
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	// phi = 0.6 of 5 batches -> 3 covered batches suffice; threshold well
	// below exact BCC's 5*H_5 ~ 11.4.
	if res.AvgWorkersHeard >= 11.4 {
		t.Fatalf("approx threshold %v not below exact", res.AvgWorkersHeard)
	}
}

func TestWeightedBCCPublic(t *testing.T) {
	w := make([]float64, 5)
	for i := range w {
		w[i] = float64(i + 1)
	}
	plan, err := BCCScheme{Weights: w}.Plan(20, 200, 4, NewRNG(15))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Scheme() != "bcc" {
		t.Fatalf("scheme %q", plan.Scheme())
	}
}

func TestSchemeSpecSwitch(t *testing.T) {
	// The public API must run every scheme end to end.
	for _, scheme := range Schemes() {
		res, err := Train(Spec{
			Scheme: Scheme(scheme), Examples: 12, Workers: 12, Load: 3,
			DataPoints: 48, Dim: 8, Iterations: 4, Seed: 2,
		})
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if strings.TrimSpace(scheme) == "" || len(res.Iters) != 4 {
			t.Fatalf("%s: bad result", scheme)
		}
	}
}

func TestObserverSeesEveryIterationPublic(t *testing.T) {
	// Acceptance: an Observer attached through the public Spec on a sim run
	// sees exactly Iterations OnIteration callbacks with stats identical to
	// the returned Result.Iters.
	const iterations = 9
	var got []IterStats
	res, err := Train(Spec{
		Examples: 10, Workers: 20, Load: 2,
		DataPoints: 100, Dim: 16,
		Iterations: iterations, Seed: 3, LossEvery: 1,
		Observer: ObserverFuncs{Iteration: func(st IterStats) { got = append(got, st) }},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != iterations {
		t.Fatalf("observer saw %d iterations, want %d", len(got), iterations)
	}
	for i := range got {
		if got[i] != res.Iters[i] {
			t.Fatalf("iteration %d: observer saw %+v, result holds %+v", i, got[i], res.Iters[i])
		}
	}
}

func TestTrainContextCancelPublic(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	count := 0
	res, err := TrainContext(ctx, Spec{
		Examples: 10, Workers: 20, Load: 2,
		DataPoints: 100, Dim: 16, Iterations: 50, Seed: 4,
		Observer: ObserverFuncs{Iteration: func(IterStats) {
			count++
			if count == 2 {
				cancel()
			}
		}},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || len(res.Iters) != 2 {
		t.Fatalf("want a 2-iteration partial result, got %+v", res)
	}
}

func TestSpecReachesFaultInjection(t *testing.T) {
	// DropProb/DropSeed are first-class Spec fields: on a lossy network the
	// master needs extra workers per round to reach coverage, so the
	// realized recovery threshold must not drop below the clean run's.
	clean, err := Train(Spec{
		Examples: 8, Workers: 24, Load: 2,
		DataPoints: 64, Dim: 8, Iterations: 10, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := Train(Spec{
		Examples: 8, Workers: 24, Load: 2,
		DataPoints: 64, Dim: 8, Iterations: 10, Seed: 6,
		DropProb: 0.4, DropSeed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if lossy.AvgWorkersHeard < clean.AvgWorkersHeard {
		t.Fatalf("dropping 40%% of transmissions should not lower the threshold: %v vs %v",
			lossy.AvgWorkersHeard, clean.AvgWorkersHeard)
	}
	if _, err := Train(Spec{Examples: 8, Workers: 8, DataPoints: 32, Dim: 4, Iterations: 1, Load: 1, DropProb: 2}); err == nil {
		t.Fatal("out-of-range DropProb accepted")
	}
	var oe *OptionError
	if _, err := NewJob(Spec{Scheme: "bogus", Examples: 4, Workers: 4, DataPoints: 8, Dim: 2, Iterations: 1, Load: 1}); !errors.As(err, &oe) {
		t.Fatalf("public surface does not expose OptionError: %v", err)
	}
}

func TestTypedOptionConstants(t *testing.T) {
	// The typed constants must round-trip through the registries.
	for _, s := range []Scheme{SchemeBCC, SchemeBCCApprox, SchemeBCCMulti, SchemeCyclicMDS,
		SchemeCyclicRep, SchemeFractional, SchemeRandomized, SchemeUncoded} {
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if len(Runtimes()) != 3 || len(Optimizers()) != 2 {
		t.Fatalf("registries: %v %v", Runtimes(), Optimizers())
	}
}

// TestFaultInjectionPublicAPI exercises the exported fault-injection
// surface: the scenario library listing, training under a named scenario
// and under a hand-built FaultPlan, the OnWorkerFault observer stream, and
// the explicit ErrBelowThreshold degradation.
func TestFaultInjectionPublicAPI(t *testing.T) {
	names := FaultScenarios()
	if len(names) != 6 {
		t.Fatalf("scenario library: %v, want 6 entries", names)
	}
	for _, name := range names {
		if DescribeFaultScenario(name) == "" {
			t.Fatalf("scenario %q has no description", name)
		}
	}
	if _, err := FaultScenario("nope", 8, 1); err == nil {
		t.Fatal("unknown scenario accepted")
	}

	var events []FaultEvent
	res, err := Train(Spec{
		Examples: 8, Workers: 8, Load: 4,
		DataPoints: 64, Dim: 16,
		Iterations: 6, Seed: 3,
		FaultScenario: "rolling-restart",
		Observer: ObserverFuncs{Fault: func(ev FaultEvent) {
			events = append(events, ev)
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iters) != 6 {
		t.Fatalf("faulted run recorded %d iterations", len(res.Iters))
	}
	if len(events) == 0 {
		t.Fatal("no fault events observed")
	}

	// A hand-built plan crashing the whole cluster mid-run degrades
	// explicitly with the exported sentinel (which wraps ErrStalled).
	plan := &FaultPlan{N: 8}
	for w := 0; w < 8; w++ {
		plan.Crashes = append(plan.Crashes, FaultCrash{Worker: w, At: 2})
	}
	res, err = Train(Spec{
		Examples: 8, Workers: 8, Load: 4,
		DataPoints: 64, Dim: 16,
		Iterations: 6, Seed: 3,
		Faults: plan,
	})
	if !errors.Is(err, ErrBelowThreshold) || !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrBelowThreshold wrapping ErrStalled", err)
	}
	if res == nil || len(res.Iters) != 2 {
		t.Fatalf("partial result %+v, want the 2 pre-crash iterations", res)
	}
}

func TestServicePublicAPI(t *testing.T) {
	d, err := StartService(ServiceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// One fleet worker so a tiny TCP job can be admitted end to end.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		ServeFleetWorker(ctx, d.Addr(), "facade-w0")
	}()

	c, err := DialService(d.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	spec := Spec{
		Examples: 4, Workers: 1, Load: 4,
		DataPoints: 40, Dim: 8,
		Iterations: 4, Seed: 11,
		Runtime: RuntimeTCP,
	}
	// The wire codec round-trips the spec the client will submit.
	blob, err := EncodeSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if back, err := DecodeSpec(blob); err != nil || back.Workers != 1 {
		t.Fatalf("DecodeSpec = %+v, %v", back, err)
	}

	st, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.State.Terminal() {
		t.Fatalf("state %q already terminal at submit", st.State)
	}
	fin, err := d.Wait(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != JobDone || fin.Iter != 4 {
		t.Fatalf("final = %q iter %d (err %q), want done/4", fin.State, fin.Iter, fin.Err)
	}
	if len(d.Workers()) != 1 || len(d.Jobs()) != 1 {
		t.Fatalf("workers %d jobs %d, want 1/1", len(d.Workers()), len(d.Jobs()))
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	cancel()
	<-done
}
