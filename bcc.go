package bcc

import (
	"io"

	"bcc/internal/cluster"
	"bcc/internal/coding"
	"bcc/internal/core"
	"bcc/internal/coupon"
	"bcc/internal/experiments"
	"bcc/internal/hetero"
	"bcc/internal/rngutil"
	"bcc/internal/trace"
)

// ---------------------------------------------------------------------------
// Training jobs
// ---------------------------------------------------------------------------

// Spec describes a distributed training job; see core.Spec for the full
// field documentation. Zero values select sensible defaults (scheme "bcc",
// Nesterov optimizer, the "sim" runtime). All runtimes ("sim", "live",
// "tcp") drive the same master engine over different transports; set
// Pipelined to broadcast the next query the moment an iteration decodes,
// cancelling straggler work in flight.
type Spec = core.Spec

// Job is a materialized training run; create with NewJob, execute with Run.
type Job = core.Job

// Result aggregates a run: final weights, per-iteration stats, timing
// totals (including the end-to-end TotalElapsed, which is what pipelined
// mode shrinks), and the empirical recovery threshold and communication
// load.
type Result = cluster.Result

// IterStats is one iteration's measurements (wall/comm/comp split, workers
// heard, units and bytes received).
type IterStats = cluster.IterStats

// ErrStalled is returned when every alive worker has reported and the
// gradient is still unrecoverable (too many failures for the scheme's
// redundancy). Test with errors.Is.
var ErrStalled = cluster.ErrStalled

// NewJob generates the synthetic dataset of the paper's §III-C and
// materializes a training job for the given spec.
func NewJob(spec Spec) (*Job, error) { return core.NewJob(spec) }

// Train is the one-call convenience: build the job and run it.
func Train(spec Spec) (*Result, error) {
	job, err := core.NewJob(spec)
	if err != nil {
		return nil, err
	}
	return job.Run()
}

// ---------------------------------------------------------------------------
// Schemes
// ---------------------------------------------------------------------------

// Scheme builds gradient-code plans; Plan and Decoder are the placement and
// per-iteration decoding state (see the coding package docs).
type Scheme = coding.Scheme

// Plan is a concrete data placement + code for (m, n, r).
type Plan = coding.Plan

// Decoder accumulates worker messages until the gradient sum is
// reconstructible.
type Decoder = coding.Decoder

// Message is one worker-to-master transmission.
type Message = coding.Message

// Schemes returns the names of all registered gradient-coding schemes:
// bcc, bccapprox, bccmulti, cyclicmds, cyclicrep, fractional, randomized,
// uncoded.
func Schemes() []string { return coding.Names() }

// LookupScheme resolves a scheme by name.
func LookupScheme(name string) (Scheme, error) { return coding.Lookup(name) }

// Parameterizable scheme constructors, for callers who need more than the
// registry defaults. Build a Plan and install it on a Job (job.Plan = plan)
// before Run:
//
//	plan, _ := bcc.BCCScheme{Weights: w}.Plan(m, n, r, bcc.NewRNG(1))

// BCCScheme is the paper's scheme with optional skewed batch selection.
type BCCScheme = coding.BCC

// BCCApproxScheme stops at a fraction Phi of batch coverage and rescales —
// approximate gradients at a fraction of the threshold.
type BCCApproxScheme = coding.BCCApprox

// BCCMultiScheme is the K-batches-per-worker ablation variant.
type BCCMultiScheme = coding.BCCMulti

// GeneralizedBCCScheme is the §IV heterogeneous placement with per-worker
// loads (typically from HeteroCluster.Allocate).
type GeneralizedBCCScheme = coding.GeneralizedBCC

// PartitionedScheme is the §IV load-balancing baseline: disjoint blocks
// sized by per-worker loads, master waits for every holder.
type PartitionedScheme = coding.Partitioned

// ---------------------------------------------------------------------------
// Latency models and fabric knobs
// ---------------------------------------------------------------------------

// Latency injects per-iteration broadcast/compute/upload delays.
type Latency = cluster.Latency

// ZeroLatency is a Latency with no delays.
type ZeroLatency = cluster.Zero

// FixedLatency is a deterministic latency model for exact timing tests.
type FixedLatency = cluster.Fixed

// ShiftExpParams parameterizes the paper's shift-exponential worker model
// (eq. 15).
type ShiftExpParams = cluster.ShiftExpParams

// NewShiftExpLatency builds the shift-exponential model for n workers; pass
// one parameter set for a homogeneous cluster or n sets for a heterogeneous
// one.
func NewShiftExpLatency(n int, params []ShiftExpParams, rng *RNG) (Latency, error) {
	return cluster.NewShiftExp(n, params, rng)
}

// ---------------------------------------------------------------------------
// Coupon-collector theory (Theorem 1 machinery)
// ---------------------------------------------------------------------------

// Harmonic returns the n-th harmonic number H_n.
func Harmonic(n int) float64 { return coupon.Harmonic(n) }

// RecoveryThreshold returns K_BCC(r) = ceil(m/r) * H_{ceil(m/r)}, the
// paper's eq. (2).
func RecoveryThreshold(m, r int) float64 { return coupon.BCCRecoveryThreshold(m, r) }

// RecoveryLowerBound returns the converse bound K*(r) >= m/r (Theorem 1).
func RecoveryLowerBound(m, r int) float64 { return coupon.LowerBound(m, r) }

// RandomizedThreshold returns the simple randomized scheme's expected
// recovery threshold (paper eq. 5), computed exactly.
func RandomizedThreshold(m, r int) float64 { return coupon.RandomizedRecoveryThreshold(m, r) }

// ---------------------------------------------------------------------------
// Heterogeneous clusters (paper §IV)
// ---------------------------------------------------------------------------

// HeteroWorker is one worker's shift-exponential parameters (mu, a).
type HeteroWorker = hetero.WorkerParams

// HeteroCluster models a heterogeneous cluster and exposes the generalized
// BCC machinery: load allocation (P2), LB baseline, coverage simulation and
// the Theorem 2 bounds.
type HeteroCluster = hetero.Cluster

// HeteroAllocation is the allocator's solution to problem P2.
type HeteroAllocation = hetero.Allocation

// PaperFig5Cluster returns the exact 100-worker cluster of the paper's
// Fig. 5 evaluation.
func PaperFig5Cluster() HeteroCluster { return hetero.PaperFig5Cluster() }

// ---------------------------------------------------------------------------
// Experiments
// ---------------------------------------------------------------------------

// ExperimentOptions tunes the reproduction harness (seeds, trial counts,
// full-size vs quick).
type ExperimentOptions = experiments.Options

// ExperimentTable is a rendered experiment result.
type ExperimentTable = experiments.Table

// Experiments lists the available experiment ids in presentation order
// (fig2, fig4, table1, table2, fig5, theorem1, theorem2, commload,
// fractional, tailbound).
func Experiments() []string { return experiments.Names() }

// RunExperiment regenerates one paper artifact by id, rendering it to w
// (pass nil to skip rendering) and returning the table.
func RunExperiment(id string, opt ExperimentOptions, w io.Writer) (*ExperimentTable, error) {
	return experiments.Run(id, opt, w)
}

// RunAllExperiments regenerates every artifact in order.
func RunAllExperiments(opt ExperimentOptions, w io.Writer) ([]*ExperimentTable, error) {
	return experiments.RunAll(opt, w)
}

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

// TraceRecorder captures per-iteration worker timelines on the sim runtime
// (set it on Spec.Trace) and renders ASCII Gantt charts of straggler
// behaviour.
type TraceRecorder = trace.Recorder

// ---------------------------------------------------------------------------
// Randomness
// ---------------------------------------------------------------------------

// RNG is the library's deterministic random stream (xoshiro256**); split it
// to derive independent sub-streams.
type RNG = rngutil.RNG

// NewRNG returns a stream seeded with the given value.
func NewRNG(seed uint64) *RNG { return rngutil.New(seed) }
