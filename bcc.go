package bcc

import (
	"context"
	"io"

	"bcc/internal/cluster"
	"bcc/internal/coding"
	"bcc/internal/core"
	"bcc/internal/coupon"
	"bcc/internal/dataset"
	"bcc/internal/experiments"
	"bcc/internal/faults"
	"bcc/internal/hetero"
	"bcc/internal/rngutil"
	"bcc/internal/service"
	"bcc/internal/trace"
	"bcc/internal/vecmath"
)

// ---------------------------------------------------------------------------
// Training jobs
// ---------------------------------------------------------------------------

// Spec describes a distributed training job; see core.Spec for the full
// field documentation. Zero values select sensible defaults (SchemeBCC,
// Nesterov optimizer, the sim runtime). All runtimes drive the same master
// engine over different transports; set Pipelined to broadcast the next
// query the moment an iteration decodes, cancelling straggler work in
// flight. The run-lifecycle fields — Observer, StopWhen, GradNormTol,
// CheckpointEvery/CheckpointPath, DropProb/DropSeed, ComputeParallelism,
// DecodeParallelism — are honoured identically on every runtime, and
// Density switches the synthetic generator to sparse CSR features (worker
// gradients then cost O(nnz) instead of O(rows·p)). MasterShards > 1
// partitions the master's decode + update data plane into M shards owning
// contiguous coordinate slices — bit-identical results on every runtime,
// with per-shard measurements in Result.Shards.
type Spec = core.Spec

// Job is a materialized training run; create with NewJob, execute with Run
// or RunContext (cancellable, deadline-bounded).
type Job = core.Job

// Result aggregates a run: final weights, per-iteration stats, timing
// totals (including the end-to-end TotalElapsed, which is what pipelined
// mode shrinks), and the empirical recovery threshold and communication
// load.
type Result = cluster.Result

// IterStats is one iteration's measurements (wall/comm/comp split, workers
// heard, units and bytes received).
type IterStats = cluster.IterStats

// ShardStats is one master shard's cumulative measurements on a sharded run
// (Spec.MasterShards > 1): the owned coordinate range [Lo, Hi), decode time,
// bytes attributed to the slice, and queue depth. Reported in Result.Shards
// and, for service jobs, in JobStatus.Shards and the /metrics gauges.
type ShardStats = cluster.ShardStats

// ErrStalled is returned when every alive worker has reported and the
// gradient is still unrecoverable (too many failures for the scheme's
// redundancy). Test with errors.Is.
var ErrStalled = cluster.ErrStalled

// ErrBelowThreshold is returned when dead workers or the fault plan leave
// an iteration with fewer reachable workers than the scheme can possibly
// decode from: the run degrades explicitly before the doomed iteration,
// keeping the completed iterations as a partial Result. It also matches
// ErrStalled under errors.Is.
var ErrBelowThreshold = cluster.ErrBelowThreshold

// NewJob generates the synthetic dataset of the paper's §III-C and
// materializes a training job for the given spec. Misconfigured options —
// unknown Scheme/Optimizer/Runtime, out-of-range DropProb — fail here with
// an *OptionError instead of deep inside the run.
func NewJob(spec Spec) (*Job, error) { return core.NewJob(spec) }

// Train is the one-call convenience: build the job and run it.
func Train(spec Spec) (*Result, error) { return TrainContext(context.Background(), spec) }

// TrainContext is Train bounded by a context: cancellation or deadline
// expiry ends the run early and returns the partial Result of the
// iterations already completed alongside ctx's error.
func TrainContext(ctx context.Context, spec Spec) (*Result, error) {
	job, err := core.NewJob(spec)
	if err != nil {
		return nil, err
	}
	return job.RunContext(ctx)
}

// ---------------------------------------------------------------------------
// Datasets: sparse storage and real data
// ---------------------------------------------------------------------------

// Dataset is a fixed design matrix with +-1 labels; the feature matrix is
// an AnyMatrix (dense or CSR — gradients cost O(nnz) on the latter).
type Dataset = dataset.Dataset

// AnyMatrix is the matrix abstraction the gradient kernels run against;
// DenseMatrix and CSRMatrix implement it.
type AnyMatrix = vecmath.AnyMatrix

// DenseMatrix is row-major dense storage.
type DenseMatrix = vecmath.Matrix

// CSRMatrix is compressed-sparse-row storage with O(nnz) kernels.
type CSRMatrix = vecmath.CSR

// LoadLIBSVM reads a LIBSVM-format sparse dataset ("label idx:val ...",
// 1-based ascending indices) straight into CSR storage. Labels are mapped
// to {-1, +1} by sign. Use PadDim if the model dimension exceeds the
// largest index present in the file.
func LoadLIBSVM(r io.Reader) (*Dataset, error) { return dataset.LoadLIBSVM(r) }

// WriteLIBSVM serializes a dataset in LIBSVM format (O(nnz) for CSR data).
func WriteLIBSVM(w io.Writer, d *Dataset) error { return dataset.WriteLIBSVM(w, d) }

// PadDim widens a loaded dataset's feature dimension to at least dim.
func PadDim(d *Dataset, dim int) *Dataset { return dataset.PadDim(d, dim) }

// NewJobWithData materializes a training job over a caller-provided dataset
// (e.g. one loaded with LoadLIBSVM) instead of the synthetic generator; the
// placement randomness derives from spec.Seed. Spec.DataPoints/Dim/Density
// are ignored in favour of the dataset's own shape.
func NewJobWithData(spec Spec, ds *Dataset) (*Job, error) {
	rng := rngutil.New(spec.Seed)
	rng.Split() // data stream (unused here); keeps placement aligned with NewJob
	return core.NewJobWithData(spec, ds, rng.Split())
}

// ---------------------------------------------------------------------------
// Run lifecycle: typed options, observers, early stopping
// ---------------------------------------------------------------------------

// Scheme, Optimizer and Runtime are typed option values for the Spec.
// Untyped string constants still assign directly (Spec{Scheme: "bcc"}
// compiles unchanged); the typed constants below make valid values
// discoverable and let Validate/NewJob reject misconfiguration with one
// error shape, *OptionError.
type (
	// Scheme names a registered gradient-coding scheme.
	Scheme = core.Scheme
	// Optimizer names a registered update rule.
	Optimizer = core.Optimizer
	// Runtime names a registered execution substrate.
	Runtime = core.Runtime
	// Payload names a comm-plane payload codec.
	Payload = core.Payload
)

// The registered gradient-coding schemes.
const (
	SchemeBCC        = core.SchemeBCC
	SchemeBCCApprox  = core.SchemeBCCApprox
	SchemeBCCMulti   = core.SchemeBCCMulti
	SchemeCyclicMDS  = core.SchemeCyclicMDS
	SchemeCyclicRep  = core.SchemeCyclicRep
	SchemeFractional = core.SchemeFractional
	SchemeNested     = core.SchemeNested
	SchemeRandomized = core.SchemeRandomized
	SchemeUncoded    = core.SchemeUncoded
)

// The registered optimizers.
const (
	OptimizerNesterov = core.OptimizerNesterov
	OptimizerGD       = core.OptimizerGD
)

// The registered runtimes.
const (
	RuntimeSim  = core.RuntimeSim
	RuntimeLive = core.RuntimeLive
	RuntimeTCP  = core.RuntimeTCP
)

// The registered payload codecs (Spec.Payload): raw64 is the lossless
// default; f32 and topk trade gradient precision for wire bytes while
// staying bit-for-bit deterministic across runtimes.
const (
	PayloadRaw64 = core.PayloadRaw64
	PayloadF32   = core.PayloadF32
	PayloadTopK  = core.PayloadTopK
)

// OptionError reports a Spec field holding an invalid value (unknown
// scheme/optimizer/runtime name, out-of-range knob). Retrieve with
// errors.As to inspect the field name and the known values.
type OptionError = core.OptionError

// Optimizers lists the registered optimizer names.
func Optimizers() []Optimizer { return core.Optimizers() }

// Runtimes lists the registered runtime names.
func Runtimes() []Runtime { return core.Runtimes() }

// Payloads lists the registered payload codec names.
func Payloads() []Payload { return core.Payloads() }

// Observer receives lifecycle callbacks — OnDecode at each iteration's
// decode instant, OnIteration after each completed iteration, OnRunEnd with
// the final (possibly partial) Result — synchronously from the master
// engine, identically on every runtime. Set it on Spec.Observer.
type Observer = cluster.Observer

// ObserverFuncs adapts free functions to Observer; nil fields are no-ops.
type ObserverFuncs = cluster.ObserverFuncs

// DecodeEvent describes the instant an iteration's gradient became
// decodable: the paper's "recovery threshold reached" moment.
type DecodeEvent = cluster.DecodeEvent

// CombineObservers fans callbacks out to several observers in order.
func CombineObservers(obs ...Observer) Observer { return cluster.MultiObserver(obs...) }

// ---------------------------------------------------------------------------
// Deterministic fault injection
// ---------------------------------------------------------------------------

// FaultPlan deterministically schedules per-worker, per-iteration fault
// events — crashes and restarts, transient slowdown windows, master-side
// partition windows and correlated drop bursts — all derived from a single
// seed, so the sim, live and tcp runtimes replay identical fault sequences.
// Set one on Spec.Faults (or name a library scenario via
// Spec.FaultScenario). Scheduled events reach Spec.Observer through
// OnWorkerFault.
type FaultPlan = faults.Plan

// The FaultPlan rule types: FaultCrash takes a worker down at an iteration
// (permanently, or restarting after k iterations), FaultSlowdown multiplies
// a worker's compute/upload latency inside (optionally recurring) iteration
// windows, FaultPartition makes a contiguous worker range unreachable from
// the master for an iteration span, and FaultDropBursts injects correlated
// message-loss bursts.
type (
	FaultCrash      = faults.Crash
	FaultSlowdown   = faults.Slowdown
	FaultPartition  = faults.Partition
	FaultDropBursts = faults.DropBursts
)

// FaultEvent is one entry of a run's deterministic fault-event trace,
// delivered to Observer.OnWorkerFault.
type FaultEvent = faults.Event

// FaultScenarios lists the named fault-scenario library: steady,
// burst-drop, flaky-tail, partition, rolling-restart, slow-decile.
func FaultScenarios() []string { return faults.Names() }

// FaultScenario builds a library scenario's plan for an n-worker cluster;
// the schedule is fully determined by (name, n, seed). DescribeFaultScenario
// returns its one-line description.
func FaultScenario(name string, n int, seed uint64) (*FaultPlan, error) {
	return faults.Scenario(name, n, seed)
}

// DescribeFaultScenario returns a named scenario's one-line description
// ("" for unknown names).
func DescribeFaultScenario(name string) string { return faults.Describe(name) }

// ---------------------------------------------------------------------------
// Schemes
// ---------------------------------------------------------------------------

// SchemeBuilder builds gradient-code plans; Plan and Decoder are the
// placement and per-iteration decoding state (see the coding package docs).
// Breaking rename: this interface was previously exported as bcc.Scheme,
// which now names the typed option value above.
type SchemeBuilder = coding.Scheme

// Plan is a concrete data placement + code for (m, n, r).
type Plan = coding.Plan

// Decoder accumulates worker messages until the gradient sum is
// reconstructible.
type Decoder = coding.Decoder

// Message is one worker-to-master transmission.
type Message = coding.Message

// Schemes returns the names of all registered gradient-coding schemes:
// bcc, bccapprox, bccmulti, cyclicmds, cyclicrep, fractional, nested,
// randomized, uncoded.
func Schemes() []string { return coding.Names() }

// LookupScheme resolves a scheme builder by name.
func LookupScheme(name string) (SchemeBuilder, error) { return coding.Lookup(name) }

// Parameterizable scheme constructors, for callers who need more than the
// registry defaults. Build a Plan and install it on a Job (job.Plan = plan)
// before Run:
//
//	plan, _ := bcc.BCCScheme{Weights: w}.Plan(m, n, r, bcc.NewRNG(1))

// BCCScheme is the paper's scheme with optional skewed batch selection.
type BCCScheme = coding.BCC

// NestedScheme builds the adaptive family: cyclic-repetition gradient codes
// at every redundancy level 1..r over ONE shared data placement, switchable
// mid-run through the RetunablePlan capability (SchemeNested in a Spec).
type NestedScheme = coding.Nested

// RetunablePlan is the capability a multi-level plan exposes for mid-run
// redundancy switching: level bounds, the active level, SetLevel, and
// AtLevel views. NestedScheme plans implement it; Spec.AdaptRedundancy
// drives it automatically via the built-in controller.
type RetunablePlan = coding.Retunable

// Controller decides each iteration's redundancy level on a retunable plan
// from per-iteration telemetry; set one on cluster.Config.Controller when
// driving the engine directly, or use Spec.AdaptRedundancy for the built-in
// AIMD controller.
type Controller = cluster.Controller

// ControllerTelemetry is the per-iteration snapshot a Controller decides
// from: fleet health (down/lost/slow counts from the deterministic fault
// plan) plus the plan's level bounds and active level.
type ControllerTelemetry = cluster.Telemetry

// AIMDController is the built-in straggler-tracking controller: it jumps
// the redundancy level up immediately when the straggler tail grows and
// steps it down one level after Window consecutive over-provisioned
// iterations.
type AIMDController = cluster.AIMDController

// BCCApproxScheme stops at a fraction Phi of batch coverage and rescales —
// approximate gradients at a fraction of the threshold.
type BCCApproxScheme = coding.BCCApprox

// BCCMultiScheme is the K-batches-per-worker ablation variant.
type BCCMultiScheme = coding.BCCMulti

// GeneralizedBCCScheme is the §IV heterogeneous placement with per-worker
// loads (typically from HeteroCluster.Allocate).
type GeneralizedBCCScheme = coding.GeneralizedBCC

// PartitionedScheme is the §IV load-balancing baseline: disjoint blocks
// sized by per-worker loads, master waits for every holder.
type PartitionedScheme = coding.Partitioned

// ---------------------------------------------------------------------------
// Latency models and fabric knobs
// ---------------------------------------------------------------------------

// Latency injects per-iteration broadcast/compute/upload delays.
type Latency = cluster.Latency

// ZeroLatency is a Latency with no delays.
type ZeroLatency = cluster.Zero

// FixedLatency is a deterministic latency model for exact timing tests.
type FixedLatency = cluster.Fixed

// ShiftExpParams parameterizes the paper's shift-exponential worker model
// (eq. 15).
type ShiftExpParams = cluster.ShiftExpParams

// NewShiftExpLatency builds the shift-exponential model for n workers; pass
// one parameter set for a homogeneous cluster or n sets for a heterogeneous
// one.
func NewShiftExpLatency(n int, params []ShiftExpParams, rng *RNG) (Latency, error) {
	return cluster.NewShiftExp(n, params, rng)
}

// ---------------------------------------------------------------------------
// Coupon-collector theory (Theorem 1 machinery)
// ---------------------------------------------------------------------------

// Harmonic returns the n-th harmonic number H_n.
func Harmonic(n int) float64 { return coupon.Harmonic(n) }

// RecoveryThreshold returns K_BCC(r) = ceil(m/r) * H_{ceil(m/r)}, the
// paper's eq. (2).
func RecoveryThreshold(m, r int) float64 { return coupon.BCCRecoveryThreshold(m, r) }

// RecoveryLowerBound returns the converse bound K*(r) >= m/r (Theorem 1).
func RecoveryLowerBound(m, r int) float64 { return coupon.LowerBound(m, r) }

// RandomizedThreshold returns the simple randomized scheme's expected
// recovery threshold (paper eq. 5), computed exactly.
func RandomizedThreshold(m, r int) float64 { return coupon.RandomizedRecoveryThreshold(m, r) }

// ---------------------------------------------------------------------------
// Heterogeneous clusters (paper §IV)
// ---------------------------------------------------------------------------

// HeteroWorker is one worker's shift-exponential parameters (mu, a).
type HeteroWorker = hetero.WorkerParams

// HeteroCluster models a heterogeneous cluster and exposes the generalized
// BCC machinery: load allocation (P2), LB baseline, coverage simulation and
// the Theorem 2 bounds.
type HeteroCluster = hetero.Cluster

// HeteroAllocation is the allocator's solution to problem P2.
type HeteroAllocation = hetero.Allocation

// PaperFig5Cluster returns the exact 100-worker cluster of the paper's
// Fig. 5 evaluation.
func PaperFig5Cluster() HeteroCluster { return hetero.PaperFig5Cluster() }

// ---------------------------------------------------------------------------
// Experiments
// ---------------------------------------------------------------------------

// ExperimentOptions tunes the reproduction harness (seeds, trial counts,
// full-size vs quick).
type ExperimentOptions = experiments.Options

// ExperimentTable is a rendered experiment result.
type ExperimentTable = experiments.Table

// Experiments lists the available experiment ids in presentation order
// (fig2, fig4, table1, table2, fig5, theorem1, theorem2, commload,
// fractional, tailbound).
func Experiments() []string { return experiments.Names() }

// RunExperiment regenerates one paper artifact by id, rendering it to w
// (pass nil to skip rendering) and returning the table.
func RunExperiment(id string, opt ExperimentOptions, w io.Writer) (*ExperimentTable, error) {
	return experiments.Run(context.Background(), id, opt, w)
}

// RunExperimentContext is RunExperiment bounded by a context: cancellation
// aborts the experiment's training runs.
func RunExperimentContext(ctx context.Context, id string, opt ExperimentOptions, w io.Writer) (*ExperimentTable, error) {
	return experiments.Run(ctx, id, opt, w)
}

// RunAllExperiments regenerates every artifact in order.
func RunAllExperiments(opt ExperimentOptions, w io.Writer) ([]*ExperimentTable, error) {
	return experiments.RunAll(context.Background(), opt, w)
}

// RunAllExperimentsContext is RunAllExperiments bounded by a context.
func RunAllExperimentsContext(ctx context.Context, opt ExperimentOptions, w io.Writer) ([]*ExperimentTable, error) {
	return experiments.RunAll(ctx, opt, w)
}

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

// TraceRecorder captures per-iteration worker timelines on the sim runtime
// (set it on Spec.Trace) and renders ASCII Gantt charts of straggler
// behaviour.
type TraceRecorder = trace.Recorder

// ---------------------------------------------------------------------------
// Service: the multi-tenant training daemon
// ---------------------------------------------------------------------------

// JobID identifies a job submitted to the training service.
type JobID = core.JobID

// JobState is the lifecycle state of a submitted job:
// queued -> running -> one of the terminal states below. Test finality with
// JobState.Terminal.
type JobState = core.JobState

// The job lifecycle states reported by the service.
const (
	JobQueued   = core.JobQueued
	JobRunning  = core.JobRunning
	JobDone     = core.JobDone
	JobFailed   = core.JobFailed
	JobCanceled = core.JobCanceled
	JobDegraded = core.JobDegraded
)

// ServiceOptions configures StartService: listen addresses, queue bound,
// the per-job BufferPool cap, and lease/drain timeouts. The zero value
// listens on an ephemeral loopback port with no HTTP surface.
type ServiceOptions = service.Options

// Service is the running multi-tenant daemon: it accepts job submissions
// over the wire protocol, runs each job on its own engine instance with
// per-job isolation (BufferPool, RNG streams, fault plan, observer), and
// leases workers to TCP jobs from one shared fleet under strictly-FIFO
// admission. Stop with Drain (graceful) or Close (immediate).
type Service = service.Daemon

// StartService starts the daemon and returns once its listeners are bound;
// query the chosen ports with Addr and HTTPAddr.
func StartService(opts ServiceOptions) (*Service, error) { return service.Start(opts) }

// ServiceClient is the wire-protocol client for a running Service: Submit,
// Status, Cancel and Watch, each a lockstep request/reply on one
// connection.
type ServiceClient = service.Client

// DialService connects a client to the daemon's control address.
func DialService(addr string) (*ServiceClient, error) { return service.Dial(addr) }

// JobStatus is the service's JSON-ready snapshot of one job: state, queue
// and run times, and live training observables (iteration, gradient norm,
// payload and wire bytes, fault count).
type JobStatus = service.JobStatus

// WorkerStatus is the service's snapshot of one fleet worker: idle or
// busy, the job holding its lease, and its lifetime lease count.
type WorkerStatus = service.WorkerStatus

// ServeFleetWorker joins the daemon at addr as one fleet worker and serves
// leases until ctx is canceled or the daemon closes the fleet. The worker
// rebuilds each assigned job from the spec bytes in its Assign frame, so it
// needs no configuration beyond the address.
func ServeFleetWorker(ctx context.Context, addr, name string) error {
	return service.ServeWorker(ctx, addr, name)
}

// EncodeSpec serializes a Spec for submission over the wire. Process-local
// fields (Latency models, Observer hooks, StopWhen closures, trace
// recorders, checkpoint paths) cannot travel and are rejected here.
func EncodeSpec(s Spec) ([]byte, error) { return core.EncodeSpec(s) }

// DecodeSpec is the inverse of EncodeSpec; unknown fields are rejected and
// the result is normalized (defaults applied, options validated).
func DecodeSpec(data []byte) (Spec, error) { return core.DecodeSpec(data) }

// ---------------------------------------------------------------------------
// Randomness
// ---------------------------------------------------------------------------

// RNG is the library's deterministic random stream (xoshiro256**); split it
// to derive independent sub-streams.
type RNG = rngutil.RNG

// NewRNG returns a stream seeded with the given value.
func NewRNG(seed uint64) *RNG { return rngutil.New(seed) }
