// Package bcc is a Go implementation of "Near-Optimal Straggler Mitigation
// for Distributed Gradient Methods" (Li, Mousavi Kalan, Avestimehr,
// Soltanolkotabi — IPPS 2018, arXiv:1710.09990): the Batched Coupon's
// Collector (BCC) scheme for straggler-robust distributed gradient descent,
// together with the baselines and competing gradient-coding schemes the
// paper evaluates against, a master/worker execution fabric (discrete-event
// simulated, in-process goroutines, or real TCP sockets), and the
// heterogeneous-cluster extension of the paper's §IV.
//
// # The problem
//
// Distributed gradient descent splits m training examples over n workers;
// each iteration the master broadcasts the model, workers return partial
// gradients, and the slowest responders (stragglers) gate the iteration.
// A scheme's quality is captured by its computational load r (examples per
// worker), recovery threshold K (workers the master must hear from), and
// communication load L (gradient-sized messages received).
//
// BCC partitions the data into ceil(m/r) batches; every worker independently
// picks one batch at random and ships the SUM of its partial gradients.
// Collecting batches at the master is then a coupon-collector process, so
// K_BCC = ceil(m/r) * H_{ceil(m/r)} ~ (m/r) log(m/r) — within a log factor
// of the information-theoretic minimum m/r — while each worker transmits a
// single unit-size message (Theorem 1 of the paper).
//
// # Quick start
//
//	job, err := bcc.NewJob(bcc.Spec{
//		Examples:   50,          // m data batches
//		Workers:    50,          // n workers
//		Load:       10,          // r batches per worker
//		Scheme:     "bcc",       // or uncoded, cyclicrep, cyclicmds, fractional, randomized
//		Iterations: 100,
//		Seed:       1,
//	})
//	if err != nil { ... }
//	res, err := job.Run()
//	fmt.Println(res.AvgWorkersHeard, res.TotalWall)
//
// # Architecture: one engine, pluggable transports
//
// A single event-driven master engine owns the per-iteration lifecycle
// (broadcast query, consume arrivals, offer to the decoder, finish early on
// decodability, advance the optimizer, record stats). The three runtimes —
// Spec.Runtime RuntimeSim (discrete-event simulated), RuntimeLive (one
// goroutine per worker over channels) and RuntimeTCP (real loopback
// sockets, gob or compact binary frames) — are thin transports feeding that
// engine, so recovery thresholds and comm loads are identical across them
// for the same spec and seed. Spec.Pipelined switches every runtime from
// barrier iterations to pipelined ones: the next query is broadcast the
// instant an iteration decodes and workers cancel straggler work in flight;
// Result.TotalElapsed shows the end-to-end time either way.
//
// # Run lifecycle: contexts, observers, early stopping
//
// Because the lifecycle lives in one engine, it is controlled and observed
// in one place, identically on every runtime:
//
//   - Job.RunContext / TrainContext bound a run by a context. Cancellation
//     or deadline expiry ends the run between arrivals — even while the
//     live master blocks on a straggler — returning the partial Result of
//     the completed iterations alongside ctx.Err(); worker goroutines and
//     TCP listeners are torn down on every exit path. Job.Run and Train
//     remain the unbounded equivalents.
//   - Spec.Observer receives synchronous callbacks from the engine loop:
//     OnDecode at the instant an iteration's gradient becomes decodable
//     (the recovery-threshold moment), OnIteration after each completed
//     iteration with the exact IterStats that lands in Result.Iters, and
//     OnRunEnd with the final (possibly partial) Result. Build observers
//     from ObserverFuncs and compose them with CombineObservers.
//   - Spec.StopWhen and Spec.GradNormTol stop a run early — after the first
//     iteration satisfying the predicate, or once the decoded gradient norm
//     reaches the tolerance — returning the shorter Result without error.
//   - Spec.CheckpointEvery plus Spec.CheckpointPath auto-checkpoint the
//     optimizer during the run (atomic write, see Job.Checkpoint); a
//     crashed run resumes from the newest checkpoint via
//     Job.RestoreCheckpoint, bit-for-bit.
//
// # Fault injection: deterministic and replayable
//
// Beyond the simple knobs (Spec.Dead never-responding workers,
// Spec.DropProb i.i.d. message loss), a FaultPlan on Spec.Faults schedules
// rich per-worker, per-iteration fault events: crashes with optional
// restart-after-k (FaultCrash), transient — optionally recurring —
// slowdown windows multiplying a worker's compute/upload latency
// (FaultSlowdown), master-side partition windows over contiguous worker
// ranges (FaultPartition), and correlated drop bursts (FaultDropBursts).
// Every decision is a pure function of the plan's rules and a single seed
// — nothing is drawn at query time — so the sim, live and tcp runtimes
// replay bit-identical fault sequences, which the scenario conformance
// suite pins (identical iterates and fault-event traces across runtimes,
// barrier and pipelined).
//
// Spec.FaultScenario selects a named scenario from the library instead:
// steady, slow-decile, flaky-tail, rolling-restart, partition, burst-drop
// (FaultScenarios lists them; bcctrain/bcccluster expose them as -faults).
// A scenario is built for the job's cluster size from (name, n, seed), so
// separate processes holding the same flags agree on the schedule.
//
// Scheduled events are delivered to Observer.OnWorkerFault as FaultEvents
// in a deterministic order. When faults leave an iteration with fewer
// reachable workers than the scheme can possibly decode from (the
// converse bound coding.MinResponders), the run degrades explicitly:
// ErrBelowThreshold (wrapping ErrStalled), the completed iterations as a
// partial Result, and a "degraded" fault event — instead of wedging the
// transport until its timeout.
//
// Scheme, Optimizer and Runtime are typed option values with declared
// constants (SchemeBCC, OptimizerNesterov, RuntimeSim, ...) validated
// against their registries at NewJob time; any misconfiguration — unknown
// names, out-of-range DropProb — fails fast with a single error shape,
// *OptionError (inspect with errors.As). Plain string literals still
// assign to these fields, so Spec literals compile unchanged; note one
// breaking rename, though: bcc.Scheme previously aliased the plan-builder
// interface, which now lives under bcc.SchemeBuilder.
//
// # Adaptive redundancy: nested gradient codes
//
// A fixed gradient code pays its straggler protection every iteration.
// Scheme "nested" (SchemeNested, requires m == n) instead builds a complete
// cyclic gradient code at EVERY redundancy level L = 1..r over one shared
// data placement — worker w holds the cyclic window of its r units, level L
// uses the first L of them and tolerates any L-1 stragglers (deterministic
// threshold n-L+1). The levels are prefix-nested, so re-tuning the level
// between iterations moves no data: a worker computes a longer or shorter
// prefix of what it already holds.
//
// Spec.AdaptRedundancy hooks the AIMD redundancy controller onto the engine
// loop (CLI: -adapt on bcctrain/bcccluster): before each broadcast it reads
// the iteration's fault telemetry — down, unreachable and slowed workers per
// the fault plan — and re-tunes the level, jumping up immediately when
// stragglers appear and stepping down one level after Spec.AdaptWindow
// consecutive quiet iterations (default 3). Because the controller consults
// only the plan's pure per-iteration schedule (never clocks), the level
// trajectory is a pure function of (spec, seed, scenario), and adaptive runs
// are bit-identical across sim, live and tcp, barrier and pipelined — each
// broadcast stamps its level, so remote workers encode at exactly the level
// the master decodes. IterStats.Level records the trajectory,
// Result.LevelSwitches counts re-tunes, and service jobs export both on
// /metrics. Custom policies implement the bcc.Controller interface; the
// plan-side capability is bcc.RetunablePlan.
//
// # Performance: pooled buffers and in-place kernels
//
// The iteration data plane is allocation-free in steady state: message
// payload buffers are owned by a per-run pool, encoders write batch sums
// directly into pooled buffers (Plan.EncodeInto), one decoder per run is
// Reset between iterations and decodes in place (Decoder.DecodeInto), and
// the engine returns every consumed payload to the pool after each decode.
// The linear-coded schemes additionally cache their decode-coefficient
// solves on the Plan, keyed by the responder set (order-independent, with
// coefficients stored per worker), so the steady state solves no linear
// systems at all. On the sim runtime this amounts to 0 heap
// allocations per worker message (asserted by the allocation-regression
// tests and the CI benchmark smoke).
//
// Ownership rule of thumb: whoever takes a payload buffer out of
// circulation recycles it — the engine after a decode, the transport for
// dropped/stale/post-decode messages, the TCP worker's send path once a
// frame is serialized. Decoders only borrow buffers between Offer and
// DecodeInto/Reset. Run
//
//	go test -run '^$' -bench 'BenchmarkDecode|BenchmarkRuntimes' -benchtime 100x .
//
// to see ns/op and allocs/op per scheme and per runtime; BENCH_PR3.json
// records the baseline from when the pooled data plane landed.
//
// # Performance: the sparse compute plane
//
// Gradients evaluate against the vecmath.AnyMatrix abstraction: dense
// row-major storage (DenseMatrix) or compressed sparse rows (CSRMatrix)
// whose row kernels cost O(nnz) instead of O(rows*p). Spec.Density draws a
// seeded sparse synthetic dataset; LoadLIBSVM reads the standard sparse
// interchange format straight into CSR and NewJobWithData trains on it.
// The CSR kernels are bit-identical to the dense sweeps on matrices
// holding the same nonzeros, so runtime conformance and checkpoint
// compatibility are storage-independent.
//
// Two parallelism knobs shard hot loops across cores, both bit-exact by
// construction (element-wise sharding with deterministic fixed partitions,
// fan-out capped at GOMAXPROCS): Spec.ComputeParallelism fans a worker's
// per-example gradients out, and Spec.DecodeParallelism shards the
// master's per-iteration decode combination (cyclicrep/cyclicmds/bccmulti)
// through the optional coding.ParallelDecoder capability. Neither knob
// changes any decoded bit on any runtime — parallelism here is a
// wall-clock knob, never a numerics knob. The compute-plane sweep
//
//	bccbench -sweep            # dense-vs-CSR x density, decode x parallelism
//
// writes BENCH_PR5.json (committed: ~10x worker-gradient speedup at 5%
// density and p=16384, ~42x at 1%, with the zero-alloc steady state
// preserved).
//
// # The comm plane: payload codecs, chunked frames, measured bytes
//
// What crosses the wire each iteration is controlled by a pluggable payload
// codec, Spec.Payload (CLI: -codec on bcctrain/bcccluster):
//
//   - PayloadRaw64 (default): dense float64 payloads, bit-exact — every
//     conformance golden and checkpoint is unchanged under it.
//   - PayloadF32: query and reply vectors quantized to float32 on the wire
//     (~2x smaller). The canonical transform float64(float32(v)) is applied
//     by EVERY runtime — the simulator and the in-process channels transform
//     values exactly where the TCP serializer would — so a given
//     (spec, seed, codec) decodes to bit-identical iterates whether or not
//     bytes actually cross a socket.
//   - PayloadTopK: each reply vector keeps only its K largest-magnitude
//     coordinates (Spec.TopK, default ceil(p/16)) as sorted index+value
//     pairs; selection runs on raw float64 magnitudes with ties broken
//     toward the lower index, so all runtimes keep the same set. Queries
//     stay dense (sparsifying the iterate would change the algorithm).
//
// On the TCP runtime's compact binary frames, payload vectors stream in
// fixed-size chunks (Spec.WireChunk elements, default 512 = 4 KiB);
// chunking is pure staging — the byte stream is identical for every chunk
// size — and the master can fold each decoded chunk slice as it arrives
// (wire.Reader.ReadReplyChunks over coding.SliceDecoder). The TCP handshake
// carries the codec, K and chunk size and rejects mismatched processes at
// connect time. The simulator models the reduced payload: upload and
// ingress-drain latencies scale by the codec's byte fraction.
//
// Accounting is split honestly in Result: IterStats.Bytes/Result.TotalBytes
// stay the modelled payload byte counts (codec-aware, comparable across all
// runtimes), while IterStats.WireBytesIn/Out and Result.TotalWireIn/Out
// report bytes MEASURED at the socket layer — framing included — on the
// TCP runtime, and zero elsewhere. The lossy codecs preserve the zero
// steady-state-allocation invariant (selection scratch and staging buffers
// are per-connection and reused); BENCH_PR6.json records the committed
// sweep: reply traffic at ~50% of raw64 under f32 and ~6% (16x) under
// top-K at K=p/16. On a zero-latency loopback the byte savings buy no
// transfer time, so the sweep's wall column only bounds codec CPU overhead
// (f32 is free; top-K selection costs O(p log K) per reply) — the latency
// win of smaller payloads appears when transfer time is real, which the
// simulator models by scaling upload/ingress latency with the byte
// fraction.
//
// # Performance: the sharded master
//
// Spec.MasterShards = M > 1 partitions the master's per-iteration data plane
// — decode, gradient scaling, optimizer update — into M shards, each owning
// a contiguous slice of the p model coordinates (CLI: -master-shards on
// bcctrain/bcccluster). The shard map is deterministic: [0, p) is cut at
// wire-chunk boundaries (Spec.WireChunk, default 512 elements) into M
// contiguous ranges, whole chunks distributed as evenly as possible with
// earlier shards taking the extra chunk; with more shards than chunks the
// tail shards own empty, no-op ranges. Every process derives the same map
// from (p, M, chunk) — nothing is negotiated.
//
// The split is control plane vs data plane. The coordinator keeps everything
// sequenced: query broadcasts, arrival intake, offering messages to the
// decoder, decodability detection, fault handling, the optimizer's SCALAR
// state (step count, momentum scalars via FinishStep) and the gradient norm.
// Shards own only the coordinate-sliced heavy loops: each dispatch, shard s
// runs DecodeSliceInto over its range, scales by 1/m, and applies the
// optimizer's UpdateSlice there. Slice ownership is exclusive and disjoint,
// so shards never synchronize with each other — one dispatch and one join
// (two channel operations per shard) per iteration, with persistent shard
// goroutines keeping the steady state allocation-free. Because the scalar
// update factors (step size, momentum beta) are pure functions of the scalar
// state, any partition reproduces the unsharded update bit-for-bit: sharding
// is a wall-clock knob, never a numerics knob, which the conformance matrix
// pins across every scheme, runtime and fault scenario.
//
// Sharding composes with both fabrics. In-process (sim/live, or TCP with a
// single data plane) the shards are goroutines decoding slices of the shared
// arrival buffers. On the TCP runtime the data plane itself scatters:
// a sharded master opens one listener per shard beside the primary
// (control) listener, the handshake carries the shard map, and each worker
// splits every encoded reply at the shard boundaries, sending slice frames
// directly to the owning shard's socket — the lossy payload transform is
// applied once, before the split, so scatter preserves codec semantics.
// Per-shard ingress is then MEASURED at each shard socket
// (ShardStats.SliceBytesIn); in-process runs attribute the modelled payload
// bytes width-proportionally instead. Result.Shards reports the per-shard
// totals (decode time, slice bytes, queue depth), JobStatus.Shards and the
// daemon's /metrics expose the same for service jobs, and checkpoints
// follow the partition: Job.CheckpointSharded writes one self-describing
// file per shard (path.shard0 …) and Job.RestoreShardedCheckpoint merges
// them back into the exact full state, cross-checking shard identity and
// iteration to reject torn sets — periodic checkpoints (CheckpointEvery)
// and bcctrain's -checkpoint/-resume take the sharded path automatically
// whenever MasterShards > 1. BENCH_PR8.json records the
// committed sweep (single-core host: the rows bound dispatch overhead; the
// decode slices scale with min(M, cores) on multi-core hosts, exactly like
// DecodeParallelism).
//
// # Running as a service
//
// The package also runs as a long-lived multi-tenant daemon (bccserve,
// or StartService in-process): a master accepting job submissions over the
// wire protocol, running each job on its own engine instance, and leasing
// workers to TCP jobs from one shared fleet.
//
//	bccserve -addr 127.0.0.1:9788 -http 127.0.0.1:9789 -workers 4 &
//	bcctrain -submit 127.0.0.1:9788 -scheme bcc -m 12 -n 4 -r 3 -runtime tcp
//	curl http://127.0.0.1:9789/metrics
//
// The job lifecycle is queued -> running -> done|failed|canceled|degraded
// (JobState). Admission is strictly FIFO: the head job starts when enough
// fleet workers are idle (sim/live jobs need none and run on daemon-local
// goroutines); leases release on every exit path — completion, Cancel,
// degrade below the recovery threshold, worker crash — so queued jobs start
// without restarting workers. Tenants are isolated: each job gets its own
// BufferPool (bounded by ServiceOptions.PoolCap), seed-derived RNG streams,
// fault plan, comm-plane configuration and a private data-plane listener,
// so concurrent jobs decode bit-identically to solo runs of the same spec.
// Specs travel as serialized bytes (EncodeSpec/DecodeSpec); process-local
// fields — Latency models, Observer hooks, StopWhen closures, trace
// recorders, checkpoint paths — are rejected at submission. Fleet workers
// rebuild each assigned job deterministically from the spec in its lease,
// so they need no configuration beyond the daemon address
// (ServeFleetWorker, or bccserve -join).
//
// The HTTP surface (ServiceOptions.HTTPAddr) serves /jobs, /jobs/{id},
// /workers, /healthz as JSON and /metrics in Prometheus text format (job
// states, queue depth, worker states, iteration and measured wire-byte
// totals, queue/run seconds). SIGTERM — or Service.Drain — rejects new
// submissions, cancels queued jobs, and gives running jobs a grace period
// to finish before canceling them, keeping their partial results.
//
// # Reproducing the paper
//
// Every table and figure of the paper regenerates through RunExperiment or
// the bccbench command:
//
//	bccbench -exp all          # fig2, fig4, table1, table2, fig5 + extras
//
// See DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured results.
package bcc
