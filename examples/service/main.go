// Service walkthrough: the multi-tenant training daemon driven entirely
// through the public API. An in-process daemon with a small fleet accepts
// two concurrent jobs — a TCP job leasing real fleet workers and a sim job
// running on a daemon-local goroutine — while the wire-protocol client
// watches them and the HTTP surface reports status and Prometheus metrics.
// Finally the daemon drains gracefully, the way bccserve does on SIGTERM.
//
//	go run ./examples/service
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"sync"
	"time"

	"bcc"
)

func main() {
	// Start the daemon on ephemeral loopback ports; in production this is
	// `bccserve -addr ... -http ... -workers 4`.
	d, err := bcc.StartService(bcc.ServiceOptions{HTTPAddr: "127.0.0.1:0"})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	fmt.Printf("daemon: control %s, http %s\n", d.Addr(), d.HTTPAddr())

	// A fleet of four workers joins the daemon. Workers carry no job
	// configuration: each lease ships the serialized spec and the worker
	// rebuilds the job deterministically from its seeds.
	fleetCtx, stopFleet := context.WithCancel(context.Background())
	defer stopFleet()
	var fleet sync.WaitGroup
	for i := 0; i < 4; i++ {
		fleet.Add(1)
		go func(i int) {
			defer fleet.Done()
			bcc.ServeFleetWorker(fleetCtx, d.Addr(), fmt.Sprintf("w%d", i))
		}(i)
	}

	// Submit over the wire protocol, exactly as bcctrain -submit does.
	c, err := bcc.DialService(d.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	tcpJob, err := c.Submit(bcc.Spec{
		Examples: 8, Workers: 4, Load: 2,
		DataPoints: 80, Dim: 64,
		Scheme: bcc.SchemeBCC, Iterations: 12, Seed: 7,
		Runtime: bcc.RuntimeTCP, Payload: bcc.PayloadF32,
	})
	if err != nil {
		log.Fatal(err)
	}
	simJob, err := c.Submit(bcc.Spec{
		Examples: 8, Workers: 8, Load: 3,
		DataPoints: 80, Dim: 64,
		Scheme: bcc.SchemeCyclicRep, Iterations: 12, Seed: 9,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted: job %d (tcp, leases 4 workers) and job %d (sim, needs none)\n",
		tcpJob.ID, simJob.ID)

	// Watch the TCP job to completion; the callback fires on each poll.
	final, err := c.Watch(context.Background(), tcpJob.ID, 50*time.Millisecond,
		func(st bcc.JobStatus) {
			fmt.Printf("job %d: %-8s iter %2d  |grad| %.3e\n", st.ID, st.State, st.Iter, st.GradNorm)
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job %d: %s after %d iterations, %d wire bytes in, %.0fms run\n",
		final.ID, final.State, final.Iter, final.WireIn, 1000*final.RunSeconds)
	if _, err := d.Wait(context.Background(), simJob.ID); err != nil {
		log.Fatal(err)
	}

	// The HTTP surface serves the same snapshots as JSON and Prometheus text.
	for _, path := range []string{"/jobs", "/metrics"} {
		body := get("http://" + d.HTTPAddr() + path)
		fmt.Printf("\nGET %s:\n", path)
		for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
			if path != "/metrics" || strings.HasPrefix(line, "bcc_jobs") ||
				strings.HasPrefix(line, "bcc_wire") {
				fmt.Println("  " + line)
			}
		}
	}

	// Graceful shutdown: reject new work, let running jobs finish, close.
	grace, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d.Drain(grace); err != nil {
		log.Fatal(err)
	}
	stopFleet()
	fleet.Wait()
	fmt.Println("\ndaemon: drained and stopped")
}

func get(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return string(b)
}
