// Sparse compute plane walkthrough: generate a high-dimensional sparse
// dataset (CSR storage), measure the O(nnz)-vs-O(rows·p) worker-gradient
// gap against a densified copy of the SAME data, verify the gradients are
// bit-identical, then train with decode parallelism on — and finally load a
// LIBSVM-format snippet, the interchange format real sparse datasets
// (news20, RCV1, ...) ship in.
//
//	go run ./examples/sparse
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"bcc"
)

const libsvmSnippet = `# LIBSVM format: <label> <index>:<value> ..., indices 1-based ascending
+1 3:0.25 17:1.5 40:-0.75
-1 5:2 17:-0.5
+1 1:1 29:0.3 40:0.9
-1 3:-1 5:0.5 29:-2
`

func main() {
	// --- 1. A sparse synthetic dataset -----------------------------------
	// Spec.Density switches the seeded generator to CSR features: each of
	// the p coordinates is nonzero with probability 0.02, so the dataset
	// stores ~2% of rows*p entries and every gradient pass touches only
	// those.
	const (
		rows, p = 400, 8192
		density = 0.02
	)
	job, err := bcc.NewJob(bcc.Spec{
		Examples: 40, Workers: 40, Load: 8,
		DataPoints: rows, Dim: p, Density: density,
		Scheme: bcc.SchemeCyclicRep, Iterations: 20, Seed: 7,
		// Shard the master's decode combination (a p-dimensional linear
		// fold for cyclicrep) across cores; decoded gradients are
		// bit-identical to the serial path at ANY setting.
		DecodeParallelism: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	csr, ok := job.Data.Sparse()
	if !ok {
		log.Fatal("expected CSR storage")
	}
	fmt.Printf("sparse dataset: %d x %d, nnz %d (%.2f%% of dense)\n",
		rows, p, csr.NNZ(), 100*float64(csr.NNZ())/float64(rows*p))

	// --- 2. O(nnz) vs O(rows*p), same bits -------------------------------
	// Densify the same matrix and time one full gradient pass on each. The
	// results must agree bit-for-bit: a stored zero contributes an exact
	// +-0.0 term, which cannot change a finite sum.
	dense := &bcc.Dataset{X: csr.ToDense(), Y: job.Data.Y, WStar: job.Data.WStar}
	w := make([]float64, p)
	for i := range w {
		w[i] = float64(i%7-3) / 10
	}
	timeGrad := func(ds *bcc.Dataset) (time.Duration, []float64) {
		j, err := bcc.NewJobWithData(bcc.Spec{Examples: 40, Workers: 40, Load: 8, Seed: 7}, ds)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		grad := make([]float64, p)
		j.Model.SubsetGradient(w, allRows(rows), grad)
		return time.Since(start), grad
	}
	dDense, gDense := timeGrad(dense)
	dSparse, gSparse := timeGrad(job.Data)
	for i := range gDense {
		if gDense[i] != gSparse[i] {
			log.Fatalf("gradient bit mismatch at %d", i)
		}
	}
	fmt.Printf("one worker gradient pass: dense %v, CSR %v (%.1fx) — bit-identical\n",
		dDense, dSparse, float64(dDense)/float64(dSparse))

	// --- 3. Train ---------------------------------------------------------
	res, err := job.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d iterations: avg K %.1f, accuracy %.4f\n",
		len(res.Iters), res.AvgWorkersHeard, job.Accuracy(res.FinalW))

	// --- 4. Real data: LIBSVM ---------------------------------------------
	// LoadLIBSVM parses straight into CSR; PadDim widens the dimension when
	// the model is wider than the largest index present in the file.
	ds, err := bcc.LoadLIBSVM(strings.NewReader(libsvmSnippet))
	if err != nil {
		log.Fatal(err)
	}
	ds = bcc.PadDim(ds, 64)
	fmt.Printf("libsvm snippet: %d examples, dim %d, nnz %d\n", ds.N(), ds.Dim(), ds.NNZ())
	ljob, err := bcc.NewJobWithData(bcc.Spec{
		Examples: 4, Workers: 4, Load: 1,
		Scheme: bcc.SchemeUncoded, Iterations: 5, Seed: 1,
	}, ds)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := ljob.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("libsvm-loaded job trained; the whole pipeline is storage-agnostic")
}

func allRows(n int) []int {
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	return rows
}
