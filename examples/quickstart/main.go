// Quickstart: train logistic regression with the BCC scheme on a simulated
// 50-worker cluster and print the paper's headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bcc"
)

func main() {
	// The paper's scenario one, laptop sized: m = 50 data batches over
	// n = 50 workers, each worker picks r = 10 batches worth of data (one
	// random batch of 10 units in BCC's batching). A light exponential
	// communication tail makes worker arrival order vary per iteration, as
	// on a real cluster.
	lat, err := bcc.NewShiftExpLatency(50, []bcc.ShiftExpParams{{
		CommShift: 1e-3, CommMu: 10,
	}}, bcc.NewRNG(2))
	if err != nil {
		log.Fatal(err)
	}
	job, err := bcc.NewJob(bcc.Spec{
		Examples:   50,
		Workers:    50,
		Load:       10,
		Scheme:     bcc.SchemeBCC,
		DataPoints: 500, // 10 points per example unit
		Dim:        200,
		Iterations: 50,
		LossEvery:  10,
		Seed:       1,
		Latency:    lat,
		// An Observer streams progress from the master engine while the run
		// executes — no post-hoc digging through Result.Iters.
		Observer: bcc.ObserverFuncs{Iteration: func(it bcc.IterStats) {
			if it.Iter%10 == 0 {
				fmt.Printf("  iter %3d  loss %.5f  workers heard %d\n", it.Iter, it.Loss, it.WorkersHeard)
			}
		}},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("plan:")
	fmt.Printf("  scheme:                     %s\n", job.Plan.Scheme())
	fmt.Printf("  expected recovery threshold %.2f (theory: ceil(m/r)*H = %.2f)\n",
		job.Plan.ExpectedThreshold(), bcc.RecoveryThreshold(50, 10))
	fmt.Printf("  lower bound m/r:            %.0f\n", bcc.RecoveryLowerBound(50, 10))

	fmt.Println("\ntraining:")
	res, err := job.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nresults:")
	fmt.Printf("  avg recovery threshold: %.2f workers (out of %d)\n", res.AvgWorkersHeard, 50)
	fmt.Printf("  avg communication load: %.2f gradient-sized messages\n", res.AvgUnits)
	fmt.Printf("  training accuracy:      %.4f\n", job.Accuracy(res.FinalW))
}
