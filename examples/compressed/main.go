// Compressed training walkthrough: the same BCC job run over real loopback
// TCP sockets under each payload codec — raw64 (bit-exact), f32 (gradient
// and model words quantized to float32 on the wire), topk (each reply keeps
// only its K largest-magnitude coordinates) — comparing bytes MEASURED at
// the socket, final accuracy, and the determinism guarantee: a lossy codec
// run decodes to bit-identical iterates on the simulator and on TCP, because
// every runtime applies the same canonical transform at its wire boundary.
//
//	go run ./examples/compressed
package main

import (
	"fmt"
	"log"
	"math"

	"bcc"
)

func main() {
	// One spec, three codecs. The tcp runtime here is real sockets in one
	// process; only Payload/TopK change between runs.
	base := bcc.Spec{
		Examples:   16,
		Workers:    16,
		Load:       4,
		Scheme:     bcc.SchemeBCC,
		DataPoints: 160,
		Dim:        4096,
		Iterations: 25,
		Seed:       11,
		LossEvery:  8, // iteration 24 = 3*8 records the final loss below
	}

	fmt.Printf("%-8s %14s %14s %10s %10s\n", "codec", "wire in B/iter", "wire out B/iter", "loss", "accuracy")
	var rawIn float64
	finals := map[bcc.Payload][]float64{}
	for _, codec := range []bcc.Payload{bcc.PayloadRaw64, bcc.PayloadF32, bcc.PayloadTopK} {
		spec := base
		spec.Runtime = bcc.RuntimeTCP
		spec.Payload = codec // PayloadTopK defaults TopK to ceil(p/16) = 256 here
		job, err := bcc.NewJob(spec)
		if err != nil {
			log.Fatal(err)
		}
		res, err := job.Run()
		if err != nil {
			log.Fatal(err)
		}
		in := float64(res.TotalWireIn) / float64(len(res.Iters))
		out := float64(res.TotalWireOut) / float64(len(res.Iters))
		loss := res.Iters[len(res.Iters)-1].Loss
		note := ""
		if codec == bcc.PayloadRaw64 {
			rawIn = in
		} else {
			note = fmt.Sprintf("   (replies at %.1f%% of raw64)", 100*in/rawIn)
		}
		fmt.Printf("%-8s %14.0f %14.0f %10.4f %10.4f%s\n",
			codec, in, out, loss, job.Accuracy(res.FinalW), note)
		finals[codec] = res.FinalW
	}

	// The cross-runtime determinism guarantee: rerun the f32 job on the
	// SIMULATOR — no sockets, no serialization — and compare iterates with
	// the TCP run bit for bit. The sim applies the canonical quantization
	// transform exactly where the TCP serializer would, so the trajectories
	// are identical, not merely close.
	simSpec := base
	simSpec.Runtime = bcc.RuntimeSim
	simSpec.Payload = bcc.PayloadF32
	simJob, err := bcc.NewJob(simSpec)
	if err != nil {
		log.Fatal(err)
	}
	simRes, err := simJob.Run()
	if err != nil {
		log.Fatal(err)
	}
	for i, v := range simRes.FinalW {
		if math.Float64bits(v) != math.Float64bits(finals[bcc.PayloadF32][i]) {
			log.Fatalf("sim and tcp f32 iterates diverge at %d", i)
		}
	}
	fmt.Println("\nf32 on sim == f32 on tcp, bit for bit: compression is part of the algorithm, not the transport")

	// And the accuracy story: the lossy trajectories stay close to raw64.
	for _, codec := range []bcc.Payload{bcc.PayloadF32, bcc.PayloadTopK} {
		maxd := 0.0
		for i, v := range finals[codec] {
			if d := math.Abs(v - finals[bcc.PayloadRaw64][i]); d > maxd {
				maxd = d
			}
		}
		fmt.Printf("max |w_%s - w_raw64| after %d iterations: %.2e\n", codec, base.Iterations, maxd)
	}
}
