// TCP cluster: the same BCC training job, but master and workers exchange
// models and coded gradients over REAL loopback TCP sockets (gob-encoded),
// with per-worker goroutines sleeping their drawn straggler latencies. The
// run is deadline-bounded through RunContext and observed live through an
// Observer. For a multi-PROCESS cluster, see cmd/bcccluster.
//
//	go run ./examples/tcp_cluster
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"bcc"
)

func main() {
	lat, err := bcc.NewShiftExpLatency(16, []bcc.ShiftExpParams{{
		CommShift: 2e-3, CommMu: 5, // per-message delay with an exp tail
	}}, bcc.NewRNG(99))
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	job, err := bcc.NewJob(bcc.Spec{
		Examples:   8,
		Workers:    16,
		Load:       2,
		Scheme:     bcc.SchemeBCC,
		DataPoints: 64,
		Dim:        64,
		Iterations: 20,
		Seed:       3,
		Runtime:    bcc.RuntimeTCP, // loopback sockets instead of channels
		TimeScale:  1e-2,           // 1 virtual second sleeps 10 ms
		Latency:    lat,
		// Watch each iteration's gradient become decodable as the recovery
		// threshold is reached over real sockets.
		Observer: bcc.ObserverFuncs{Decode: func(ev bcc.DecodeEvent) {
			if ev.Iter%5 == 0 {
				fmt.Printf("  iter %2d decodable after %d workers\n", ev.Iter, ev.WorkersHeard)
			}
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	// A generous deadline guards the demo against a wedged network: the run
	// would return the completed iterations plus context.DeadlineExceeded.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := job.RunContext(ctx)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("trained over TCP in %v (real time)\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("  iterations:             %d\n", len(res.Iters))
	fmt.Printf("  avg recovery threshold: %.2f of 16 workers\n", res.AvgWorkersHeard)
	fmt.Printf("  bytes through sockets:  %d\n", res.TotalBytes)
	fmt.Printf("  training accuracy:      %.4f\n", job.Accuracy(res.FinalW))
}
