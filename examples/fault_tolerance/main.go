// Fault tolerance: the paper's Reliability and Universality claims under
// worker failures. The cyclic-repetition code tolerates exactly s = r-1
// dead workers; BCC tolerates any failures that leave its batches covered
// (with high probability many more); the uncoded baseline tolerates none.
//
//	go run ./examples/fault_tolerance
package main

import (
	"errors"
	"fmt"
	"log"

	"bcc"
)

func run(scheme bcc.Scheme, m, n, r int, dead []int) (*bcc.Result, error) {
	return bcc.Train(bcc.Spec{
		Examples:   m,
		Workers:    n,
		Load:       r,
		Scheme:     scheme,
		DataPoints: m * 8,
		Dim:        100,
		Iterations: 20,
		Seed:       11,
		Dead:       dead,
	})
}

func main() {
	const (
		m, n = 12, 12
		r    = 3 // CR tolerates s = r-1 = 2 dead workers
	)

	fmt.Printf("cluster: m=%d n=%d r=%d; killing workers one by one\n\n", m, n, r)
	fmt.Printf("%-12s %-8s %-24s\n", "scheme", "#dead", "outcome")

	for _, scheme := range []bcc.Scheme{bcc.SchemeUncoded, bcc.SchemeCyclicRep, bcc.SchemeBCC} {
		for nDead := 0; nDead <= 3; nDead++ {
			dead := make([]int, nDead)
			for i := range dead {
				dead[i] = i * 3 // workers 0, 3, 6
			}
			res, err := run(scheme, m, n, r, dead)
			switch {
			case err == nil:
				fmt.Printf("%-12s %-8d trained (avg K %.1f, accuracy %.3f)\n",
					scheme, nDead, res.AvgWorkersHeard, trainAccuracy(scheme, m, n, r, dead))
			case errors.Is(err, bcc.ErrBelowThreshold):
				// Provably unrecoverable: the engine degrades before running
				// the doomed iteration rather than waiting out a stall.
				fmt.Printf("%-12s %-8d DEGRADED: below the scheme's decodable minimum (fail-fast)\n", scheme, nDead)
			case errors.Is(err, bcc.ErrStalled):
				fmt.Printf("%-12s %-8d STALLED: gradient unrecoverable\n", scheme, nDead)
			default:
				log.Fatal(err)
			}
		}
		fmt.Println()
	}
	fmt.Println("cyclicrep survives exactly s = r-1 = 2 failures (worst-case design);")
	fmt.Println("bcc survives any failures that leave every batch covered — usually more,")
	fmt.Println("with no prior knowledge of the straggler count (the paper's universality).")

	// Dynamic faults: a named FaultPlan scenario replays a deterministic
	// crash/restart schedule identically on every runtime; the observer
	// streams the fault events as they take effect.
	fmt.Println("\nrolling-restart scenario on bcc (deterministic crash/restart schedule):")
	res, err := bcc.Train(bcc.Spec{
		Examples: m, Workers: n, Load: r, Scheme: bcc.SchemeBCC,
		DataPoints: m * 8, Dim: 100, Iterations: 20, Seed: 11,
		FaultScenario: "rolling-restart",
		Observer: bcc.ObserverFuncs{
			Fault: func(ev bcc.FaultEvent) { fmt.Printf("  %s\n", ev) },
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained through the restarts: avg K %.1f over %d iterations\n",
		res.AvgWorkersHeard, len(res.Iters))
}

// trainAccuracy reruns the job to compute accuracy (Train returns only the
// result; rebuilding keeps the example short).
func trainAccuracy(scheme bcc.Scheme, m, n, r int, dead []int) float64 {
	job, err := bcc.NewJob(bcc.Spec{
		Examples: m, Workers: n, Load: r, Scheme: scheme,
		DataPoints: m * 8, Dim: 100, Iterations: 20, Seed: 11, Dead: dead,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := job.Run()
	if err != nil {
		log.Fatal(err)
	}
	return job.Accuracy(res.FinalW)
}
