// Straggler comparison: run the uncoded, cyclic-repetition and BCC schemes
// on the same straggler-afflicted simulated cluster and compare total
// running times — a miniature of the paper's Fig. 4 experiment.
//
//	go run ./examples/straggler_comparison
package main

import (
	"fmt"
	"log"

	"bcc"
)

func main() {
	const (
		m, n  = 50, 50
		r     = 10
		iters = 100
	)

	fmt.Printf("distributed logistic regression: m=%d units, n=%d workers, %d iterations\n", m, n, iters)
	fmt.Printf("%-12s %-4s %-8s %-10s %-10s %-10s\n", "scheme", "r", "avg K", "comm(s)", "comp(s)", "total(s)")

	var uncodedTotal float64
	for _, cfg := range []struct {
		scheme bcc.Scheme
		r      int
	}{
		{bcc.SchemeUncoded, 1}, // no redundancy: each worker holds m/n = 1 unit
		{bcc.SchemeCyclicRep, r},
		{bcc.SchemeBCC, r},
	} {
		// Paper-style shift-exponential stragglers (§IV eq. 15): a small
		// deterministic compute cost (tail mean 0.04 ms/point) plus a heavy
		// exponential communication tail (~80 ms/message).
		lat, err := bcc.NewShiftExpLatency(n, []bcc.ShiftExpParams{{
			ComputeShift: 8e-5, ComputeMu: 25000,
			CommShift: 5e-3, CommMu: 12.5,
		}}, bcc.NewRNG(42))
		if err != nil {
			log.Fatal(err)
		}
		res, err := bcc.Train(bcc.Spec{
			Examples:   m,
			Workers:    n,
			Load:       cfg.r,
			Scheme:     cfg.scheme,
			DataPoints: m * 10,
			Dim:        400,
			Iterations: iters,
			Seed:       7,
			Latency:    lat,
			// Master NIC drains one 64 KB message at a time.
			IngressPerUnit: 5.5e-3,
		})
		if err != nil {
			log.Fatal(err)
		}
		if cfg.scheme == "uncoded" {
			uncodedTotal = res.TotalWall
		}
		fmt.Printf("%-12s %-4d %-8.2f %-10.3f %-10.3f %-10.3f\n",
			cfg.scheme, cfg.r, res.AvgWorkersHeard, res.TotalComm, res.TotalCompute, res.TotalWall)
		if cfg.scheme != "uncoded" && uncodedTotal > 0 {
			fmt.Printf("%12s speedup vs uncoded: %.1f%%\n", "",
				100*(1-res.TotalWall/uncodedTotal))
		}
	}
	fmt.Println("\npaper Fig. 4 (scenario one): BCC beat uncoded by 85.4% and CR by 69.9%")
}
