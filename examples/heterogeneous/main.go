// Heterogeneous clusters: reproduce the paper's Fig. 5 experiment with the
// public API — the generalized BCC scheme against the load-balancing (LB)
// baseline on a cluster of 95 slow and 5 fast workers.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"
	"math"

	"bcc"
)

func main() {
	cluster := bcc.PaperFig5Cluster() // n=100: a_i=20; mu_i=1 (x95), 20 (x5)
	const m = 500
	const trials = 2000
	rng := bcc.NewRNG(5)

	// LB: loads proportional to mu; the master waits for every worker.
	lb := cluster.LBResult(m, trials, rng)

	// Generalized BCC: allocate loads to gather s = floor(m log m) partial
	// gradients fastest (problem P2), then stop at coverage.
	s := int(math.Floor(float64(m) * math.Log(float64(m))))
	alloc, err := cluster.Allocate(s)
	if err != nil {
		log.Fatal(err)
	}
	gbcc, failures := cluster.CoverageResult(m, alloc.Loads, trials, rng)

	// Decentralized unit-sample retry waves make the protocol terminate on
	// every trial: workers keep streaming single random examples after
	// their batch until the master reaches coverage.
	retry := cluster.CoverageResultRetry(m, alloc.Loads, trials, 50, rng)

	fmt.Printf("heterogeneous cluster: m=%d examples, n=%d workers\n", m, len(cluster))
	fmt.Printf("allocation: target s=%d, total load %d, deadline tau=%.1f\n\n",
		s, alloc.TotalLoad(), alloc.Tau)
	fmt.Printf("%-36s %12s\n", "strategy", "avg time")
	fmt.Printf("%-36s %12.1f\n", "load balancing (LB)", lb)
	fmt.Printf("%-36s %12.1f   (%.2f%% reduction; %d/%d trials uncovered)\n",
		"generalized BCC", gbcc, 100*(1-gbcc/lb), failures, trials)
	fmt.Printf("%-36s %12.1f   (%.2f%% reduction; always terminates)\n",
		"generalized BCC + unit retry waves", retry, 100*(1-retry/lb))
	fmt.Println("\npaper Fig. 5: generalized BCC reduced average computation time by 29.28%")

	// Theorem 2 brackets the best achievable coverage time.
	lower, upper, err := cluster.TheoremTwoBounds(m, 500, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTheorem 2 bounds on min E[T]: [%.1f, %.1f] (c=%.3f)\n",
		lower, upper, cluster.TheoremTwoC(m))
}
