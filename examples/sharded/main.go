// Sharded-master walkthrough: the same training job run with the master's
// data plane partitioned into M coordinate shards. First an in-process
// sharded run is compared bit-for-bit against its unsharded twin — sharding
// is a wall-clock knob, never a numerics knob — and the per-shard
// measurements in Result.Shards are printed. Then the job runs on the TCP
// runtime, where workers scatter reply slices straight to per-shard sockets
// and each shard's ingress is measured on the wire. Finally the job
// checkpoints one file per shard and a fresh job resumes from the merged
// set, again bit-identical to an uninterrupted run; a torn set (one shard
// file missing) is rejected.
//
//	go run ./examples/sharded
package main

import (
	"fmt"
	"log"
	"os"

	"bcc"
)

const shards = 4

// spec is the common topology: m=8 data partitions over n=8 workers at
// load r=3, a p=2048 model (four default wire chunks — one per shard).
func spec(iters int) bcc.Spec {
	return bcc.Spec{
		Examples: 8, Workers: 8, Load: 3,
		DataPoints: 160, Dim: 2048,
		Scheme: bcc.SchemeBCC, Iterations: iters, Seed: 42,
	}
}

func main() {
	// --- 1. In-process: sharded vs unsharded, bit for bit. ---------------
	plain := spec(30)
	sharded := spec(30)
	sharded.MasterShards = shards

	plainRes, err := bcc.Train(plain)
	if err != nil {
		log.Fatal(err)
	}
	shardRes, err := bcc.Train(sharded)
	if err != nil {
		log.Fatal(err)
	}
	for i := range plainRes.FinalW {
		if plainRes.FinalW[i] != shardRes.FinalW[i] {
			log.Fatalf("coordinate %d differs: %v vs %v", i, plainRes.FinalW[i], shardRes.FinalW[i])
		}
	}
	fmt.Printf("sim: M=%d model identical to unsharded across all %d coordinates\n",
		shards, len(plainRes.FinalW))
	printShards("sim (modelled slice bytes)", shardRes.Shards)

	// --- 2. TCP: the scatter data plane with measured per-shard bytes. ---
	tcp := spec(30)
	tcp.MasterShards = shards
	tcp.Runtime = bcc.RuntimeTCP
	tcpRes, err := bcc.Train(tcp)
	if err != nil {
		log.Fatal(err)
	}
	for i := range plainRes.FinalW {
		if plainRes.FinalW[i] != tcpRes.FinalW[i] {
			log.Fatalf("tcp coordinate %d differs: %v vs %v", i, plainRes.FinalW[i], tcpRes.FinalW[i])
		}
	}
	fmt.Printf("\ntcp: scatter plane reproduced the sim model exactly; "+
		"total measured wire in/out %d/%d bytes\n", tcpRes.TotalWireIn, tcpRes.TotalWireOut)
	printShards("tcp (measured at each shard socket)", tcpRes.Shards)

	// --- 3. Sharded checkpoint: one file per shard, merge-validated. -----
	dir, err := os.MkdirTemp("", "bcc-sharded")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := dir + "/ckpt.bin"

	half, err := bcc.NewJob(specSharded(15))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := half.Run(); err != nil {
		log.Fatal(err)
	}
	if err := half.CheckpointSharded(path, 15); err != nil {
		log.Fatal(err)
	}
	files, _ := os.ReadDir(dir)
	fmt.Printf("\ncheckpoint: %d files written:", len(files))
	for _, f := range files {
		info, _ := f.Info()
		fmt.Printf("  %s (%dB)", f.Name(), info.Size())
	}
	fmt.Println()

	resumed, err := bcc.NewJob(specSharded(15))
	if err != nil {
		log.Fatal(err)
	}
	completed, err := resumed.RestoreShardedCheckpoint(path)
	if err != nil {
		log.Fatal(err)
	}
	resRes, err := resumed.Run()
	if err != nil {
		log.Fatal(err)
	}
	for i := range shardRes.FinalW {
		if shardRes.FinalW[i] != resRes.FinalW[i] {
			log.Fatalf("resumed coordinate %d differs", i)
		}
	}
	fmt.Printf("resume: %d done + 15 more == uninterrupted 30, bit for bit\n", completed)

	// A torn set — here, one shard file deleted — must be rejected, not
	// silently reassembled into a partial state.
	os.Remove(path + ".shard2")
	torn, err := bcc.NewJob(specSharded(15))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := torn.RestoreShardedCheckpoint(path); err != nil {
		fmt.Printf("torn set rejected: %v\n", err)
	} else {
		log.Fatal("torn shard set was accepted")
	}
}

func specSharded(iters int) bcc.Spec {
	s := spec(iters)
	s.MasterShards = shards
	return s
}

func printShards(label string, stats []bcc.ShardStats) {
	fmt.Printf("per-shard stats, %s:\n", label)
	for _, ss := range stats {
		fmt.Printf("  shard %d owns [%4d,%4d)  decode %6.2fms  slice bytes in %d\n",
			ss.Shard, ss.Lo, ss.Hi, float64(ss.DecodeNs)/1e6, ss.SliceBytesIn)
	}
}
