// Adaptive-redundancy walkthrough: the nested gradient-code family with the
// telemetry-driven AIMD controller, raced against the same family pinned at
// full redundancy, under the flaky-tail fault scenario. The controller keeps
// the level high while the tail is slow and steps it down through quiet
// stretches, so the cluster computes fewer encoded parts than any fixed code
// that survives the same faults — without giving up straggler tolerance when
// it matters. The run is then repeated to show the level trajectory is
// deterministic: re-tuning decisions are pure functions of the fault plan's
// schedule, never of wall clocks.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"strings"

	"bcc"
)

const (
	workers = 8 // nested requires m == n
	load    = 4 // levels 1..4
	iters   = 30
)

// stagger is a deterministic latency model: worker w's compute finishes
// (w+1) virtual units after broadcast, so the flaky tail's slowdown factors
// visibly stretch arrivals.
func stagger() bcc.Latency {
	f := make([]float64, workers)
	for w := range f {
		f[w] = float64(w + 1)
	}
	return bcc.FixedLatency{PerPoint: 1.0 / 16, Factor: f}
}

func spec(adapt bool) bcc.Spec {
	win := 0
	if adapt {
		win = 2 // AdaptWindow requires AdaptRedundancy (validated)
	}
	return bcc.Spec{
		Examples: workers, Workers: workers, Load: load,
		Scheme:          bcc.SchemeNested,
		AdaptRedundancy: adapt,
		AdaptWindow:     win,
		Iterations:      iters,
		Seed:            42,
		FaultScenario:   "flaky-tail",
		FaultSeed:       9,
		Latency:         stagger(),
	}
}

// run executes one spec and returns the result plus the per-iteration level
// trajectory and the total encoded parts computed by the cluster: at level L
// every reachable worker computes L of its resident units (a fixed plan
// always computes all `load` of them).
func run(s bcc.Spec) (*bcc.Result, []int, int) {
	levels := make([]int, 0, s.Iterations)
	parts := 0
	s.Observer = bcc.ObserverFuncs{Iteration: func(st bcc.IterStats) {
		l := st.Level
		if l == 0 {
			l = s.Load // fixed plan: full redundancy every iteration
		}
		levels = append(levels, l)
		parts += l * s.Workers
	}}
	res, err := bcc.Train(s)
	if err != nil {
		log.Fatal(err)
	}
	return res, levels, parts
}

func main() {
	// --- 1. Fixed full redundancy: the straggler-proof baseline. ---------
	fixedRes, _, fixedParts := run(spec(false))
	fmt.Printf("fixed   L=%d: wall %.1f, %d encoded parts computed\n",
		load, fixedRes.TotalWall, fixedParts)

	// --- 2. Adaptive: the controller re-tunes the level from telemetry. --
	adaptRes, levels, adaptParts := run(spec(true))
	fmt.Printf("adaptive    : wall %.1f, %d encoded parts computed, %d level switches\n",
		adaptRes.TotalWall, adaptParts, adaptRes.LevelSwitches)
	fmt.Printf("level trajectory: %s\n", trajectory(levels))
	if adaptRes.LevelSwitches == 0 {
		log.Fatal("controller never re-tuned under flaky-tail")
	}
	if adaptParts >= fixedParts {
		log.Fatalf("adaptive computed %d parts, fixed %d — no compute saved", adaptParts, fixedParts)
	}
	fmt.Printf("compute saved vs fixed: %.0f%%\n",
		100*(1-float64(adaptParts)/float64(fixedParts)))

	// --- 3. Determinism: the trajectory is replayable, bit for bit. ------
	again, levels2, _ := run(spec(true))
	for i := range levels {
		if levels[i] != levels2[i] {
			log.Fatalf("iteration %d: level %d vs %d on identical runs", i, levels[i], levels2[i])
		}
	}
	for i := range adaptRes.FinalW {
		if adaptRes.FinalW[i] != again.FinalW[i] {
			log.Fatalf("coordinate %d differs between identical adaptive runs", i)
		}
	}
	fmt.Println("re-run: identical level trajectory and bit-identical weights")
}

// trajectory renders a level sequence compactly, e.g. "4x3 3x2 4 ...".
func trajectory(levels []int) string {
	var b strings.Builder
	for i := 0; i < len(levels); {
		j := i
		for j < len(levels) && levels[j] == levels[i] {
			j++
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		if j-i > 1 {
			fmt.Fprintf(&b, "%dx%d", levels[i], j-i)
		} else {
			fmt.Fprintf(&b, "%d", levels[i])
		}
		i = j
	}
	return b.String()
}
