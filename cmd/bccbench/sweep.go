package main

// The compute-plane sweep behind BENCH_PR5.json: dense-vs-sparse worker
// gradient cost across densities and dimensions, and the master's decode
// path across payload sizes and DecodeParallelism levels. Run with
//
//	bccbench -sweep                       # full sizes, writes BENCH_PR5.json
//	bccbench -sweep -sweep-quick          # tiny sizes for the CI smoke step
//
// Every measurement uses testing.Benchmark, so ns/op and allocs/op follow
// the same methodology as `go test -bench`.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"bcc/internal/coding"
	"bcc/internal/dataset"
	"bcc/internal/model"
	"bcc/internal/rngutil"
	"bcc/internal/vecmath"
)

type sweepGradient struct {
	P        int     `json:"p"`
	Density  float64 `json:"density"`
	Rows     int     `json:"rows"`
	NNZ      int     `json:"nnz"`
	DenseNs  float64 `json:"dense_ns_op"`
	CSRNs    float64 `json:"csr_ns_op"`
	Speedup  float64 `json:"speedup"`
	CSRAlloc int64   `json:"csr_allocs_op"`
}

type sweepDecode struct {
	Scheme   string  `json:"scheme"`
	P        int     `json:"p"`
	Parallel int     `json:"parallelism"`
	NsOp     float64 `json:"ns_op"`
	AllocsOp int64   `json:"allocs_op"`
}

type sweepReport struct {
	PR          int               `json:"pr"`
	Title       string            `json:"title"`
	Environment map[string]string `json:"environment"`
	Notes       []string          `json:"notes"`
	Gradient    []sweepGradient   `json:"gradient"`
	Decode      []sweepDecode     `json:"decode"`
}

// runSweep executes the dense-vs-sparse × density × parallelism sweep and
// writes the JSON report to path.
func runSweep(path string, quick bool) error {
	dims := []int{1024, 16384}
	rows := 256
	decM, decN, decR := 50, 50, 10
	if quick {
		dims = []int{128, 512}
		rows = 32
		decM, decN, decR = 10, 10, 2
	}
	densities := []float64{1, 0.05, 0.01}
	rep := &sweepReport{
		PR:    5,
		Title: "Sparse-aware compute plane: CSR datasets, O(nnz) gradient kernels, parallel decode",
		Environment: map[string]string{
			"goos":       runtime.GOOS,
			"goarch":     runtime.GOARCH,
			"go":         runtime.Version(),
			"numcpu":     fmt.Sprintf("%d", runtime.NumCPU()),
			"gomaxprocs": fmt.Sprintf("%d", runtime.GOMAXPROCS(0)),
		},
		Notes: []string{
			"gradient: full-pass worker gradient (model.FullGradientInto, logistic) over `rows` points at dimension p; dense visits all rows*p entries, CSR only the nnz stored ones — bit-identical results, speedup = dense_ns/csr_ns",
			"decode: BenchmarkDecode methodology (offer-until-decodable + DecodeInto on a reused decoder, m=n=" + fmt.Sprint(decN) + " r=" + fmt.Sprint(decR) + "); parallelism > 1 shards the decode combination element-wise with bit-identical output",
			"parallelism speedups require gomaxprocs > 1: vecmath.Shard caps the fan-out at GOMAXPROCS, so on a single-CPU host the parallel rows degrade to the serial partition (one chunk) and measure only the fixed sharding overhead (one closure alloc per decode), not a win",
			"serial decode rows (parallelism=1) pin the zero-steady-state-alloc invariant of the PR 3 data plane (allocs_op 0 after the one-time solve-cache warmup); compare ns_op against BENCH_PR3.json decode at p=1024 under the same methodology",
		},
	}
	for _, p := range dims {
		for _, density := range densities {
			g, err := benchGradient(rows, p, density)
			if err != nil {
				return err
			}
			rep.Gradient = append(rep.Gradient, g)
			fmt.Printf("gradient p=%-6d density=%-5.2f dense=%-12.0f csr=%-12.0f speedup=%.1fx\n",
				p, density, g.DenseNs, g.CSRNs, g.Speedup)
		}
	}
	for _, scheme := range []string{"cyclicrep", "cyclicmds", "bccmulti"} {
		for _, p := range dims {
			for _, par := range []int{1, 2, 4} {
				d, err := benchDecode(scheme, decM, decN, decR, p, par)
				if err != nil {
					return err
				}
				rep.Decode = append(rep.Decode, d)
				fmt.Printf("decode %-10s p=%-6d par=%d  %-12.0f ns/op  %d allocs/op\n",
					scheme, p, par, d.NsOp, d.AllocsOp)
			}
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	fmt.Printf("sweep written to %s\n", path)
	return nil
}

// benchGradient measures one full worker-gradient pass over a synthetic
// dataset at the given dimension and density, dense vs CSR.
func benchGradient(rows, p int, density float64) (sweepGradient, error) {
	gen := density
	if gen >= 1 {
		gen = 0 // dense generator
	}
	ds, err := dataset.Generate(dataset.Config{N: rows, Dim: p, Separation: 1.5, Density: gen}, rngutil.New(11))
	if err != nil {
		return sweepGradient{}, err
	}
	var sparseX, denseX vecmath.AnyMatrix
	if csr, ok := ds.Sparse(); ok {
		sparseX, denseX = csr, csr.ToDense()
	} else {
		m := ds.X.(*vecmath.Matrix)
		sparseX, denseX = vecmath.CSRFromDense(m), m
	}
	w := make([]float64, p)
	rng := rngutil.New(12)
	for i := range w {
		w[i] = rng.Normal()
	}
	run := func(x vecmath.AnyMatrix) testing.BenchmarkResult {
		mod := &model.Logistic{Data: &dataset.Dataset{X: x, Y: ds.Y}}
		out := make([]float64, p)
		rowIdx := model.AllRows(rows)
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				model.FullGradientInto(mod, w, out, rowIdx)
			}
		})
	}
	dres := run(denseX)
	sres := run(sparseX)
	g := sweepGradient{
		P:        p,
		Density:  density,
		Rows:     rows,
		NNZ:      sparseX.NNZ(),
		DenseNs:  float64(dres.NsPerOp()),
		CSRNs:    float64(sres.NsPerOp()),
		CSRAlloc: sres.AllocsPerOp(),
	}
	if g.CSRNs > 0 {
		g.Speedup = g.DenseNs / g.CSRNs
	}
	return g, nil
}

// benchDecode measures one offer-until-decodable round plus DecodeInto on a
// reused decoder, exactly like the package BenchmarkDecode.
func benchDecode(scheme string, m, n, r, p, par int) (sweepDecode, error) {
	s, err := coding.Lookup(scheme)
	if err != nil {
		return sweepDecode{}, err
	}
	plan, err := s.Plan(m, n, r, rngutil.New(1))
	if err != nil {
		return sweepDecode{}, err
	}
	rng := rngutil.New(2)
	gs := make([][]float64, m)
	for u := range gs {
		g := make([]float64, p)
		for t := range g {
			g[t] = rng.Normal()
		}
		gs[u] = g
	}
	assign := plan.Assignments()
	order := rngutil.New(3).Perm(n)
	msgs := make([][]coding.Message, n)
	for _, w := range order {
		parts := make([][]float64, len(assign[w]))
		for k, u := range assign[w] {
			parts[k] = gs[u]
		}
		msgs[w] = coding.Encode(plan, w, parts)
	}
	dec := plan.NewDecoder()
	coding.SetDecodeParallelism(dec, par)
	dst := make([]float64, p)
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dec.Reset()
			for _, w := range order {
				for _, msg := range msgs[w] {
					dec.Offer(msg)
				}
				if dec.Decodable() {
					break
				}
			}
			if err := dec.DecodeInto(dst); err != nil {
				b.Fatal(err)
			}
		}
	})
	return sweepDecode{
		Scheme:   scheme,
		P:        p,
		Parallel: par,
		NsOp:     float64(res.NsPerOp()),
		AllocsOp: res.AllocsPerOp(),
	}, nil
}
