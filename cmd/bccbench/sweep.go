package main

// The performance sweep behind BENCH_PR9.json: dense-vs-sparse worker
// gradient cost across densities and dimensions, the master's decode path
// across payload sizes and DecodeParallelism levels, the comm plane —
// payload codec × dimension × workers over real tcp loopback with the
// engine's measured wire-byte accounting — the service plane: jobs × workers
// batch throughput through the multi-tenant daemon with the queue-vs-run
// split of each tenant's lifetime — the sharded master: the
// coordinate-partitioned decode hot path plus end-to-end scatter-plane runs
// at M ∈ {1, 2, 4} shards — and the adaptive-redundancy race: the nested
// family under the AIMD controller vs every fixed level of the same family
// and the fixed bcc/cyclicmds codes, under straggler scenarios on the sim
// runtime, scored by encoded parts computed and modelled wall-clock. Run
// with
//
//	bccbench -sweep                       # full sizes, writes BENCH_PR9.json
//	bccbench -sweep -sweep-quick          # tiny sizes for the CI smoke step
//
// Every hardware measurement uses testing.Benchmark, so ns/op and allocs/op
// follow the same methodology as `go test -bench`; the adaptive race uses
// the deterministic simulator's modelled metrics instead (this container is
// single-core, so virtual time and counted work are the honest scores).

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"bcc/internal/cluster"
	"bcc/internal/coding"
	"bcc/internal/core"
	"bcc/internal/dataset"
	"bcc/internal/faults"
	"bcc/internal/model"
	"bcc/internal/optimize"
	"bcc/internal/rngutil"
	"bcc/internal/service"
	"bcc/internal/vecmath"
	"bcc/internal/wire"
)

type sweepGradient struct {
	P        int     `json:"p"`
	Density  float64 `json:"density"`
	Rows     int     `json:"rows"`
	NNZ      int     `json:"nnz"`
	DenseNs  float64 `json:"dense_ns_op"`
	CSRNs    float64 `json:"csr_ns_op"`
	Speedup  float64 `json:"speedup"`
	CSRAlloc int64   `json:"csr_allocs_op"`
}

type sweepDecode struct {
	Scheme   string  `json:"scheme"`
	P        int     `json:"p"`
	Parallel int     `json:"parallelism"`
	NsOp     float64 `json:"ns_op"`
	AllocsOp int64   `json:"allocs_op"`
}

type sweepComm struct {
	Codec       string  `json:"codec"`
	P           int     `json:"p"`
	Workers     int     `json:"workers"`
	TopK        int     `json:"topk,omitempty"`
	Iters       int     `json:"iters"`
	WireInIter  float64 `json:"wire_in_bytes_iter"`  // measured bytes into the master per iteration
	WireOutIter float64 `json:"wire_out_bytes_iter"` // measured broadcast bytes per iteration
	InVsRaw     float64 `json:"in_vs_raw64"`         // WireInIter / raw64 row's WireInIter
	WallSec     float64 `json:"wall_s"`
	WallVsRaw   float64 `json:"wall_vs_raw64"`
}

type sweepService struct {
	Jobs       int `json:"jobs"`
	Fleet      int `json:"fleet_workers"`
	JobWorkers int `json:"job_workers"`
	Iters      int `json:"iters"`
	// WallSec is first-submit to last-done; throughput = Jobs / WallSec.
	WallSec    float64 `json:"wall_s"`
	JobsPerSec float64 `json:"jobs_per_s"`
	// Queue vs run split, summed over the batch: queue time is admission
	// wait (FIFO behind earlier tenants), run time is engine time.
	QueueSec    float64 `json:"queue_s_total"`
	RunSec      float64 `json:"run_s_total"`
	MaxQueueSec float64 `json:"queue_s_max"`
}

type sweepSharded struct {
	// Mode is "decode" (offer + sharded DecodeSliceInto, BenchmarkDecode
	// methodology) or "endtoend" (full tcp-loopback training run over the
	// scatter data plane, benchComm methodology).
	Mode    string `json:"mode"`
	Scheme  string `json:"scheme,omitempty"`
	P       int    `json:"p"`
	Workers int    `json:"workers,omitempty"`
	Shards  int    `json:"shards"`
	Iters   int    `json:"iters,omitempty"`
	// Decode rows.
	NsOp     float64 `json:"ns_op,omitempty"`
	AllocsOp int64   `json:"allocs_op,omitempty"`
	// End-to-end rows.
	WallSec    float64 `json:"wall_s,omitempty"`
	WireInIter float64 `json:"wire_in_bytes_iter,omitempty"`
	// VsM1 compares against the shards=1 row of the same cell (ns_op for
	// decode rows, wall_s for end-to-end rows); < 1 is a speedup.
	VsM1 float64 `json:"vs_m1,omitempty"`
}

type sweepAdaptive struct {
	// Scenario is the straggler regime: a named library scenario
	// ("flaky-tail", "slow-decile") or the hand-built "bursty-tail" plan
	// (three tail workers slowed 6-8x in 3-iteration bursts every 12).
	Scenario string `json:"scenario"`
	// Policy is "adaptive" (nested + AIMD controller), "nested-L<k>" (the
	// same family pinned at level k), or a fixed scheme ("bcc", "cyclicmds")
	// at the family's full load.
	Policy string `json:"policy"`
	Iters  int    `json:"iters"`
	// Completed is false when the run degraded below its decode threshold.
	Completed bool `json:"completed"`
	// Parts counts encoded parts computed by the whole cluster over the run:
	// per iteration, every worker computes `level` parts under nested (the
	// active level's prefix of its window) and the full load r under a fixed
	// scheme. The machine-independent compute score.
	Parts int `json:"parts,omitempty"`
	// PartsVsMax is Parts relative to the full-redundancy nested-L<r> row of
	// the same scenario; < 1 means compute saved.
	PartsVsMax float64 `json:"parts_vs_max,omitempty"`
	// WallVirtual is the simulator's modelled wall-clock (virtual seconds)
	// and WallVsMax the ratio against the nested-L<r> row.
	WallVirtual float64 `json:"wall_virtual,omitempty"`
	WallVsMax   float64 `json:"wall_vs_max,omitempty"`
	// AvgHeard is the realized recovery threshold; LevelSwitches counts the
	// controller's re-tunes (0 for every fixed policy).
	AvgHeard      float64 `json:"avg_workers_heard,omitempty"`
	LevelSwitches int     `json:"level_switches,omitempty"`
}

type sweepReport struct {
	PR          int               `json:"pr"`
	Title       string            `json:"title"`
	Environment map[string]string `json:"environment"`
	Notes       []string          `json:"notes"`
	Gradient    []sweepGradient   `json:"gradient"`
	Decode      []sweepDecode     `json:"decode"`
	Comm        []sweepComm       `json:"comm"`
	Service     []sweepService    `json:"service"`
	Sharded     []sweepSharded    `json:"sharded"`
	Adaptive    []sweepAdaptive   `json:"adaptive"`
}

// runSweep executes the dense-vs-sparse × density × parallelism sweep and
// writes the JSON report to path.
func runSweep(path string, quick bool) error {
	dims := []int{1024, 16384}
	rows := 256
	decM, decN, decR := 50, 50, 10
	if quick {
		dims = []int{128, 512}
		rows = 32
		decM, decN, decR = 10, 10, 2
	}
	densities := []float64{1, 0.05, 0.01}
	rep := &sweepReport{
		PR:    9,
		Title: "Adaptive nested gradient codes: telemetry-driven redundancy controller racing fixed codes under straggler scenarios (earlier-plane rows re-recorded from PR 8)",
		Environment: map[string]string{
			"goos":       runtime.GOOS,
			"goarch":     runtime.GOARCH,
			"go":         runtime.Version(),
			"numcpu":     fmt.Sprintf("%d", runtime.NumCPU()),
			"gomaxprocs": fmt.Sprintf("%d", runtime.GOMAXPROCS(0)),
		},
		Notes: []string{
			"gradient: full-pass worker gradient (model.FullGradientInto, logistic) over `rows` points at dimension p; dense visits all rows*p entries, CSR only the nnz stored ones — bit-identical results, speedup = dense_ns/csr_ns",
			"decode: BenchmarkDecode methodology (offer-until-decodable + DecodeInto on a reused decoder, m=n=" + fmt.Sprint(decN) + " r=" + fmt.Sprint(decR) + "); parallelism > 1 shards the decode combination element-wise with bit-identical output",
			"parallelism speedups require gomaxprocs > 1: vecmath.Shard caps the fan-out at GOMAXPROCS, so on a single-CPU host the parallel rows degrade to the serial partition (one chunk) and measure only the fixed sharding overhead (one closure alloc per decode), not a win",
			"serial decode rows (parallelism=1) pin the zero-steady-state-alloc invariant of the PR 3 data plane (allocs_op 0 after the one-time solve-cache warmup); compare ns_op against BENCH_PR3.json decode at p=1024 under the same methodology",
			"comm: full tcp-loopback training runs (wire frames, zero injected latency, scheme bcc m=n r=n/4, wall = best of 3 reps) with the measured wire-byte accounting of the engine; runs end only after the fabric drains (LiveOptions.Drain), so both wire_in (worker->master reply frames) and wire_out (query broadcasts) are rep-identical and asserted equal across reps; in_vs_raw64 and wall_vs_raw64 compare each codec against the raw64 row of the same (p, workers) cell",
			"comm wall caveat: on this zero-latency single-host loopback the byte savings buy no transfer time, so wall_vs_raw64 only bounds the codecs' CPU overhead (top-k selection is O(p log K) per reply); the latency win of smaller payloads shows up when transfer time is real — the sim runtime models it by scaling upload/ingress latency with the codec's byte fraction",
			"comm: f32 halves reply payload words, topk (K=p/16 by default) keeps K index+value pairs per vector — queries stay dense (raw64 under topk, f32-quantized under f32), so wire_out shrinks only under f32",
			"service: each row submits `jobs` identical tcp jobs (scheme bcc, job_workers each, real loopback sockets) to one in-process daemon leasing from `fleet_workers`; wall is first-submit to last-done, queue_s_total/run_s_total split every job's lifetime into FIFO admission wait vs engine time, and queue_s_max is the worst tenant's wait — rows where jobs*job_workers > fleet_workers show the queueing penalty, rows where it fits show near-zero queue time",
			"service caveat: on this single-CPU host concurrent tenants time-share one core, so jobs_per_s does not scale with fleet size; the rows still pin the queue-vs-run accounting and the admission behaviour",
			"sharded decode: BenchmarkDecode methodology with the master-shard split — offer until decodable, then M persistent shard goroutines (the engine's two-channel-ops dispatch) each DecodeSliceInto + scale + UpdateSlice their contiguous chunk-aligned coordinate slice, the in-process masterShards hot path; shards=1 is the same loop on one slice, vs_m1 = ns_op / that row's ns_op; results are bit-identical at every M and allocs_op pins the zero-steady-state-alloc invariant of the sharded engine",
			"sharded endtoend: the comm-sweep methodology at shards=M — full tcp-loopback run where workers scatter reply slices to M per-shard listeners and the sharded engine decodes; wire_in_bytes_iter counts ALL data-plane sockets (primary + shards), so it matches the unsharded row up to the scatter plane's raw64 slice framing; vs_m1 = wall_s / the shards=1 row's wall_s",
			"sharded caveat: gomaxprocs=1 on this host means shard goroutines time-share one core, so vs_m1 > 1 measures only the dispatch+join overhead of the shard group (and the scatter plane's extra sockets), not the multi-core decode win; on a multi-core host the decode rows scale with min(M, cores) exactly like DecodeParallelism",
			"adaptive: sim-runtime race at m=n=8, load r=4 (nested levels 1..4), deterministic staggered latency — at full load worker w's compute finishes (w+1) virtual units after broadcast and compute time scales with the active level — so wall_virtual and parts are machine-independent modelled scores (this host is single-core, so counted work beats wall-clock as the compute metric); parts = sum over iterations of level*n encoded parts computed by the cluster (fixed schemes always compute the full load r per worker)",
			"adaptive policies: 'adaptive' is nested + the AIMD controller (margin 1, window 2); 'nested-L<k>' pins the same family at level k via FixedLevelController; 'bcc'/'cyclicmds' are the fixed codes at load r — every policy sees the identical fault schedule, and vs_max ratios compare against the straggler-proof nested-L4 row of the same scenario",
			"adaptive headline (bursty-tail: three tail workers slowed 6-8x in 3-iteration bursts every 12, quiet otherwise): only full redundancy rides out the bursts without waiting on a slowed worker, yet it pays 4 parts/worker every quiet iteration; the controller tracks the bursts at level 4 and decays through quiet stretches, completing the same iterations with 25% fewer encoded parts than every fixed code that rides out the bursts (nested-L4, bcc, cyclicmds) at lower modelled wall than nested-L4/cyclicmds, while every lower fixed level that computes fewer parts pays 1.2-2.3x the wall stuck waiting on burst-slowed workers — no fixed row beats the adaptive run on both axes",
			"adaptive flaky-tail / slow-decile: the controller completes the target iterations with 14% / 24% fewer encoded parts than the fixed bcc/cyclicmds codes at no worse wall than cyclicmds; under the persistent slow-decile regime it settles within one iteration of the full-redundancy cold start on the level its margin-1 safety buffer prescribes for one observed straggler (matching the nested-L3 row plus the 8-part cold start, one switch; the hindsight-optimal nested-L2 row shows what the margin costs against a schedule known in advance), and under flaky-tail's periodic 2-of-5 schedule the oracle nested-L3 row edges the reactive controller by ~5% wall — the one-iteration lag a schedule-blind controller pays vs a level picked with knowledge of the schedule (bcc's lower wall comes from its 3-worker decode threshold, bought with full 960-part redundancy every iteration)",
			"adaptive determinism: controller decisions are pure functions of the fault plan's schedule, so these rows are exactly reproducible (and bit-identical on the live/tcp runtimes — the nested-adaptive conformance axis in CI)",
		},
	}
	for _, p := range dims {
		for _, density := range densities {
			g, err := benchGradient(rows, p, density)
			if err != nil {
				return err
			}
			rep.Gradient = append(rep.Gradient, g)
			fmt.Printf("gradient p=%-6d density=%-5.2f dense=%-12.0f csr=%-12.0f speedup=%.1fx\n",
				p, density, g.DenseNs, g.CSRNs, g.Speedup)
		}
	}
	for _, scheme := range []string{"cyclicrep", "cyclicmds", "bccmulti"} {
		for _, p := range dims {
			for _, par := range []int{1, 2, 4} {
				d, err := benchDecode(scheme, decM, decN, decR, p, par)
				if err != nil {
					return err
				}
				rep.Decode = append(rep.Decode, d)
				fmt.Printf("decode %-10s p=%-6d par=%d  %-12.0f ns/op  %d allocs/op\n",
					scheme, p, par, d.NsOp, d.AllocsOp)
			}
		}
	}
	commDims := []int{1024, 16384}
	commWorkers := []int{4, 8}
	commIters := 20
	if quick {
		commDims = []int{256}
		commWorkers = []int{4}
		commIters = 4
	}
	for _, p := range commDims {
		for _, n := range commWorkers {
			var raw sweepComm
			for _, codec := range []string{"raw64", "f32", "topk"} {
				c, err := benchComm(codec, p, n, commIters, 0)
				if err != nil {
					return err
				}
				if codec == "raw64" {
					raw = c
				} else if raw.WireInIter > 0 {
					c.InVsRaw = c.WireInIter / raw.WireInIter
					c.WallVsRaw = c.WallSec / raw.WallSec
				}
				rep.Comm = append(rep.Comm, c)
				fmt.Printf("comm %-6s p=%-6d n=%-3d in %-10.0f out %-10.0f B/iter  in_vs_raw %-6.3f wall %.3fs\n",
					codec, p, n, c.WireInIter, c.WireOutIter, c.InVsRaw, c.WallSec)
			}
		}
	}
	// Service rows: jobs × workers throughput through the multi-tenant
	// daemon. (jobs, fleet, jobWorkers) cells cover the three admission
	// regimes: solo, fully concurrent, and queued behind earlier tenants.
	svcIters := 20
	svcCells := [][3]int{{1, 4, 2}, {2, 4, 2}, {4, 4, 2}, {4, 4, 4}}
	if quick {
		svcIters = 3
		svcCells = [][3]int{{2, 2, 1}}
	}
	for _, cell := range svcCells {
		s, err := benchService(cell[0], cell[1], cell[2], svcIters)
		if err != nil {
			return err
		}
		rep.Service = append(rep.Service, s)
		fmt.Printf("service jobs=%-2d fleet=%-2d wn=%-2d  wall %-7.3fs  %-6.2f jobs/s  queue %-7.3fs run %.3fs\n",
			s.Jobs, s.Fleet, s.JobWorkers, s.WallSec, s.JobsPerSec, s.QueueSec, s.RunSec)
	}
	// Sharded rows: the master-shard split of the decode hot path at the
	// largest dimension, plus full end-to-end runs over the scatter data
	// plane. The M=1 row of each cell anchors the vs_m1 ratios.
	shardCounts := []int{1, 2, 4}
	shardP := dims[len(dims)-1]
	var decBase float64
	for _, msh := range shardCounts {
		row, err := benchShardedDecode("bcc", decM, decN, decR, shardP, msh)
		if err != nil {
			return err
		}
		if msh == 1 {
			decBase = row.NsOp
		} else if decBase > 0 {
			row.VsM1 = row.NsOp / decBase
		}
		rep.Sharded = append(rep.Sharded, row)
		fmt.Printf("sharded decode   p=%-6d M=%d  %-12.0f ns/op  %d allocs/op  vs_m1 %.3f\n",
			shardP, msh, row.NsOp, row.AllocsOp, row.VsM1)
	}
	e2eP, e2eN := 16384, 4
	if quick {
		e2eP = 256
	}
	var e2eBase float64
	for _, msh := range shardCounts {
		c, err := benchComm("raw64", e2eP, e2eN, commIters, msh)
		if err != nil {
			return err
		}
		row := sweepSharded{Mode: "endtoend", Scheme: "bcc", P: e2eP, Workers: e2eN,
			Shards: msh, Iters: commIters, WallSec: c.WallSec, WireInIter: c.WireInIter}
		if msh == 1 {
			e2eBase = c.WallSec
		} else if e2eBase > 0 {
			row.VsM1 = c.WallSec / e2eBase
		}
		rep.Sharded = append(rep.Sharded, row)
		fmt.Printf("sharded endtoend p=%-6d M=%d  wall %-7.3fs  in %-10.0f B/iter  vs_m1 %.3f\n",
			e2eP, msh, row.WallSec, row.WireInIter, row.VsM1)
	}
	// Adaptive rows: the redundancy-controller race. Every policy replays the
	// identical fault schedule on the sim runtime; the nested-L4 row of each
	// scenario anchors the vs_max ratios.
	adIters := 30
	adScenarios := []string{"bursty-tail", "flaky-tail", "slow-decile"}
	if quick {
		adIters = 8
		adScenarios = []string{"bursty-tail"}
	}
	for _, scen := range adScenarios {
		rows, err := benchAdaptive(scen, adIters)
		if err != nil {
			return err
		}
		rep.Adaptive = append(rep.Adaptive, rows...)
		for _, a := range rows {
			fmt.Printf("adaptive %-12s %-10s parts %-5d (%.2fx max)  wall %-7.1f (%.2fx)  heard %-5.2f switches %d completed=%v\n",
				a.Scenario, a.Policy, a.Parts, a.PartsVsMax, a.WallVirtual, a.WallVsMax, a.AvgHeard, a.LevelSwitches, a.Completed)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	fmt.Printf("sweep written to %s\n", path)
	return nil
}

// benchAdaptive races the redundancy policies under one straggler scenario
// on the sim runtime and returns one row per policy. All runs share the
// cluster shape (m=n=8, r=4), seed, staggered latency and fault schedule;
// only the coding policy differs.
func benchAdaptive(scenario string, iters int) ([]sweepAdaptive, error) {
	const m, n, r = 8, 8, 4
	var plan *faults.Plan
	if scenario == "bursty-tail" {
		plan = &faults.Plan{N: n, Slowdowns: []faults.Slowdown{
			{Worker: n - 1, From: 0, Every: 12, Span: 3, Factor: 8},
			{Worker: n - 2, From: 0, Every: 12, Span: 3, Factor: 6},
			{Worker: n - 3, From: 0, Every: 12, Span: 3, Factor: 6},
		}}
	} else {
		var err error
		plan, err = faults.Scenario(scenario, n, 9)
		if err != nil {
			return nil, err
		}
	}
	stagger := make([]float64, n)
	for w := range stagger {
		stagger[w] = float64(w + 1)
	}
	type policy struct {
		name   string
		scheme string
		ctl    cluster.Controller
	}
	policies := []policy{
		{"adaptive", "nested", &cluster.AIMDController{Window: 2}},
		{"nested-L4", "nested", &cluster.FixedLevelController{Level: 4}},
		{"nested-L3", "nested", &cluster.FixedLevelController{Level: 3}},
		{"nested-L2", "nested", &cluster.FixedLevelController{Level: 2}},
		{"nested-L1", "nested", &cluster.FixedLevelController{Level: 1}},
		{"bcc", "bcc", nil},
		{"cyclicmds", "cyclicmds", nil},
	}
	rows := make([]sweepAdaptive, 0, len(policies))
	var maxParts int
	var maxWall float64
	for _, pol := range policies {
		rng := rngutil.New(31)
		ds, err := dataset.Generate(dataset.Config{N: 4 * m, Dim: 512, Separation: 1.5}, rng.Split())
		if err != nil {
			return nil, err
		}
		units, err := ds.Units(m)
		if err != nil {
			return nil, err
		}
		sch, err := coding.Lookup(pol.scheme)
		if err != nil {
			return nil, err
		}
		cplan, err := sch.Plan(m, n, r, rng.Split())
		if err != nil {
			return nil, err
		}
		mod := model.NewLogistic(ds)
		parts := 0
		cfg := &cluster.Config{
			Plan:       cplan,
			Model:      mod,
			Units:      units,
			Opt:        optimize.NewNesterov(make([]float64, mod.Dim()), optimize.Constant(0.5)),
			Iterations: iters,
			// Worker w's full-load compute finishes (w+1) virtual units after
			// broadcast (4 points per unit, so PerPoint = 1/(4r)); at level L
			// it finishes proportionally earlier.
			Latency:    cluster.Fixed{PerPoint: 1.0 / (4 * r), Factor: stagger},
			Faults:     plan,
			Controller: pol.ctl,
			Observer: cluster.ObserverFuncs{Iteration: func(st cluster.IterStats) {
				l := st.Level
				if l == 0 {
					l = r // fixed schemes compute their full load every iteration
				}
				parts += l * n
			}},
		}
		res, err := cluster.RunSim(cfg)
		completed := err == nil && res != nil && len(res.Iters) == iters
		if err != nil && res == nil {
			return nil, fmt.Errorf("adaptive sweep: %s/%s: %w", scenario, pol.name, err)
		}
		row := sweepAdaptive{Scenario: scenario, Policy: pol.name, Iters: iters,
			Completed: completed, Parts: parts}
		if res != nil {
			row.WallVirtual = res.TotalWall
			row.AvgHeard = res.AvgWorkersHeard
			row.LevelSwitches = res.LevelSwitches
		}
		if pol.name == "nested-L4" {
			maxParts, maxWall = row.Parts, row.WallVirtual
		}
		rows = append(rows, row)
	}
	for i := range rows {
		if maxParts > 0 {
			rows[i].PartsVsMax = float64(rows[i].Parts) / float64(maxParts)
		}
		if maxWall > 0 {
			rows[i].WallVsMax = rows[i].WallVirtual / maxWall
		}
	}
	return rows, nil
}

// benchGradient measures one full worker-gradient pass over a synthetic
// dataset at the given dimension and density, dense vs CSR.
func benchGradient(rows, p int, density float64) (sweepGradient, error) {
	gen := density
	if gen >= 1 {
		gen = 0 // dense generator
	}
	ds, err := dataset.Generate(dataset.Config{N: rows, Dim: p, Separation: 1.5, Density: gen}, rngutil.New(11))
	if err != nil {
		return sweepGradient{}, err
	}
	var sparseX, denseX vecmath.AnyMatrix
	if csr, ok := ds.Sparse(); ok {
		sparseX, denseX = csr, csr.ToDense()
	} else {
		m := ds.X.(*vecmath.Matrix)
		sparseX, denseX = vecmath.CSRFromDense(m), m
	}
	w := make([]float64, p)
	rng := rngutil.New(12)
	for i := range w {
		w[i] = rng.Normal()
	}
	run := func(x vecmath.AnyMatrix) testing.BenchmarkResult {
		mod := &model.Logistic{Data: &dataset.Dataset{X: x, Y: ds.Y}}
		out := make([]float64, p)
		rowIdx := model.AllRows(rows)
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				model.FullGradientInto(mod, w, out, rowIdx)
			}
		})
	}
	dres := run(denseX)
	sres := run(sparseX)
	g := sweepGradient{
		P:        p,
		Density:  density,
		Rows:     rows,
		NNZ:      sparseX.NNZ(),
		DenseNs:  float64(dres.NsPerOp()),
		CSRNs:    float64(sres.NsPerOp()),
		CSRAlloc: sres.AllocsPerOp(),
	}
	if g.CSRNs > 0 {
		g.Speedup = g.DenseNs / g.CSRNs
	}
	return g, nil
}

// benchComm runs one full tcp-loopback training job (wire frames, zero
// injected latency) under the given payload codec and reports the measured
// per-iteration wire bytes plus wall-clock. shards > 1 runs the sharded
// master with the scatter data plane (per-shard listeners). Deterministic:
// same seed and codec always reproduce the same traffic.
func benchComm(codec string, p, n, iters, shards int) (sweepComm, error) {
	m, r := n, n/4
	if r < 1 {
		r = 1
	}
	rng := rngutil.New(21)
	ds, err := dataset.Generate(dataset.Config{N: 4 * m, Dim: p, Separation: 1.5}, rng.Split())
	if err != nil {
		return sweepComm{}, err
	}
	units, err := ds.Units(m)
	if err != nil {
		return sweepComm{}, err
	}
	sch, err := coding.Lookup("bcc")
	if err != nil {
		return sweepComm{}, err
	}
	plan, err := sch.Plan(m, n, r, rng.Split())
	if err != nil {
		return sweepComm{}, err
	}
	mod := model.NewLogistic(ds)
	comm := cluster.CommOptions{Payload: codec}
	cfg := &cluster.Config{
		Plan:         plan,
		Model:        mod,
		Units:        units,
		Opt:          optimize.NewNesterov(make([]float64, mod.Dim()), optimize.Constant(0.5)),
		Iterations:   iters,
		Latency:      cluster.Zero{},
		Comm:         comm,
		MasterShards: shards,
	}
	// Best of three runs: a full run is milliseconds, so scheduler warm-up
	// noise dwarfs the signal on a single measurement. With Drain set the
	// engine waits for every worker's clean close before sampling its wire
	// totals, so BOTH directions are exactly reproducible across reps — the
	// master sends a fixed frame sequence and reads every reply frame — and
	// the checks pin that.
	var res *cluster.Result
	wall := 0.0
	for rep := 0; rep < 3; rep++ {
		cfg.Opt = optimize.NewNesterov(make([]float64, mod.Dim()), optimize.Constant(0.5))
		start := time.Now()
		r, err := cluster.RunLive(cfg, cluster.LiveOptions{TCP: true, Codec: "wire", Timeout: 30 * time.Second, Drain: true})
		if err != nil {
			return sweepComm{}, err
		}
		if w := time.Since(start).Seconds(); rep == 0 || w < wall {
			wall = w
		}
		if res != nil && res.TotalWireOut != r.TotalWireOut {
			return sweepComm{}, fmt.Errorf("comm sweep: broadcast bytes not reproducible across reps (%d vs %d)",
				res.TotalWireOut, r.TotalWireOut)
		}
		if res != nil && res.TotalWireIn != r.TotalWireIn {
			return sweepComm{}, fmt.Errorf("comm sweep: reply bytes not reproducible across reps (%d vs %d)",
				res.TotalWireIn, r.TotalWireIn)
		}
		res = r
	}
	c := sweepComm{
		Codec:       codec,
		P:           p,
		Workers:     n,
		Iters:       iters,
		WireInIter:  float64(res.TotalWireIn) / float64(iters),
		WireOutIter: float64(res.TotalWireOut) / float64(iters),
		WallSec:     wall,
	}
	if codec == "topk" {
		c.TopK = (p + 15) / 16 // the resolved default K = ceil(p/16)
	}
	return c, nil
}

// benchService pushes `jobs` identical tcp training jobs through one
// in-process daemon with a `fleet`-worker pool and reports batch throughput
// plus the queue-vs-run split of the tenants' lifetimes. Deterministic
// specs; wall-clock is the only varying measurement.
func benchService(jobs, fleet, jobWorkers, iters int) (sweepService, error) {
	d, err := service.Start(service.Options{})
	if err != nil {
		return sweepService{}, err
	}
	defer d.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < fleet; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			service.ServeWorker(ctx, d.Addr(), fmt.Sprintf("sweep-%d", i))
		}(i)
	}
	for len(d.Workers()) < fleet {
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	ids := make([]core.JobID, 0, jobs)
	for j := 0; j < jobs; j++ {
		st, err := d.Submit(core.Spec{
			DataPoints: 16 * jobWorkers,
			Dim:        512,
			Examples:   2 * jobWorkers,
			Workers:    jobWorkers,
			Load:       2,
			Iterations: iters,
			Seed:       uint64(100 + j),
			Runtime:    core.RuntimeTCP,
		})
		if err != nil {
			return sweepService{}, err
		}
		ids = append(ids, st.ID)
	}
	s := sweepService{Jobs: jobs, Fleet: fleet, JobWorkers: jobWorkers, Iters: iters}
	for _, id := range ids {
		st, err := d.Wait(context.Background(), id)
		if err != nil {
			return sweepService{}, err
		}
		if st.State != core.JobDone {
			return sweepService{}, fmt.Errorf("service sweep: job %d ended %s (%s)", id, st.State, st.Err)
		}
		s.QueueSec += st.QueueSeconds
		s.RunSec += st.RunSeconds
		if st.QueueSeconds > s.MaxQueueSec {
			s.MaxQueueSec = st.QueueSeconds
		}
	}
	s.WallSec = time.Since(start).Seconds()
	if s.WallSec > 0 {
		s.JobsPerSec = float64(jobs) / s.WallSec
	}
	if err := d.Close(); err != nil {
		return sweepService{}, err
	}
	cancel()
	wg.Wait()
	return s, nil
}

// benchShardedDecode measures the sharded master's per-iteration hot path:
// offer until decodable, then one goroutine per shard running DecodeSliceInto
// + gradient scale + UpdateSlice on its chunk-aligned coordinate slice — the
// masterShards shardLoop body — joined before the coordinator's FinishStep.
// shards=1 is the same loop over the single full-range slice.
func benchShardedDecode(scheme string, m, n, r, p, shards int) (sweepSharded, error) {
	s, err := coding.Lookup(scheme)
	if err != nil {
		return sweepSharded{}, err
	}
	plan, err := s.Plan(m, n, r, rngutil.New(1))
	if err != nil {
		return sweepSharded{}, err
	}
	rng := rngutil.New(2)
	gs := make([][]float64, m)
	for u := range gs {
		g := make([]float64, p)
		for t := range g {
			g[t] = rng.Normal()
		}
		gs[u] = g
	}
	assign := plan.Assignments()
	order := rngutil.New(3).Perm(n)
	msgs := make([][]coding.Message, n)
	for _, w := range order {
		parts := make([][]float64, len(assign[w]))
		for k, u := range assign[w] {
			parts[k] = gs[u]
		}
		msgs[w] = coding.Encode(plan, w, parts)
	}
	dec := plan.NewDecoder()
	sd, ok := dec.(coding.SliceDecoder)
	if !ok {
		return sweepSharded{}, fmt.Errorf("%s decoder does not implement SliceDecoder", scheme)
	}
	// The engine's shard map: contiguous ranges aligned to the default wire
	// chunk (cluster.shardBounds with DefaultChunk).
	bounds := chunkAlignedBounds(p, shards, wire.DefaultChunk)
	opt := optimize.NewNesterov(make([]float64, p), optimize.Constant(0.5))
	scale := 1 / float64(m)
	dst := make([]float64, p)
	errs := make([]error, shards)
	// Persistent shard goroutines with the engine's dispatch — two channel
	// operations per shard per iteration — so allocs_op reflects the steady
	// state of the real hot path, not goroutine-spawn cost.
	work := make([]chan struct{}, shards)
	done := make(chan int, shards)
	quit := make(chan struct{})
	defer close(quit)
	for sh := 0; sh < shards; sh++ {
		work[sh] = make(chan struct{}, 1)
		go func(sh, lo, hi int) {
			for {
				select {
				case <-quit:
					return
				case <-work[sh]:
				}
				if errs[sh] = sd.DecodeSliceInto(dst, lo, hi); errs[sh] == nil {
					for t := lo; t < hi; t++ {
						dst[t] *= scale
					}
					opt.UpdateSlice(dst, lo, hi)
				}
				done <- sh
			}
		}(sh, bounds[sh], bounds[sh+1])
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dec.Reset()
			for _, w := range order {
				for _, msg := range msgs[w] {
					dec.Offer(msg)
				}
				if dec.Decodable() {
					break
				}
			}
			for _, ch := range work {
				ch <- struct{}{}
			}
			for range work {
				<-done
			}
			opt.FinishStep()
		}
	})
	for sh, err := range errs {
		if err != nil {
			return sweepSharded{}, fmt.Errorf("sharded decode: shard %d [%d,%d): %w", sh, bounds[sh], bounds[sh+1], err)
		}
	}
	return sweepSharded{
		Mode:     "decode",
		Scheme:   scheme,
		P:        p,
		Shards:   shards,
		NsOp:     float64(res.NsPerOp()),
		AllocsOp: res.AllocsPerOp(),
	}, nil
}

// chunkAlignedBounds mirrors the engine's shard map: [0, dim) cut into
// `shards` contiguous ranges aligned to the wire chunk, earlier shards taking
// the extra chunk, the final boundary clamped to dim. With more shards than
// chunks the tail shards own empty (no-op) ranges, exactly like the engine.
func chunkAlignedBounds(dim, shards, chunk int) []int {
	nChunks := (dim + chunk - 1) / chunk
	bounds := make([]int, shards+1)
	base, extra := nChunks/shards, nChunks%shards
	at := 0
	for s := 0; s < shards; s++ {
		bounds[s] = at * chunk
		if bounds[s] > dim {
			bounds[s] = dim
		}
		at += base
		if s < extra {
			at++
		}
	}
	bounds[shards] = dim
	return bounds
}

// benchDecode measures one offer-until-decodable round plus DecodeInto on a
// reused decoder, exactly like the package BenchmarkDecode.
func benchDecode(scheme string, m, n, r, p, par int) (sweepDecode, error) {
	s, err := coding.Lookup(scheme)
	if err != nil {
		return sweepDecode{}, err
	}
	plan, err := s.Plan(m, n, r, rngutil.New(1))
	if err != nil {
		return sweepDecode{}, err
	}
	rng := rngutil.New(2)
	gs := make([][]float64, m)
	for u := range gs {
		g := make([]float64, p)
		for t := range g {
			g[t] = rng.Normal()
		}
		gs[u] = g
	}
	assign := plan.Assignments()
	order := rngutil.New(3).Perm(n)
	msgs := make([][]coding.Message, n)
	for _, w := range order {
		parts := make([][]float64, len(assign[w]))
		for k, u := range assign[w] {
			parts[k] = gs[u]
		}
		msgs[w] = coding.Encode(plan, w, parts)
	}
	dec := plan.NewDecoder()
	coding.SetDecodeParallelism(dec, par)
	dst := make([]float64, p)
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dec.Reset()
			for _, w := range order {
				for _, msg := range msgs[w] {
					dec.Offer(msg)
				}
				if dec.Decodable() {
					break
				}
			}
			if err := dec.DecodeInto(dst); err != nil {
				b.Fatal(err)
			}
		}
	})
	return sweepDecode{
		Scheme:   scheme,
		P:        p,
		Parallel: par,
		NsOp:     float64(res.NsPerOp()),
		AllocsOp: res.AllocsPerOp(),
	}, nil
}
