// Command bccbench regenerates the paper's tables and figures.
//
// Usage:
//
//	bccbench -exp all                  # every artifact, default sizes
//	bccbench -exp fig4 -full           # paper-size data (p=8000)
//	bccbench -exp fig5 -trials 5000
//	bccbench -exp fig2 -csv out/       # also write CSV files
//
// Experiment ids: fig2, fig4, table1, table2, fig5, theorem1, theorem2,
// commload, fractional, tailbound, all.
//
// -sweep switches to the performance sweep instead: the compute plane
// (dense-vs-sparse worker gradients across densities and dimensions, decode
// across payload sizes and DecodeParallelism), the comm plane (payload
// codec × dimension × workers over tcp loopback with measured wire bytes),
// the service plane (jobs × workers throughput through the multi-tenant
// daemon, queue-vs-run time split), the sharded master (coordinate-
// partitioned decode plus end-to-end scatter-plane runs at M ∈ {1, 2, 4}),
// and the adaptive-redundancy race (nested-adaptive vs every fixed level
// and the fixed bcc/cyclicmds codes under straggler scenarios, with
// per-run encoded-part counts), writing a JSON report (-sweep-out, default
// BENCH_PR9.json); -sweep-quick shrinks it to CI-smoke sizes.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"bcc/internal/experiments"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment id or 'all'")
		seed       = flag.Uint64("seed", 1, "random seed")
		trials     = flag.Int("trials", 0, "Monte-Carlo trials (0 = per-experiment default)")
		iters      = flag.Int("iters", 0, "training iterations for fig4/tables (0 = 100, as in the paper)")
		full       = flag.Bool("full", false, "paper-size data for fig4 (p=8000, 100 points per example)")
		quick      = flag.Bool("quick", false, "shrunken sizes for a fast smoke run")
		timeout    = flag.Duration("timeout", 0, "deadline for the whole suite (0 = none); Ctrl-C also aborts cleanly")
		csvDir     = flag.String("csv", "", "directory to also write <id>.csv files into")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		sweep      = flag.Bool("sweep", false, "run the performance sweep (gradients × density, decode × parallelism, codec × dim × workers over tcp, service jobs × workers, sharded master, adaptive-redundancy race) instead of paper artifacts")
		sweepOut   = flag.String("sweep-out", "BENCH_PR9.json", "where -sweep writes its JSON report")
		sweepQuick = flag.Bool("sweep-quick", false, "tiny -sweep sizes for a fast smoke run")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.Names(), "\n"))
		return
	}
	if *sweep {
		if err := runSweep(*sweepOut, *sweepQuick); err != nil {
			fmt.Fprintf(os.Stderr, "bccbench: sweep: %v\n", err)
			os.Exit(1)
		}
		return
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opt := experiments.Options{
		Seed:       *seed,
		Trials:     *trials,
		Iterations: *iters,
		FullSize:   *full,
		Quick:      *quick,
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.Names()
	}
	start := time.Now()
	for _, id := range ids {
		tab, err := experiments.Run(ctx, id, opt, os.Stdout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bccbench: %v\n", err)
			os.Exit(1)
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, tab); err != nil {
				fmt.Fprintf(os.Stderr, "bccbench: %v\n", err)
				os.Exit(1)
			}
		}
	}
	fmt.Printf("done in %v\n", time.Since(start).Round(time.Millisecond))
}

func writeCSV(dir string, tab *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, tab.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	tab.CSV(f)
	return nil
}
