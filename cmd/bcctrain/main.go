// Command bcctrain runs one distributed logistic-regression training job
// with a chosen gradient-coding scheme, runtime and straggler profile, and
// prints the paper's metrics (recovery threshold, comm/comp breakdown).
//
// Examples:
//
//	bcctrain -scheme bcc -m 50 -n 50 -r 10 -iters 100 -ec2
//	bcctrain -scheme cyclicrep -m 20 -n 20 -r 5 -runtime tcp
//	bcctrain -scheme uncoded -m 20 -n 20 -dead 3,7    # watch it stall
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"bcc/internal/core"
	"bcc/internal/experiments"
	"bcc/internal/rngutil"
	"bcc/internal/trace"
)

func main() {
	var (
		scheme  = flag.String("scheme", "bcc", "gradient code: bcc|uncoded|cyclicrep|cyclicmds|fractional|randomized")
		m       = flag.Int("m", 50, "number of example units")
		n       = flag.Int("n", 50, "number of workers")
		r       = flag.Int("r", 10, "computational load (units per worker)")
		iters   = flag.Int("iters", 100, "gradient iterations")
		points  = flag.Int("points", 10, "raw data points per unit")
		dim     = flag.Int("dim", 800, "feature dimension p")
		step    = flag.Float64("step", 0.5, "learning rate")
		optName = flag.String("opt", "nesterov", "optimizer: nesterov|gd")
		seed    = flag.Uint64("seed", 1, "random seed")
		runtime = flag.String("runtime", "sim", "runtime: sim|live|tcp")
		pipe    = flag.Bool("pipelined", false, "broadcast the next query the moment an iteration decodes, cancelling straggler work in flight")
		ec2     = flag.Bool("ec2", false, "inject the calibrated EC2-like straggler profile")
		dead    = flag.String("dead", "", "comma-separated worker indices that never respond")
		lossEv  = flag.Int("loss-every", 10, "record training loss every k iterations (0=never)")
		doTrace = flag.Bool("trace", false, "print an ASCII Gantt of the first iteration (sim runtime)")
		ckptOut = flag.String("checkpoint", "", "write optimizer state here after the run")
		resume  = flag.String("resume", "", "restore optimizer state from this checkpoint before running")
	)
	flag.Parse()

	spec := core.Spec{
		DataPoints: *m * *points,
		Dim:        *dim,
		Examples:   *m,
		Workers:    *n,
		Load:       *r,
		Scheme:     *scheme,
		Iterations: *iters,
		StepSize:   *step,
		Optimizer:  *optName,
		Seed:       *seed,
		Runtime:    *runtime,
		Pipelined:  *pipe,
		LossEvery:  *lossEv,
	}
	if *ec2 {
		lat, err := experiments.EC2Latency(*n, *points, rngutil.New(*seed^0xec2))
		if err != nil {
			fail(err)
		}
		spec.Latency = lat
		spec.IngressPerUnit = 5.5e-3
	}
	if *dead != "" {
		for _, tok := range strings.Split(*dead, ",") {
			idx, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil {
				fail(fmt.Errorf("bad -dead entry %q: %w", tok, err))
			}
			spec.Dead = append(spec.Dead, idx)
		}
	}

	var rec *trace.Recorder
	if *doTrace {
		if *runtime != "sim" {
			fail(fmt.Errorf("-trace requires -runtime sim"))
		}
		rec = &trace.Recorder{}
		spec.Trace = rec
	}

	job, err := core.NewJob(spec)
	if err != nil {
		fail(err)
	}
	completed := 0
	if *resume != "" {
		if completed, err = job.RestoreCheckpoint(*resume); err != nil {
			fail(err)
		}
		fmt.Printf("resumed from %s (%d iterations already completed)\n", *resume, completed)
	}

	fmt.Printf("training logistic regression: scheme=%s m=%d n=%d r=%d p=%d points=%d runtime=%s\n",
		*scheme, *m, *n, *r, *dim, spec.DataPoints, *runtime)
	fmt.Printf("plan: worst-case threshold=%d expected threshold=%.2f comm load/worker=%.0f\n",
		job.Plan.WorstCaseThreshold(), job.Plan.ExpectedThreshold(), job.Plan.CommLoadPerWorker())

	res, err := job.Run()
	if err != nil {
		fail(err)
	}
	fmt.Printf("\n%-6s %-10s %-10s %-8s %-10s\n", "iter", "wall(s)", "K", "units", "loss")
	for _, it := range res.Iters {
		if *lossEv == 0 || it.Iter%*lossEv != 0 {
			continue
		}
		fmt.Printf("%-6d %-10.4f %-10d %-8.0f %-10.5f\n", it.Iter, it.Wall, it.WorkersHeard, it.Units, it.Loss)
	}
	fmt.Printf("\ntotals: wall=%.3fs comm=%.3fs comp=%.3fs elapsed=%.3fs\n",
		res.TotalWall, res.TotalComm, res.TotalCompute, res.TotalElapsed)
	fmt.Printf("per-iteration wall:                     %s\n", res.WallSummary())
	fmt.Printf("recovery threshold (avg workers heard): %.2f\n", res.AvgWorkersHeard)
	fmt.Printf("communication load (avg units):         %.2f\n", res.AvgUnits)
	fmt.Printf("bytes received by master:               %d\n", res.TotalBytes)
	fmt.Printf("training accuracy:                      %.4f\n", job.Accuracy(res.FinalW))

	if *ckptOut != "" {
		if err := job.Checkpoint(*ckptOut, completed+*iters); err != nil {
			fail(err)
		}
		fmt.Printf("checkpoint written to %s\n", *ckptOut)
	}

	if rec != nil && rec.Len() > 0 {
		gantt, err := rec.Gantt(0, 80)
		if err != nil {
			fail(err)
		}
		fmt.Printf("\ntimeline of iteration 0 (b=broadcast c=compute u=upload q=queued D=drain |=decode):\n%s", gantt)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "bcctrain: %v\n", err)
	os.Exit(1)
}
