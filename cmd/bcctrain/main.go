// Command bcctrain runs one distributed logistic-regression training job
// with a chosen gradient-coding scheme, runtime and straggler profile, and
// prints the paper's metrics (recovery threshold, comm/comp breakdown).
//
// The run is context-bounded and observable: -timeout deadline-bounds it,
// Ctrl-C interrupts it, and both print the partial stats of the iterations
// that finished; -progress streams a per-iteration line from an Observer
// hooked into the master engine; -grad-tol stops early once the gradient
// norm falls below a tolerance; -checkpoint-every auto-checkpoints the
// optimizer during the run.
//
// Examples:
//
//	bcctrain -scheme bcc -m 50 -n 50 -r 10 -iters 100 -ec2
//	bcctrain -scheme cyclicrep -m 20 -n 20 -r 5 -runtime tcp -progress
//	bcctrain -scheme uncoded -m 20 -n 20 -dead 3,7    # fails fast: below the decodable threshold
//	bcctrain -ec2 -timeout 5s                         # partial results at the deadline
//	bcctrain -faults rolling-restart -progress        # deterministic fault scenario
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"bcc/internal/cluster"
	"bcc/internal/core"
	"bcc/internal/experiments"
	"bcc/internal/faults"
	"bcc/internal/rngutil"
	"bcc/internal/service"
	"bcc/internal/trace"
)

func main() {
	var (
		scheme    = flag.String("scheme", "bcc", "gradient code: bcc|uncoded|cyclicrep|cyclicmds|fractional|randomized")
		m         = flag.Int("m", 50, "number of example units")
		n         = flag.Int("n", 50, "number of workers")
		r         = flag.Int("r", 10, "computational load (units per worker)")
		iters     = flag.Int("iters", 100, "gradient iterations")
		points    = flag.Int("points", 10, "raw data points per unit")
		dim       = flag.Int("dim", 800, "feature dimension p")
		step      = flag.Float64("step", 0.5, "learning rate")
		optName   = flag.String("opt", "nesterov", "optimizer: nesterov|gd")
		seed      = flag.Uint64("seed", 1, "random seed")
		runtime   = flag.String("runtime", "sim", "runtime: sim|live|tcp")
		codec     = flag.String("codec", "raw64", "payload codec: raw64|f32|topk (lossy codecs compress gradient traffic deterministically)")
		topk      = flag.Int("topk", 0, "coordinates kept per reply vector with -codec topk (0 = dim/16)")
		chunk     = flag.Int("chunk", 0, "wire framing chunk size in elements for the tcp runtime's wire frames (0 = default)")
		pipe      = flag.Bool("pipelined", false, "broadcast the next query the moment an iteration decodes, cancelling straggler work in flight")
		ec2       = flag.Bool("ec2", false, "inject the calibrated EC2-like straggler profile")
		dead      = flag.String("dead", "", "comma-separated worker indices that never respond")
		drop      = flag.Float64("drop", 0, "probability in [0,1) of losing each worker transmission")
		dropSeed  = flag.Uint64("drop-seed", 0, "seed for the -drop fault pattern (0 = default)")
		faultsN   = flag.String("faults", "", "named fault scenario: "+strings.Join(faults.Names(), "|"))
		faultSd   = flag.Uint64("fault-seed", 0, "seed for the -faults scenario (0 = derive from -seed)")
		parallel  = flag.Int("parallel", 0, "goroutines per worker for gradient computation (0/1 = serial)")
		decodePar = flag.Int("decode-parallel", 0, "goroutines for the master's decode combination (0/1 = serial; bit-identical results)")
		shards    = flag.Int("master-shards", 0, "master shards owning contiguous coordinate slices of decode+update (0/1 = unsharded; bit-identical results)")
		adapt     = flag.Bool("adapt", false, "with -scheme nested: retune the redundancy level each iteration with the built-in straggler-tracking controller")
		adaptWin  = flag.Int("adapt-window", 0, "with -adapt: consecutive over-provisioned iterations before stepping the level down (0 = default 3)")
		density   = flag.Float64("density", 0, "feature density in (0,1) for a sparse CSR dataset (0 = dense)")
		timeout   = flag.Duration("timeout", 0, "deadline for the whole run (0 = none); on expiry partial stats are printed")
		progress  = flag.Bool("progress", false, "print a live per-iteration progress line (iter, workers heard, grad norm)")
		gradTol   = flag.Float64("grad-tol", 0, "stop early once the gradient norm falls to this tolerance (0 = run all iterations)")
		lossEv    = flag.Int("loss-every", 10, "record training loss every k iterations (0=never)")
		doTrace   = flag.Bool("trace", false, "print an ASCII Gantt of the first iteration (sim runtime)")
		ckptOut   = flag.String("checkpoint", "", "write optimizer state here after the run")
		ckptEv    = flag.Int("checkpoint-every", 0, "also auto-checkpoint to -checkpoint every k iterations during the run")
		resume    = flag.String("resume", "", "restore optimizer state from this checkpoint before running")
		submit    = flag.String("submit", "", "submit the job to a bccserve daemon at this address instead of running locally")
	)
	flag.Parse()

	spec := core.Spec{
		DataPoints:         *m * *points,
		Dim:                *dim,
		Examples:           *m,
		Workers:            *n,
		Load:               *r,
		Scheme:             core.Scheme(*scheme),
		Iterations:         *iters,
		StepSize:           *step,
		Optimizer:          core.Optimizer(*optName),
		Seed:               *seed,
		Runtime:            core.Runtime(*runtime),
		Payload:            core.Payload(*codec),
		TopK:               *topk,
		WireChunk:          *chunk,
		Pipelined:          *pipe,
		DropProb:           *drop,
		DropSeed:           *dropSeed,
		FaultScenario:      *faultsN,
		FaultSeed:          *faultSd,
		ComputeParallelism: *parallel,
		DecodeParallelism:  *decodePar,
		MasterShards:       *shards,
		AdaptRedundancy:    *adapt,
		AdaptWindow:        *adaptWin,
		Density:            *density,
		GradNormTol:        *gradTol,
		LossEvery:          *lossEv,
	}
	if *ec2 {
		lat, err := experiments.EC2Latency(*n, *points, rngutil.New(*seed^0xec2))
		if err != nil {
			fail(err)
		}
		spec.Latency = lat
		spec.IngressPerUnit = 5.5e-3
	}
	if *dead != "" {
		for _, tok := range strings.Split(*dead, ",") {
			idx, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil {
				fail(fmt.Errorf("bad -dead entry %q: %w", tok, err))
			}
			spec.Dead = append(spec.Dead, idx)
		}
	}
	if *submit != "" {
		// Remote submission ships only the serializable spec; process-local
		// options cannot travel and are rejected up front with their flag
		// names (EncodeSpec would catch Latency/Trace/checkpointing too, but
		// the flag names are friendlier than the spec field names).
		switch {
		case *ec2:
			fail(fmt.Errorf("-submit cannot ship the -ec2 latency model; model stragglers with -faults, -dead or -drop"))
		case *doTrace:
			fail(fmt.Errorf("-submit does not support -trace"))
		case *ckptOut != "" || *ckptEv > 0 || *resume != "":
			fail(fmt.Errorf("-submit does not support checkpoint flags (checkpoints are local to the daemon)"))
		}
		submitRemote(*submit, spec, *progress, *timeout)
		return
	}
	if *progress {
		spec.Observer = cluster.ObserverFuncs{
			Iteration: func(st cluster.IterStats) {
				if st.Level > 0 {
					fmt.Printf("iter %4d  wall %8.4fs  K %-4d L %-3d |grad| %.4e\n", st.Iter, st.Wall, st.WorkersHeard, st.Level, st.GradNorm)
					return
				}
				fmt.Printf("iter %4d  wall %8.4fs  K %-4d |grad| %.4e\n", st.Iter, st.Wall, st.WorkersHeard, st.GradNorm)
			},
			Fault: func(ev faults.Event) {
				fmt.Printf("fault %s\n", ev)
			},
		}
	}
	if *ckptEv > 0 {
		if *ckptOut == "" {
			fail(fmt.Errorf("-checkpoint-every requires -checkpoint"))
		}
		spec.CheckpointEvery = *ckptEv
		spec.CheckpointPath = *ckptOut
	}

	var rec *trace.Recorder
	if *doTrace {
		if *runtime != "sim" {
			fail(fmt.Errorf("-trace requires -runtime sim"))
		}
		rec = &trace.Recorder{}
		spec.Trace = rec
	}

	job, err := core.NewJob(spec)
	if err != nil {
		fail(err)
	}
	completed := 0
	if *resume != "" {
		// Sharded jobs resume from the per-shard file set written by a
		// sharded run; unsharded jobs from the single file.
		if completed, err = job.RestoreShardedCheckpoint(*resume); err != nil {
			fail(err)
		}
		fmt.Printf("resumed from %s (%d iterations already completed)\n", *resume, completed)
	}

	fmt.Printf("training logistic regression: scheme=%s m=%d n=%d r=%d p=%d points=%d runtime=%s\n",
		*scheme, *m, *n, *r, *dim, spec.DataPoints, *runtime)
	fmt.Printf("plan: worst-case threshold=%d expected threshold=%.2f comm load/worker=%.0f\n",
		job.Plan.WorstCaseThreshold(), job.Plan.ExpectedThreshold(), job.Plan.CommLoadPerWorker())

	// Ctrl-C cancels the run; -timeout deadline-bounds it. Either way the
	// partial Result of the finished iterations is printed below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	res, err := job.RunContext(ctx)
	interrupted := false
	if err != nil {
		if res == nil || !errors.Is(err, ctx.Err()) {
			fail(err)
		}
		interrupted = true
		fmt.Printf("\nrun interrupted (%v) after %d iterations; partial results:\n", err, len(res.Iters))
	}
	fmt.Printf("\n%-6s %-10s %-10s %-8s %-10s\n", "iter", "wall(s)", "K", "units", "loss")
	for _, it := range res.Iters {
		if *lossEv == 0 || it.Iter%*lossEv != 0 {
			continue
		}
		fmt.Printf("%-6d %-10.4f %-10d %-8.0f %-10.5f\n", it.Iter, it.Wall, it.WorkersHeard, it.Units, it.Loss)
	}
	fmt.Printf("\ntotals: wall=%.3fs comm=%.3fs comp=%.3fs elapsed=%.3fs\n",
		res.TotalWall, res.TotalComm, res.TotalCompute, res.TotalElapsed)
	fmt.Printf("per-iteration wall:                     %s\n", res.WallSummary())
	fmt.Printf("recovery threshold (avg workers heard): %.2f\n", res.AvgWorkersHeard)
	fmt.Printf("communication load (avg units):         %.2f\n", res.AvgUnits)
	fmt.Printf("payload bytes received by master:       %d\n", res.TotalBytes)
	if spec.AdaptRedundancy {
		fmt.Printf("redundancy level switches:              %d\n", res.LevelSwitches)
	}
	if res.TotalWireIn > 0 || res.TotalWireOut > 0 {
		fmt.Printf("measured wire bytes (in/out):           %d/%d\n", res.TotalWireIn, res.TotalWireOut)
	}
	for _, ss := range res.Shards {
		fmt.Printf("master shard %d [%d,%d): decode=%.3fms slice-bytes-in=%d\n",
			ss.Shard, ss.Lo, ss.Hi, float64(ss.DecodeNs)/1e6, ss.SliceBytesIn)
	}
	fmt.Printf("training accuracy:                      %.4f\n", job.Accuracy(res.FinalW))

	if *ckptOut != "" {
		if err := job.CheckpointSharded(*ckptOut, completed+len(res.Iters)); err != nil {
			fail(err)
		}
		if spec.MasterShards > 1 {
			fmt.Printf("checkpoint written to %s.shard0..%d (one file per master shard)\n",
				*ckptOut, spec.MasterShards-1)
		} else {
			fmt.Printf("checkpoint written to %s\n", *ckptOut)
		}
	}

	if rec != nil && rec.Len() > 0 {
		gantt, err := rec.Gantt(0, 80)
		if err != nil {
			fail(err)
		}
		fmt.Printf("\ntimeline of iteration 0 (b=broadcast c=compute u=upload q=queued D=drain |=decode):\n%s", gantt)
	}
	if interrupted {
		os.Exit(1)
	}
}

// submitRemote ships the spec to a bccserve daemon and watches the job to a
// terminal state. Ctrl-C cancels the job on the daemon (which keeps the
// partial result) rather than abandoning it. Exits nonzero unless the job
// ends done.
func submitRemote(addr string, spec core.Spec, progress bool, timeout time.Duration) {
	c, err := service.Dial(addr)
	if err != nil {
		fail(err)
	}
	defer c.Close()
	st, err := c.Submit(spec)
	if err != nil {
		fail(err)
	}
	fmt.Printf("submitted job %d to %s: scheme=%s runtime=%s n=%d iters=%d\n",
		st.ID, addr, st.Scheme, st.Runtime, st.Workers, st.Iterations)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	lastIter := -1
	onStatus := func(s service.JobStatus) {
		if progress && s.Iter != lastIter {
			lastIter = s.Iter
			fmt.Printf("job %d: %-8s iter %4d/%d  K %-3d |grad| %.4e\n",
				s.ID, s.State, s.Iter, s.Iterations, s.WorkersHeard, s.GradNorm)
		}
	}
	fin, err := c.Watch(ctx, st.ID, 200*time.Millisecond, onStatus)
	if err != nil && ctx.Err() != nil {
		fmt.Printf("interrupted; canceling job %d on the daemon\n", st.ID)
		if _, cerr := c.Cancel(st.ID); cerr != nil {
			fail(cerr)
		}
		if fin, err = c.Watch(context.Background(), st.ID, 100*time.Millisecond, nil); err != nil {
			fail(err)
		}
	} else if err != nil {
		fail(err)
	}

	fmt.Printf("\njob %d finished: state=%s", fin.ID, fin.State)
	if fin.Err != "" {
		fmt.Printf(" (%s)", fin.Err)
	}
	fmt.Println()
	fmt.Printf("iterations completed:   %d/%d\n", fin.Iter, fin.Iterations)
	fmt.Printf("queue / run seconds:    %.3f / %.3f\n", fin.QueueSeconds, fin.RunSeconds)
	fmt.Printf("final gradient norm:    %.4e\n", fin.GradNorm)
	if fin.Loss != 0 {
		fmt.Printf("last sampled loss:      %.5f\n", fin.Loss)
	}
	fmt.Printf("payload bytes:          %d\n", fin.Bytes)
	if fin.WireIn > 0 || fin.WireOut > 0 {
		fmt.Printf("measured wire bytes:    %d in / %d out\n", fin.WireIn, fin.WireOut)
	}
	for _, ss := range fin.Shards {
		fmt.Printf("master shard %d [%d,%d): decode=%.3fms slice-bytes-in=%d\n",
			ss.Shard, ss.Lo, ss.Hi, float64(ss.DecodeNs)/1e6, ss.SliceBytesIn)
	}
	if fin.Faults > 0 {
		fmt.Printf("fault events:           %d\n", fin.Faults)
	}
	if fin.State != core.JobDone {
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "bcctrain: %v\n", err)
	os.Exit(1)
}
