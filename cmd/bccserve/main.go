// Command bccserve runs the multi-tenant coded-training service: a
// long-running master daemon that accepts job submissions over the wire
// protocol (see bcctrain -submit), leases workers to jobs from a shared
// fleet, and exposes job status and Prometheus metrics over HTTP.
//
// A daemon with four in-process fleet workers and an HTTP surface:
//
//	bccserve -addr 127.0.0.1:9788 -http 127.0.0.1:9789 -workers 4
//
// Fleet workers can also join from other processes or machines:
//
//	bccserve -join 127.0.0.1:9788 -name box2-w0
//
// Submit and watch jobs with bcctrain:
//
//	bcctrain -submit 127.0.0.1:9788 -scheme bcc -m 12 -n 4 -r 3 -runtime tcp
//
// SIGINT/SIGTERM drains gracefully: new submissions are rejected, queued
// jobs are canceled, and running jobs get -drain-timeout to finish before
// being interrupted (keeping their partial results).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"bcc/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:9788", "control listen address (workers join and clients submit here)")
		httpAddr   = flag.String("http", "", "HTTP status/metrics listen address (empty = no HTTP surface)")
		workers    = flag.Int("workers", 0, "in-process fleet workers to start alongside the daemon")
		join       = flag.String("join", "", "worker-only mode: join the daemon at this address instead of serving")
		name       = flag.String("name", "", "worker name prefix (worker-only mode: the name itself)")
		queue      = flag.Int("queue", 64, "maximum jobs waiting for admission")
		poolCap    = flag.Int("pool-cap", 0, "cap every job's reply-buffer free list (0 = per-job default)")
		leaseWait  = flag.Duration("lease-timeout", 30*time.Second, "per-job timeout for leased workers to dial, and per-iteration reply timeout")
		drainGrace = flag.Duration("drain-grace", 2*time.Second, "per-job wait for workers' clean close after its run")
		drainWait  = flag.Duration("drain-timeout", 30*time.Second, "on SIGINT/SIGTERM, how long running jobs may finish before being canceled")
		quiet      = flag.Bool("quiet", false, "suppress lifecycle log lines")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *join != "" {
		// Worker-only mode: one fleet worker serving leases until the daemon
		// closes the fleet (clean exit) or a signal arrives.
		if err := service.ServeWorker(ctx, *join, *name); err != nil && ctx.Err() == nil {
			fail(err)
		}
		return
	}

	logf := log.New(os.Stderr, "", log.LstdFlags).Printf
	if *quiet {
		logf = nil
	}
	d, err := service.Start(service.Options{
		Addr:         *addr,
		HTTPAddr:     *httpAddr,
		MaxQueue:     *queue,
		PoolCap:      *poolCap,
		LeaseTimeout: *leaseWait,
		DrainGrace:   *drainGrace,
		Logf:         logf,
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("bccserve: control plane on %s", d.Addr())
	if h := d.HTTPAddr(); h != "" {
		fmt.Printf(", http on %s", h)
	}
	fmt.Println()

	// In-process workers get their own context, NOT the signal context: a
	// drain needs the fleet alive so running jobs can finish. The daemon's
	// Close ends them with a clean EOF once the drain completes.
	workerCtx, stopWorkers := context.WithCancel(context.Background())
	defer stopWorkers()
	var wg sync.WaitGroup
	for i := 0; i < *workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wn := fmt.Sprintf("local-%d", i)
			if *name != "" {
				wn = fmt.Sprintf("%s-%d", *name, i)
			}
			if err := service.ServeWorker(workerCtx, d.Addr(), wn); err != nil && workerCtx.Err() == nil {
				fmt.Fprintf(os.Stderr, "bccserve: worker %s: %v\n", wn, err)
			}
		}(i)
	}

	<-ctx.Done()
	fmt.Println("bccserve: draining")
	grace, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := d.Drain(grace); err != nil {
		fail(err)
	}
	stopWorkers()
	wg.Wait()
	fmt.Println("bccserve: stopped")
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "bccserve: %v\n", err)
	os.Exit(1)
}
