// Command bcccluster runs a REAL multi-process BCC cluster over TCP: one
// master process and n worker processes that connect to it. Master and
// workers deterministically reconstruct the same dataset and placement from
// the shared seed, so only models and gradients cross the wire — exactly
// like the paper's EC2 deployment, where data is loaded onto the workers
// before the iterations start.
//
// Demo on one machine:
//
//	bcccluster master -addr 127.0.0.1:9777 -m 12 -n 4 -r 3 -iters 20 &
//	for i in 0 1 2 3; do bcccluster worker -addr 127.0.0.1:9777 -index $i & done
//	wait
//
// All topology flags (-m -n -r -scheme -seed ...) must match between master
// and workers.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"bcc/internal/cluster"
	"bcc/internal/core"
	"bcc/internal/faults"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	role := os.Args[1]
	fs := flag.NewFlagSet(role, flag.ExitOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:9777", "master listen/dial address")
		scheme    = fs.String("scheme", "bcc", "gradient-coding scheme")
		m         = fs.Int("m", 12, "example units")
		n         = fs.Int("n", 4, "workers")
		r         = fs.Int("r", 3, "computational load")
		iters     = fs.Int("iters", 20, "gradient iterations")
		points    = fs.Int("points", 10, "data points per unit")
		dim       = fs.Int("dim", 100, "feature dimension")
		seed      = fs.Uint64("seed", 1, "shared seed (must match across processes)")
		index     = fs.Int("index", 0, "worker index (worker role only)")
		wait      = fs.Duration("timeout", 60*time.Second, "per-iteration / accept timeout")
		frame     = fs.String("frame", "gob", "frame encoding: gob|wire (must match across processes)")
		codec     = fs.String("codec", "raw64", "payload codec: raw64|f32|topk (must match across processes)")
		topk      = fs.Int("topk", 0, "coordinates kept per reply vector with -codec topk (0 = dim/16)")
		chunk     = fs.Int("chunk", 0, "wire framing chunk size in elements for -frame wire (0 = default)")
		pipe      = fs.Bool("pipelined", false, "pipelined iterations: cancel stale in-flight work on a fresher query (must match across processes)")
		drop      = fs.Float64("drop", 0, "master-side probability in [0,1) of losing each worker transmission")
		dropSeed  = fs.Uint64("drop-seed", 0, "seed for the -drop fault pattern (master role only)")
		faultsN   = fs.String("faults", "", "named fault scenario: "+strings.Join(faults.Names(), "|")+" (must match across processes)")
		faultSd   = fs.Uint64("fault-seed", 0, "seed for the -faults scenario (0 = derive from -seed; must match across processes)")
		parallel  = fs.Int("parallel", 0, "goroutines per worker for gradient computation (0/1 = serial)")
		decodePar = fs.Int("decode-parallel", 0, "master: goroutines for the decode combination (0/1 = serial; bit-identical results)")
		shards    = fs.Int("master-shards", 0, "master shards with scatter data planes on the master port +1..+M (0/1 = unsharded; must match across processes)")
		adapt     = fs.Bool("adapt", false, "master: with -scheme nested, retune the redundancy level each iteration with the built-in straggler-tracking controller")
		adaptWin  = fs.Int("adapt-window", 0, "master: with -adapt, consecutive over-provisioned iterations before stepping the level down (0 = default 3)")
		progress  = fs.Bool("progress", false, "master: print a live per-iteration progress line")
	)
	if err := fs.Parse(os.Args[2:]); err != nil {
		fail(err)
	}

	// Both roles rebuild the identical job — data, placement and fault
	// schedule — from the shared seeds.
	job, err := core.NewJob(core.Spec{
		DataPoints:    *m * *points,
		Dim:           *dim,
		Examples:      *m,
		Workers:       *n,
		Load:          *r,
		Scheme:        core.Scheme(*scheme),
		Iterations:    *iters,
		Seed:          *seed,
		FaultScenario: *faultsN,
		FaultSeed:     *faultSd,
		Payload:       core.Payload(*codec),
		TopK:          *topk,
		WireChunk:     *chunk,
		// Validated here (nested-only, non-negative window) even though the
		// controller below is wired onto the Config directly.
		AdaptRedundancy: *adapt,
		AdaptWindow:     *adaptWin,
	})
	if err != nil {
		fail(err)
	}

	comm := cluster.CommOptions{Payload: *codec, TopK: *topk, Chunk: *chunk}

	// The scatter data plane needs no address exchange: shard s of a sharded
	// master listens on the master port +1+s, and both roles derive that. A
	// shard count beyond the model's wire chunks is clamped to the number of
	// non-empty shards so neither role opens (or dials) listeners for shards
	// that would own empty slices.
	effShards := *shards
	if max, err := comm.MaxShards(*dim); err == nil && effShards > max {
		fmt.Fprintf(os.Stderr, "bcccluster: -master-shards %d exceeds the %d wire chunk(s) of a %d-dim model; using %d\n",
			*shards, max, *dim, max)
		effShards = max
	}
	shardAddrs, err := shardAddrList(*addr, effShards)
	if err != nil {
		fail(err)
	}

	switch role {
	case "master":
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			fail(err)
		}
		fmt.Printf("master: listening on %s, waiting for %d workers\n", *addr, *n)
		var fab cluster.Fabric
		if len(shardAddrs) > 0 {
			// Bind every derived shard data port before accepting workers: the
			// ports are implicit (master port +1..+M), so a collision with an
			// unrelated service must fail fast, naming the port, rather than
			// surface as a hung worker dial mid-handshake.
			shardLns := make([]net.Listener, len(shardAddrs))
			for s, sa := range shardAddrs {
				if shardLns[s], err = net.Listen("tcp", sa); err != nil {
					fail(fmt.Errorf("shard %d data port %s is unavailable (derived as master port +%d; pick a master port with %d free successors): %w",
						s, sa, s+1, len(shardAddrs), err))
				}
			}
			fmt.Printf("master: %d shard data planes on %s .. %s\n", len(shardAddrs), shardAddrs[0], shardAddrs[len(shardAddrs)-1])
			fab, err = cluster.ServeMasterScatterPool(ln, shardLns, *n, *n, *wait, *frame, nil, comm, job.Model.Dim())
		} else {
			fab, err = cluster.ServeMaster(ln, *n, *wait, *frame, comm, job.Model.Dim())
		}
		if err != nil {
			fail(err)
		}
		defer fab.Close()
		fmt.Println("master: all workers connected, training")
		cfg := &cluster.Config{
			Plan:               job.Plan,
			Model:              job.Model,
			Units:              job.Units,
			Opt:                job.Opt,
			Iterations:         *iters,
			Pipelined:          *pipe,
			DropProb:           *drop,
			DropSeed:           *dropSeed,
			Faults:             job.Faults,
			ComputeParallelism: *parallel,
			DecodeParallelism:  *decodePar,
			MasterShards:       effShards,
			Comm:               comm,
		}
		if *adapt {
			cfg.Controller = &cluster.AIMDController{Window: *adaptWin}
		}
		if *progress {
			cfg.Observer = cluster.ObserverFuncs{Iteration: func(st cluster.IterStats) {
				if st.Level > 0 {
					fmt.Printf("master: iter %4d  K %-4d L %-3d |grad| %.4e\n", st.Iter, st.WorkersHeard, st.Level, st.GradNorm)
					return
				}
				fmt.Printf("master: iter %4d  K %-4d |grad| %.4e\n", st.Iter, st.WorkersHeard, st.GradNorm)
			}}
		}
		// Ctrl-C cancels the run and reports the iterations that finished.
		ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stopSignals()
		res, err := cluster.RunWithFabricContext(ctx, cfg, fab, cluster.LiveOptions{Timeout: *wait, TimeScale: 1})
		// Drain before the deferred Close: wait (bounded) for every worker to
		// observe the shutdown broadcast and close its side, so an interrupted
		// master ends worker processes with a clean close instead of a
		// connection reset mid-reply.
		if !cluster.DrainFabric(fab, 2*time.Second) {
			fmt.Fprintln(os.Stderr, "master: drain timed out; some workers may see a reset")
		}
		if err != nil {
			if res == nil || !errors.Is(err, context.Canceled) {
				fail(err)
			}
			fmt.Printf("master: interrupted after %d iterations\n", len(res.Iters))
		}
		fmt.Printf("master: done; avg recovery threshold %.2f, payload bytes %d, wire bytes in/out %d/%d, accuracy %.4f\n",
			res.AvgWorkersHeard, res.TotalBytes, res.TotalWireIn, res.TotalWireOut, job.Accuracy(res.FinalW))
		for _, ss := range res.Shards {
			fmt.Printf("master: shard %d [%d,%d) decode=%.3fms slice-bytes-in=%d\n",
				ss.Shard, ss.Lo, ss.Hi, float64(ss.DecodeNs)/1e6, ss.SliceBytesIn)
		}
	case "worker":
		if *index < 0 || *index >= *n {
			fail(fmt.Errorf("worker index %d out of range [0,%d)", *index, *n))
		}
		env := cluster.WorkerEnv{
			Index:              *index,
			Plan:               job.Plan,
			Model:              job.Model,
			Units:              job.Units,
			Latency:            cluster.Zero{},
			TimeScale:          1,
			Codec:              *frame,
			Comm:               comm,
			Faults:             job.Faults,
			ComputeParallelism: *parallel,
			Pipelined:          *pipe,
			ShardAddrs:         shardAddrs,
		}
		fmt.Printf("worker %d: dialing %s\n", *index, *addr)
		if err := cluster.DialAndServeWorker(*addr, env); err != nil {
			fail(err)
		}
		fmt.Printf("worker %d: shutdown\n", *index)
	default:
		usage()
	}
}

// shardAddrList derives the scatter listeners' addresses for a sharded
// master: shard s lives at the master port +1+s. Returns nil when unsharded.
func shardAddrList(addr string, shards int) ([]string, error) {
	if shards <= 1 {
		return nil, nil
	}
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		return nil, fmt.Errorf("-master-shards needs an explicit host:port master address: %w", err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil || port <= 0 {
		return nil, fmt.Errorf("-master-shards needs a numeric master port, got %q", portStr)
	}
	out := make([]string, shards)
	for s := range out {
		out[s] = net.JoinHostPort(host, strconv.Itoa(port+1+s))
	}
	return out, nil
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: bcccluster master|worker [flags]")
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "bcccluster: %v\n", err)
	os.Exit(1)
}
