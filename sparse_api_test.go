package bcc

import (
	"strings"
	"testing"
)

// TestSparsePublicAPI exercises the sparse entry points end to end through
// the public surface: load a LIBSVM snippet, pad it to the model dimension,
// train with decode parallelism on, and check the run is deterministic.
func TestSparsePublicAPI(t *testing.T) {
	var sb strings.Builder
	// 24 rows, 3 units of 8, alternating labels over 16 features.
	for i := 0; i < 24; i++ {
		if i%2 == 0 {
			sb.WriteString("+1 1:1 3:0.5\n")
		} else {
			sb.WriteString("-1 2:1 4:-0.5\n")
		}
	}
	ds, err := LoadLIBSVM(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	ds = PadDim(ds, 16)
	if ds.N() != 24 || ds.Dim() != 16 {
		t.Fatalf("loaded shape (%d,%d)", ds.N(), ds.Dim())
	}
	if _, ok := ds.Sparse(); !ok {
		t.Fatal("LIBSVM data should be CSR-backed")
	}
	run := func() []float64 {
		job, err := NewJobWithData(Spec{
			Examples: 6, Workers: 6, Load: 2,
			Scheme: SchemeCyclicRep, Iterations: 5, Seed: 9,
			DecodeParallelism: 4,
		}, ds)
		if err != nil {
			t.Fatal(err)
		}
		res, err := job.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalW
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sparse public run not deterministic")
		}
	}
}

// TestSparseSpecDensityPublic drives the Density knob through bcc.Train.
func TestSparseSpecDensityPublic(t *testing.T) {
	res, err := Train(Spec{
		Examples: 8, Workers: 8, Load: 2,
		DataPoints: 80, Dim: 32, Density: 0.15,
		Iterations: 4, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iters) != 4 {
		t.Fatalf("completed %d iterations", len(res.Iters))
	}
}
