package dataset

import (
	"math"
	"testing"

	"bcc/internal/rngutil"
	"bcc/internal/vecmath"
)

func TestGenerateShapes(t *testing.T) {
	rng := rngutil.New(1)
	d, err := Generate(Config{N: 100, Dim: 20, Separation: 1.5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 100 || d.Dim() != 20 {
		t.Fatalf("shapes: N=%d Dim=%d", d.N(), d.Dim())
	}
	if len(d.Y) != 100 || len(d.WStar) != 20 {
		t.Fatal("label / weight lengths wrong")
	}
}

func TestGenerateInvalidConfig(t *testing.T) {
	rng := rngutil.New(1)
	if _, err := Generate(Config{N: 0, Dim: 5}, rng); err == nil {
		t.Fatal("N=0 should fail")
	}
	if _, err := Generate(Config{N: 5, Dim: 0}, rng); err == nil {
		t.Fatal("Dim=0 should fail")
	}
}

func TestWStarIsSignVector(t *testing.T) {
	rng := rngutil.New(2)
	d, _ := Generate(Config{N: 10, Dim: 50, Separation: 1.5}, rng)
	for i, w := range d.WStar {
		if w != 1 && w != -1 {
			t.Fatalf("WStar[%d] = %v, want +-1", i, w)
		}
	}
}

func TestLabelsAreSigns(t *testing.T) {
	rng := rngutil.New(3)
	d, _ := Generate(Config{N: 500, Dim: 10, Separation: 1.5}, rng)
	pos := 0
	for _, y := range d.Y {
		if y != 1 && y != -1 {
			t.Fatalf("label %v not in {-1,+1}", y)
		}
		if y == 1 {
			pos++
		}
	}
	// Both classes should appear (mixture is symmetric).
	if pos == 0 || pos == 500 {
		t.Fatalf("degenerate label distribution: %d positives of 500", pos)
	}
}

func TestFeatureMoments(t *testing.T) {
	// Unit-variance Gaussian around tiny means: overall per-coordinate
	// variance should be ~1 and mean ~0 (mixture is symmetric).
	rng := rngutil.New(4)
	d, _ := Generate(Config{N: 4000, Dim: 5, Separation: 1.5}, rng)
	for j := 0; j < d.Dim(); j++ {
		var sum, sumsq float64
		for i := 0; i < d.N(); i++ {
			v := d.X.At(i, j)
			sum += v
			sumsq += v * v
		}
		mean := sum / float64(d.N())
		variance := sumsq/float64(d.N()) - mean*mean
		if math.Abs(mean) > 0.1 {
			t.Fatalf("coordinate %d mean %v too large", j, mean)
		}
		if math.Abs(variance-1) > 0.15 {
			t.Fatalf("coordinate %d variance %v too far from 1", j, variance)
		}
	}
}

func TestPaperLabelRuleCorrelation(t *testing.T) {
	// Under the paper's rule P(y=+1) = sigma(-x^T w*), the label should be
	// anti-correlated with the margin x^T w*.
	rng := rngutil.New(5)
	d, _ := Generate(Config{N: 3000, Dim: 20, Separation: 10}, rng)
	var corr float64
	for i := 0; i < d.N(); i++ {
		margin := d.X.RowDot(i, d.WStar)
		corr += margin * d.Y[i]
	}
	if corr >= 0 {
		t.Fatalf("paper label rule should anti-correlate margin and label, got sum %v", corr)
	}
	// And the standard rule should positively correlate.
	d2, _ := Generate(Config{N: 3000, Dim: 20, Separation: 10, StandardLabels: true}, rngutil.New(5))
	corr = 0
	for i := 0; i < d2.N(); i++ {
		corr += d2.X.RowDot(i, d2.WStar) * d2.Y[i]
	}
	if corr <= 0 {
		t.Fatalf("standard label rule should correlate margin and label, got sum %v", corr)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(Config{N: 50, Dim: 8, Separation: 1.5}, rngutil.New(99))
	b, _ := Generate(Config{N: 50, Dim: 8, Separation: 1.5}, rngutil.New(99))
	if vecmath.MaxAbsDiff(a.X.(*vecmath.Matrix).Data, b.X.(*vecmath.Matrix).Data) != 0 {
		t.Fatal("same seed produced different features")
	}
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			t.Fatal("same seed produced different labels")
		}
	}
}

func TestUnitsPartition(t *testing.T) {
	rng := rngutil.New(6)
	d, _ := Generate(Config{N: 103, Dim: 4, Separation: 1.5}, rng)
	units, err := d.Units(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 10 {
		t.Fatalf("unit count %d", len(units))
	}
	seen := make([]bool, d.N())
	for _, u := range units {
		for _, row := range u {
			if row < 0 || row >= d.N() || seen[row] {
				t.Fatalf("row %d repeated or out of range", row)
			}
			seen[row] = true
		}
	}
	for row, s := range seen {
		if !s {
			t.Fatalf("row %d not covered by any unit", row)
		}
	}
	// Sizes differ by at most 1.
	min, max := len(units[0]), len(units[0])
	for _, u := range units {
		if len(u) < min {
			min = len(u)
		}
		if len(u) > max {
			max = len(u)
		}
	}
	if max-min > 1 {
		t.Fatalf("unbalanced units: min %d max %d", min, max)
	}
	if UnionSize(units) != d.N() {
		t.Fatalf("UnionSize = %d", UnionSize(units))
	}
}

func TestUnitsErrors(t *testing.T) {
	rng := rngutil.New(7)
	d, _ := Generate(Config{N: 10, Dim: 2, Separation: 1.5}, rng)
	if _, err := d.Units(0); err == nil {
		t.Fatal("m=0 should fail")
	}
	if _, err := d.Units(11); err == nil {
		t.Fatal("m>N should fail")
	}
	units, err := d.Units(10)
	if err != nil || len(units) != 10 {
		t.Fatal("m=N should give singleton units")
	}
	for _, u := range units {
		if len(u) != 1 {
			t.Fatal("m=N units must be singletons")
		}
	}
}
