// Package dataset generates the synthetic classification data used in the
// paper's EC2 experiments (§III-C "Data Generation") and provides the
// unit/grouping machinery that maps data points onto the m "examples" the
// coding schemes operate on.
//
// Paper model: true weights w* with coordinates uniform on {-1, +1};
// features x ~ 0.5 N(mu1, I) + 0.5 N(mu2, I) with mu1 = (1.5/p) w* and
// mu2 = (-1.5/p) w*; labels y in {-1, +1} drawn Bernoulli with
// kappa = 1 / (exp(x^T w*) + 1).
//
// When m > n (more examples than workers) the paper groups points into
// "super examples"; the EC2 runs use m batches of 100 points each. Units
// here play that role: a Dataset of d points is partitioned into m
// contiguous units, and the coding layer treats each unit as one example.
package dataset

import (
	"fmt"
	"math"

	"bcc/internal/rngutil"
	"bcc/internal/vecmath"
)

// Dataset is a fixed design matrix with +-1 labels and (for synthetic data)
// the generating weight vector.
type Dataset struct {
	X     *vecmath.Matrix // d x p row-major feature matrix
	Y     []float64       // labels in {-1, +1}, length d
	WStar []float64       // generating weights (nil for non-synthetic data)
}

// N returns the number of data points.
func (d *Dataset) N() int { return d.X.Rows }

// Dim returns the feature dimension p.
func (d *Dataset) Dim() int { return d.X.Cols }

// Config parameterizes the synthetic generator.
type Config struct {
	N   int // number of data points (d in the paper's notation)
	Dim int // feature dimension p (paper uses 8000)
	// Separation scales the class means: mu = +-(Separation/Dim) * w*.
	// The paper uses 1.5.
	Separation float64
	// StandardLabels flips the paper's label rule to the conventional
	// logistic model P(y=+1) = sigma(x^T w*). The paper's stated rule is
	// P(y=+1) = 1/(exp(x^T w*)+1) = sigma(-x^T w*); we implement both and
	// default to the paper's.
	StandardLabels bool
}

// DefaultConfig mirrors the paper's generator at a laptop-friendly scale.
func DefaultConfig() Config {
	return Config{N: 1000, Dim: 200, Separation: 1.5}
}

// Generate draws a synthetic dataset according to cfg using rng.
func Generate(cfg Config, rng *rngutil.RNG) (*Dataset, error) {
	if cfg.N <= 0 || cfg.Dim <= 0 {
		return nil, fmt.Errorf("dataset: invalid config N=%d Dim=%d", cfg.N, cfg.Dim)
	}
	sep := cfg.Separation
	if sep == 0 {
		sep = 1.5
	}
	p := cfg.Dim
	wstar := make([]float64, p)
	for i := range wstar {
		if rng.Bernoulli(0.5) {
			wstar[i] = 1
		} else {
			wstar[i] = -1
		}
	}
	x := vecmath.NewMatrix(cfg.N, p)
	y := make([]float64, cfg.N)
	scale := sep / float64(p)
	for i := 0; i < cfg.N; i++ {
		row := x.Row(i)
		sign := 1.0
		if rng.Bernoulli(0.5) {
			sign = -1
		}
		for j := 0; j < p; j++ {
			row[j] = sign*scale*wstar[j] + rng.Normal()
		}
		margin := vecmath.Dot(row, wstar)
		kappa := sigmoid(-margin) // paper: 1/(exp(x^T w*)+1)
		if cfg.StandardLabels {
			kappa = sigmoid(margin)
		}
		if rng.Bernoulli(kappa) {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	return &Dataset{X: x, Y: y, WStar: wstar}, nil
}

func sigmoid(z float64) float64 {
	// Numerically stable logistic function.
	if z >= 0 {
		e := expNeg(z)
		return 1 / (1 + e)
	}
	e := expNeg(-z)
	return e / (1 + e)
}

// expNeg computes exp(-z) for z >= 0 without overflow concerns.
func expNeg(z float64) float64 {
	if z > 700 {
		return 0
	}
	return math.Exp(-z)
}

// Units partitions the d data points into m contiguous units ("examples" in
// the coding layer's sense). Unit sizes differ by at most one; every point
// belongs to exactly one unit. It returns the per-unit row index slices.
func (d *Dataset) Units(m int) ([][]int, error) {
	n := d.N()
	if m <= 0 || m > n {
		return nil, fmt.Errorf("dataset: cannot split %d points into %d units", n, m)
	}
	units := make([][]int, m)
	base := n / m
	extra := n % m
	row := 0
	for u := 0; u < m; u++ {
		size := base
		if u < extra {
			size++
		}
		idx := make([]int, size)
		for i := range idx {
			idx[i] = row
			row++
		}
		units[u] = idx
	}
	return units, nil
}

// UnionSize returns the total number of rows covered by the given units; a
// helper for placement sanity checks.
func UnionSize(units [][]int) int {
	total := 0
	for _, u := range units {
		total += len(u)
	}
	return total
}
