// Package dataset generates the synthetic classification data used in the
// paper's EC2 experiments (§III-C "Data Generation") and provides the
// unit/grouping machinery that maps data points onto the m "examples" the
// coding schemes operate on.
//
// Paper model: true weights w* with coordinates uniform on {-1, +1};
// features x ~ 0.5 N(mu1, I) + 0.5 N(mu2, I) with mu1 = (1.5/p) w* and
// mu2 = (-1.5/p) w*; labels y in {-1, +1} drawn Bernoulli with
// kappa = 1 / (exp(x^T w*) + 1).
//
// When m > n (more examples than workers) the paper groups points into
// "super examples"; the EC2 runs use m batches of 100 points each. Units
// here play that role: a Dataset of d points is partitioned into m
// contiguous units, and the coding layer treats each unit as one example.
package dataset

import (
	"fmt"
	"math"

	"bcc/internal/rngutil"
	"bcc/internal/vecmath"
)

// Dataset is a fixed design matrix with +-1 labels and (for synthetic data)
// the generating weight vector. The feature matrix is an AnyMatrix: dense
// row-major storage for the paper's Gaussian-mixture generator, CSR for the
// sparse generator (Config.Density) and LIBSVM-loaded data — the gradient
// kernels cost O(nnz) on the latter.
type Dataset struct {
	X     vecmath.AnyMatrix // d x p feature matrix (dense or CSR)
	Y     []float64         // labels in {-1, +1}, length d
	WStar []float64         // generating weights (nil for non-synthetic data)
}

// N returns the number of data points.
func (d *Dataset) N() int { rows, _ := d.X.Dims(); return rows }

// Dim returns the feature dimension p.
func (d *Dataset) Dim() int { _, cols := d.X.Dims(); return cols }

// NNZ returns the number of stored feature entries (rows*cols for dense
// datasets).
func (d *Dataset) NNZ() int { return d.X.NNZ() }

// Sparse reports whether the feature matrix is CSR-compressed, returning it
// if so.
func (d *Dataset) Sparse() (*vecmath.CSR, bool) {
	c, ok := d.X.(*vecmath.CSR)
	return c, ok
}

// Config parameterizes the synthetic generator.
type Config struct {
	N   int // number of data points (d in the paper's notation)
	Dim int // feature dimension p (paper uses 8000)
	// Separation scales the class means: mu = +-(Separation/Dim) * w*.
	// The paper uses 1.5.
	Separation float64
	// StandardLabels flips the paper's label rule to the conventional
	// logistic model P(y=+1) = sigma(x^T w*). The paper's stated rule is
	// P(y=+1) = 1/(exp(x^T w*)+1) = sigma(-x^T w*); we implement both and
	// default to the paper's.
	StandardLabels bool
	// Density, when in (0, 1), switches to the sparse generator: each
	// feature is nonzero independently with this probability, stored in CSR
	// form, and the label margin is computed over the support only — the
	// news20/RCV1-style workload class of the gradient-coding evaluations.
	// 0 (and 1) select the paper's dense Gaussian-mixture generator.
	Density float64
}

// DefaultConfig mirrors the paper's generator at a laptop-friendly scale.
func DefaultConfig() Config {
	return Config{N: 1000, Dim: 200, Separation: 1.5}
}

// Generate draws a synthetic dataset according to cfg using rng. With
// Density in (0, 1) the features are drawn sparse and stored in CSR form;
// otherwise the paper's dense Gaussian-mixture generator runs unchanged
// (same draw sequence as before Density existed, so existing seeds keep
// reproducing their datasets bit-for-bit).
func Generate(cfg Config, rng *rngutil.RNG) (*Dataset, error) {
	if cfg.N <= 0 || cfg.Dim <= 0 {
		return nil, fmt.Errorf("dataset: invalid config N=%d Dim=%d", cfg.N, cfg.Dim)
	}
	if cfg.Density < 0 || cfg.Density > 1 {
		return nil, fmt.Errorf("dataset: Density %v outside [0, 1]", cfg.Density)
	}
	sep := cfg.Separation
	if sep == 0 {
		sep = 1.5
	}
	p := cfg.Dim
	wstar := make([]float64, p)
	for i := range wstar {
		if rng.Bernoulli(0.5) {
			wstar[i] = 1
		} else {
			wstar[i] = -1
		}
	}
	if cfg.Density > 0 && cfg.Density < 1 {
		return generateSparse(cfg, sep, wstar, rng)
	}
	x := vecmath.NewMatrix(cfg.N, p)
	y := make([]float64, cfg.N)
	scale := sep / float64(p)
	for i := 0; i < cfg.N; i++ {
		row := x.Row(i)
		sign := 1.0
		if rng.Bernoulli(0.5) {
			sign = -1
		}
		for j := 0; j < p; j++ {
			row[j] = sign*scale*wstar[j] + rng.Normal()
		}
		margin := vecmath.Dot(row, wstar)
		y[i] = drawLabel(cfg, margin, rng)
	}
	return &Dataset{X: x, Y: y, WStar: wstar}, nil
}

// generateSparse is the CSR generator behind Config.Density: feature j of
// point i is nonzero with probability Density, and a nonzero entry carries
// the same class-mean-plus-noise value as the dense generator. The label
// margin runs over the support only, so the classes stay separable along
// w* restricted to each point's nonzero coordinates. The whole dataset is a
// pure function of (cfg, rng state).
func generateSparse(cfg Config, sep float64, wstar []float64, rng *rngutil.RNG) (*Dataset, error) {
	p := cfg.Dim
	scale := sep / float64(p)
	rowPtr := make([]int, cfg.N+1)
	estimate := int(float64(cfg.N*p)*cfg.Density) + cfg.N
	colIdx := make([]int, 0, estimate)
	vals := make([]float64, 0, estimate)
	y := make([]float64, cfg.N)
	for i := 0; i < cfg.N; i++ {
		sign := 1.0
		if rng.Bernoulli(0.5) {
			sign = -1
		}
		var margin float64
		for j := 0; j < p; j++ {
			if !rng.Bernoulli(cfg.Density) {
				continue
			}
			v := sign*scale*wstar[j] + rng.Normal()
			colIdx = append(colIdx, j)
			vals = append(vals, v)
			margin += v * wstar[j]
		}
		rowPtr[i+1] = len(vals)
		y[i] = drawLabel(cfg, margin, rng)
	}
	x, err := vecmath.NewCSR(cfg.N, p, rowPtr, colIdx, vals)
	if err != nil {
		return nil, fmt.Errorf("dataset: sparse generator produced invalid CSR: %w", err)
	}
	return &Dataset{X: x, Y: y, WStar: wstar}, nil
}

// drawLabel draws the +-1 label for a point with the given margin x^T w*,
// under the paper's rule or the conventional one.
func drawLabel(cfg Config, margin float64, rng *rngutil.RNG) float64 {
	kappa := sigmoid(-margin) // paper: 1/(exp(x^T w*)+1)
	if cfg.StandardLabels {
		kappa = sigmoid(margin)
	}
	if rng.Bernoulli(kappa) {
		return 1
	}
	return -1
}

func sigmoid(z float64) float64 {
	// Numerically stable logistic function.
	if z >= 0 {
		e := expNeg(z)
		return 1 / (1 + e)
	}
	e := expNeg(-z)
	return e / (1 + e)
}

// expNeg computes exp(-z) for z >= 0 without overflow concerns.
func expNeg(z float64) float64 {
	if z > 700 {
		return 0
	}
	return math.Exp(-z)
}

// Units partitions the d data points into m contiguous units ("examples" in
// the coding layer's sense). Unit sizes differ by at most one; every point
// belongs to exactly one unit. It returns the per-unit row index slices.
func (d *Dataset) Units(m int) ([][]int, error) {
	n := d.N()
	if m <= 0 || m > n {
		return nil, fmt.Errorf("dataset: cannot split %d points into %d units", n, m)
	}
	units := make([][]int, m)
	base := n / m
	extra := n % m
	row := 0
	for u := 0; u < m; u++ {
		size := base
		if u < extra {
			size++
		}
		idx := make([]int, size)
		for i := range idx {
			idx[i] = row
			row++
		}
		units[u] = idx
	}
	return units, nil
}

// UnionSize returns the total number of rows covered by the given units; a
// helper for placement sanity checks.
func UnionSize(units [][]int) int {
	total := 0
	for _, u := range units {
		total += len(u)
	}
	return total
}
