package dataset

// LIBSVM-format IO. The sparse datasets the gradient-coding literature
// benchmarks on (news20, RCV1, ...) ship in this format: one example per
// line, "<label> <index>:<value> ...", indices 1-based and strictly
// ascending within a line. LoadLIBSVM parses straight into CSR storage, so
// a loaded dataset's gradients cost O(nnz) end to end.

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"bcc/internal/vecmath"
)

// LoadLIBSVM reads a LIBSVM-format dataset. Labels are mapped to {-1, +1}
// by sign (so 0/1-labeled and +-1-labeled files both work); blank lines and
// lines starting with '#' are skipped, and a trailing "# comment" on a data
// line is ignored. Feature indices must be >= 1 and strictly ascending
// within a line; values must be finite. The feature dimension is the
// largest index seen (pass the result through PadDim to widen it).
func LoadLIBSVM(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var (
		y      []float64
		rowPtr = []int{0}
		colIdx []int
		vals   []float64
		dim    int
		lineNo int
	)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		label, err := strconv.ParseFloat(fields[0], 64)
		if err != nil || math.IsNaN(label) || math.IsInf(label, 0) {
			return nil, fmt.Errorf("dataset: libsvm line %d: bad label %q", lineNo, fields[0])
		}
		prev := 0
		for _, tok := range fields[1:] {
			colon := strings.IndexByte(tok, ':')
			if colon <= 0 {
				return nil, fmt.Errorf("dataset: libsvm line %d: bad feature %q", lineNo, tok)
			}
			idx, err := strconv.Atoi(tok[:colon])
			if err != nil || idx < 1 {
				return nil, fmt.Errorf("dataset: libsvm line %d: bad feature index %q", lineNo, tok)
			}
			if idx <= prev {
				return nil, fmt.Errorf("dataset: libsvm line %d: feature indices not strictly ascending at %q", lineNo, tok)
			}
			v, err := strconv.ParseFloat(tok[colon+1:], 64)
			if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("dataset: libsvm line %d: bad feature value %q", lineNo, tok)
			}
			prev = idx
			colIdx = append(colIdx, idx-1)
			vals = append(vals, v)
			if idx > dim {
				dim = idx
			}
		}
		if label > 0 {
			y = append(y, 1)
		} else {
			y = append(y, -1)
		}
		rowPtr = append(rowPtr, len(vals))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: libsvm read: %w", err)
	}
	if len(y) == 0 {
		return nil, fmt.Errorf("dataset: libsvm input holds no examples")
	}
	x, err := vecmath.NewCSR(len(y), dim, rowPtr, colIdx, vals)
	if err != nil {
		return nil, fmt.Errorf("dataset: libsvm: %w", err)
	}
	return &Dataset{X: x, Y: y}, nil
}

// WriteLIBSVM writes the dataset in LIBSVM format (1-based indices, labels
// +1/-1, values in shortest round-trippable decimal form). Only stored
// entries are written, so CSR datasets serialize in O(nnz).
func WriteLIBSVM(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	rows, cols := d.X.Dims()
	switch x := d.X.(type) {
	case *vecmath.CSR:
		for i := 0; i < rows; i++ {
			writeLabel(bw, d.Y[i])
			for k := x.RowPtr[i]; k < x.RowPtr[i+1]; k++ {
				writeEntry(bw, x.ColIdx[k], x.Val[k])
			}
			bw.WriteByte('\n')
		}
	default:
		for i := 0; i < rows; i++ {
			writeLabel(bw, d.Y[i])
			for j := 0; j < cols; j++ {
				if v := d.X.At(i, j); v != 0 {
					writeEntry(bw, j, v)
				}
			}
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

func writeLabel(bw *bufio.Writer, y float64) {
	if y > 0 {
		bw.WriteString("+1")
	} else {
		bw.WriteString("-1")
	}
}

func writeEntry(bw *bufio.Writer, col int, v float64) {
	bw.WriteByte(' ')
	bw.WriteString(strconv.Itoa(col + 1))
	bw.WriteByte(':')
	bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
}

// PadDim widens the dataset's feature dimension to at least dim (a LIBSVM
// file's dimension is only the largest index PRESENT; training against a
// model of known dimension needs the full width). The padded columns hold
// zeros. It returns d unchanged when already wide enough; CSR padding is
// O(1) (shared storage, wider Cols), dense padding copies into a wider
// matrix.
func PadDim(d *Dataset, dim int) *Dataset {
	rows, cols := d.X.Dims()
	if cols >= dim {
		return d
	}
	switch x := d.X.(type) {
	case *vecmath.CSR:
		padded := *x
		padded.Cols = dim
		return &Dataset{X: &padded, Y: d.Y, WStar: d.WStar}
	case *vecmath.Matrix:
		wide := vecmath.NewMatrix(rows, dim)
		for i := 0; i < rows; i++ {
			copy(wide.Row(i), x.Row(i))
		}
		return &Dataset{X: wide, Y: d.Y, WStar: d.WStar}
	default:
		// Unknown storage: gather rows densely through the interface.
		wide := vecmath.NewMatrix(rows, dim)
		for i := 0; i < rows; i++ {
			d.X.RowTo(i, wide.Row(i)[:cols])
		}
		return &Dataset{X: wide, Y: d.Y, WStar: d.WStar}
	}
}
