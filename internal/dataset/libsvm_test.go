package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"bcc/internal/rngutil"
	"bcc/internal/vecmath"
)

const libsvmSample = `# tiny sample in libsvm format
+1 1:0.5 3:-2 7:1.25
-1 2:3 7:0.5
+1 4:1e-3
-1 1:-1 2:-1 3:-1   # inline comment

+1 6:42
`

func TestLoadLIBSVM(t *testing.T) {
	d, err := LoadLIBSVM(strings.NewReader(libsvmSample))
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 5 || d.Dim() != 7 {
		t.Fatalf("shapes N=%d Dim=%d, want 5x7", d.N(), d.Dim())
	}
	if d.NNZ() != 10 {
		t.Fatalf("NNZ = %d, want 10", d.NNZ())
	}
	wantY := []float64{1, -1, 1, -1, 1}
	for i, y := range wantY {
		if d.Y[i] != y {
			t.Fatalf("Y[%d] = %v, want %v", i, d.Y[i], y)
		}
	}
	if d.X.At(0, 2) != -2 || d.X.At(1, 6) != 0.5 || d.X.At(2, 3) != 1e-3 || d.X.At(4, 5) != 42 {
		t.Fatal("parsed values misplaced")
	}
	if _, ok := d.Sparse(); !ok {
		t.Fatal("LIBSVM load should produce CSR storage")
	}
}

func TestLoadLIBSVMZeroOneLabels(t *testing.T) {
	d, err := LoadLIBSVM(strings.NewReader("1 1:2\n0 2:3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Y[0] != 1 || d.Y[1] != -1 {
		t.Fatalf("0/1 labels mapped to %v", d.Y)
	}
}

func TestLoadLIBSVMErrors(t *testing.T) {
	bad := map[string]string{
		"empty":          "",
		"comments-only":  "# nothing\n\n",
		"bad-label":      "abc 1:2\n",
		"nan-label":      "NaN 1:2\n",
		"bad-token":      "+1 1\n",
		"bad-index":      "+1 0:2\n",
		"neg-index":      "+1 -3:2\n",
		"descending":     "+1 5:1 3:2\n",
		"duplicate":      "+1 2:1 2:2\n",
		"bad-value":      "+1 1:x\n",
		"inf-value":      "+1 1:Inf\n",
		"missing-colon:": "+1 12\n",
	}
	for name, in := range bad {
		if _, err := LoadLIBSVM(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestLIBSVMRoundTrip(t *testing.T) {
	d, err := Generate(Config{N: 60, Dim: 30, Separation: 1.5, Density: 0.2}, rngutil.New(31))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteLIBSVM(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := LoadLIBSVM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != d.N() {
		t.Fatalf("round trip N %d != %d", back.N(), d.N())
	}
	// The written dimension is the largest PRESENT index; pad back up.
	back = PadDim(back, d.Dim())
	if back.Dim() != d.Dim() {
		t.Fatalf("round trip Dim %d != %d", back.Dim(), d.Dim())
	}
	for i := 0; i < d.N(); i++ {
		if back.Y[i] != d.Y[i] {
			t.Fatalf("row %d label %v != %v", i, back.Y[i], d.Y[i])
		}
		for j := 0; j < d.Dim(); j++ {
			if got, want := back.X.At(i, j), d.X.At(i, j); got != want {
				t.Fatalf("entry (%d,%d) %v != %v", i, j, got, want)
			}
		}
	}
}

func TestPadDim(t *testing.T) {
	m := vecmath.NewMatrix(2, 3)
	m.Set(0, 1, 2.5)
	m.Set(1, 2, -1)
	dense := &Dataset{X: m, Y: []float64{1, -1}}
	wide := PadDim(dense, 5)
	if wide.Dim() != 5 || wide.N() != 2 {
		t.Fatalf("dense PadDim shape (%d,%d)", wide.N(), wide.Dim())
	}
	if wide.X.At(0, 1) != 2.5 || wide.X.At(1, 2) != -1 || wide.X.At(0, 4) != 0 {
		t.Fatal("dense PadDim lost or invented entries")
	}
	sparse := &Dataset{X: vecmath.CSRFromDense(m), Y: []float64{1, -1}}
	ws := PadDim(sparse, 5)
	if ws.Dim() != 5 || ws.X.At(0, 1) != 2.5 || ws.X.At(1, 4) != 0 {
		t.Fatal("CSR PadDim misbehaved")
	}
	if PadDim(dense, 2) != dense || PadDim(sparse, 3) != sparse {
		t.Fatal("already-wide datasets must be returned unchanged")
	}
}

func TestWriteLIBSVMDense(t *testing.T) {
	m := vecmath.NewMatrix(2, 3)
	m.Set(0, 1, 2.5)
	m.Set(1, 0, -1)
	d := &Dataset{X: m, Y: []float64{1, -1}}
	var buf bytes.Buffer
	if err := WriteLIBSVM(&buf, d); err != nil {
		t.Fatal(err)
	}
	want := "+1 2:2.5\n-1 1:-1\n"
	if buf.String() != want {
		t.Fatalf("dense write %q, want %q", buf.String(), want)
	}
}

func TestGenerateSparse(t *testing.T) {
	cfg := Config{N: 400, Dim: 200, Separation: 1.5, Density: 0.05}
	d, err := Generate(cfg, rngutil.New(41))
	if err != nil {
		t.Fatal(err)
	}
	csr, ok := d.Sparse()
	if !ok {
		t.Fatal("Density generator should produce CSR storage")
	}
	if d.N() != 400 || d.Dim() != 200 {
		t.Fatalf("shapes N=%d Dim=%d", d.N(), d.Dim())
	}
	// Realized density concentrates near the target.
	realized := float64(csr.NNZ()) / float64(400*200)
	if math.Abs(realized-0.05) > 0.01 {
		t.Fatalf("realized density %v far from 0.05", realized)
	}
	// Determinism: the same seed reproduces the identical dataset.
	d2, _ := Generate(cfg, rngutil.New(41))
	csr2, _ := d2.Sparse()
	if csr2.NNZ() != csr.NNZ() || vecmath.MaxAbsDiff(csr.Val, csr2.Val) != 0 {
		t.Fatal("sparse generator is not deterministic")
	}
	for i := range d.Y {
		if d.Y[i] != d2.Y[i] {
			t.Fatal("sparse labels not deterministic")
		}
		if d.Y[i] != 1 && d.Y[i] != -1 {
			t.Fatalf("label %v not in {-1,+1}", d.Y[i])
		}
	}
	// The class structure must survive sparsification: the paper's label
	// rule anti-correlates margin and label.
	sep, _ := Generate(Config{N: 2000, Dim: 50, Separation: 40, Density: 0.3}, rngutil.New(42))
	var corr float64
	for i := 0; i < sep.N(); i++ {
		corr += sep.X.RowDot(i, sep.WStar) * sep.Y[i]
	}
	if corr >= 0 {
		t.Fatalf("sparse paper label rule should anti-correlate margin and label, got %v", corr)
	}
}

func TestGenerateDensityValidation(t *testing.T) {
	if _, err := Generate(Config{N: 5, Dim: 5, Density: -0.1}, rngutil.New(1)); err == nil {
		t.Fatal("negative density accepted")
	}
	if _, err := Generate(Config{N: 5, Dim: 5, Density: 1.5}, rngutil.New(1)); err == nil {
		t.Fatal("density > 1 accepted")
	}
	// Density 0 and 1 select the dense generator.
	for _, den := range []float64{0, 1} {
		d, err := Generate(Config{N: 5, Dim: 5, Density: den}, rngutil.New(1))
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := d.X.(*vecmath.Matrix); !ok {
			t.Fatalf("density %v should produce dense storage", den)
		}
	}
}

// TestGenerateDenseUnchangedByDensityField pins backward compatibility:
// adding the Density field must not perturb the dense generator's draw
// sequence for existing seeds.
func TestGenerateDenseUnchangedByDensityField(t *testing.T) {
	a, _ := Generate(Config{N: 20, Dim: 6, Separation: 1.5}, rngutil.New(77))
	b, _ := Generate(Config{N: 20, Dim: 6, Separation: 1.5, Density: 0}, rngutil.New(77))
	if vecmath.MaxAbsDiff(a.X.(*vecmath.Matrix).Data, b.X.(*vecmath.Matrix).Data) != 0 {
		t.Fatal("Density=0 changed the dense draw sequence")
	}
}

// FuzzLIBSVM feeds arbitrary bytes to the parser: it must never panic, and
// any input it accepts must survive a write/re-parse round trip bit-for-bit.
func FuzzLIBSVM(f *testing.F) {
	f.Add([]byte(libsvmSample))
	f.Add([]byte("+1 1:0.5\n"))
	f.Add([]byte("0 1:1 2:-0.25 9:3e4\n1 3:7\n"))
	f.Add([]byte("-1\n+1 1:2\n"))
	f.Fuzz(func(t *testing.T, in []byte) {
		d, err := LoadLIBSVM(bytes.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteLIBSVM(&buf, d); err != nil {
			t.Fatalf("accepted input failed to serialize: %v", err)
		}
		back, err := LoadLIBSVM(&buf)
		if err != nil {
			t.Fatalf("serialized form %q rejected: %v", buf.String(), err)
		}
		back = PadDim(back, d.Dim())
		if back.N() != d.N() || back.Dim() != d.Dim() {
			t.Fatalf("round trip shape (%d,%d) != (%d,%d)", back.N(), back.Dim(), d.N(), d.Dim())
		}
		for i := 0; i < d.N(); i++ {
			if back.Y[i] != d.Y[i] {
				t.Fatalf("row %d label changed", i)
			}
			for j := 0; j < d.Dim(); j++ {
				if back.X.At(i, j) != d.X.At(i, j) {
					t.Fatalf("entry (%d,%d) changed: %v != %v", i, j, back.X.At(i, j), d.X.At(i, j))
				}
			}
		}
	})
}
