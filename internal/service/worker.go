package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"

	"bcc/internal/cluster"
	"bcc/internal/core"
	"bcc/internal/wire"
)

// ServeWorker joins a daemon's fleet and serves leases until ctx is
// canceled or the daemon closes the control connection (a clean EOF after a
// drain returns nil). For each Assign frame the worker rebuilds the job
// from the spec bytes — deterministically, so its plan, units and model
// match the daemon's bit for bit — dials the job's private data-plane port
// and runs the standard worker protocol; when the lease ends it reports
// Idle and waits for the next assignment.
func ServeWorker(ctx context.Context, addr, name string) error {
	var dialer net.Dialer
	conn, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return fmt.Errorf("service: worker join %s: %w", addr, err)
	}
	// Cancellation unblocks the frame reads below by closing the socket.
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	defer conn.Close()
	w := wire.NewWriter(conn)
	if err := w.WriteJoin(wire.Join{Name: name}); err != nil {
		return fmt.Errorf("service: worker join: %w", err)
	}
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		host = addr
	}
	r := wire.NewReader(conn)
	for {
		k, err := r.NextKind()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if errors.Is(err, io.EOF) {
				return nil // daemon closed the fleet: clean exit
			}
			return fmt.Errorf("service: worker control read: %w", err)
		}
		if k != wire.KindAssign {
			return fmt.Errorf("service: worker got unexpected frame kind %d", k)
		}
		a, err := r.ReadAssign()
		if err != nil {
			return fmt.Errorf("service: worker reading assignment: %w", err)
		}
		errText := ""
		if err := serveLease(host, a); err != nil {
			errText = err.Error()
		}
		if err := w.WriteIdle(wire.Idle{Job: a.Job, Err: errText}); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("service: worker reporting idle: %w", err)
		}
	}
}

// serveLease runs one assignment end to end: rebuild the job from the spec,
// assume the assigned worker index, dial the job's data plane and serve
// until the engine's shutdown broadcast. Errors are reported back on the
// control plane (in the Idle frame), never fatal to the fleet membership.
func serveLease(host string, a wire.Assign) error {
	spec, err := core.DecodeSpec(a.Spec)
	if err != nil {
		return err
	}
	job, err := core.NewJob(spec)
	if err != nil {
		return err
	}
	env := job.WorkerEnv(a.Index)
	// A sharded master lists its scatter listeners' ports; the shard map
	// itself is derived from the spec, so the addresses are all we need.
	if len(a.ShardPorts) > 0 {
		env.ShardAddrs = make([]string, len(a.ShardPorts))
		for s, p := range a.ShardPorts {
			env.ShardAddrs[s] = net.JoinHostPort(host, strconv.Itoa(p))
		}
	}
	return cluster.DialAndServeWorker(net.JoinHostPort(host, strconv.Itoa(a.Port)), env)
}
