package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"bcc/internal/core"
)

// The HTTP surface is read-only except for job cancellation: operators
// watch the daemon (and Prometheus scrapes it) without speaking the wire
// protocol, while submissions stay on the authenticated-by-locality TCP
// control plane.
func (d *Daemon) httpHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, d.Jobs())
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, ok := jobID(w, r)
		if !ok {
			return
		}
		st, err := d.Status(id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, st)
	})
	mux.HandleFunc("POST /jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		id, ok := jobID(w, r)
		if !ok {
			return
		}
		st, err := d.Cancel(id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, st)
	})
	mux.HandleFunc("GET /workers", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, d.Workers())
	})
	mux.HandleFunc("GET /metrics", d.metrics)
	return mux
}

func jobID(w http.ResponseWriter, r *http.Request) (core.JobID, bool) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		http.Error(w, "bad job id", http.StatusBadRequest)
		return 0, false
	}
	return core.JobID(id), true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// metrics renders the Prometheus text exposition format (stdlib only; the
// format is plain text with one sample per line).
func (d *Daemon) metrics(w http.ResponseWriter, r *http.Request) {
	type shardSample struct {
		job     core.JobID
		shard   int
		decode  int64
		bytesIn int64
		queue   int
	}
	type levelSample struct {
		job      core.JobID
		level    int
		switches int
	}
	d.mu.Lock()
	states := map[core.JobState]int{}
	iters := 0
	var queueSecs, runSecs float64
	var shardSamples []shardSample
	var levelSamples []levelSample
	for _, rec := range d.jobs {
		st := d.statusLocked(rec)
		states[rec.state]++
		iters += rec.iter
		queueSecs += st.QueueSeconds
		runSecs += st.RunSeconds
		// Per-shard gauges for jobs that have not been collected yet: running
		// jobs expose live values, finished ones their final counters.
		for _, ss := range rec.shards {
			shardSamples = append(shardSamples, shardSample{
				job: rec.id, shard: ss.Shard, decode: ss.DecodeNs,
				bytesIn: ss.SliceBytesIn, queue: ss.QueueDepth,
			})
		}
		if rec.level > 0 {
			levelSamples = append(levelSamples, levelSample{job: rec.id, level: rec.level, switches: rec.levelSwitch})
		}
	}
	depth := len(d.queue)
	idle := len(d.idle)
	busy := len(d.workers) - idle
	d.mu.Unlock()

	var b strings.Builder
	b.WriteString("# HELP bcc_jobs Jobs by lifecycle state.\n# TYPE bcc_jobs gauge\n")
	for _, s := range []core.JobState{core.JobQueued, core.JobRunning, core.JobDone, core.JobFailed, core.JobCanceled, core.JobDegraded} {
		fmt.Fprintf(&b, "bcc_jobs{state=%q} %d\n", s, states[s])
	}
	b.WriteString("# HELP bcc_queue_depth Jobs waiting for admission.\n# TYPE bcc_queue_depth gauge\n")
	fmt.Fprintf(&b, "bcc_queue_depth %d\n", depth)
	b.WriteString("# HELP bcc_workers Fleet workers by lease state.\n# TYPE bcc_workers gauge\n")
	fmt.Fprintf(&b, "bcc_workers{state=\"idle\"} %d\nbcc_workers{state=\"busy\"} %d\n", idle, busy)
	b.WriteString("# HELP bcc_iterations_total Completed engine iterations across all jobs.\n# TYPE bcc_iterations_total counter\n")
	fmt.Fprintf(&b, "bcc_iterations_total %d\n", iters)
	b.WriteString("# HELP bcc_wire_bytes_in_total Bytes received on job data-plane sockets.\n# TYPE bcc_wire_bytes_in_total counter\n")
	fmt.Fprintf(&b, "bcc_wire_bytes_in_total %d\n", d.fleetIn.Load())
	b.WriteString("# HELP bcc_wire_bytes_out_total Bytes sent on job data-plane sockets.\n# TYPE bcc_wire_bytes_out_total counter\n")
	fmt.Fprintf(&b, "bcc_wire_bytes_out_total %d\n", d.fleetOut.Load())
	b.WriteString("# HELP bcc_job_queue_seconds_total Seconds jobs spent waiting for admission.\n# TYPE bcc_job_queue_seconds_total counter\n")
	fmt.Fprintf(&b, "bcc_job_queue_seconds_total %g\n", queueSecs)
	b.WriteString("# HELP bcc_job_run_seconds_total Seconds jobs spent running.\n# TYPE bcc_job_run_seconds_total counter\n")
	fmt.Fprintf(&b, "bcc_job_run_seconds_total %g\n", runSecs)
	if len(shardSamples) > 0 {
		b.WriteString("# HELP bcc_shard_decode_ns_total Cumulative slice decode+update nanoseconds per master shard.\n# TYPE bcc_shard_decode_ns_total counter\n")
		for _, s := range shardSamples {
			fmt.Fprintf(&b, "bcc_shard_decode_ns_total{job=\"%d\",shard=\"%d\"} %d\n", s.job, s.shard, s.decode)
		}
		b.WriteString("# HELP bcc_shard_bytes_in_total Payload bytes attributed to each master shard's slice (measured in scatter mode, modelled otherwise).\n# TYPE bcc_shard_bytes_in_total counter\n")
		for _, s := range shardSamples {
			fmt.Fprintf(&b, "bcc_shard_bytes_in_total{job=\"%d\",shard=\"%d\"} %d\n", s.job, s.shard, s.bytesIn)
		}
		b.WriteString("# HELP bcc_shard_queue_depth Pending-work depth per master shard at the last iteration.\n# TYPE bcc_shard_queue_depth gauge\n")
		for _, s := range shardSamples {
			fmt.Fprintf(&b, "bcc_shard_queue_depth{job=\"%d\",shard=\"%d\"} %d\n", s.job, s.shard, s.queue)
		}
	}
	if len(levelSamples) > 0 {
		b.WriteString("# HELP bcc_job_level Active redundancy level of adaptive nested jobs.\n# TYPE bcc_job_level gauge\n")
		for _, s := range levelSamples {
			fmt.Fprintf(&b, "bcc_job_level{job=\"%d\"} %d\n", s.job, s.level)
		}
		b.WriteString("# HELP bcc_job_level_switches_total Redundancy level changes between consecutive iterations.\n# TYPE bcc_job_level_switches_total counter\n")
		for _, s := range levelSamples {
			fmt.Fprintf(&b, "bcc_job_level_switches_total{job=\"%d\"} %d\n", s.job, s.switches)
		}
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}
