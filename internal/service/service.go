// Package service implements the multi-tenant coded-training daemon: a
// long-running master that accepts job submissions over the wire protocol,
// runs each job on its own engine instance, and leases workers to jobs from
// one shared fleet.
//
// Topology. The daemon owns a single control listener. A connecting peer
// identifies itself with its first frame: KindJoin marks a fleet worker,
// which stays connected for the daemon's lifetime and alternates between
// idle (in the lease pool) and busy (leased to one job); KindSubmit,
// KindStatus or KindCancel mark a client session, a lockstep request/reply
// exchange of State frames.
//
// Isolation. Every job runs on a dedicated engine with its own BufferPool
// (capped by Options.PoolCap so one tenant cannot hoard memory), its own
// seed-derived RNG streams, fault plan, comm-plane configuration and
// Observer — nothing is shared between concurrent jobs except the fleet
// itself and the goroutine scheduler. A TCP job gets a private data-plane
// listener: each leased worker receives an Assign frame naming the job, its
// worker index and the port, dials it, and speaks the unmodified
// master/worker protocol, so the per-job traffic never multiplexes with
// another tenant's. The worker rebuilds the job from the spec bytes in the
// assignment — deterministically, since all of a job's randomness derives
// from spec seeds — and returns to the pool with an Idle frame when the
// lease ends.
//
// Admission is strictly FIFO: the head of the queue starts when enough
// workers are idle (a TCP job needs its spec's alive worker count; sim and
// live jobs need none and run on daemon-local goroutines); until then the
// head blocks the queue. Leases release on every exit path — completion,
// cancellation, degrade below the recovery threshold, worker crash —
// because the engine broadcasts its shutdown frame on every exit path, so
// queued jobs start without restarting workers.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"bcc/internal/cluster"
	"bcc/internal/core"
	"bcc/internal/wire"
)

// Options configures a daemon. The zero value listens on an ephemeral
// loopback port with no HTTP surface.
type Options struct {
	// Addr is the control/data listen address ("127.0.0.1:0" by default).
	// Fleet workers and clients both connect here; per-job data-plane
	// listeners bind ephemeral ports on the same host.
	Addr string
	// HTTPAddr, when non-empty, serves the read-only HTTP surface (/jobs,
	// /workers, /metrics, /healthz) on that address.
	HTTPAddr string
	// MaxQueue bounds the number of jobs waiting for admission (default 64).
	// Submissions beyond it are rejected, not dropped silently.
	MaxQueue int
	// PoolCap caps every job's BufferPool free list (cluster.Config.PoolCap),
	// bounding per-tenant buffer retention. 0 keeps each job's own default.
	PoolCap int
	// LeaseTimeout bounds how long a job's master waits for its leased
	// workers to dial the data plane, and the engine's per-iteration reply
	// timeout (default 30s).
	LeaseTimeout time.Duration
	// DrainGrace bounds the post-run wait for each worker's clean close
	// before the job's data-plane sockets are torn down (default 2s).
	DrainGrace time.Duration
	// Logf, when non-nil, receives one line per lifecycle event (job
	// admitted, finished, worker joined/left).
	Logf func(format string, args ...any)
}

func (o *Options) defaults() {
	if o.Addr == "" {
		o.Addr = "127.0.0.1:0"
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 64
	}
	if o.LeaseTimeout <= 0 {
		o.LeaseTimeout = 30 * time.Second
	}
	if o.DrainGrace <= 0 {
		o.DrainGrace = 2 * time.Second
	}
}

// fleetWorker is one registered worker connection. Assign frames are written
// only while the worker is leased to exactly one job (it is out of the idle
// pool), so there is never more than one writer.
type fleetWorker struct {
	id   int
	name string
	conn net.Conn
	w    *wire.Writer
	// Mutable fleet state, guarded by Daemon.mu.
	job    core.JobID // 0 when idle
	leases int        // completed leases
	gone   bool
}

// Daemon is a running service instance. Start one with Start; stop it with
// Drain (graceful) or Close (immediate).
type Daemon struct {
	opts Options

	ln         net.Listener
	httpLn     net.Listener
	httpSrv    *http.Server
	rootCtx    context.Context
	rootCancel context.CancelFunc
	wg         sync.WaitGroup

	// Fleet-level measured wire traffic: every byte crossing any job's
	// data-plane sockets, handshake and shutdown frames included.
	fleetIn  atomic.Int64
	fleetOut atomic.Int64

	mu         sync.Mutex
	jobs       map[core.JobID]*jobRecord
	order      []core.JobID
	queue      []*jobRecord
	workers    map[int]*fleetWorker
	idle       []*fleetWorker
	conns      map[net.Conn]struct{}
	jobLns     map[net.Listener]struct{}
	nextJob    uint64
	nextWorker int
	draining   bool
	closed     bool
}

// Start launches a daemon: it binds the control listener (and the HTTP
// listener if configured) and begins accepting fleet workers and clients.
func Start(opts Options) (*Daemon, error) {
	opts.defaults()
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("service: listen %s: %w", opts.Addr, err)
	}
	d := &Daemon{
		opts:    opts,
		ln:      ln,
		jobs:    make(map[core.JobID]*jobRecord),
		workers: make(map[int]*fleetWorker),
		conns:   make(map[net.Conn]struct{}),
		jobLns:  make(map[net.Listener]struct{}),
	}
	d.rootCtx, d.rootCancel = context.WithCancel(context.Background())
	if opts.HTTPAddr != "" {
		hln, err := net.Listen("tcp", opts.HTTPAddr)
		if err != nil {
			ln.Close()
			return nil, fmt.Errorf("service: http listen %s: %w", opts.HTTPAddr, err)
		}
		d.httpLn = hln
		d.httpSrv = &http.Server{Handler: d.httpHandler()}
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			_ = d.httpSrv.Serve(hln)
		}()
	}
	d.wg.Add(1)
	go d.acceptLoop()
	d.logf("service: listening on %s", ln.Addr())
	return d, nil
}

// Addr returns the control listener's address — what workers join and
// clients dial.
func (d *Daemon) Addr() string { return d.ln.Addr().String() }

// HTTPAddr returns the HTTP surface's address, or "" if none is configured.
func (d *Daemon) HTTPAddr() string {
	if d.httpLn == nil {
		return ""
	}
	return d.httpLn.Addr().String()
}

func (d *Daemon) logf(format string, args ...any) {
	if d.opts.Logf != nil {
		d.opts.Logf(format, args...)
	}
}

func (d *Daemon) acceptLoop() {
	defer d.wg.Done()
	for {
		conn, err := d.ln.Accept()
		if err != nil {
			return // listener closed
		}
		d.mu.Lock()
		if d.closed {
			d.mu.Unlock()
			conn.Close()
			return
		}
		d.conns[conn] = struct{}{}
		d.mu.Unlock()
		d.wg.Add(1)
		go d.serveConn(conn)
	}
}

// serveConn dispatches a fresh connection on its first frame: a Join makes
// it a fleet worker for the rest of its life, anything else a client
// session.
func (d *Daemon) serveConn(conn net.Conn) {
	defer d.wg.Done()
	defer func() {
		d.mu.Lock()
		delete(d.conns, conn)
		d.mu.Unlock()
		conn.Close()
	}()
	r := wire.NewReader(conn)
	k, err := r.NextKind()
	if err != nil {
		return
	}
	if k == wire.KindJoin {
		j, err := r.ReadJoin()
		if err != nil {
			return
		}
		d.serveFleetWorker(conn, r, j)
		return
	}
	d.serveClient(conn, r, k)
}

// serveFleetWorker registers the worker in the lease pool and then loops on
// its Idle frames — each one ends a lease and returns the worker to the
// pool. Any read error (or unexpected frame) retires the worker.
func (d *Daemon) serveFleetWorker(conn net.Conn, r *wire.Reader, j wire.Join) {
	fw := &fleetWorker{name: j.Name, conn: conn, w: wire.NewWriter(conn)}
	d.mu.Lock()
	if d.closed || d.draining {
		d.mu.Unlock()
		return
	}
	d.nextWorker++
	fw.id = d.nextWorker
	if fw.name == "" {
		fw.name = fmt.Sprintf("worker-%d", fw.id)
	}
	d.workers[fw.id] = fw
	d.idle = append(d.idle, fw)
	d.scheduleLocked()
	d.mu.Unlock()
	d.logf("service: worker %d (%s) joined", fw.id, fw.name)
	for {
		k, err := r.NextKind()
		if err != nil {
			d.dropWorker(fw, err)
			return
		}
		if k != wire.KindIdle {
			d.dropWorker(fw, fmt.Errorf("unexpected frame kind %d from worker", k))
			return
		}
		idle, err := r.ReadIdle()
		if err != nil {
			d.dropWorker(fw, err)
			return
		}
		if idle.Err != "" {
			d.logf("service: worker %d lease for job %d ended: %s", fw.id, idle.Job, idle.Err)
		}
		d.mu.Lock()
		fw.job = 0
		fw.leases++
		if !fw.gone && !d.closed {
			d.idle = append(d.idle, fw)
			d.scheduleLocked()
		}
		d.mu.Unlock()
	}
}

// serveClient runs a client session: a lockstep loop of Submit/Status/
// Cancel requests, each answered with a State frame carrying the job's
// status snapshot as JSON (and the error text, if the request failed). The
// session ends when the client disconnects or sends an unknown frame.
func (d *Daemon) serveClient(conn net.Conn, r *wire.Reader, first byte) {
	w := wire.NewWriter(conn)
	k := first
	for {
		var st JobStatus
		var err error
		switch k {
		case wire.KindSubmit:
			var s wire.Submit
			if s, err = r.ReadSubmit(); err != nil {
				return
			}
			st, err = d.SubmitEncoded(s.Spec)
		case wire.KindStatus:
			var id uint64
			if id, err = r.ReadJobID(); err != nil {
				return
			}
			st, err = d.Status(core.JobID(id))
		case wire.KindCancel:
			var id uint64
			if id, err = r.ReadJobID(); err != nil {
				return
			}
			st, err = d.Cancel(core.JobID(id))
		default:
			return
		}
		reply := wire.State{Job: uint64(st.ID)}
		if err != nil {
			reply.Err = err.Error()
		} else if reply.Status, err = json.Marshal(st); err != nil {
			reply.Err = err.Error()
			reply.Status = nil
		}
		if werr := w.WriteState(reply); werr != nil {
			return
		}
		if k, err = r.NextKind(); err != nil {
			return
		}
	}
}

// dropWorker retires a worker whose control connection failed. A job holding
// its lease is not interrupted here: the job's data-plane connection to the
// same process fails (or times out) on its own, and the engine degrades or
// errors through its normal paths.
func (d *Daemon) dropWorker(fw *fleetWorker, err error) {
	d.mu.Lock()
	if fw.gone {
		d.mu.Unlock()
		return
	}
	fw.gone = true
	delete(d.workers, fw.id)
	for i, w := range d.idle {
		if w == fw {
			d.idle = append(d.idle[:i], d.idle[i+1:]...)
			break
		}
	}
	closed := d.closed
	d.mu.Unlock()
	fw.conn.Close()
	if !closed {
		d.logf("service: worker %d (%s) left: %v", fw.id, fw.name, err)
	}
}

// scheduleLocked admits queued jobs in strict FIFO order while the head's
// worker demand is satisfiable from the idle pool. The head blocks the
// queue: a later job never overtakes an earlier one, so admission latency
// is predictable and starvation-free. Callers hold d.mu.
func (d *Daemon) scheduleLocked() {
	if d.closed || d.draining {
		return
	}
	for len(d.queue) > 0 {
		rec := d.queue[0]
		if rec.state != core.JobQueued { // canceled while queued
			d.queue = d.queue[1:]
			continue
		}
		if rec.need > len(d.idle) {
			return
		}
		leased := make([]*fleetWorker, rec.need)
		copy(leased, d.idle[:rec.need])
		d.idle = append([]*fleetWorker(nil), d.idle[rec.need:]...)
		d.queue = d.queue[1:]
		rec.state = core.JobRunning
		rec.started = time.Now()
		for _, fw := range leased {
			fw.job = rec.id
		}
		rec.leased = leased
		ctx, cancel := context.WithCancel(d.rootCtx)
		rec.cancel = cancel
		d.wg.Add(1)
		go d.runJob(ctx, rec, leased)
	}
}

// runJob drives one admitted job to a terminal state on its own engine.
func (d *Daemon) runJob(ctx context.Context, rec *jobRecord, leased []*fleetWorker) {
	defer d.wg.Done()
	defer rec.cancel()
	d.logf("service: job %d admitted (%s/%s, %d workers leased)",
		rec.id, rec.spec.Scheme, rec.spec.Runtime, len(leased))
	job, err := core.NewJob(rec.spec)
	if err != nil {
		d.releaseLeases(leased) // never assigned; return them directly
		d.finishJob(rec, nil, err)
		return
	}
	cfg := job.EngineConfig()
	if d.opts.PoolCap > 0 {
		cfg.PoolCap = d.opts.PoolCap
	}
	cfg.Observer = d.observe(rec)
	var res *cluster.Result
	switch rec.spec.Runtime {
	case core.RuntimeTCP:
		res, err = d.runLeased(ctx, rec, job, cfg, leased)
	case core.RuntimeLive:
		res, err = cluster.RunLiveContext(ctx, cfg, cluster.LiveOptions{TimeScale: rec.spec.TimeScale})
	default:
		res, err = cluster.RunSimContext(ctx, cfg)
	}
	d.finishJob(rec, res, err)
}

// aliveIndices lists the job's worker indices minus the spec's Dead set, in
// index order — the identities the leased fleet workers assume.
func aliveIndices(spec core.Spec) []int {
	dead := make(map[int]bool, len(spec.Dead))
	for _, w := range spec.Dead {
		dead[w] = true
	}
	out := make([]int, 0, spec.Workers)
	for w := 0; w < spec.Workers; w++ {
		if !dead[w] {
			out = append(out, w)
		}
	}
	return out
}

// countingListener wraps a job's data-plane listener so every accepted
// connection counts its traffic into the daemon's fleet totals (on top of
// the per-fabric counters the accept path adds). It forwards SetDeadline so
// the fabric's accept timeout still applies.
type countingListener struct {
	net.Listener
	in, out *atomic.Int64
}

func (l *countingListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return cluster.CountConn(c, l.in, l.out), nil
}

func (l *countingListener) SetDeadline(t time.Time) error {
	return l.Listener.(*net.TCPListener).SetDeadline(t)
}

// runLeased executes a TCP job over its leased fleet workers: a private
// data-plane listener, one Assign per worker, then the standard engine over
// the accepted fabric. Leases are not released here — each worker reports
// Idle on its control connection once its lease ends, and the engine's
// shutdown broadcast (sent on every exit path) guarantees that happens.
func (d *Daemon) runLeased(ctx context.Context, rec *jobRecord, job *core.Job, cfg *cluster.Config, leased []*fleetWorker) (*cluster.Result, error) {
	host, _, err := net.SplitHostPort(d.ln.Addr().String())
	if err != nil {
		host = "127.0.0.1"
	}
	ln, err := net.Listen("tcp", net.JoinHostPort(host, "0"))
	if err != nil {
		d.releaseLeases(leased)
		return nil, fmt.Errorf("service: job %d data-plane listen: %w", rec.id, err)
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		ln.Close()
		d.releaseLeases(leased)
		return nil, fmt.Errorf("service: daemon closed")
	}
	d.jobLns[ln] = struct{}{}
	d.mu.Unlock()
	defer func() {
		d.mu.Lock()
		delete(d.jobLns, ln)
		d.mu.Unlock()
	}()
	port := ln.Addr().(*net.TCPAddr).Port
	alive := aliveIndices(rec.spec)
	// A sharded master scatters the data plane: one extra listener per shard
	// on the same host, with the ports shipped in every Assign frame so the
	// workers can dial them (the shard map itself is derived from the spec).
	var shardLns []net.Listener
	closeShardLns := func() {
		for _, sln := range shardLns {
			sln.Close()
		}
	}
	// Effective shard count: validation rejects over-sharded specs, but clamp
	// anyway so a directly-constructed record can never lease ports (or bind
	// listeners) for shards that would own empty coordinate slices.
	shardCount := rec.spec.MasterShards
	if shardCount > 1 {
		if max, merr := job.Comm().MaxShards(cfg.Model.Dim()); merr == nil && shardCount > max {
			shardCount = max
		}
	}
	if shardCount > 1 {
		for s := 0; s < shardCount; s++ {
			sln, serr := net.Listen("tcp", net.JoinHostPort(host, "0"))
			if serr != nil {
				closeShardLns()
				ln.Close()
				d.releaseLeases(leased)
				return nil, fmt.Errorf("service: job %d shard %d listen: %w", rec.id, s, serr)
			}
			shardLns = append(shardLns, sln)
		}
		d.mu.Lock()
		for _, sln := range shardLns {
			d.jobLns[sln] = struct{}{}
		}
		d.mu.Unlock()
		defer func() {
			d.mu.Lock()
			for _, sln := range shardLns {
				delete(d.jobLns, sln)
			}
			d.mu.Unlock()
		}()
	}
	shardPorts := make([]int, len(shardLns))
	for s, sln := range shardLns {
		shardPorts[s] = sln.Addr().(*net.TCPAddr).Port
	}
	for i, fw := range leased {
		a := wire.Assign{Job: uint64(rec.id), Index: alive[i], Port: port, ShardPorts: shardPorts, Spec: rec.specBytes}
		if werr := fw.w.WriteAssign(a); werr != nil {
			d.dropWorker(fw, werr)
			// Workers after fw were never assigned: return them directly.
			// The ones before fw did get assignments; closing the listeners
			// fails their dials and they come back through Idle frames.
			d.releaseLeases(leased[i+1:])
			ln.Close()
			closeShardLns()
			return nil, fmt.Errorf("service: job %d assign worker %d: %w", rec.id, fw.id, werr)
		}
	}
	cln := &countingListener{Listener: ln, in: &d.fleetIn, out: &d.fleetOut}
	var fab cluster.Fabric
	if len(shardLns) > 0 {
		shardClns := make([]net.Listener, len(shardLns))
		for s, sln := range shardLns {
			shardClns[s] = &countingListener{Listener: sln, in: &d.fleetIn, out: &d.fleetOut}
		}
		fab, err = cluster.ServeMasterScatterPool(cln, shardClns, rec.spec.Workers, len(alive),
			d.opts.LeaseTimeout, "wire", cfg.Buffers(), job.Comm(), cfg.Model.Dim())
	} else {
		fab, err = cluster.ServeMasterPool(cln, len(alive), d.opts.LeaseTimeout, "wire", cfg.Buffers(), job.Comm(), cfg.Model.Dim())
	}
	if err != nil {
		// acceptWorkers closed the primary listener; assigned workers fail
		// their dial or handshake and release themselves via Idle frames.
		closeShardLns()
		return nil, fmt.Errorf("service: job %d accepting leased workers: %w", rec.id, err)
	}
	defer fab.Close()
	res, rerr := cluster.RunWithFabricContext(ctx, cfg, fab, cluster.LiveOptions{
		TimeScale: rec.spec.TimeScale,
		Timeout:   d.opts.LeaseTimeout,
		TCP:       true,
		Codec:     "wire",
		Drain:     true,
	})
	// Wait for each worker's clean close so tearing down the data plane
	// cannot reset a connection with a reply in flight.
	cluster.DrainFabric(fab, d.opts.DrainGrace)
	return res, rerr
}

// releaseLeases returns workers that never received an assignment straight
// to the idle pool (workers that were assigned release themselves with an
// Idle frame when their lease ends).
func (d *Daemon) releaseLeases(leased []*fleetWorker) {
	if len(leased) == 0 {
		return
	}
	d.mu.Lock()
	for _, fw := range leased {
		if fw.gone {
			continue
		}
		fw.job = 0
		d.idle = append(d.idle, fw)
	}
	d.scheduleLocked()
	d.mu.Unlock()
}

// finishJob maps the engine's exit into the job lifecycle and wakes the
// scheduler: done on success, canceled on context cancellation, degraded
// when the gradient became unrecoverable (ErrBelowThreshold wraps
// ErrStalled), failed otherwise. Partial results are kept on every path.
func (d *Daemon) finishJob(rec *jobRecord, res *cluster.Result, err error) {
	d.mu.Lock()
	rec.result = res
	rec.finished = time.Now()
	switch {
	case err == nil:
		rec.state = core.JobDone
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		rec.state = core.JobCanceled
		rec.errText = err.Error()
	case errors.Is(err, cluster.ErrStalled):
		rec.state = core.JobDegraded
		rec.errText = err.Error()
	default:
		rec.state = core.JobFailed
		rec.errText = err.Error()
	}
	if res != nil {
		rec.iter = len(res.Iters)
	}
	state := rec.state
	close(rec.done)
	d.scheduleLocked()
	d.mu.Unlock()
	d.logf("service: job %d %s after %d iterations", rec.id, state, rec.iter)
}

// Submit validates and enqueues a job built from a local Spec. The spec
// travels through the same encode/decode path as a wire submission, so the
// same process-local-state rejections apply.
func (d *Daemon) Submit(spec core.Spec) (JobStatus, error) {
	data, err := core.EncodeSpec(spec)
	if err != nil {
		return JobStatus{}, err
	}
	return d.SubmitEncoded(data)
}

// SubmitEncoded enqueues a job from EncodeSpec bytes (the wire submission
// path). The spec is re-encoded after normalization so every leased worker
// receives the identical fully-resolved spec.
func (d *Daemon) SubmitEncoded(data []byte) (JobStatus, error) {
	spec, err := core.DecodeSpec(data)
	if err != nil {
		return JobStatus{}, err
	}
	norm, err := core.EncodeSpec(spec)
	if err != nil {
		return JobStatus{}, err
	}
	need := 0
	if spec.Runtime == core.RuntimeTCP {
		need = spec.Workers - len(spec.Dead)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed || d.draining {
		return JobStatus{}, fmt.Errorf("service: daemon is draining, not accepting jobs")
	}
	if len(d.queue) >= d.opts.MaxQueue {
		return JobStatus{}, fmt.Errorf("service: queue full (%d jobs waiting)", len(d.queue))
	}
	d.nextJob++
	rec := &jobRecord{
		id:        core.JobID(d.nextJob),
		spec:      spec,
		specBytes: norm,
		need:      need,
		state:     core.JobQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
		loss:      math.NaN(),
	}
	d.jobs[rec.id] = rec
	d.order = append(d.order, rec.id)
	d.queue = append(d.queue, rec)
	d.scheduleLocked()
	return d.statusLocked(rec), nil
}

// Status reports a job's current lifecycle snapshot.
func (d *Daemon) Status(id core.JobID) (JobStatus, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	rec, ok := d.jobs[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("service: no such job %d", id)
	}
	return d.statusLocked(rec), nil
}

// Cancel stops a job: a queued job turns canceled immediately (and the jobs
// behind it move up); a running job's engine is interrupted and keeps the
// partial result of its completed iterations. Canceling a terminal job is a
// no-op returning its status.
func (d *Daemon) Cancel(id core.JobID) (JobStatus, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	rec, ok := d.jobs[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("service: no such job %d", id)
	}
	switch rec.state {
	case core.JobQueued:
		rec.state = core.JobCanceled
		rec.errText = "canceled while queued"
		rec.finished = time.Now()
		close(rec.done)
		d.scheduleLocked()
	case core.JobRunning:
		rec.cancel()
	}
	return d.statusLocked(rec), nil
}

// Wait blocks until the job reaches a terminal state (or ctx expires) and
// returns its final status.
func (d *Daemon) Wait(ctx context.Context, id core.JobID) (JobStatus, error) {
	d.mu.Lock()
	rec, ok := d.jobs[id]
	d.mu.Unlock()
	if !ok {
		return JobStatus{}, fmt.Errorf("service: no such job %d", id)
	}
	select {
	case <-rec.done:
	case <-ctx.Done():
		return d.Status(id)
	}
	return d.Status(id)
}

// Result returns a terminal job's engine result (nil for jobs that failed
// before producing one). The caller must treat it as read-only: concurrent
// status snapshots read the same object.
func (d *Daemon) Result(id core.JobID) (*cluster.Result, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	rec, ok := d.jobs[id]
	if !ok {
		return nil, fmt.Errorf("service: no such job %d", id)
	}
	if !rec.state.Terminal() {
		return nil, fmt.Errorf("service: job %d is %s, not terminal", id, rec.state)
	}
	return rec.result, nil
}

// Jobs lists every known job in submission order.
func (d *Daemon) Jobs() []JobStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]JobStatus, 0, len(d.order))
	for _, id := range d.order {
		out = append(out, d.statusLocked(d.jobs[id]))
	}
	return out
}

// Workers lists the registered fleet in join order.
func (d *Daemon) Workers() []WorkerStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]WorkerStatus, 0, len(d.workers))
	for id := 1; id <= d.nextWorker; id++ {
		fw, ok := d.workers[id]
		if !ok {
			continue
		}
		ws := WorkerStatus{ID: fw.id, Name: fw.name, Job: fw.job, Leases: fw.leases, State: "idle"}
		if fw.job != 0 {
			ws.State = "busy"
		}
		out = append(out, ws)
	}
	return out
}

// Drain stops the daemon gracefully: new submissions are rejected, queued
// jobs are canceled, and running jobs are given until ctx expires to finish
// before being canceled themselves. It then closes the daemon and waits for
// every goroutine.
func (d *Daemon) Drain(ctx context.Context) error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.draining = true
	for _, rec := range d.queue {
		if rec.state == core.JobQueued {
			rec.state = core.JobCanceled
			rec.errText = "daemon draining"
			rec.finished = time.Now()
			close(rec.done)
		}
	}
	d.queue = nil
	var running []*jobRecord
	for _, rec := range d.jobs {
		if rec.state == core.JobRunning {
			running = append(running, rec)
		}
	}
	d.mu.Unlock()
	d.logf("service: draining (%d running jobs)", len(running))
	finished := make(chan struct{})
	go func() {
		for _, rec := range running {
			<-rec.done
		}
		close(finished)
	}()
	select {
	case <-finished:
	case <-ctx.Done():
		d.mu.Lock()
		for _, rec := range running {
			if rec.cancel != nil {
				rec.cancel()
			}
		}
		d.mu.Unlock()
		<-finished
	}
	return d.Close()
}

// Close stops the daemon immediately: running jobs are canceled (keeping
// partial results), every connection and listener is closed, and Close
// blocks until all daemon goroutines exit. Idempotent.
func (d *Daemon) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.rootCancel()
	for c := range d.conns {
		c.Close()
	}
	for ln := range d.jobLns {
		ln.Close()
	}
	httpSrv := d.httpSrv
	d.mu.Unlock()
	d.ln.Close()
	if httpSrv != nil {
		httpSrv.Close()
	}
	d.wg.Wait()
	return nil
}
