package service

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"bcc/internal/cluster"
	"bcc/internal/core"
	"bcc/internal/faults"
)

// waitNoExtraGoroutines polls until the goroutine count returns to the
// before level, failing with a stack dump if it never does.
func waitNoExtraGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after teardown\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// startFleet spawns a daemon plus n in-process fleet workers and waits for
// every join. The returned stop function drains the daemon and reaps the
// workers.
func startFleet(t *testing.T, n int, opts Options) (*Daemon, func()) {
	t.Helper()
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	d, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = ServeWorker(ctx, d.Addr(), fmt.Sprintf("w%d", i))
		}(i)
	}
	waitWorkers(t, d, n)
	return d, func() {
		d.Close()
		cancel()
		wg.Wait()
	}
}

func waitWorkers(t *testing.T, d *Daemon, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for len(d.Workers()) < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d workers joined", len(d.Workers()), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// tcpSpec builds a small remote-submittable TCP job.
func tcpSpec(scheme core.Scheme, n int, seed uint64, iters int) core.Spec {
	return core.Spec{
		DataPoints: 96, Dim: 24,
		Examples: n, Workers: n, Load: 2,
		Scheme: scheme, Iterations: iters, Seed: seed,
		Runtime: core.RuntimeTCP,
	}
}

func runSolo(t *testing.T, spec core.Spec) *cluster.Result {
	t.Helper()
	norm, err := spec.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	job, err := core.NewJob(norm)
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// sameTrajectory asserts the runs follow bit-identical optimization paths:
// the final iterate and every iteration's decoded gradient norm. When full
// is set (virtual-clock runtimes, where arrival order is deterministic) the
// timing-and-arrival observations — workers heard, units, bytes, wall —
// must match too; on real TCP those depend on socket scheduling and are
// excluded, exactly like measured wire bytes in cross-runtime conformance.
func sameTrajectory(t *testing.T, name string, got, want *cluster.Result, full bool) {
	t.Helper()
	if len(got.Iters) != len(want.Iters) {
		t.Fatalf("%s: %d iterations vs solo %d", name, len(got.Iters), len(want.Iters))
	}
	for i := range got.Iters {
		g, w := got.Iters[i], want.Iters[i]
		if g.GradNorm != w.GradNorm {
			t.Fatalf("%s iter %d: |g| = %v, solo %v", name, i, g.GradNorm, w.GradNorm)
		}
		if full {
			if g.WorkersHeard != w.WorkersHeard || g.Units != w.Units || g.Bytes != w.Bytes || g.Wall != w.Wall {
				t.Fatalf("%s iter %d: (K=%d units=%v bytes=%d wall=%v), solo (K=%d units=%v bytes=%d wall=%v)",
					name, i, g.WorkersHeard, g.Units, g.Bytes, g.Wall,
					w.WorkersHeard, w.Units, w.Bytes, w.Wall)
			}
		}
	}
	if len(got.FinalW) != len(want.FinalW) {
		t.Fatalf("%s: FinalW dim %d vs %d", name, len(got.FinalW), len(want.FinalW))
	}
	for i := range got.FinalW {
		if got.FinalW[i] != want.FinalW[i] {
			t.Fatalf("%s: FinalW[%d] = %v, solo %v", name, i, got.FinalW[i], want.FinalW[i])
		}
	}
}

// TestConcurrentJobsConformance is the tentpole's acceptance test: two jobs
// with different schemes and payload codecs share one fleet, run
// concurrently on separate engine instances, and each produces the
// bit-identical training trajectory of a solo run of the same spec — the
// isolation contract. A sim-runtime submission must additionally match its
// solo run on every arrival observation, since nothing about a daemon-run
// sim job may differ at all.
func TestConcurrentJobsConformance(t *testing.T) {
	d, stop := startFleet(t, 8, Options{})
	defer stop()

	// Both jobs use schemes from the BCC family, whose decoders reconstruct
	// the gradient identically from any decodable subset — so the TCP
	// trajectory is bit-reproducible even though arrival order is not.
	// (Replication/MDS decodes depend on which replicas arrive first, so a
	// real-socket run of those is not bit-comparable to anything.)
	specA := tcpSpec(core.SchemeBCC, 4, 7, 15)
	specA.Payload = core.PayloadF32
	specB := tcpSpec(core.SchemeBCCMulti, 4, 9, 15)
	specB.Payload = core.PayloadTopK
	specB.TopK = 6

	c, err := Dial(d.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	stA, err := c.Submit(specA)
	if err != nil {
		t.Fatal(err)
	}
	stB, err := c.Submit(specB)
	if err != nil {
		t.Fatal(err)
	}
	// Eight idle workers cover both four-worker jobs: admission is immediate
	// and the jobs genuinely overlap.
	if stB.State != core.JobRunning {
		t.Fatalf("job B not admitted concurrently: state %s", stB.State)
	}

	ctx := context.Background()
	finA, err := c.Watch(ctx, stA.ID, 10*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	finB, err := d.Wait(ctx, stB.ID)
	if err != nil {
		t.Fatal(err)
	}
	if finA.State != core.JobDone || finB.State != core.JobDone {
		t.Fatalf("states: A=%s (%s), B=%s (%s)", finA.State, finA.Err, finB.State, finB.Err)
	}
	if finA.Iter != 15 || finB.Iter != 15 {
		t.Fatalf("iterations: A=%d B=%d, want 15", finA.Iter, finB.Iter)
	}
	if finA.WireIn <= 0 || finA.WireOut <= 0 {
		t.Fatalf("job A measured no wire traffic: in=%d out=%d", finA.WireIn, finA.WireOut)
	}

	resA, err := d.Result(stA.ID)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := d.Result(stB.ID)
	if err != nil {
		t.Fatal(err)
	}
	sameTrajectory(t, "tcp job A", resA, runSolo(t, specA), false)
	sameTrajectory(t, "tcp job B", resB, runSolo(t, specB), false)

	// Sim-runtime submission: virtual clock, so conformance is total — any
	// scheme, including the arrival-order-sensitive replication decode.
	specC := tcpSpec(core.SchemeCyclicRep, 4, 21, 12)
	specC.Runtime = core.RuntimeSim
	stC, err := c.Submit(specC)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Wait(ctx, stC.ID); err != nil {
		t.Fatal(err)
	}
	resC, err := d.Result(stC.ID)
	if err != nil {
		t.Fatal(err)
	}
	sameTrajectory(t, "sim job C", resC, runSolo(t, specC), true)

	// Status of a job that does not exist is an error carried in-band.
	if _, err := c.Status(core.JobID(999)); err == nil || !strings.Contains(err.Error(), "no such job") {
		t.Fatalf("unknown job id: err = %v", err)
	}
}

// TestQueueAdmissionFIFO pins the scheduler contract: strict FIFO with the
// head blocking the queue (even a zero-worker sim job waits behind a TCP
// job that cannot start), cancellation of a queued job unblocking the jobs
// behind it, and leases released by a canceled running job admitting the
// next TCP job without restarting workers.
func TestQueueAdmissionFIFO(t *testing.T) {
	d, stop := startFleet(t, 2, Options{})
	defer stop()

	long := tcpSpec(core.SchemeCyclicRep, 2, 3, 1_000_000)
	st1, err := d.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	if st1.State != core.JobRunning {
		t.Fatalf("long job state %s, want running", st1.State)
	}

	st2, err := d.Submit(tcpSpec(core.SchemeCyclicRep, 2, 5, 5))
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != core.JobQueued {
		t.Fatalf("second TCP job state %s, want queued (no idle workers)", st2.State)
	}

	sim := tcpSpec(core.SchemeBCC, 4, 11, 4)
	sim.Runtime = core.RuntimeSim
	st3, err := d.Submit(sim)
	if err != nil {
		t.Fatal(err)
	}
	if st3.State != core.JobQueued {
		t.Fatalf("sim job state %s, want queued: FIFO head must block the queue", st3.State)
	}

	// Canceling the queued head admits the sim job behind it immediately,
	// while the long job keeps its lease.
	if _, err := d.Cancel(st2.ID); err != nil {
		t.Fatal(err)
	}
	fin3, err := d.Wait(context.Background(), st3.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin3.State != core.JobDone {
		t.Fatalf("sim job state %s (%s), want done", fin3.State, fin3.Err)
	}
	if st, _ := d.Status(st1.ID); st.State != core.JobRunning {
		t.Fatalf("long job state %s, want still running", st.State)
	}
	if st, _ := d.Status(st2.ID); st.State != core.JobCanceled {
		t.Fatalf("canceled queued job state %s", st.State)
	}

	// Canceling the running job releases its leases; a fresh TCP job then
	// runs to completion on the same two workers.
	if _, err := d.Cancel(st1.ID); err != nil {
		t.Fatal(err)
	}
	fin1, err := d.Wait(context.Background(), st1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin1.State != core.JobCanceled {
		t.Fatalf("canceled running job state %s (%s)", fin1.State, fin1.Err)
	}

	st4, err := d.Submit(tcpSpec(core.SchemeCyclicRep, 2, 13, 6))
	if err != nil {
		t.Fatal(err)
	}
	fin4, err := d.Wait(context.Background(), st4.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin4.State != core.JobDone || fin4.Iter != 6 {
		t.Fatalf("post-cancel job state %s iter %d (%s), want done/6", fin4.State, fin4.Iter, fin4.Err)
	}
}

// TestLeaseReleaseOnDegrade: a job that degrades below the recovery
// threshold (ErrBelowThreshold) ends as JobDegraded with its partial
// result, and — because the engine broadcasts shutdown on that path too —
// its leases return to the pool and the next job completes normally.
func TestLeaseReleaseOnDegrade(t *testing.T) {
	d, stop := startFleet(t, 4, Options{})
	defer stop()

	spec := tcpSpec(core.SchemeBCC, 4, 31, 10)
	// Crash all but one worker at iteration 2: bcc cannot decode from one.
	spec.Faults = &faults.Plan{N: 4}
	for w := 0; w < 3; w++ {
		spec.Faults.Crashes = append(spec.Faults.Crashes, faults.Crash{Worker: w, At: 2})
	}
	st, err := d.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	fin, err := d.Wait(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != core.JobDegraded {
		t.Fatalf("state %s (%s), want degraded", fin.State, fin.Err)
	}
	res, err := d.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iters) != 2 {
		t.Fatalf("degraded job kept %d iterations, want the 2 completed", len(res.Iters))
	}
	if fin.Faults == 0 {
		t.Fatal("no fault events reached the job's observer")
	}

	next, err := d.Submit(tcpSpec(core.SchemeCyclicRep, 4, 33, 5))
	if err != nil {
		t.Fatal(err)
	}
	finNext, err := d.Wait(context.Background(), next.ID)
	if err != nil {
		t.Fatal(err)
	}
	if finNext.State != core.JobDone {
		t.Fatalf("job after degrade: state %s (%s), want done", finNext.State, finNext.Err)
	}
}

// TestDrainNoGoroutineLeak: a full lifecycle — fleet joins, jobs run, one
// still running at drain time — tears down with zero leaked goroutines.
// Drain cancels the in-flight job after the grace context expires and keeps
// its partial result.
func TestDrainNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	d, err := Start(Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = ServeWorker(ctx, d.Addr(), fmt.Sprintf("w%d", i))
		}(i)
	}
	waitWorkers(t, d, 2)

	quick, err := d.Submit(tcpSpec(core.SchemeCyclicRep, 2, 41, 5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Wait(context.Background(), quick.ID); err != nil {
		t.Fatal(err)
	}
	long, err := d.Submit(tcpSpec(core.SchemeCyclicRep, 2, 43, 1_000_000))
	if err != nil {
		t.Fatal(err)
	}

	grace, gcancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer gcancel()
	if err := d.Drain(grace); err != nil {
		t.Fatal(err)
	}
	st, err := d.Status(long.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != core.JobCanceled {
		t.Fatalf("in-flight job after drain: state %s (%s), want canceled", st.State, st.Err)
	}
	if _, err := d.Submit(tcpSpec(core.SchemeCyclicRep, 2, 45, 3)); err == nil {
		t.Fatal("drained daemon accepted a submission")
	}

	cancel()
	wg.Wait()
	waitNoExtraGoroutines(t, before)
}

// TestHTTPSurface exercises the read-only HTTP endpoints end to end against
// a live daemon: job listings, per-job status, worker listing, health and
// the Prometheus metrics (which must report the measured data-plane bytes).
func TestHTTPSurface(t *testing.T) {
	d, stop := startFleet(t, 2, Options{HTTPAddr: "127.0.0.1:0"})
	defer stop()
	base := "http://" + d.HTTPAddr()

	st, err := d.Submit(tcpSpec(core.SchemeCyclicRep, 2, 51, 6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Wait(context.Background(), st.ID); err != nil {
		t.Fatal(err)
	}

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d %s", path, resp.StatusCode, body)
		}
		return string(body)
	}
	if s := get("/healthz"); !strings.Contains(s, "ok") {
		t.Fatalf("healthz: %q", s)
	}
	if s := get("/jobs"); !strings.Contains(s, `"state": "done"`) {
		t.Fatalf("/jobs missing done job: %s", s)
	}
	if s := get(fmt.Sprintf("/jobs/%d", st.ID)); !strings.Contains(s, `"scheme": "cyclicrep"`) {
		t.Fatalf("/jobs/{id}: %s", s)
	}
	if s := get("/workers"); !strings.Contains(s, `"state": "idle"`) {
		t.Fatalf("/workers: %s", s)
	}
	metrics := get("/metrics")
	for _, want := range []string{`bcc_jobs{state="done"} 1`, "bcc_queue_depth 0", `bcc_workers{state="idle"} 2`} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}
	// The data plane moved real bytes; the fleet counters saw them.
	var in int64
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "bcc_wire_bytes_in_total ") {
			fmt.Sscanf(line, "bcc_wire_bytes_in_total %d", &in)
		}
	}
	if in <= 0 {
		t.Fatalf("bcc_wire_bytes_in_total = %d, want > 0:\n%s", in, metrics)
	}

	resp, err := http.Get(base + "/jobs/999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /jobs/999: %d, want 404", resp.StatusCode)
	}
	resp, err = http.Post(base+fmt.Sprintf("/jobs/%d/cancel", st.ID), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel of terminal job: %d, want 200 no-op", resp.StatusCode)
	}
}

// TestShardedJobScatterPlane: a MasterShards job submitted to the daemon
// runs over the scatter data plane — per-shard listeners opened next to the
// job's primary port, their ports shipped in every Assign frame, workers
// writing reply slices directly to the owning shards — and still follows the
// bit-identical trajectory of a solo unsharded run. The job status and the
// HTTP surfaces expose the measured per-shard counters.
func TestShardedJobScatterPlane(t *testing.T) {
	d, stop := startFleet(t, 4, Options{HTTPAddr: "127.0.0.1:0"})
	defer stop()

	spec := tcpSpec(core.SchemeBCC, 4, 71, 10)
	spec.WireChunk = 4 // dim 24 -> 6 chunks, so 4 shards get real slices
	spec.MasterShards = 4

	st, err := d.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	fin, err := d.Wait(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != core.JobDone {
		t.Fatalf("sharded job state %s (%s), want done", fin.State, fin.Err)
	}

	solo := spec
	solo.MasterShards = 0
	res, err := d.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	sameTrajectory(t, "sharded tcp job", res, runSolo(t, solo), false)

	// Per-shard counters: every shard decoded every iteration, and the
	// scatter listeners measured real payload bytes on every non-empty slice.
	if len(fin.Shards) != 4 || len(res.Shards) != 4 {
		t.Fatalf("shard stats: status has %d, result has %d, want 4", len(fin.Shards), len(res.Shards))
	}
	var sum int64
	for _, ss := range fin.Shards {
		if ss.Iters != 10 {
			t.Fatalf("shard %d decoded %d iterations, want 10", ss.Shard, ss.Iters)
		}
		if ss.Hi > ss.Lo && ss.SliceBytesIn <= 0 {
			t.Fatalf("shard %d [%d,%d) measured no bytes", ss.Shard, ss.Lo, ss.Hi)
		}
		sum += ss.SliceBytesIn
	}
	if sum <= 0 {
		t.Fatalf("per-shard bytes sum %d, want > 0", sum)
	}

	base := "http://" + d.HTTPAddr()
	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d %s", path, resp.StatusCode, body)
		}
		return string(body)
	}
	if s := get(fmt.Sprintf("/jobs/%d", st.ID)); !strings.Contains(s, `"slice_bytes_in"`) {
		t.Fatalf("/jobs/{id} missing shard stats: %s", s)
	}
	metrics := get("/metrics")
	for _, want := range []string{
		fmt.Sprintf(`bcc_shard_decode_ns_total{job="%d",shard="3"}`, st.ID),
		fmt.Sprintf(`bcc_shard_bytes_in_total{job="%d",shard="0"}`, st.ID),
		fmt.Sprintf(`bcc_shard_queue_depth{job="%d",shard="0"}`, st.ID),
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestPerJobPoolCap: the daemon-wide PoolCap option reaches every job's
// engine configuration, bounding per-tenant buffer retention.
func TestPerJobPoolCap(t *testing.T) {
	d, stop := startFleet(t, 2, Options{PoolCap: 5})
	defer stop()
	st, err := d.Submit(tcpSpec(core.SchemeCyclicRep, 2, 61, 4))
	if err != nil {
		t.Fatal(err)
	}
	fin, err := d.Wait(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != core.JobDone {
		t.Fatalf("capped-pool job state %s (%s)", fin.State, fin.Err)
	}
}
