package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"time"

	"bcc/internal/core"
	"bcc/internal/wire"
)

// Client is a connection to a daemon's control plane: submit jobs, poll
// their status, cancel them. Methods are safe for concurrent use — the
// session is a lockstep request/reply exchange, serialized by a mutex.
type Client struct {
	conn net.Conn
	w    *wire.Writer
	r    *wire.Reader
	mu   chan struct{} // capacity-1 semaphore; select-able for ctx support
}

// Dial connects a client to a daemon at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("service: dial %s: %w", addr, err)
	}
	c := &Client{conn: conn, w: wire.NewWriter(conn), r: wire.NewReader(conn), mu: make(chan struct{}, 1)}
	c.mu <- struct{}{}
	return c, nil
}

// Close ends the session.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip serializes one request frame and reads the daemon's State reply.
func (c *Client) roundTrip(write func() error) (JobStatus, error) {
	<-c.mu
	defer func() { c.mu <- struct{}{} }()
	if err := write(); err != nil {
		return JobStatus{}, fmt.Errorf("service: client write: %w", err)
	}
	k, err := c.r.NextKind()
	if err != nil {
		return JobStatus{}, fmt.Errorf("service: client read: %w", err)
	}
	if k != wire.KindState {
		return JobStatus{}, fmt.Errorf("service: client got unexpected frame kind %d", k)
	}
	s, err := c.r.ReadState()
	if err != nil {
		return JobStatus{}, fmt.Errorf("service: client read: %w", err)
	}
	var st JobStatus
	if len(s.Status) > 0 {
		if jerr := json.Unmarshal(s.Status, &st); jerr != nil {
			return JobStatus{}, fmt.Errorf("service: client decoding status: %w", jerr)
		}
	}
	if s.Err != "" {
		return st, errors.New(s.Err)
	}
	return st, nil
}

// Submit encodes the spec (rejecting process-local state, exactly like a
// daemon-side Submit) and enqueues it, returning the accepted job's initial
// status.
func (c *Client) Submit(spec core.Spec) (JobStatus, error) {
	data, err := core.EncodeSpec(spec)
	if err != nil {
		return JobStatus{}, err
	}
	return c.roundTrip(func() error { return c.w.WriteSubmit(wire.Submit{Spec: data}) })
}

// Status fetches a job's current snapshot.
func (c *Client) Status(id core.JobID) (JobStatus, error) {
	return c.roundTrip(func() error { return c.w.WriteStatus(uint64(id)) })
}

// Cancel requests cancellation and returns the job's status after the
// request is applied (a running job may still be winding down).
func (c *Client) Cancel(id core.JobID) (JobStatus, error) {
	return c.roundTrip(func() error { return c.w.WriteCancel(uint64(id)) })
}

// Watch polls a job until it reaches a terminal state (or ctx expires),
// invoking fn — if non-nil — on every snapshot, and returns the final
// status.
func (c *Client) Watch(ctx context.Context, id core.JobID, every time.Duration, fn func(JobStatus)) (JobStatus, error) {
	if every <= 0 {
		every = 200 * time.Millisecond
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		st, err := c.Status(id)
		if err != nil {
			return st, err
		}
		if fn != nil {
			fn(st)
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-tick.C:
		}
	}
}
