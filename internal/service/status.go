package service

import (
	"context"
	"math"
	"time"

	"bcc/internal/cluster"
	"bcc/internal/core"
	"bcc/internal/faults"
)

// jobRecord is the daemon's book-keeping for one submitted job. Immutable
// identity fields are set at submission; the mutable lifecycle and progress
// fields are guarded by Daemon.mu (the per-job Observer updates them from
// the job's engine goroutine).
type jobRecord struct {
	id        core.JobID
	spec      core.Spec
	specBytes []byte // normalized EncodeSpec bytes, what Assign frames carry
	need      int    // fleet workers required for admission (tcp runtime)

	state     core.JobState
	errText   string
	submitted time.Time
	started   time.Time
	finished  time.Time
	cancel    context.CancelFunc
	done      chan struct{} // closed when the job reaches a terminal state
	result    *cluster.Result
	leased    []*fleetWorker

	// Live progress, fed by the per-job Observer.
	iter         int
	gradNorm     float64
	loss         float64 // NaN until LossEvery samples one
	bytes        int
	wireIn       int64
	wireOut      int64
	workersHeard int
	faults       int
	level        int                  // active redundancy level (adaptive nested jobs; 0 otherwise)
	levelSwitch  int                  // level changes between consecutive iterations
	shards       []cluster.ShardStats // sharded-master jobs only; cumulative
}

// JobStatus is the externally visible snapshot of a job, shared by the Go
// API, the wire State frames and the HTTP surface.
type JobStatus struct {
	ID      core.JobID    `json:"id"`
	State   core.JobState `json:"state"`
	Err     string        `json:"err,omitempty"`
	Scheme  string        `json:"scheme"`
	Runtime string        `json:"runtime"`
	Payload string        `json:"payload,omitempty"`
	// Workers is the spec's cluster size n; for TCP jobs the alive subset is
	// leased from the fleet.
	Workers    int `json:"workers"`
	Iterations int `json:"iterations"`

	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitzero"`
	Finished  time.Time `json:"finished,omitzero"`
	// QueueSeconds is time spent waiting for admission; RunSeconds is time
	// spent on the engine. Both keep ticking while the job is in that phase.
	QueueSeconds float64 `json:"queue_seconds"`
	RunSeconds   float64 `json:"run_seconds"`

	// Progress so far (final values once terminal).
	Iter         int     `json:"iter"`
	GradNorm     float64 `json:"grad_norm,omitempty"`
	Loss         float64 `json:"loss,omitempty"`
	Bytes        int     `json:"bytes,omitempty"`
	WireIn       int64   `json:"wire_in,omitempty"`
	WireOut      int64   `json:"wire_out,omitempty"`
	WorkersHeard int     `json:"workers_heard,omitempty"`
	Faults       int     `json:"faults,omitempty"`
	// Level is the redundancy level the adaptive nested controller ran the
	// last iteration at (0 for fixed-redundancy jobs); LevelSwitches counts
	// how many times the level changed between consecutive iterations.
	Level         int `json:"level,omitempty"`
	LevelSwitches int `json:"level_switches,omitempty"`
	// Shards holds the per-shard counters of a sharded-master job (cumulative
	// decode time, measured or modelled slice bytes, queue depth), absent for
	// unsharded jobs.
	Shards []cluster.ShardStats `json:"shards,omitempty"`
}

// WorkerStatus describes one fleet worker.
type WorkerStatus struct {
	ID   int    `json:"id"`
	Name string `json:"name"`
	// State is "idle" (in the lease pool) or "busy" (leased to Job).
	State string     `json:"state"`
	Job   core.JobID `json:"job,omitempty"`
	// Leases counts completed leases over the worker's lifetime.
	Leases int `json:"leases"`
}

// statusLocked snapshots a record into its external form. Callers hold d.mu.
func (d *Daemon) statusLocked(rec *jobRecord) JobStatus {
	now := time.Now()
	st := JobStatus{
		ID:         rec.id,
		State:      rec.state,
		Err:        rec.errText,
		Scheme:     string(rec.spec.Scheme),
		Runtime:    string(rec.spec.Runtime),
		Payload:    string(rec.spec.Payload),
		Workers:    rec.spec.Workers,
		Iterations: rec.spec.Iterations,
		Submitted:  rec.submitted,
		Started:    rec.started,
		Finished:   rec.finished,

		Iter:          rec.iter,
		GradNorm:      rec.gradNorm,
		Bytes:         rec.bytes,
		WireIn:        rec.wireIn,
		WireOut:       rec.wireOut,
		WorkersHeard:  rec.workersHeard,
		Faults:        rec.faults,
		Level:         rec.level,
		LevelSwitches: rec.levelSwitch,
	}
	if len(rec.shards) > 0 {
		st.Shards = append([]cluster.ShardStats(nil), rec.shards...)
	}
	if !math.IsNaN(rec.loss) {
		st.Loss = rec.loss
	}
	switch {
	case rec.started.IsZero(): // still queued (or canceled while queued)
		end := now
		if !rec.finished.IsZero() {
			end = rec.finished
		}
		st.QueueSeconds = end.Sub(rec.submitted).Seconds()
	default:
		st.QueueSeconds = rec.started.Sub(rec.submitted).Seconds()
		end := now
		if !rec.finished.IsZero() {
			end = rec.finished
		}
		st.RunSeconds = end.Sub(rec.started).Seconds()
	}
	return st
}

// observe builds the job's private Observer: it feeds the record's progress
// fields so /jobs and Status report live iteration counts, gradient norms
// and measured wire traffic. Hooks run synchronously on the job's master
// goroutine, so each callback only takes the daemon lock briefly.
func (d *Daemon) observe(rec *jobRecord) cluster.Observer {
	return cluster.ObserverFuncs{
		Iteration: func(st cluster.IterStats) {
			d.mu.Lock()
			rec.iter = st.Iter + 1
			rec.gradNorm = st.GradNorm
			if !math.IsNaN(st.Loss) {
				rec.loss = st.Loss
			}
			rec.bytes += st.Bytes
			rec.wireIn += int64(st.WireBytesIn)
			rec.wireOut += int64(st.WireBytesOut)
			rec.workersHeard = st.WorkersHeard
			if st.Level > 0 {
				if rec.level != 0 && st.Level != rec.level {
					rec.levelSwitch++
				}
				rec.level = st.Level
			}
			d.mu.Unlock()
		},
		Fault: func(faults.Event) {
			d.mu.Lock()
			rec.faults++
			d.mu.Unlock()
		},
		Shards: func(stats []cluster.ShardStats) {
			// The engine owns the slice and only lends it for the callback.
			d.mu.Lock()
			rec.shards = append(rec.shards[:0], stats...)
			d.mu.Unlock()
		},
	}
}
