// Package rngutil provides deterministic, splittable pseudo-random number
// streams and the samplers used throughout the library.
//
// The generators are implemented from scratch (splitmix64 for seeding,
// xoshiro256** for the main stream) so that experiment reproducibility does
// not depend on the Go standard library's generator, which is free to change
// between releases. Every experiment in this repository is driven by a seed
// and is bit-for-bit reproducible.
package rngutil

import (
	"math"
)

// RNG is a deterministic pseudo-random number generator based on
// xoshiro256**. It is NOT safe for concurrent use; derive one stream per
// goroutine with Split.
type RNG struct {
	s [4]uint64
	// cached second normal variate from the Box-Muller transform
	hasGauss bool
	gauss    float64
}

// splitmix64 advances the state and returns the next value of the splitmix64
// sequence. It is used to expand a single 64-bit seed into the 256-bit
// xoshiro state, as recommended by the xoshiro authors.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given 64-bit seed. Distinct seeds
// yield decorrelated streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// The all-zero state is invalid for xoshiro; splitmix64 cannot produce
	// four consecutive zeros, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Split derives an independent child stream. The child is seeded from the
// parent's next output mixed through splitmix64, so parent and child
// sequences are decorrelated and the parent advances deterministically.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// SplitN derives n independent child streams (e.g. one per worker).
func (r *RNG) SplitN(n int) []*RNG {
	out := make([]*RNG, n)
	for i := range out {
		out[i] = r.Split()
	}
	return out
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits (xoshiro256**).
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Uses Lemire's unbiased bounded rejection method.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rngutil: Intn with non-positive bound")
	}
	bound := uint64(n)
	// Fast path for powers of two.
	if bound&(bound-1) == 0 {
		return int(r.Uint64() & (bound - 1))
	}
	threshold := (-bound) % bound // 2^64 mod bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Sample returns k distinct integers drawn uniformly from [0, n) in random
// order. It panics if k > n or k < 0.
func (r *RNG) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("rngutil: Sample with k out of range")
	}
	// Partial Fisher–Yates: O(n) memory but O(k) swaps; fine at our scales.
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		p[i], p[j] = p[j], p[i]
	}
	return p[:k:k]
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Normal returns a standard normal variate via the Box–Muller transform
// (polar form is avoided to keep the draw count deterministic per call pair).
func (r *RNG) Normal() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u float64
	for u == 0 {
		u = r.Float64()
	}
	v := r.Float64()
	mag := math.Sqrt(-2 * math.Log(u))
	r.gauss = mag * math.Sin(2*math.Pi*v)
	r.hasGauss = true
	return mag * math.Cos(2*math.Pi*v)
}

// NormalMS returns a normal variate with the given mean and standard
// deviation.
func (r *RNG) NormalMS(mean, stddev float64) float64 {
	return mean + stddev*r.Normal()
}

// Exponential returns an exponential variate with the given rate λ > 0
// (mean 1/λ). It panics if rate <= 0.
func (r *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("rngutil: Exponential with non-positive rate")
	}
	var u float64
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// ShiftedExponential samples the paper's worker-latency model (eq. 15):
//
//	Pr[T <= t] = 1 - exp(-(mu/load) * (t - a*load)),  t >= a*load
//
// i.e. a deterministic shift a*load plus an exponential tail with rate
// mu/load. load must be > 0 when mu or a is used; a zero load returns 0.
func (r *RNG) ShiftedExponential(mu, a float64, load float64) float64 {
	if load <= 0 {
		return 0
	}
	return a*load + r.Exponential(mu/load)
}
