package rngutil

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams with same seed diverged at draw %d: %d vs %d", i, av, bv)
		}
	}
}

func TestSeedsDecorrelate(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical 64-bit draws out of 1000", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical first draws")
	}
	// Splitting must be deterministic given the parent seed.
	parent2 := New(7)
	d1 := parent2.Split()
	if c1Val, d1Val := New(7).Split().Uint64(), d1.Uint64(); c1Val != d1Val {
		t.Fatalf("split determinism broken: %d vs %d", c1Val, d1Val)
	}
}

func TestSplitN(t *testing.T) {
	streams := New(3).SplitN(8)
	if len(streams) != 8 {
		t.Fatalf("SplitN(8) returned %d streams", len(streams))
	}
	seen := map[uint64]bool{}
	for _, s := range streams {
		v := s.Uint64()
		if seen[v] {
			t.Fatalf("duplicate first draw %d across SplitN streams", v)
		}
		seen[v] = true
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(12)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(13)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(14)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	for c, got := range counts {
		expect := float64(draws) / n
		if math.Abs(float64(got)-expect) > 5*math.Sqrt(expect) {
			t.Fatalf("bucket %d count %d too far from %v", c, got, expect)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(15)
	err := quick.Check(func(seed uint64) bool {
		n := int(seed%50) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(16)
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(40)
		k := r.Intn(n + 1)
		s := r.Sample(n, k)
		if len(s) != k {
			t.Fatalf("Sample(%d,%d) returned %d items", n, k, len(s))
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Sample(%d,%d) invalid element %d", n, k, v)
			}
			seen[v] = true
		}
	}
}

func TestSampleUniformMarginals(t *testing.T) {
	// Each element should appear in a k-of-n sample with probability k/n.
	r := New(17)
	const n, k, trials = 10, 3, 60000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		for _, v := range r.Sample(n, k) {
			counts[v]++
		}
	}
	expect := float64(trials) * k / n
	for v, got := range counts {
		if math.Abs(float64(got)-expect) > 6*math.Sqrt(expect) {
			t.Fatalf("element %d sampled %d times, expected ~%v", v, got, expect)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(18)
	const n = 300000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.Normal()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestNormalMS(t *testing.T) {
	r := New(19)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.NormalMS(3, 0.5)
	}
	if mean := sum / n; math.Abs(mean-3) > 0.01 {
		t.Fatalf("NormalMS mean %v too far from 3", mean)
	}
}

func TestExponentialMoments(t *testing.T) {
	r := New(20)
	const n = 300000
	const rate = 2.5
	var sum float64
	for i := 0; i < n; i++ {
		x := r.Exponential(rate)
		if x < 0 {
			t.Fatalf("exponential produced negative value %v", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("exponential mean %v too far from %v", mean, 1/rate)
	}
}

func TestExponentialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exponential(0) did not panic")
		}
	}()
	New(1).Exponential(0)
}

func TestShiftedExponential(t *testing.T) {
	r := New(21)
	const mu, a, load = 2.0, 5.0, 4.0
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		x := r.ShiftedExponential(mu, a, load)
		if x < a*load {
			t.Fatalf("shifted exponential below its shift: %v < %v", x, a*load)
		}
		sum += x
	}
	// E[T] = a*load + load/mu.
	want := a*load + load/mu
	if mean := sum / n; math.Abs(mean-want) > 0.05 {
		t.Fatalf("shifted exponential mean %v, want ~%v", mean, want)
	}
}

func TestShiftedExponentialZeroLoad(t *testing.T) {
	if v := New(1).ShiftedExponential(1, 1, 0); v != 0 {
		t.Fatalf("zero load should cost zero time, got %v", v)
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := New(22)
	const p, n = 0.3, 200000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-p) > 0.005 {
		t.Fatalf("Bernoulli frequency %v too far from %v", got, p)
	}
}
