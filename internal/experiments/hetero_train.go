package experiments

import (
	"context"
	"fmt"
	"math"

	"bcc/internal/cluster"
	"bcc/internal/coding"
	"bcc/internal/core"
	"bcc/internal/hetero"
	"bcc/internal/rngutil"
)

// HeteroTrain closes the loop on §IV: it trains actual logistic regression
// END TO END on the paper's Fig. 5 heterogeneous cluster, comparing the
// load-balancing placement (disjoint blocks sized by mu, master waits for
// everyone) against the generalized BCC placement (P2-allocated random
// samples, coverage decoding). Both decode the exact same gradient, so the
// learned models agree — only the wall clock differs.
func HeteroTrain(ctx context.Context, opt Options) (*Table, error) {
	c := hetero.PaperFig5Cluster()
	m := 500
	iters := opt.iterations() / 2
	if iters < 5 {
		iters = 5
	}
	dim := 100
	if opt.Quick {
		// Keep the 95:5 slow:fast heterogeneity at 1/5 scale: 19 slow
		// (mu=1) plus one fast (mu=20) worker. On a homogeneous cluster LB
		// is near-optimal and the comparison would be meaningless.
		small := make(hetero.Cluster, 20)
		copy(small, c[:19])
		small[19] = c[99]
		c = small
		m = 60
		dim = 20
	}
	n := len(c)
	rng := rngutil.New(opt.seed() ^ 0x4e7)

	// Latency: the paper's shift-exponential worker model, with the whole
	// T_i charged as compute over the worker's data points (§IV folds
	// processing + delivery into one shifted-exponential variable).
	params := make([]cluster.ShiftExpParams, n)
	for i, w := range c {
		params[i] = cluster.ShiftExpParams{ComputeShift: w.Shift, ComputeMu: w.Mu}
	}
	lat, err := cluster.NewShiftExp(n, params, rng.Split())
	if err != nil {
		return nil, err
	}

	run := func(scheme coding.Scheme, maxLoad int) (*cluster.Result, error) {
		job, err := core.NewJob(core.Spec{
			DataPoints: m, // one data point per example unit: §IV has no batching
			Dim:        dim,
			Examples:   m,
			Workers:    n,
			Load:       maxLoad,
			Scheme:     "uncoded", // placeholder; replaced below
			Iterations: iters,
			Seed:       opt.seed() ^ 0x77,
			Latency:    lat,
			LossEvery:  iters - 1,
		})
		if err != nil {
			return nil, err
		}
		plan, err := scheme.Plan(m, n, maxLoad, rngutil.New(opt.seed()^0x88))
		if err != nil {
			return nil, err
		}
		job.Plan = plan
		return job.RunContext(ctx)
	}

	// LB: disjoint placement proportional to mu.
	lbLoads := c.LoadBalancedLoads(m)
	maxLB := 0
	for _, l := range lbLoads {
		if l > maxLB {
			maxLB = l
		}
	}
	lbRes, err := run(coding.Partitioned{Loads: lbLoads}, maxLB)
	if err != nil {
		return nil, fmt.Errorf("LB run: %w", err)
	}

	// Generalized BCC: P2-allocated loads, coverage decoding.
	s := int(math.Floor(float64(m) * math.Log(float64(m))))
	alloc, err := c.Allocate(s)
	if err != nil {
		return nil, err
	}
	maxG := 0
	for _, l := range alloc.Loads {
		if l > maxG {
			maxG = l
		}
	}
	gRes, err := run(coding.GeneralizedBCC{Loads: alloc.Loads}, maxG)
	if err != nil {
		return nil, fmt.Errorf("generalized BCC run: %w", err)
	}

	lastLoss := func(r *cluster.Result) float64 {
		out := math.NaN()
		for _, it := range r.Iters {
			if !math.IsNaN(it.Loss) {
				out = it.Loss
			}
		}
		return out
	}
	t := &Table{
		ID:      "heterotrain",
		Title:   fmt.Sprintf("end-to-end training on the Fig. 5 heterogeneous cluster (m=%d, n=%d, %d iterations)", m, n, iters),
		Columns: []string{"strategy", "total wall (s)", "avg K", "final loss", "speedup"},
	}
	t.AddRow("LB placement (partitioned)", lbRes.TotalWall, lbRes.AvgWorkersHeard, lastLoss(lbRes), "-")
	t.AddRow("generalized BCC", gRes.TotalWall, gRes.AvgWorkersHeard, lastLoss(gRes),
		fmt.Sprintf("%.1f%%", 100*(1-gRes.TotalWall/lbRes.TotalWall)))
	t.Notes = append(t.Notes,
		"both strategies decode the exact full gradient every iteration, so final losses agree; only wall time differs",
		fmt.Sprintf("generalized BCC loads from the P2 allocator at s = floor(m log m) = %d (total %d)", s, alloc.TotalLoad()),
	)
	return t, nil
}
