package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
)

// Runner is one reproducible experiment. The context bounds the experiment's
// training runs: cancellation aborts the current run and surfaces ctx's
// error.
type Runner func(context.Context, Options) (*Table, error)

// registry maps experiment ids to runners, in the order of DESIGN.md §4.
var registry = map[string]Runner{
	"fig2":        Fig2,
	"fig4":        Fig4,
	"table1":      Table1,
	"table2":      Table2,
	"fig5":        Fig5,
	"theorem1":    Theorem1,
	"theorem2":    Theorem2,
	"commload":    CommLoad,
	"fractional":  Fractional,
	"tailbound":   TailBound,
	"multibatch":  MultiBatch,
	"approx":      Approx,
	"skew":        Skew,
	"heterotrain": HeteroTrain,
	"convergence": Convergence,
	"scaling":     Scaling,
}

// order fixes the presentation order for "all".
var order = []string{
	"fig2", "fig4", "table1", "table2", "fig5",
	"theorem1", "theorem2", "commload", "fractional", "tailbound",
	"multibatch", "approx", "skew", "heterotrain", "convergence", "scaling",
}

// Names lists all experiment ids in presentation order.
func Names() []string {
	out := append([]string(nil), order...)
	// Safety: include any registered id missing from the order slice.
	for id := range registry {
		found := false
		for _, o := range out {
			if o == id {
				found = true
				break
			}
		}
		if !found {
			out = append(out, id)
		}
	}
	return out
}

// Run executes one experiment by id and renders it to w. ctx bounds the
// experiment's training runs.
func Run(ctx context.Context, id string, opt Options, w io.Writer) (*Table, error) {
	r, ok := registry[id]
	if !ok {
		known := Names()
		sort.Strings(known)
		return nil, fmt.Errorf("experiments: unknown id %q (known: %v)", id, known)
	}
	t, err := r(ctx, opt)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	if w != nil {
		t.Render(w)
	}
	return t, nil
}

// RunAll executes every experiment in order, rendering each to w.
func RunAll(ctx context.Context, opt Options, w io.Writer) ([]*Table, error) {
	var tables []*Table
	for _, id := range order {
		if err := ctx.Err(); err != nil {
			return tables, err
		}
		t, err := Run(ctx, id, opt, w)
		if err != nil {
			return tables, err
		}
		tables = append(tables, t)
	}
	return tables, nil
}
