// Package experiments regenerates every table and figure of the paper's
// evaluation (and a set of extra validation studies), printing aligned text
// tables and optional CSV. See DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for recorded paper-vs-measured results.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: a titled grid plus free-form notes
// (assumptions, paper reference values, caveats).
type Table struct {
	ID      string // experiment id, e.g. "fig2"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row; values are Sprint'ed with %v unless they
// are already strings.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// Render writes an aligned text table.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// CSV writes the table as comma-separated values (no notes).
func (t *Table) CSV(w io.Writer) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cols := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = esc(c)
	}
	fmt.Fprintln(w, strings.Join(cols, ","))
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = esc(c)
		}
		fmt.Fprintln(w, strings.Join(cells, ","))
	}
}

// Options tunes every experiment. The zero value gives the full default
// configuration; Quick shrinks everything for tests and smoke runs.
type Options struct {
	// Seed drives all randomness (default 1).
	Seed uint64
	// Trials scales the Monte-Carlo sample counts (default per experiment).
	Trials int
	// Iterations for training experiments (default 100, as in the paper).
	Iterations int
	// FullSize uses the paper's data scale for fig4 (p=8000 features, 100
	// points per example) instead of the laptop default (p=800, 10 points).
	FullSize bool
	// Quick shrinks sizes for CI and benchmarks.
	Quick bool
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

func (o Options) trials(def int) int {
	if o.Trials > 0 {
		return o.Trials
	}
	if o.Quick {
		return def / 10
	}
	return def
}

func (o Options) iterations() int {
	if o.Iterations > 0 {
		return o.Iterations
	}
	if o.Quick {
		return 10
	}
	return 100
}
