package experiments

import (
	"context"
	"fmt"
	"math"

	"bcc/internal/hetero"
	"bcc/internal/rngutil"
)

// Fig5 regenerates Figure 5: average computation time of the load-balancing
// (LB) assignment versus the generalized BCC scheme on the paper's
// heterogeneous cluster (m=500 examples, n=100 workers, a_i=20, mu_i=1 for
// 95 workers and 20 for the rest).
func Fig5(ctx context.Context, opt Options) (*Table, error) {
	c := hetero.PaperFig5Cluster()
	m := 500
	trials := opt.trials(2000)
	if opt.Quick {
		m = 100
	}
	rng := rngutil.New(opt.seed())
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	lb := c.LBResult(m, trials, rng)

	s := int(math.Floor(float64(m) * math.Log(float64(m)))) // paper: s = floor(m log m)
	alloc, err := c.Allocate(s)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	bccMean, failures := c.CoverageResult(m, alloc.Loads, trials, rng)

	// Ablation: the same allocation plus decentralized unit-sample retry
	// waves — workers keep streaming single random examples after their
	// batch, so the rare uncovered trials close their gap in a few cheap
	// waves and the protocol terminates almost surely.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	retryMean := c.CoverageResultRetry(m, alloc.Loads, trials, 50, rng)

	t := &Table{
		ID:      "fig5",
		Title:   fmt.Sprintf("heterogeneous cluster: average completion time (m=%d, n=%d, %d trials)", m, len(c), trials),
		Columns: []string{"strategy", "avg completion time", "reduction vs LB"},
	}
	t.AddRow("load balancing (LB)", lb, "-")
	t.AddRow("generalized BCC (s = m log m, paper)", bccMean, fmt.Sprintf("%.2f%%", 100*(1-bccMean/lb)))
	t.AddRow("generalized BCC + unit retry waves (a.s. terminating)", retryMean, fmt.Sprintf("%.2f%%", 100*(1-retryMean/lb)))
	t.Notes = append(t.Notes,
		"paper Fig. 5: generalized BCC reduces average computation time by 29.28% vs LB",
		fmt.Sprintf("allocation targets s = floor(m log m) = %d partial gradients; total load %d over %d workers (tau=%.1f)",
			s, alloc.TotalLoad(), len(c), alloc.Tau),
		fmt.Sprintf("coverage failed in %d/%d trials at this s (expected ~1 uncovered example); the paper row is conditional on coverage, the retry row is unconditional",
			failures, trials),
	)
	return t, nil
}

// Theorem2 evaluates both sides of Theorem 2 on the Fig. 5 cluster: the
// lower bound min E[T̂(m)] and the upper bound min E[T̂(floor(c m log m))]+1.
func Theorem2(ctx context.Context, opt Options) (*Table, error) {
	c := hetero.PaperFig5Cluster()
	m := 500
	trials := opt.trials(1000)
	if opt.Quick {
		m = 100
	}
	rng := rngutil.New(opt.seed())
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	lower, upper, err := c.TheoremTwoBounds(m, trials, rng)
	if err != nil {
		return nil, err
	}
	cc := c.TheoremTwoC(m)
	t := &Table{
		ID:      "theorem2",
		Title:   fmt.Sprintf("Theorem 2 bounds on min average coverage time (m=%d, n=%d)", m, len(c)),
		Columns: []string{"quantity", "value"},
	}
	t.AddRow("c = 2 + log(a + H_n/mu)/log m", cc)
	t.AddRow("lower bound  min E[T-hat(m)]", lower)
	t.AddRow("upper bound  min E[T-hat(floor(c m log m))] + 1", upper)
	t.AddRow("bound ratio (upper/lower)", upper/lower)
	t.Notes = append(t.Notes,
		"Theorem 2 brackets the minimum average coverage time; both sides are evaluated with the HCMM-style allocator of internal/hetero",
	)
	return t, nil
}
