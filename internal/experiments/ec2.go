package experiments

import (
	"bcc/internal/cluster"
	"bcc/internal/rngutil"
)

// EC2-like calibration for the Fig. 4 / Table I-II reproduction.
//
// The paper measured t2.micro instances exchanging p = 8000-float gradients
// (64 KB messages) over MPI, with communication dominating computation. Our
// substitute charges, per example unit (one "data batch" of the paper):
//
//   - compute: shift 0.8 ms/unit plus an exponential tail averaging 0.4
//     ms/unit at load 10 units — reproducing the paper's per-iteration
//     computation times (~2-20 ms depending on how many workers the master
//     waits for);
//   - upload: shift 5 ms plus an exponential tail averaging ~80 ms per
//     message — the straggler spread of a congested cloud network;
//   - master ingress: 5.5 ms of master NIC occupancy per message unit
//     (64 KB / ~12 MB/s), which serializes message receipt and makes each
//     scheme's communication time roughly proportional to its recovery
//     threshold, exactly the proportionality the paper reports.
//
// Constants are expressed per unit so the timing shape is independent of the
// data down-scaling (pointsPerUnit) used to keep the default runs laptop
// sized.
const (
	ec2ComputeShiftPerUnit = 8e-4   // seconds of deterministic compute per unit
	ec2ComputeTailPerUnit  = 4e-4   // mean seconds of compute tail per unit
	ec2CommShiftPerUnit    = 5e-3   // seconds of deterministic upload per unit
	ec2CommTailPerUnit     = 8e-2   // mean seconds of upload tail per unit
	ec2IngressPerUnit      = 5.5e-3 // master drain seconds per message unit
)

// EC2Latency builds the calibrated shift-exponential latency model for n
// workers whose example units each hold pointsPerUnit raw data points.
func EC2Latency(n, pointsPerUnit int, rng *rngutil.RNG) (cluster.Latency, error) {
	ppu := float64(pointsPerUnit)
	params := cluster.ShiftExpParams{
		// Latency.Compute is charged per raw point; normalize by ppu.
		ComputeShift: ec2ComputeShiftPerUnit / ppu,
		// Tail mean for a load of L points is L/mu; choosing mu = ppu /
		// tailPerUnit makes the mean (L/ppu)*tailPerUnit, i.e. tailPerUnit
		// seconds per unit.
		ComputeMu: ppu / ec2ComputeTailPerUnit,
		CommShift: ec2CommShiftPerUnit,
		CommMu:    1 / ec2CommTailPerUnit,
	}
	return cluster.NewShiftExp(n, []cluster.ShiftExpParams{params}, rng)
}
