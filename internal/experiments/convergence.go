package experiments

import (
	"context"
	"fmt"
	"math"

	"bcc/internal/cluster"
	"bcc/internal/core"
	"bcc/internal/rngutil"
)

// Convergence measures what the paper's introduction actually promises:
// loss as a function of WALL-CLOCK time, not iteration count. All exact
// schemes take identical optimization trajectories per iteration, so the
// scheme with the smallest per-iteration time reaches any loss target
// first; this experiment reports the simulated time for each scheme to
// drive the training loss below a target. The time-to-target is tracked by
// an Observer while the run executes — the same hook a production caller
// would use for live progress — instead of a post-hoc pass over the stats.
func Convergence(ctx context.Context, opt Options) (*Table, error) {
	m, n, r := 50, 50, 10
	dim, ppu := 400, 10
	iters := opt.iterations()
	target := 0.10 // training loss target (from ln 2 ~ 0.69 at w = 0)
	if opt.Quick {
		m, n, r = 20, 20, 5
		dim, ppu = 60, 4
		target = 0.35 // reachable within the shortened run
	}
	t := &Table{
		ID:      "convergence",
		Title:   fmt.Sprintf("wall-clock time to reach training loss <= %.2f (m=%d, n=%d)", target, m, n),
		Columns: []string{"scheme", "r", "iters to target", "wall time to target (s)", "final loss"},
	}
	type cell struct {
		scheme core.Scheme
		r      int
	}
	cells := []cell{{"uncoded", 1}, {"cyclicrep", r}, {"bcc", r}}
	for _, c := range cells {
		rng := rngutil.New(opt.seed() ^ 0xc0f)
		lat, err := EC2Latency(n, ppu, rng.Split())
		if err != nil {
			return nil, err
		}
		elapsed := 0.0
		hitIter, hitTime := -1, math.NaN()
		finalLoss := math.NaN()
		job, err := core.NewJob(core.Spec{
			DataPoints:     m * ppu,
			Dim:            dim,
			Examples:       m,
			Workers:        n,
			Load:           c.r,
			Scheme:         c.scheme,
			Iterations:     iters,
			Seed:           rng.Uint64(),
			Latency:        lat,
			IngressPerUnit: ec2IngressPerUnit,
			LossEvery:      1,
			Observer: cluster.ObserverFuncs{Iteration: func(st cluster.IterStats) {
				elapsed += st.Wall
				if !math.IsNaN(st.Loss) {
					finalLoss = st.Loss
					if hitIter < 0 && st.Loss <= target {
						hitIter, hitTime = st.Iter, elapsed
					}
				}
			}},
		})
		if err != nil {
			return nil, err
		}
		if _, err := job.RunContext(ctx); err != nil {
			return nil, err
		}
		itersCell := "-"
		if hitIter >= 0 {
			itersCell = fmt.Sprintf("%d", hitIter)
		}
		t.AddRow(c.scheme, c.r, itersCell, hitTime, finalLoss)
	}
	t.Notes = append(t.Notes,
		"exact schemes share the per-iteration trajectory, so iterations-to-target coincide; wall time is where BCC wins",
		"this is the paper's introduction claim made concrete: straggler mitigation buys wall-clock convergence",
	)
	return t, nil
}

// Scaling tests the paper's scalability bullet: as the cluster grows with
// m and r fixed per scenario-one proportions, BCC's recovery threshold
// stays pinned near ceil(m/r)*H while the uncoded scheme's grows linearly
// with n — and total time follows.
func Scaling(ctx context.Context, opt Options) (*Table, error) {
	r := 10
	dim, ppu := 200, 10
	iters := opt.iterations() / 2
	if iters < 5 {
		iters = 5
	}
	ns := []int{50, 100, 200, 400}
	if opt.Quick {
		r = 5
		dim, ppu = 40, 4
		ns = []int{20, 40}
	}
	t := &Table{
		ID:      "scaling",
		Title:   fmt.Sprintf("cluster-size scaling at fixed load r=%d (m=n, %d iterations)", r, iters),
		Columns: []string{"n", "BCC avg K", "BCC total (s)", "uncoded avg K", "uncoded total (s)", "BCC speedup"},
	}
	for _, n := range ns {
		m := n
		runOne := func(scheme core.Scheme, load int) (float64, float64, error) {
			rng := rngutil.New(opt.seed() ^ uint64(n*31+load))
			lat, err := EC2Latency(n, ppu, rng.Split())
			if err != nil {
				return 0, 0, err
			}
			job, err := core.NewJob(core.Spec{
				DataPoints:     m * ppu,
				Dim:            dim,
				Examples:       m,
				Workers:        n,
				Load:           load,
				Scheme:         scheme,
				Iterations:     iters,
				Seed:           rng.Uint64(),
				Latency:        lat,
				IngressPerUnit: ec2IngressPerUnit,
			})
			if err != nil {
				return 0, 0, err
			}
			res, err := job.RunContext(ctx)
			if err != nil {
				return 0, 0, err
			}
			return res.AvgWorkersHeard, res.TotalWall, nil
		}
		bccK, bccT, err := runOne("bcc", r)
		if err != nil {
			return nil, err
		}
		uncK, uncT, err := runOne("uncoded", 1)
		if err != nil {
			return nil, err
		}
		t.AddRow(n, bccK, bccT, uncK, uncT, fmt.Sprintf("%.1f%%", 100*(1-bccT/uncT)))
	}
	t.Notes = append(t.Notes,
		"with m = n growing at fixed r, BCC's threshold is ceil(n/r)*H ~ (n/r) log(n/r) — asymptotically far below uncoded's n — so the speedup persists at every scale",
		"paper's scalability bullet: decentralized placement lets BCC scale with no data reshuffling",
	)
	return t, nil
}
