package experiments

import (
	"context"
	"fmt"
	"math"

	"bcc/internal/coding"
	"bcc/internal/coupon"
	"bcc/internal/rngutil"
)

// Fig2 regenerates Figure 2: the tradeoff between computational load r and
// recovery threshold K for m = 100 examples over n = 100 workers, comparing
// the lower bound m/r, the proposed BCC scheme, the simple randomized
// scheme, and the CR scheme. Analytic curves are cross-checked with a
// Monte-Carlo column for BCC measured on the real decoder.
func Fig2(ctx context.Context, opt Options) (*Table, error) {
	m, n := 100, 100
	if opt.Quick {
		m, n = 40, 40
	}
	rng := rngutil.New(opt.seed())
	trials := opt.trials(400)
	t := &Table{
		ID:    "fig2",
		Title: fmt.Sprintf("recovery threshold K vs computational load r (m=%d, n=%d)", m, n),
		Columns: []string{
			"r", "lower bound m/r", "BCC (analytic)", "BCC (measured)",
			"randomized", "CR (m-r+1)",
		},
	}
	var rs []int
	for _, r := range []int{2, 4, 5, 10, 20, 25, 40, 50} {
		if r <= m {
			rs = append(rs, r)
		}
	}
	for _, r := range rs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		lower := coupon.LowerBound(m, r)
		bcc := coupon.BCCRecoveryThreshold(m, r)
		rand := coupon.RandomizedRecoveryThreshold(m, r)
		cr := float64(m - r + 1)
		// Random placements need n >> N log N to cover every batch (the
		// paper's "sufficiently large n"); measure on a cluster sized for
		// the batch count while the analytic columns keep the paper's n.
		nBatches := (m + r - 1) / r
		nMeas := 10 * nBatches
		if nMeas < n {
			nMeas = n
		}
		measured, err := measureBCCThreshold(m, nMeas, r, trials, rng)
		if err != nil {
			return nil, err
		}
		t.AddRow(r, lower, bcc, measured, rand, cr)
	}
	t.Notes = append(t.Notes,
		"paper Fig. 2: BCC sits a log-factor above the lower bound and far below CR for small r",
		fmt.Sprintf("BCC measured column: Monte-Carlo over %d placements/arrival orders with the real decoder, on max(n, 10*ceil(m/r)) workers for placement feasibility", trials),
		"analytic curves are the paper's formulas; with exactly n workers, values above n are unattainable",
	)
	return t, nil
}

// measureBCCThreshold Monte-Carlos the realized recovery threshold of the
// actual BCC plan/decoder machinery (scalar gradients — decoding logic only).
func measureBCCThreshold(m, n, r, trials int, rng *rngutil.RNG) (float64, error) {
	scheme, err := coding.Lookup("bcc")
	if err != nil {
		return 0, err
	}
	gs := scalarGradients(m)
	var sum float64
	for k := 0; k < trials; k++ {
		plan, err := scheme.Plan(m, n, r, rng)
		if err != nil {
			return 0, err
		}
		heard, err := decodeThreshold(plan, gs, rng.Perm(n))
		if err != nil {
			return 0, err
		}
		sum += float64(heard)
	}
	return sum / float64(trials), nil
}

// scalarGradients builds m one-dimensional unit gradients (value 1 each) so
// decoder exactness checks still apply: the decoded value must equal m.
func scalarGradients(m int) [][]float64 {
	gs := make([][]float64, m)
	for u := range gs {
		gs[u] = []float64{1}
	}
	return gs
}

// decodeThreshold feeds workers in the given arrival order and returns the
// number heard when the decoder completes, verifying the decoded sum.
func decodeThreshold(plan coding.Plan, gs [][]float64, order []int) (int, error) {
	dec := plan.NewDecoder()
	assign := plan.Assignments()
	m := len(gs)
	for i, w := range order {
		parts := make([][]float64, len(assign[w]))
		for k, u := range assign[w] {
			parts[k] = gs[u]
		}
		for _, msg := range coding.Encode(plan, w, parts) {
			dec.Offer(msg)
		}
		if dec.Decodable() {
			out, err := coding.Decode(dec, 1)
			if err != nil {
				return 0, err
			}
			if math.Abs(out[0]-float64(m)) > 1e-6*float64(m) {
				return 0, fmt.Errorf("experiments: decoded %v, want %d", out[0], m)
			}
			return i + 1, nil
		}
	}
	return 0, fmt.Errorf("experiments: order exhausted before decoding")
}
