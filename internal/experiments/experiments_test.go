package experiments

import (
	"bytes"
	"context"
	"math"
	"strconv"
	"strings"
	"testing"
)

func quickOpt() Options { return Options{Quick: true, Seed: 7} }

func mustRun(t *testing.T, id string) *Table {
	t.Helper()
	tab, err := Run(context.Background(), id, quickOpt(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != id {
		t.Fatalf("table id %q, want %q", tab.ID, id)
	}
	if len(tab.Rows) == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	return tab
}

func cellFloat(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(tab.Rows[row][col], "%"), 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) %q not numeric: %v", row, col, tab.Rows[row][col], err)
	}
	return v
}

func TestAllExperimentsRunQuick(t *testing.T) {
	for _, id := range Names() {
		id := id
		t.Run(id, func(t *testing.T) {
			mustRun(t, id)
		})
	}
}

func TestFig2Ordering(t *testing.T) {
	tab := mustRun(t, "fig2")
	// For every r: lower bound <= BCC <= randomized (cols 1,2,4); BCC
	// measured within 25% of analytic (cols 2,3).
	for i := range tab.Rows {
		lb := cellFloat(t, tab, i, 1)
		bcc := cellFloat(t, tab, i, 2)
		meas := cellFloat(t, tab, i, 3)
		rnd := cellFloat(t, tab, i, 4)
		if lb > bcc+1e-9 || bcc > rnd+1e-9 {
			t.Fatalf("row %d: ordering violated lb=%v bcc=%v rnd=%v", i, lb, bcc, rnd)
		}
		if math.Abs(meas-bcc)/bcc > 0.25 {
			t.Fatalf("row %d: measured %v far from analytic %v", i, meas, bcc)
		}
	}
}

func TestFig4Shape(t *testing.T) {
	tab := mustRun(t, "fig4")
	// Quick mode: one scenario, rows uncoded/cyclicrep/bcc. Totals must
	// order bcc < cyclicrep < uncoded.
	totals := map[string]float64{}
	for i, row := range tab.Rows {
		totals[row[1]] = cellFloat(t, tab, i, 4)
	}
	if !(totals["bcc"] < totals["cyclicrep"] && totals["cyclicrep"] < totals["uncoded"]) {
		t.Fatalf("totals out of order: %v", totals)
	}
}

func TestTable1Breakdown(t *testing.T) {
	tab := mustRun(t, "table1")
	for i, row := range tab.Rows {
		comm := cellFloat(t, tab, i, 2)
		comp := cellFloat(t, tab, i, 3)
		total := cellFloat(t, tab, i, 4)
		if math.Abs(comm+comp-total) > 0.01*total {
			t.Fatalf("%s: comm+comp != total (%v + %v vs %v)", row[0], comm, comp, total)
		}
		if comm <= comp {
			t.Fatalf("%s: communication should dominate computation (%v vs %v)", row[0], comm, comp)
		}
	}
}

func TestFig5Reduction(t *testing.T) {
	tab := mustRun(t, "fig5")
	lb := cellFloat(t, tab, 0, 1)
	bcc := cellFloat(t, tab, 1, 1)
	if bcc >= lb {
		t.Fatalf("generalized BCC %v not faster than LB %v", bcc, lb)
	}
}

func TestTheorem1RelativeError(t *testing.T) {
	tab := mustRun(t, "theorem1")
	for i := range tab.Rows {
		analytic := cellFloat(t, tab, i, 2)
		measured := cellFloat(t, tab, i, 3)
		if math.Abs(measured-analytic)/analytic > 0.25 {
			t.Fatalf("row %d: measured %v vs analytic %v", i, measured, analytic)
		}
	}
}

func TestTheorem2BoundsOrdered(t *testing.T) {
	tab := mustRun(t, "theorem2")
	lower := cellFloat(t, tab, 1, 1)
	upper := cellFloat(t, tab, 2, 1)
	if lower >= upper {
		t.Fatalf("lower %v >= upper %v", lower, upper)
	}
}

func TestCommLoadBestOfBoth(t *testing.T) {
	tab := mustRun(t, "commload")
	for i := range tab.Rows {
		bccM := cellFloat(t, tab, i, 2)
		rndM := cellFloat(t, tab, i, 4)
		if bccM > rndM+1e-9 {
			t.Fatalf("row %d: BCC load %v exceeds randomized %v", i, bccM, rndM)
		}
	}
}

func TestTailBoundHolds(t *testing.T) {
	tab := mustRun(t, "tailbound")
	for i := range tab.Rows {
		emp := cellFloat(t, tab, i, 2)
		bound := cellFloat(t, tab, i, 3)
		if emp > bound+0.02 {
			t.Fatalf("row %d: empirical %v above bound %v", i, emp, bound)
		}
	}
}

func TestFractionalBetweenCRAndBCC(t *testing.T) {
	tab := mustRun(t, "fractional")
	for i := range tab.Rows {
		cr := cellFloat(t, tab, i, 1)
		fr := cellFloat(t, tab, i, 3)
		if fr > cr+1e-6 {
			t.Fatalf("row %d: FR measured %v worse than CR worst case %v", i, fr, cr)
		}
	}
}

func TestMultiBatchAblation(t *testing.T) {
	tab := mustRun(t, "multibatch")
	// Communication grows with K; the threshold must not improve.
	prevComm := 0.0
	baseK := cellFloat(t, tab, 0, 4)
	for i := range tab.Rows {
		comm := cellFloat(t, tab, i, 5)
		if comm <= prevComm {
			t.Fatalf("row %d: comm %v did not grow", i, comm)
		}
		prevComm = comm
		if k := cellFloat(t, tab, i, 4); k < 0.9*baseK {
			t.Fatalf("row %d: threshold %v improved over K=1's %v", i, k, baseK)
		}
	}
}

func TestApproxTradeoff(t *testing.T) {
	tab := mustRun(t, "approx")
	// Threshold must increase with phi; every loss must be below ln 2
	// (training made progress even with partial gradients).
	prev := 0.0
	for i := range tab.Rows {
		k := cellFloat(t, tab, i, 2)
		if k < prev {
			t.Fatalf("row %d: measured K %v decreased", i, k)
		}
		prev = k
		if loss := cellFloat(t, tab, i, 3); loss >= math.Ln2 {
			t.Fatalf("row %d: final loss %v shows no training progress", i, loss)
		}
	}
}

func TestSkewInflation(t *testing.T) {
	tab := mustRun(t, "skew")
	// The analytic column is exact and must strictly inflate with s; the
	// measured column tracks it within MC noise. Endpoints must show clear
	// inflation.
	prevAnalytic := 0.0
	for i := range tab.Rows {
		analytic := cellFloat(t, tab, i, 1)
		if analytic <= prevAnalytic {
			t.Fatalf("row %d: analytic threshold %v not inflating", i, analytic)
		}
		prevAnalytic = analytic
		measured := cellFloat(t, tab, i, 2)
		if math.Abs(measured-analytic)/analytic > 0.3 {
			t.Fatalf("row %d: measured %v far from weighted-collector analytic %v", i, measured, analytic)
		}
	}
	first := cellFloat(t, tab, 0, 2)
	last := cellFloat(t, tab, len(tab.Rows)-1, 2)
	if last <= first {
		t.Fatalf("most-skewed threshold %v not above uniform %v", last, first)
	}
}

func TestHeteroTrainSpeedup(t *testing.T) {
	tab := mustRun(t, "heterotrain")
	lbWall := cellFloat(t, tab, 0, 1)
	gWall := cellFloat(t, tab, 1, 1)
	if gWall >= lbWall {
		t.Fatalf("generalized BCC wall %v not below LB %v", gWall, lbWall)
	}
	// Exact gradients on both sides: final losses must agree closely.
	lbLoss := cellFloat(t, tab, 0, 3)
	gLoss := cellFloat(t, tab, 1, 3)
	if math.Abs(lbLoss-gLoss) > 1e-6+0.01*math.Abs(lbLoss) {
		t.Fatalf("losses diverged: LB %v vs gBCC %v", lbLoss, gLoss)
	}
}

func TestConvergenceOrdering(t *testing.T) {
	tab := mustRun(t, "convergence")
	// Rows: uncoded, cyclicrep, bcc; time-to-target must strictly improve.
	unc := cellFloat(t, tab, 0, 3)
	cr := cellFloat(t, tab, 1, 3)
	bccT := cellFloat(t, tab, 2, 3)
	if !(bccT < cr && cr < unc) {
		t.Fatalf("time-to-target out of order: uncoded %v, cr %v, bcc %v", unc, cr, bccT)
	}
	// Same iterations-to-target across exact schemes.
	if tab.Rows[0][2] != tab.Rows[2][2] {
		t.Fatalf("iterations-to-target differ: %v vs %v", tab.Rows[0][2], tab.Rows[2][2])
	}
}

func TestScalingSpeedupPersists(t *testing.T) {
	tab := mustRun(t, "scaling")
	for i := range tab.Rows {
		bccT := cellFloat(t, tab, i, 2)
		uncT := cellFloat(t, tab, i, 4)
		if bccT >= uncT {
			t.Fatalf("row %d: BCC %v not faster than uncoded %v", i, bccT, uncT)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run(context.Background(), "nope", quickOpt(), nil); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRenderAndCSV(t *testing.T) {
	tab := mustRun(t, "tailbound")
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "tailbound") || !strings.Contains(out, "note:") {
		t.Fatalf("render output missing pieces:\n%s", out)
	}
	buf.Reset()
	tab.CSV(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(tab.Rows)+1 {
		t.Fatalf("CSV has %d lines for %d rows", len(lines), len(tab.Rows))
	}
	if !strings.HasPrefix(lines[0], "eps,") {
		t.Fatalf("CSV header %q", lines[0])
	}
}

func TestCSVEscaping(t *testing.T) {
	tab := &Table{ID: "x", Columns: []string{"a"}, Rows: [][]string{{`say "hi", ok`}}}
	var buf bytes.Buffer
	tab.CSV(&buf)
	if !strings.Contains(buf.String(), `"say ""hi"", ok"`) {
		t.Fatalf("CSV escaping wrong: %q", buf.String())
	}
}

func TestNamesComplete(t *testing.T) {
	names := Names()
	if len(names) != len(registry) {
		t.Fatalf("Names() returned %d of %d experiments", len(names), len(registry))
	}
}

func TestRunAllQuick(t *testing.T) {
	var buf bytes.Buffer
	tables, err := RunAll(context.Background(), quickOpt(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(registry) {
		t.Fatalf("RunAll produced %d tables", len(tables))
	}
	if buf.Len() == 0 {
		t.Fatal("RunAll rendered nothing")
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		1.5:    "1.5",
		2.0:    "2",
		0.125:  "0.125",
		10.100: "10.1",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Fatalf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
