package experiments

import (
	"context"
	"fmt"
	"math"

	"bcc/internal/coding"
	"bcc/internal/core"
	"bcc/internal/coupon"
	"bcc/internal/rngutil"
)

// MultiBatch quantifies the design-choice ablation behind BCC's
// one-batch-per-worker rule: at a fixed computational load r, splitting each
// worker's selection into K finer batches leaves the recovery threshold
// essentially unchanged (the group-drawing collector gains log K but the
// batch count grows K-fold) while multiplying the communication load by K.
func MultiBatch(ctx context.Context, opt Options) (*Table, error) {
	m, n, r := 48, 480, 8
	if opt.Quick {
		m, n, r = 24, 240, 4
	}
	trials := opt.trials(300)
	rng := rngutil.New(opt.seed())
	t := &Table{
		ID:      "multibatch",
		Title:   fmt.Sprintf("multi-batch BCC ablation (m=%d, n=%d, r=%d)", m, n, r),
		Columns: []string{"K batches/worker", "batch size", "#batches", "E[K] analytic", "E[K] measured", "comm load (units)"},
	}
	gs := scalarGradients(m)
	for _, k := range []int{1, 2, 4} {
		if r%k != 0 {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var scheme coding.Scheme
		if k == 1 {
			scheme = coding.BCC{}
		} else {
			scheme = coding.BCCMulti{K: k}
		}
		batchSize := r / k
		nBatches := (m + batchSize - 1) / batchSize
		analytic := coupon.BatchExpectedDraws(nBatches, k)
		var sumHeard, sumUnits float64
		for i := 0; i < trials; i++ {
			plan, err := scheme.Plan(m, n, r, rng)
			if err != nil {
				return nil, err
			}
			dec := plan.NewDecoder()
			assign := plan.Assignments()
			for _, w := range rng.Perm(n) {
				parts := make([][]float64, len(assign[w]))
				for kk, u := range assign[w] {
					parts[kk] = gs[u]
				}
				for _, msg := range coding.Encode(plan, w, parts) {
					dec.Offer(msg)
				}
				if dec.Decodable() {
					break
				}
			}
			if !dec.Decodable() {
				return nil, fmt.Errorf("experiments: multibatch K=%d did not decode", k)
			}
			sumHeard += float64(dec.WorkersHeard())
			sumUnits += dec.UnitsReceived()
		}
		t.AddRow(k, batchSize, nBatches, analytic, sumHeard/float64(trials), sumUnits/float64(trials))
	}
	t.Notes = append(t.Notes,
		"K=1 is plain BCC; larger K leaves the worker threshold ~unchanged but multiplies communication by ~K",
		"this is the ablation behind the paper's one-batch design choice",
	)
	return t, nil
}

// Approx evaluates the approximate-coverage extension: stopping at a
// fraction phi of the batches slashes the recovery threshold while the
// rescaled partial sum remains a serviceable stochastic gradient — training
// loss degrades gracefully as phi shrinks.
func Approx(ctx context.Context, opt Options) (*Table, error) {
	m, n, r := 50, 100, 5 // 10 batches
	dim, ppu := 200, 8
	iters := opt.iterations()
	if opt.Quick {
		m, n, r = 20, 40, 4
		dim, ppu = 40, 4
	}
	t := &Table{
		ID:      "approx",
		Title:   fmt.Sprintf("approximate-coverage BCC: threshold vs training quality (m=%d, n=%d, r=%d, %d iterations)", m, n, r, iters),
		Columns: []string{"phi", "E[K] analytic", "avg K measured", "final loss"},
	}
	for _, phi := range []float64{0.6, 0.8, 0.9, 1.0} {
		rng := rngutil.New(opt.seed() ^ 0xa11) // same data/placement seed per phi
		lat, err := EC2Latency(n, ppu, rng.Split())
		if err != nil {
			return nil, err
		}
		spec := core.Spec{
			DataPoints: m * ppu,
			Dim:        dim,
			Examples:   m,
			Workers:    n,
			Load:       r,
			Scheme:     "bccapprox",
			Iterations: iters,
			Seed:       rng.Uint64(),
			Latency:    lat,
			LossEvery:  iters - 1,
		}
		job, err := core.NewJob(spec)
		if err != nil {
			return nil, err
		}
		// Rebuild the plan at the requested phi (the registry default is
		// 0.8); reuse the job's data and placement randomness.
		plan, err := coding.BCCApprox{Phi: phi}.Plan(m, n, r, rngutil.New(spec.Seed^0x9e37))
		if err != nil {
			return nil, err
		}
		job.Plan = plan
		res, err := job.RunContext(ctx)
		if err != nil {
			return nil, err
		}
		finalLoss := math.NaN()
		for _, it := range res.Iters {
			if !math.IsNaN(it.Loss) {
				finalLoss = it.Loss
			}
		}
		t.AddRow(phi, plan.ExpectedThreshold(), res.AvgWorkersHeard, finalLoss)
	}
	t.Notes = append(t.Notes,
		"phi = 1 is exact BCC; smaller phi stops at partial coverage and rescales the sum by #batches/#covered",
		"the collector's LAST coupons are the expensive ones, so phi < 1 cuts the threshold disproportionately",
	)
	return t, nil
}

// Skew studies BCC's robustness to non-uniform batch selection (workers
// preferring certain batches, e.g. by data locality): the recovery
// threshold inflates per the weighted coupon collector as the Zipf exponent
// grows.
func Skew(ctx context.Context, opt Options) (*Table, error) {
	m, n, r := 50, 500, 5 // 10 batches
	if opt.Quick {
		m, n, r = 20, 200, 4
	}
	trials := opt.trials(300)
	rng := rngutil.New(opt.seed())
	nBatches := (m + r - 1) / r
	t := &Table{
		ID:      "skew",
		Title:   fmt.Sprintf("BCC under skewed batch selection (m=%d, %d batches, n=%d)", m, nBatches, n),
		Columns: []string{"zipf s", "E[K] analytic (weighted collector)", "E[K] measured", "inflation vs uniform"},
	}
	uniform := coupon.ExpectedDraws(nBatches)
	gs := scalarGradients(m)
	for _, s := range []float64{0, 0.5, 1.0, 1.5} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		weights := coupon.ZipfWeights(nBatches, s)
		analytic := coupon.WeightedExpectedDraws(weights)
		scheme := coding.BCC{Weights: weights}
		var sum float64
		for i := 0; i < trials; i++ {
			plan, err := scheme.Plan(m, n, r, rng)
			if err != nil {
				return nil, err
			}
			heard, err := decodeThreshold(plan, gs, rng.Perm(n))
			if err != nil {
				return nil, err
			}
			sum += float64(heard)
		}
		measured := sum / float64(trials)
		t.AddRow(s, analytic, measured, fmt.Sprintf("%.2fx", measured/uniform))
	}
	t.Notes = append(t.Notes,
		"s = 0 is the paper's uniform selection; the threshold inflates roughly like 1/(N p_min) as rare batches starve",
		"practical reading: decentralized placement must keep batch selection near-uniform (e.g. hash-based), or pay the tail",
	)
	return t, nil
}
