package experiments

import (
	"context"
	"fmt"

	"bcc/internal/core"
	"bcc/internal/rngutil"
)

// scenarioResult is one (scenario, scheme) cell of Fig. 4 / Tables I-II.
type scenarioResult struct {
	Scenario  int
	Scheme    core.Scheme
	Load      int
	Threshold float64 // measured average workers heard
	CommSec   float64
	CompSec   float64
	TotalSec  float64
}

// runScenario trains logistic regression for `iters` Nesterov iterations on
// the simulated EC2-like cluster and returns the timing breakdown, following
// the paper's measurement protocol (computation = max among counted workers,
// communication = total - computation).
func runScenario(ctx context.Context, scenario, m, n, r int, scheme core.Scheme, iters int, opt Options) (*scenarioResult, error) {
	pointsPerUnit := 10
	dim := 800
	if opt.FullSize {
		pointsPerUnit = 100
		dim = 8000
	}
	if opt.Quick {
		pointsPerUnit = 4
		dim = 60
	}
	rng := rngutil.New(opt.seed() ^ uint64(scenario*1000003))
	lat, err := EC2Latency(n, pointsPerUnit, rng.Split())
	if err != nil {
		return nil, err
	}
	job, err := core.NewJob(core.Spec{
		DataPoints: m * pointsPerUnit,
		Dim:        dim,
		Examples:   m,
		Workers:    n,
		Load:       r,
		Scheme:     scheme,
		Iterations: iters,
		Seed:       rng.Uint64(),
		Latency:    lat,
		// Master NIC drain cost; see ec2.go.
		IngressPerUnit: ec2IngressPerUnit,
	})
	if err != nil {
		return nil, err
	}
	res, err := job.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	return &scenarioResult{
		Scenario:  scenario,
		Scheme:    scheme,
		Load:      r,
		Threshold: res.AvgWorkersHeard,
		CommSec:   res.TotalComm,
		CompSec:   res.TotalCompute,
		TotalSec:  res.TotalWall,
	}, nil
}

// fig4Cells runs every (scenario, scheme) combination of the paper's EC2
// evaluation: scenario one (n=m=50) and two (n=m=100), schemes uncoded,
// cyclic repetition (r=10) and BCC (r=10).
func fig4Cells(ctx context.Context, opt Options) ([]*scenarioResult, error) {
	iters := opt.iterations()
	type combo struct {
		scenario, m, n, r int
		scheme            core.Scheme
	}
	combos := []combo{
		{1, 50, 50, 1, "uncoded"},
		{1, 50, 50, 10, "cyclicrep"},
		{1, 50, 50, 10, "bcc"},
		{2, 100, 100, 1, "uncoded"},
		{2, 100, 100, 10, "cyclicrep"},
		{2, 100, 100, 10, "bcc"},
	}
	if opt.Quick {
		combos = []combo{
			{1, 20, 20, 1, "uncoded"},
			{1, 20, 20, 5, "cyclicrep"},
			{1, 20, 20, 5, "bcc"},
		}
	}
	out := make([]*scenarioResult, 0, len(combos))
	for _, c := range combos {
		res, err := runScenario(ctx, c.scenario, c.m, c.n, c.r, c.scheme, iters, opt)
		if err != nil {
			return nil, fmt.Errorf("scenario %d %s: %w", c.scenario, c.scheme, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// Fig4 regenerates Figure 4: total running times of the uncoded, cyclic
// repetition and BCC schemes in both scenarios, with speedups.
func Fig4(ctx context.Context, opt Options) (*Table, error) {
	cells, err := fig4Cells(ctx, opt)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig4",
		Title:   fmt.Sprintf("total running time, %d Nesterov iterations (simulated EC2 profile)", opt.iterations()),
		Columns: []string{"scenario", "scheme", "r", "avg K", "total (s)", "speedup vs uncoded"},
	}
	uncodedTotal := map[int]float64{}
	for _, c := range cells {
		if c.Scheme == "uncoded" {
			uncodedTotal[c.Scenario] = c.TotalSec
		}
	}
	for _, c := range cells {
		speedup := "-"
		if base, ok := uncodedTotal[c.Scenario]; ok && c.Scheme != "uncoded" {
			speedup = fmt.Sprintf("%.1f%%", 100*(1-c.TotalSec/base))
		}
		t.AddRow(c.Scenario, c.Scheme, c.Load, c.Threshold, c.TotalSec, speedup)
	}
	t.Notes = append(t.Notes,
		"paper Fig. 4: BCC speeds up job execution by 85.4%/73.0% over uncoded and 69.9%/69.7% over CR",
		"substitution: EC2 t2.micro cluster -> DES cluster with the calibrated shift-exponential profile of ec2.go",
	)
	return t, nil
}

// tableBreakdown renders the Table I/II breakdown for one scenario.
func tableBreakdown(ctx context.Context, id string, scenario int, opt Options) (*Table, error) {
	cells, err := fig4Cells(ctx, opt)
	if err != nil {
		return nil, err
	}
	title := fmt.Sprintf("running time breakdown, scenario %d", scenario)
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"scheme", "recovery threshold", "comm time (s)", "comp time (s)", "total (s)"},
	}
	for _, c := range cells {
		if c.Scenario != scenario {
			continue
		}
		t.AddRow(c.Scheme, c.Threshold, c.CommSec, c.CompSec, c.TotalSec)
	}
	switch scenario {
	case 1:
		t.Notes = append(t.Notes,
			"paper Table I: uncoded K=50 comm=28.556 comp=0.230 total=28.786; CR K=41 comm=12.031 comp=1.959 total=13.990; BCC K=11 comm=3.043 comp=1.162 total=4.205")
	case 2:
		t.Notes = append(t.Notes,
			"paper Table II: uncoded K=100 comm=31.567 comp=1.453 total=33.020; CR K=91 comm=24.698 comp=4.784 total=29.482; BCC K=25 comm=7.246 comp=1.685 total=8.931")
	}
	t.Notes = append(t.Notes,
		"shape targets: K_uncoded = n, K_CR = m-r+1, K_BCC ~ (m/r)H; totals roughly proportional to K; comm >> comp")
	return t, nil
}

// Table1 regenerates Table I (scenario one breakdown).
func Table1(ctx context.Context, opt Options) (*Table, error) {
	return tableBreakdown(ctx, "table1", 1, opt)
}

// Table2 regenerates Table II (scenario two breakdown). In Quick mode only
// scenario one is run; Table2 then reports scenario one as a stand-in.
func Table2(ctx context.Context, opt Options) (*Table, error) {
	if opt.Quick {
		return tableBreakdown(ctx, "table2", 1, opt)
	}
	return tableBreakdown(ctx, "table2", 2, opt)
}
