package experiments

import (
	"context"
	"fmt"
	"math"

	"bcc/internal/coding"
	"bcc/internal/coupon"
	"bcc/internal/rngutil"
)

// Theorem1 validates Theorem 1's achievability on the real machinery: the
// measured average recovery threshold of BCC across an (m, r) grid against
// the analytic ceil(m/r)*H and the m/r lower bound.
func Theorem1(ctx context.Context, opt Options) (*Table, error) {
	m := 100
	n := 400 // n >> m/r so the with-replacement collector analysis applies
	if opt.Quick {
		m, n = 40, 160
	}
	trials := opt.trials(300)
	rng := rngutil.New(opt.seed())
	t := &Table{
		ID:      "theorem1",
		Title:   fmt.Sprintf("Theorem 1 check: measured E[K_BCC] vs ceil(m/r)H (m=%d, n=%d, %d trials)", m, n, trials),
		Columns: []string{"r", "m/r (lower bound)", "ceil(m/r)*H (Theorem 1)", "measured E[K]", "rel err"},
	}
	for _, r := range []int{2, 5, 10, 20, 25} {
		if r > m {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		analytic := coupon.BCCRecoveryThreshold(m, r)
		measured, err := measureBCCThreshold(m, n, r, trials, rng)
		if err != nil {
			return nil, err
		}
		rel := math.Abs(measured-analytic) / analytic
		t.AddRow(r, coupon.LowerBound(m, r), analytic, measured, fmt.Sprintf("%.1f%%", 100*rel))
	}
	t.Notes = append(t.Notes,
		"measured thresholds should track ceil(m/r)H_{ceil(m/r)} (small positive bias possible from feasibility resampling at small n)",
	)
	return t, nil
}

// CommLoad regenerates the communication-load comparison implied by eqs.
// (4), (6) and (8): analytic loads plus the units actually counted by the
// decoders.
func CommLoad(ctx context.Context, opt Options) (*Table, error) {
	m, n := 100, 100
	if opt.Quick {
		m, n = 40, 40
	}
	trials := opt.trials(200)
	rng := rngutil.New(opt.seed())
	t := &Table{
		ID:      "commload",
		Title:   fmt.Sprintf("communication load L vs computational load r (m=n=%d)", m),
		Columns: []string{"r", "BCC analytic", "BCC measured", "randomized analytic", "randomized measured", "CR/MDS (m-r+1)", "uncoded (n)"},
	}
	// Coverage-based placements need n >> m/r for feasibility (the paper's
	// "sufficiently large n"); measure on a 4x larger cluster while keeping
	// the analytic columns at the paper's m.
	nMeas := 4 * m
	for _, r := range []int{2, 5, 10, 20, 25} {
		if r > m {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		bccA := math.Min(coupon.BCCRecoveryThreshold(m, r), float64(nMeas))
		rndA := math.Min(coupon.RandomizedCommunicationLoad(m, r), float64(nMeas*r))
		bccM, err := measureUnits("bcc", m, nMeas, r, trials, rng)
		if err != nil {
			return nil, err
		}
		rndM, err := measureUnits("randomized", m, nMeas, r, trials, rng)
		if err != nil {
			return nil, err
		}
		t.AddRow(r, bccA, bccM, rndA, rndM, m-r+1, n)
	}
	t.Notes = append(t.Notes,
		"paper eq. (4): L_BCC = K_BCC (one unit per counted worker); eq. (6): L_random ~ m log m; eq. (8): L_CR = m-r+1",
		"BCC attains randomized-scheme thresholds at CR-like per-worker message sizes — the best of both",
		fmt.Sprintf("measured columns run on n=%d workers: random placements need n >> m/r to cover every example", nMeas),
	)
	return t, nil
}

// measureUnits Monte-Carlos the decoder's counted communication units.
func measureUnits(scheme string, m, n, r, trials int, rng *rngutil.RNG) (float64, error) {
	sch, err := coding.Lookup(scheme)
	if err != nil {
		return 0, err
	}
	gs := scalarGradients(m)
	var sum float64
	for k := 0; k < trials; k++ {
		plan, err := sch.Plan(m, n, r, rng)
		if err != nil {
			return 0, err
		}
		dec := plan.NewDecoder()
		assign := plan.Assignments()
		for _, w := range rng.Perm(n) {
			parts := make([][]float64, len(assign[w]))
			for kk, u := range assign[w] {
				parts[kk] = gs[u]
			}
			for _, msg := range coding.Encode(plan, w, parts) {
				dec.Offer(msg)
			}
			if dec.Decodable() {
				break
			}
		}
		if !dec.Decodable() {
			return 0, fmt.Errorf("experiments: %s did not decode", scheme)
		}
		sum += dec.UnitsReceived()
	}
	return sum / float64(trials), nil
}

// Fractional reproduces the footnote-2 ablation: the fractional repetition
// scheme finishes earlier than its worst case on average, landing between
// CR and BCC.
func Fractional(ctx context.Context, opt Options) (*Table, error) {
	m := 60
	if opt.Quick {
		m = 24
	}
	trials := opt.trials(400)
	rng := rngutil.New(opt.seed())
	t := &Table{
		ID:      "fractional",
		Title:   fmt.Sprintf("expected recovery thresholds: CR vs fractional repetition vs BCC (m=n=%d)", m),
		Columns: []string{"r", "CR (worst case)", "FR analytic E[K]", "FR measured E[K]", "BCC analytic E[K]"},
	}
	for _, r := range []int{2, 3, 4, 5, 6, 10} {
		if m%r != 0 {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sch, err := coding.Lookup("fractional")
		if err != nil {
			return nil, err
		}
		plan, err := sch.Plan(m, m, r, rng)
		if err != nil {
			return nil, err
		}
		analytic := plan.ExpectedThreshold()
		gs := scalarGradients(m)
		var sum float64
		for k := 0; k < trials; k++ {
			heard, err := decodeThreshold(plan, gs, rng.Perm(m))
			if err != nil {
				return nil, err
			}
			sum += float64(heard)
		}
		t.AddRow(r, m-r+1, analytic, sum/float64(trials), math.Min(coupon.BCCRecoveryThreshold(m, r), float64(m)))
	}
	t.Notes = append(t.Notes,
		"paper footnote 2: although designed for the worst case, FR can finish before m-r+1 workers",
	)
	return t, nil
}

// TailBound validates Lemma 2 empirically: the probability the collector
// needs more than (1+eps) N log N draws never exceeds N^-eps.
func TailBound(ctx context.Context, opt Options) (*Table, error) {
	n := 50
	if opt.Quick {
		n = 20
	}
	trials := opt.trials(20000)
	rng := rngutil.New(opt.seed())
	t := &Table{
		ID:      "tailbound",
		Title:   fmt.Sprintf("Lemma 2 tail bound, N=%d coupon types (%d trials)", n, trials),
		Columns: []string{"eps", "threshold (1+eps)N ln N", "empirical P(M >= thr)", "Lemma 2 bound N^-eps"},
	}
	for _, eps := range []float64{0, 0.25, 0.5, 1.0} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		thr := (1 + eps) * float64(n) * math.Log(float64(n))
		exceed := 0
		for k := 0; k < trials; k++ {
			if float64(coupon.SimulateDraws(n, rng)) >= thr {
				exceed++
			}
		}
		emp := float64(exceed) / float64(trials)
		t.AddRow(eps, thr, emp, coupon.TailBound(n, eps))
	}
	t.Notes = append(t.Notes, "the empirical column must sit below the bound column for every eps")
	return t, nil
}
