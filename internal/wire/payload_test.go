package wire

import (
	"bytes"
	"math"
	"sort"
	"testing"

	"bcc/internal/rngutil"
)

// refSelect is the obviously-correct top-k reference: order every index by
// (|v| descending, index ascending) and keep the first k, returned ascending.
func refSelect(v []float64, k int) []int32 {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		av, bv := math.Abs(v[idx[a]]), math.Abs(v[idx[b]])
		if av != bv {
			return av > bv
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	kept := make([]int32, k)
	for i := 0; i < k; i++ {
		kept[i] = int32(idx[i])
	}
	sort.Slice(kept, func(a, b int) bool { return kept[a] < kept[b] })
	return kept
}

// TestSelectKeepsKLargest is the top-k correctness property: against random
// vectors of many shapes, the heap-based Select must keep exactly the K
// largest-magnitude coordinates, with ties broken toward the lower index,
// and return them in ascending index order.
func TestSelectKeepsKLargest(t *testing.T) {
	rng := rngutil.New(7)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(64)
		k := rng.Intn(n + 2) // occasionally k > n
		v := make([]float64, n)
		for i := range v {
			switch rng.Intn(4) {
			case 0:
				v[i] = 0 // mass ties at zero
			case 1:
				v[i] = float64(rng.Intn(3)) - 1 // ties at ±1
			default:
				v[i] = rng.Normal()
			}
		}
		coder := NewVecCoder(PayloadConfig{Codec: PayloadTopK, TopK: k})
		got := coder.Select(v)
		want := refSelect(v, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d (n=%d k=%d): kept %d indices, want %d\nv=%v", trial, n, k, len(got), len(want), v)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (n=%d k=%d): kept %v, want %v\nv=%v", trial, n, k, got, want, v)
			}
		}
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Fatalf("trial %d: indices not strictly ascending: %v", trial, got)
			}
		}
	}
}

// TestSelectTieBreakDeterministic pins the tie rule on hand-built vectors:
// equal magnitudes keep the LOWER index, signs are irrelevant.
func TestSelectTieBreakDeterministic(t *testing.T) {
	cases := []struct {
		v    []float64
		k    int
		want []int32
	}{
		{[]float64{1, -1, 1, 1}, 2, []int32{0, 1}},
		{[]float64{2, -1, 1, -2}, 2, []int32{0, 3}},
		{[]float64{0, 0, 0}, 2, []int32{0, 1}},
		{[]float64{-3, 5, 3}, 2, []int32{0, 1}}, // |−3| ties |3| → index 0
		{[]float64{1, 2, 3}, 0, []int32{}},
		{[]float64{1, 2}, 5, []int32{0, 1}}, // k > n keeps everything
	}
	for ci, tc := range cases {
		coder := NewVecCoder(PayloadConfig{Codec: PayloadTopK, TopK: tc.k})
		got := coder.Select(tc.v)
		if len(got) != len(tc.want) {
			t.Fatalf("case %d: kept %v, want %v", ci, got, tc.want)
		}
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Fatalf("case %d: kept %v, want %v", ci, got, tc.want)
			}
		}
	}
}

// TestF32RoundTripULPBound bounds the f32 quantization error: for values in
// float32's normal range the round trip is correct to half a ULP, i.e. a
// relative error of at most 2^-24.
func TestF32RoundTripULPBound(t *testing.T) {
	rng := rngutil.New(8)
	const relBound = 1.0 / (1 << 24)
	check := func(x float64) {
		t.Helper()
		q := float64(float32(x))
		if x == 0 {
			if q != 0 {
				t.Fatalf("0 quantized to %v", q)
			}
			return
		}
		if rel := math.Abs(q-x) / math.Abs(x); rel > relBound {
			t.Fatalf("f32(%v) = %v: relative error %v exceeds 2^-24", x, q, rel)
		}
	}
	for i := 0; i < 1000; i++ {
		check(rng.Normal() * math.Pow(10, float64(rng.Intn(20)-10)))
	}
	for _, x := range []float64{1.0 / 3, math.Pi, 1e30, -1e-30, math.MaxFloat32 / 2} {
		check(x)
	}
	// QuantizeF32 must implement exactly that rounding, elementwise, and be
	// idempotent (the fixed point is float32-representable values).
	v := []float64{1.0 / 3, -math.Pi, 0, 1e20}
	q := append([]float64(nil), v...)
	QuantizeF32(q)
	for i := range v {
		if q[i] != float64(float32(v[i])) {
			t.Fatalf("QuantizeF32[%d] = %v, want %v", i, q[i], float64(float32(v[i])))
		}
	}
	again := append([]float64(nil), q...)
	QuantizeF32(again)
	for i := range q {
		if math.Float64bits(again[i]) != math.Float64bits(q[i]) {
			t.Fatalf("QuantizeF32 not idempotent at %d: %v -> %v", i, q[i], again[i])
		}
	}
}

// TestVecBytes pins the modelled per-vector byte widths the latency scaling
// and Bytes accounting are built on.
func TestVecBytes(t *testing.T) {
	if got := (PayloadConfig{}).VecBytes(100); got != 800 {
		t.Fatalf("raw64 VecBytes(100) = %d", got)
	}
	if got := (PayloadConfig{Codec: PayloadF32}).VecBytes(100); got != 400 {
		t.Fatalf("f32 VecBytes(100) = %d", got)
	}
	if got := (PayloadConfig{Codec: PayloadTopK, TopK: 7}).VecBytes(100); got != 56 {
		t.Fatalf("topk VecBytes(100) = %d", got)
	}
	// effK clamps to the vector length.
	if got := (PayloadConfig{Codec: PayloadTopK, TopK: 7}).VecBytes(3); got != 24 {
		t.Fatalf("topk VecBytes(3) = %d", got)
	}
}

// TestApplyReplyTransforms pins the canonical in-process transform the
// non-serializing runtimes apply: f32 quantization, top-k sparsify with kept
// values quantized, nil tolerated.
func TestApplyReplyTransforms(t *testing.T) {
	f32 := NewVecCoder(PayloadConfig{Codec: PayloadF32})
	v := []float64{1.0 / 3, -math.Pi}
	f32.ApplyReply(v)
	if v[0] != float64(float32(1.0/3)) || v[1] != float64(float32(-math.Pi)) {
		t.Fatalf("f32 ApplyReply = %v", v)
	}
	f32.ApplyReply(nil) // must not panic

	topk := NewVecCoder(PayloadConfig{Codec: PayloadTopK, TopK: 2})
	w := []float64{0.1, -5, 0.3, 4}
	topk.ApplyReply(w)
	want := []float64{0, float64(float32(-5.0)), 0, float64(float32(4.0))}
	for i := range want {
		if math.Float64bits(w[i]) != math.Float64bits(want[i]) {
			t.Fatalf("topk ApplyReply = %v, want %v", w, want)
		}
	}
	topk.ApplyReply(nil)

	raw := NewVecCoder(PayloadConfig{})
	u := []float64{1.0 / 3}
	raw.ApplyReply(u)
	if u[0] != 1.0/3 {
		t.Fatalf("raw64 ApplyReply mutated the vector: %v", u)
	}

	// ApplyQuery quantizes under f32 only; topk ships queries dense.
	q1 := []float64{1.0 / 3}
	f32.ApplyQuery(q1)
	if q1[0] != float64(float32(1.0/3)) {
		t.Fatalf("f32 ApplyQuery = %v", q1)
	}
	q2 := []float64{1.0 / 3}
	topk.ApplyQuery(q2)
	if q2[0] != 1.0/3 {
		t.Fatalf("topk ApplyQuery mutated the query: %v", q2)
	}
}

// writeReplyBytes serializes one reply under the given payload config and
// returns the raw frame bytes.
func writeReplyBytes(t *testing.T, pc PayloadConfig, rep Reply) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.SetPayload(pc)
	if err := w.WriteReply(rep); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestChunkSizeNeverChangesBytes pins the framing contract behind the
// negotiated chunk size: chunking is staging only, so the byte stream is
// identical for every chunk size, for every codec — and a reader configured
// with a DIFFERENT chunk size still decodes it exactly.
func TestChunkSizeNeverChangesBytes(t *testing.T) {
	rng := rngutil.New(9)
	vec := make([]float64, 777) // not a multiple of any tested chunk
	for i := range vec {
		vec[i] = rng.Normal()
	}
	rep := Reply{Iter: 3, Worker: 1, Compute: 0.5, Msgs: []Msg{{From: 1, Tag: 2, Units: 1, Vec: vec}}}
	for _, codec := range []PayloadCodec{PayloadRaw64, PayloadF32, PayloadTopK} {
		ref := writeReplyBytes(t, PayloadConfig{Codec: codec, TopK: 48, Chunk: 0}, rep)
		for _, chunk := range []int{1, 7, 776, 777, 778, 1 << 15} {
			got := writeReplyBytes(t, PayloadConfig{Codec: codec, TopK: 48, Chunk: chunk}, rep)
			if !bytes.Equal(got, ref) {
				t.Fatalf("codec %v chunk %d: byte stream differs from default-chunk stream", codec, chunk)
			}
			// Cross-chunk read: reader staged at another granularity.
			r := NewReader(bytes.NewReader(got))
			r.SetPayload(PayloadConfig{Codec: codec, TopK: 48, Chunk: 1 + chunk%5})
			if k, err := r.NextKind(); err != nil || k != KindReply {
				t.Fatalf("codec %v chunk %d: NextKind = %v, %v", codec, chunk, k, err)
			}
			var dec Reply
			if err := r.ReadReplyInto(&dec, nil); err != nil {
				t.Fatalf("codec %v chunk %d: read: %v", codec, chunk, err)
			}
			// Decoded values must equal the canonical in-process transform.
			want := append([]float64(nil), vec...)
			NewVecCoder(PayloadConfig{Codec: codec, TopK: 48}).ApplyReply(want)
			checkVecEqual(t, 0, "vec", dec.Msgs[0].Vec, want)
		}
	}
}

// TestReadReplyChunksStreams pins the streaming decode contract: onChunk
// observes a disjoint, in-order partition of every payload vector, each
// slice already holding its final decoded values, for chunked dense codecs
// and the single-chunk top-k scatter alike.
func TestReadReplyChunksStreams(t *testing.T) {
	rng := rngutil.New(10)
	vec := make([]float64, 100)
	for i := range vec {
		vec[i] = rng.Normal()
	}
	for _, tc := range []struct {
		codec      PayloadCodec
		chunk      int
		wantChunks int
	}{
		{PayloadRaw64, 33, 4}, // 33+33+33+1
		{PayloadF32, 50, 2},
		{PayloadF32, 100, 1},
		{PayloadTopK, 8, 1}, // scatter: one full-vector chunk
	} {
		pc := PayloadConfig{Codec: tc.codec, TopK: 10, Chunk: tc.chunk}
		frame := writeReplyBytes(t, pc, Reply{Msgs: []Msg{{Units: 1, Vec: vec}}})
		r := NewReader(bytes.NewReader(frame))
		r.SetPayload(pc)
		if _, err := r.NextKind(); err != nil {
			t.Fatal(err)
		}
		var rep Reply
		next := 0
		chunks := 0
		assembled := make([]float64, len(vec))
		err := r.ReadReplyChunks(&rep, nil, func(v []float64, lo, hi int) {
			if lo != next || hi <= lo || hi > len(vec) {
				t.Fatalf("codec %v chunk %d: slice [%d,%d) does not continue partition at %d", tc.codec, tc.chunk, lo, hi, next)
			}
			copy(assembled[lo:hi], v[lo:hi])
			next = hi
			chunks++
		})
		if err != nil {
			t.Fatal(err)
		}
		if next != len(vec) {
			t.Fatalf("codec %v: partition ended at %d of %d", tc.codec, next, len(vec))
		}
		if chunks != tc.wantChunks {
			t.Fatalf("codec %v chunk %d: %d chunks, want %d", tc.codec, tc.chunk, chunks, tc.wantChunks)
		}
		want := append([]float64(nil), vec...)
		NewVecCoder(pc).ApplyReply(want)
		checkVecEqual(t, 0, "assembled", assembled, want)
		checkVecEqual(t, 0, "vec", rep.Msgs[0].Vec, want)
	}
}

// TestTopKDecodeRejectsMalformed pins the reader's top-k validation: indices
// out of order, repeated, out of range, or a count above the vector length
// must fail cleanly instead of scattering wild.
func TestTopKDecodeRejectsMalformed(t *testing.T) {
	pc := PayloadConfig{Codec: PayloadTopK, TopK: 2}
	base := writeReplyBytes(t, pc, Reply{Msgs: []Msg{{Units: 1, Vec: []float64{1, 2, 3, 4}}}})
	// Locate the vec body: frame is kind(1) iter(8) worker(4) compute(8)
	// nmsgs(4) from(4) tag(8) units(8) len(4) k(4) pairs...
	const pairOff = 1 + 8 + 4 + 8 + 4 + 4 + 8 + 8 + 4 + 4
	corrupt := func(mutate func(b []byte)) error {
		b := append([]byte(nil), base...)
		mutate(b)
		r := NewReader(bytes.NewReader(b))
		r.SetPayload(pc)
		if _, err := r.NextKind(); err != nil {
			return err
		}
		var rep Reply
		return r.ReadReplyInto(&rep, nil)
	}
	if err := corrupt(func(b []byte) {}); err != nil {
		t.Fatalf("unmutated frame rejected: %v", err)
	}
	// Duplicate index: second pair's index = first pair's index.
	if err := corrupt(func(b []byte) { copy(b[pairOff+8:pairOff+12], b[pairOff:pairOff+4]) }); err == nil {
		t.Fatal("duplicate top-k index accepted")
	}
	// Out-of-range index.
	if err := corrupt(func(b []byte) { b[pairOff+8] = 200 }); err == nil {
		t.Fatal("out-of-range top-k index accepted")
	}
	// k larger than the vector length.
	if err := corrupt(func(b []byte) { b[pairOff-4] = 5 }); err == nil {
		t.Fatal("topk count above vector length accepted")
	}
}
