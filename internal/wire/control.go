package wire

import (
	"fmt"
	"io"
)

// Control frames extend the data-plane grammar (hello/model/reply) with the
// training service's control plane: fleet workers joining a daemon, job
// leases being assigned and returned, and clients submitting, polling and
// cancelling jobs. Control frames ride the same kind-prefixed stream as the
// data frames; a connection's first frame tells the daemon which protocol
// the peer speaks (KindJoin = fleet worker, KindSubmit/Status/Cancel =
// client).
//
// Frame bodies (all integers little-endian):
//
//	join   := blob(name)
//	assign := job:uint64 index:uint32 port:uint32 nshards:uint32 shardport:uint32* blob(spec)
//	idle   := job:uint64 blob(err)
//	submit := blob(spec)
//	status := job:uint64
//	cancel := job:uint64
//	state  := job:uint64 blob(err) blob(status)
//	blob   := len:uint32 body            (opaque bytes, len <= 1 MiB)
//
// Control payloads are small (a serialized job spec, a JSON status); the
// blob cap keeps a corrupted length prefix from provoking a huge
// allocation.

// Control frame kinds (continuing the data-plane numbering).
const (
	KindJoin   byte = 4
	KindAssign byte = 5
	KindIdle   byte = 6
	KindSubmit byte = 7
	KindStatus byte = 8
	KindCancel byte = 9
	KindState  byte = 10
)

// maxBlobLen caps control-frame blob bodies (specs and statuses are a few
// KB; 1 MiB is generous).
const maxBlobLen = 1 << 20

// Join is a fleet worker's first frame after dialing a service daemon.
type Join struct {
	// Name is a human-readable worker label for the daemon's /workers view.
	Name string
}

// Assign leases a fleet worker to one job: the worker must rebuild the job
// from Spec, serve worker Index of its cluster against the data-plane
// listener at Port (on the daemon's host), and report back with an Idle
// frame when the lease ends.
type Assign struct {
	// Job identifies the lease; echoed back in the worker's Idle frame.
	Job uint64
	// Index is the worker's index within the job's cluster (0..n-1).
	Index int
	// Port is the job's data-plane TCP port on the host the worker dialed.
	Port int
	// ShardPorts are the per-master-shard data-plane ports on the same host,
	// in shard order, when the job runs a sharded master with the scatter
	// data plane (empty = unsharded: all traffic on Port). The worker dials
	// every shard port in addition to Port and scatters each reply's
	// coordinate slices across them.
	ShardPorts []int
	// Spec is the serialized job spec (core.EncodeSpec output).
	Spec []byte
}

// Idle reports a finished lease: the worker has left the job's data plane
// and is available for the next assignment.
type Idle struct {
	Job uint64
	// Err is empty for a clean lease end, else the worker-side error text.
	Err string
}

// Submit asks the daemon to accept a new job.
type Submit struct {
	// Spec is the serialized job spec (core.EncodeSpec output).
	Spec []byte
}

// State is the daemon's reply to every client request: the job it concerns,
// an error ("" = success) and, on success, the JSON-encoded job status.
type State struct {
	Job uint64
	// Err is the daemon-side failure text ("" = request succeeded).
	Err string
	// Status is the JSON-encoded job status (empty when Err is set).
	Status []byte
}

// u64 writes a little-endian uint64 (job IDs).
func (w *Writer) u64(v uint64) error { return w.i64(int64(v)) }

func (r *Reader) u64() (uint64, error) {
	v, err := r.i64()
	return uint64(v), err
}

// blob writes a length-prefixed opaque byte body.
func (w *Writer) blob(b []byte) error {
	if len(b) > maxBlobLen {
		return fmt.Errorf("wire: blob length %d exceeds limit", len(b))
	}
	if err := w.u32(uint32(len(b))); err != nil {
		return err
	}
	_, err := w.bw.Write(b)
	return err
}

// blob reads a length-prefixed opaque byte body.
func (r *Reader) blob() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if n > maxBlobLen {
		return nil, fmt.Errorf("wire: blob length %d exceeds limit", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r.br, b); err != nil {
		return nil, err
	}
	return b, nil
}

// WriteJoin emits a fleet-join frame and flushes.
func (w *Writer) WriteJoin(j Join) error {
	if err := w.u8(KindJoin); err != nil {
		return err
	}
	if err := w.blob([]byte(j.Name)); err != nil {
		return err
	}
	return w.bw.Flush()
}

// ReadJoin decodes a join body (after NextKind returned KindJoin).
func (r *Reader) ReadJoin() (Join, error) {
	name, err := r.blob()
	if err != nil {
		return Join{}, err
	}
	return Join{Name: string(name)}, nil
}

// WriteAssign emits a lease-assignment frame and flushes.
func (w *Writer) WriteAssign(a Assign) error {
	if err := w.u8(KindAssign); err != nil {
		return err
	}
	if err := w.u64(a.Job); err != nil {
		return err
	}
	if err := w.u32(uint32(a.Index)); err != nil {
		return err
	}
	if err := w.u32(uint32(a.Port)); err != nil {
		return err
	}
	if err := w.u32(uint32(len(a.ShardPorts))); err != nil {
		return err
	}
	for _, p := range a.ShardPorts {
		if err := w.u32(uint32(p)); err != nil {
			return err
		}
	}
	if err := w.blob(a.Spec); err != nil {
		return err
	}
	return w.bw.Flush()
}

// ReadAssign decodes an assignment body (after NextKind returned
// KindAssign).
func (r *Reader) ReadAssign() (Assign, error) {
	job, err := r.u64()
	if err != nil {
		return Assign{}, err
	}
	index, err := r.u32()
	if err != nil {
		return Assign{}, err
	}
	port, err := r.u32()
	if err != nil {
		return Assign{}, err
	}
	nshards, err := r.u32()
	if err != nil {
		return Assign{}, err
	}
	// A shard count beyond the blob cap is certainly a corrupted stream;
	// reject before allocating.
	if nshards > maxBlobLen {
		return Assign{}, fmt.Errorf("wire: assign shard count %d exceeds limit", nshards)
	}
	var shardPorts []int
	if nshards > 0 {
		shardPorts = make([]int, nshards)
		for i := range shardPorts {
			p, err := r.u32()
			if err != nil {
				return Assign{}, err
			}
			shardPorts[i] = int(p)
		}
	}
	spec, err := r.blob()
	if err != nil {
		return Assign{}, err
	}
	return Assign{Job: job, Index: int(index), Port: int(port), ShardPorts: shardPorts, Spec: spec}, nil
}

// WriteIdle emits a lease-end frame and flushes.
func (w *Writer) WriteIdle(i Idle) error {
	if err := w.u8(KindIdle); err != nil {
		return err
	}
	if err := w.u64(i.Job); err != nil {
		return err
	}
	if err := w.blob([]byte(i.Err)); err != nil {
		return err
	}
	return w.bw.Flush()
}

// ReadIdle decodes an idle body (after NextKind returned KindIdle).
func (r *Reader) ReadIdle() (Idle, error) {
	job, err := r.u64()
	if err != nil {
		return Idle{}, err
	}
	msg, err := r.blob()
	if err != nil {
		return Idle{}, err
	}
	return Idle{Job: job, Err: string(msg)}, nil
}

// WriteSubmit emits a job-submission frame and flushes.
func (w *Writer) WriteSubmit(s Submit) error {
	if err := w.u8(KindSubmit); err != nil {
		return err
	}
	if err := w.blob(s.Spec); err != nil {
		return err
	}
	return w.bw.Flush()
}

// ReadSubmit decodes a submission body (after NextKind returned
// KindSubmit).
func (r *Reader) ReadSubmit() (Submit, error) {
	spec, err := r.blob()
	if err != nil {
		return Submit{}, err
	}
	return Submit{Spec: spec}, nil
}

// WriteStatus emits a status-request frame and flushes.
func (w *Writer) WriteStatus(job uint64) error {
	if err := w.u8(KindStatus); err != nil {
		return err
	}
	if err := w.u64(job); err != nil {
		return err
	}
	return w.bw.Flush()
}

// WriteCancel emits a cancel-request frame and flushes.
func (w *Writer) WriteCancel(job uint64) error {
	if err := w.u8(KindCancel); err != nil {
		return err
	}
	if err := w.u64(job); err != nil {
		return err
	}
	return w.bw.Flush()
}

// ReadJobID decodes the body of a status or cancel request (after NextKind
// returned KindStatus or KindCancel).
func (r *Reader) ReadJobID() (uint64, error) { return r.u64() }

// WriteState emits a daemon response frame and flushes.
func (w *Writer) WriteState(s State) error {
	if err := w.u8(KindState); err != nil {
		return err
	}
	if err := w.u64(s.Job); err != nil {
		return err
	}
	if err := w.blob([]byte(s.Err)); err != nil {
		return err
	}
	if err := w.blob(s.Status); err != nil {
		return err
	}
	return w.bw.Flush()
}

// ReadState decodes a response body (after NextKind returned KindState).
func (r *Reader) ReadState() (State, error) {
	job, err := r.u64()
	if err != nil {
		return State{}, err
	}
	msg, err := r.blob()
	if err != nil {
		return State{}, err
	}
	status, err := r.blob()
	if err != nil {
		return State{}, err
	}
	return State{Job: job, Err: string(msg), Status: status}, nil
}
