package wire

import (
	"bytes"
	"math"
	"testing"

	"bcc/internal/rngutil"
)

// FuzzReplyRoundTrip mirrors internal/coding's property fuzzing for the
// codec: pseudo-random reply frames — including the nil-vector sentinel and
// empty vectors — must round-trip bit-exactly through the buffer-reuse read
// path (ReadReplyInto with a recycling allocator and a reused Reply
// scratch), and the pooled read must agree with the plain ReadReply.
func FuzzReplyRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint8(1), uint16(4), false, false)
	f.Add(uint64(2), uint8(3), uint16(0), true, false)
	f.Add(uint64(3), uint8(0), uint16(9), false, true)
	f.Add(uint64(4), uint8(5), uint16(700), true, true)
	f.Fuzz(func(t *testing.T, seed uint64, nmsgs uint8, dim uint16, nilVec, nilImag bool) {
		rng := rngutil.New(seed)
		if dim > 2048 {
			dim = dim % 2048
		}
		mk := func() Reply {
			rep := Reply{
				Iter:    int(rng.Intn(1 << 20)),
				Worker:  int(rng.Intn(1 << 10)),
				Compute: rng.Float64(),
				Msgs:    make([]Msg, int(nmsgs)),
			}
			for i := range rep.Msgs {
				m := Msg{
					From:  int(rng.Intn(1 << 10)),
					Tag:   int(rng.Intn(1<<12)) - 1,
					Units: rng.Float64(),
				}
				if !nilVec {
					m.Vec = make([]float64, dim)
					for j := range m.Vec {
						m.Vec[j] = rng.Normal()
					}
				}
				if !nilImag {
					m.Imag = make([]float64, dim)
					for j := range m.Imag {
						m.Imag[j] = rng.Normal()
					}
				}
				rep.Msgs[i] = m
			}
			return rep
		}
		first, second := mk(), mk()

		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, rep := range []Reply{first, second} {
			if err := w.WriteReply(rep); err != nil {
				t.Fatal(err)
			}
		}

		// A recycling allocator: buffers released after the first read are
		// reused for the second, exercising the "pooled buffer with stale
		// contents" path end to end.
		var free [][]float64
		alloc := func(n int) []float64 {
			for i, b := range free {
				if len(b) == n {
					free = append(free[:i], free[i+1:]...)
					return b
				}
			}
			return make([]float64, n)
		}
		release := func(rep *Reply) {
			for _, m := range rep.Msgs {
				if m.Vec != nil {
					free = append(free, m.Vec)
				}
				if m.Imag != nil {
					free = append(free, m.Imag)
				}
			}
		}

		r := NewReader(&buf)
		var got Reply // reused scratch across both reads
		for _, want := range []Reply{first, second} {
			if k, err := r.NextKind(); err != nil || k != KindReply {
				t.Fatalf("NextKind = %v, %v", k, err)
			}
			if err := r.ReadReplyInto(&got, alloc); err != nil {
				t.Fatal(err)
			}
			checkReplyEqual(t, &got, &want)
			release(&got)
		}

		// The plain (allocating) path must agree with the pooled one.
		buf.Reset()
		w2 := NewWriter(&buf)
		if err := w2.WriteReply(first); err != nil {
			t.Fatal(err)
		}
		r2 := NewReader(&buf)
		if _, err := r2.NextKind(); err != nil {
			t.Fatal(err)
		}
		plain, err := r2.ReadReply()
		if err != nil {
			t.Fatal(err)
		}
		checkReplyEqual(t, &plain, &first)
	})
}

func checkReplyEqual(t *testing.T, got, want *Reply) {
	t.Helper()
	if got.Iter != want.Iter || got.Worker != want.Worker ||
		math.Float64bits(got.Compute) != math.Float64bits(want.Compute) {
		t.Fatalf("header mismatch: got %+v want %+v", got, want)
	}
	if len(got.Msgs) != len(want.Msgs) {
		t.Fatalf("message count %d != %d", len(got.Msgs), len(want.Msgs))
	}
	for i := range want.Msgs {
		g, w := got.Msgs[i], want.Msgs[i]
		if g.From != w.From || g.Tag != w.Tag || math.Float64bits(g.Units) != math.Float64bits(w.Units) {
			t.Fatalf("msg %d header mismatch: got %+v want %+v", i, g, w)
		}
		checkVecEqual(t, i, "vec", g.Vec, w.Vec)
		checkVecEqual(t, i, "imag", g.Imag, w.Imag)
	}
}

func checkVecEqual(t *testing.T, i int, which string, got, want []float64) {
	t.Helper()
	if (got == nil) != (want == nil) {
		t.Fatalf("msg %d %s nil-ness changed: got nil=%v want nil=%v", i, which, got == nil, want == nil)
	}
	if len(got) != len(want) {
		t.Fatalf("msg %d %s length %d != %d", i, which, len(got), len(want))
	}
	for j := range want {
		if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
			t.Fatalf("msg %d %s[%d] = %x want %x", i, which, j, math.Float64bits(got[j]), math.Float64bits(want[j]))
		}
	}
}
