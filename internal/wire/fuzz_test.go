package wire

import (
	"bytes"
	"math"
	"testing"

	"bcc/internal/rngutil"
)

// transformReply returns a deep copy of rep with the codec's canonical
// in-process transform applied to every payload vector — exactly what a wire
// round trip under that codec must decode to, bit for bit.
func transformReply(pc PayloadConfig, rep Reply) Reply {
	coder := NewVecCoder(pc)
	out := rep
	out.Msgs = make([]Msg, len(rep.Msgs))
	cp := func(v []float64) []float64 { // preserves nil vs empty-non-nil
		if v == nil {
			return nil
		}
		c := make([]float64, len(v))
		copy(c, v)
		coder.ApplyReply(c)
		return c
	}
	for i, m := range rep.Msgs {
		m.Vec = cp(m.Vec)
		m.Imag = cp(m.Imag)
		out.Msgs[i] = m
	}
	return out
}

// FuzzReplyRoundTrip mirrors internal/coding's property fuzzing for the
// codec: pseudo-random reply frames — including the nil-vector sentinel and
// empty vectors, under every payload codec and arbitrary chunk sizes — must
// decode bit-exactly to the codec's canonical transform through the
// buffer-reuse read path (ReadReplyInto with a recycling allocator and a
// reused Reply scratch), and the pooled read must agree with the plain
// ReadReply.
func FuzzReplyRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint8(1), uint16(4), false, false, uint8(0), uint8(0), uint16(0))
	f.Add(uint64(2), uint8(3), uint16(0), true, false, uint8(1), uint8(0), uint16(1))
	f.Add(uint64(3), uint8(0), uint16(9), false, true, uint8(2), uint8(3), uint16(8))
	f.Add(uint64(4), uint8(5), uint16(700), true, true, uint8(2), uint8(40), uint16(699))
	f.Add(uint64(5), uint8(2), uint16(512), false, false, uint8(1), uint8(0), uint16(513))
	f.Fuzz(func(t *testing.T, seed uint64, nmsgs uint8, dim uint16, nilVec, nilImag bool, codec, topk uint8, chunk uint16) {
		rng := rngutil.New(seed)
		if dim > 2048 {
			dim = dim % 2048
		}
		pc := PayloadConfig{Codec: PayloadCodec(codec % 3), TopK: int(topk), Chunk: int(chunk)}
		mk := func() Reply {
			rep := Reply{
				Iter:    int(rng.Intn(1 << 20)),
				Worker:  int(rng.Intn(1 << 10)),
				Compute: rng.Float64(),
				Msgs:    make([]Msg, int(nmsgs)),
			}
			for i := range rep.Msgs {
				m := Msg{
					From:  int(rng.Intn(1 << 10)),
					Tag:   int(rng.Intn(1<<12)) - 1,
					Units: rng.Float64(),
				}
				if !nilVec {
					m.Vec = make([]float64, dim)
					for j := range m.Vec {
						m.Vec[j] = rng.Normal()
					}
				}
				if !nilImag {
					m.Imag = make([]float64, dim)
					for j := range m.Imag {
						m.Imag[j] = rng.Normal()
					}
				}
				rep.Msgs[i] = m
			}
			return rep
		}
		first, second := mk(), mk()
		// Pristine copies: serialization must never mutate the caller's reply,
		// even under the lossy codecs (the transform happens during staging).
		origFirst := transformReply(PayloadConfig{}, first)
		origSecond := transformReply(PayloadConfig{}, second)
		wantFirst := transformReply(pc, first)
		wantSecond := transformReply(pc, second)

		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.SetPayload(pc)
		for _, rep := range []Reply{first, second} {
			if err := w.WriteReply(rep); err != nil {
				t.Fatal(err)
			}
		}
		checkReplyEqual(t, &first, &origFirst)
		checkReplyEqual(t, &second, &origSecond)

		// A recycling allocator: buffers released after the first read are
		// reused for the second, exercising the "pooled buffer with stale
		// contents" path end to end.
		var free [][]float64
		alloc := func(n int) []float64 {
			for i, b := range free {
				if len(b) == n {
					free = append(free[:i], free[i+1:]...)
					return b
				}
			}
			return make([]float64, n)
		}
		release := func(rep *Reply) {
			for _, m := range rep.Msgs {
				if m.Vec != nil {
					free = append(free, m.Vec)
				}
				if m.Imag != nil {
					free = append(free, m.Imag)
				}
			}
		}

		r := NewReader(&buf)
		r.SetPayload(pc)
		var got Reply // reused scratch across both reads
		for _, want := range []Reply{wantFirst, wantSecond} {
			if k, err := r.NextKind(); err != nil || k != KindReply {
				t.Fatalf("NextKind = %v, %v", k, err)
			}
			if err := r.ReadReplyInto(&got, alloc); err != nil {
				t.Fatal(err)
			}
			checkReplyEqual(t, &got, &want)
			release(&got)
		}

		// The plain (allocating) path must agree with the pooled one.
		buf.Reset()
		w2 := NewWriter(&buf)
		w2.SetPayload(pc)
		if err := w2.WriteReply(first); err != nil {
			t.Fatal(err)
		}
		r2 := NewReader(&buf)
		r2.SetPayload(pc)
		if _, err := r2.NextKind(); err != nil {
			t.Fatal(err)
		}
		plain, err := r2.ReadReply()
		if err != nil {
			t.Fatal(err)
		}
		checkReplyEqual(t, &plain, &wantFirst)
	})
}

// FuzzCodecRoundTrip is the comm-plane codec fuzzer: a single reply frame is
// written under an arbitrary codec and writer chunk size, then decoded with
// an INDEPENDENT reader chunk size (chunking is pure staging, so any reader
// granularity must parse any writer granularity), through an allocator that
// returns stale NaN-poisoned buffers (the reader must overwrite every
// element, including top-k's implicit zeros). Every strict prefix of the
// frame must fail with an error — never panic, never succeed.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint16(8), uint8(0), uint16(0), uint16(0), uint16(0), false)
	f.Add(uint64(2), uint8(1), uint16(512), uint8(0), uint16(511), uint16(513), uint16(40), false)
	f.Add(uint64(3), uint8(2), uint16(100), uint8(9), uint16(1), uint16(512), uint16(90), false)
	f.Add(uint64(4), uint8(2), uint16(0), uint8(3), uint16(7), uint16(3), uint16(5), true)
	f.Fuzz(func(t *testing.T, seed uint64, codec uint8, dim uint16, topk uint8, wchunk, rchunk, cut uint16, nilVec bool) {
		rng := rngutil.New(seed)
		dim = dim % 2048
		cw := PayloadConfig{Codec: PayloadCodec(codec % 3), TopK: int(topk), Chunk: int(wchunk)}
		cr := cw
		cr.Chunk = int(rchunk)

		rep := Reply{Iter: int(rng.Intn(1 << 16)), Worker: 3, Compute: rng.Float64(), Msgs: make([]Msg, 2)}
		for i := range rep.Msgs {
			m := Msg{From: i, Tag: i - 1, Units: rng.Float64()}
			if !(nilVec && i == 0) {
				m.Vec = make([]float64, dim)
				for j := range m.Vec {
					m.Vec[j] = rng.Normal()
				}
			}
			rep.Msgs[i] = m // Imag stays nil: the sentinel path under every codec
		}
		want := transformReply(cw, rep)

		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.SetPayload(cw)
		if err := w.WriteReply(rep); err != nil {
			t.Fatal(err)
		}
		frame := append([]byte(nil), buf.Bytes()...)

		poisonAlloc := func(n int) []float64 {
			b := make([]float64, n)
			for i := range b {
				b[i] = math.NaN()
			}
			return b
		}
		r := NewReader(bytes.NewReader(frame))
		r.SetPayload(cr)
		if k, err := r.NextKind(); err != nil || k != KindReply {
			t.Fatalf("NextKind = %v, %v", k, err)
		}
		var got Reply
		if err := r.ReadReplyInto(&got, poisonAlloc); err != nil {
			t.Fatal(err)
		}
		checkReplyEqual(t, &got, &want)

		// Truncated streams: every strict prefix must error out cleanly.
		pre := int(cut) % len(frame)
		rt := NewReader(bytes.NewReader(frame[:pre]))
		rt.SetPayload(cr)
		var tr Reply
		if _, err := rt.NextKind(); err == nil {
			if err := rt.ReadReplyInto(&tr, poisonAlloc); err == nil {
				t.Fatalf("reading a %d-byte prefix of a %d-byte frame succeeded", pre, len(frame))
			}
		}
	})
}

func checkReplyEqual(t *testing.T, got, want *Reply) {
	t.Helper()
	if got.Iter != want.Iter || got.Worker != want.Worker ||
		math.Float64bits(got.Compute) != math.Float64bits(want.Compute) {
		t.Fatalf("header mismatch: got %+v want %+v", got, want)
	}
	if len(got.Msgs) != len(want.Msgs) {
		t.Fatalf("message count %d != %d", len(got.Msgs), len(want.Msgs))
	}
	for i := range want.Msgs {
		g, w := got.Msgs[i], want.Msgs[i]
		if g.From != w.From || g.Tag != w.Tag || math.Float64bits(g.Units) != math.Float64bits(w.Units) {
			t.Fatalf("msg %d header mismatch: got %+v want %+v", i, g, w)
		}
		checkVecEqual(t, i, "vec", g.Vec, w.Vec)
		checkVecEqual(t, i, "imag", g.Imag, w.Imag)
	}
}

func checkVecEqual(t *testing.T, i int, which string, got, want []float64) {
	t.Helper()
	if (got == nil) != (want == nil) {
		t.Fatalf("msg %d %s nil-ness changed: got nil=%v want nil=%v", i, which, got == nil, want == nil)
	}
	if len(got) != len(want) {
		t.Fatalf("msg %d %s length %d != %d", i, which, len(got), len(want))
	}
	for j := range want {
		if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
			t.Fatalf("msg %d %s[%d] = %x want %x", i, which, j, math.Float64bits(got[j]), math.Float64bits(want[j]))
		}
	}
}
