package wire

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"bcc/internal/rngutil"
)

func roundTrip(t *testing.T, write func(*Writer) error, read func(*Reader) error) {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := write(w); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	if err := read(r); err != nil {
		t.Fatal(err)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	roundTrip(t,
		func(w *Writer) error { return w.WriteHello(Hello{Worker: 42}) },
		func(r *Reader) error {
			k, err := r.NextKind()
			if err != nil {
				return err
			}
			if k != KindHello {
				t.Fatalf("kind %d", k)
			}
			h, err := r.ReadHello()
			if err != nil {
				return err
			}
			if h.Worker != 42 {
				t.Fatalf("worker %d", h.Worker)
			}
			return nil
		})
}

func TestModelRoundTrip(t *testing.T) {
	in := Model{Iter: 7, Query: []float64{1.5, -2.25, math.Pi, 0}}
	roundTrip(t,
		func(w *Writer) error { return w.WriteModel(in) },
		func(r *Reader) error {
			if _, err := r.NextKind(); err != nil {
				return err
			}
			out, err := r.ReadModel()
			if err != nil {
				return err
			}
			if out.Iter != in.Iter || len(out.Query) != len(in.Query) {
				t.Fatalf("model %+v", out)
			}
			for i := range in.Query {
				if out.Query[i] != in.Query[i] {
					t.Fatalf("query[%d] %v != %v", i, out.Query[i], in.Query[i])
				}
			}
			return nil
		})
}

func TestShutdownModel(t *testing.T) {
	in := Model{Iter: -1}
	roundTrip(t,
		func(w *Writer) error { return w.WriteModel(in) },
		func(r *Reader) error {
			if _, err := r.NextKind(); err != nil {
				return err
			}
			out, err := r.ReadModel()
			if err != nil {
				return err
			}
			if out.Iter != -1 {
				t.Fatalf("iter %d", out.Iter)
			}
			if out.Query != nil {
				t.Fatalf("query should stay nil, got %v", out.Query)
			}
			return nil
		})
}

func TestNilVsEmptyVec(t *testing.T) {
	in := Reply{Iter: 1, Worker: 2, Msgs: []Msg{
		{From: 2, Tag: -1, Units: 1, Vec: []float64{}, Imag: nil},
	}}
	roundTrip(t,
		func(w *Writer) error { return w.WriteReply(in) },
		func(r *Reader) error {
			if _, err := r.NextKind(); err != nil {
				return err
			}
			out, err := r.ReadReply()
			if err != nil {
				return err
			}
			m := out.Msgs[0]
			if m.Vec == nil {
				t.Fatal("empty vec decoded as nil")
			}
			if len(m.Vec) != 0 {
				t.Fatalf("vec %v", m.Vec)
			}
			if m.Imag != nil {
				t.Fatal("nil imag decoded as non-nil")
			}
			return nil
		})
}

func TestReplyRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rngutil.New(seed)
		nm := rng.Intn(4)
		in := Reply{
			Iter:    rng.Intn(1000),
			Worker:  rng.Intn(256),
			Compute: rng.Normal(),
		}
		for i := 0; i < nm; i++ {
			msg := Msg{
				From:  rng.Intn(256),
				Tag:   rng.Intn(100) - 1,
				Units: rng.Float64() * 10,
			}
			vl := rng.Intn(32)
			msg.Vec = make([]float64, vl)
			for j := range msg.Vec {
				msg.Vec[j] = rng.Normal()
			}
			if rng.Bernoulli(0.5) {
				msg.Imag = make([]float64, vl)
				for j := range msg.Imag {
					msg.Imag[j] = rng.Normal()
				}
			}
			in.Msgs = append(in.Msgs, msg)
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteReply(in); err != nil {
			return false
		}
		r := NewReader(&buf)
		if k, err := r.NextKind(); err != nil || k != KindReply {
			return false
		}
		out, err := r.ReadReply()
		if err != nil {
			return false
		}
		if out.Iter != in.Iter || out.Worker != in.Worker || out.Compute != in.Compute {
			return false
		}
		if len(out.Msgs) != len(in.Msgs) {
			return false
		}
		for i := range in.Msgs {
			a, b := in.Msgs[i], out.Msgs[i]
			if a.From != b.From || a.Tag != b.Tag || a.Units != b.Units {
				return false
			}
			if len(a.Vec) != len(b.Vec) || len(a.Imag) != len(b.Imag) {
				return false
			}
			for j := range a.Vec {
				if a.Vec[j] != b.Vec[j] {
					return false
				}
			}
			for j := range a.Imag {
				if a.Imag[j] != b.Imag[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMultipleFramesOnOneStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteHello(Hello{Worker: 3}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.WriteModel(Model{Iter: i, Query: []float64{float64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&buf)
	if k, _ := r.NextKind(); k != KindHello {
		t.Fatal("expected hello first")
	}
	if _, err := r.ReadHello(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if k, _ := r.NextKind(); k != KindModel {
			t.Fatalf("frame %d: not a model", i)
		}
		m, err := r.ReadModel()
		if err != nil {
			t.Fatal(err)
		}
		if m.Iter != i || m.Query[0] != float64(i) {
			t.Fatalf("frame %d decoded as %+v", i, m)
		}
	}
	if _, err := r.NextKind(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestUnknownKindRejected(t *testing.T) {
	r := NewReader(strings.NewReader("\x99"))
	if _, err := r.NextKind(); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestOversizeVectorRejected(t *testing.T) {
	// Hand-craft a model frame with an absurd length prefix.
	var buf bytes.Buffer
	buf.WriteByte(KindModel)
	buf.Write(make([]byte, 8))                // iter = 0
	buf.Write([]byte{0xFE, 0xFF, 0xFF, 0xFE}) // huge length
	r := NewReader(&buf)
	if _, err := r.NextKind(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadModel(); err == nil {
		t.Fatal("oversize vector accepted")
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteModel(Model{Iter: 1, Query: []float64{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full)-1; cut += 5 {
		r := NewReader(bytes.NewReader(full[:cut]))
		k, err := r.NextKind()
		if err != nil {
			continue // truncated before the kind byte: fine
		}
		if k != KindModel {
			t.Fatalf("cut %d: kind %d", cut, k)
		}
		if _, err := r.ReadModel(); err == nil {
			t.Fatalf("cut %d: truncated frame decoded", cut)
		}
	}
}

func TestSpecialFloats(t *testing.T) {
	in := Model{Iter: 0, Query: []float64{math.Inf(1), math.Inf(-1), math.MaxFloat64, math.SmallestNonzeroFloat64, -0.0}}
	roundTrip(t,
		func(w *Writer) error { return w.WriteModel(in) },
		func(r *Reader) error {
			if _, err := r.NextKind(); err != nil {
				return err
			}
			out, err := r.ReadModel()
			if err != nil {
				return err
			}
			for i := range in.Query {
				if math.Float64bits(out.Query[i]) != math.Float64bits(in.Query[i]) {
					t.Fatalf("bit pattern changed at %d", i)
				}
			}
			return nil
		})
	// NaN must round-trip bit-exactly too.
	nan := Model{Iter: 0, Query: []float64{math.NaN()}}
	roundTrip(t,
		func(w *Writer) error { return w.WriteModel(nan) },
		func(r *Reader) error {
			if _, err := r.NextKind(); err != nil {
				return err
			}
			out, err := r.ReadModel()
			if err != nil {
				return err
			}
			if !math.IsNaN(out.Query[0]) {
				t.Fatal("NaN lost")
			}
			return nil
		})
}
