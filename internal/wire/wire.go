// Package wire is a compact, allocation-conscious binary codec for the
// cluster protocol frames (model broadcasts, worker replies, handshakes).
// It exists because encoding/gob pays reflection and type-dictionary costs
// on every 64 KB gradient payload; this codec writes float64 slices as raw
// little-endian words. The TCP fabric can run on either codec (see
// cluster.LiveOptions.Codec); both sides of a connection must agree.
//
// Frame layout (all integers little-endian):
//
//	frame := kind:uint8 body
//	hello := worker:uint32
//	model := iter:int64 vec(query)
//	reply := iter:int64 worker:uint32 compute:float64 nmsgs:uint32 msg*
//	msg   := from:uint32 tag:int64 units:float64 vec(vec) vec(imag)
//	vec   := len:uint32 float64*          (len 0xFFFFFFFF encodes nil)
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Frame kinds.
const (
	KindHello byte = 1
	KindModel byte = 2
	KindReply byte = 3
)

// nilLen marks a nil slice (distinct from an empty one).
const nilLen = ^uint32(0)

// maxVecLen caps decoded vector lengths to keep a corrupted or malicious
// length prefix from provoking a huge allocation (64 Mi floats = 512 MiB).
const maxVecLen = 64 << 20

// vecChunk is the number of float64 words moved per bulk read/write through
// the codec's byte scratch (4 KiB): large enough to amortize the copy, small
// enough that the per-codec scratch stays modest and a corrupt length prefix
// cannot force a huge transient buffer.
const vecChunk = 512

// VecAlloc supplies payload buffers to the reader's *Into entry points so
// steady-state deserialization reuses pooled memory. It returns a length-n
// buffer with arbitrary contents (the reader overwrites every element); a
// nil VecAlloc — or a wrongly-sized return — falls back to a fresh
// allocation.
type VecAlloc func(n int) []float64

// Hello is the handshake frame body.
type Hello struct {
	Worker int
}

// Model is a model-broadcast frame body; Iter < 0 signals shutdown.
type Model struct {
	Iter  int
	Query []float64
}

// Msg mirrors coding.Message on the wire (kept dependency-free so the codec
// can be tested and benchmarked standalone).
type Msg struct {
	From  int
	Tag   int
	Units float64
	Vec   []float64
	Imag  []float64
}

// Reply is a worker-reply frame body.
type Reply struct {
	Iter    int
	Worker  int
	Compute float64
	Msgs    []Msg
}

// Writer frames and buffers outgoing frames. Not safe for concurrent use.
type Writer struct {
	bw      *bufio.Writer
	scratch [8]byte
	vbuf    []byte // bulk float64 staging, grown to at most vecChunk*8
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{bw: bufio.NewWriterSize(w, 1<<16)} }

func (w *Writer) u8(v byte) error { return w.bw.WriteByte(v) }

func (w *Writer) u32(v uint32) error {
	binary.LittleEndian.PutUint32(w.scratch[:4], v)
	_, err := w.bw.Write(w.scratch[:4])
	return err
}

func (w *Writer) i64(v int64) error {
	binary.LittleEndian.PutUint64(w.scratch[:8], uint64(v))
	_, err := w.bw.Write(w.scratch[:8])
	return err
}

func (w *Writer) f64(v float64) error {
	binary.LittleEndian.PutUint64(w.scratch[:8], math.Float64bits(v))
	_, err := w.bw.Write(w.scratch[:8])
	return err
}

// vec writes a length-prefixed float64 slice, staging whole chunks through
// the byte scratch so each chunk is one bufio write instead of one write per
// word (the dominant cost on gradient-sized payloads).
func (w *Writer) vec(v []float64) error {
	if v == nil {
		return w.u32(nilLen)
	}
	if err := w.u32(uint32(len(v))); err != nil {
		return err
	}
	for len(v) > 0 {
		n := len(v)
		if n > vecChunk {
			n = vecChunk
		}
		if cap(w.vbuf) < n*8 {
			w.vbuf = make([]byte, vecChunk*8)
		}
		buf := w.vbuf[:n*8]
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v[i]))
		}
		if _, err := w.bw.Write(buf); err != nil {
			return err
		}
		v = v[n:]
	}
	return nil
}

// WriteHello emits a handshake frame and flushes.
func (w *Writer) WriteHello(h Hello) error {
	if err := w.u8(KindHello); err != nil {
		return err
	}
	if err := w.u32(uint32(h.Worker)); err != nil {
		return err
	}
	return w.bw.Flush()
}

// WriteModel emits a model-broadcast frame and flushes.
func (w *Writer) WriteModel(m Model) error {
	if err := w.u8(KindModel); err != nil {
		return err
	}
	if err := w.i64(int64(m.Iter)); err != nil {
		return err
	}
	if err := w.vec(m.Query); err != nil {
		return err
	}
	return w.bw.Flush()
}

// WriteReply emits a worker-reply frame and flushes.
func (w *Writer) WriteReply(r Reply) error {
	if err := w.u8(KindReply); err != nil {
		return err
	}
	if err := w.i64(int64(r.Iter)); err != nil {
		return err
	}
	if err := w.u32(uint32(r.Worker)); err != nil {
		return err
	}
	if err := w.f64(r.Compute); err != nil {
		return err
	}
	if err := w.u32(uint32(len(r.Msgs))); err != nil {
		return err
	}
	for _, m := range r.Msgs {
		if err := w.u32(uint32(m.From)); err != nil {
			return err
		}
		if err := w.i64(int64(m.Tag)); err != nil {
			return err
		}
		if err := w.f64(m.Units); err != nil {
			return err
		}
		if err := w.vec(m.Vec); err != nil {
			return err
		}
		if err := w.vec(m.Imag); err != nil {
			return err
		}
	}
	return w.bw.Flush()
}

// Reader decodes frames. Not safe for concurrent use.
type Reader struct {
	br      *bufio.Reader
	scratch [8]byte
	vbuf    []byte // bulk float64 staging, grown to at most vecChunk*8
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader { return &Reader{br: bufio.NewReaderSize(r, 1<<16)} }

func (r *Reader) u8() (byte, error) { return r.br.ReadByte() }

func (r *Reader) u32() (uint32, error) {
	if _, err := io.ReadFull(r.br, r.scratch[:4]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(r.scratch[:4]), nil
}

func (r *Reader) i64() (int64, error) {
	if _, err := io.ReadFull(r.br, r.scratch[:8]); err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(r.scratch[:8])), nil
}

func (r *Reader) f64() (float64, error) {
	if _, err := io.ReadFull(r.br, r.scratch[:8]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(r.scratch[:8])), nil
}

func (r *Reader) vec() ([]float64, error) { return r.vecAlloc(nil) }

// vecAlloc reads a length-prefixed float64 slice, drawing the destination
// from alloc (nil or wrong-sized result = fresh allocation) and moving whole
// chunks through the byte scratch with one ReadFull per chunk.
func (r *Reader) vecAlloc(alloc VecAlloc) ([]float64, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if n == nilLen {
		return nil, nil
	}
	if n > maxVecLen {
		return nil, fmt.Errorf("wire: vector length %d exceeds limit", n)
	}
	var v []float64
	if alloc != nil {
		v = alloc(int(n))
	}
	if len(v) != int(n) || v == nil {
		// make([]float64, 0) is non-nil: an empty wire vector must stay
		// distinguishable from the nilLen sentinel after a round trip.
		v = make([]float64, n)
	}
	for rem := v; len(rem) > 0; {
		k := len(rem)
		if k > vecChunk {
			k = vecChunk
		}
		if cap(r.vbuf) < k*8 {
			r.vbuf = make([]byte, vecChunk*8)
		}
		buf := r.vbuf[:k*8]
		if _, err := io.ReadFull(r.br, buf); err != nil {
			return nil, err
		}
		for i := 0; i < k; i++ {
			rem[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
		}
		rem = rem[k:]
	}
	return v, nil
}

// NextKind reads the next frame's kind byte.
func (r *Reader) NextKind() (byte, error) {
	k, err := r.u8()
	if err != nil {
		return 0, err
	}
	if k != KindHello && k != KindModel && k != KindReply {
		return 0, fmt.Errorf("wire: unknown frame kind %d", k)
	}
	return k, nil
}

// ReadHello decodes a handshake body (after NextKind returned KindHello).
func (r *Reader) ReadHello() (Hello, error) {
	w, err := r.u32()
	if err != nil {
		return Hello{}, err
	}
	return Hello{Worker: int(w)}, nil
}

// ReadModel decodes a model body (after NextKind returned KindModel).
func (r *Reader) ReadModel() (Model, error) {
	iter, err := r.i64()
	if err != nil {
		return Model{}, err
	}
	q, err := r.vec()
	if err != nil {
		return Model{}, err
	}
	return Model{Iter: int(iter), Query: q}, nil
}

// ReadReply decodes a reply body (after NextKind returned KindReply).
func (r *Reader) ReadReply() (Reply, error) {
	var rep Reply
	err := r.ReadReplyInto(&rep, nil)
	return rep, err
}

// ReadReplyInto decodes a reply body into rep, reusing rep's Msgs backing
// array when it has capacity and drawing payload buffers from alloc — the
// buffer-reuse read path the TCP master uses to deserialize replies straight
// into pooled gradient buffers. alloc may be nil (fresh allocations). On
// error rep's contents are unspecified. Nil vectors on the wire (the nilLen
// sentinel) decode to nil without consulting alloc.
func (r *Reader) ReadReplyInto(rep *Reply, alloc VecAlloc) error {
	iter, err := r.i64()
	if err != nil {
		return err
	}
	worker, err := r.u32()
	if err != nil {
		return err
	}
	compute, err := r.f64()
	if err != nil {
		return err
	}
	nmsgs, err := r.u32()
	if err != nil {
		return err
	}
	if nmsgs > 1<<20 {
		return fmt.Errorf("wire: message count %d exceeds limit", nmsgs)
	}
	rep.Iter = int(iter)
	rep.Worker = int(worker)
	rep.Compute = compute
	if cap(rep.Msgs) < int(nmsgs) {
		rep.Msgs = make([]Msg, nmsgs)
	} else {
		rep.Msgs = rep.Msgs[:nmsgs]
	}
	for i := range rep.Msgs {
		from, err := r.u32()
		if err != nil {
			return err
		}
		tag, err := r.i64()
		if err != nil {
			return err
		}
		units, err := r.f64()
		if err != nil {
			return err
		}
		vec, err := r.vecAlloc(alloc)
		if err != nil {
			return err
		}
		imag, err := r.vecAlloc(alloc)
		if err != nil {
			return err
		}
		rep.Msgs[i] = Msg{From: int(from), Tag: int(tag), Units: units, Vec: vec, Imag: imag}
	}
	return nil
}
