// Package wire is a compact, allocation-conscious binary codec for the
// cluster protocol frames (model broadcasts, worker replies, handshakes).
// It exists because encoding/gob pays reflection and type-dictionary costs
// on every 64 KB gradient payload; this codec writes float64 slices as raw
// little-endian words. The TCP fabric can run on either codec (see
// cluster.LiveOptions.Codec); both sides of a connection must agree.
//
// Frame layout (all integers little-endian):
//
//	frame := kind:uint8 body
//	hello := worker:uint32 codec:uint8 topk:uint32 chunk:uint32 shards:uint32
//	model := iter:int64 level:uint32 vec(query)
//	reply := iter:int64 worker:uint32 compute:float64 nmsgs:uint32 msg*
//	msg   := from:uint32 tag:int64 units:float64 vec(vec) vec(imag)
//	vec   := len:uint32 body                 (len 0xFFFFFFFF encodes nil)
//
// The vec body depends on the payload codec both sides negotiated in the
// hello frame (see PayloadCodec):
//
//	raw64: float64*                          (len words)
//	f32:   float32*                          (len words; reply AND query)
//	topk:  k:uint32 (idx:uint32 val:float32)*  (k pairs, idx strictly
//	       ascending; queries stay raw64 under topk)
//
// Payload elements move through the codec in chunks of PayloadConfig.Chunk
// elements (DefaultChunk unless configured): one bufio write / ReadFull per
// chunk instead of one per word. Chunking is pure staging — the byte stream
// is identical for every chunk size — but it is also the streaming decode
// granularity: ReadReplyChunks hands each decoded chunk slice to the caller
// while later chunks are still in flight.
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Frame kinds.
const (
	KindHello byte = 1
	KindModel byte = 2
	KindReply byte = 3
)

// nilLen marks a nil slice (distinct from an empty one).
const nilLen = ^uint32(0)

// maxVecLen caps decoded vector lengths to keep a corrupted or malicious
// length prefix from provoking a huge allocation (64 Mi floats = 512 MiB).
const maxVecLen = 64 << 20

// VecAlloc supplies payload buffers to the reader's *Into entry points so
// steady-state deserialization reuses pooled memory. It returns a length-n
// buffer with arbitrary contents (the reader overwrites every element); a
// nil VecAlloc — or a wrongly-sized return — falls back to a fresh
// allocation.
type VecAlloc func(n int) []float64

// Hello is the handshake frame body. It carries the sender's payload-codec
// parameters so master and workers can detect disagreement before any
// payload frame is misparsed.
type Hello struct {
	Worker int
	Codec  PayloadCodec
	TopK   int
	Chunk  int
	// Shards is the master-shard count of the run the sender was configured
	// for (0 = unsharded): under the sharded master's scatter data plane
	// workers ship each reply's coordinate slices to per-shard listeners, so
	// both ends must agree on the shard map or slices would land on the
	// wrong shard. Verified at handshake time like the codec parameters.
	Shards int
}

// Model is a model-broadcast frame body; Iter < 0 signals shutdown. Level
// is the iteration's active redundancy level on re-tunable code families
// (0 = fixed plan).
type Model struct {
	Iter  int
	Level int
	Query []float64
}

// Msg mirrors coding.Message on the wire (kept dependency-free so the codec
// can be tested and benchmarked standalone).
type Msg struct {
	From  int
	Tag   int
	Units float64
	Vec   []float64
	Imag  []float64
}

// Reply is a worker-reply frame body.
type Reply struct {
	Iter    int
	Worker  int
	Compute float64
	Msgs    []Msg
}

// Writer frames and buffers outgoing frames. Not safe for concurrent use.
// The zero payload config is raw64 with the default chunk size; SetPayload
// switches codecs.
type Writer struct {
	bw      *bufio.Writer
	pc      PayloadConfig
	chunk   int
	coder   VecCoder // top-k selection scratch for vecTopK
	scratch [8]byte
	vbuf    []byte // bulk staging, grown to at most chunk*8 bytes
}

// NewWriter wraps w with the default raw64 payload codec.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 1<<16), chunk: DefaultChunk}
}

// SetPayload selects the payload codec and chunk size for subsequent frames.
// Both ends of a connection must agree (the cluster layer negotiates this in
// the hello exchange).
func (w *Writer) SetPayload(pc PayloadConfig) {
	w.pc = pc
	w.chunk = pc.chunkElems()
	w.coder = VecCoder{cfg: pc}
	w.vbuf = nil
}

func (w *Writer) u8(v byte) error { return w.bw.WriteByte(v) }

func (w *Writer) u32(v uint32) error {
	binary.LittleEndian.PutUint32(w.scratch[:4], v)
	_, err := w.bw.Write(w.scratch[:4])
	return err
}

func (w *Writer) i64(v int64) error {
	binary.LittleEndian.PutUint64(w.scratch[:8], uint64(v))
	_, err := w.bw.Write(w.scratch[:8])
	return err
}

func (w *Writer) f64(v float64) error {
	binary.LittleEndian.PutUint64(w.scratch[:8], math.Float64bits(v))
	_, err := w.bw.Write(w.scratch[:8])
	return err
}

// stage returns the byte staging buffer, grown to hold one chunk of 8-byte
// words (the widest element the codec stages).
func (w *Writer) stage(n int) []byte {
	if cap(w.vbuf) < n {
		w.vbuf = make([]byte, w.chunk*8)
	}
	return w.vbuf[:n]
}

// vecRaw writes a length-prefixed float64 slice, staging whole chunks through
// the byte scratch so each chunk is one bufio write instead of one write per
// word (the dominant cost on gradient-sized payloads).
func (w *Writer) vecRaw(v []float64) error {
	if v == nil {
		return w.u32(nilLen)
	}
	if err := w.u32(uint32(len(v))); err != nil {
		return err
	}
	for len(v) > 0 {
		n := len(v)
		if n > w.chunk {
			n = w.chunk
		}
		buf := w.stage(n * 8)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v[i]))
		}
		if _, err := w.bw.Write(buf); err != nil {
			return err
		}
		v = v[n:]
	}
	return nil
}

// vecF32 writes a length-prefixed slice as float32 words.
func (w *Writer) vecF32(v []float64) error {
	if v == nil {
		return w.u32(nilLen)
	}
	if err := w.u32(uint32(len(v))); err != nil {
		return err
	}
	for len(v) > 0 {
		n := len(v)
		if n > w.chunk {
			n = w.chunk
		}
		buf := w.stage(n * 4)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(float32(v[i])))
		}
		if _, err := w.bw.Write(buf); err != nil {
			return err
		}
		v = v[n:]
	}
	return nil
}

// vecTopK writes the K largest-|v| coordinates as ascending (index, value)
// pairs. Selection runs on the raw float64 values — exactly the canonical
// VecCoder transform — so the decoded vector is bit-identical to what an
// in-process runtime computes.
func (w *Writer) vecTopK(v []float64) error {
	if v == nil {
		return w.u32(nilLen)
	}
	if err := w.u32(uint32(len(v))); err != nil {
		return err
	}
	kept := w.coder.Select(v)
	if err := w.u32(uint32(len(kept))); err != nil {
		return err
	}
	for len(kept) > 0 {
		n := len(kept)
		if n > w.chunk {
			n = w.chunk
		}
		buf := w.stage(n * 8)
		for i := 0; i < n; i++ {
			idx := kept[i]
			binary.LittleEndian.PutUint32(buf[i*8:], uint32(idx))
			binary.LittleEndian.PutUint32(buf[i*8+4:], math.Float32bits(float32(v[idx])))
		}
		if _, err := w.bw.Write(buf); err != nil {
			return err
		}
		kept = kept[n:]
	}
	return nil
}

// vecReply dispatches a reply payload vector through the configured codec.
func (w *Writer) vecReply(v []float64) error {
	switch w.pc.Codec {
	case PayloadF32:
		return w.vecF32(v)
	case PayloadTopK:
		return w.vecTopK(v)
	}
	return w.vecRaw(v)
}

// vecQuery dispatches a model query: f32 quantizes queries, topk ships them
// dense (raw64).
func (w *Writer) vecQuery(v []float64) error {
	if w.pc.Codec == PayloadF32 {
		return w.vecF32(v)
	}
	return w.vecRaw(v)
}

// WriteHello emits a handshake frame and flushes.
func (w *Writer) WriteHello(h Hello) error {
	if err := w.u8(KindHello); err != nil {
		return err
	}
	if err := w.u32(uint32(h.Worker)); err != nil {
		return err
	}
	if err := w.u8(byte(h.Codec)); err != nil {
		return err
	}
	if err := w.u32(uint32(h.TopK)); err != nil {
		return err
	}
	if err := w.u32(uint32(h.Chunk)); err != nil {
		return err
	}
	if err := w.u32(uint32(h.Shards)); err != nil {
		return err
	}
	return w.bw.Flush()
}

// WriteModel emits a model-broadcast frame and flushes.
func (w *Writer) WriteModel(m Model) error {
	if err := w.u8(KindModel); err != nil {
		return err
	}
	if err := w.i64(int64(m.Iter)); err != nil {
		return err
	}
	if err := w.u32(uint32(m.Level)); err != nil {
		return err
	}
	if err := w.vecQuery(m.Query); err != nil {
		return err
	}
	return w.bw.Flush()
}

// WriteReply emits a worker-reply frame and flushes. Under a lossy payload
// codec the transform is applied during serialization; the caller's slices
// are never mutated.
func (w *Writer) WriteReply(r Reply) error {
	if err := w.u8(KindReply); err != nil {
		return err
	}
	if err := w.i64(int64(r.Iter)); err != nil {
		return err
	}
	if err := w.u32(uint32(r.Worker)); err != nil {
		return err
	}
	if err := w.f64(r.Compute); err != nil {
		return err
	}
	if err := w.u32(uint32(len(r.Msgs))); err != nil {
		return err
	}
	for _, m := range r.Msgs {
		if err := w.u32(uint32(m.From)); err != nil {
			return err
		}
		if err := w.i64(int64(m.Tag)); err != nil {
			return err
		}
		if err := w.f64(m.Units); err != nil {
			return err
		}
		if err := w.vecReply(m.Vec); err != nil {
			return err
		}
		if err := w.vecReply(m.Imag); err != nil {
			return err
		}
	}
	return w.bw.Flush()
}

// Reader decodes frames. Not safe for concurrent use. The zero payload
// config is raw64 with the default chunk size; SetPayload must match the
// writing side.
type Reader struct {
	br      *bufio.Reader
	pc      PayloadConfig
	chunk   int
	scratch [8]byte
	vbuf    []byte // bulk staging, grown to at most chunk*8 bytes
}

// NewReader wraps r with the default raw64 payload codec.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 1<<16), chunk: DefaultChunk}
}

// SetPayload selects the payload codec and chunk size for subsequent frames;
// it must mirror the writing side's SetPayload.
func (r *Reader) SetPayload(pc PayloadConfig) {
	r.pc = pc
	r.chunk = pc.chunkElems()
	r.vbuf = nil
}

func (r *Reader) u8() (byte, error) { return r.br.ReadByte() }

func (r *Reader) u32() (uint32, error) {
	if _, err := io.ReadFull(r.br, r.scratch[:4]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(r.scratch[:4]), nil
}

func (r *Reader) i64() (int64, error) {
	if _, err := io.ReadFull(r.br, r.scratch[:8]); err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(r.scratch[:8])), nil
}

func (r *Reader) f64() (float64, error) {
	if _, err := io.ReadFull(r.br, r.scratch[:8]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(r.scratch[:8])), nil
}

// stage returns the byte staging buffer, grown to hold one chunk of 8-byte
// words.
func (r *Reader) stage(n int) []byte {
	if cap(r.vbuf) < n {
		r.vbuf = make([]byte, r.chunk*8)
	}
	return r.vbuf[:n]
}

// vecLen reads and validates a vector length prefix; ok is false for the
// nil sentinel.
func (r *Reader) vecLen() (n int, ok bool, err error) {
	u, err := r.u32()
	if err != nil {
		return 0, false, err
	}
	if u == nilLen {
		return 0, false, nil
	}
	if u > maxVecLen {
		return 0, false, fmt.Errorf("wire: vector length %d exceeds limit", u)
	}
	return int(u), true, nil
}

// vecBuf draws an n-element destination from alloc, falling back to a fresh
// allocation when alloc is nil or returns a wrongly-sized buffer.
func vecBuf(alloc VecAlloc, n int) []float64 {
	var v []float64
	if alloc != nil {
		v = alloc(n)
	}
	if len(v) != n || v == nil {
		// make([]float64, 0) is non-nil: an empty wire vector must stay
		// distinguishable from the nilLen sentinel after a round trip.
		v = make([]float64, n)
	}
	return v
}

// ChunkFunc observes decoded payload slices: after each chunk of a payload
// vector is in place the reader calls fn(v, lo, hi) where v[lo:hi] holds the
// freshly decoded elements. The slice aliases the destination buffer and
// must not be retained past the enclosing Read call. Top-k payloads arrive
// as a single logical chunk covering the whole vector (the scatter target
// must be fully zeroed before any element is final).
type ChunkFunc func(v []float64, lo, hi int)

// vecRaw reads a raw64 vector body into a buffer from alloc.
func (r *Reader) vecRaw(alloc VecAlloc, fn ChunkFunc) ([]float64, error) {
	n, ok, err := r.vecLen()
	if err != nil || !ok {
		return nil, err
	}
	v := vecBuf(alloc, n)
	for off := 0; off < n; {
		k := n - off
		if k > r.chunk {
			k = r.chunk
		}
		buf := r.stage(k * 8)
		if _, err := io.ReadFull(r.br, buf); err != nil {
			return nil, err
		}
		for i := 0; i < k; i++ {
			v[off+i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
		}
		if fn != nil {
			fn(v, off, off+k)
		}
		off += k
	}
	return v, nil
}

// vecF32 reads an f32 vector body, widening each word to float64.
func (r *Reader) vecF32(alloc VecAlloc, fn ChunkFunc) ([]float64, error) {
	n, ok, err := r.vecLen()
	if err != nil || !ok {
		return nil, err
	}
	v := vecBuf(alloc, n)
	for off := 0; off < n; {
		k := n - off
		if k > r.chunk {
			k = r.chunk
		}
		buf := r.stage(k * 4)
		if _, err := io.ReadFull(r.br, buf); err != nil {
			return nil, err
		}
		for i := 0; i < k; i++ {
			v[off+i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:])))
		}
		if fn != nil {
			fn(v, off, off+k)
		}
		off += k
	}
	return v, nil
}

// vecTopK reads a top-k vector body: k ascending (index, value) pairs
// scattered into a zero-filled dense buffer.
func (r *Reader) vecTopK(alloc VecAlloc, fn ChunkFunc) ([]float64, error) {
	n, ok, err := r.vecLen()
	if err != nil || !ok {
		return nil, err
	}
	ku, err := r.u32()
	if err != nil {
		return nil, err
	}
	if int64(ku) > int64(n) {
		return nil, fmt.Errorf("wire: topk count %d exceeds vector length %d", ku, n)
	}
	k := int(ku)
	v := vecBuf(alloc, n)
	for i := range v {
		v[i] = 0
	}
	prev := int64(-1)
	for off := 0; off < k; {
		m := k - off
		if m > r.chunk {
			m = r.chunk
		}
		buf := r.stage(m * 8)
		if _, err := io.ReadFull(r.br, buf); err != nil {
			return nil, err
		}
		for i := 0; i < m; i++ {
			idx := int64(binary.LittleEndian.Uint32(buf[i*8:]))
			if idx <= prev || idx >= int64(n) {
				return nil, fmt.Errorf("wire: topk index %d out of order or range (prev %d, len %d)", idx, prev, n)
			}
			prev = idx
			v[idx] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[i*8+4:])))
		}
		off += m
	}
	if fn != nil {
		fn(v, 0, n)
	}
	return v, nil
}

// vecReply dispatches a reply payload read through the configured codec.
func (r *Reader) vecReply(alloc VecAlloc, fn ChunkFunc) ([]float64, error) {
	switch r.pc.Codec {
	case PayloadF32:
		return r.vecF32(alloc, fn)
	case PayloadTopK:
		return r.vecTopK(alloc, fn)
	}
	return r.vecRaw(alloc, fn)
}

// vecQuery dispatches a model query read (f32 quantizes queries, raw64
// otherwise — mirroring Writer.vecQuery).
func (r *Reader) vecQuery() ([]float64, error) {
	if r.pc.Codec == PayloadF32 {
		return r.vecF32(nil, nil)
	}
	return r.vecRaw(nil, nil)
}

// NextKind reads the next frame's kind byte. Data-plane and control-plane
// kinds (see control.go) share one contiguous range.
func (r *Reader) NextKind() (byte, error) {
	k, err := r.u8()
	if err != nil {
		return 0, err
	}
	if k < KindHello || k > KindState {
		return 0, fmt.Errorf("wire: unknown frame kind %d", k)
	}
	return k, nil
}

// ReadHello decodes a handshake body (after NextKind returned KindHello).
func (r *Reader) ReadHello() (Hello, error) {
	w, err := r.u32()
	if err != nil {
		return Hello{}, err
	}
	codec, err := r.u8()
	if err != nil {
		return Hello{}, err
	}
	if codec > byte(PayloadTopK) {
		return Hello{}, fmt.Errorf("wire: unknown payload codec byte %d in hello", codec)
	}
	topk, err := r.u32()
	if err != nil {
		return Hello{}, err
	}
	chunk, err := r.u32()
	if err != nil {
		return Hello{}, err
	}
	shards, err := r.u32()
	if err != nil {
		return Hello{}, err
	}
	return Hello{Worker: int(w), Codec: PayloadCodec(codec), TopK: int(topk), Chunk: int(chunk), Shards: int(shards)}, nil
}

// ReadModel decodes a model body (after NextKind returned KindModel).
func (r *Reader) ReadModel() (Model, error) {
	iter, err := r.i64()
	if err != nil {
		return Model{}, err
	}
	level, err := r.u32()
	if err != nil {
		return Model{}, err
	}
	q, err := r.vecQuery()
	if err != nil {
		return Model{}, err
	}
	return Model{Iter: int(iter), Level: int(level), Query: q}, nil
}

// ReadReply decodes a reply body (after NextKind returned KindReply).
func (r *Reader) ReadReply() (Reply, error) {
	var rep Reply
	err := r.ReadReplyInto(&rep, nil)
	return rep, err
}

// ReadReplyInto decodes a reply body into rep, reusing rep's Msgs backing
// array when it has capacity and drawing payload buffers from alloc — the
// buffer-reuse read path the TCP master uses to deserialize replies straight
// into pooled gradient buffers. alloc may be nil (fresh allocations). On
// error rep's contents are unspecified. Nil vectors on the wire (the nilLen
// sentinel) decode to nil without consulting alloc.
func (r *Reader) ReadReplyInto(rep *Reply, alloc VecAlloc) error {
	return r.ReadReplyChunks(rep, alloc, nil)
}

// ReadReplyChunks is ReadReplyInto with streaming decode: onChunk (may be
// nil) observes each payload slice as soon as its elements are decoded, so
// the caller can fold chunk slices into a combination buffer while later
// chunks of the same reply are still in flight on the connection. The slice
// passed to onChunk is owned by the reply being decoded; the callback must
// not retain it.
func (r *Reader) ReadReplyChunks(rep *Reply, alloc VecAlloc, onChunk ChunkFunc) error {
	iter, err := r.i64()
	if err != nil {
		return err
	}
	worker, err := r.u32()
	if err != nil {
		return err
	}
	compute, err := r.f64()
	if err != nil {
		return err
	}
	nmsgs, err := r.u32()
	if err != nil {
		return err
	}
	if nmsgs > 1<<20 {
		return fmt.Errorf("wire: message count %d exceeds limit", nmsgs)
	}
	rep.Iter = int(iter)
	rep.Worker = int(worker)
	rep.Compute = compute
	if cap(rep.Msgs) < int(nmsgs) {
		rep.Msgs = make([]Msg, nmsgs)
	} else {
		rep.Msgs = rep.Msgs[:nmsgs]
	}
	for i := range rep.Msgs {
		from, err := r.u32()
		if err != nil {
			return err
		}
		tag, err := r.i64()
		if err != nil {
			return err
		}
		units, err := r.f64()
		if err != nil {
			return err
		}
		vec, err := r.vecReply(alloc, onChunk)
		if err != nil {
			return err
		}
		imag, err := r.vecReply(alloc, onChunk)
		if err != nil {
			return err
		}
		rep.Msgs[i] = Msg{From: int(from), Tag: int(tag), Units: units, Vec: vec, Imag: imag}
	}
	return nil
}
