package wire

import (
	"bytes"
	"strings"
	"testing"
)

// TestControlFrameRoundTrips drives every control frame through a shared
// stream and checks both the kind dispatch and the decoded bodies.
func TestControlFrameRoundTrips(t *testing.T) {
	join := Join{Name: "worker-7"}
	assign := Assign{Job: 42, Index: 3, Port: 61234, Spec: []byte(`{"workers":4}`)}
	idle := Idle{Job: 42, Err: "lease torn down"}
	submit := Submit{Spec: []byte(`{"scheme":"bcc"}`)}
	state := State{Job: 9, Err: "", Status: []byte(`{"state":"running"}`)}

	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteJoin(join); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteAssign(assign); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteIdle(idle); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSubmit(submit); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteStatus(17); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteCancel(18); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteState(state); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	expect := func(kind byte) {
		t.Helper()
		k, err := r.NextKind()
		if err != nil {
			t.Fatalf("NextKind: %v", err)
		}
		if k != kind {
			t.Fatalf("NextKind = %d, want %d", k, kind)
		}
	}

	expect(KindJoin)
	if got, err := r.ReadJoin(); err != nil || got != join {
		t.Fatalf("ReadJoin = %+v, %v (want %+v)", got, err, join)
	}
	expect(KindAssign)
	got, err := r.ReadAssign()
	if err != nil || got.Job != assign.Job || got.Index != assign.Index ||
		got.Port != assign.Port || !bytes.Equal(got.Spec, assign.Spec) {
		t.Fatalf("ReadAssign = %+v, %v (want %+v)", got, err, assign)
	}
	expect(KindIdle)
	if got, err := r.ReadIdle(); err != nil || got != idle {
		t.Fatalf("ReadIdle = %+v, %v (want %+v)", got, err, idle)
	}
	expect(KindSubmit)
	if got, err := r.ReadSubmit(); err != nil || !bytes.Equal(got.Spec, submit.Spec) {
		t.Fatalf("ReadSubmit = %+v, %v (want %+v)", got, err, submit)
	}
	expect(KindStatus)
	if id, err := r.ReadJobID(); err != nil || id != 17 {
		t.Fatalf("ReadJobID = %d, %v (want 17)", id, err)
	}
	expect(KindCancel)
	if id, err := r.ReadJobID(); err != nil || id != 18 {
		t.Fatalf("ReadJobID = %d, %v (want 18)", id, err)
	}
	expect(KindState)
	st, err := r.ReadState()
	if err != nil || st.Job != state.Job || st.Err != state.Err || !bytes.Equal(st.Status, state.Status) {
		t.Fatalf("ReadState = %+v, %v (want %+v)", st, err, state)
	}
}

// TestControlFrameEmptyBlobs pins the empty-string / empty-slice cases.
func TestControlFrameEmptyBlobs(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteJoin(Join{}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteIdle(Idle{Job: 1}); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	if _, err := r.NextKind(); err != nil {
		t.Fatal(err)
	}
	if j, err := r.ReadJoin(); err != nil || j.Name != "" {
		t.Fatalf("ReadJoin = %+v, %v", j, err)
	}
	if _, err := r.NextKind(); err != nil {
		t.Fatal(err)
	}
	if i, err := r.ReadIdle(); err != nil || i.Job != 1 || i.Err != "" {
		t.Fatalf("ReadIdle = %+v, %v", i, err)
	}
}

// TestControlFrameTruncation checks that every strict prefix of a control
// frame errors out cleanly instead of succeeding or panicking.
func TestControlFrameTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteAssign(Assign{Job: 7, Index: 1, Port: 1234, Spec: []byte("spec-bytes")}); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	for cut := 0; cut < len(frame); cut++ {
		r := NewReader(bytes.NewReader(frame[:cut]))
		if _, err := r.NextKind(); err != nil {
			continue
		}
		if _, err := r.ReadAssign(); err == nil {
			t.Fatalf("reading a %d-byte prefix of a %d-byte assign frame succeeded", cut, len(frame))
		}
	}
}

// TestBlobCap checks the blob length guard on both ends.
func TestBlobCap(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteSubmit(Submit{Spec: make([]byte, maxBlobLen+1)}); err == nil ||
		!strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized blob write err = %v, want length guard", err)
	}
	// A forged oversized length prefix must be rejected before allocating.
	buf.Reset()
	buf.WriteByte(KindSubmit)
	buf.Write([]byte{0xff, 0xff, 0xff, 0x7f}) // ~2 GiB little-endian
	r := NewReader(&buf)
	if _, err := r.NextKind(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadSubmit(); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("forged blob length err = %v, want length guard", err)
	}
}

// TestNextKindRange pins the accepted kind range after the control-plane
// extension: 1..10 dispatch, everything else errors.
func TestNextKindRange(t *testing.T) {
	for k := byte(0); k < 16; k++ {
		r := NewReader(bytes.NewReader([]byte{k}))
		got, err := r.NextKind()
		if k >= KindHello && k <= KindState {
			if err != nil || got != k {
				t.Fatalf("NextKind(%d) = %d, %v; want %d, nil", k, got, err, k)
			}
		} else if err == nil {
			t.Fatalf("NextKind(%d) accepted an unknown kind", k)
		}
	}
}
