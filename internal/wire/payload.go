package wire

import (
	"fmt"
	"math"
	"slices"
)

// PayloadCodec selects how vector payloads are represented on the wire and,
// for the lossy codecs, the canonical in-process transform every runtime
// applies so results stay bit-identical whether or not bytes actually cross
// a socket.
//
// The three codecs:
//
//   - PayloadRaw64: today's format — dense little-endian float64 words,
//     bit-exact, the default.
//   - PayloadF32: dense float32 words. The canonical transform rounds each
//     element to float32 and widens back (float64(float32(v))), so a wire
//     round trip reproduces the in-process transform exactly.
//   - PayloadTopK: the K largest-|v| coordinates as sorted index+value
//     pairs (u32 index, f32 value); all other coordinates decode to zero.
//     Selection happens on the raw float64 magnitudes BEFORE float32
//     rounding, with ties broken toward the lower index, so every runtime
//     keeps the same set.
//
// Queries (model broadcasts) are only ever dense: PayloadF32 quantizes them,
// PayloadTopK leaves them raw64 (sparsifying the iterate would change the
// algorithm, not just the gradient message).
type PayloadCodec uint8

// Payload codecs, in wire-encoding order (the codec byte in the hello frame).
const (
	PayloadRaw64 PayloadCodec = iota
	PayloadF32
	PayloadTopK
)

// ParsePayloadCodec maps a codec name to its value. The empty string is
// PayloadRaw64 so zero-valued configs mean "uncompressed".
func ParsePayloadCodec(name string) (PayloadCodec, error) {
	switch name {
	case "", "raw64":
		return PayloadRaw64, nil
	case "f32":
		return PayloadF32, nil
	case "topk":
		return PayloadTopK, nil
	}
	return 0, fmt.Errorf("wire: unknown payload codec %q (known: %v)", name, PayloadCodecNames())
}

// PayloadCodecNames lists the recognized codec names.
func PayloadCodecNames() []string { return []string{"raw64", "f32", "topk"} }

func (c PayloadCodec) String() string {
	switch c {
	case PayloadRaw64:
		return "raw64"
	case PayloadF32:
		return "f32"
	case PayloadTopK:
		return "topk"
	}
	return fmt.Sprintf("PayloadCodec(%d)", uint8(c))
}

// DefaultChunk is the number of float64 elements staged per bulk read/write
// chunk (4 KiB at raw64 width): large enough to amortize the copy, small
// enough that per-codec scratch stays modest and a corrupt length prefix
// cannot force a huge transient buffer. It is also the streaming granularity
// of ReadReplyChunks — each decoded chunk is handed to the caller as a slice.
const DefaultChunk = 512

// maxChunk bounds configured chunk sizes so scratch buffers stay sane.
const maxChunk = 1 << 20

// PayloadConfig carries a codec plus its parameters. The zero value is
// raw64 with the default chunk size.
type PayloadConfig struct {
	Codec PayloadCodec
	TopK  int // coordinates kept per vector under PayloadTopK
	Chunk int // elements per framing chunk; <=0 means DefaultChunk
}

// ChunkElems returns the effective framing chunk size in elements — the
// configured Chunk normalized (<=0 becomes DefaultChunk, oversize clamped).
// Both ends of a connection must agree on it; handshake validation compares
// this normalized value so "default" and an explicit 512 match.
func (c PayloadConfig) ChunkElems() int { return c.chunkElems() }

// chunkElems returns the normalized chunk size in elements.
func (c PayloadConfig) chunkElems() int {
	if c.Chunk <= 0 {
		return DefaultChunk
	}
	if c.Chunk > maxChunk {
		return maxChunk
	}
	return c.Chunk
}

// effK is the effective number of kept coordinates for an n-element vector.
func (c PayloadConfig) effK(n int) int {
	k := c.TopK
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}

// VecBytes is the payload byte cost of an n-element vector under this codec,
// excluding framing prefixes — the same element-only accounting the cluster
// layer has always used for its modelled per-iteration byte counts.
func (c PayloadConfig) VecBytes(n int) int {
	switch c.Codec {
	case PayloadF32:
		return 4 * n
	case PayloadTopK:
		return 8 * c.effK(n) // u32 index + f32 value per kept coordinate
	}
	return 8 * n
}

// VecCoder applies a payload codec's canonical in-process transform. The
// runtimes that never serialize (sim, in-process channels) run payloads
// through a VecCoder so their results are bit-identical to a TCP run with
// the same codec. A VecCoder owns reusable selection scratch and is not safe
// for concurrent use; each goroutine that encodes needs its own.
type VecCoder struct {
	cfg PayloadConfig
	idx []int32 // top-k selection scratch: heap, then sorted ascending
}

// NewVecCoder returns a coder for cfg. A raw64 coder is a no-op.
func NewVecCoder(cfg PayloadConfig) *VecCoder { return &VecCoder{cfg: cfg} }

// ApplyQuery transforms a model query in place. Only PayloadF32 touches
// queries; PayloadTopK ships them dense.
func (c *VecCoder) ApplyQuery(v []float64) {
	if c != nil && c.cfg.Codec == PayloadF32 {
		QuantizeF32(v)
	}
}

// ApplyReply transforms a reply payload vector in place: quantize (f32),
// sparsify+quantize (topk), or nothing (raw64). Nil slices are fine.
func (c *VecCoder) ApplyReply(v []float64) {
	if c == nil || v == nil {
		return
	}
	switch c.cfg.Codec {
	case PayloadF32:
		QuantizeF32(v)
	case PayloadTopK:
		c.sparsify(v)
	}
}

// QuantizeF32 rounds every element to float32 precision in place. This is
// the canonical f32 transform: a wire round trip through float32 words
// decodes to exactly these values.
func QuantizeF32(v []float64) {
	for i, x := range v {
		v[i] = float64(float32(x))
	}
}

// sparsify keeps the K largest-|v| coordinates (ties → lower index),
// quantizes them to float32 precision, and zeroes the rest.
func (c *VecCoder) sparsify(v []float64) {
	k := c.cfg.effK(len(v))
	if k >= len(v) {
		QuantizeF32(v)
		return
	}
	if k == 0 {
		for i := range v {
			v[i] = 0
		}
		return
	}
	kept := c.Select(v)
	j := 0
	for i := range v {
		if j < len(kept) && kept[j] == int32(i) {
			v[i] = float64(float32(v[i]))
			j++
		} else {
			v[i] = 0
		}
	}
}

// Select returns the indices of the K largest-|v| coordinates in ascending
// index order, breaking magnitude ties toward the lower index. The returned
// slice aliases the coder's scratch and is valid until the next call.
// Selection runs on the raw float64 magnitudes so it is independent of any
// later quantization.
func (c *VecCoder) Select(v []float64) []int32 {
	k := c.cfg.effK(len(v))
	if k == 0 {
		return c.idx[:0]
	}
	if cap(c.idx) < k {
		c.idx = make([]int32, k)
	}
	h := c.idx[:k]
	for i := range h {
		h[i] = int32(i)
	}
	// Min-heap on (|v[i]|, -i): the root is the weakest kept coordinate, so
	// a later candidate replaces it only when strictly stronger (or equal
	// magnitude at a lower index — impossible for later candidates, which
	// makes ties resolve to the earlier index).
	for i := k/2 - 1; i >= 0; i-- {
		siftDown(v, h, i)
	}
	for i := k; i < len(v); i++ {
		if keptLess(v, h[0], int32(i)) {
			h[0] = int32(i)
			siftDown(v, h, 0)
		}
	}
	slices.Sort(h)
	return h
}

// keptLess reports whether coordinate a is a weaker keep than b: smaller
// magnitude, or equal magnitude at a higher index.
func keptLess(v []float64, a, b int32) bool {
	va, vb := math.Abs(v[a]), math.Abs(v[b])
	if va != vb {
		return va < vb
	}
	return a > b
}

func siftDown(v []float64, h []int32, i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		m := l
		if r := l + 1; r < len(h) && keptLess(v, h[r], h[l]) {
			m = r
		}
		if !keptLess(v, h[m], h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}
