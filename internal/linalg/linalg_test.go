package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"bcc/internal/rngutil"
	"bcc/internal/vecmath"
)

func randMatrix(rng *rngutil.RNG, rows, cols int) *vecmath.Matrix {
	a := vecmath.NewMatrix(rows, cols)
	for i := range a.Data {
		a.Data[i] = rng.Normal()
	}
	return a
}

func TestSolveLUExact(t *testing.T) {
	a := vecmath.NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	x, err := SolveLU(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	// 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("SolveLU = %v", x)
	}
}

func TestSolveLURandomRoundTrip(t *testing.T) {
	rng := rngutil.New(10)
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		a := randMatrix(rng, n, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.Normal()
		}
		b := vecmath.Gemv(a, want)
		got, err := SolveLU(a, b)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if d := vecmath.MaxAbsDiff(got, want); d > 1e-8 {
			t.Fatalf("n=%d: round-trip error %v", n, d)
		}
	}
}

func TestSolveLUSingular(t *testing.T) {
	a := vecmath.NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := SolveLU(a, []float64{1, 2}); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestSolveLUDoesNotMutateInputs(t *testing.T) {
	rng := rngutil.New(11)
	a := randMatrix(rng, 5, 5)
	aCopy := a.Clone()
	b := []float64{1, 2, 3, 4, 5}
	bCopy := vecmath.Clone(b)
	if _, err := SolveLU(a, b); err != nil {
		t.Fatal(err)
	}
	if vecmath.MaxAbsDiff(a.Data, aCopy.Data) != 0 {
		t.Fatal("SolveLU mutated A")
	}
	if vecmath.MaxAbsDiff(b, bCopy) != 0 {
		t.Fatal("SolveLU mutated b")
	}
}

func TestLeastSquaresExactSquare(t *testing.T) {
	rng := rngutil.New(12)
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(25)
		a := randMatrix(rng, n, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.Normal()
		}
		b := vecmath.Gemv(a, want)
		got, err := LeastSquares(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if d := vecmath.MaxAbsDiff(got, want); d > 1e-8 {
			t.Fatalf("n=%d: error %v", n, d)
		}
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 2x + 1 from noiseless samples; LS must recover it exactly.
	a := vecmath.NewMatrix(5, 2)
	b := make([]float64, 5)
	for i := 0; i < 5; i++ {
		x := float64(i)
		a.Set(i, 0, x)
		a.Set(i, 1, 1)
		b[i] = 2*x + 1
	}
	got, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-2) > 1e-12 || math.Abs(got[1]-1) > 1e-12 {
		t.Fatalf("LS fit = %v", got)
	}
}

func TestLeastSquaresResidualOrthogonality(t *testing.T) {
	// The LS residual must be orthogonal to the column space.
	rng := rngutil.New(13)
	for trial := 0; trial < 20; trial++ {
		m := 10 + rng.Intn(20)
		n := 1 + rng.Intn(9)
		a := randMatrix(rng, m, n)
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.Normal()
		}
		x, err := LeastSquares(a, b)
		if err != nil {
			t.Fatal(err)
		}
		r := vecmath.Sub(vecmath.Gemv(a, x), b)
		// A^T r == 0.
		atr := vecmath.GemvT(a, r)
		if vecmath.NormInf(atr) > 1e-8 {
			t.Fatalf("residual not orthogonal: |A^T r|_inf = %v", vecmath.NormInf(atr))
		}
	}
}

func TestQRRankDetection(t *testing.T) {
	a := vecmath.NewMatrix(3, 2)
	// Second column is 2x the first -> rank 1.
	for i := 0; i < 3; i++ {
		a.Set(i, 0, float64(i+1))
		a.Set(i, 1, 2*float64(i+1))
	}
	q, err := NewQR(a)
	if err != nil {
		t.Fatal(err)
	}
	if q.FullRank() {
		t.Fatal("rank-deficient matrix reported full rank")
	}
	if _, err := q.Solve([]float64{1, 2, 3}); err == nil {
		t.Fatal("solve on rank-deficient QR should fail")
	}
}

func TestQRShapeError(t *testing.T) {
	if _, err := NewQR(vecmath.NewMatrix(2, 3)); err == nil {
		t.Fatal("QR with rows < cols should fail")
	}
}

func TestMinNormRowSolve(t *testing.T) {
	// Find y with y^T A = c^T; verify the constraint and minimality against
	// a brute-force check on a small case.
	rng := rngutil.New(14)
	for trial := 0; trial < 30; trial++ {
		k := 5 + rng.Intn(10)
		n := 1 + rng.Intn(4)
		a := randMatrix(rng, k, n)
		c := make([]float64, n)
		for i := range c {
			c[i] = rng.Normal()
		}
		y, err := MinNormRowSolve(a, c)
		if err != nil {
			t.Fatal(err)
		}
		// Check y^T A = c.
		got := vecmath.GemvT(a, y)
		if d := vecmath.MaxAbsDiff(got, c); d > 1e-8 {
			t.Fatalf("constraint violated by %v", d)
		}
		// Minimum-norm solutions lie in the column space of A: y = A z.
		z, err := LeastSquares(a, y)
		if err != nil {
			t.Fatal(err)
		}
		back := vecmath.Gemv(a, z)
		if d := vecmath.MaxAbsDiff(back, y); d > 1e-6 {
			t.Fatalf("solution not in column space (distance %v)", d)
		}
	}
}

func TestResidualHelper(t *testing.T) {
	a := vecmath.NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, 1)
	if r := Residual(a, []float64{1, 2}, []float64{1, 2}); r != 0 {
		t.Fatalf("identity residual = %v", r)
	}
}

// Property: for any invertible-ish random system, SolveLU and LeastSquares
// agree.
func TestSolversAgreeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rngutil.New(seed)
		n := 2 + rng.Intn(12)
		a := randMatrix(rng, n, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.Normal()
		}
		x1, err1 := SolveLU(a, b)
		x2, err2 := LeastSquares(a, b)
		if err1 != nil || err2 != nil {
			// Random Gaussian matrices are almost surely nonsingular; treat
			// a singular draw as a vacuous pass.
			return true
		}
		return vecmath.MaxAbsDiff(x1, x2) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
