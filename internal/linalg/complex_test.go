package linalg

import (
	"math"
	"math/cmplx"
	"testing"

	"bcc/internal/rngutil"
)

func randCMatrix(rng *rngutil.RNG, rows, cols int) *CMatrix {
	a := NewCMatrix(rows, cols)
	for i := range a.Data {
		a.Data[i] = complex(rng.Normal(), rng.Normal())
	}
	return a
}

func cMaxAbsDiff(x, y []complex128) float64 {
	var m float64
	for i := range x {
		if d := cmplx.Abs(x[i] - y[i]); d > m {
			m = d
		}
	}
	return m
}

func TestCSolveLURoundTrip(t *testing.T) {
	rng := rngutil.New(30)
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(20)
		a := randCMatrix(rng, n, n)
		want := make([]complex128, n)
		for i := range want {
			want[i] = complex(rng.Normal(), rng.Normal())
		}
		b := make([]complex128, n)
		for i := 0; i < n; i++ {
			var s complex128
			for j := 0; j < n; j++ {
				s += a.At(i, j) * want[j]
			}
			b[i] = s
		}
		got, err := CSolveLU(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if d := cMaxAbsDiff(got, want); d > 1e-8 {
			t.Fatalf("n=%d: error %v", n, d)
		}
	}
}

func TestCSolveLUSingular(t *testing.T) {
	a := NewCMatrix(2, 2)
	a.Set(0, 0, 1+1i)
	a.Set(0, 1, 2+2i)
	a.Set(1, 0, 2+2i)
	a.Set(1, 1, 4+4i)
	if _, err := CSolveLU(a, []complex128{1, 2}); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestCSolveLUDoesNotMutate(t *testing.T) {
	rng := rngutil.New(31)
	a := randCMatrix(rng, 4, 4)
	aCopy := a.Clone()
	b := []complex128{1, 2, 3, 4}
	if _, err := CSolveLU(a, b); err != nil {
		t.Fatal(err)
	}
	if cMaxAbsDiff(a.Data, aCopy.Data) != 0 {
		t.Fatal("CSolveLU mutated A")
	}
}

func TestCMinNormRowSolveSquare(t *testing.T) {
	rng := rngutil.New(32)
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(12)
		a := randCMatrix(rng, n, n)
		c := make([]complex128, n)
		for i := range c {
			c[i] = complex(rng.Normal(), rng.Normal())
		}
		y, err := CMinNormRowSolve(a, c)
		if err != nil {
			t.Fatal(err)
		}
		// Check y^T A = c.
		got := make([]complex128, n)
		for j := 0; j < n; j++ {
			var s complex128
			for i := 0; i < n; i++ {
				s += y[i] * a.At(i, j)
			}
			got[j] = s
		}
		if d := cMaxAbsDiff(got, c); d > 1e-7 {
			t.Fatalf("constraint violated by %v", d)
		}
	}
}

func TestCMinNormRowSolveOverdetermined(t *testing.T) {
	rng := rngutil.New(33)
	k, n := 9, 4
	a := randCMatrix(rng, k, n)
	c := make([]complex128, n)
	for i := range c {
		c[i] = complex(rng.Normal(), rng.Normal())
	}
	y, err := CMinNormRowSolve(a, c)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]complex128, n)
	for j := 0; j < n; j++ {
		var s complex128
		for i := 0; i < k; i++ {
			s += y[i] * a.At(i, j)
		}
		got[j] = s
	}
	if d := cMaxAbsDiff(got, c); d > 1e-7 {
		t.Fatalf("constraint violated by %v", d)
	}
}

func TestCMinNormRowSolveUnderdetermined(t *testing.T) {
	a := NewCMatrix(1, 3)
	if _, err := CMinNormRowSolve(a, []complex128{1, 2, 3}); err == nil {
		t.Fatal("underdetermined case should fail")
	}
}

func TestRootOfUnity(t *testing.T) {
	n := 8
	// omega^n == 1.
	w := RootOfUnity(1, n)
	p := complex(1, 0)
	for i := 0; i < n; i++ {
		p *= w
	}
	if cmplx.Abs(p-1) > 1e-12 {
		t.Fatalf("omega^n = %v, want 1", p)
	}
	// Sum of all n-th roots is zero.
	var s complex128
	for k := 0; k < n; k++ {
		s += RootOfUnity(k, n)
	}
	if cmplx.Abs(s) > 1e-12 {
		t.Fatalf("sum of roots = %v, want 0", s)
	}
}

func TestPolyFromRoots(t *testing.T) {
	// (x-1)(x-2) = x^2 - 3x + 2
	c := PolyFromRoots([]complex128{1, 2})
	want := []complex128{2, -3, 1}
	if cMaxAbsDiff(c, want) > 1e-12 {
		t.Fatalf("PolyFromRoots = %v", c)
	}
	// Leading coefficient always 1; polynomial vanishes at each root.
	roots := []complex128{1i, -2, 3 + 0.5i}
	coeffs := PolyFromRoots(roots)
	if cmplx.Abs(coeffs[len(coeffs)-1]-1) > 1e-12 {
		t.Fatal("leading coefficient must be 1")
	}
	for _, r := range roots {
		var v, x complex128 = 0, 1
		for _, co := range coeffs {
			v += co * x
			x *= r
		}
		if cmplx.Abs(v) > 1e-9 {
			t.Fatalf("polynomial does not vanish at root %v: %v", r, v)
		}
	}
}

func TestPolyFromRootsEmpty(t *testing.T) {
	c := PolyFromRoots(nil)
	if len(c) != 1 || c[0] != 1 {
		t.Fatalf("PolyFromRoots(nil) = %v", c)
	}
}

func TestRootOfUnityConjugateSymmetry(t *testing.T) {
	n := 10
	for k := 1; k < n; k++ {
		a := RootOfUnity(k, n)
		b := RootOfUnity(n-k, n)
		if math.Abs(real(a)-real(b)) > 1e-12 || math.Abs(imag(a)+imag(b)) > 1e-12 {
			t.Fatalf("omega^%d and omega^%d are not conjugates", k, n-k)
		}
	}
}
