// Package linalg implements the small dense linear-algebra routines needed
// to construct and decode the coded gradient schemes: LU factorization with
// partial pivoting, Householder QR, least-squares solves (real and complex),
// and helpers for building code matrices.
//
// The matrices involved are tiny by HPC standards (n x n with n = number of
// workers, typically <= a few hundred), so clarity and numerical robustness
// are preferred over blocking/tiling.
package linalg

import (
	"errors"
	"fmt"
	"math"

	"bcc/internal/vecmath"
)

// ErrSingular is returned when a factorization meets an (effectively)
// singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// SolveLU solves A x = b via LU decomposition with partial pivoting.
// A is n x n (row-major), b has length n. A and b are not modified.
func SolveLU(a *vecmath.Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("linalg: SolveLU needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("linalg: SolveLU rhs length %d != %d", len(b), n)
	}
	lu := a.Clone()
	x := vecmath.Clone(b)
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	for k := 0; k < n; k++ {
		// Partial pivot: largest |entry| in column k at or below the diagonal.
		p, maxv := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > maxv {
				p, maxv = i, v
			}
		}
		if maxv == 0 || math.IsNaN(maxv) {
			return nil, ErrSingular
		}
		if p != k {
			rk, rp := lu.Row(k), lu.Row(p)
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			x[k], x[p] = x[p], x[k]
			piv[k], piv[p] = piv[p], piv[k]
		}
		inv := 1 / lu.At(k, k)
		for i := k + 1; i < n; i++ {
			f := lu.At(i, k) * inv
			lu.Set(i, k, f)
			if f == 0 {
				continue
			}
			ri, rk := lu.Row(i), lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= f * rk[j]
			}
			x[i] -= f * x[k]
		}
	}
	// Back substitution on U.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		ri := lu.Row(i)
		for j := i + 1; j < n; j++ {
			s -= ri[j] * x[j]
		}
		d := ri[i]
		if d == 0 {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

// QR holds a Householder QR factorization of an m x n matrix with m >= n.
type QR struct {
	m, n int
	// qr stores R in the upper triangle and the Householder vectors below
	// the diagonal (LAPACK-style compact form).
	qr   *vecmath.Matrix
	rdia []float64 // diagonal of R (kept separately for sign bookkeeping)
}

// NewQR factors a (m x n, m >= n) by Householder reflections. a is copied.
func NewQR(a *vecmath.Matrix) (*QR, error) {
	m, n := a.Rows, a.Cols
	if m < n {
		return nil, fmt.Errorf("linalg: QR needs rows >= cols, got %dx%d", m, n)
	}
	qr := a.Clone()
	rdia := make([]float64, n)
	for k := 0; k < n; k++ {
		// Norm of column k below (and including) the diagonal.
		var nrm float64
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, qr.At(i, k))
		}
		if nrm == 0 {
			rdia[k] = 0
			continue
		}
		if qr.At(k, k) < 0 {
			nrm = -nrm
		}
		for i := k; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)/nrm)
		}
		qr.Set(k, k, qr.At(k, k)+1)
		// Apply the reflector to the remaining columns.
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s = -s / qr.At(k, k)
			for i := k; i < m; i++ {
				qr.Set(i, j, qr.At(i, j)+s*qr.At(i, k))
			}
		}
		rdia[k] = -nrm
	}
	return &QR{m: m, n: n, qr: qr, rdia: rdia}, nil
}

// FullRank reports whether R has no (near-)zero diagonal entries relative to
// the largest one.
func (q *QR) FullRank() bool {
	var maxd float64
	for _, d := range q.rdia {
		if a := math.Abs(d); a > maxd {
			maxd = a
		}
	}
	if maxd == 0 {
		return false
	}
	tol := maxd * 1e-12 * float64(q.m)
	for _, d := range q.rdia {
		if math.Abs(d) <= tol {
			return false
		}
	}
	return true
}

// Solve returns the least-squares solution x minimizing ||A x - b||_2.
// b has length m; the result has length n.
func (q *QR) Solve(b []float64) ([]float64, error) {
	if len(b) != q.m {
		return nil, fmt.Errorf("linalg: QR solve rhs length %d != %d", len(b), q.m)
	}
	if !q.FullRank() {
		return nil, ErrSingular
	}
	y := vecmath.Clone(b)
	// Apply Q^T to b.
	for k := 0; k < q.n; k++ {
		if q.qr.At(k, k) == 0 {
			continue
		}
		var s float64
		for i := k; i < q.m; i++ {
			s += q.qr.At(i, k) * y[i]
		}
		s = -s / q.qr.At(k, k)
		for i := k; i < q.m; i++ {
			y[i] += s * q.qr.At(i, k)
		}
	}
	// Back-substitute R x = y[:n].
	x := make([]float64, q.n)
	for i := q.n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < q.n; j++ {
			s -= q.qr.At(i, j) * x[j]
		}
		x[i] = s / q.rdia[i]
	}
	return x, nil
}

// LeastSquares minimizes ||A x - b||_2 by Householder QR. A is m x n with
// m >= n and full column rank.
func LeastSquares(a *vecmath.Matrix, b []float64) ([]float64, error) {
	q, err := NewQR(a)
	if err != nil {
		return nil, err
	}
	return q.Solve(b)
}

// MinNormRowSolve finds y minimizing ||y||_2 subject to y^T A = c^T, i.e. a
// (minimum-norm) solution of A^T y = c. A is k x n with k >= n and full
// column rank is NOT required of A^T; we solve the consistent system via the
// normal equations of the transpose using QR on A^T's transpose:
// A^T y = c with A^T (n x k) wide. The minimum-norm solution is
// y = A (A^T A)^{-1} c, computed stably through QR of A.
func MinNormRowSolve(a *vecmath.Matrix, c []float64) ([]float64, error) {
	// a: k x n, want y (len k) with a^T y = c (len n).
	if len(c) != a.Cols {
		return nil, fmt.Errorf("linalg: MinNormRowSolve rhs length %d != %d", len(c), a.Cols)
	}
	q, err := NewQR(a)
	if err != nil {
		return nil, err
	}
	if !q.FullRank() {
		return nil, ErrSingular
	}
	// Solve R^T z = c (forward substitution), then y = Q [z; 0].
	n := a.Cols
	z := make([]float64, n)
	for i := 0; i < n; i++ {
		s := c[i]
		for j := 0; j < i; j++ {
			s -= q.qr.At(j, i) * z[j] // R[j][i], j<i
		}
		z[i] = s / q.rdia[i]
	}
	// y = Q * [z; 0]: apply reflectors in reverse order to the padded vector.
	y := make([]float64, a.Rows)
	copy(y, z)
	for k := n - 1; k >= 0; k-- {
		if q.qr.At(k, k) == 0 {
			continue
		}
		var s float64
		for i := k; i < a.Rows; i++ {
			s += q.qr.At(i, k) * y[i]
		}
		s = -s / q.qr.At(k, k)
		for i := k; i < a.Rows; i++ {
			y[i] += s * q.qr.At(i, k)
		}
	}
	return y, nil
}

// MatVec multiplies (rows x cols) matrix a by x (len cols).
func MatVec(a *vecmath.Matrix, x []float64) []float64 { return vecmath.Gemv(a, x) }

// Residual returns max_i |(A x)_i - b_i| as a quick quality check.
func Residual(a *vecmath.Matrix, x, b []float64) float64 {
	ax := vecmath.Gemv(a, x)
	return vecmath.MaxAbsDiff(ax, b)
}
