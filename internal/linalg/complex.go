package linalg

import (
	"fmt"
	"math"
	"math/cmplx"
)

// CMatrix is a dense row-major complex matrix used by the cyclic-MDS code
// construction (roots-of-unity circulants).
type CMatrix struct {
	Rows, Cols int
	Data       []complex128
}

// NewCMatrix allocates a zeroed rows x cols complex matrix.
func NewCMatrix(rows, cols int) *CMatrix {
	if rows < 0 || cols < 0 {
		panic("linalg: NewCMatrix with negative dimension")
	}
	return &CMatrix{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// At returns element (i, j).
func (m *CMatrix) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *CMatrix) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Row returns row i sharing storage.
func (m *CMatrix) Row(i int) []complex128 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *CMatrix) Clone() *CMatrix {
	c := NewCMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// CSolveLU solves the square complex system A x = b by Gaussian elimination
// with partial pivoting (pivot by modulus). A and b are not modified.
func CSolveLU(a *CMatrix, b []complex128) ([]complex128, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("linalg: CSolveLU needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("linalg: CSolveLU rhs length %d != %d", len(b), n)
	}
	lu := a.Clone()
	x := make([]complex128, n)
	copy(x, b)
	for k := 0; k < n; k++ {
		p, maxv := k, cmplx.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := cmplx.Abs(lu.At(i, k)); v > maxv {
				p, maxv = i, v
			}
		}
		if maxv == 0 || math.IsNaN(maxv) {
			return nil, ErrSingular
		}
		if p != k {
			rk, rp := lu.Row(k), lu.Row(p)
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			x[k], x[p] = x[p], x[k]
		}
		inv := 1 / lu.At(k, k)
		for i := k + 1; i < n; i++ {
			f := lu.At(i, k) * inv
			if f == 0 {
				continue
			}
			ri, rk := lu.Row(i), lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= f * rk[j]
			}
			x[i] -= f * x[k]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		ri := lu.Row(i)
		for j := i + 1; j < n; j++ {
			s -= ri[j] * x[j]
		}
		d := ri[i]
		if d == 0 {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

// CMinNormRowSolve finds y with y^T A = c^T for a k x n complex matrix A
// (k >= n, A of full column rank), i.e. A^T y = c, returning the solution of
// the square head system when k == n and a normal-equations solution
// otherwise: y = conj(A) (A^T conj(A))^{-1} c. For the cyclic-MDS decode the
// system is square (|W| = n - s received workers vs n - s unknown rows), so
// the square path is the common case.
func CMinNormRowSolve(a *CMatrix, c []complex128) ([]complex128, error) {
	k, n := a.Rows, a.Cols
	if len(c) != n {
		return nil, fmt.Errorf("linalg: CMinNormRowSolve rhs length %d != %d", len(c), n)
	}
	if k == n {
		// Square: solve A^T y = c directly.
		at := NewCMatrix(n, k)
		for i := 0; i < k; i++ {
			for j := 0; j < n; j++ {
				at.Set(j, i, a.At(i, j))
			}
		}
		return CSolveLU(at, c)
	}
	if k < n {
		return nil, fmt.Errorf("linalg: CMinNormRowSolve underdetermined: %d rows < %d cols", k, n)
	}
	// Overdetermined in y-count: minimum-norm via y = conj(A) (A^T conj(A))^{-1} c.
	// G = A^T conj(A) is n x n.
	g := NewCMatrix(n, n)
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			var s complex128
			for i := 0; i < k; i++ {
				s += a.At(i, p) * cmplx.Conj(a.At(i, q))
			}
			g.Set(p, q, s)
		}
	}
	z, err := CSolveLU(g, c)
	if err != nil {
		return nil, err
	}
	y := make([]complex128, k)
	for i := 0; i < k; i++ {
		var s complex128
		for j := 0; j < n; j++ {
			s += cmplx.Conj(a.At(i, j)) * z[j]
		}
		y[i] = s
	}
	return y, nil
}

// CLeastSquares solves min_x ||A x - b||_2 for a complex m x n matrix with
// m >= n and full column rank, via the normal equations A^H A x = A^H b.
// The systems arising from the cyclic-MDS decoder are tiny and well scaled
// (entries on the unit circle), so the normal-equation conditioning penalty
// is acceptable; callers should verify the residual.
func CLeastSquares(a *CMatrix, b []complex128) ([]complex128, error) {
	m, n := a.Rows, a.Cols
	if len(b) != m {
		return nil, fmt.Errorf("linalg: CLeastSquares rhs length %d != %d", len(b), m)
	}
	if m < n {
		return nil, fmt.Errorf("linalg: CLeastSquares underdetermined: %d rows < %d cols", m, n)
	}
	// G = A^H A (n x n), rhs = A^H b.
	g := NewCMatrix(n, n)
	rhs := make([]complex128, n)
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			var s complex128
			for i := 0; i < m; i++ {
				s += cmplx.Conj(a.At(i, p)) * a.At(i, q)
			}
			g.Set(p, q, s)
		}
		var s complex128
		for i := 0; i < m; i++ {
			s += cmplx.Conj(a.At(i, p)) * b[i]
		}
		rhs[p] = s
	}
	return CSolveLU(g, rhs)
}

// RootOfUnity returns e^{2*pi*i*k/n}.
func RootOfUnity(k, n int) complex128 {
	theta := 2 * math.Pi * float64(k%n) / float64(n)
	return cmplx.Rect(1, theta)
}

// PolyFromRoots expands prod_j (x - roots[j]) into monomial coefficients,
// lowest degree first; the result has len(roots)+1 entries with leading
// coefficient 1.
func PolyFromRoots(roots []complex128) []complex128 {
	coeffs := []complex128{1}
	for _, r := range roots {
		next := make([]complex128, len(coeffs)+1)
		for i, c := range coeffs {
			next[i] -= r * c // -r * x^i term
			next[i+1] += c   // x^{i+1} term
		}
		coeffs = next
	}
	return coeffs
}
