package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"strings"
	"testing"

	"bcc/internal/cluster"
	"bcc/internal/faults"
	"bcc/internal/rngutil"
	"bcc/internal/vecmath"
)

func TestDefaults(t *testing.T) {
	s := (&Spec{}).withDefaults()
	if s.Scheme != "bcc" || s.Optimizer != "nesterov" || s.Runtime != "sim" {
		t.Fatalf("defaults: %+v", s)
	}
	if s.Examples != 20 || s.Workers != 20 || s.Load != 1 {
		t.Fatalf("size defaults: %+v", s)
	}
	if s.DataPoints != 2000 {
		t.Fatalf("DataPoints default %d", s.DataPoints)
	}
}

func TestNewJobAndRun(t *testing.T) {
	job, err := NewJob(Spec{
		Examples: 10, Workers: 20, Load: 2,
		DataPoints: 100, Dim: 15,
		Iterations: 12, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iters) != 12 {
		t.Fatalf("iterations %d", len(res.Iters))
	}
	if vecmath.Norm2(res.FinalW) == 0 {
		t.Fatal("weights did not move")
	}
	// The trained model should beat the trivial classifier on its own data.
	if acc := job.Accuracy(res.FinalW); acc <= 0.5 {
		t.Fatalf("training accuracy %v", acc)
	}
}

func TestJobReproducible(t *testing.T) {
	run := func() []float64 {
		job, err := NewJob(Spec{Examples: 8, Workers: 16, Load: 2, DataPoints: 64, Dim: 10, Iterations: 8, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		res, err := job.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalW
	}
	if vecmath.MaxAbsDiff(run(), run()) != 0 {
		t.Fatal("same spec+seed produced different weights")
	}
}

func TestSchemesAgreeOnWeights(t *testing.T) {
	// All schemes compute the same mathematical gradient; the learned
	// weights must agree across schemes up to fp noise.
	var ref []float64
	for _, scheme := range []Scheme{SchemeUncoded, SchemeBCC, SchemeCyclicRep, SchemeCyclicMDS, SchemeFractional, SchemeRandomized} {
		job, err := NewJob(Spec{
			Scheme: Scheme(scheme), Examples: 12, Workers: 12, Load: 3,
			DataPoints: 96, Dim: 10, Iterations: 10, Seed: 7,
		})
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		res, err := job.Run()
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if ref == nil {
			ref = res.FinalW
			continue
		}
		if d := vecmath.MaxAbsDiff(ref, res.FinalW); d > 1e-6 {
			t.Fatalf("%s weights differ from uncoded by %v", scheme, d)
		}
	}
}

func TestRuntimesAgree(t *testing.T) {
	run := func(runtime Runtime) []float64 {
		job, err := NewJob(Spec{
			Examples: 8, Workers: 16, Load: 2, DataPoints: 64, Dim: 8,
			Iterations: 6, Seed: 11, Runtime: runtime, TimeScale: 1e-5,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := job.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalW
	}
	sim := run("sim")
	live := run("live")
	tcp := run("tcp")
	if vecmath.MaxAbsDiff(sim, live) != 0 {
		t.Fatal("sim and live disagree")
	}
	if vecmath.MaxAbsDiff(sim, tcp) != 0 {
		t.Fatal("sim and tcp disagree")
	}
}

func TestInvalidSpecs(t *testing.T) {
	if _, err := NewJob(Spec{Scheme: "nope", Examples: 4, Workers: 4, DataPoints: 8, Dim: 2, Iterations: 1, Load: 1}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if _, err := NewJob(Spec{Optimizer: "adamw", Examples: 4, Workers: 4, DataPoints: 8, Dim: 2, Iterations: 1, Load: 1}); err == nil {
		t.Fatal("unknown optimizer accepted")
	}
	job, err := NewJob(Spec{Examples: 4, Workers: 4, DataPoints: 8, Dim: 2, Iterations: 1, Load: 1})
	if err != nil {
		t.Fatal(err)
	}
	job.Spec.Runtime = "quantum"
	if _, err := job.Run(); err == nil {
		t.Fatal("unknown runtime accepted")
	}
}

func TestGDOptimizerPath(t *testing.T) {
	job, err := NewJob(Spec{
		Optimizer: "gd", Examples: 6, Workers: 6, Load: 1,
		DataPoints: 60, Dim: 8, Iterations: 20, Seed: 3, LossEvery: 19,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Iters[19].Loss) {
		t.Fatal("loss not recorded")
	}
	if res.Iters[19].Loss >= math.Log(2) {
		t.Fatalf("GD did not reduce loss below log 2: %v", res.Iters[19].Loss)
	}
}

func TestCheckpointResumeBitExact(t *testing.T) {
	// Running 10 iterations, checkpointing, and resuming for 10 more must
	// reproduce an uninterrupted 20-iteration run bit for bit.
	spec := func(iters int) Spec {
		return Spec{
			Examples: 10, Workers: 20, Load: 2,
			DataPoints: 80, Dim: 12, Iterations: iters, Seed: 55,
		}
	}
	full, err := NewJob(spec(20))
	if err != nil {
		t.Fatal(err)
	}
	fullRes, err := full.Run()
	if err != nil {
		t.Fatal(err)
	}

	first, err := NewJob(spec(10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := first.Run(); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/ckpt.bin"
	if err := first.Checkpoint(path, 10); err != nil {
		t.Fatal(err)
	}

	resumed, err := NewJob(spec(10))
	if err != nil {
		t.Fatal(err)
	}
	completed, err := resumed.RestoreCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if completed != 10 {
		t.Fatalf("completed = %d", completed)
	}
	resRes, err := resumed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d := vecmath.MaxAbsDiff(fullRes.FinalW, resRes.FinalW); d != 0 {
		t.Fatalf("resume diverged from uninterrupted run by %v", d)
	}
}

func TestShardedCheckpointResumeBitExact(t *testing.T) {
	// A sharded job checkpointing after 10 iterations into per-shard files
	// and resuming for 10 more must reproduce an uninterrupted 20-iteration
	// run bit for bit, and the restore must reject a torn shard set.
	spec := func(iters int) Spec {
		return Spec{
			Examples: 10, Workers: 20, Load: 2,
			DataPoints: 80, Dim: 1100, Iterations: iters, Seed: 55,
			MasterShards: 3, WireChunk: 128,
		}
	}
	full, err := NewJob(spec(20))
	if err != nil {
		t.Fatal(err)
	}
	fullRes, err := full.Run()
	if err != nil {
		t.Fatal(err)
	}

	first, err := NewJob(spec(10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := first.Run(); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/ckpt.bin"
	if err := first.CheckpointSharded(path, 10); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 3; s++ {
		if _, err := os.Stat(fmt.Sprintf("%s.shard%d", path, s)); err != nil {
			t.Fatalf("missing shard file %d: %v", s, err)
		}
	}

	resumed, err := NewJob(spec(10))
	if err != nil {
		t.Fatal(err)
	}
	completed, err := resumed.RestoreShardedCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if completed != 10 {
		t.Fatalf("completed = %d", completed)
	}
	resRes, err := resumed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d := vecmath.MaxAbsDiff(fullRes.FinalW, resRes.FinalW); d != 0 {
		t.Fatalf("sharded resume diverged from uninterrupted run by %v", d)
	}

	// Torn set: deleting one shard file must fail the restore, not
	// silently reassemble a partial state.
	if err := os.Remove(path + ".shard1"); err != nil {
		t.Fatal(err)
	}
	torn, err := NewJob(spec(10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := torn.RestoreShardedCheckpoint(path); err == nil {
		t.Fatal("restore of torn shard set succeeded")
	}
}

func TestCheckpointTopologyValidation(t *testing.T) {
	job, err := NewJob(Spec{Examples: 8, Workers: 8, Load: 2, DataPoints: 32, Dim: 6, Iterations: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Run(); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/ckpt.bin"
	if err := job.Checkpoint(path, 2); err != nil {
		t.Fatal(err)
	}
	other, err := NewJob(Spec{Examples: 8, Workers: 8, Load: 2, DataPoints: 32, Dim: 6, Iterations: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.RestoreCheckpoint(path); err == nil {
		t.Fatal("seed mismatch accepted")
	}
}

func TestLatencyThreading(t *testing.T) {
	rng := rngutil.New(4)
	lat, err := cluster.NewShiftExp(16, []cluster.ShiftExpParams{{CommShift: 0.01, CommMu: 1}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	job, err := NewJob(Spec{
		Examples: 8, Workers: 16, Load: 2, DataPoints: 32, Dim: 4,
		Iterations: 5, Seed: 5, Latency: lat, IngressPerUnit: 0.001,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalWall <= 0 {
		t.Fatal("latency did not produce positive wall time")
	}
}

func TestGradNormTolStopsEarly(t *testing.T) {
	spec := Spec{
		Examples: 10, Workers: 10, Load: 2,
		DataPoints: 80, Dim: 12, Iterations: 30, Seed: 21,
	}
	full, err := NewJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	fullRes, err := full.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Pick the norm reached at iteration 10 as the tolerance; the sim is
	// deterministic, so the early-stopped run must halt at the first
	// iteration of the full run whose norm is at or below it.
	tol := fullRes.Iters[10].GradNorm
	firstHit := -1
	for i, it := range fullRes.Iters {
		if it.GradNorm <= tol {
			firstHit = i
			break
		}
	}
	spec.GradNormTol = tol
	job, err := NewJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iters) >= 30 {
		t.Fatalf("gradient tolerance did not stop the run early (%d iterations)", len(res.Iters))
	}
	if got := len(res.Iters) - 1; got != firstHit {
		t.Fatalf("stopped after iteration %d, first tolerable iteration is %d", got, firstHit)
	}
	if last := res.Iters[len(res.Iters)-1].GradNorm; last > tol {
		t.Fatalf("final gradient norm %v above tolerance %v", last, tol)
	}
}

func TestStopWhenComposesWithGradNormTol(t *testing.T) {
	spec := Spec{
		Examples: 10, Workers: 10, Load: 2,
		DataPoints: 80, Dim: 12, Iterations: 30, Seed: 22,
		GradNormTol: 1e-12, // unreachable in 30 iterations
		StopWhen:    func(st cluster.IterStats) bool { return st.Iter >= 2 },
	}
	job, err := NewJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iters) != 3 {
		t.Fatalf("user StopWhen lost under GradNormTol merge: %d iterations", len(res.Iters))
	}
}

func TestAutoCheckpointResumeRoundTrip(t *testing.T) {
	// A run that auto-checkpoints every 5 iterations, "crashes" (is
	// cancelled) after iteration 12, and is resumed from the latest
	// checkpoint must finish bit-for-bit identical to an uninterrupted run.
	path := t.TempDir() + "/auto.ckpt"
	spec := func(iters int) Spec {
		return Spec{
			Examples: 10, Workers: 20, Load: 2,
			DataPoints: 80, Dim: 12, Iterations: iters, Seed: 56,
		}
	}
	full, err := NewJob(spec(20))
	if err != nil {
		t.Fatal(err)
	}
	fullRes, err := full.Run()
	if err != nil {
		t.Fatal(err)
	}

	crashSpec := spec(20)
	crashSpec.CheckpointEvery = 5
	crashSpec.CheckpointPath = path
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	crashSpec.Observer = cluster.ObserverFuncs{Iteration: func(st cluster.IterStats) {
		if st.Iter == 12 {
			cancel()
		}
	}}
	crashed, err := NewJob(crashSpec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := crashed.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	resumed, err := NewJob(spec(20))
	if err != nil {
		t.Fatal(err)
	}
	completed, err := resumed.RestoreCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if completed != 10 {
		t.Fatalf("latest auto-checkpoint holds %d completed iterations, want 10", completed)
	}
	resumed.Spec.Iterations = 20 - completed
	res, err := resumed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d := vecmath.MaxAbsDiff(fullRes.FinalW, res.FinalW); d != 0 {
		t.Fatalf("auto-checkpoint resume diverged from uninterrupted run by %v", d)
	}
}

func TestRunContextCancelledBeforeStart(t *testing.T) {
	job, err := NewJob(Spec{Examples: 8, Workers: 8, Load: 2, DataPoints: 32, Dim: 6, Iterations: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := job.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || len(res.Iters) != 0 {
		t.Fatalf("want empty partial result, got %+v", res)
	}
}

func TestOptionErrorsFailFast(t *testing.T) {
	base := Spec{Examples: 4, Workers: 4, DataPoints: 8, Dim: 2, Iterations: 1, Load: 1}
	cases := []struct {
		name   string
		mutate func(*Spec)
		option string
	}{
		{"scheme", func(s *Spec) { s.Scheme = "nope" }, "Scheme"},
		{"optimizer", func(s *Spec) { s.Optimizer = "adamw" }, "Optimizer"},
		{"runtime", func(s *Spec) { s.Runtime = "quantum" }, "Runtime"},
		{"dropprob", func(s *Spec) { s.DropProb = 1.5 }, "DropProb"},
		{"parallelism", func(s *Spec) { s.ComputeParallelism = -2 }, "ComputeParallelism"},
		{"checkpoint-every", func(s *Spec) { s.CheckpointEvery = -1 }, "CheckpointEvery"},
		{"checkpoint-path", func(s *Spec) { s.CheckpointEvery = 3 }, "CheckpointPath"},
		{"grad-tol", func(s *Spec) { s.GradNormTol = -0.1 }, "GradNormTol"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := base
			tc.mutate(&spec)
			_, err := NewJob(spec)
			if err == nil {
				t.Fatal("misconfigured spec accepted")
			}
			var oe *OptionError
			if !errors.As(err, &oe) {
				t.Fatalf("error %T (%v) is not an *OptionError", err, err)
			}
			if oe.Option != tc.option {
				t.Fatalf("OptionError names %q, want %q", oe.Option, tc.option)
			}
		})
	}
	// Registry-backed errors must list the known values.
	_, err := NewJob(Spec{Scheme: "nope", Examples: 4, Workers: 4, DataPoints: 8, Dim: 2, Iterations: 1, Load: 1})
	var oe *OptionError
	if !errors.As(err, &oe) || len(oe.Known) == 0 {
		t.Fatalf("scheme OptionError carries no known values: %v", err)
	}
}

func TestValidateMethods(t *testing.T) {
	if err := SchemeBCC.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := OptimizerGD.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := RuntimeTCP.Validate(); err != nil {
		t.Fatal(err)
	}
	if Scheme("x").Validate() == nil || Optimizer("x").Validate() == nil || Runtime("x").Validate() == nil {
		t.Fatal("bogus option values validated")
	}
	if got := len(Runtimes()); got != 3 {
		t.Fatalf("Runtimes() lists %d entries", got)
	}
	if got := len(Optimizers()); got != 2 {
		t.Fatalf("Optimizers() lists %d entries", got)
	}
}

func TestResumedAutoCheckpointCountsCumulative(t *testing.T) {
	// Auto-checkpoints written during a RESUMED run must record the
	// cumulative completed count (restored base + this run's iterations),
	// matching what the final Job.Checkpoint path writes.
	path := t.TempDir() + "/cum.ckpt"
	spec := Spec{
		Examples: 10, Workers: 20, Load: 2,
		DataPoints: 80, Dim: 12, Iterations: 10, Seed: 57,
	}
	first, err := NewJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := first.Run(); err != nil {
		t.Fatal(err)
	}
	if err := first.Checkpoint(path, 10); err != nil {
		t.Fatal(err)
	}

	resumedSpec := spec
	resumedSpec.CheckpointEvery = 4
	resumedSpec.CheckpointPath = path
	resumed, err := NewJob(resumedSpec)
	if err != nil {
		t.Fatal(err)
	}
	if completed, err := resumed.RestoreCheckpoint(path); err != nil || completed != 10 {
		t.Fatalf("restore: completed=%d err=%v", completed, err)
	}
	resumed.Spec.Iterations = 10
	if _, err := resumed.Run(); err != nil {
		t.Fatal(err)
	}
	// Last periodic checkpoint fired after 8 iterations of the resumed run.
	check, err := NewJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	completed, err := check.RestoreCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if completed != 18 {
		t.Fatalf("resumed auto-checkpoint recorded %d completed iterations, want cumulative 18", completed)
	}
}

// TestFaultScenarioSpec checks the FaultScenario/FaultSeed plumbing: an
// unknown scenario fails fast with an *OptionError naming the library, a
// known one resolves to a deterministic Job.Faults plan, and the scheduled
// fault events reach the Spec.Observer identically on repeated runs.
func TestFaultScenarioSpec(t *testing.T) {
	if _, err := NewJob(Spec{FaultScenario: "nope"}); err == nil {
		t.Fatal("unknown fault scenario accepted")
	} else {
		var oe *OptionError
		if !errors.As(err, &oe) || oe.Option != "FaultScenario" || len(oe.Known) == 0 {
			t.Fatalf("want *OptionError for FaultScenario with known values, got %v", err)
		}
	}
	if _, err := NewJob(Spec{Faults: &faults.Plan{N: -1}}); err == nil {
		t.Fatal("invalid Spec.Faults plan accepted")
	}

	run := func() ([]string, *cluster.Result) {
		var evs []string
		job, err := NewJob(Spec{
			Examples: 8, Workers: 8, Load: 4,
			DataPoints: 64, Dim: 12,
			Iterations: 6, Seed: 5,
			FaultScenario: "rolling-restart",
			Observer: cluster.ObserverFuncs{Fault: func(ev faults.Event) {
				evs = append(evs, ev.String())
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if job.Faults == nil || job.Faults.N != 8 {
			t.Fatalf("scenario did not resolve onto the job: %+v", job.Faults)
		}
		res, err := job.Run()
		if err != nil {
			t.Fatal(err)
		}
		return evs, res
	}
	evsA, resA := run()
	evsB, resB := run()
	if len(evsA) == 0 {
		t.Fatal("rolling-restart emitted no fault events")
	}
	if strings.Join(evsA, "\n") != strings.Join(evsB, "\n") {
		t.Fatalf("fault traces differ between identical specs:\n%v\n%v", evsA, evsB)
	}
	if d := vecmath.MaxAbsDiff(resA.FinalW, resB.FinalW); d != 0 {
		t.Fatalf("identical faulted specs trained different weights: %v", d)
	}

	// An explicit Spec.Faults plan takes precedence over the scenario name.
	explicit := &faults.Plan{N: 8}
	job, err := NewJob(Spec{
		Examples: 8, Workers: 8, Load: 4, DataPoints: 64, Dim: 12,
		Iterations: 2, Seed: 5,
		Faults: explicit, FaultScenario: "rolling-restart",
	})
	if err != nil {
		t.Fatal(err)
	}
	if job.Faults != explicit {
		t.Fatal("Spec.Faults did not take precedence over FaultScenario")
	}
}
