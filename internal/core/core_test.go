package core

import (
	"math"
	"testing"

	"bcc/internal/cluster"
	"bcc/internal/rngutil"
	"bcc/internal/vecmath"
)

func TestDefaults(t *testing.T) {
	s := (&Spec{}).withDefaults()
	if s.Scheme != "bcc" || s.Optimizer != "nesterov" || s.Runtime != "sim" {
		t.Fatalf("defaults: %+v", s)
	}
	if s.Examples != 20 || s.Workers != 20 || s.Load != 1 {
		t.Fatalf("size defaults: %+v", s)
	}
	if s.DataPoints != 2000 {
		t.Fatalf("DataPoints default %d", s.DataPoints)
	}
}

func TestNewJobAndRun(t *testing.T) {
	job, err := NewJob(Spec{
		Examples: 10, Workers: 20, Load: 2,
		DataPoints: 100, Dim: 15,
		Iterations: 12, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iters) != 12 {
		t.Fatalf("iterations %d", len(res.Iters))
	}
	if vecmath.Norm2(res.FinalW) == 0 {
		t.Fatal("weights did not move")
	}
	// The trained model should beat the trivial classifier on its own data.
	if acc := job.Accuracy(res.FinalW); acc <= 0.5 {
		t.Fatalf("training accuracy %v", acc)
	}
}

func TestJobReproducible(t *testing.T) {
	run := func() []float64 {
		job, err := NewJob(Spec{Examples: 8, Workers: 16, Load: 2, DataPoints: 64, Dim: 10, Iterations: 8, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		res, err := job.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalW
	}
	if vecmath.MaxAbsDiff(run(), run()) != 0 {
		t.Fatal("same spec+seed produced different weights")
	}
}

func TestSchemesAgreeOnWeights(t *testing.T) {
	// All schemes compute the same mathematical gradient; the learned
	// weights must agree across schemes up to fp noise.
	var ref []float64
	for _, scheme := range []string{"uncoded", "bcc", "cyclicrep", "cyclicmds", "fractional", "randomized"} {
		job, err := NewJob(Spec{
			Scheme: scheme, Examples: 12, Workers: 12, Load: 3,
			DataPoints: 96, Dim: 10, Iterations: 10, Seed: 7,
		})
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		res, err := job.Run()
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if ref == nil {
			ref = res.FinalW
			continue
		}
		if d := vecmath.MaxAbsDiff(ref, res.FinalW); d > 1e-6 {
			t.Fatalf("%s weights differ from uncoded by %v", scheme, d)
		}
	}
}

func TestRuntimesAgree(t *testing.T) {
	run := func(runtime string) []float64 {
		job, err := NewJob(Spec{
			Examples: 8, Workers: 16, Load: 2, DataPoints: 64, Dim: 8,
			Iterations: 6, Seed: 11, Runtime: runtime, TimeScale: 1e-5,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := job.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalW
	}
	sim := run("sim")
	live := run("live")
	tcp := run("tcp")
	if vecmath.MaxAbsDiff(sim, live) != 0 {
		t.Fatal("sim and live disagree")
	}
	if vecmath.MaxAbsDiff(sim, tcp) != 0 {
		t.Fatal("sim and tcp disagree")
	}
}

func TestInvalidSpecs(t *testing.T) {
	if _, err := NewJob(Spec{Scheme: "nope", Examples: 4, Workers: 4, DataPoints: 8, Dim: 2, Iterations: 1, Load: 1}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if _, err := NewJob(Spec{Optimizer: "adamw", Examples: 4, Workers: 4, DataPoints: 8, Dim: 2, Iterations: 1, Load: 1}); err == nil {
		t.Fatal("unknown optimizer accepted")
	}
	job, err := NewJob(Spec{Examples: 4, Workers: 4, DataPoints: 8, Dim: 2, Iterations: 1, Load: 1})
	if err != nil {
		t.Fatal(err)
	}
	job.Spec.Runtime = "quantum"
	if _, err := job.Run(); err == nil {
		t.Fatal("unknown runtime accepted")
	}
}

func TestGDOptimizerPath(t *testing.T) {
	job, err := NewJob(Spec{
		Optimizer: "gd", Examples: 6, Workers: 6, Load: 1,
		DataPoints: 60, Dim: 8, Iterations: 20, Seed: 3, LossEvery: 19,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Iters[19].Loss) {
		t.Fatal("loss not recorded")
	}
	if res.Iters[19].Loss >= math.Log(2) {
		t.Fatalf("GD did not reduce loss below log 2: %v", res.Iters[19].Loss)
	}
}

func TestCheckpointResumeBitExact(t *testing.T) {
	// Running 10 iterations, checkpointing, and resuming for 10 more must
	// reproduce an uninterrupted 20-iteration run bit for bit.
	spec := func(iters int) Spec {
		return Spec{
			Examples: 10, Workers: 20, Load: 2,
			DataPoints: 80, Dim: 12, Iterations: iters, Seed: 55,
		}
	}
	full, err := NewJob(spec(20))
	if err != nil {
		t.Fatal(err)
	}
	fullRes, err := full.Run()
	if err != nil {
		t.Fatal(err)
	}

	first, err := NewJob(spec(10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := first.Run(); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/ckpt.bin"
	if err := first.Checkpoint(path, 10); err != nil {
		t.Fatal(err)
	}

	resumed, err := NewJob(spec(10))
	if err != nil {
		t.Fatal(err)
	}
	completed, err := resumed.RestoreCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if completed != 10 {
		t.Fatalf("completed = %d", completed)
	}
	resRes, err := resumed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d := vecmath.MaxAbsDiff(fullRes.FinalW, resRes.FinalW); d != 0 {
		t.Fatalf("resume diverged from uninterrupted run by %v", d)
	}
}

func TestCheckpointTopologyValidation(t *testing.T) {
	job, err := NewJob(Spec{Examples: 8, Workers: 8, Load: 2, DataPoints: 32, Dim: 6, Iterations: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Run(); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/ckpt.bin"
	if err := job.Checkpoint(path, 2); err != nil {
		t.Fatal(err)
	}
	other, err := NewJob(Spec{Examples: 8, Workers: 8, Load: 2, DataPoints: 32, Dim: 6, Iterations: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.RestoreCheckpoint(path); err == nil {
		t.Fatal("seed mismatch accepted")
	}
}

func TestLatencyThreading(t *testing.T) {
	rng := rngutil.New(4)
	lat, err := cluster.NewShiftExp(16, []cluster.ShiftExpParams{{CommShift: 0.01, CommMu: 1}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	job, err := NewJob(Spec{
		Examples: 8, Workers: 16, Load: 2, DataPoints: 32, Dim: 4,
		Iterations: 5, Seed: 5, Latency: lat, IngressPerUnit: 0.001,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalWall <= 0 {
		t.Fatal("latency did not produce positive wall time")
	}
}
