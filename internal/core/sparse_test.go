package core

import (
	"errors"
	"fmt"
	"testing"

	"bcc/internal/coding"
	"bcc/internal/dataset"
	"bcc/internal/rngutil"
	"bcc/internal/vecmath"
)

// TestDenseCSRTrainingBitEqual is the end-to-end sparse conformance
// property: for EVERY registered scheme and optimizer, training on a CSR
// dataset and on its dense expansion (same values, zeros materialized)
// produces bit-identical final weights over random seeded datasets — the
// whole pipeline from worker gradients through encode/decode to the
// optimizer is storage-agnostic.
func TestDenseCSRTrainingBitEqual(t *testing.T) {
	for _, scheme := range coding.Names() {
		for _, opt := range Optimizers() {
			scheme, opt := scheme, opt
			t.Run(fmt.Sprintf("%s/%s", scheme, opt), func(t *testing.T) {
				seed := uint64(900)
				sparse, err := dataset.Generate(dataset.Config{
					N: 48, Dim: 40, Separation: 1.5, Density: 0.25,
				}, rngutil.New(seed))
				if err != nil {
					t.Fatal(err)
				}
				csr, ok := sparse.Sparse()
				if !ok {
					t.Fatal("generator did not produce CSR")
				}
				dense := &dataset.Dataset{X: csr.ToDense(), Y: sparse.Y, WStar: sparse.WStar}
				run := func(ds *dataset.Dataset) []float64 {
					spec := Spec{
						Examples: 12, Workers: 12, Load: 3,
						Iterations: 8, Seed: seed,
						Scheme: Scheme(scheme), Optimizer: opt,
					}
					job, err := NewJobWithData(spec, ds, rngutil.New(77))
					if err != nil {
						t.Skipf("%s rejects the topology: %v", scheme, err)
					}
					res, err := job.Run()
					if err != nil {
						t.Fatal(err)
					}
					return res.FinalW
				}
				ws := run(sparse)
				wd := run(dense)
				if d := vecmath.MaxAbsDiff(ws, wd); d != 0 {
					t.Fatalf("CSR and dense training diverged by %v", d)
				}
			})
		}
	}
}

// TestSparseSpecEndToEnd drives Spec.Density through NewJob: the generated
// dataset must be CSR, train on every runtime's engine (sim suffices — the
// transports share it) and reproduce deterministically.
func TestSparseSpecEndToEnd(t *testing.T) {
	spec := Spec{
		Examples: 10, Workers: 10, Load: 2,
		DataPoints: 120, Dim: 64, Density: 0.1,
		Iterations: 6, Seed: 5,
	}
	job, err := NewJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	csr, ok := job.Data.Sparse()
	if !ok {
		t.Fatal("Spec.Density did not produce a CSR dataset")
	}
	if csr.NNZ() >= 120*64/2 {
		t.Fatalf("density 0.1 produced %d nonzeros of %d", csr.NNZ(), 120*64)
	}
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	job2, err := NewJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := job2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d := vecmath.MaxAbsDiff(res.FinalW, res2.FinalW); d != 0 {
		t.Fatalf("sparse training not reproducible: %v", d)
	}
}

// TestSparseOptionValidation pins the new option errors.
func TestSparseOptionValidation(t *testing.T) {
	var optErr *OptionError
	if _, err := NewJob(Spec{Density: 1.5}); !errors.As(err, &optErr) || optErr.Option != "Density" {
		t.Fatalf("Density=1.5: %v", err)
	}
	if _, err := NewJob(Spec{Density: -0.1}); !errors.As(err, &optErr) || optErr.Option != "Density" {
		t.Fatalf("Density=-0.1: %v", err)
	}
	if _, err := NewJob(Spec{DecodeParallelism: -1}); !errors.As(err, &optErr) || optErr.Option != "DecodeParallelism" {
		t.Fatalf("DecodeParallelism=-1: %v", err)
	}
}
