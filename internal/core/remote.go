// Remote-job support: the serializable subset of Spec that travels over the
// service control plane, plus the job-lifecycle vocabulary (IDs, queue
// states) shared by the daemon, its clients and the fleet workers.
//
// A submitted job is rebuilt independently on both sides of the wire: the
// daemon and every leased worker call NewJob on the decoded spec, and
// because all randomness (dataset, placement, fault schedules) is a pure
// function of the spec's seeds, both sides materialize the identical plan
// and data without shipping either.
package core

import (
	"bytes"
	"encoding/json"
	"fmt"

	"bcc/internal/cluster"
	"bcc/internal/faults"
)

// JobID identifies a job accepted by a training-service daemon. IDs are
// assigned by the daemon in submission order, starting at 1.
type JobID uint64

// JobState is the lifecycle state of a submitted job.
type JobState string

// The job lifecycle: queued -> running -> one of the four terminal states.
const (
	// JobQueued: accepted, waiting for its turn and for enough idle workers.
	JobQueued JobState = "queued"
	// JobRunning: admitted, its engine is iterating.
	JobRunning JobState = "running"
	// JobDone: ran to completion (or its StopWhen-equivalent tolerance).
	JobDone JobState = "done"
	// JobFailed: ended with an error other than cancellation or degrade.
	JobFailed JobState = "failed"
	// JobCanceled: canceled while queued or running; a canceled running job
	// keeps the partial result of its completed iterations.
	JobCanceled JobState = "canceled"
	// JobDegraded: ended early because the gradient became unrecoverable
	// (cluster.ErrBelowThreshold / ErrStalled); completed iterations are
	// kept.
	JobDegraded JobState = "degraded"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	switch s {
	case JobDone, JobFailed, JobCanceled, JobDegraded:
		return true
	}
	return false
}

// remoteSpec is the serializable shadow of Spec: exactly the fields that are
// pure data. Process-local fields (Latency models, Observer hooks, StopWhen
// closures, trace recorders, checkpoint paths) cannot travel and are
// rejected by EncodeSpec with a field-naming error.
type remoteSpec struct {
	DataPoints         int          `json:"data_points,omitempty"`
	Dim                int          `json:"dim,omitempty"`
	Separation         float64      `json:"separation,omitempty"`
	StandardLabels     bool         `json:"standard_labels,omitempty"`
	Lambda             float64      `json:"lambda,omitempty"`
	Density            float64      `json:"density,omitempty"`
	Examples           int          `json:"examples,omitempty"`
	Workers            int          `json:"workers,omitempty"`
	Load               int          `json:"load,omitempty"`
	Scheme             Scheme       `json:"scheme,omitempty"`
	AdaptRedundancy    bool         `json:"adapt_redundancy,omitempty"`
	AdaptWindow        int          `json:"adapt_window,omitempty"`
	Iterations         int          `json:"iterations,omitempty"`
	StepSize           float64      `json:"step_size,omitempty"`
	Optimizer          Optimizer    `json:"optimizer,omitempty"`
	Seed               uint64       `json:"seed,omitempty"`
	IngressPerUnit     float64      `json:"ingress_per_unit,omitempty"`
	Dead               []int        `json:"dead,omitempty"`
	DropProb           float64      `json:"drop_prob,omitempty"`
	DropSeed           uint64       `json:"drop_seed,omitempty"`
	Faults             *faults.Plan `json:"faults,omitempty"`
	FaultScenario      string       `json:"fault_scenario,omitempty"`
	FaultSeed          uint64       `json:"fault_seed,omitempty"`
	ComputeParallelism int          `json:"compute_parallelism,omitempty"`
	DecodeParallelism  int          `json:"decode_parallelism,omitempty"`
	MasterShards       int          `json:"master_shards,omitempty"`
	Runtime            Runtime      `json:"runtime,omitempty"`
	Payload            Payload      `json:"payload,omitempty"`
	TopK               int          `json:"top_k,omitempty"`
	WireChunk          int          `json:"wire_chunk,omitempty"`
	Pipelined          bool         `json:"pipelined,omitempty"`
	TimeScale          float64      `json:"time_scale,omitempty"`
	LossEvery          int          `json:"loss_every,omitempty"`
	GradNormTol        float64      `json:"grad_norm_tol,omitempty"`
}

// EncodeSpec serializes a spec for submission over the control plane. The
// spec is normalized (defaults applied) and validated first, so daemon and
// workers decode the identical fully-resolved spec even if their default
// tables were to drift. Specs carrying process-local state — a Latency
// model, Observer, StopWhen, Trace recorder or checkpoint configuration —
// are rejected: those cannot cross the wire and would silently change the
// job's semantics if dropped.
func EncodeSpec(s Spec) ([]byte, error) {
	switch {
	case s.Latency != nil:
		return nil, fmt.Errorf("core: spec with a Latency model cannot be submitted remotely (latency models are process-local; use Dead/Faults/DropProb for reproducible straggling)")
	case s.Observer != nil:
		return nil, fmt.Errorf("core: spec with an Observer cannot be submitted remotely (watch the job through the service status surface instead)")
	case s.StopWhen != nil:
		return nil, fmt.Errorf("core: spec with a StopWhen closure cannot be submitted remotely (use GradNormTol)")
	case s.Trace != nil:
		return nil, fmt.Errorf("core: spec with a Trace recorder cannot be submitted remotely")
	case s.CheckpointEvery > 0 || s.CheckpointPath != "":
		return nil, fmt.Errorf("core: spec with checkpointing cannot be submitted remotely (checkpoint paths are local to the submitting process)")
	}
	norm, err := s.Normalized()
	if err != nil {
		return nil, err
	}
	return json.Marshal(remoteSpec{
		DataPoints:         norm.DataPoints,
		Dim:                norm.Dim,
		Separation:         norm.Separation,
		StandardLabels:     norm.StandardLabels,
		Lambda:             norm.Lambda,
		Density:            norm.Density,
		Examples:           norm.Examples,
		Workers:            norm.Workers,
		Load:               norm.Load,
		Scheme:             norm.Scheme,
		AdaptRedundancy:    norm.AdaptRedundancy,
		AdaptWindow:        norm.AdaptWindow,
		Iterations:         norm.Iterations,
		StepSize:           norm.StepSize,
		Optimizer:          norm.Optimizer,
		Seed:               norm.Seed,
		IngressPerUnit:     norm.IngressPerUnit,
		Dead:               norm.Dead,
		DropProb:           norm.DropProb,
		DropSeed:           norm.DropSeed,
		Faults:             norm.Faults,
		FaultScenario:      norm.FaultScenario,
		FaultSeed:          norm.FaultSeed,
		ComputeParallelism: norm.ComputeParallelism,
		DecodeParallelism:  norm.DecodeParallelism,
		MasterShards:       norm.MasterShards,
		Runtime:            norm.Runtime,
		Payload:            norm.Payload,
		TopK:               norm.TopK,
		WireChunk:          norm.WireChunk,
		Pipelined:          norm.Pipelined,
		TimeScale:          norm.TimeScale,
		LossEvery:          norm.LossEvery,
		GradNormTol:        norm.GradNormTol,
	})
}

// DecodeSpec parses EncodeSpec output back into a validated, normalized
// Spec. Unknown fields are rejected: a spec from a newer peer carrying an
// option this build does not understand must fail loudly, not silently run
// a different job.
func DecodeSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rs remoteSpec
	if err := dec.Decode(&rs); err != nil {
		return Spec{}, fmt.Errorf("core: decoding remote spec: %w", err)
	}
	s := Spec{
		DataPoints:         rs.DataPoints,
		Dim:                rs.Dim,
		Separation:         rs.Separation,
		StandardLabels:     rs.StandardLabels,
		Lambda:             rs.Lambda,
		Density:            rs.Density,
		Examples:           rs.Examples,
		Workers:            rs.Workers,
		Load:               rs.Load,
		Scheme:             rs.Scheme,
		AdaptRedundancy:    rs.AdaptRedundancy,
		AdaptWindow:        rs.AdaptWindow,
		Iterations:         rs.Iterations,
		StepSize:           rs.StepSize,
		Optimizer:          rs.Optimizer,
		Seed:               rs.Seed,
		IngressPerUnit:     rs.IngressPerUnit,
		Dead:               rs.Dead,
		DropProb:           rs.DropProb,
		DropSeed:           rs.DropSeed,
		Faults:             rs.Faults,
		FaultScenario:      rs.FaultScenario,
		FaultSeed:          rs.FaultSeed,
		ComputeParallelism: rs.ComputeParallelism,
		DecodeParallelism:  rs.DecodeParallelism,
		MasterShards:       rs.MasterShards,
		Runtime:            rs.Runtime,
		Payload:            rs.Payload,
		TopK:               rs.TopK,
		WireChunk:          rs.WireChunk,
		Pipelined:          rs.Pipelined,
		TimeScale:          rs.TimeScale,
		LossEvery:          rs.LossEvery,
		GradNormTol:        rs.GradNormTol,
	}
	return s.Normalized()
}

// Normalized returns the spec with defaults applied, after validating every
// option — the cheap (no dataset generation) half of NewJob, for callers
// that must accept or reject a spec before committing resources to it.
func (s Spec) Normalized() (Spec, error) {
	out := s.withDefaults()
	if err := out.validateOptions(); err != nil {
		return Spec{}, err
	}
	return out, nil
}

// EngineConfig lowers the job to the cluster engine's Config — placement,
// model, optimizer and lifecycle hooks wired exactly as Run would. It is
// the entry point for callers that own the transport themselves (the
// service daemon builds a per-job fabric over leased fleet workers and
// drives the engine directly).
func (j *Job) EngineConfig() *cluster.Config { return j.clusterConfig() }

// WorkerEnv builds the environment needed to serve worker `index` of this
// job over a fabric — the fleet-worker counterpart of EngineConfig. The
// caller on the other end of the wire rebuilds the job with NewJob from the
// same spec, so plan, units and model match the master's bit for bit.
func (j *Job) WorkerEnv(index int) cluster.WorkerEnv {
	lat := j.Spec.Latency
	if lat == nil {
		lat = cluster.Zero{}
	}
	return cluster.WorkerEnv{
		Index:              index,
		Plan:               j.Plan,
		Model:              j.Model,
		Units:              j.Units,
		Latency:            lat,
		TimeScale:          j.Spec.TimeScale,
		Faults:             j.Faults,
		Codec:              "wire",
		Comm:               j.Spec.comm(),
		ComputeParallelism: j.Spec.ComputeParallelism,
		Pipelined:          j.Spec.Pipelined,
	}
}

// Comm exposes the job's resolved comm-plane options (payload codec, top-K,
// chunking) for callers that accept the job's data-plane connections
// themselves.
func (j *Job) Comm() cluster.CommOptions { return j.Spec.comm() }
