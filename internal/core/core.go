// Package core wires the paper's pieces — synthetic data, logistic model,
// Nesterov optimizer, a gradient-coding scheme and a cluster runtime — into
// one distributed training job. It is the engine behind the public bcc
// package and the experiment harness.
package core

import (
	"fmt"

	"bcc/internal/checkpoint"
	"bcc/internal/cluster"
	"bcc/internal/coding"
	"bcc/internal/dataset"
	"bcc/internal/model"
	"bcc/internal/optimize"
	"bcc/internal/rngutil"
	"bcc/internal/trace"
)

// Spec describes a distributed training job at the level a library user
// thinks about it. Zero values select the documented defaults.
type Spec struct {
	// --- learning problem (paper §III-C data model) ---
	// DataPoints is the number of raw training points d (default 100 per
	// example unit).
	DataPoints int
	// Dim is the feature dimension p (paper: 8000; default 200).
	Dim int
	// Separation scales the class means (paper: 1.5).
	Separation float64
	// StandardLabels switches to P(y=+1)=sigma(x^T w*); default is the
	// paper's rule.
	StandardLabels bool
	// Lambda is the L2 regularization strength (paper: 0).
	Lambda float64

	// --- distribution ---
	// Examples is m, the number of coded work units.
	Examples int
	// Workers is n.
	Workers int
	// Load is r, the per-worker computational load in units.
	Load int
	// Scheme names the gradient code (see coding.Names()); default "bcc".
	Scheme string

	// --- optimization ---
	// Iterations of distributed gradient descent (paper: 100).
	Iterations int
	// StepSize is the constant learning rate (default 0.5).
	StepSize float64
	// Optimizer is "nesterov" (default, as in the paper) or "gd".
	Optimizer string

	// --- environment ---
	// Seed drives all randomness; runs with equal specs and seeds are
	// bit-for-bit reproducible on the sim runtime.
	Seed uint64
	// Latency injects straggler behaviour (nil = no delays).
	Latency cluster.Latency
	// IngressPerUnit is the master's per-message-unit drain cost.
	IngressPerUnit float64
	// Dead workers never respond.
	Dead []int
	// Runtime is "sim" (default), "live" (goroutines+channels) or "tcp"
	// (goroutines over loopback sockets). All three run the same master
	// engine over different transports.
	Runtime string
	// Pipelined broadcasts iteration k+1 the moment iteration k decodes and
	// cancels straggler work in flight, instead of serializing iterations
	// at the workers (see cluster.Config.Pipelined).
	Pipelined bool
	// TimeScale converts virtual seconds to real sleeps on live runtimes.
	TimeScale float64
	// LossEvery records full training loss every k iterations (0 = never).
	LossEvery int
	// Trace records per-iteration worker timelines (sim runtime only).
	Trace *trace.Recorder
}

func (s *Spec) withDefaults() Spec {
	out := *s
	if out.Examples == 0 {
		out.Examples = 20
	}
	if out.Workers == 0 {
		out.Workers = out.Examples
	}
	if out.Load == 0 {
		out.Load = 1
	}
	if out.DataPoints == 0 {
		out.DataPoints = 100 * out.Examples
	}
	if out.Dim == 0 {
		out.Dim = 200
	}
	if out.Separation == 0 {
		out.Separation = 1.5
	}
	if out.Scheme == "" {
		out.Scheme = "bcc"
	}
	if out.Iterations == 0 {
		out.Iterations = 100
	}
	if out.StepSize == 0 {
		out.StepSize = 0.5
	}
	if out.Optimizer == "" {
		out.Optimizer = "nesterov"
	}
	if out.Runtime == "" {
		out.Runtime = "sim"
	}
	return out
}

// Job is a fully-materialized training run: data generated, placement
// planned, optimizer initialized. Build with NewJob, execute with Run.
type Job struct {
	Spec  Spec
	Data  *dataset.Dataset
	Model *model.Logistic
	Plan  coding.Plan
	Units [][]int
	Opt   optimize.Optimizer
}

// NewJob generates the synthetic dataset and materializes the job. All
// randomness (data, placement, latency seeds if the caller builds them from
// the same stream) derives from spec.Seed.
func NewJob(spec Spec) (*Job, error) {
	s := spec.withDefaults()
	rng := rngutil.New(s.Seed)
	ds, err := dataset.Generate(dataset.Config{
		N:              s.DataPoints,
		Dim:            s.Dim,
		Separation:     s.Separation,
		StandardLabels: s.StandardLabels,
	}, rng.Split())
	if err != nil {
		return nil, err
	}
	return NewJobWithData(s, ds, rng.Split())
}

// NewJobWithData materializes a job over a caller-provided dataset; rng
// drives the placement randomness.
func NewJobWithData(spec Spec, ds *dataset.Dataset, rng *rngutil.RNG) (*Job, error) {
	s := spec.withDefaults()
	units, err := ds.Units(s.Examples)
	if err != nil {
		return nil, err
	}
	sch, err := coding.Lookup(s.Scheme)
	if err != nil {
		return nil, err
	}
	plan, err := sch.Plan(s.Examples, s.Workers, s.Load, rng)
	if err != nil {
		return nil, fmt.Errorf("core: planning %s: %w", s.Scheme, err)
	}
	mod := &model.Logistic{Data: ds, Lambda: s.Lambda}
	var opt optimize.Optimizer
	switch s.Optimizer {
	case "nesterov":
		opt = optimize.NewNesterov(make([]float64, mod.Dim()), optimize.Constant(s.StepSize))
	case "gd":
		opt = optimize.NewGD(make([]float64, mod.Dim()), optimize.Constant(s.StepSize))
	default:
		return nil, fmt.Errorf("core: unknown optimizer %q (want nesterov or gd)", s.Optimizer)
	}
	return &Job{Spec: s, Data: ds, Model: mod, Plan: plan, Units: units, Opt: opt}, nil
}

// Run executes the job on the runtime selected by the spec.
func (j *Job) Run() (*cluster.Result, error) {
	cfg := &cluster.Config{
		Plan:           j.Plan,
		Model:          j.Model,
		Units:          j.Units,
		Opt:            j.Opt,
		Iterations:     j.Spec.Iterations,
		Latency:        j.Spec.Latency,
		IngressPerUnit: j.Spec.IngressPerUnit,
		Dead:           j.Spec.Dead,
		LossEvery:      j.Spec.LossEvery,
		Trace:          j.Spec.Trace,
		Pipelined:      j.Spec.Pipelined,
	}
	switch j.Spec.Runtime {
	case "sim":
		return cluster.RunSim(cfg)
	case "live":
		return cluster.RunLive(cfg, cluster.LiveOptions{TimeScale: j.Spec.TimeScale})
	case "tcp":
		return cluster.RunLive(cfg, cluster.LiveOptions{TimeScale: j.Spec.TimeScale, TCP: true})
	default:
		return nil, fmt.Errorf("core: unknown runtime %q (want sim, live or tcp)", j.Spec.Runtime)
	}
}

// Accuracy returns the trained model's accuracy on its own training data for
// a given weight vector (a convenience for examples and tests).
func (j *Job) Accuracy(w []float64) float64 { return j.Model.Accuracy(w) }

// Checkpoint writes the job's current optimizer state to path (atomically).
// completed is the number of iterations already run against this job.
func (j *Job) Checkpoint(path string, completed int) error {
	snap, ok := j.Opt.(optimize.Snapshotter)
	if !ok {
		return fmt.Errorf("core: optimizer %q does not support checkpointing", j.Spec.Optimizer)
	}
	return checkpoint.Save(path, &checkpoint.State{
		Scheme:    j.Spec.Scheme,
		M:         j.Spec.Examples,
		N:         j.Spec.Workers,
		R:         j.Spec.Load,
		Dim:       j.Spec.Dim,
		Seed:      j.Spec.Seed,
		Completed: completed,
		Opt:       snap.Snapshot(),
	})
}

// RestoreCheckpoint loads path into the job after validating that the
// checkpoint belongs to a job with the identical topology and seed (same
// data and placement). It returns the completed-iteration count so the
// caller can shorten the remaining run.
func (j *Job) RestoreCheckpoint(path string) (completed int, err error) {
	st, err := checkpoint.Load(path)
	if err != nil {
		return 0, err
	}
	if err := st.Matches(j.Spec.Scheme, j.Spec.Examples, j.Spec.Workers, j.Spec.Load, j.Spec.Dim, j.Spec.Seed); err != nil {
		return 0, err
	}
	snap, ok := j.Opt.(optimize.Snapshotter)
	if !ok {
		return 0, fmt.Errorf("core: optimizer %q does not support checkpointing", j.Spec.Optimizer)
	}
	if err := snap.Restore(st.Opt); err != nil {
		return 0, err
	}
	return st.Completed, nil
}
