// Package core wires the paper's pieces — synthetic data, logistic model,
// Nesterov optimizer, a gradient-coding scheme and a cluster runtime — into
// one distributed training job. It is the engine behind the public bcc
// package and the experiment harness.
package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"bcc/internal/checkpoint"
	"bcc/internal/cluster"
	"bcc/internal/coding"
	"bcc/internal/dataset"
	"bcc/internal/faults"
	"bcc/internal/model"
	"bcc/internal/optimize"
	"bcc/internal/rngutil"
	"bcc/internal/trace"
	"bcc/internal/wire"
)

// ---------------------------------------------------------------------------
// Typed option values
// ---------------------------------------------------------------------------
//
// Scheme, Optimizer and Runtime are defined string types so that option
// values are part of the API surface instead of stringly-typed folklore:
// misconfiguration fails fast at NewJob time with one error shape
// (*OptionError) naming the field, the offending value and the known values,
// instead of surfacing three layers deep during Run. Untyped string
// constants still assign directly, so Spec literals like
// Spec{Scheme: "bcc"} keep compiling; code that holds these fields in
// plain string variables must add a conversion.

// Scheme names a registered gradient-coding scheme (see coding.Names()).
type Scheme string

// The registered gradient-coding schemes.
const (
	SchemeBCC        Scheme = "bcc"
	SchemeBCCApprox  Scheme = "bccapprox"
	SchemeBCCMulti   Scheme = "bccmulti"
	SchemeCyclicMDS  Scheme = "cyclicmds"
	SchemeCyclicRep  Scheme = "cyclicrep"
	SchemeFractional Scheme = "fractional"
	SchemeNested     Scheme = "nested"
	SchemeRandomized Scheme = "randomized"
	SchemeUncoded    Scheme = "uncoded"
)

// Validate resolves the scheme against the coding registry.
func (s Scheme) Validate() error {
	if _, err := coding.Lookup(string(s)); err != nil {
		return &OptionError{Option: "Scheme", Value: string(s), Known: coding.Names()}
	}
	return nil
}

// Optimizer names a first-order update rule.
type Optimizer string

// The registered optimizers.
const (
	OptimizerNesterov Optimizer = "nesterov"
	OptimizerGD       Optimizer = "gd"
)

// optimizers is the registry behind Optimizer resolution; each entry builds
// a fresh optimizer at the given dimension and step size.
var optimizers = map[Optimizer]func(dim int, step float64) optimize.Optimizer{
	OptimizerNesterov: func(dim int, step float64) optimize.Optimizer {
		return optimize.NewNesterov(make([]float64, dim), optimize.Constant(step))
	},
	OptimizerGD: func(dim int, step float64) optimize.Optimizer {
		return optimize.NewGD(make([]float64, dim), optimize.Constant(step))
	},
}

// Validate resolves the optimizer against the registry.
func (o Optimizer) Validate() error {
	if _, ok := optimizers[o]; !ok {
		return &OptionError{Option: "Optimizer", Value: string(o), Known: optionNames(optimizers)}
	}
	return nil
}

// Optimizers lists the registered optimizer names, sorted.
func Optimizers() []Optimizer { return typedNames[Optimizer](optimizers) }

// Runtime names an execution substrate for the master engine.
type Runtime string

// The registered runtimes. All of them drive the same master engine over
// different transports.
const (
	RuntimeSim  Runtime = "sim"
	RuntimeLive Runtime = "live"
	RuntimeTCP  Runtime = "tcp"
)

// runtimes is the registry behind Runtime resolution: each entry drives the
// shared master engine over one transport.
var runtimes = map[Runtime]func(ctx context.Context, cfg *cluster.Config, spec Spec) (*cluster.Result, error){
	RuntimeSim: func(ctx context.Context, cfg *cluster.Config, _ Spec) (*cluster.Result, error) {
		return cluster.RunSimContext(ctx, cfg)
	},
	RuntimeLive: func(ctx context.Context, cfg *cluster.Config, spec Spec) (*cluster.Result, error) {
		return cluster.RunLiveContext(ctx, cfg, cluster.LiveOptions{TimeScale: spec.TimeScale})
	},
	RuntimeTCP: func(ctx context.Context, cfg *cluster.Config, spec Spec) (*cluster.Result, error) {
		// The compact binary frames: the payload codec shrinks what actually
		// crosses the socket (gob frames, still selectable in bcccluster via
		// -frame, carry identical values but fixed-width encodings).
		return cluster.RunLiveContext(ctx, cfg, cluster.LiveOptions{TimeScale: spec.TimeScale, TCP: true, Codec: "wire"})
	},
}

// Validate resolves the runtime against the registry.
func (r Runtime) Validate() error {
	if _, ok := runtimes[r]; !ok {
		return &OptionError{Option: "Runtime", Value: string(r), Known: optionNames(runtimes)}
	}
	return nil
}

// Runtimes lists the registered runtime names, sorted.
func Runtimes() []Runtime { return typedNames[Runtime](runtimes) }

// Payload names a comm-plane payload codec: how gradient payloads are
// represented between workers and the master (see wire.PayloadCodecNames).
type Payload string

// The registered payload codecs.
const (
	// PayloadRaw64 is the default: dense float64, lossless and bit-exact.
	PayloadRaw64 Payload = "raw64"
	// PayloadF32 quantizes query and reply vectors to float32 — half the
	// bytes, deterministically identical results on every runtime.
	PayloadF32 Payload = "f32"
	// PayloadTopK keeps only the Spec.TopK largest-magnitude coordinates of
	// each reply vector (values quantized to float32, shipped index+value
	// style); queries stay dense.
	PayloadTopK Payload = "topk"
)

// Validate resolves the payload codec name.
func (p Payload) Validate() error {
	if _, err := wire.ParsePayloadCodec(string(p)); err != nil {
		return &OptionError{Option: "Payload", Value: string(p), Known: wire.PayloadCodecNames()}
	}
	return nil
}

// Payloads lists the registered payload codec names, sorted.
func Payloads() []Payload {
	names := wire.PayloadCodecNames()
	out := make([]Payload, len(names))
	for i, n := range names {
		out[i] = Payload(n)
	}
	return out
}

func optionNames[K ~string, V any](m map[K]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, string(k))
	}
	sort.Strings(out)
	return out
}

func typedNames[K ~string, V any](m map[K]V) []K {
	names := optionNames(m)
	out := make([]K, len(names))
	for i, n := range names {
		out[i] = K(n)
	}
	return out
}

// OptionError reports a Spec field holding an invalid value. All option
// validation — unknown scheme/optimizer/runtime names, out-of-range knobs —
// reports through this one type, so callers can errors.As for it and print
// the known values.
type OptionError struct {
	// Option is the Spec field name, e.g. "Scheme" or "DropProb".
	Option string
	// Value is the offending value, formatted.
	Value string
	// Known lists the valid values when they are enumerable (registry-backed
	// options); empty for range constraints.
	Known []string
	// Reason states the violated constraint for non-enumerable options,
	// e.g. "outside [0, 1)".
	Reason string
}

func (e *OptionError) Error() string {
	switch {
	case len(e.Known) > 0:
		return fmt.Sprintf("bcc: unknown %s %q (known: %s)", e.Option, e.Value, strings.Join(e.Known, ", "))
	case e.Reason != "":
		return fmt.Sprintf("bcc: invalid %s %s: %s", e.Option, e.Value, e.Reason)
	default:
		return fmt.Sprintf("bcc: invalid %s %s", e.Option, e.Value)
	}
}

// ---------------------------------------------------------------------------
// Spec
// ---------------------------------------------------------------------------

// Spec describes a distributed training job at the level a library user
// thinks about it. Zero values select the documented defaults.
type Spec struct {
	// --- learning problem (paper §III-C data model) ---
	// DataPoints is the number of raw training points d (default 100 per
	// example unit).
	DataPoints int
	// Dim is the feature dimension p (paper: 8000; default 200).
	Dim int
	// Separation scales the class means (paper: 1.5).
	Separation float64
	// StandardLabels switches to P(y=+1)=sigma(x^T w*); default is the
	// paper's rule.
	StandardLabels bool
	// Lambda is the L2 regularization strength (paper: 0).
	Lambda float64
	// Density, when in (0, 1), generates a SPARSE dataset (CSR storage,
	// each feature nonzero with this probability) — the news20/RCV1-style
	// workload class; worker gradient cost drops from O(rows*p) to O(nnz).
	// 0 (default) and 1 keep the paper's dense generator.
	Density float64

	// --- distribution ---
	// Examples is m, the number of coded work units.
	Examples int
	// Workers is n.
	Workers int
	// Load is r, the per-worker computational load in units.
	Load int
	// Scheme names the gradient code (default SchemeBCC). Untyped string
	// constants assign directly: Spec{Scheme: "bcc"} keeps working.
	Scheme Scheme
	// AdaptRedundancy enables the built-in straggler-tracking redundancy
	// controller: every iteration the engine retunes the active level of the
	// nested gradient code to the cheapest one whose decode threshold covers
	// the observed straggler tail with a safety margin. Requires
	// Scheme == SchemeNested (the only Retunable scheme). Controller
	// decisions are a pure function of (seed, fault scenario, arrival
	// history), so adaptive runs stay bit-identical across runtimes.
	AdaptRedundancy bool
	// AdaptWindow is the controller's decrease patience: how many consecutive
	// over-provisioned iterations it observes before stepping the level down
	// by one (0 = default 3). Only meaningful with AdaptRedundancy.
	AdaptWindow int

	// --- optimization ---
	// Iterations of distributed gradient descent (paper: 100).
	Iterations int
	// StepSize is the constant learning rate (default 0.5).
	StepSize float64
	// Optimizer is OptimizerNesterov (default, as in the paper) or
	// OptimizerGD.
	Optimizer Optimizer

	// --- environment ---
	// Seed drives all randomness; runs with equal specs and seeds are
	// bit-for-bit reproducible on the sim runtime.
	Seed uint64
	// Latency injects straggler behaviour (nil = no delays).
	Latency cluster.Latency
	// IngressPerUnit is the master's per-message-unit drain cost.
	IngressPerUnit float64
	// Dead workers never respond.
	Dead []int
	// DropProb makes the master lose each worker transmission independently
	// with this probability (fault injection for lossy networks; workers do
	// not retransmit). Must lie in [0, 1).
	DropProb float64
	// DropSeed seeds the drop draws (only used when DropProb > 0); the
	// fault pattern is identical across runtimes for a given seed.
	DropSeed uint64
	// Faults, if non-nil, deterministically schedules worker fault events —
	// crashes/restarts, slowdown windows, partitions, drop bursts — replayed
	// identically on every runtime (see internal/faults). Takes precedence
	// over FaultScenario.
	Faults *faults.Plan
	// FaultScenario names a fault scenario from the library (faults.Names():
	// steady, flaky-tail, rolling-restart, partition, burst-drop,
	// slow-decile); the plan is built for Workers workers at NewJob time.
	FaultScenario string
	// FaultSeed seeds the scenario's probabilistic rules (0 = derived from
	// Seed), so the same spec replays the same fault sequence everywhere.
	FaultSeed uint64
	// ComputeParallelism fans each worker's per-example gradient
	// computations out over this many goroutines (0/1 = serial); results
	// are bit-for-bit identical to the serial path.
	ComputeParallelism int
	// DecodeParallelism shards the master's per-iteration decode
	// combination (cyclicrep/cyclicmds/bccmulti) over this many goroutines
	// (0/1 = serial); element-wise sharding keeps decoded gradients
	// bit-for-bit identical to the serial path on every runtime.
	DecodeParallelism int
	// MasterShards partitions the master's data plane coordinate-wise into
	// this many contiguous shards (0/1 = unsharded): each shard decodes,
	// scales and updates its own slice of the model concurrently while a thin
	// coordinator keeps iteration control centralized. On the TCP runtime the
	// shards additionally get their own listeners and workers scatter each
	// reply's coordinate slices to them (the scatter data plane). Results are
	// bit-for-bit identical to the unsharded run on every runtime; see
	// cluster.Config.MasterShards.
	MasterShards int
	// Runtime is RuntimeSim (default), RuntimeLive (goroutines+channels)
	// or RuntimeTCP (goroutines over loopback sockets). All three run the
	// same master engine over different transports.
	Runtime Runtime
	// Payload selects the comm-plane payload codec: PayloadRaw64 (default,
	// lossless), PayloadF32 or PayloadTopK. Lossy codecs are deterministic:
	// the same spec + seed + codec gives bit-identical results on every
	// runtime, barrier or pipelined.
	Payload Payload
	// TopK is the number of coordinates kept per reply vector under
	// PayloadTopK (0 = Dim/16 rounded up, the K = p/16 operating point);
	// setting it with any other codec is an error.
	TopK int
	// WireChunk is the wire framing chunk size in float64 elements for the
	// TCP runtime's "wire" frame codec (0 = default 512). Chunking changes
	// streaming granularity only, never the bytes or the results.
	WireChunk int
	// Pipelined broadcasts iteration k+1 the moment iteration k decodes and
	// cancels straggler work in flight, instead of serializing iterations
	// at the workers (see cluster.Config.Pipelined).
	Pipelined bool
	// TimeScale converts virtual seconds to real sleeps on live runtimes.
	TimeScale float64
	// LossEvery records full training loss every k iterations (0 = never).
	LossEvery int
	// Trace records per-iteration worker timelines (sim runtime only).
	Trace *trace.Recorder

	// --- run lifecycle ---
	// Observer, if non-nil, receives per-iteration callbacks from the
	// engine loop on every runtime (see cluster.Observer).
	Observer cluster.Observer
	// StopWhen, if non-nil, ends the run early (no error) after the first
	// iteration whose final stats satisfy it.
	StopWhen func(cluster.IterStats) bool
	// GradNormTol, if positive, ends the run early once the decoded
	// gradient's Euclidean norm falls to or below this tolerance. Composes
	// with StopWhen (either condition stops).
	GradNormTol float64
	// CheckpointEvery, if positive together with CheckpointPath, writes an
	// optimizer checkpoint to CheckpointPath after every CheckpointEvery-th
	// iteration (atomically; see Job.Checkpoint). The stored completed
	// count is cumulative: this run's finished iterations plus any
	// Job.Resumed base set by RestoreCheckpoint.
	CheckpointEvery int
	// CheckpointPath is where periodic checkpoints are written.
	CheckpointPath string
}

func (s *Spec) withDefaults() Spec {
	out := *s
	if out.Examples == 0 {
		out.Examples = 20
	}
	if out.Workers == 0 {
		out.Workers = out.Examples
	}
	if out.Load == 0 {
		out.Load = 1
	}
	if out.DataPoints == 0 {
		out.DataPoints = 100 * out.Examples
	}
	if out.Dim == 0 {
		out.Dim = 200
	}
	if out.Separation == 0 {
		out.Separation = 1.5
	}
	if out.Scheme == "" {
		out.Scheme = SchemeBCC
	}
	if out.Iterations == 0 {
		out.Iterations = 100
	}
	if out.StepSize == 0 {
		out.StepSize = 0.5
	}
	if out.Optimizer == "" {
		out.Optimizer = OptimizerNesterov
	}
	if out.Runtime == "" {
		out.Runtime = RuntimeSim
	}
	if out.Payload == "" {
		out.Payload = PayloadRaw64
	}
	return out
}

// comm lowers the spec's payload knobs to the cluster layer's options.
func (s *Spec) comm() cluster.CommOptions {
	return cluster.CommOptions{Payload: string(s.Payload), TopK: s.TopK, Chunk: s.WireChunk}
}

// validateOptions fails fast on misconfigured options, after defaults are
// applied. Every failure is an *OptionError.
func (s *Spec) validateOptions() error {
	if err := s.Scheme.Validate(); err != nil {
		return err
	}
	if err := s.Optimizer.Validate(); err != nil {
		return err
	}
	if err := s.Runtime.Validate(); err != nil {
		return err
	}
	if s.DropProb < 0 || s.DropProb >= 1 {
		return &OptionError{Option: "DropProb", Value: fmt.Sprintf("%v", s.DropProb), Reason: "outside [0, 1)"}
	}
	if s.ComputeParallelism < 0 {
		return &OptionError{Option: "ComputeParallelism", Value: fmt.Sprintf("%d", s.ComputeParallelism), Reason: "must be non-negative"}
	}
	if s.DecodeParallelism < 0 {
		return &OptionError{Option: "DecodeParallelism", Value: fmt.Sprintf("%d", s.DecodeParallelism), Reason: "must be non-negative"}
	}
	if s.MasterShards < 0 {
		return &OptionError{Option: "MasterShards", Value: fmt.Sprintf("%d", s.MasterShards), Reason: "must be non-negative"}
	}
	if s.AdaptRedundancy && s.Scheme != SchemeNested {
		return &OptionError{Option: "AdaptRedundancy", Value: "true",
			Reason: fmt.Sprintf("requires Scheme %q (the only retunable scheme), got %q", SchemeNested, s.Scheme)}
	}
	if s.AdaptWindow < 0 {
		return &OptionError{Option: "AdaptWindow", Value: fmt.Sprintf("%d", s.AdaptWindow), Reason: "must be non-negative"}
	}
	if s.AdaptWindow > 0 && !s.AdaptRedundancy {
		return &OptionError{Option: "AdaptWindow", Value: fmt.Sprintf("%d", s.AdaptWindow), Reason: "set without AdaptRedundancy"}
	}
	if s.Density < 0 || s.Density > 1 {
		return &OptionError{Option: "Density", Value: fmt.Sprintf("%v", s.Density), Reason: "outside [0, 1]"}
	}
	if s.CheckpointEvery < 0 {
		return &OptionError{Option: "CheckpointEvery", Value: fmt.Sprintf("%d", s.CheckpointEvery), Reason: "must be non-negative"}
	}
	if s.CheckpointEvery > 0 && s.CheckpointPath == "" {
		return &OptionError{Option: "CheckpointPath", Value: `""`, Reason: "required when CheckpointEvery > 0"}
	}
	if s.GradNormTol < 0 {
		return &OptionError{Option: "GradNormTol", Value: fmt.Sprintf("%v", s.GradNormTol), Reason: "must be non-negative"}
	}
	if err := s.Payload.Validate(); err != nil {
		return err
	}
	if err := s.comm().Validate(s.Dim); err != nil {
		// The codec name itself is valid (checked above), so this is a
		// parameter problem: attribute it to the offending knob.
		opt, val := "TopK", fmt.Sprintf("%d", s.TopK)
		if s.WireChunk < 0 {
			opt, val = "WireChunk", fmt.Sprintf("%d", s.WireChunk)
		}
		return &OptionError{Option: opt, Value: val, Reason: err.Error()}
	}
	if s.MasterShards > 1 {
		// The comm options resolved above, so MaxShards cannot fail here.
		if max, err := s.comm().MaxShards(s.Dim); err == nil && s.MasterShards > max {
			return &OptionError{Option: "MasterShards", Value: fmt.Sprintf("%d", s.MasterShards),
				Reason: fmt.Sprintf("exceeds the %d wire chunk(s) of a %d-dim model — the surplus shards would own empty slices yet still cost listeners and ports", max, s.Dim)}
		}
	}
	if s.FaultScenario != "" && !faults.Known(s.FaultScenario) {
		return &OptionError{Option: "FaultScenario", Value: s.FaultScenario, Known: faults.Names()}
	}
	if s.Faults != nil {
		if err := s.Faults.Validate(); err != nil {
			return &OptionError{Option: "Faults", Value: "plan", Reason: err.Error()}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Job
// ---------------------------------------------------------------------------

// Job is a fully-materialized training run: data generated, placement
// planned, optimizer initialized. Build with NewJob, execute with Run or
// RunContext.
type Job struct {
	Spec  Spec
	Data  *dataset.Dataset
	Model *model.Logistic
	Plan  coding.Plan
	Units [][]int
	Opt   optimize.Optimizer
	// Faults is the resolved fault plan of the run: Spec.Faults, or the
	// Spec.FaultScenario built for this cluster size; nil without either.
	Faults *faults.Plan
	// Resumed is the number of iterations already completed against this
	// job's optimizer state before the next run — set by RestoreCheckpoint,
	// zero for a fresh job. Periodic checkpoints record Resumed plus the
	// current run's completed count, so a resumed run's checkpoints carry
	// the true cumulative progress.
	Resumed int
}

// NewJob generates the synthetic dataset and materializes the job. All
// randomness (data, placement, latency seeds if the caller builds them from
// the same stream) derives from spec.Seed. Option misconfiguration —
// unknown scheme/optimizer/runtime, out-of-range fault-injection knobs —
// fails here with an *OptionError rather than at Run time.
func NewJob(spec Spec) (*Job, error) {
	s := spec.withDefaults()
	if err := s.validateOptions(); err != nil {
		return nil, err
	}
	rng := rngutil.New(s.Seed)
	ds, err := dataset.Generate(dataset.Config{
		N:              s.DataPoints,
		Dim:            s.Dim,
		Separation:     s.Separation,
		StandardLabels: s.StandardLabels,
		Density:        s.Density,
	}, rng.Split())
	if err != nil {
		return nil, err
	}
	return NewJobWithData(s, ds, rng.Split())
}

// NewJobWithData materializes a job over a caller-provided dataset; rng
// drives the placement randomness.
func NewJobWithData(spec Spec, ds *dataset.Dataset, rng *rngutil.RNG) (*Job, error) {
	s := spec.withDefaults()
	if err := s.validateOptions(); err != nil {
		return nil, err
	}
	units, err := ds.Units(s.Examples)
	if err != nil {
		return nil, err
	}
	sch, err := coding.Lookup(string(s.Scheme))
	if err != nil {
		return nil, err
	}
	plan, err := sch.Plan(s.Examples, s.Workers, s.Load, rng)
	if err != nil {
		return nil, fmt.Errorf("core: planning %s: %w", s.Scheme, err)
	}
	mod := &model.Logistic{Data: ds, Lambda: s.Lambda}
	fp := s.Faults
	if fp == nil && s.FaultScenario != "" {
		// A fixed non-zero mix keeps the derived fault stream independent of
		// the data/placement streams while staying a pure function of Seed.
		fseed := s.FaultSeed
		if fseed == 0 {
			fseed = s.Seed ^ 0xfa417_5eed
		}
		fp, err = faults.Scenario(s.FaultScenario, s.Workers, fseed)
		if err != nil {
			return nil, fmt.Errorf("core: fault scenario %s: %w", s.FaultScenario, err)
		}
	}
	// validateOptions above guarantees the registry entry exists.
	build := optimizers[s.Optimizer]
	return &Job{Spec: s, Data: ds, Model: mod, Plan: plan, Units: units, Opt: build(mod.Dim(), s.StepSize), Faults: fp}, nil
}

// clusterConfig lowers the spec to the engine's Config, wiring the lifecycle
// hooks: the observer, the early-stop predicate (user StopWhen merged with
// the gradient-norm tolerance) and the periodic checkpoint callback.
func (j *Job) clusterConfig() *cluster.Config {
	stop := j.Spec.StopWhen
	if tol := j.Spec.GradNormTol; tol > 0 {
		user := stop
		stop = func(st cluster.IterStats) bool {
			return st.GradNorm <= tol || (user != nil && user(st))
		}
	}
	var ckpt func(completed int) error
	if j.Spec.CheckpointEvery > 0 && j.Spec.CheckpointPath != "" {
		path := j.Spec.CheckpointPath
		// Shard-aware: with MasterShards > 1 the periodic checkpoint
		// follows the engine's partition, one file per shard.
		ckpt = func(completed int) error { return j.CheckpointSharded(path, j.Resumed+completed) }
	}
	var ctl cluster.Controller
	if j.Spec.AdaptRedundancy {
		// A fresh controller per run: its decrease-patience counter starts
		// from zero, so resumed and fresh runs see the same decision rule.
		ctl = &cluster.AIMDController{Window: j.Spec.AdaptWindow}
	}
	return &cluster.Config{
		Plan:               j.Plan,
		Model:              j.Model,
		Units:              j.Units,
		Opt:                j.Opt,
		Iterations:         j.Spec.Iterations,
		Latency:            j.Spec.Latency,
		IngressPerUnit:     j.Spec.IngressPerUnit,
		Dead:               j.Spec.Dead,
		DropProb:           j.Spec.DropProb,
		DropSeed:           j.Spec.DropSeed,
		Faults:             j.Faults,
		ComputeParallelism: j.Spec.ComputeParallelism,
		DecodeParallelism:  j.Spec.DecodeParallelism,
		MasterShards:       j.Spec.MasterShards,
		Controller:         ctl,
		Comm:               j.Spec.comm(),
		LossEvery:          j.Spec.LossEvery,
		Trace:              j.Spec.Trace,
		Pipelined:          j.Spec.Pipelined,
		Observer:           j.Spec.Observer,
		StopWhen:           stop,
		CheckpointEvery:    j.Spec.CheckpointEvery,
		Checkpoint:         ckpt,
	}
}

// RunContext executes the job on the runtime selected by the spec, bounded
// by ctx: cancellation or deadline expiry ends the run between arrivals and
// returns the partial Result of the iterations already completed alongside
// ctx's error (errors.Is(err, context.Canceled) / context.DeadlineExceeded).
// Worker goroutines and TCP listeners of the live runtimes are torn down on
// every exit path.
func (j *Job) RunContext(ctx context.Context) (*cluster.Result, error) {
	run, ok := runtimes[j.Spec.Runtime]
	if !ok {
		return nil, &OptionError{Option: "Runtime", Value: string(j.Spec.Runtime), Known: optionNames(runtimes)}
	}
	return run(ctx, j.clusterConfig(), j.Spec)
}

// Run executes the job without a bounding context.
func (j *Job) Run() (*cluster.Result, error) { return j.RunContext(context.Background()) }

// Accuracy returns the trained model's accuracy on its own training data for
// a given weight vector (a convenience for examples and tests).
func (j *Job) Accuracy(w []float64) float64 { return j.Model.Accuracy(w) }

// Checkpoint writes the job's current optimizer state to path (atomically).
// completed is the number of iterations already run against this job.
func (j *Job) Checkpoint(path string, completed int) error {
	st, err := j.snapshotState(completed)
	if err != nil {
		return err
	}
	return checkpoint.Save(path, st)
}

// CheckpointSharded writes the job's optimizer state as one self-describing
// file per master shard — path.shard0 … path.shard{M-1}, M =
// Spec.MasterShards — following the engine's coordinate partition
// (Config.ShardMap), so each shard persists exactly the slice it owns.
// Scalar optimizer state is replicated into every file; a job with
// MasterShards < 2 falls back to the single-file Checkpoint.
func (j *Job) CheckpointSharded(path string, completed int) error {
	shards := j.Spec.MasterShards
	if shards < 2 {
		return j.Checkpoint(path, completed)
	}
	st, err := j.snapshotState(completed)
	if err != nil {
		return err
	}
	bounds := j.clusterConfig().ShardMap()
	for s := 0; s < shards; s++ {
		sh, err := st.SliceOf(s, shards, bounds[s], bounds[s+1])
		if err != nil {
			return err
		}
		if err := checkpoint.SaveShard(checkpoint.ShardPath(path, s), sh); err != nil {
			return err
		}
	}
	return nil
}

func (j *Job) snapshotState(completed int) (*checkpoint.State, error) {
	snap, ok := j.Opt.(optimize.Snapshotter)
	if !ok {
		return nil, fmt.Errorf("core: optimizer %q does not support checkpointing", j.Spec.Optimizer)
	}
	return &checkpoint.State{
		Scheme:    string(j.Spec.Scheme),
		M:         j.Spec.Examples,
		N:         j.Spec.Workers,
		R:         j.Spec.Load,
		Dim:       j.Spec.Dim,
		Seed:      j.Spec.Seed,
		Completed: completed,
		Opt:       snap.Snapshot(),
	}, nil
}

// RestoreCheckpoint loads path into the job after validating that the
// checkpoint belongs to a job with the identical topology and seed (same
// data and placement). It returns the completed-iteration count so the
// caller can shorten the remaining run, and records it in j.Resumed so that
// subsequent periodic checkpoints carry the cumulative count.
func (j *Job) RestoreCheckpoint(path string) (completed int, err error) {
	st, err := checkpoint.Load(path)
	if err != nil {
		return 0, err
	}
	return j.restoreState(st)
}

// RestoreShardedCheckpoint loads the per-shard files written by
// CheckpointSharded (path.shard0 … path.shard{M-1}) and merges them into
// the full optimizer state. The shard map — count and coordinate ranges —
// is read from the files themselves and checked against the job's own
// partition up front, so a resume whose MasterShards or WireChunk flags
// disagree with the checkpoint fails with a message naming the mismatch
// instead of a late merge error (or a silently different partition). The
// merge additionally rejects torn sets — a missing or duplicated shard,
// coordinate gaps, or shards saved at different iterations or by different
// jobs — before the usual topology validation. A job with MasterShards < 2
// falls back to the single-file restore.
func (j *Job) RestoreShardedCheckpoint(path string) (completed int, err error) {
	shards := j.Spec.MasterShards
	if shards < 2 {
		return j.RestoreCheckpoint(path)
	}
	// Shard 0 carries the authoritative split; trust it over the flags.
	first, err := checkpoint.LoadShard(checkpoint.ShardPath(path, 0))
	if err != nil {
		return 0, err
	}
	if first.Shards != shards {
		return 0, fmt.Errorf("core: checkpoint %s was split into %d shard(s), but this job is configured with MasterShards=%d — rerun with the shard count the checkpoint was written with",
			path, first.Shards, shards)
	}
	bounds := j.clusterConfig().ShardMap()
	parts := make([]*checkpoint.Shard, shards)
	parts[0] = first
	for s := 1; s < shards; s++ {
		if parts[s], err = checkpoint.LoadShard(checkpoint.ShardPath(path, s)); err != nil {
			return 0, err
		}
	}
	for s, sh := range parts {
		if sh.Lo != bounds[s] || sh.Hi != bounds[s+1] {
			return 0, fmt.Errorf("core: checkpoint shard %d owns [%d,%d) but this job's shard map assigns [%d,%d) — the checkpoint was written under a different wire chunk size or model dimension",
				s, sh.Lo, sh.Hi, bounds[s], bounds[s+1])
		}
	}
	st, err := checkpoint.Merge(parts)
	if err != nil {
		return 0, err
	}
	return j.restoreState(st)
}

func (j *Job) restoreState(st *checkpoint.State) (completed int, err error) {
	if err := st.Matches(string(j.Spec.Scheme), j.Spec.Examples, j.Spec.Workers, j.Spec.Load, j.Spec.Dim, j.Spec.Seed); err != nil {
		return 0, err
	}
	snap, ok := j.Opt.(optimize.Snapshotter)
	if !ok {
		return 0, fmt.Errorf("core: optimizer %q does not support checkpointing", j.Spec.Optimizer)
	}
	if err := snap.Restore(st.Opt); err != nil {
		return 0, err
	}
	j.Resumed = st.Completed
	return st.Completed, nil
}
