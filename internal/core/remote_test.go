package core

import (
	"reflect"
	"strings"
	"testing"

	"bcc/internal/cluster"
	"bcc/internal/faults"
	"bcc/internal/trace"
)

// TestSpecEncodeDecodeRoundTrip: a spec survives the control-plane codec
// with every serializable field intact, including a fault plan.
func TestSpecEncodeDecodeRoundTrip(t *testing.T) {
	in := Spec{
		DataPoints:         240,
		Dim:                64,
		Separation:         2.0,
		StandardLabels:     true,
		Lambda:             0.01,
		Examples:           6,
		Workers:            6,
		Load:               3,
		Scheme:             SchemeCyclicRep,
		Iterations:         17,
		StepSize:           0.25,
		Optimizer:          OptimizerGD,
		Seed:               99,
		Dead:               []int{1},
		DropProb:           0.05,
		DropSeed:           7,
		Faults:             &faults.Plan{N: 6, Seed: 3, Crashes: []faults.Crash{{Worker: 2, At: 5, RestartAfter: 2}}},
		ComputeParallelism: 2,
		DecodeParallelism:  2,
		Runtime:            RuntimeTCP,
		Payload:            PayloadTopK,
		TopK:               8,
		WireChunk:          128,
		Pipelined:          true,
		TimeScale:          1e-4,
		LossEvery:          5,
		GradNormTol:        1e-9,
	}
	data, err := EncodeSpec(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	want, err := in.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip drifted:\n got  %+v\n want %+v", got, want)
	}
	// Both sides must materialize the identical job from the spec.
	j1, err := NewJob(want)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := NewJob(got)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(j1.Plan.Assignments(), j2.Plan.Assignments()) {
		t.Fatal("rebuilt jobs disagree on placement")
	}
	if !reflect.DeepEqual(j1.Units, j2.Units) {
		t.Fatal("rebuilt jobs disagree on units")
	}
}

// TestSpecEncodeDefaultsApplied: encoding normalizes first, so a zero spec
// decodes to the fully-defaulted spec.
func TestSpecEncodeDefaultsApplied(t *testing.T) {
	data, err := EncodeSpec(Spec{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scheme != SchemeBCC || got.Runtime != RuntimeSim || got.Payload != PayloadRaw64 ||
		got.Workers == 0 || got.Iterations == 0 {
		t.Fatalf("defaults missing after round trip: %+v", got)
	}
}

// TestSpecEncodeRejectsLocalState: process-local fields cannot travel.
func TestSpecEncodeRejectsLocalState(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"latency", Spec{Latency: cluster.Zero{}}, "Latency"},
		{"observer", Spec{Observer: cluster.ObserverFuncs{}}, "Observer"},
		{"stopwhen", Spec{StopWhen: func(cluster.IterStats) bool { return false }}, "StopWhen"},
		{"trace", Spec{Trace: &trace.Recorder{}}, "Trace"},
		{"checkpoint", Spec{CheckpointEvery: 5, CheckpointPath: "x"}, "checkpoint"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := EncodeSpec(tc.spec); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("EncodeSpec err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

// TestSpecDecodeRejects: invalid payloads fail loudly.
func TestSpecDecodeRejects(t *testing.T) {
	if _, err := DecodeSpec([]byte(`{"scheme":"no-such-scheme"}`)); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if _, err := DecodeSpec([]byte(`{"unknown_field":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := DecodeSpec([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestJobStateTerminal pins the lifecycle partition.
func TestJobStateTerminal(t *testing.T) {
	for st, terminal := range map[JobState]bool{
		JobQueued: false, JobRunning: false,
		JobDone: true, JobFailed: true, JobCanceled: true, JobDegraded: true,
	} {
		if st.Terminal() != terminal {
			t.Fatalf("%s.Terminal() = %v, want %v", st, st.Terminal(), terminal)
		}
	}
}
