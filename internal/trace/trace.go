// Package trace captures per-iteration timelines from the simulated cluster
// runtime — when each worker received the model, computed, uploaded, and
// when the master drained its message — and renders them as ASCII Gantt
// charts. It exists to make straggler behaviour *visible*: one glance at a
// BCC iteration shows the master cutting off the tail, where the uncoded
// chart shows it pinned to the slowest worker.
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// WorkerSpan is one worker's activity within one iteration, in seconds
// relative to the iteration start.
type WorkerSpan struct {
	Worker int
	// BcastEnd is when the model download finished (starts at 0).
	BcastEnd float64
	// ComputeEnd is when the local gradient computation finished.
	ComputeEnd float64
	// Arrive is when the upload reached the master.
	Arrive float64
	// DrainStart/DrainEnd bracket the master's ingress occupancy for this
	// worker's messages (equal to Arrive when ingress is free/disabled).
	DrainStart, DrainEnd float64
	// Counted reports whether the message was consumed before the decoder
	// finished (i.e. the worker is part of the realized recovery set).
	Counted bool
	// Units is the communication load of the worker's transmission.
	Units float64
}

// Iteration is one recorded iteration.
type Iteration struct {
	Iter       int
	DecodeTime float64 // iteration wall time
	Spans      []WorkerSpan
}

// Recorder accumulates iterations. The zero value is ready to use. It is
// filled by the master engine when Config.Trace is set and the transport
// runs on a virtual clock (the sim runtime); the live runtimes do not
// trace (their timing is wall-clock, not modelled).
type Recorder struct {
	Iterations []Iteration
}

// Add appends one iteration record.
func (r *Recorder) Add(it Iteration) { r.Iterations = append(r.Iterations, it) }

// Len returns the number of recorded iterations.
func (r *Recorder) Len() int { return len(r.Iterations) }

// Gantt renders iteration index i as an ASCII chart `width` characters
// wide. Row symbols:
//
//	b  model broadcast in flight
//	c  local gradient computation
//	u  upload in flight
//	q  queued at the master (waiting for the ingress link)
//	D  draining into the decoder
//	.  idle / after this worker's activity
//
// A '|' column marks the decode time; rows are sorted by arrival, counted
// workers first, and suffixed with '*' when counted.
func (r *Recorder) Gantt(i, width int) (string, error) {
	if i < 0 || i >= len(r.Iterations) {
		return "", fmt.Errorf("trace: iteration %d of %d", i, len(r.Iterations))
	}
	if width < 20 {
		width = 20
	}
	it := r.Iterations[i]
	if len(it.Spans) == 0 {
		return "", fmt.Errorf("trace: iteration %d has no spans", i)
	}
	horizon := it.DecodeTime
	for _, s := range it.Spans {
		if s.DrainEnd > horizon {
			horizon = s.DrainEnd
		}
	}
	if horizon <= 0 {
		horizon = 1
	}
	col := func(t float64) int {
		c := int(t / horizon * float64(width))
		if c < 0 {
			c = 0
		}
		if c > width {
			c = width
		}
		return c
	}
	spans := append([]WorkerSpan(nil), it.Spans...)
	sort.Slice(spans, func(a, b int) bool {
		if spans[a].Counted != spans[b].Counted {
			return spans[a].Counted
		}
		return spans[a].Arrive < spans[b].Arrive
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "iteration %d: decode at %.4gs, %d workers (counted first, * = counted)\n",
		it.Iter, it.DecodeTime, len(spans))
	decodeCol := col(it.DecodeTime)
	for _, s := range spans {
		row := make([]byte, width)
		for j := range row {
			row[j] = '.'
		}
		paint := func(from, to float64, ch byte) {
			a, b := col(from), col(to)
			if b == a && b < width {
				b = a + 1 // make very short phases visible
			}
			for j := a; j < b && j < width; j++ {
				row[j] = ch
			}
		}
		paint(0, s.BcastEnd, 'b')
		paint(s.BcastEnd, s.ComputeEnd, 'c')
		paint(s.ComputeEnd, s.Arrive, 'u')
		paint(s.Arrive, s.DrainStart, 'q')
		paint(s.DrainStart, s.DrainEnd, 'D')
		if decodeCol < width {
			row[decodeCol] = '|'
		}
		mark := " "
		if s.Counted {
			mark = "*"
		}
		fmt.Fprintf(&sb, "w%03d%s %s\n", s.Worker, mark, string(row))
	}
	return sb.String(), nil
}

// Summary returns per-iteration one-liners: decode time, counted workers,
// and the last counted arrival vs the slowest arrival (the straggler gap).
func (r *Recorder) Summary() string {
	var sb strings.Builder
	for _, it := range r.Iterations {
		counted := 0
		var lastCounted, slowest float64
		for _, s := range it.Spans {
			if s.Counted {
				counted++
				if s.Arrive > lastCounted {
					lastCounted = s.Arrive
				}
			}
			if s.Arrive > slowest {
				slowest = s.Arrive
			}
		}
		fmt.Fprintf(&sb, "iter %3d: wall %.4gs, counted %d/%d, straggler gap %.4gs\n",
			it.Iter, it.DecodeTime, counted, len(it.Spans), slowest-lastCounted)
	}
	return sb.String()
}
