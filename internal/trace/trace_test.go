package trace

import (
	"strings"
	"testing"
)

func sampleIteration() Iteration {
	return Iteration{
		Iter:       3,
		DecodeTime: 10,
		Spans: []WorkerSpan{
			{Worker: 0, BcastEnd: 1, ComputeEnd: 3, Arrive: 5, DrainStart: 5, DrainEnd: 6, Counted: true, Units: 1},
			{Worker: 1, BcastEnd: 1, ComputeEnd: 4, Arrive: 8, DrainStart: 8, DrainEnd: 10, Counted: true, Units: 1},
			{Worker: 2, BcastEnd: 1, ComputeEnd: 6, Arrive: 14, DrainStart: 14, DrainEnd: 15, Counted: false, Units: 1},
		},
	}
}

func TestRecorderAdd(t *testing.T) {
	var r Recorder
	if r.Len() != 0 {
		t.Fatal("fresh recorder not empty")
	}
	r.Add(sampleIteration())
	if r.Len() != 1 {
		t.Fatalf("len %d", r.Len())
	}
}

func TestGanttBasics(t *testing.T) {
	var r Recorder
	r.Add(sampleIteration())
	out, err := r.Gantt(0, 60)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + 3 workers
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "iteration 3") {
		t.Fatalf("header: %q", lines[0])
	}
	// Counted workers sorted first and starred.
	if !strings.HasPrefix(lines[1], "w000*") || !strings.HasPrefix(lines[2], "w001*") {
		t.Fatalf("counted workers not first:\n%s", out)
	}
	if !strings.HasPrefix(lines[3], "w002 ") {
		t.Fatalf("straggler row wrong:\n%s", out)
	}
	// Phases present.
	for _, ch := range []string{"b", "c", "u", "D", "|"} {
		if !strings.Contains(out, ch) {
			t.Fatalf("missing phase %q:\n%s", ch, out)
		}
	}
}

func TestGanttQueueSymbol(t *testing.T) {
	var r Recorder
	r.Add(Iteration{
		Iter:       0,
		DecodeTime: 10,
		Spans: []WorkerSpan{
			{Worker: 0, BcastEnd: 1, ComputeEnd: 2, Arrive: 3, DrainStart: 6, DrainEnd: 10, Counted: true, Units: 1},
		},
	})
	out, err := r.Gantt(0, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "q") {
		t.Fatalf("queued phase not rendered:\n%s", out)
	}
}

func TestGanttErrors(t *testing.T) {
	var r Recorder
	if _, err := r.Gantt(0, 40); err == nil {
		t.Fatal("empty recorder accepted")
	}
	r.Add(Iteration{Iter: 0, DecodeTime: 1})
	if _, err := r.Gantt(0, 40); err == nil {
		t.Fatal("iteration without spans accepted")
	}
	if _, err := r.Gantt(5, 40); err == nil {
		t.Fatal("out-of-range iteration accepted")
	}
}

func TestGanttMinWidth(t *testing.T) {
	var r Recorder
	r.Add(sampleIteration())
	out, err := r.Gantt(0, 1) // clamped to 20
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Row = "wNNN* " + 20 chars.
	if got := len(lines[1]); got != 6+20 {
		t.Fatalf("row width %d: %q", got, lines[1])
	}
}

func TestSummary(t *testing.T) {
	var r Recorder
	r.Add(sampleIteration())
	s := r.Summary()
	if !strings.Contains(s, "counted 2/3") {
		t.Fatalf("summary: %q", s)
	}
	// Straggler gap = slowest arrival (14) - last counted arrival (8) = 6.
	if !strings.Contains(s, "straggler gap 6") {
		t.Fatalf("summary: %q", s)
	}
}
