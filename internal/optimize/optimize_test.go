package optimize

import (
	"math"
	"testing"

	"bcc/internal/rngutil"
	"bcc/internal/vecmath"
)

// quadGrad returns the gradient function of f(w) = 0.5 (w-c)^T D (w-c) for
// diagonal D, plus the optimum and Lipschitz constant.
func quadGrad(diag, center []float64) (GradFn, float64) {
	var lip float64
	for _, d := range diag {
		if d > lip {
			lip = d
		}
	}
	return func(w []float64) []float64 {
		g := make([]float64, len(w))
		for i := range w {
			g[i] = diag[i] * (w[i] - center[i])
		}
		return g
	}, lip
}

func TestGDConvergesOnQuadratic(t *testing.T) {
	diag := []float64{1, 2, 5}
	center := []float64{3, -1, 0.5}
	grad, lip := quadGrad(diag, center)
	opt := NewGD(make([]float64, 3), Constant(1/lip))
	w := Run(opt, grad, 500)
	if d := vecmath.MaxAbsDiff(w, center); d > 1e-6 {
		t.Fatalf("GD distance to optimum %v", d)
	}
	if opt.Step() != 500 {
		t.Fatalf("Step = %d", opt.Step())
	}
}

func TestNesterovConvergesOnQuadratic(t *testing.T) {
	diag := []float64{1, 2, 5}
	center := []float64{3, -1, 0.5}
	grad, lip := quadGrad(diag, center)
	opt := NewNesterov(make([]float64, 3), Constant(1/lip))
	w := Run(opt, grad, 500)
	if d := vecmath.MaxAbsDiff(w, center); d > 1e-6 {
		t.Fatalf("Nesterov distance to optimum %v", d)
	}
}

func TestNesterovFasterThanGDOnIllConditioned(t *testing.T) {
	// On a badly conditioned quadratic, Nesterov should be closer to the
	// optimum than GD after the same number of iterations.
	rng := rngutil.New(1)
	n := 20
	diag := make([]float64, n)
	center := make([]float64, n)
	for i := range diag {
		diag[i] = math.Pow(10, -3*float64(i)/float64(n-1)) // kappa = 1e3
		center[i] = rng.Normal()
	}
	grad, lip := quadGrad(diag, center)
	iters := 150
	wGD := Run(NewGD(make([]float64, n), Constant(1/lip)), grad, iters)
	wNAG := Run(NewNesterov(make([]float64, n), Constant(1/lip)), grad, iters)
	dGD := vecmath.Norm2(vecmath.Sub(wGD, center))
	dNAG := vecmath.Norm2(vecmath.Sub(wNAG, center))
	if dNAG >= dGD {
		t.Fatalf("Nesterov (%v) not faster than GD (%v) on ill-conditioned quadratic", dNAG, dGD)
	}
}

func TestNesterovQueryIsLookahead(t *testing.T) {
	grad, _ := quadGrad([]float64{1}, []float64{0})
	opt := NewNesterov([]float64{10}, Constant(0.5))
	// First iteration: theta=1 -> beta=0, query == iterate.
	q0 := vecmath.Clone(opt.Query())
	if q0[0] != 10 {
		t.Fatalf("first query %v, want iterate", q0)
	}
	opt.Update(grad(q0))
	// Second iteration: beta > 0, query must differ from the iterate
	// (momentum extrapolation).
	q1 := vecmath.Clone(opt.Query())
	if q1[0] == opt.Iterate()[0] {
		t.Fatal("second query should be extrapolated beyond the iterate")
	}
}

func TestQueryUpdateConsistency(t *testing.T) {
	// Calling Query multiple times without Update must return the same
	// point, so the distributed loop can broadcast retries safely.
	opt := NewNesterov([]float64{1, 2}, Constant(0.1))
	grad, _ := quadGrad([]float64{1, 1}, []float64{0, 0})
	opt.Update(grad(opt.Query()))
	a := vecmath.Clone(opt.Query())
	b := vecmath.Clone(opt.Query())
	if vecmath.MaxAbsDiff(a, b) != 0 {
		t.Fatal("repeated Query returned different points")
	}
}

func TestInverseTimeSchedule(t *testing.T) {
	s := InverseTime(1.0, 10)
	if s(0) != 1.0 {
		t.Fatalf("s(0) = %v", s(0))
	}
	if math.Abs(s(10)-0.5) > 1e-12 {
		t.Fatalf("s(10) = %v", s(10))
	}
	if s(5) <= s(10) {
		t.Fatal("schedule must decrease")
	}
}

func TestConstantPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Constant(0) did not panic")
		}
	}()
	Constant(0)
}

func TestGDDoesNotAliasInput(t *testing.T) {
	w0 := []float64{1, 2}
	opt := NewGD(w0, Constant(0.1))
	opt.Update([]float64{1, 1})
	if w0[0] != 1 || w0[1] != 2 {
		t.Fatal("NewGD must copy its starting point")
	}
}

func TestSnapshotRestoreGD(t *testing.T) {
	grad, _ := quadGrad([]float64{1, 2}, []float64{0, 0})
	a := NewGD([]float64{3, 4}, Constant(0.2))
	for i := 0; i < 5; i++ {
		a.Update(grad(a.Query()))
	}
	snap := a.Snapshot()
	b := NewGD([]float64{0, 0}, Constant(0.2))
	if err := b.Restore(snap); err != nil {
		t.Fatal(err)
	}
	// Both must evolve identically from here.
	for i := 0; i < 5; i++ {
		a.Update(grad(a.Query()))
		b.Update(grad(b.Query()))
	}
	if vecmath.MaxAbsDiff(a.Iterate(), b.Iterate()) != 0 {
		t.Fatal("restored GD diverged")
	}
	if a.Step() != b.Step() {
		t.Fatalf("step counters differ: %d vs %d", a.Step(), b.Step())
	}
}

func TestSnapshotRestoreNesterov(t *testing.T) {
	grad, _ := quadGrad([]float64{1, 3}, []float64{1, -1})
	a := NewNesterov([]float64{5, 5}, Constant(0.1))
	for i := 0; i < 7; i++ {
		a.Update(grad(a.Query()))
	}
	snap := a.Snapshot()
	// Snapshot must be a deep copy: mutate and ensure isolation.
	snap2 := a.Snapshot()
	snap2.W[0] = 999
	if a.Iterate()[0] == 999 {
		t.Fatal("snapshot aliases optimizer state")
	}
	b := NewNesterov([]float64{0, 0}, Constant(0.1))
	if err := b.Restore(snap); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		a.Update(grad(a.Query()))
		b.Update(grad(b.Query()))
	}
	if vecmath.MaxAbsDiff(a.Iterate(), b.Iterate()) != 0 {
		t.Fatal("restored Nesterov diverged (momentum state lost?)")
	}
}

func TestRestoreValidation(t *testing.T) {
	g := NewGD([]float64{1}, Constant(0.1))
	if err := g.Restore(State{Kind: "nesterov", W: []float64{1}}); err == nil {
		t.Fatal("wrong kind accepted")
	}
	if err := g.Restore(State{Kind: "gd", W: []float64{1, 2}}); err == nil {
		t.Fatal("wrong dimension accepted")
	}
	n := NewNesterov([]float64{1}, Constant(0.1))
	if err := n.Restore(State{Kind: "gd", W: []float64{1}, WPrev: []float64{1}}); err == nil {
		t.Fatal("wrong kind accepted")
	}
}

func TestRunReturnsCopy(t *testing.T) {
	grad, _ := quadGrad([]float64{1}, []float64{0})
	opt := NewGD([]float64{5}, Constant(0.5))
	w := Run(opt, grad, 3)
	w[0] = 999
	if opt.Iterate()[0] == 999 {
		t.Fatal("Run must return a copy of the iterate")
	}
}

// TestUpdateSliceMatchesUpdate is the sharded-master contract test: applying
// UpdateSlice over an arbitrary partition of [0, p) — in shuffled order —
// followed by one FinishStep reproduces Update bit-for-bit over many
// iterations, for both optimizers.
func TestUpdateSliceMatchesUpdate(t *testing.T) {
	const dim, iters = 103, 25
	build := map[string]func() SliceUpdater{
		"gd":       func() SliceUpdater { return NewGD(make([]float64, dim), InverseTime(0.5, 10)) },
		"nesterov": func() SliceUpdater { return NewNesterov(make([]float64, dim), InverseTime(0.5, 10)) },
	}
	for name, mk := range build {
		t.Run(name, func(t *testing.T) {
			ref, sliced := mk(), mk()
			rng := rngutil.New(17)
			grad := make([]float64, dim)
			for it := 0; it < iters; it++ {
				// Both must be queried: Nesterov's query rebuilds y, and the
				// gradient must be a function of the (identical) query point.
				q := ref.Query()
				sliced.Query()
				for i := range grad {
					grad[i] = math.Sin(float64(i+1)*0.3) * (q[i] + 1/float64(it+1))
				}
				ref.Update(grad)

				// Random uneven partition applied in shuffled order.
				var bounds []int
				for lo := 0; lo < dim; {
					hi := lo + 1 + rng.Intn(40)
					if hi > dim {
						hi = dim
					}
					bounds = append(bounds, lo, hi)
					lo = hi
				}
				for _, s := range rng.Perm(len(bounds) / 2) {
					sliced.UpdateSlice(grad, bounds[2*s], bounds[2*s+1])
				}
				sliced.FinishStep()

				if d := vecmath.MaxAbsDiff(ref.Iterate(), sliced.Iterate()); d != 0 {
					t.Fatalf("iter %d: sliced iterate diverged by %v", it, d)
				}
				if ref.Step() != sliced.Step() {
					t.Fatalf("iter %d: step %d vs %d", it, ref.Step(), sliced.Step())
				}
			}
		})
	}
}
