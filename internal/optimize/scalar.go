package optimize

import (
	"fmt"
	"math"
)

// GoldenMax maximizes a unimodal scalar function on [lo, hi] by golden-
// section search, returning the arg max and the maximum. It is used by the
// heterogeneous load allocator to solve the per-worker inner problem
// max_r r * P(T <= tau), which is unimodal on its domain.
func GoldenMax(f func(float64) float64, lo, hi, tol float64) (float64, float64) {
	if hi < lo {
		panic(fmt.Sprintf("optimize: GoldenMax with hi %v < lo %v", hi, lo))
	}
	if tol <= 0 {
		tol = 1e-9
	}
	const invPhi = 0.6180339887498949 // 1/phi
	a, b := lo, hi
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for b-a > tol*(1+math.Abs(a)+math.Abs(b)) {
		if f1 < f2 {
			a = x1
			x1, f1 = x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		} else {
			b = x2
			x2, f2 = x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		}
	}
	x := (a + b) / 2
	return x, f(x)
}

// BisectIncreasing finds x in [lo, hi] with g(x) ~= target for a
// non-decreasing g, by bisection to the given relative tolerance. It returns
// hi if even g(hi) < target (caller should widen the bracket).
func BisectIncreasing(g func(float64) float64, target, lo, hi, tol float64) float64 {
	if g(hi) < target {
		return hi
	}
	if g(lo) >= target {
		return lo
	}
	if tol <= 0 {
		tol = 1e-9
	}
	for hi-lo > tol*(1+math.Abs(lo)+math.Abs(hi)) {
		mid := (lo + hi) / 2
		if g(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
