package optimize

import (
	"fmt"

	"bcc/internal/vecmath"
)

// State is a serializable snapshot of an optimizer, sufficient to resume
// training bit-for-bit (see internal/checkpoint). Kind discriminates the
// algorithm; unused fields stay zero.
type State struct {
	Kind  string // "gd" or "nesterov"
	T     int
	Theta float64
	W     []float64
	WPrev []float64
}

// Snapshotter is implemented by optimizers that support checkpoint/resume.
type Snapshotter interface {
	Snapshot() State
	Restore(State) error
}

// Snapshot implements Snapshotter.
func (g *GD) Snapshot() State {
	return State{Kind: "gd", T: g.t, W: vecmath.Clone(g.w)}
}

// Restore implements Snapshotter. The step-size schedule is not part of the
// state; the restored optimizer keeps its own schedule and resumes it at
// the snapshot's iteration count.
func (g *GD) Restore(s State) error {
	if s.Kind != "gd" {
		return fmt.Errorf("optimize: restoring %q state into GD", s.Kind)
	}
	if len(s.W) != len(g.w) {
		return fmt.Errorf("optimize: GD restore dimension %d != %d", len(s.W), len(g.w))
	}
	copy(g.w, s.W)
	g.t = s.T
	return nil
}

// Snapshot implements Snapshotter.
func (n *Nesterov) Snapshot() State {
	return State{
		Kind:  "nesterov",
		T:     n.t,
		Theta: n.theta,
		W:     vecmath.Clone(n.w),
		WPrev: vecmath.Clone(n.wPrev),
	}
}

// Restore implements Snapshotter.
func (n *Nesterov) Restore(s State) error {
	if s.Kind != "nesterov" {
		return fmt.Errorf("optimize: restoring %q state into Nesterov", s.Kind)
	}
	if len(s.W) != len(n.w) || len(s.WPrev) != len(n.wPrev) {
		return fmt.Errorf("optimize: Nesterov restore dimension %d/%d != %d", len(s.W), len(s.WPrev), len(n.w))
	}
	copy(n.w, s.W)
	copy(n.wPrev, s.WPrev)
	n.theta = s.Theta
	n.t = s.T
	return nil
}

var (
	_ Snapshotter = (*GD)(nil)
	_ Snapshotter = (*Nesterov)(nil)
)
