// Package optimize implements the first-order update rules driven by the
// distributed gradient loop: plain gradient descent and Nesterov's
// accelerated gradient method (the paper trains logistic regression with the
// latter, §III-C).
//
// The distributed loop needs gradients at a point chosen by the optimizer
// (Nesterov evaluates at the look-ahead point, not at the iterate), so the
// interface splits each iteration into Query — the point to broadcast to
// workers — and Update — fold the aggregated gradient back in.
package optimize

import (
	"fmt"
	"math"

	"bcc/internal/vecmath"
)

// Optimizer is a first-order method advanced one gradient evaluation at a
// time.
type Optimizer interface {
	// Query returns the point at which the next gradient must be evaluated.
	// Callers must not mutate the returned slice.
	Query() []float64
	// Update consumes the gradient evaluated at the last Query point and
	// advances the iterate.
	Update(grad []float64)
	// Iterate returns the current solution estimate w_t (not the query
	// point). Callers must not mutate the returned slice.
	Iterate() []float64
	// Step returns the number of completed updates.
	Step() int
}

// SliceUpdater is the optional Optimizer capability behind the sharded
// master: Update split into its elementwise half, restricted to an arbitrary
// coordinate range, and a scalar half advancing the iteration state once.
// Applying UpdateSlice over any partition of [0, p) followed by one
// FinishStep reproduces Update(grad) bit-for-bit: UpdateSlice reads the
// scalar state (step count, momentum sequence) without mutating it, so
// disjoint slices may be applied concurrently from different goroutines.
type SliceUpdater interface {
	Optimizer
	// UpdateSlice applies the update rule to coordinates [lo, hi) of the
	// iterate using grad[lo:hi]. The gradient must have been evaluated at the
	// last Query point; scalar state is read, never written.
	UpdateSlice(grad []float64, lo, hi int)
	// FinishStep advances the scalar state after every coordinate of the
	// current gradient has been applied via UpdateSlice. Exactly one
	// FinishStep must follow each complete partition.
	FinishStep()
}

// StepSize is a learning-rate schedule: it returns the step for iteration t
// (0-based).
type StepSize func(t int) float64

// Constant returns the constant schedule mu_t = mu.
func Constant(mu float64) StepSize {
	if mu <= 0 {
		panic(fmt.Sprintf("optimize: non-positive step size %v", mu))
	}
	return func(int) float64 { return mu }
}

// InverseTime returns mu_t = mu0 / (1 + t/t0), the classic damped schedule.
func InverseTime(mu0, t0 float64) StepSize {
	if mu0 <= 0 || t0 <= 0 {
		panic("optimize: InverseTime needs positive parameters")
	}
	return func(t int) float64 { return mu0 / (1 + float64(t)/t0) }
}

// ---------------------------------------------------------------------------
// Gradient descent
// ---------------------------------------------------------------------------

// GD is plain gradient descent w_{t+1} = w_t - mu_t g_t.
type GD struct {
	w    []float64
	step StepSize
	t    int
}

// NewGD starts gradient descent from w0 (copied) with the given schedule.
func NewGD(w0 []float64, step StepSize) *GD {
	return &GD{w: vecmath.Clone(w0), step: step}
}

// Query implements Optimizer; GD evaluates gradients at the iterate itself.
func (g *GD) Query() []float64 { return g.w }

// Update implements Optimizer. It is UpdateSlice over the full range plus
// FinishStep, so the sharded and unsharded paths share one definition.
func (g *GD) Update(grad []float64) {
	g.UpdateSlice(grad, 0, len(grad))
	g.FinishStep()
}

// UpdateSlice implements SliceUpdater: w[i] += -mu_t grad[i] for i in
// [lo, hi), the elementwise body of vecmath.Axpy restricted to the slice.
func (g *GD) UpdateSlice(grad []float64, lo, hi int) {
	alpha := -g.step(g.t)
	for i := lo; i < hi; i++ {
		g.w[i] += alpha * grad[i]
	}
}

// FinishStep implements SliceUpdater.
func (g *GD) FinishStep() { g.t++ }

// Iterate implements Optimizer.
func (g *GD) Iterate() []float64 { return g.w }

// Step implements Optimizer.
func (g *GD) Step() int { return g.t }

// ---------------------------------------------------------------------------
// Nesterov's accelerated gradient
// ---------------------------------------------------------------------------

// Nesterov implements the accelerated gradient method in its standard
// momentum form:
//
//	y_t     = w_t + beta_t (w_t - w_{t-1})
//	w_{t+1} = y_t - mu_t grad L(y_t)
//
// with beta_t = (theta_t - 1)/theta_{t+1} and theta_{t+1} =
// (1 + sqrt(1 + 4 theta_t^2)) / 2, theta_0 = 1 (the FISTA sequence).
type Nesterov struct {
	w, wPrev []float64
	y        []float64 // query point, rebuilt each iteration
	step     StepSize
	theta    float64
	t        int
}

// NewNesterov starts the accelerated method from w0 (copied).
func NewNesterov(w0 []float64, step StepSize) *Nesterov {
	return &Nesterov{
		w:     vecmath.Clone(w0),
		wPrev: vecmath.Clone(w0),
		y:     vecmath.Clone(w0),
		step:  step,
		theta: 1,
	}
}

// Query implements Optimizer: the look-ahead point y_t.
func (n *Nesterov) Query() []float64 {
	thetaNext := (1 + math.Sqrt(1+4*n.theta*n.theta)) / 2
	beta := (n.theta - 1) / thetaNext
	for i := range n.y {
		n.y[i] = n.w[i] + beta*(n.w[i]-n.wPrev[i])
	}
	return n.y
}

// Update implements Optimizer. The gradient must have been evaluated at the
// point returned by the immediately preceding Query call. It is UpdateSlice
// over the full range plus FinishStep, so the sharded and unsharded paths
// share one definition.
func (n *Nesterov) Update(grad []float64) {
	n.UpdateSlice(grad, 0, len(grad))
	n.FinishStep()
}

// UpdateSlice implements SliceUpdater: the momentum step on coordinates
// [lo, hi). beta and mu are pure functions of the scalar state, recomputed
// identically in every slice, so any partition reproduces Update bit-for-bit.
func (n *Nesterov) UpdateSlice(grad []float64, lo, hi int) {
	thetaNext := (1 + math.Sqrt(1+4*n.theta*n.theta)) / 2
	beta := (n.theta - 1) / thetaNext
	mu := n.step(n.t)
	for i := lo; i < hi; i++ {
		y := n.w[i] + beta*(n.w[i]-n.wPrev[i])
		n.wPrev[i] = n.w[i]
		n.w[i] = y - mu*grad[i]
	}
}

// FinishStep implements SliceUpdater.
func (n *Nesterov) FinishStep() {
	n.theta = (1 + math.Sqrt(1+4*n.theta*n.theta)) / 2
	n.t++
}

// Iterate implements Optimizer.
func (n *Nesterov) Iterate() []float64 { return n.w }

// Step implements Optimizer.
func (n *Nesterov) Step() int { return n.t }

// ---------------------------------------------------------------------------
// Sequential driver (used by tests and as the single-node reference)
// ---------------------------------------------------------------------------

// GradFn evaluates a full (normalized) gradient at w.
type GradFn func(w []float64) []float64

// Run performs `iters` optimizer iterations using gradients from fn and
// returns the final iterate.
func Run(opt Optimizer, fn GradFn, iters int) []float64 {
	for i := 0; i < iters; i++ {
		g := fn(opt.Query())
		opt.Update(g)
	}
	return vecmath.Clone(opt.Iterate())
}

// GradIntoFn evaluates a full (normalized) gradient at w into out, fully
// overwriting it.
type GradIntoFn func(w, out []float64)

// RunInPlace performs `iters` optimizer iterations like Run but reuses one
// gradient buffer of length dim across all steps instead of allocating per
// step; fn writes each gradient into that buffer. The update sequence is
// identical to Run's, so the returned iterate is bit-for-bit the same for
// equivalent gradient functions.
func RunInPlace(opt Optimizer, fn GradIntoFn, dim, iters int) []float64 {
	g := make([]float64, dim)
	for i := 0; i < iters; i++ {
		fn(opt.Query(), g)
		opt.Update(g)
	}
	return vecmath.Clone(opt.Iterate())
}
