package vecmath

import (
	"math"
	"testing"

	"bcc/internal/rngutil"
)

// randSparseDense draws a dense matrix in which each entry is nonzero with
// probability density, returning it alongside its CSR compression.
func randSparseDense(rng *rngutil.RNG, rows, cols int, density float64) (*Matrix, *CSR) {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		if rng.Float64() < density {
			m.Data[i] = rng.Normal()
		}
	}
	return m, CSRFromDense(m)
}

func TestCSRFromDenseRoundTrip(t *testing.T) {
	rng := rngutil.New(21)
	for _, density := range []float64{0, 0.01, 0.2, 1} {
		m, c := randSparseDense(rng, 17, 23, density)
		back := c.ToDense()
		if MaxAbsDiff(m.Data, back.Data) != 0 {
			t.Fatalf("density %v: dense -> CSR -> dense is not the identity", density)
		}
		nnz := 0
		for _, v := range m.Data {
			if v != 0 {
				nnz++
			}
		}
		if c.NNZ() != nnz {
			t.Fatalf("density %v: NNZ %d, dense has %d nonzeros", density, c.NNZ(), nnz)
		}
	}
}

func TestCSRAt(t *testing.T) {
	m, c := randSparseDense(rngutil.New(22), 11, 13, 0.3)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if got, want := c.At(i, j), m.At(i, j); got != want {
				t.Fatalf("At(%d,%d) = %v, dense %v", i, j, got, want)
			}
		}
	}
	if r, cc := c.Dims(); r != 11 || cc != 13 {
		t.Fatalf("Dims = (%d,%d)", r, cc)
	}
}

// TestCSRRowKernelsBitEqualDense pins the property the whole sparse compute
// plane rests on: on finite data, the O(nnz) row kernels produce bit-for-bit
// the same floats as the dense sweeps that also visit the zeros.
func TestCSRRowKernelsBitEqualDense(t *testing.T) {
	rng := rngutil.New(23)
	m, c := randSparseDense(rng, 40, 64, 0.15)
	x := make([]float64, m.Cols)
	for i := range x {
		x[i] = rng.Normal()
	}
	for i := 0; i < m.Rows; i++ {
		if d, s := m.RowDot(i, x), c.RowDot(i, x); d != s {
			t.Fatalf("row %d: dense dot %v != csr dot %v", i, d, s)
		}
		dDst, sDst := Clone(x), Clone(x)
		m.RowAxpy(0.37, i, dDst)
		c.RowAxpy(0.37, i, sDst)
		if MaxAbsDiff(dDst, sDst) != 0 {
			t.Fatalf("row %d: RowAxpy diverged", i)
		}
		gather := make([]float64, m.Cols)
		c.RowTo(i, gather)
		if MaxAbsDiff(gather, m.Row(i)) != 0 {
			t.Fatalf("row %d: RowTo diverged from dense row", i)
		}
	}
}

func TestCSRMulVecBitEqualDense(t *testing.T) {
	rng := rngutil.New(24)
	m, c := randSparseDense(rng, 33, 47, 0.2)
	x := make([]float64, m.Cols)
	for i := range x {
		x[i] = rng.Normal()
	}
	y := make([]float64, m.Rows)
	for i := range y {
		y[i] = rng.Normal()
	}
	dDst, sDst := make([]float64, m.Rows), make([]float64, m.Rows)
	m.MulVecInto(dDst, x)
	c.MulVecInto(sDst, x)
	if MaxAbsDiff(dDst, sDst) != 0 {
		t.Fatal("MulVecInto diverged between dense and CSR")
	}
	dT, sT := make([]float64, m.Cols), make([]float64, m.Cols)
	m.MulVecTInto(dT, y)
	c.MulVecTInto(sT, y)
	if MaxAbsDiff(dT, sT) != 0 {
		t.Fatal("MulVecTInto diverged between dense and CSR")
	}
}

func TestNewCSRValidation(t *testing.T) {
	bad := []struct {
		name        string
		rows, cols  int
		rowPtr, idx []int
		val         []float64
	}{
		{"rowptr-length", 2, 2, []int{0, 1}, []int{0}, []float64{1}},
		{"rowptr-start", 1, 2, []int{1, 1}, []int{}, []float64{}},
		{"rowptr-decreasing", 2, 2, []int{0, 1, 0}, []int{0}, []float64{1}},
		{"nnz-mismatch", 1, 2, []int{0, 2}, []int{0}, []float64{1}},
		{"col-out-of-range", 1, 2, []int{0, 1}, []int{2}, []float64{1}},
		{"col-not-increasing", 1, 3, []int{0, 2}, []int{1, 1}, []float64{1, 2}},
		{"len-mismatch", 1, 2, []int{0, 1}, []int{0, 1}, []float64{1}},
		{"negative-dim", -1, 2, []int{0}, nil, nil},
	}
	for _, tc := range bad {
		if _, err := NewCSR(tc.rows, tc.cols, tc.rowPtr, tc.idx, tc.val); err == nil {
			t.Errorf("%s: NewCSR accepted invalid storage", tc.name)
		}
	}
	good, err := NewCSR(2, 3, []int{0, 2, 3}, []int{0, 2, 1}, []float64{1, 2, 3})
	if err != nil {
		t.Fatalf("valid CSR rejected: %v", err)
	}
	if good.At(0, 2) != 2 || good.At(1, 1) != 3 || good.At(1, 2) != 0 {
		t.Fatal("valid CSR misreads entries")
	}
}

// TestParallelKernelsBitExact pins that every worker count produces
// bit-identical output for the element-sharded kernels: GemvTInto (the
// blocked transpose sweep), GemvInto (row sharding) and the decode-side
// linear combination.
func TestParallelKernelsBitExact(t *testing.T) {
	rng := rngutil.New(25)
	const rows, cols = 57, 1500 // cols > the Shard inline cutoff
	a := NewMatrix(rows, cols)
	for i := range a.Data {
		a.Data[i] = rng.Normal()
	}
	x := make([]float64, rows)
	for i := range x {
		x[i] = rng.Normal()
	}
	xc := make([]float64, cols)
	for i := range xc {
		xc[i] = rng.Normal()
	}
	// Serial references at workers == 1 (inline path).
	refT := make([]float64, cols)
	ParallelGemvTInto(refT, a, x, 1)
	ref := make([]float64, rows)
	ParallelGemvInto(ref, a, xc, 1)
	vs := make([][]float64, 7)
	coeffs := make([]float64, len(vs))
	for i := range vs {
		v := make([]float64, cols)
		for t := range v {
			v[t] = rng.Normal()
		}
		vs[i] = v
		coeffs[i] = rng.Normal()
	}
	refLC := make([]float64, cols)
	LinearCombinationInto(refLC, coeffs, vs)
	for _, workers := range []int{0, 2, 3, 8, 64} {
		gotT := make([]float64, cols)
		ParallelGemvTInto(gotT, a, x, workers)
		if MaxAbsDiff(gotT, refT) != 0 {
			t.Fatalf("ParallelGemvTInto workers=%d diverged", workers)
		}
		got := make([]float64, rows)
		ParallelGemvInto(got, a, xc, workers)
		if MaxAbsDiff(got, ref) != 0 {
			t.Fatalf("ParallelGemvInto workers=%d diverged", workers)
		}
		gotLC := make([]float64, cols)
		ParallelLinearCombinationInto(gotLC, coeffs, vs, workers)
		if MaxAbsDiff(gotLC, refLC) != 0 {
			t.Fatalf("ParallelLinearCombinationInto workers=%d diverged", workers)
		}
	}
	// The default GemvTInto entry point must equal its own blocked kernel.
	def := make([]float64, cols)
	GemvTInto(def, a, x)
	if MaxAbsDiff(def, refT) != 0 {
		t.Fatal("GemvTInto diverged from the blocked kernel")
	}
}

// TestGemvTIntoMatchesNaive cross-checks the blocked transpose kernel
// against an order-independent tolerance reference (the blocked sweep is
// bit-equal to the OLD serial Axpy sweep by construction; this guards the
// algebra itself).
func TestGemvTIntoMatchesNaive(t *testing.T) {
	rng := rngutil.New(26)
	a := NewMatrix(9, 14)
	for i := range a.Data {
		a.Data[i] = rng.Normal()
	}
	x := make([]float64, 9)
	for i := range x {
		x[i] = rng.Normal()
	}
	got := make([]float64, 14)
	GemvTInto(got, a, x)
	for j := 0; j < 14; j++ {
		var want float64
		for i := 0; i < 9; i++ {
			want += x[i] * a.At(i, j)
		}
		if math.Abs(got[j]-want) > 1e-12 {
			t.Fatalf("GemvT[%d] = %v, want %v", j, got[j], want)
		}
	}
}
