// Package vecmath provides the vector and matrix kernels used by the
// gradient computations and the coding-scheme encoders/decoders.
//
// Matrices come in two storage forms behind the AnyMatrix interface: dense
// row-major (Matrix) and compressed sparse row (CSR, see sparse.go), whose
// row kernels cost O(nnz) instead of O(cols) — with bit-identical results
// on finite data holding the same nonzeros.
//
// All kernels come in a plain serial form; the ones on the training hot
// path also have parallel variants (ParallelGemvInto, ParallelGemvTInto,
// ParallelLinearCombinationInto, ParallelAxpy) built on Shard. These shard
// the OUTPUT elements, each of which folds its terms in the serial order,
// so the parallel variants are bit-for-bit equal to the serial ones for
// every worker count; tests pin this.
package vecmath

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Zeros returns a fresh zero vector of length n.
func Zeros(n int) []float64 { return make([]float64, n) }

// Clone returns a copy of x.
func Clone(x []float64) []float64 {
	y := make([]float64, len(x))
	copy(y, x)
	return y
}

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Dot returns the inner product of x and y. It panics if lengths differ.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vecmath: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	var s float64
	for i, xv := range x {
		s += xv * y[i]
	}
	return s
}

// Axpy computes y += alpha*x in place. It panics if lengths differ.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vecmath: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, xv := range x {
		y[i] += alpha * xv
	}
}

// Scale computes x *= alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Add computes z = x + y into a fresh slice.
func Add(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vecmath: Add length mismatch %d vs %d", len(x), len(y)))
	}
	z := make([]float64, len(x))
	for i := range x {
		z[i] = x[i] + y[i]
	}
	return z
}

// Sub computes z = x - y into a fresh slice.
func Sub(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vecmath: Sub length mismatch %d vs %d", len(x), len(y)))
	}
	z := make([]float64, len(x))
	for i := range x {
		z[i] = x[i] - y[i]
	}
	return z
}

// AddInto accumulates src into dst in place.
func AddInto(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("vecmath: AddInto length mismatch %d vs %d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] += v
	}
}

// Norm2 returns the Euclidean norm of x, guarding against overflow by
// scaling (as in the reference BLAS dnrm2).
func Norm2(x []float64) float64 {
	var scale, ssq float64 = 0, 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			ssq = 1 + ssq*(scale/a)*(scale/a)
			scale = a
		} else {
			ssq += (a / scale) * (a / scale)
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns the maximum absolute element of x (0 for empty x).
func NormInf(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// MaxAbsDiff returns max_i |x_i - y_i|; a convenience for tests and
// convergence checks.
func MaxAbsDiff(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vecmath: MaxAbsDiff length mismatch %d vs %d", len(x), len(y)))
	}
	var m float64
	for i := range x {
		if d := math.Abs(x[i] - y[i]); d > m {
			m = d
		}
	}
	return m
}

// Matrix is a dense row-major matrix. Rows*Cols == len(Data).
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zeroed rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("vecmath: NewMatrix with negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Row returns the i-th row as a slice sharing the matrix's storage.
func (m *Matrix) Row(i int) []float64 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Gemv computes y = A*x for a row-major matrix A. It panics on dimension
// mismatch. The returned slice is freshly allocated.
func Gemv(a *Matrix, x []float64) []float64 {
	y := make([]float64, a.Rows)
	GemvInto(y, a, x)
	return y
}

// GemvInto computes dst = A*x in place, fully overwriting dst. It panics on
// dimension mismatch. This is the allocation-free form of Gemv for callers
// that hold a reusable output buffer.
func GemvInto(dst []float64, a *Matrix, x []float64) {
	if a.Cols != len(x) {
		panic(fmt.Sprintf("vecmath: Gemv dimension mismatch %dx%d * %d", a.Rows, a.Cols, len(x)))
	}
	if len(dst) != a.Rows {
		panic(fmt.Sprintf("vecmath: GemvInto output length %d != %d rows", len(dst), a.Rows))
	}
	for i := 0; i < a.Rows; i++ {
		dst[i] = Dot(a.Row(i), x)
	}
}

// GemvT computes y = A^T*x. It panics on dimension mismatch.
func GemvT(a *Matrix, x []float64) []float64 {
	y := make([]float64, a.Cols)
	GemvTInto(y, a, x)
	return y
}

// GemvTInto computes dst = A^T*x in place, fully overwriting dst. It panics
// on dimension mismatch. It delegates to the blocked column-sharded kernel
// at default parallelism: each output element accumulates its row terms in
// row order regardless of the shard count, so the result is bit-for-bit
// identical to the historical serial Fill+Axpy sweep.
func GemvTInto(dst []float64, a *Matrix, x []float64) {
	ParallelGemvTInto(dst, a, x, 0)
}

// ParallelGemvTInto computes dst = A^T*x, sharding the output columns over
// up to `workers` goroutines (0 = DefaultParallelism, 1 = inline). Each
// shard owns a contiguous column block [lo, hi) and sweeps every row once,
// accumulating dst[j] += x[i]*A[i][j] in row order — the exact operation
// sequence of the serial transpose sweep, so results are bit-for-bit equal
// for every worker count.
func ParallelGemvTInto(dst []float64, a *Matrix, x []float64, workers int) {
	if a.Rows != len(x) {
		panic(fmt.Sprintf("vecmath: GemvT dimension mismatch %dx%d ^T * %d", a.Rows, a.Cols, len(x)))
	}
	if len(dst) != a.Cols {
		panic(fmt.Sprintf("vecmath: GemvTInto output length %d != %d cols", len(dst), a.Cols))
	}
	Shard(a.Cols, workers, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			dst[j] = 0
		}
		for i := 0; i < a.Rows; i++ {
			xi := x[i]
			row := a.Row(i)
			for j := lo; j < hi; j++ {
				dst[j] += xi * row[j]
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Parallel kernels
// ---------------------------------------------------------------------------

// DefaultParallelism is the goroutine fan-out used by the parallel kernels
// when the caller passes workers <= 0.
func DefaultParallelism() int { return runtime.GOMAXPROCS(0) }

// Shard invokes fn(lo, hi) over a balanced partition of [0, n) using at most
// `workers` goroutines (0 = DefaultParallelism) and waits for completion.
// Small inputs (n < 1024) and workers <= 1 run inline, so serial callers pay
// no goroutine or allocation cost. The partition is a pure function of
// (n, workers): deterministic fixed shards, which is what lets the
// element-sharded kernels built on it stay bit-for-bit reproducible.
func Shard(n, workers int, fn func(lo, hi int)) {
	if workers <= 0 {
		workers = DefaultParallelism()
	}
	// Fan-out beyond the scheduler's parallelism is pure overhead (the
	// goroutines just time-slice one another), so oversubscribed requests
	// are capped — on a single-P runtime every Shard call runs inline and
	// keeps the serial path's zero-allocation guarantee. Results do not
	// depend on the realized worker count (element-wise sharding), so the
	// cap never changes output bits.
	if max := DefaultParallelism(); workers > max {
		workers = max
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 1024 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ParallelAxpy computes y += alpha*x using up to `workers` goroutines.
// Element-wise sharding makes it bit-for-bit identical to Axpy.
func ParallelAxpy(alpha float64, x, y []float64, workers int) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vecmath: ParallelAxpy length mismatch %d vs %d", len(x), len(y)))
	}
	Shard(len(x), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			y[i] += alpha * x[i]
		}
	})
}

// ParallelGemv computes y = A*x sharding rows across goroutines; each output
// element is a serial dot product so the result is bit-for-bit equal to Gemv.
func ParallelGemv(a *Matrix, x []float64, workers int) []float64 {
	if a.Cols != len(x) {
		panic(fmt.Sprintf("vecmath: ParallelGemv dimension mismatch %dx%d * %d", a.Rows, a.Cols, len(x)))
	}
	y := make([]float64, a.Rows)
	Shard(a.Rows, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			y[i] = Dot(a.Row(i), x)
		}
	})
	return y
}

// SumVectors returns the element-wise sum of the given equal-length vectors.
// It panics if vs is empty or lengths differ. This is the "compress by
// summation" primitive of the BCC and uncoded schemes (paper eq. 12).
func SumVectors(vs [][]float64) []float64 {
	if len(vs) == 0 {
		panic("vecmath: SumVectors of empty set")
	}
	out := make([]float64, len(vs[0]))
	SumVectorsInto(out, vs)
	return out
}

// SumVectorsInto computes the element-wise sum of vs into dst, fully
// overwriting it (dst's prior contents are irrelevant, so pooled buffers can
// be passed directly). The vectors are folded in slice order, so the result
// is bit-for-bit identical to SumVectors. It panics if vs is empty or any
// length disagrees with dst.
func SumVectorsInto(dst []float64, vs [][]float64) {
	if len(vs) == 0 {
		panic("vecmath: SumVectorsInto of empty set")
	}
	if len(dst) != len(vs[0]) {
		panic(fmt.Sprintf("vecmath: SumVectorsInto output length %d != %d", len(dst), len(vs[0])))
	}
	copy(dst, vs[0])
	for _, v := range vs[1:] {
		AddInto(dst, v)
	}
}

// LinearCombination returns sum_i coeffs[i]*vs[i]. It panics if the slice
// lengths disagree or vs is empty. This is the encoding primitive of the
// coded schemes (CR/MDS): each worker transmits one linear combination of
// its partial gradients.
func LinearCombination(coeffs []float64, vs [][]float64) []float64 {
	if len(vs) == 0 {
		panic("vecmath: LinearCombination of empty set")
	}
	out := make([]float64, len(vs[0]))
	LinearCombinationInto(out, coeffs, vs)
	return out
}

// LinearCombinationInto computes sum_i coeffs[i]*vs[i] into dst, fully
// overwriting it. The accumulation starts from zero and folds terms in slice
// order — the same operation sequence as LinearCombination, so results are
// bit-for-bit identical. It panics on arity or length mismatches.
func LinearCombinationInto(dst []float64, coeffs []float64, vs [][]float64) {
	if len(vs) == 0 {
		panic("vecmath: LinearCombinationInto of empty set")
	}
	if len(coeffs) != len(vs) {
		panic(fmt.Sprintf("vecmath: LinearCombinationInto arity mismatch %d vs %d", len(coeffs), len(vs)))
	}
	if len(dst) != len(vs[0]) {
		panic(fmt.Sprintf("vecmath: LinearCombinationInto output length %d != %d", len(dst), len(vs[0])))
	}
	Fill(dst, 0)
	for i, v := range vs {
		Axpy(coeffs[i], v, dst)
	}
}

// ParallelGemvInto computes dst = A*x, sharding the output rows over up to
// `workers` goroutines (0 = DefaultParallelism, 1 = inline). Each output
// element is a serial dot product, so the result is bit-for-bit equal to
// GemvInto for every worker count.
func ParallelGemvInto(dst []float64, a *Matrix, x []float64, workers int) {
	if a.Cols != len(x) {
		panic(fmt.Sprintf("vecmath: Gemv dimension mismatch %dx%d * %d", a.Rows, a.Cols, len(x)))
	}
	if len(dst) != a.Rows {
		panic(fmt.Sprintf("vecmath: GemvInto output length %d != %d rows", len(dst), a.Rows))
	}
	Shard(a.Rows, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = Dot(a.Row(i), x)
		}
	})
}

// ParallelLinearCombinationInto computes sum_i coeffs[i]*vs[i] into dst,
// fully overwriting it, sharding the OUTPUT elements over up to `workers`
// goroutines (0 = DefaultParallelism, 1 = inline). Every element t
// accumulates its terms coeffs[i]*vs[i][t] in slice order i = 0, 1, ... —
// the same per-element operation sequence as LinearCombinationInto — so the
// result is bit-for-bit identical to the serial kernel for every worker
// count. This is the decode hot loop the coded schemes shard across cores.
func ParallelLinearCombinationInto(dst []float64, coeffs []float64, vs [][]float64, workers int) {
	if len(vs) == 0 {
		panic("vecmath: ParallelLinearCombinationInto of empty set")
	}
	if len(coeffs) != len(vs) {
		panic(fmt.Sprintf("vecmath: ParallelLinearCombinationInto arity mismatch %d vs %d", len(coeffs), len(vs)))
	}
	if len(dst) != len(vs[0]) {
		panic(fmt.Sprintf("vecmath: ParallelLinearCombinationInto output length %d != %d", len(dst), len(vs[0])))
	}
	Shard(len(dst), workers, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			dst[t] = 0
		}
		for i, v := range vs {
			c := coeffs[i]
			for t := lo; t < hi; t++ {
				dst[t] += c * v[t]
			}
		}
	})
}
