package vecmath

import (
	"math"
	"testing"
	"testing/quick"

	"bcc/internal/rngutil"
)

func randVec(rng *rngutil.RNG, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Normal()
	}
	return v
}

func TestDot(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, -5, 6}
	if got := Dot(x, y); got != 1*4-2*5+3*6 {
		t.Fatalf("Dot = %v", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot length mismatch did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAxpy(t *testing.T) {
	y := []float64{1, 1, 1}
	Axpy(2, []float64{1, 2, 3}, y)
	want := []float64{3, 5, 7}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Axpy[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestScaleAddSub(t *testing.T) {
	x := []float64{2, 4}
	Scale(0.5, x)
	if x[0] != 1 || x[1] != 2 {
		t.Fatalf("Scale result %v", x)
	}
	z := Add([]float64{1, 2}, []float64{3, 4})
	if z[0] != 4 || z[1] != 6 {
		t.Fatalf("Add result %v", z)
	}
	d := Sub([]float64{1, 2}, []float64{3, 4})
	if d[0] != -2 || d[1] != -2 {
		t.Fatalf("Sub result %v", d)
	}
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); math.Abs(got-5) > 1e-15 {
		t.Fatalf("Norm2 = %v", got)
	}
	// Overflow guard: squaring 1e200 overflows float64 but the scaled
	// algorithm must not.
	if got := Norm2([]float64{1e200, 1e200}); math.IsInf(got, 0) {
		t.Fatal("Norm2 overflowed where scaled algorithm should not")
	}
	if got := Norm2(nil); got != 0 {
		t.Fatalf("Norm2(nil) = %v", got)
	}
}

func TestNormInf(t *testing.T) {
	if got := NormInf([]float64{1, -7, 3}); got != 7 {
		t.Fatalf("NormInf = %v", got)
	}
}

func TestMaxAbsDiff(t *testing.T) {
	if got := MaxAbsDiff([]float64{1, 2}, []float64{1.5, 2}); got != 0.5 {
		t.Fatalf("MaxAbsDiff = %v", got)
	}
}

func TestMatrixAccessors(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 9)
	if m.At(1, 2) != 9 {
		t.Fatal("Set/At mismatch")
	}
	row := m.Row(1)
	row[0] = 5
	if m.At(1, 0) != 5 {
		t.Fatal("Row must share storage")
	}
	c := m.Clone()
	c.Set(0, 0, 77)
	if m.At(0, 0) == 77 {
		t.Fatal("Clone must not share storage")
	}
}

func TestGemvAgainstNaive(t *testing.T) {
	rng := rngutil.New(1)
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(30), 1+rng.Intn(30)
		a := NewMatrix(rows, cols)
		for i := range a.Data {
			a.Data[i] = rng.Normal()
		}
		x := randVec(rng, cols)
		y := Gemv(a, x)
		for i := 0; i < rows; i++ {
			var want float64
			for j := 0; j < cols; j++ {
				want += a.At(i, j) * x[j]
			}
			if math.Abs(y[i]-want) > 1e-12 {
				t.Fatalf("Gemv[%d] = %v, want %v", i, y[i], want)
			}
		}
	}
}

func TestGemvT(t *testing.T) {
	rng := rngutil.New(2)
	a := NewMatrix(4, 3)
	for i := range a.Data {
		a.Data[i] = rng.Normal()
	}
	x := randVec(rng, 4)
	y := GemvT(a, x)
	for j := 0; j < 3; j++ {
		var want float64
		for i := 0; i < 4; i++ {
			want += a.At(i, j) * x[i]
		}
		if math.Abs(y[j]-want) > 1e-12 {
			t.Fatalf("GemvT[%d] = %v, want %v", j, y[j], want)
		}
	}
}

func TestParallelAxpyMatchesSerial(t *testing.T) {
	rng := rngutil.New(3)
	for _, n := range []int{0, 1, 100, 5000} {
		x := randVec(rng, n)
		y1 := randVec(rng, n)
		y2 := Clone(y1)
		Axpy(1.7, x, y1)
		ParallelAxpy(1.7, x, y2, 4)
		for i := range y1 {
			if y1[i] != y2[i] {
				t.Fatalf("n=%d: parallel axpy diverged at %d: %v vs %v", n, i, y1[i], y2[i])
			}
		}
	}
}

func TestParallelGemvMatchesSerial(t *testing.T) {
	rng := rngutil.New(4)
	a := NewMatrix(137, 64)
	for i := range a.Data {
		a.Data[i] = rng.Normal()
	}
	x := randVec(rng, 64)
	y1 := Gemv(a, x)
	y2 := ParallelGemv(a, x, 8)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatalf("parallel gemv diverged at row %d", i)
		}
	}
}

func TestSumVectors(t *testing.T) {
	s := SumVectors([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if s[0] != 9 || s[1] != 12 {
		t.Fatalf("SumVectors = %v", s)
	}
}

func TestSumVectorsDoesNotAliasInput(t *testing.T) {
	v := []float64{1, 2}
	s := SumVectors([][]float64{v})
	s[0] = 99
	if v[0] == 99 {
		t.Fatal("SumVectors must copy its first argument")
	}
}

func TestLinearCombination(t *testing.T) {
	out := LinearCombination([]float64{2, -1}, [][]float64{{1, 0}, {0, 1}})
	if out[0] != 2 || out[1] != -1 {
		t.Fatalf("LinearCombination = %v", out)
	}
}

func TestLinearCombinationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch did not panic")
		}
	}()
	LinearCombination([]float64{1}, [][]float64{{1}, {2}})
}

// Property: Dot is symmetric and linear in its first argument.
func TestDotPropertyLinear(t *testing.T) {
	rng := rngutil.New(5)
	f := func(seed uint64) bool {
		r := rngutil.New(seed)
		n := 1 + r.Intn(64)
		x, y, z := randVec(r, n), randVec(r, n), randVec(r, n)
		alpha := r.Normal()
		// <x+alpha*z, y> == <x,y> + alpha*<z,y> up to roundoff
		lhsVec := Clone(x)
		Axpy(alpha, z, lhsVec)
		lhs := Dot(lhsVec, y)
		rhs := Dot(x, y) + alpha*Dot(z, y)
		scale := math.Max(1, math.Abs(lhs))
		return math.Abs(lhs-rhs) < 1e-10*scale
	}
	cfg := &quick.Config{MaxCount: 200, Rand: nil}
	_ = rng
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Gemv distributes over vector addition.
func TestGemvPropertyAdditive(t *testing.T) {
	f := func(seed uint64) bool {
		r := rngutil.New(seed)
		rows, cols := 1+r.Intn(16), 1+r.Intn(16)
		a := NewMatrix(rows, cols)
		for i := range a.Data {
			a.Data[i] = r.Normal()
		}
		x, y := randVec(r, cols), randVec(r, cols)
		lhs := Gemv(a, Add(x, y))
		rhs := Add(Gemv(a, x), Gemv(a, y))
		return MaxAbsDiff(lhs, rhs) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
