package vecmath

import (
	"testing"
)

// FuzzCSRRoundTrip feeds arbitrary byte strings as a tiny dense matrix and
// checks the CSR invariants: compression validates under NewCSR, expands
// back to the identical dense matrix, and the row kernels agree with the
// dense ones bit-for-bit.
func FuzzCSRRoundTrip(f *testing.F) {
	f.Add(uint8(3), uint8(4), []byte{0, 1, 0, 2, 0, 0, 3, 0, 0, 0, 0, 4})
	f.Add(uint8(1), uint8(1), []byte{0})
	f.Add(uint8(2), uint8(2), []byte{255, 0, 0, 128})
	f.Fuzz(func(t *testing.T, rows, cols uint8, data []byte) {
		r := int(rows)%8 + 1
		c := int(cols)%8 + 1
		m := NewMatrix(r, c)
		for i := range m.Data {
			if i < len(data) && data[i] != 0 {
				// Spread the byte into a signed value with exact zeros kept.
				m.Data[i] = float64(int(data[i]) - 128)
			}
		}
		csr := CSRFromDense(m)
		// The compression must satisfy the NewCSR invariants verbatim.
		if _, err := NewCSR(csr.Rows, csr.Cols, csr.RowPtr, csr.ColIdx, csr.Val); err != nil {
			t.Fatalf("CSRFromDense output fails validation: %v", err)
		}
		if back := csr.ToDense(); MaxAbsDiff(m.Data, back.Data) != 0 {
			t.Fatal("dense -> CSR -> dense is not the identity")
		}
		x := make([]float64, c)
		for j := range x {
			x[j] = float64(j) - 1.5
		}
		for i := 0; i < r; i++ {
			if d, s := m.RowDot(i, x), csr.RowDot(i, x); d != s {
				t.Fatalf("row %d: dense dot %v != csr dot %v", i, d, s)
			}
			dd, ss := Clone(x), Clone(x)
			m.RowAxpy(2.5, i, dd)
			csr.RowAxpy(2.5, i, ss)
			if MaxAbsDiff(dd, ss) != 0 {
				t.Fatalf("row %d: RowAxpy diverged", i)
			}
		}
	})
}
