package vecmath

// This file is the sparse half of the compute plane: the AnyMatrix
// abstraction every gradient kernel is written against, and a CSR
// (compressed sparse row) implementation whose row kernels cost O(nnz of the
// row) instead of O(p). The dense Matrix implements the same interface with
// its existing row-major storage, and — crucially for the cross-runtime
// conformance suites — a CSR matrix holding exactly the nonzeros of a dense
// one produces bit-identical dot products and gradient accumulations on
// finite data: skipping a stored zero skips adding an exact +-0.0 term,
// which cannot change a finite partial sum.

import (
	"fmt"
	"sort"
)

// AnyMatrix is the read-only matrix surface the model gradients and the
// full-matrix kernels are written against. Dense (*Matrix) and sparse
// (*CSR) storage both implement it; the row kernels are the per-example
// hot path (one RowDot + one RowAxpy per data point per gradient), so
// implementations keep them allocation-free.
type AnyMatrix interface {
	// Dims returns (rows, cols).
	Dims() (rows, cols int)
	// At returns element (i, j).
	At(i, j int) float64
	// NNZ returns the number of stored entries (rows*cols for dense).
	NNZ() int
	// RowDot returns the inner product of row i with x (len(x) == cols).
	RowDot(i int, x []float64) float64
	// RowAxpy accumulates dst += alpha * row_i (len(dst) == cols).
	RowAxpy(alpha float64, i int, dst []float64)
	// RowTo gathers row i densely into dst (len(dst) == cols), fully
	// overwriting it.
	RowTo(i int, dst []float64)
	// MulVecInto computes dst = A*x (len(dst) == rows, len(x) == cols).
	MulVecInto(dst, x []float64)
	// MulVecTInto computes dst = A^T*x (len(dst) == cols, len(x) == rows).
	MulVecTInto(dst, x []float64)
}

// ---------------------------------------------------------------------------
// Dense Matrix: AnyMatrix implementation
// ---------------------------------------------------------------------------

// Dims implements AnyMatrix.
func (m *Matrix) Dims() (int, int) { return m.Rows, m.Cols }

// NNZ implements AnyMatrix; every dense entry is stored.
func (m *Matrix) NNZ() int { return m.Rows * m.Cols }

// RowDot implements AnyMatrix with the same serial fold as Dot, so results
// are bit-identical to the historical Dot(m.Row(i), x) call sites.
func (m *Matrix) RowDot(i int, x []float64) float64 { return Dot(m.Row(i), x) }

// RowAxpy implements AnyMatrix.
func (m *Matrix) RowAxpy(alpha float64, i int, dst []float64) { Axpy(alpha, m.Row(i), dst) }

// RowTo implements AnyMatrix.
func (m *Matrix) RowTo(i int, dst []float64) {
	if len(dst) != m.Cols {
		panic(fmt.Sprintf("vecmath: RowTo buffer %d != %d cols", len(dst), m.Cols))
	}
	copy(dst, m.Row(i))
}

// MulVecInto implements AnyMatrix via the dense GemvInto kernel.
func (m *Matrix) MulVecInto(dst, x []float64) { GemvInto(dst, m, x) }

// MulVecTInto implements AnyMatrix via the blocked GemvTInto kernel.
func (m *Matrix) MulVecTInto(dst, x []float64) { GemvTInto(dst, m, x) }

var _ AnyMatrix = (*Matrix)(nil)

// ---------------------------------------------------------------------------
// CSR
// ---------------------------------------------------------------------------

// CSR is a compressed-sparse-row matrix: row i's entries are
// Val[RowPtr[i]:RowPtr[i+1]] at column indices ColIdx[RowPtr[i]:RowPtr[i+1]],
// strictly increasing within each row. All kernels cost O(nnz) instead of
// O(rows*cols).
type CSR struct {
	Rows, Cols int
	RowPtr     []int // length Rows+1, non-decreasing, RowPtr[0] == 0
	ColIdx     []int // length NNZ, strictly increasing within each row
	Val        []float64
}

// NewCSR validates and wraps raw CSR storage. It returns an error (rather
// than panicking) because the inputs may come from external files.
func NewCSR(rows, cols int, rowPtr, colIdx []int, val []float64) (*CSR, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("vecmath: CSR with negative dimension %dx%d", rows, cols)
	}
	if len(rowPtr) != rows+1 {
		return nil, fmt.Errorf("vecmath: CSR RowPtr length %d != rows+1 = %d", len(rowPtr), rows+1)
	}
	if rowPtr[0] != 0 {
		return nil, fmt.Errorf("vecmath: CSR RowPtr[0] = %d, want 0", rowPtr[0])
	}
	if len(colIdx) != len(val) {
		return nil, fmt.Errorf("vecmath: CSR ColIdx length %d != Val length %d", len(colIdx), len(val))
	}
	if rowPtr[rows] != len(val) {
		return nil, fmt.Errorf("vecmath: CSR RowPtr[rows] = %d != nnz %d", rowPtr[rows], len(val))
	}
	for i := 0; i < rows; i++ {
		lo, hi := rowPtr[i], rowPtr[i+1]
		if lo > hi {
			return nil, fmt.Errorf("vecmath: CSR RowPtr decreases at row %d", i)
		}
		prev := -1
		for k := lo; k < hi; k++ {
			j := colIdx[k]
			if j < 0 || j >= cols {
				return nil, fmt.Errorf("vecmath: CSR row %d references column %d outside [0,%d)", i, j, cols)
			}
			if j <= prev {
				return nil, fmt.Errorf("vecmath: CSR row %d columns not strictly increasing at entry %d", i, k)
			}
			prev = j
		}
	}
	return &CSR{Rows: rows, Cols: cols, RowPtr: rowPtr, ColIdx: colIdx, Val: val}, nil
}

// CSRFromDense compresses a dense matrix, dropping exact zeros. The result
// reproduces the dense matrix's gradient kernels bit-for-bit on finite data.
func CSRFromDense(m *Matrix) *CSR {
	nnz := 0
	for _, v := range m.Data {
		if v != 0 {
			nnz++
		}
	}
	c := &CSR{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: make([]int, m.Rows+1),
		ColIdx: make([]int, 0, nnz),
		Val:    make([]float64, 0, nnz),
	}
	for i := 0; i < m.Rows; i++ {
		for j, v := range m.Row(i) {
			if v != 0 {
				c.ColIdx = append(c.ColIdx, j)
				c.Val = append(c.Val, v)
			}
		}
		c.RowPtr[i+1] = len(c.Val)
	}
	return c
}

// ToDense expands the CSR matrix into freshly-allocated dense storage.
func (c *CSR) ToDense() *Matrix {
	m := NewMatrix(c.Rows, c.Cols)
	for i := 0; i < c.Rows; i++ {
		row := m.Row(i)
		for k := c.RowPtr[i]; k < c.RowPtr[i+1]; k++ {
			row[c.ColIdx[k]] = c.Val[k]
		}
	}
	return m
}

// Dims implements AnyMatrix.
func (c *CSR) Dims() (int, int) { return c.Rows, c.Cols }

// NNZ implements AnyMatrix.
func (c *CSR) NNZ() int { return len(c.Val) }

// At implements AnyMatrix by binary search within the row.
func (c *CSR) At(i, j int) float64 {
	lo, hi := c.RowPtr[i], c.RowPtr[i+1]
	idx := c.ColIdx[lo:hi]
	k := sort.SearchInts(idx, j)
	if k < len(idx) && idx[k] == j {
		return c.Val[lo+k]
	}
	return 0
}

// RowDot implements AnyMatrix in O(nnz of row i): the stored entries are
// folded in column order, the same order in which the dense kernel meets
// them, so on finite data the result is bit-identical to the dense dot.
func (c *CSR) RowDot(i int, x []float64) float64 {
	if c.Cols != len(x) {
		panic(fmt.Sprintf("vecmath: CSR RowDot dimension mismatch %d cols vs %d", c.Cols, len(x)))
	}
	var s float64
	for k := c.RowPtr[i]; k < c.RowPtr[i+1]; k++ {
		s += c.Val[k] * x[c.ColIdx[k]]
	}
	return s
}

// RowAxpy implements AnyMatrix in O(nnz of row i).
func (c *CSR) RowAxpy(alpha float64, i int, dst []float64) {
	if c.Cols != len(dst) {
		panic(fmt.Sprintf("vecmath: CSR RowAxpy dimension mismatch %d cols vs %d", c.Cols, len(dst)))
	}
	for k := c.RowPtr[i]; k < c.RowPtr[i+1]; k++ {
		dst[c.ColIdx[k]] += alpha * c.Val[k]
	}
}

// RowTo implements AnyMatrix: zero the buffer, scatter the stored entries.
func (c *CSR) RowTo(i int, dst []float64) {
	if len(dst) != c.Cols {
		panic(fmt.Sprintf("vecmath: RowTo buffer %d != %d cols", len(dst), c.Cols))
	}
	Fill(dst, 0)
	for k := c.RowPtr[i]; k < c.RowPtr[i+1]; k++ {
		dst[c.ColIdx[k]] = c.Val[k]
	}
}

// MulVecInto implements AnyMatrix: dst = A*x in O(nnz).
func (c *CSR) MulVecInto(dst, x []float64) {
	if c.Cols != len(x) {
		panic(fmt.Sprintf("vecmath: CSR MulVec dimension mismatch %dx%d * %d", c.Rows, c.Cols, len(x)))
	}
	if len(dst) != c.Rows {
		panic(fmt.Sprintf("vecmath: CSR MulVec output length %d != %d rows", len(dst), c.Rows))
	}
	for i := 0; i < c.Rows; i++ {
		dst[i] = c.RowDot(i, x)
	}
}

// MulVecTInto implements AnyMatrix: dst = A^T*x in O(nnz), accumulating row
// contributions in row order (the same order as the dense transpose sweep).
func (c *CSR) MulVecTInto(dst, x []float64) {
	if c.Rows != len(x) {
		panic(fmt.Sprintf("vecmath: CSR MulVecT dimension mismatch %dx%d ^T * %d", c.Rows, c.Cols, len(x)))
	}
	if len(dst) != c.Cols {
		panic(fmt.Sprintf("vecmath: CSR MulVecT output length %d != %d cols", len(dst), c.Cols))
	}
	Fill(dst, 0)
	for i := 0; i < c.Rows; i++ {
		c.RowAxpy(x[i], i, dst)
	}
}

var _ AnyMatrix = (*CSR)(nil)
