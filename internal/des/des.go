// Package des is a small discrete-event simulation engine: a virtual clock
// and an event heap with deterministic tie-breaking. The cluster simulator
// (internal/cluster) originally ran its timing model on this heap; its
// one-upload-event-per-worker rounds now use an equivalent allocation-free
// stable ordering instead (see internal/cluster/sim.go), and this engine
// remains the general substrate for future event-driven runtimes
// (asynchronous/SSP masters, event-coupled multi-round pipelines) whose
// event sets are dynamic rather than known up front.
package des

import (
	"container/heap"
	"fmt"
	"math"
)

// Handle identifies a scheduled event and can be used to cancel it.
type Handle struct {
	ev *event
}

type event struct {
	time  float64
	seq   uint64 // insertion order breaks time ties deterministically
	fn    func()
	index int // heap index; -1 once removed
	dead  bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Scheduler is a single-threaded discrete-event scheduler. The zero value is
// ready to use with the clock at 0. It is NOT safe for concurrent use.
type Scheduler struct {
	now    float64
	seq    uint64
	events eventHeap
	nRun   uint64
}

// Now returns the current virtual time.
func (s *Scheduler) Now() float64 { return s.now }

// Processed returns the number of events executed so far.
func (s *Scheduler) Processed() uint64 { return s.nRun }

// Pending returns the number of events waiting to fire.
func (s *Scheduler) Pending() int { return len(s.events) }

// At schedules fn at absolute virtual time t. Scheduling in the past panics:
// a simulation that needs it has a logic bug.
func (s *Scheduler) At(t float64, fn func()) Handle {
	if t < s.now {
		panic(fmt.Sprintf("des: scheduling at %v before now %v", t, s.now))
	}
	if math.IsNaN(t) {
		panic("des: scheduling at NaN time")
	}
	ev := &event{time: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, ev)
	return Handle{ev: ev}
}

// After schedules fn after a non-negative virtual delay d.
func (s *Scheduler) After(d float64, fn func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("des: negative delay %v", d))
	}
	return s.At(s.now+d, fn)
}

// Cancel removes a scheduled event; cancelling an already-fired or
// already-cancelled event is a no-op. It reports whether the event was
// actually cancelled.
func (s *Scheduler) Cancel(h Handle) bool {
	ev := h.ev
	if ev == nil || ev.dead || ev.index < 0 {
		return false
	}
	ev.dead = true
	heap.Remove(&s.events, ev.index)
	return true
}

// Step executes the single earliest pending event; it reports whether an
// event was executed.
func (s *Scheduler) Step() bool {
	for len(s.events) > 0 {
		ev := heap.Pop(&s.events).(*event)
		if ev.dead {
			continue
		}
		s.now = ev.time
		s.nRun++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until none remain and returns the final time.
func (s *Scheduler) Run() float64 {
	for s.Step() {
	}
	return s.now
}

// RunUntil executes events with time <= t, then advances the clock to t
// (even if idle) and returns the number of events executed.
func (s *Scheduler) RunUntil(t float64) int {
	if t < s.now {
		panic(fmt.Sprintf("des: RunUntil(%v) before now %v", t, s.now))
	}
	n := 0
	for len(s.events) > 0 {
		// Peek: events[0] is the earliest live event only after skipping
		// dead ones, so pop-and-check like Step does.
		if s.events[0].dead {
			heap.Pop(&s.events)
			continue
		}
		if s.events[0].time > t {
			break
		}
		s.Step()
		n++
	}
	s.now = t
	return n
}
