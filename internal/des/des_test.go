package des

import (
	"testing"
	"testing/quick"

	"bcc/internal/rngutil"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	var s Scheduler
	var order []int
	s.At(3, func() { order = append(order, 3) })
	s.At(1, func() { order = append(order, 1) })
	s.At(2, func() { order = append(order, 2) })
	end := s.Run()
	if end != 3 {
		t.Fatalf("final time %v", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestTieBreakIsInsertionOrder(t *testing.T) {
	var s Scheduler
	var order []string
	s.At(5, func() { order = append(order, "a") })
	s.At(5, func() { order = append(order, "b") })
	s.At(5, func() { order = append(order, "c") })
	s.Run()
	if got := order[0] + order[1] + order[2]; got != "abc" {
		t.Fatalf("tie order = %q", got)
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	var s Scheduler
	var at float64
	s.At(10, func() {
		s.After(5, func() { at = s.Now() })
	})
	s.Run()
	if at != 15 {
		t.Fatalf("nested After fired at %v", at)
	}
}

func TestCancel(t *testing.T) {
	var s Scheduler
	fired := false
	h := s.At(1, func() { fired = true })
	if !s.Cancel(h) {
		t.Fatal("first cancel should succeed")
	}
	if s.Cancel(h) {
		t.Fatal("second cancel should be a no-op")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelAfterFire(t *testing.T) {
	var s Scheduler
	h := s.At(1, func() {})
	s.Run()
	if s.Cancel(h) {
		t.Fatal("cancelling a fired event should report false")
	}
}

func TestRunUntil(t *testing.T) {
	var s Scheduler
	var fired []float64
	for _, tt := range []float64{1, 2, 3, 4, 5} {
		tt := tt
		s.At(tt, func() { fired = append(fired, tt) })
	}
	n := s.RunUntil(3)
	if n != 3 {
		t.Fatalf("RunUntil executed %d events", n)
	}
	if s.Now() != 3 {
		t.Fatalf("clock at %v", s.Now())
	}
	if s.Pending() != 2 {
		t.Fatalf("pending = %d", s.Pending())
	}
	// Idle advance.
	var s2 Scheduler
	s2.RunUntil(7)
	if s2.Now() != 7 {
		t.Fatalf("idle RunUntil clock %v", s2.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	var s Scheduler
	s.At(5, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(1, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	var s Scheduler
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	s.After(-1, func() {})
}

func TestProcessedCount(t *testing.T) {
	var s Scheduler
	for i := 0; i < 10; i++ {
		s.After(float64(i), func() {})
	}
	s.Run()
	if s.Processed() != 10 {
		t.Fatalf("Processed = %d", s.Processed())
	}
}

func TestCascadingEvents(t *testing.T) {
	// An event chain where each event schedules the next; total must match.
	var s Scheduler
	count := 0
	var chain func()
	chain = func() {
		count++
		if count < 100 {
			s.After(1, chain)
		}
	}
	s.After(0, chain)
	end := s.Run()
	if count != 100 {
		t.Fatalf("chain executed %d times", count)
	}
	if end != 99 {
		t.Fatalf("end time %v", end)
	}
}

// Property: random schedules always execute in non-decreasing time order.
func TestMonotoneClockProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rngutil.New(seed)
		var s Scheduler
		n := 1 + rng.Intn(200)
		times := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			tt := rng.Float64() * 100
			s.At(tt, func() { times = append(times, s.Now()) })
		}
		s.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelled subsets never fire, everything else does.
func TestCancelSubsetProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rngutil.New(seed)
		var s Scheduler
		n := 1 + rng.Intn(100)
		fired := make([]bool, n)
		handles := make([]Handle, n)
		for i := 0; i < n; i++ {
			i := i
			handles[i] = s.At(rng.Float64()*10, func() { fired[i] = true })
		}
		cancelled := make([]bool, n)
		for i := 0; i < n; i++ {
			if rng.Bernoulli(0.3) {
				cancelled[i] = true
				s.Cancel(handles[i])
			}
		}
		s.Run()
		for i := 0; i < n; i++ {
			if fired[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
