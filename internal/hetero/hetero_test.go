package hetero

import (
	"math"
	"testing"

	"bcc/internal/rngutil"
)

func uniformCluster(n int, mu, shift float64) Cluster {
	c := make(Cluster, n)
	for i := range c {
		c[i] = WorkerParams{Mu: mu, Shift: shift}
	}
	return c
}

func TestValidate(t *testing.T) {
	if err := (Cluster{}).Validate(); err == nil {
		t.Fatal("empty cluster accepted")
	}
	if err := (Cluster{{Mu: 0, Shift: 1}}).Validate(); err == nil {
		t.Fatal("mu=0 accepted")
	}
	if err := (Cluster{{Mu: 1, Shift: -1}}).Validate(); err == nil {
		t.Fatal("negative shift accepted")
	}
	if err := uniformCluster(3, 1, 1).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSampleTimesRespectsShift(t *testing.T) {
	rng := rngutil.New(1)
	c := uniformCluster(4, 2, 5)
	loads := []int{1, 2, 3, 0}
	for trial := 0; trial < 100; trial++ {
		times := c.SampleTimes(loads, rng)
		for i, tt := range times {
			if loads[i] == 0 {
				if tt != 0 {
					t.Fatalf("zero load should take zero time, got %v", tt)
				}
				continue
			}
			if tt < 5*float64(loads[i]) {
				t.Fatalf("time %v below shift %v", tt, 5*float64(loads[i]))
			}
		}
	}
}

func TestSampleTimesMean(t *testing.T) {
	rng := rngutil.New(2)
	c := Cluster{{Mu: 2, Shift: 3}}
	loads := []int{4}
	var sum float64
	const trials = 200000
	for k := 0; k < trials; k++ {
		sum += c.SampleTimes(loads, rng)[0]
	}
	// E[T] = a*r + r/mu = 12 + 2 = 14.
	if got := sum / trials; math.Abs(got-14) > 0.1 {
		t.Fatalf("mean %v, want 14", got)
	}
}

func TestCompletionCDF(t *testing.T) {
	c := Cluster{{Mu: 1, Shift: 2}}
	if p := c.CompletionCDF(0, 3, 5.9); p != 0 {
		t.Fatalf("CDF before shift should be 0, got %v", p)
	}
	if p := c.CompletionCDF(0, 3, 6); p != 0 {
		t.Fatalf("CDF at shift should be 0, got %v", p)
	}
	p1 := c.CompletionCDF(0, 3, 9)
	p2 := c.CompletionCDF(0, 3, 20)
	if !(0 < p1 && p1 < p2 && p2 < 1) {
		t.Fatalf("CDF not increasing: %v, %v", p1, p2)
	}
	if p := c.CompletionCDF(0, 0, 0); p != 1 {
		t.Fatalf("zero load CDF should be 1, got %v", p)
	}
}

func TestTHatRealization(t *testing.T) {
	loads := []int{3, 2, 5}
	times := []float64{10, 4, 7}
	// Sorted by time: worker1(t=4,r=2), worker2(t=7,r=5), worker0(t=10,r=3).
	if got := THatRealization(loads, times, 2); got != 4 {
		t.Fatalf("T̂(2) = %v", got)
	}
	if got := THatRealization(loads, times, 3); got != 7 {
		t.Fatalf("T̂(3) = %v", got)
	}
	if got := THatRealization(loads, times, 8); got != 10 {
		t.Fatalf("T̂(8) = %v", got)
	}
	if got := THatRealization(loads, times, 11); !math.IsInf(got, 1) {
		t.Fatalf("T̂(11) should be +Inf, got %v", got)
	}
}

func TestMonotonicityLemma(t *testing.T) {
	// Lemma 1: T̂(s1) <= T̂(s2) for s1 <= s2 holds for EVERY realization
	// (that is exactly the paper's proof), hence also in expectation. Check
	// it per-realization with common random numbers.
	rng := rngutil.New(3)
	c := Cluster{{Mu: 1, Shift: 2}, {Mu: 5, Shift: 1}, {Mu: 0.5, Shift: 3}, {Mu: 2, Shift: 0.5}}
	loads := []int{3, 4, 2, 5}
	for trial := 0; trial < 2000; trial++ {
		times := c.SampleTimes(loads, rng)
		prev := 0.0
		for s := 1; s <= 14; s++ {
			v := THatRealization(loads, times, s)
			if v < prev {
				t.Fatalf("monotonicity violated at s=%d: %v < %v", s, v, prev)
			}
			prev = v
		}
	}
}

func TestAllocateMeetsTarget(t *testing.T) {
	c := PaperFig5Cluster()
	s := 1000
	alloc, err := c.Allocate(s)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.TotalLoad() < s {
		t.Fatalf("allocation total %d below target %d", alloc.TotalLoad(), s)
	}
	if alloc.Tau <= 0 {
		t.Fatalf("tau = %v", alloc.Tau)
	}
	if math.Abs(alloc.ExpectedWork-float64(s)) > 0.01*float64(s) {
		t.Fatalf("expected work %v, want ~%d", alloc.ExpectedWork, s)
	}
	// At the solution the master should reach s near tau on average.
	rng := rngutil.New(4)
	e := c.ExpectedTHat(alloc.Loads, s, 3000, rng)
	if e > 1.3*alloc.Tau || e < 0.7*alloc.Tau {
		t.Fatalf("E[T̂(s)] = %v far from tau %v", e, alloc.Tau)
	}
}

func TestAllocateFavorsFastWorkers(t *testing.T) {
	// Workers with a light tail and the same shift should carry no less load
	// than heavy-tail workers.
	c := Cluster{{Mu: 0.1, Shift: 1}, {Mu: 10, Shift: 1}}
	alloc, err := c.Allocate(20)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Loads[1] < alloc.Loads[0] {
		t.Fatalf("fast worker got %d < slow worker's %d", alloc.Loads[1], alloc.Loads[0])
	}
}

func TestAllocateRejectsBadInput(t *testing.T) {
	c := uniformCluster(2, 1, 1)
	if _, err := c.Allocate(0); err == nil {
		t.Fatal("s=0 accepted")
	}
	if _, err := (Cluster{}).Allocate(5); err == nil {
		t.Fatal("empty cluster accepted")
	}
}

func TestLoadBalancedLoads(t *testing.T) {
	c := Cluster{{Mu: 1, Shift: 1}, {Mu: 3, Shift: 1}}
	loads := c.LoadBalancedLoads(8)
	if loads[0]+loads[1] != 8 {
		t.Fatalf("loads %v must sum to 8", loads)
	}
	if loads[1] != 6 || loads[0] != 2 {
		t.Fatalf("loads %v, want proportional [2 6]", loads)
	}
	// Rounding: sum must be exact even when fractions don't divide.
	c3 := Cluster{{Mu: 1, Shift: 1}, {Mu: 1, Shift: 1}, {Mu: 1, Shift: 1}}
	l3 := c3.LoadBalancedLoads(10)
	if l3[0]+l3[1]+l3[2] != 10 {
		t.Fatalf("loads %v must sum to 10", l3)
	}
}

func TestPaperFig5Cluster(t *testing.T) {
	c := PaperFig5Cluster()
	if len(c) != 100 {
		t.Fatalf("n = %d", len(c))
	}
	slow, fast := 0, 0
	for _, w := range c {
		if w.Shift != 20 {
			t.Fatalf("shift %v != 20", w.Shift)
		}
		switch w.Mu {
		case 1:
			slow++
		case 20:
			fast++
		default:
			t.Fatalf("unexpected mu %v", w.Mu)
		}
	}
	if slow != 95 || fast != 5 {
		t.Fatalf("mu split %d/%d, want 95/5", slow, fast)
	}
}

func TestFig5ShapeGeneralizedBCCBeatsLB(t *testing.T) {
	// The paper's headline heterogeneous result: generalized BCC reduces the
	// average completion time by ~29% vs the LB assignment. Assert the
	// direction and a >= 15% factor at reduced trial counts.
	c := PaperFig5Cluster()
	m := 500
	rng := rngutil.New(5)
	lb := c.LBResult(m, 300, rng)
	s := int(float64(m) * math.Log(float64(m)))
	alloc, err := c.Allocate(s)
	if err != nil {
		t.Fatal(err)
	}
	bccMean, failures := c.CoverageResult(m, alloc.Loads, 300, rng)
	// With s = floor(m log m) exactly, a sizeable fraction of trials cannot
	// reach coverage (expected number of uncovered examples ~ 1); the mean
	// is conditional on coverage, mirroring the paper's protocol.
	if covered := 300 - failures; covered < 100 {
		t.Fatalf("only %d/300 trials reached coverage", covered)
	}
	if bccMean >= lb {
		t.Fatalf("generalized BCC (%v) not faster than LB (%v)", bccMean, lb)
	}
	reduction := 1 - bccMean/lb
	if reduction < 0.15 {
		t.Fatalf("reduction %.1f%% too small (paper: 29.28%%)", 100*reduction)
	}
	t.Logf("LB %.1f vs generalized BCC %.1f: %.2f%% reduction (paper: 29.28%%), %d/300 coverage failures",
		lb, bccMean, 100*reduction, failures)
	// The retrying variant terminates on every trial and must still beat LB.
	retryMean := c.CoverageResultRetry(m, alloc.Loads, 300, 4, rng)
	if retryMean >= lb {
		t.Fatalf("retrying generalized BCC (%v) not faster than LB (%v)", retryMean, lb)
	}
}

func TestCoverageResultCompleteness(t *testing.T) {
	// Every worker holds all m examples: coverage occurs at the FIRST finish
	// time.
	rng := rngutil.New(6)
	c := uniformCluster(5, 1, 1)
	m := 10
	loads := []int{10, 10, 10, 10, 10}
	mean, failures := c.CoverageResult(m, loads, 500, rng)
	if failures != 0 {
		t.Fatalf("failures = %d", failures)
	}
	// First order statistic of 5 iid shift-exp (shift 10, tail mean 10):
	// E[min] = 10 + 10/5 = 12.
	if math.Abs(mean-12) > 1 {
		t.Fatalf("mean %v, want ~12", mean)
	}
}

func TestCoverageFailureCounting(t *testing.T) {
	rng := rngutil.New(7)
	c := uniformCluster(2, 1, 1)
	// Two workers sampling 1 of 3 examples each can never cover all 3.
	_, failures := c.CoverageResult(3, []int{1, 1}, 50, rng)
	if failures != 50 {
		t.Fatalf("failures = %d, want 50", failures)
	}
}

func TestTheoremTwoC(t *testing.T) {
	c := PaperFig5Cluster()
	got := c.TheoremTwoC(500)
	// c = 2 + log(20 + H_100/1)/log(500); H_100 ~ 5.187.
	want := 2 + math.Log(20+5.187377517639621)/math.Log(500)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("c = %v, want %v", got, want)
	}
	if got < 2 {
		t.Fatal("c must exceed 2")
	}
}

func TestTheoremTwoBoundsOrdered(t *testing.T) {
	c := uniformCluster(30, 1, 2)
	rng := rngutil.New(8)
	lower, upper, err := c.TheoremTwoBounds(40, 400, rng)
	if err != nil {
		t.Fatal(err)
	}
	if lower >= upper {
		t.Fatalf("lower bound %v not below upper bound %v", lower, upper)
	}
}
