// Package hetero implements the paper's heterogeneous-cluster extension
// (§IV): the shift-exponential worker model (eq. 15), the waiting-time
// functional T̂(s) (eq. 18), an HCMM-style load allocator for problem P2
// (eq. 19, following Reisizadeh et al. [16]), the load-balancing baseline of
// §IV-C, the generalized-BCC coverage process (eq. 16), and the constant c
// of Theorem 2.
package hetero

import (
	"fmt"
	"math"
	"sort"

	"bcc/internal/coupon"
	"bcc/internal/optimize"
	"bcc/internal/rngutil"
)

// WorkerParams are the straggler (mu) and shift (a) parameters of one
// worker: processing r examples takes a*r plus an Exp(mu/r) tail (eq. 15).
type WorkerParams struct {
	Mu    float64 // straggler parameter, > 0
	Shift float64 // shift parameter a, >= 0
}

// Cluster is a heterogeneous set of workers.
type Cluster []WorkerParams

// Validate checks the parameters are admissible.
func (c Cluster) Validate() error {
	if len(c) == 0 {
		return fmt.Errorf("hetero: empty cluster")
	}
	for i, w := range c {
		if w.Mu <= 0 {
			return fmt.Errorf("hetero: worker %d has mu=%v, need > 0", i, w.Mu)
		}
		if w.Shift < 0 {
			return fmt.Errorf("hetero: worker %d has negative shift %v", i, w.Shift)
		}
	}
	return nil
}

// SampleTimes draws every worker's completion time for the given integer
// loads (examples per worker). A zero load yields time 0 and contributes no
// work.
func (c Cluster) SampleTimes(loads []int, rng *rngutil.RNG) []float64 {
	if len(loads) != len(c) {
		panic(fmt.Sprintf("hetero: %d loads for %d workers", len(loads), len(c)))
	}
	times := make([]float64, len(c))
	for i, w := range c {
		if loads[i] <= 0 {
			times[i] = 0
			continue
		}
		times[i] = rng.ShiftedExponential(w.Mu, w.Shift, float64(loads[i]))
	}
	return times
}

// CompletionCDF returns P(T_i <= t) for worker i carrying the given load.
func (c Cluster) CompletionCDF(i int, load float64, t float64) float64 {
	if load <= 0 {
		return 1
	}
	w := c[i]
	shift := w.Shift * load
	if t < shift {
		return 0
	}
	return 1 - math.Exp(-(w.Mu/load)*(t-shift))
}

// THatRealization computes one realization of T̂(s) (eq. 18): the earliest
// time by which the workers that have finished deliver at least s partial
// gradients (with multiplicity). It returns +Inf when the total work is
// below s.
func THatRealization(loads []int, times []float64, s int) float64 {
	if len(loads) != len(times) {
		panic("hetero: loads/times length mismatch")
	}
	type ft struct {
		t float64
		r int
	}
	fts := make([]ft, 0, len(loads))
	for i, r := range loads {
		if r > 0 {
			fts = append(fts, ft{times[i], r})
		}
	}
	sort.Slice(fts, func(a, b int) bool { return fts[a].t < fts[b].t })
	acc := 0
	for _, x := range fts {
		acc += x.r
		if acc >= s {
			return x.t
		}
	}
	return math.Inf(1)
}

// ExpectedTHat estimates E[T̂(s)] by Monte-Carlo over `trials` samples.
func (c Cluster) ExpectedTHat(loads []int, s, trials int, rng *rngutil.RNG) float64 {
	if trials <= 0 {
		panic("hetero: ExpectedTHat with no trials")
	}
	var sum float64
	for k := 0; k < trials; k++ {
		sum += THatRealization(loads, c.SampleTimes(loads, rng), s)
	}
	return sum / float64(trials)
}

// ---------------------------------------------------------------------------
// Load allocation (problem P2, following Reisizadeh et al.)
// ---------------------------------------------------------------------------

// Allocation is the result of solving P2 approximately.
type Allocation struct {
	// Loads are the per-worker example counts r_i.
	Loads []int
	// Tau is the deadline at which the expected aggregated work first
	// reaches the target s.
	Tau float64
	// ExpectedWork is sum_i r_i * P(T_i <= Tau) at the solution.
	ExpectedWork float64
}

// TotalLoad returns sum_i r_i.
func (a Allocation) TotalLoad() int {
	t := 0
	for _, r := range a.Loads {
		t += r
	}
	return t
}

// expectedWorkByTau returns, for a deadline tau, each worker's optimal
// continuous load r_i(tau) = argmax_r r*P(T_i <= tau) and the aggregate
// expected work sum_i r_i(tau) * P(T_i <= tau).
func (c Cluster) expectedWorkByTau(tau float64) ([]float64, float64) {
	loads := make([]float64, len(c))
	var total float64
	for i, w := range c {
		if tau <= 0 {
			continue
		}
		hi := tau / math.Max(w.Shift, 1e-12) // beyond this, P(T<=tau) = 0
		g := func(r float64) float64 {
			if r <= 0 {
				return 0
			}
			return r * c.CompletionCDF(i, r, tau)
		}
		r, gr := optimize.GoldenMax(g, 0, hi, 1e-10)
		loads[i] = r
		total += gr
	}
	return loads, total
}

// Allocate solves P2 approximately for target s: it bisects the deadline tau
// so that the aggregate expected work by tau equals s, with each worker
// carrying its per-deadline optimal load (Reisizadeh et al.'s asymptotically
// optimal scheme), then rounds loads to integers, preserving feasibility.
func (c Cluster) Allocate(s int) (Allocation, error) {
	if err := c.Validate(); err != nil {
		return Allocation{}, err
	}
	if s <= 0 {
		return Allocation{}, fmt.Errorf("hetero: Allocate with s=%d", s)
	}
	// Bracket tau: expected work is 0 at tau=0 and grows without bound.
	hi := 1.0
	for k := 0; k < 200; k++ {
		if _, w := c.expectedWorkByTau(hi); w >= float64(s) {
			break
		}
		hi *= 2
	}
	tau := optimize.BisectIncreasing(func(t float64) float64 {
		_, w := c.expectedWorkByTau(t)
		return w
	}, float64(s), 0, hi, 1e-10)
	cont, work := c.expectedWorkByTau(tau)
	loads := make([]int, len(c))
	for i, r := range cont {
		loads[i] = int(math.Ceil(r)) // ceil so realized work dominates target
	}
	return Allocation{Loads: loads, Tau: tau, ExpectedWork: work}, nil
}

// LoadBalancedLoads is the paper's LB baseline (§IV-C): distribute the m
// examples proportionally to the straggler parameters, r_i = mu_i/sum(mu)*m,
// rounded by largest remainder so the loads sum exactly to m.
func (c Cluster) LoadBalancedLoads(m int) []int {
	var muSum float64
	for _, w := range c {
		muSum += w.Mu
	}
	loads := make([]int, len(c))
	type frac struct {
		i int
		f float64
	}
	fracs := make([]frac, len(c))
	total := 0
	for i, w := range c {
		exact := float64(m) * w.Mu / muSum
		loads[i] = int(math.Floor(exact))
		total += loads[i]
		fracs[i] = frac{i, exact - math.Floor(exact)}
	}
	sort.Slice(fracs, func(a, b int) bool { return fracs[a].f > fracs[b].f })
	for k := 0; total < m; k++ {
		loads[fracs[k%len(fracs)].i]++
		total++
	}
	return loads
}

// ---------------------------------------------------------------------------
// End-to-end evaluation of the two strategies (Fig. 5)
// ---------------------------------------------------------------------------

// LBResult evaluates the LB baseline: disjoint placement, uncoded
// communication, and the master waiting for EVERY loaded worker, so the
// completion time of a trial is max_i T_i. Returns the Monte-Carlo mean.
func (c Cluster) LBResult(m, trials int, rng *rngutil.RNG) float64 {
	loads := c.LoadBalancedLoads(m)
	var sum float64
	for k := 0; k < trials; k++ {
		times := c.SampleTimes(loads, rng)
		var worst float64
		for i, t := range times {
			if loads[i] > 0 && t > worst {
				worst = t
			}
		}
		sum += worst
	}
	return sum / float64(trials)
}

// CoverageResult evaluates the generalized BCC scheme of §IV: each worker i
// independently samples loads[i] distinct examples uniformly at random;
// workers report at their completion times; the master stops at the first
// time the union of reported sample sets covers all m examples (eq. 16).
// It returns the Monte-Carlo mean over covered trials and the number of
// trials that failed to reach coverage (counted, not averaged).
func (c Cluster) CoverageResult(m int, loads []int, trials int, rng *rngutil.RNG) (mean float64, failures int) {
	if len(loads) != len(c) {
		panic(fmt.Sprintf("hetero: %d loads for %d workers", len(loads), len(c)))
	}
	var sum float64
	covered := 0
	for k := 0; k < trials; k++ {
		times := c.SampleTimes(loads, rng)
		type ft struct {
			t float64
			i int
		}
		order := make([]ft, 0, len(c))
		for i := range c {
			if loads[i] > 0 {
				order = append(order, ft{times[i], i})
			}
		}
		sort.Slice(order, func(a, b int) bool { return order[a].t < order[b].t })
		tracker := coupon.NewTracker(m)
		var tEnd float64
		done := false
		for _, x := range order {
			r := loads[x.i]
			if r > m {
				r = m
			}
			for _, ex := range rng.Sample(m, r) {
				tracker.Offer(ex)
			}
			if tracker.Complete() {
				tEnd = x.t
				done = true
				break
			}
		}
		if !done {
			failures++
			continue
		}
		sum += tEnd
		covered++
	}
	if covered > 0 {
		mean = sum / float64(covered)
	}
	return mean, failures
}

// CoverageResultRetry is CoverageResult with a decentralized retry rule that
// makes the protocol terminate almost surely: a worker that has delivered
// its initial batch keeps drawing fresh UNIT samples (one random example per
// wave) and delivering them, with per-wave latency T(1) from the same
// shift-exponential model. Coverage misses leave only a handful of examples
// uncovered, so cheap unit waves close the gap in a few multiples of T(1)
// instead of re-processing the full load. No coordination is needed —
// workers never learn which examples are missing, preserving BCC's
// decentralized character. maxWaves bounds the retries per worker; a trial
// still uncovered then (probability decaying geometrically in maxWaves) is
// scored at its last delivery time.
func (c Cluster) CoverageResultRetry(m int, loads []int, trials, maxWaves int, rng *rngutil.RNG) float64 {
	if len(loads) != len(c) {
		panic(fmt.Sprintf("hetero: %d loads for %d workers", len(loads), len(c)))
	}
	if maxWaves <= 0 {
		maxWaves = 50
	}
	var sum float64
	for k := 0; k < trials; k++ {
		type delivery struct {
			t     float64
			i     int
			units int // examples in this delivery
		}
		var deliveries []delivery
		clock := make([]float64, len(c))
		// Initial full-load round.
		times := c.SampleTimes(loads, rng)
		for i := range c {
			if loads[i] <= 0 {
				continue
			}
			clock[i] = times[i]
			deliveries = append(deliveries, delivery{clock[i], i, loads[i]})
		}
		// Unit retry waves.
		unit := make([]int, len(c))
		for i := range unit {
			if loads[i] > 0 {
				unit[i] = 1
			}
		}
		for wave := 0; wave < maxWaves; wave++ {
			wt := c.SampleTimes(unit, rng)
			for i := range c {
				if unit[i] == 0 {
					continue
				}
				clock[i] += wt[i]
				deliveries = append(deliveries, delivery{clock[i], i, 1})
			}
		}
		sort.Slice(deliveries, func(a, b int) bool { return deliveries[a].t < deliveries[b].t })
		tracker := coupon.NewTracker(m)
		tEnd := 0.0
		for _, d := range deliveries {
			r := d.units
			if r > m {
				r = m
			}
			for _, ex := range rng.Sample(m, r) {
				tracker.Offer(ex)
			}
			tEnd = d.t
			if tracker.Complete() {
				break
			}
		}
		sum += tEnd
	}
	return sum / float64(trials)
}

// ---------------------------------------------------------------------------
// Theorem 2 machinery
// ---------------------------------------------------------------------------

// TheoremTwoC returns the constant c = 2 + log(a + H_n/mu)/log(m) of
// Theorem 2, with a = max shift and mu = min straggler parameter.
func (c Cluster) TheoremTwoC(m int) float64 {
	var a float64
	mu := math.Inf(1)
	for _, w := range c {
		if w.Shift > a {
			a = w.Shift
		}
		if w.Mu < mu {
			mu = w.Mu
		}
	}
	hn := coupon.Harmonic(len(c))
	return 2 + math.Log(a+hn/mu)/math.Log(float64(m))
}

// TheoremTwoBounds evaluates the two sides of Theorem 2 by Monte-Carlo:
// the lower bound min E[T̂(m)] and the upper bound min E[T̂(floor(c m log m))]
// + 1, both at the allocator's solutions.
func (c Cluster) TheoremTwoBounds(m, trials int, rng *rngutil.RNG) (lower, upper float64, err error) {
	allocL, err := c.Allocate(m)
	if err != nil {
		return 0, 0, err
	}
	lower = c.ExpectedTHat(allocL.Loads, m, trials, rng)
	cc := c.TheoremTwoC(m)
	s := int(math.Floor(cc * float64(m) * math.Log(float64(m))))
	allocU, err := c.Allocate(s)
	if err != nil {
		return 0, 0, err
	}
	upper = c.ExpectedTHat(allocU.Loads, s, trials, rng) + 1
	return lower, upper, nil
}

// PaperFig5Cluster returns the exact cluster of the paper's Fig. 5
// evaluation: n = 100 workers, shift a_i = 20 for all, mu_i = 1 for the
// first 95 workers and mu_i = 20 for the last 5.
func PaperFig5Cluster() Cluster {
	c := make(Cluster, 100)
	for i := range c {
		mu := 1.0
		if i >= 95 {
			mu = 20
		}
		c[i] = WorkerParams{Mu: mu, Shift: 20}
	}
	return c
}
