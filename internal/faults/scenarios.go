package faults

import (
	"fmt"
	"sort"
	"strings"
)

// The named scenario library: canonical fault regimes the conformance suite
// (and the -faults flag of bcctrain/bcccluster) runs by name. Each builder
// takes the cluster size n and a seed and returns a Plan; two processes
// building the same (name, n, seed) triple — a bcccluster master and its
// out-of-process workers, say — hold identical schedules.
//
// The scenarios are sized relative to n so they scale from unit-test
// clusters to large ones, and they are deliberately survivable for
// redundant schemes (a bounded fraction of the cluster is affected at any
// instant): the point is to perturb the order statistics the paper's
// analysis rests on, not to make every run stall.

// scenarioBuilder constructs a named scenario's plan for n workers.
type scenarioBuilder struct {
	doc   string
	build func(n int, seed uint64) *Plan
}

var scenarios = map[string]scenarioBuilder{
	// steady is the no-fault baseline; conformance runs use it to pin that
	// the fault machinery itself perturbs nothing when idle.
	"steady": {
		doc:   "no faults (baseline)",
		build: func(n int, seed uint64) *Plan { return &Plan{N: n, Seed: seed} },
	},
	// slow-decile permanently slows the top decile of worker indices — the
	// paper's persistent-straggler regime.
	"slow-decile": {
		doc: "the last ceil(n/10) workers are permanently 6x slower",
		build: func(n int, seed uint64) *Plan {
			p := &Plan{N: n, Seed: seed}
			k := (n + 9) / 10
			for w := n - k; w < n; w++ {
				p.Slowdowns = append(p.Slowdowns, Slowdown{Worker: w, From: 0, Factor: 6})
			}
			return p
		},
	},
	// flaky-tail gives the last quarter of the cluster recurring slow
	// windows with staggered phases: at any iteration a subset of the tail
	// is slow, and the subset rotates — transient stragglers.
	"flaky-tail": {
		doc: "the last ceil(n/4) workers are 8x slower in recurring 2-of-5 iteration windows",
		build: func(n int, seed uint64) *Plan {
			p := &Plan{N: n, Seed: seed}
			k := (n + 3) / 4
			for i := 0; i < k; i++ {
				w := n - k + i
				p.Slowdowns = append(p.Slowdowns, Slowdown{
					Worker: w, From: i % 5, Every: 5, Span: 2, Factor: 8,
				})
			}
			return p
		},
	},
	// rolling-restart crashes one worker at a time, each down for two
	// iterations, rolling through the cluster — the software-deploy regime.
	"rolling-restart": {
		doc: "workers crash one at a time for 2 iterations each, rolling through the cluster",
		build: func(n int, seed uint64) *Plan {
			p := &Plan{N: n, Seed: seed}
			for w := 0; w < n; w++ {
				p.Crashes = append(p.Crashes, Crash{Worker: w, At: 1 + 2*w, RestartAfter: 2})
			}
			return p
		},
	},
	// partition makes the first quarter of the worker range unreachable
	// from the master for iterations [2, 5).
	"partition": {
		doc: "workers [0, ceil(n/4)) are unreachable from the master during iterations [2, 5)",
		build: func(n int, seed uint64) *Plan {
			hi := (n + 3) / 4
			if hi < 1 {
				hi = 1
			}
			return &Plan{N: n, Seed: seed, Partitions: []Partition{{From: 2, To: 5, Lo: 0, Hi: hi}}}
		},
	},
	// burst-drop injects correlated loss: bursts start with probability
	// 0.25 per iteration, last 2 iterations, and eat half of the cluster's
	// transmissions while active.
	"burst-drop": {
		doc: "correlated loss bursts (p=0.25 per iteration, length 2) dropping 50% of transmissions",
		build: func(n int, seed uint64) *Plan {
			return &Plan{N: n, Seed: seed, Bursts: &DropBursts{StartProb: 0.25, Length: 2, Frac: 0.5}}
		},
	},
}

// Names lists the scenario library, sorted.
func Names() []string {
	out := make([]string, 0, len(scenarios))
	for name := range scenarios {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Known reports whether name is a registered scenario.
func Known(name string) bool {
	_, ok := scenarios[name]
	return ok
}

// Describe returns the one-line description of a named scenario ("" for
// unknown names).
func Describe(name string) string { return scenarios[name].doc }

// Scenario builds the named scenario's fault plan for an n-worker cluster.
// The schedule is fully determined by (name, n, seed), so independent
// processes agree on it.
func Scenario(name string, n int, seed uint64) (*Plan, error) {
	b, ok := scenarios[name]
	if !ok {
		return nil, fmt.Errorf("faults: unknown scenario %q (have %s)", name, strings.Join(Names(), ", "))
	}
	if n <= 0 {
		return nil, fmt.Errorf("faults: scenario %q needs a positive worker count, got %d", name, n)
	}
	p := b.build(n, seed)
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("faults: scenario %q: %w", name, err)
	}
	return p, nil
}
