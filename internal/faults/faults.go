// Package faults is the deterministic fault-injection subsystem of the
// cluster fabric. A Plan schedules per-worker, per-iteration fault events —
// permanent crashes, restart-after-k-iterations, transient (optionally
// periodic) slowdown windows, master-side partition windows and correlated
// drop bursts — and answers every query as a pure function of (worker,
// iteration) and a single seed. Nothing is drawn at query time, so the sim,
// live and tcp runtimes replay bit-identical fault sequences no matter in
// which order (or from how many goroutines) they consult the plan.
//
// The queries split along the master/worker boundary of the fabric:
//
//   - Active(w, iter) is the WORKER-side state: a crashed worker computes
//     nothing and transmits nothing until (and unless) it restarts. Live
//     workers consult it before doing any work; the simulator skips the
//     worker's whole pipeline.
//   - SlowFactor(w, iter) is the worker-side latency multiplier of any
//     slowdown window covering the iteration (1 outside windows). The
//     cluster package applies it on top of the configured Latency model's
//     compute and upload draws.
//   - MasterDrop(w, iter) is the MASTER-side state: the worker's
//     transmission this iteration is lost before the master can use it,
//     either because a partition window makes the worker range unreachable
//     or because a correlated drop burst is in progress. Live workers still
//     compute and transmit (they cannot know the network ate the message);
//     the master discards the arrival, exactly like the i.i.d. DropProb
//     fault the fabric already had.
//
// EventsAt exposes the schedule as a deterministic event trace (crashes,
// restarts, window and partition edges, burst starts) that the master
// engine forwards to Observer.OnWorkerFault — the same trace on every
// runtime, which is what the scenario conformance suite pins.
package faults

import "fmt"

// Kind labels one fault event in the deterministic event trace.
type Kind string

// The fault-event kinds, in the order EventsAt emits them within one
// iteration.
const (
	// KindCrash marks a worker going down at this iteration.
	KindCrash Kind = "crash"
	// KindRestart marks a crashed worker coming back at this iteration.
	KindRestart Kind = "restart"
	// KindSlowStart / KindSlowEnd bracket a slowdown window.
	KindSlowStart Kind = "slow-start"
	KindSlowEnd   Kind = "slow-end"
	// KindPartitionStart / KindPartitionEnd bracket a master-side partition
	// window over a contiguous worker range.
	KindPartitionStart Kind = "partition-start"
	KindPartitionEnd   Kind = "partition-end"
	// KindBurst marks the start of a correlated drop burst.
	KindBurst Kind = "burst-drop"
	// KindDegraded is emitted by the master engine (not by EventsAt) when an
	// iteration's reachable workers fall below the scheme's decodable
	// minimum and the run degrades explicitly.
	KindDegraded Kind = "degraded"
)

// Event is one entry of the deterministic fault-event trace.
type Event struct {
	// Iter is the iteration the event takes effect at.
	Iter int
	// Kind labels the event.
	Kind Kind
	// Worker is the affected worker, or -1 for range/cluster events
	// (partitions, bursts, degradation).
	Worker int
	// Factor is the latency multiplier of slow-start events (0 otherwise).
	Factor float64
	// Lo, Hi give the affected worker range [Lo, Hi) of partition events
	// (0, 0 otherwise).
	Lo, Hi int
}

// String renders the event compactly for traces and logs.
func (e Event) String() string {
	switch e.Kind {
	case KindSlowStart:
		return fmt.Sprintf("iter=%d %s w%d x%g", e.Iter, e.Kind, e.Worker, e.Factor)
	case KindPartitionStart, KindPartitionEnd:
		return fmt.Sprintf("iter=%d %s w[%d,%d)", e.Iter, e.Kind, e.Lo, e.Hi)
	case KindBurst, KindDegraded:
		return fmt.Sprintf("iter=%d %s", e.Iter, e.Kind)
	default:
		return fmt.Sprintf("iter=%d %s w%d", e.Iter, e.Kind, e.Worker)
	}
}

// Crash schedules worker Worker to go down at iteration At. If RestartAfter
// is positive the worker is back for iteration At+RestartAfter; otherwise
// the crash is permanent.
type Crash struct {
	Worker int
	At     int
	// RestartAfter is the number of iterations the worker stays down
	// (<= 0 = forever).
	RestartAfter int
}

// down reports whether this crash keeps the worker down at iter.
func (c Crash) down(iter int) bool {
	if iter < c.At {
		return false
	}
	return c.RestartAfter <= 0 || iter < c.At+c.RestartAfter
}

// Slowdown schedules transient slow windows for one worker: the worker's
// compute and upload latencies are multiplied by Factor while a window is
// active. With Every == 0 there is a single window [From, To) (To <= 0 =
// open-ended); with Every > 0 the window recurs — iterations iter >= From
// (and < To unless To <= 0) are slowed when (iter-From) mod Every < Span.
type Slowdown struct {
	Worker   int
	From, To int
	// Every is the recurrence period (0 = one contiguous window).
	Every int
	// Span is the slow iterations per period (only with Every > 0).
	Span int
	// Factor multiplies the worker's compute and upload latency (> 0).
	Factor float64
}

// active reports whether the window covers iter.
func (s Slowdown) active(iter int) bool {
	if iter < s.From || (s.To > 0 && iter >= s.To) {
		return false
	}
	if s.Every <= 0 {
		return true
	}
	return (iter-s.From)%s.Every < s.Span
}

// starts reports whether a slow window begins exactly at iter.
func (s Slowdown) starts(iter int) bool {
	return s.active(iter) && (iter == s.From || !s.active(iter-1))
}

// ends reports whether a slow window ends exactly at iter (first iteration
// after a window).
func (s Slowdown) ends(iter int) bool {
	return !s.active(iter) && iter > s.From && s.active(iter-1)
}

// Partition makes the contiguous worker range [Lo, Hi) unreachable from the
// master for iterations [From, To): the workers keep computing and
// transmitting, but the master loses every one of their transmissions in
// the window.
type Partition struct {
	From, To int
	Lo, Hi   int
}

func (p Partition) covers(w, iter int) bool {
	return iter >= p.From && iter < p.To && w >= p.Lo && w < p.Hi
}

// DropBursts injects correlated (bursty) message loss: each iteration
// starts a burst with probability StartProb (an independent seeded draw per
// iteration); while a burst is in progress — Length iterations from its
// start, overlapping bursts merge — each worker's transmission is lost with
// probability Frac (a seeded draw per worker and iteration). This is the
// correlated counterpart of the fabric's i.i.d. DropProb.
type DropBursts struct {
	// StartProb is the per-iteration burst-start probability in [0, 1].
	StartProb float64
	// Length is how many iterations a burst lasts (>= 1).
	Length int
	// Frac is the per-worker loss probability during a burst in (0, 1].
	Frac float64
}

// Plan is a deterministic fault schedule for an n-worker cluster. The zero
// value (and a nil *Plan) injects no faults. Plans are immutable after
// construction and safe for concurrent use from any number of goroutines —
// every query is a pure function of the fields and the seed.
type Plan struct {
	// N is the worker count the plan is built for; it must match the
	// cluster's n.
	N int
	// Seed drives every probabilistic decision (drop bursts). Two plans
	// with equal rules and seeds schedule identical fault sequences on
	// every runtime.
	Seed uint64

	Crashes    []Crash
	Slowdowns  []Slowdown
	Partitions []Partition
	// Bursts, if non-nil, adds correlated drop bursts.
	Bursts *DropBursts
}

// Validate checks the plan's rules against its worker count.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	if p.N <= 0 {
		return fmt.Errorf("faults: plan needs a positive worker count N, got %d", p.N)
	}
	for _, c := range p.Crashes {
		if c.Worker < 0 || c.Worker >= p.N {
			return fmt.Errorf("faults: crash worker %d out of range [0,%d)", c.Worker, p.N)
		}
		if c.At < 0 {
			return fmt.Errorf("faults: crash of worker %d at negative iteration %d", c.Worker, c.At)
		}
	}
	for _, s := range p.Slowdowns {
		if s.Worker < 0 || s.Worker >= p.N {
			return fmt.Errorf("faults: slowdown worker %d out of range [0,%d)", s.Worker, p.N)
		}
		if s.Factor <= 0 {
			return fmt.Errorf("faults: slowdown factor %v for worker %d must be positive", s.Factor, s.Worker)
		}
		if s.From < 0 || (s.To > 0 && s.From >= s.To) {
			return fmt.Errorf("faults: slowdown iteration window [%d,%d) for worker %d invalid", s.From, s.To, s.Worker)
		}
		if s.Every > 0 && (s.Span <= 0 || s.Span > s.Every) {
			return fmt.Errorf("faults: periodic slowdown for worker %d needs 0 < Span <= Every, got span=%d every=%d",
				s.Worker, s.Span, s.Every)
		}
	}
	for _, pa := range p.Partitions {
		if pa.Lo < 0 || pa.Hi > p.N || pa.Lo >= pa.Hi {
			return fmt.Errorf("faults: partition worker range [%d,%d) invalid for n=%d", pa.Lo, pa.Hi, p.N)
		}
		if pa.From < 0 || pa.From >= pa.To {
			return fmt.Errorf("faults: partition iteration window [%d,%d) invalid", pa.From, pa.To)
		}
	}
	if b := p.Bursts; b != nil {
		if b.StartProb < 0 || b.StartProb > 1 {
			return fmt.Errorf("faults: burst start probability %v outside [0,1]", b.StartProb)
		}
		if b.Length < 1 {
			return fmt.Errorf("faults: burst length %d must be >= 1", b.Length)
		}
		if b.Frac <= 0 || b.Frac > 1 {
			return fmt.Errorf("faults: burst loss fraction %v outside (0,1]", b.Frac)
		}
	}
	return nil
}

// Active reports whether worker w is up at iteration iter (not inside a
// crash window). A nil plan keeps every worker active.
func (p *Plan) Active(w, iter int) bool {
	if p == nil {
		return true
	}
	for _, c := range p.Crashes {
		if c.Worker == w && c.down(iter) {
			return false
		}
	}
	return true
}

// SlowFactor returns the multiplicative latency factor applied to worker
// w's compute and upload at iteration iter: the product of every slowdown
// window covering the iteration, 1 outside windows.
func (p *Plan) SlowFactor(w, iter int) float64 {
	if p == nil {
		return 1
	}
	f := 1.0
	for _, s := range p.Slowdowns {
		if s.Worker == w && s.active(iter) {
			f *= s.Factor
		}
	}
	return f
}

// MasterDrop reports whether worker w's transmission of iteration iter is
// lost before the master can use it (partition window or drop burst).
func (p *Plan) MasterDrop(w, iter int) bool {
	if p == nil {
		return false
	}
	for _, pa := range p.Partitions {
		if pa.covers(w, iter) {
			return true
		}
	}
	if p.Bursts != nil && p.burstActive(iter) {
		return p.u01(tagBurstDrop, uint64(iter), uint64(w)) < p.Bursts.Frac
	}
	return false
}

// Contributing reports whether worker w can possibly contribute to
// iteration iter's decode: it is active and its transmission is not
// scheduled to be lost. The master engine sums this over the non-dead
// workers to detect iterations that cannot decode before running them.
func (p *Plan) Contributing(w, iter int) bool {
	return p.Active(w, iter) && !p.MasterDrop(w, iter)
}

// burstStarts reports whether a drop burst starts exactly at iter.
func (p *Plan) burstStarts(iter int) bool {
	if p.Bursts == nil || iter < 0 {
		return false
	}
	return p.u01(tagBurstStart, uint64(iter), 0) < p.Bursts.StartProb
}

// burstActive reports whether any burst covers iter (bursts last Length
// iterations; overlaps merge).
func (p *Plan) burstActive(iter int) bool {
	for s := iter; s > iter-p.Bursts.Length; s-- {
		if p.burstStarts(s) {
			return true
		}
	}
	return false
}

// EventsAt visits the fault events taking effect at iteration iter in a
// deterministic order: crashes, restarts, slowdown edges, partition edges,
// burst starts; within a kind, rule order (scenario builders emit rules in
// worker order). The visitor style keeps the steady-state fault path free
// of allocations.
func (p *Plan) EventsAt(iter int, visit func(Event)) {
	if p == nil {
		return
	}
	for _, c := range p.Crashes {
		if c.At == iter {
			visit(Event{Iter: iter, Kind: KindCrash, Worker: c.Worker})
		}
		if c.RestartAfter > 0 && c.At+c.RestartAfter == iter {
			visit(Event{Iter: iter, Kind: KindRestart, Worker: c.Worker})
		}
	}
	for _, s := range p.Slowdowns {
		if s.starts(iter) {
			visit(Event{Iter: iter, Kind: KindSlowStart, Worker: s.Worker, Factor: s.Factor})
		}
		if s.ends(iter) {
			visit(Event{Iter: iter, Kind: KindSlowEnd, Worker: s.Worker})
		}
	}
	for _, pa := range p.Partitions {
		if pa.From == iter {
			visit(Event{Iter: iter, Kind: KindPartitionStart, Worker: -1, Lo: pa.Lo, Hi: pa.Hi})
		}
		if pa.To == iter {
			visit(Event{Iter: iter, Kind: KindPartitionEnd, Worker: -1, Lo: pa.Lo, Hi: pa.Hi})
		}
	}
	if p.burstStarts(iter) {
		visit(Event{Iter: iter, Kind: KindBurst, Worker: -1})
	}
}

// Events collects EventsAt over iterations [0, iters) into a slice (a
// convenience for tests and tooling; the engine uses the visitor form).
func (p *Plan) Events(iters int) []Event {
	var out []Event
	for it := 0; it < iters; it++ {
		p.EventsAt(it, func(ev Event) { out = append(out, ev) })
	}
	return out
}

// ---------------------------------------------------------------------------
// Deterministic per-(tag, iteration, worker) draws
// ---------------------------------------------------------------------------

// Domain-separation tags for the plan's independent decision streams.
const (
	tagBurstStart uint64 = 0xb075_7a77
	tagBurstDrop  uint64 = 0xd307_d0bb
)

// u01 returns a uniform [0,1) draw that is a pure function of the plan
// seed, a domain tag and two coordinates — the same value no matter when,
// where or how often it is asked for.
func (p *Plan) u01(tag, a, b uint64) float64 {
	h := mix(mix(mix(p.Seed^0x9e3779b97f4a7c15, tag), a), b)
	return float64(h>>11) / (1 << 53)
}

// mix is the splitmix64 finalizer over a running hash; it decorrelates the
// coordinate tuple into an effectively independent 64-bit stream.
func mix(h, v uint64) uint64 {
	h += v + 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}
