package faults

import (
	"strings"
	"testing"
)

// TestNilPlanIsNoFaults pins the nil contract every runtime relies on: a
// nil *Plan keeps all workers active, unslowed and reachable.
func TestNilPlanIsNoFaults(t *testing.T) {
	var p *Plan
	for w := 0; w < 4; w++ {
		for iter := 0; iter < 4; iter++ {
			if !p.Active(w, iter) || !p.Contributing(w, iter) {
				t.Fatalf("nil plan faulted worker %d at iter %d", w, iter)
			}
			if f := p.SlowFactor(w, iter); f != 1 {
				t.Fatalf("nil plan slow factor %v", f)
			}
			if p.MasterDrop(w, iter) {
				t.Fatalf("nil plan dropped worker %d at iter %d", w, iter)
			}
		}
	}
	p.EventsAt(0, func(Event) { t.Fatal("nil plan emitted an event") })
}

// TestCrashAndRestartWindows checks the worker-down interval [At,
// At+RestartAfter) and permanence without a restart.
func TestCrashAndRestartWindows(t *testing.T) {
	p := &Plan{N: 3, Crashes: []Crash{
		{Worker: 0, At: 2, RestartAfter: 3},
		{Worker: 1, At: 4}, // permanent
	}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	wantDown0 := map[int]bool{2: true, 3: true, 4: true}
	for iter := 0; iter < 10; iter++ {
		if got := !p.Active(0, iter); got != wantDown0[iter] {
			t.Fatalf("worker 0 down=%v at iter %d, want %v", got, iter, wantDown0[iter])
		}
		if got := !p.Active(1, iter); got != (iter >= 4) {
			t.Fatalf("worker 1 down=%v at iter %d", got, iter)
		}
		if !p.Active(2, iter) {
			t.Fatalf("untargeted worker 2 down at iter %d", iter)
		}
	}
}

// TestSlowdownWindows checks one-shot and periodic windows and factor
// stacking.
func TestSlowdownWindows(t *testing.T) {
	p := &Plan{N: 2, Slowdowns: []Slowdown{
		{Worker: 0, From: 1, To: 3, Factor: 4},
		{Worker: 0, From: 0, Factor: 2}, // open-ended, stacks inside [1,3)
		{Worker: 1, From: 1, Every: 4, Span: 2, Factor: 8},
	}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	want0 := map[int]float64{0: 2, 1: 8, 2: 8, 3: 2, 4: 2}
	for iter, want := range want0 {
		if got := p.SlowFactor(0, iter); got != want {
			t.Fatalf("worker 0 factor %v at iter %d, want %v", got, iter, want)
		}
	}
	// Periodic: slow at (iter-1) mod 4 in {0,1} -> iters 1,2, 5,6, 9,10...
	for iter := 0; iter < 12; iter++ {
		slow := iter >= 1 && (iter-1)%4 < 2
		want := 1.0
		if slow {
			want = 8
		}
		if got := p.SlowFactor(1, iter); got != want {
			t.Fatalf("worker 1 factor %v at iter %d, want %v", got, iter, want)
		}
	}
}

// TestPartitionWindow checks the master-side range drop.
func TestPartitionWindow(t *testing.T) {
	p := &Plan{N: 6, Partitions: []Partition{{From: 2, To: 4, Lo: 1, Hi: 3}}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 6; w++ {
		for iter := 0; iter < 6; iter++ {
			want := iter >= 2 && iter < 4 && w >= 1 && w < 3
			if got := p.MasterDrop(w, iter); got != want {
				t.Fatalf("MasterDrop(%d,%d)=%v, want %v", w, iter, got, want)
			}
			// Partitioned workers stay active (they keep computing).
			if !p.Active(w, iter) {
				t.Fatalf("partition crashed worker %d", w)
			}
			if p.Contributing(w, iter) == want {
				t.Fatalf("Contributing(%d,%d) disagrees with MasterDrop", w, iter)
			}
		}
	}
}

// TestBurstsAreDeterministicAndBursty checks that burst drops are a pure
// function of the seed (identical across repeated queries, in any order)
// and only occur inside burst windows.
func TestBurstsAreDeterministicAndBursty(t *testing.T) {
	mk := func() *Plan {
		return &Plan{N: 8, Seed: 42, Bursts: &DropBursts{StartProb: 0.3, Length: 2, Frac: 0.7}}
	}
	a, b := mk(), mk()
	const iters = 200
	drops := 0
	for iter := 0; iter < iters; iter++ {
		for w := 0; w < 8; w++ {
			if a.MasterDrop(w, iter) != b.MasterDrop(w, iter) {
				t.Fatalf("drop decision (%d,%d) not deterministic", w, iter)
			}
			if a.MasterDrop(w, iter) {
				drops++
				if !a.burstActive(iter) {
					t.Fatalf("drop outside a burst at iter %d", iter)
				}
			}
		}
	}
	if drops == 0 {
		t.Fatal("no drops in 200 iterations at StartProb 0.3")
	}
	// Query again in reverse order: pure functions must agree.
	for iter := iters - 1; iter >= 0; iter-- {
		for w := 7; w >= 0; w-- {
			if a.MasterDrop(w, iter) != b.MasterDrop(w, iter) {
				t.Fatal("reverse-order query changed a drop decision")
			}
		}
	}
	// A different seed must schedule a different pattern.
	c := &Plan{N: 8, Seed: 43, Bursts: a.Bursts}
	same := true
	for iter := 0; iter < iters && same; iter++ {
		for w := 0; w < 8; w++ {
			if a.MasterDrop(w, iter) != c.MasterDrop(w, iter) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 schedule identical drop patterns")
	}
}

// TestEventsTrace checks the deterministic event trace: edges appear
// exactly at window boundaries, in the documented order.
func TestEventsTrace(t *testing.T) {
	p := &Plan{N: 4,
		Crashes:    []Crash{{Worker: 2, At: 1, RestartAfter: 2}},
		Slowdowns:  []Slowdown{{Worker: 3, From: 1, To: 3, Factor: 5}},
		Partitions: []Partition{{From: 2, To: 3, Lo: 0, Hi: 2}},
	}
	var got []string
	for _, ev := range p.Events(5) {
		got = append(got, ev.String())
	}
	want := []string{
		"iter=1 crash w2",
		"iter=1 slow-start w3 x5",
		"iter=2 partition-start w[0,2)",
		"iter=3 restart w2",
		"iter=3 slow-end w3",
		"iter=3 partition-end w[0,2)",
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("event trace:\n%s\nwant:\n%s", strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
}

// TestValidateRejectsBadRules spot-checks each rule family's validation.
func TestValidateRejectsBadRules(t *testing.T) {
	bad := []*Plan{
		{N: 0},
		{N: 2, Crashes: []Crash{{Worker: 2, At: 0}}},
		{N: 2, Crashes: []Crash{{Worker: 0, At: -1}}},
		{N: 2, Slowdowns: []Slowdown{{Worker: 0, Factor: 0}}},
		{N: 2, Slowdowns: []Slowdown{{Worker: 0, Factor: 2, Every: 3, Span: 0}}},
		{N: 2, Slowdowns: []Slowdown{{Worker: 0, Factor: 2, Every: 3, Span: 4}}},
		{N: 2, Partitions: []Partition{{From: 0, To: 1, Lo: 1, Hi: 1}}},
		{N: 2, Partitions: []Partition{{From: 3, To: 3, Lo: 0, Hi: 1}}},
		{N: 2, Bursts: &DropBursts{StartProb: 1.5, Length: 1, Frac: 1}},
		{N: 2, Bursts: &DropBursts{StartProb: 0.5, Length: 0, Frac: 1}},
		{N: 2, Bursts: &DropBursts{StartProb: 0.5, Length: 1, Frac: 0}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("bad plan %d validated: %+v", i, p)
		}
	}
	var nilPlan *Plan
	if err := nilPlan.Validate(); err != nil {
		t.Fatalf("nil plan failed validation: %v", err)
	}
}

// TestScenarioLibrary builds every named scenario at several cluster sizes
// and checks validity, determinism and the bounded-blast-radius property
// (at any iteration, at most half the cluster is non-contributing under
// every scenario except burst losses, which are probabilistic).
func TestScenarioLibrary(t *testing.T) {
	names := Names()
	if len(names) != 6 {
		t.Fatalf("scenario library has %d entries: %v, want 6", len(names), names)
	}
	for _, name := range names {
		if Describe(name) == "" {
			t.Fatalf("scenario %q has no description", name)
		}
		if !Known(name) {
			t.Fatalf("Known(%q) = false", name)
		}
		for _, n := range []int{1, 4, 12, 100} {
			p, err := Scenario(name, n, 7)
			if err != nil {
				t.Fatalf("Scenario(%q, %d): %v", name, n, err)
			}
			q, err := Scenario(name, n, 7)
			if err != nil {
				t.Fatal(err)
			}
			for iter := 0; iter < 20; iter++ {
				down := 0
				for w := 0; w < n; w++ {
					if p.Contributing(w, iter) != q.Contributing(w, iter) ||
						p.SlowFactor(w, iter) != q.SlowFactor(w, iter) {
						t.Fatalf("scenario %q not deterministic at (%d,%d)", name, w, iter)
					}
					if !p.Contributing(w, iter) {
						down++
					}
				}
				if name != "burst-drop" && down > (n+1)/2 {
					t.Fatalf("scenario %q takes %d/%d workers out at iter %d", name, down, n, iter)
				}
			}
		}
	}
	if _, err := Scenario("nope", 4, 1); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if Known("nope") {
		t.Fatal("Known accepted an unknown scenario")
	}
	if _, err := Scenario("steady", 0, 1); err == nil {
		t.Fatal("non-positive worker count accepted")
	}
}
