// Package coding implements the gradient-coding schemes the paper proposes
// and compares against, behind a single Scheme/Plan/Decoder abstraction:
//
//   - bcc        — Batched Coupon's Collector (the paper's contribution, §III)
//   - uncoded    — disjoint partition, wait for every worker (§III-C baseline)
//   - randomized — per-example uniform sampling, unit messages (§I eqs. 5-6)
//   - cyclicrep  — Cyclic Repetition gradient coding [Tandon et al. 2016]
//   - fractional — Fractional Repetition gradient coding [Tandon et al. 2016]
//   - cyclicmds  — cyclic-MDS / Reed-Solomon style coding [Raviv et al.;
//     Halbawi et al.]
//
// Terminology follows the paper: there are m "examples" (units of work —
// each may wrap many raw data points), n workers, and a computational load
// of r examples per worker. A Plan fixes the data placement and code; its
// Decoder consumes worker Messages until the exact sum of all m per-example
// partial gradients can be recovered.
package coding

import (
	"errors"
	"fmt"
	"sort"

	"bcc/internal/rngutil"
)

// Message is the payload one worker ships to the master in one iteration.
// A worker may emit several Messages per iteration (the randomized scheme
// sends one per example).
type Message struct {
	From int // worker index
	Tag  int // scheme-specific id (batch/block/example); -1 when unused
	// Vec is the real payload, sized like one partial gradient.
	Vec []float64
	// Imag carries the imaginary part for complex-coded schemes; nil
	// otherwise.
	Imag []float64
	// Units is the communication load this message accounts for, in
	// multiples of a single partial gradient (Definition 3 of the paper).
	Units float64
}

// Plan is a concrete placement + code for (m, n, r). Plans are safe for
// concurrent read-only use; each training iteration creates its own Decoder.
type Plan interface {
	// Scheme returns the scheme name this plan was built by.
	Scheme() string
	// Params returns the (m, n, r) the plan was built for.
	Params() (m, n, r int)
	// Assignments returns, per worker, the example ids it processes. The
	// returned slices must not be mutated.
	Assignments() [][]int
	// Encode turns a worker's partial gradients (parts[k] is the gradient of
	// Assignments()[worker][k]) into the messages it transmits.
	Encode(worker int, parts [][]float64) []Message
	// NewDecoder returns fresh per-iteration decoding state.
	NewDecoder() Decoder
	// WorstCaseThreshold returns the number of workers that is ALWAYS
	// sufficient to decode regardless of which workers respond, or -1 if no
	// such deterministic guarantee exists (randomized placements).
	WorstCaseThreshold() int
	// ExpectedThreshold returns the analytic expected number of workers the
	// master waits for under a uniformly random response order, or NaN if
	// unknown analytically.
	ExpectedThreshold() float64
	// CommLoadPerWorker returns the communication load (in units) of one
	// worker's full transmission.
	CommLoadPerWorker() float64
}

// Decoder accumulates messages for one iteration until the total gradient
// sum can be reconstructed.
type Decoder interface {
	// Offer feeds one message and reports whether the decoder is now able to
	// decode. Offering after decodability is allowed and ignored.
	Offer(msg Message) bool
	// Decodable reports whether Decode will succeed.
	Decodable() bool
	// Decode reconstructs sum_{j=1..m} g_j. It returns ErrNotDecodable if
	// called early.
	Decode() ([]float64, error)
	// WorkersHeard returns the number of distinct workers whose messages
	// arrived before (and including) the decodable point — the realized
	// recovery threshold |W| of Definition 2.
	WorkersHeard() int
	// UnitsReceived returns the accumulated communication load counted
	// toward decoding (Definition 3).
	UnitsReceived() float64
}

// Scheme builds Plans for given problem sizes.
type Scheme interface {
	// Name returns the registry name.
	Name() string
	// Plan builds a placement and code for m examples, n workers and
	// computational load r, drawing any randomness from rng.
	Plan(m, n, r int, rng *rngutil.RNG) (Plan, error)
}

// ErrNotDecodable is returned by Decode before enough messages arrived.
var ErrNotDecodable = errors.New("coding: not yet decodable")

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

var registry = map[string]Scheme{}

// Register adds a scheme to the global registry; it panics on duplicates.
// All built-in schemes self-register in their init functions.
func Register(s Scheme) {
	if _, dup := registry[s.Name()]; dup {
		panic(fmt.Sprintf("coding: duplicate scheme %q", s.Name()))
	}
	registry[s.Name()] = s
}

// Lookup returns the named scheme.
func Lookup(name string) (Scheme, error) {
	s, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("coding: unknown scheme %q (have %v)", name, Names())
	}
	return s, nil
}

// Names returns the registered scheme names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

// validate checks the common (m, n, r) constraints.
func validate(scheme string, m, n, r int) error {
	if m <= 0 || n <= 0 || r <= 0 {
		return fmt.Errorf("coding/%s: need positive m, n, r; got m=%d n=%d r=%d", scheme, m, n, r)
	}
	if r > m {
		return fmt.Errorf("coding/%s: computational load r=%d exceeds m=%d examples", scheme, r, m)
	}
	return nil
}

// coverageFeasible reports whether the union of the assignments covers every
// example in [0, m).
func coverageFeasible(m int, assign [][]int) bool {
	seen := make([]bool, m)
	covered := 0
	for _, a := range assign {
		for _, u := range a {
			if !seen[u] {
				seen[u] = true
				covered++
			}
		}
	}
	return covered == m
}

// checkParts validates the Encode input arity for worker w.
func checkParts(scheme string, assign [][]int, w int, parts [][]float64) {
	if w < 0 || w >= len(assign) {
		panic(fmt.Sprintf("coding/%s: worker %d out of range [0,%d)", scheme, w, len(assign)))
	}
	if len(parts) != len(assign[w]) {
		panic(fmt.Sprintf("coding/%s: worker %d got %d partial gradients for %d assigned examples",
			scheme, w, len(parts), len(assign[w])))
	}
}
