// Package coding implements the gradient-coding schemes the paper proposes
// and compares against, behind a single Scheme/Plan/Decoder abstraction:
//
//   - bcc        — Batched Coupon's Collector (the paper's contribution, §III)
//   - uncoded    — disjoint partition, wait for every worker (§III-C baseline)
//   - randomized — per-example uniform sampling, unit messages (§I eqs. 5-6)
//   - cyclicrep  — Cyclic Repetition gradient coding [Tandon et al. 2016]
//   - fractional — Fractional Repetition gradient coding [Tandon et al. 2016]
//   - cyclicmds  — cyclic-MDS / Reed-Solomon style coding [Raviv et al.;
//     Halbawi et al.]
//
// Terminology follows the paper: there are m "examples" (units of work —
// each may wrap many raw data points), n workers, and a computational load
// of r examples per worker. A Plan fixes the data placement and code; its
// Decoder consumes worker Messages until the exact sum of all m per-example
// partial gradients can be recovered.
package coding

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"bcc/internal/rngutil"
	"bcc/internal/vecmath"
)

// Message is the payload one worker ships to the master in one iteration.
// A worker may emit several Messages per iteration (the randomized scheme
// sends one per example).
type Message struct {
	From int // worker index
	Tag  int // scheme-specific id (batch/block/example); -1 when unused
	// Vec is the real payload, sized like one partial gradient.
	Vec []float64
	// Imag carries the imaginary part for complex-coded schemes; nil
	// otherwise.
	Imag []float64
	// Units is the communication load this message accounts for, in
	// multiples of a single partial gradient (Definition 3 of the paper).
	Units float64
}

// Buffers supplies reusable payload buffers to EncodeInto so steady-state
// encoding performs no heap allocations. Buf returns a length-n buffer with
// ARBITRARY contents — encoders overwrite every element before the buffer
// leaves them inside a Message. Implementations decide the recycling policy
// (internal/cluster's BufferPool recycles gradient-sized buffers after the
// master finishes each iteration); a nil Buffers means "allocate fresh".
type Buffers interface {
	Buf(n int) []float64
}

// Plan is a concrete placement + code for (m, n, r). Plans are safe for
// concurrent use by multiple decoders (any internal decode caches are
// synchronized); per-iteration mutable state lives in the Decoder, which is
// reusable across iterations via Reset.
type Plan interface {
	// Scheme returns the scheme name this plan was built by.
	Scheme() string
	// Params returns the (m, n, r) the plan was built for.
	Params() (m, n, r int)
	// Assignments returns, per worker, the example ids it processes. The
	// returned slices must not be mutated.
	Assignments() [][]int
	// EncodeInto turns a worker's partial gradients (parts[k] is the
	// gradient of Assignments()[worker][k]) into the messages it transmits,
	// appending them to dst and returning the extended slice. Message
	// payloads are drawn from bufs (nil = fresh allocations) and never alias
	// parts, so callers may reuse the parts scratch immediately.
	EncodeInto(dst []Message, worker int, parts [][]float64, bufs Buffers) []Message
	// NewDecoder returns decoding state sized for this plan. One decoder
	// serves many iterations: call Reset between them.
	NewDecoder() Decoder
	// WorstCaseThreshold returns the number of workers that is ALWAYS
	// sufficient to decode regardless of which workers respond, or -1 if no
	// such deterministic guarantee exists (randomized placements).
	WorstCaseThreshold() int
	// ExpectedThreshold returns the analytic expected number of workers the
	// master waits for under a uniformly random response order, or NaN if
	// unknown analytically.
	ExpectedThreshold() float64
	// CommLoadPerWorker returns the communication load (in units) of one
	// worker's full transmission.
	CommLoadPerWorker() float64
}

// Decoder accumulates messages for one iteration until the total gradient
// sum can be reconstructed. Decoders borrow the payload buffers of offered
// Messages until Reset is called (or DecodeInto returns, after which they
// are only read again if DecodeInto is re-invoked); buffer owners must not
// recycle a message's payload before the iteration's decode is finished.
type Decoder interface {
	// Offer feeds one message and reports whether the decoder is now able to
	// decode. Offering after decodability is allowed and ignored.
	Offer(msg Message) bool
	// Decodable reports whether DecodeInto will succeed.
	Decodable() bool
	// DecodeInto reconstructs sum_{j=1..m} g_j into dst (sized like one
	// partial gradient), fully overwriting it. It returns ErrNotDecodable —
	// leaving dst unspecified — if called early.
	DecodeInto(dst []float64) error
	// WorkersHeard returns the number of distinct workers whose messages
	// arrived before (and including) the decodable point — the realized
	// recovery threshold |W| of Definition 2.
	WorkersHeard() int
	// UnitsReceived returns the accumulated communication load counted
	// toward decoding (Definition 3).
	UnitsReceived() float64
	// Reset returns the decoder to its fresh state, dropping every reference
	// to offered message buffers, so one decoder (and its internal storage)
	// is reused across iterations.
	Reset()
}

// minResponders is the optional Plan capability behind MinResponders, for
// schemes whose impossibility bound is sharper (or looser) than the generic
// coverage argument.
type minResponders interface {
	MinResponders() int
}

// MinResponders returns the minimum size any decodable responder set can
// have for this plan: with fewer responding workers decoding is impossible
// REGARDLESS of which workers respond. It is the converse counterpart of
// WorstCaseThreshold (which workers are always sufficient) and is what the
// cluster engine uses to degrade explicitly when fault injection leaves too
// few reachable workers.
//
// Plans may implement MinResponders() int to supply an exact bound (uncoded
// and partitioned need every data holder; MDS codes need exactly their
// threshold; approximate BCC needs only its coverage target). The default
// is the coverage argument: every worker contributes at most
// max_w |Assignments()[w]| of the m examples, so fewer than
// ceil(m / maxAssign) workers cannot cover — hence cannot reconstruct — the
// full gradient. The bound is conservative: sets at or above it may still
// be undecodable (the stall path catches those), but sets below it never
// decode.
func MinResponders(p Plan) int {
	if mr, ok := p.(minResponders); ok {
		return mr.MinResponders()
	}
	m, _, _ := p.Params()
	maxAssign := 0
	for _, a := range p.Assignments() {
		if len(a) > maxAssign {
			maxAssign = len(a)
		}
	}
	if maxAssign == 0 {
		return 0
	}
	return (m + maxAssign - 1) / maxAssign
}

// Encode is the convenience form of Plan.EncodeInto for callers without
// buffer reuse (experiments, tests): fresh message and payload allocations.
func Encode(p Plan, worker int, parts [][]float64) []Message {
	return p.EncodeInto(nil, worker, parts, nil)
}

// Decode is the convenience form of Decoder.DecodeInto: it allocates the
// dim-sized output. dim must equal the payload dimension of the offered
// messages.
func Decode(d Decoder, dim int) ([]float64, error) {
	out := make([]float64, dim)
	if err := d.DecodeInto(out); err != nil {
		return nil, err
	}
	return out, nil
}

// Scheme builds Plans for given problem sizes.
type Scheme interface {
	// Name returns the registry name.
	Name() string
	// Plan builds a placement and code for m examples, n workers and
	// computational load r, drawing any randomness from rng.
	Plan(m, n, r int, rng *rngutil.RNG) (Plan, error)
}

// ErrNotDecodable is returned by Decode before enough messages arrived.
var ErrNotDecodable = errors.New("coding: not yet decodable")

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

var registry = map[string]Scheme{}

// Register adds a scheme to the global registry; it panics on duplicates.
// All built-in schemes self-register in their init functions.
func Register(s Scheme) {
	if _, dup := registry[s.Name()]; dup {
		panic(fmt.Sprintf("coding: duplicate scheme %q", s.Name()))
	}
	registry[s.Name()] = s
}

// Lookup returns the named scheme.
func Lookup(name string) (Scheme, error) {
	s, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("coding: unknown scheme %q (have %v)", name, Names())
	}
	return s, nil
}

// Names returns the registered scheme names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

// validate checks the common (m, n, r) constraints.
func validate(scheme string, m, n, r int) error {
	if m <= 0 || n <= 0 || r <= 0 {
		return fmt.Errorf("coding/%s: need positive m, n, r; got m=%d n=%d r=%d", scheme, m, n, r)
	}
	if r > m {
		return fmt.Errorf("coding/%s: computational load r=%d exceeds m=%d examples", scheme, r, m)
	}
	return nil
}

// coverageFeasible reports whether the union of the assignments covers every
// example in [0, m).
func coverageFeasible(m int, assign [][]int) bool {
	seen := make([]bool, m)
	covered := 0
	for _, a := range assign {
		for _, u := range a {
			if !seen[u] {
				seen[u] = true
				covered++
			}
		}
	}
	return covered == m
}

// checkParts validates the Encode input arity for worker w.
func checkParts(scheme string, assign [][]int, w int, parts [][]float64) {
	if w < 0 || w >= len(assign) {
		panic(fmt.Sprintf("coding/%s: worker %d out of range [0,%d)", scheme, w, len(assign)))
	}
	if len(parts) != len(assign[w]) {
		panic(fmt.Sprintf("coding/%s: worker %d got %d partial gradients for %d assigned examples",
			scheme, w, len(parts), len(assign[w])))
	}
}

// grabBuf draws a length-n payload buffer from bufs, falling back to a fresh
// allocation when bufs is nil or returns a wrongly-sized buffer. Contents
// are arbitrary; the encoder must overwrite every element.
func grabBuf(bufs Buffers, n int) []float64 {
	if bufs != nil {
		if b := bufs.Buf(n); len(b) == n {
			return b
		}
	}
	return make([]float64, n)
}

// workerMask tracks the distinct workers heard from, allocation-free per
// Offer (the map-based bookkeeping it replaces allocated on insert).
type workerMask struct {
	seen  []bool
	count int
}

func newWorkerMask(n int) workerMask { return workerMask{seen: make([]bool, n)} }

// hear marks worker w heard and reports whether it was new. Out-of-range
// senders (defensive: a corrupted or malicious frame can carry any index)
// are ignored rather than tracked — growing the mask to the claimed index
// would let one bad frame force an arbitrarily large allocation, which the
// map this replaced never did.
func (m *workerMask) hear(w int) bool {
	if w < 0 || w >= len(m.seen) || m.seen[w] {
		return false
	}
	m.seen[w] = true
	m.count++
	return true
}

func (m *workerMask) reset() {
	for i := range m.seen {
		m.seen[i] = false
	}
	m.count = 0
}

// ---------------------------------------------------------------------------
// Plan-level decode-coefficient cache
// ---------------------------------------------------------------------------

// solveCacheLimit bounds a plan's decode-coefficient cache. Stable
// responder sets (the steady state of a run with deterministic latencies or
// persistent stragglers) need a handful of entries; fully random arrival
// sets could otherwise grow the cache without bound over long runs, so a
// full cache is cleared wholesale — cheap, and the recurring sets repopulate
// it immediately — instead of pinning whatever happened to arrive first.
const solveCacheLimit = 128

// solveCache memoizes decode coefficient solves keyed by the SET of
// responding workers (sorted ids), with coefficients stored indexed by
// worker id, so a linear system solved for one iteration's responder set is
// never solved again — no matter in which order the same set arrives in
// later iterations. It is owned by the Plan (one cache per plan) and
// synchronized, which is what makes a Plan safe for concurrent decoders.
// Failed solves (degenerate subsets below the effective threshold) are
// cached too, so they are not retried every iteration either.
type solveCache[T any] struct {
	mu      sync.RWMutex
	entries map[string]solveEntry[T]
	solves  int // linear solves actually performed (cache misses)
}

type solveEntry[T any] struct {
	// byWorker[w] is worker w's decode coefficient (meaningful only for the
	// workers in the key's set); nil records a failed solve.
	byWorker T
	ok       bool
}

// get returns the cached solve outcome for the responder-set key, if any.
func (c *solveCache[T]) get(key []byte) (T, bool, bool) {
	c.mu.RLock()
	e, hit := c.entries[string(key)] // no alloc: map lookup by []byte conversion
	c.mu.RUnlock()
	return e.byWorker, e.ok, hit
}

// put records a solve outcome, clearing the cache first if it is full.
func (c *solveCache[T]) put(key []byte, byWorker T, ok bool) {
	c.mu.Lock()
	if c.entries == nil || len(c.entries) >= solveCacheLimit {
		c.entries = make(map[string]solveEntry[T], 8)
	}
	c.solves++
	c.entries[string(key)] = solveEntry[T]{byWorker: byWorker, ok: ok}
	c.mu.Unlock()
}

// solveCount returns how many linear solves were performed (for tests).
func (c *solveCache[T]) solveCount() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.solves
}

// setKey encodes the responder set as a cache key: workers are copied into
// the sorted scratch, sorted in place, and serialized. Both scratch slices
// are the decoder's, reused across iterations. The returned key aliases
// keyBuf.
func setKey(workers []int, sortBuf []int, keyBuf []byte) ([]int, []byte) {
	sortBuf = append(sortBuf[:0], workers...)
	sort.Ints(sortBuf)
	keyBuf = keyBuf[:0]
	for _, w := range sortBuf {
		keyBuf = append(keyBuf, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}
	return sortBuf, keyBuf
}

// sumSparseInto folds the non-nil vectors of vs into dst in slot order,
// fully overwriting dst (the in-place form of the "clone first, add rest"
// fold the decoders previously allocated). It panics if every slot is nil.
func sumSparseInto(dst []float64, vs [][]float64) {
	first := true
	for _, v := range vs {
		if v == nil {
			continue
		}
		if first {
			copy(dst, v)
			first = false
		} else {
			vecmath.AddInto(dst, v)
		}
	}
	if first {
		panic("coding: decode with no kept vectors")
	}
}

// sumSparseSliceInto folds elements [lo, hi) of the non-nil vectors of vs
// into dst[lo:hi] in slot order — the slice form of sumSparseInto. Each
// element folds its terms in the same order as the full fold, so any
// partition of [0, len(dst)) reproduces sumSparseInto bit-for-bit. It panics
// if every slot is nil.
func sumSparseSliceInto(dst []float64, vs [][]float64, lo, hi int) {
	first := true
	for _, v := range vs {
		if v == nil {
			continue
		}
		if first {
			copy(dst[lo:hi], v[lo:hi])
			first = false
			continue
		}
		for t := lo; t < hi; t++ {
			dst[t] += v[t]
		}
	}
	if first {
		panic("coding: decode with no kept vectors")
	}
}

// ---------------------------------------------------------------------------
// Decode parallelism
// ---------------------------------------------------------------------------

// ParallelDecoder is the optional Decoder capability behind the engine's
// DecodeParallelism knob: decoders whose DecodeInto is a p-dimensional
// linear combination (cyclicrep, cyclicmds, the batch-coverage decoders)
// shard that combination across up to `workers` goroutines. The sharding is
// element-wise over the output vector with every element folding its terms
// in the serial order, so decoded gradients are bit-for-bit identical to
// the serial path for every worker count.
type ParallelDecoder interface {
	Decoder
	// SetDecodeParallelism fixes the goroutine fan-out of subsequent
	// DecodeInto calls (0/1 = serial). Callers set it once after NewDecoder,
	// before the decoder is shared with the iteration loop.
	SetDecodeParallelism(workers int)
}

// SetDecodeParallelism applies the decode fan-out to decoders that support
// it and is a no-op for the rest (a scheme whose decode is not a dimension-
// wise combination has nothing to shard).
func SetDecodeParallelism(d Decoder, workers int) {
	if pd, ok := d.(ParallelDecoder); ok {
		pd.SetDecodeParallelism(workers)
	}
}

// SliceDecoder is the optional Decoder capability behind streaming decode:
// a decoder whose output elements are independent can reconstruct an
// arbitrary output slice [lo, hi) on its own. Each slice folds its terms in
// the serial order, so any partition of [0, p) — the engine's goroutine
// shards, or the comm plane's wire chunks as they arrive — reproduces
// DecodeInto bit-for-bit. The ParallelDecoder implementations (cyclicrep,
// cyclicmds, the batch-coverage decoders) all provide it, and their
// DecodeInto parallel paths are sharded over exactly this primitive.
type SliceDecoder interface {
	Decoder
	// DecodeSliceInto reconstructs output elements [lo, hi) of the decoded
	// gradient into dst[lo:hi], leaving the rest of dst untouched. It
	// requires Decodable() and 0 <= lo <= hi <= len(dst); dst must be sized
	// like a full decode destination.
	DecodeSliceInto(dst []float64, lo, hi int) error
}

// checkDecodeSlice validates DecodeSliceInto bounds.
func checkDecodeSlice(dst []float64, lo, hi int) error {
	if lo < 0 || hi > len(dst) || lo > hi {
		return fmt.Errorf("coding: decode slice [%d, %d) out of range for %d-dim output", lo, hi, len(dst))
	}
	return nil
}
