package coding

import (
	"math"
	"testing"

	"bcc/internal/rngutil"
	"bcc/internal/vecmath"
)

// slicePlanFor builds a plan for the scheme at the test topology. The
// registry covers most schemes; genbcc and partitioned are load-specific and
// unregistered, so they are constructed explicitly with uneven (genbcc) and
// unit (partitioned: loads must sum to exactly m) load vectors.
func slicePlanFor(t *testing.T, scheme string, m, n, r int) Plan {
	t.Helper()
	var (
		plan Plan
		err  error
	)
	switch scheme {
	case "genbcc":
		loads := make([]int, n)
		maxLoad := 0
		for i := range loads {
			loads[i] = 1 + i%3
			if loads[i] > maxLoad {
				maxLoad = loads[i]
			}
		}
		plan, err = GeneralizedBCC{Loads: loads}.Plan(m, n, maxLoad, rngutil.New(3))
	case "partitioned":
		loads := make([]int, n)
		for i := range loads {
			loads[i] = m / n
		}
		for i := 0; i < m%n; i++ {
			loads[i]++
		}
		plan, err = Partitioned{Loads: loads}.Plan(m, n, (m+n-1)/n, rngutil.New(3))
	default:
		var s Scheme
		s, err = Lookup(scheme)
		if err != nil {
			t.Fatal(err)
		}
		plan, err = s.Plan(m, n, r, rngutil.New(3))
	}
	if err != nil {
		t.Skipf("%s rejects m=%d n=%d r=%d: %v", scheme, m, n, r, err)
	}
	return plan
}

// sliceDecoderFor builds a decodable SliceDecoder for the scheme plus the
// serial full-decode reference, skipping schemes that reject the topology.
func sliceDecoderFor(t *testing.T, scheme string, dim int) (SliceDecoder, []float64) {
	t.Helper()
	const m, n, r = 24, 24, 6
	plan := slicePlanFor(t, scheme, m, n, r)
	msgs := encodeAll(t, plan, dim, 4)
	dec := plan.NewDecoder()
	for _, w := range rngutil.New(5).Perm(n) {
		for _, msg := range msgs[w] {
			dec.Offer(msg)
		}
		if dec.Decodable() {
			break
		}
	}
	if !dec.Decodable() {
		t.Fatalf("%s: not decodable after all workers", scheme)
	}
	sd, ok := dec.(SliceDecoder)
	if !ok {
		t.Fatalf("%s decoder does not implement SliceDecoder", scheme)
	}
	ref := make([]float64, dim)
	if err := sd.DecodeInto(ref); err != nil {
		t.Fatal(err)
	}
	return sd, ref
}

// TestDecodeSliceIntoPartitions is the streaming-decode contract test: for
// every SliceDecoder scheme — all registered schemes plus the unregistered
// load-specific ones — assembling the output from an ARBITRARY partition of
// [0, p) — uniform chunks of every size, including wire-chunk shapes that
// straddle the dimension, plus random uneven cuts — reproduces the serial
// DecodeInto bit-for-bit, and slices outside the partition are left
// untouched.
func TestDecodeSliceIntoPartitions(t *testing.T) {
	const dim = 257 // prime: no chunk size divides it evenly
	schemes := append(Names(), "genbcc", "partitioned")
	for _, scheme := range schemes {
		t.Run(scheme, func(t *testing.T) {
			sd, ref := sliceDecoderFor(t, scheme, dim)

			// Uniform chunkings, including 1 (element streaming), sizes that
			// straddle dim, and one giant chunk.
			for _, chunk := range []int{1, 7, 64, 256, 257, 512} {
				got := make([]float64, dim)
				for i := range got {
					got[i] = math.NaN() // every element must be overwritten
				}
				for lo := 0; lo < dim; lo += chunk {
					hi := lo + chunk
					if hi > dim {
						hi = dim
					}
					if err := sd.DecodeSliceInto(got, lo, hi); err != nil {
						t.Fatalf("chunk %d slice [%d,%d): %v", chunk, lo, hi, err)
					}
				}
				if d := vecmath.MaxAbsDiff(ref, got); d != 0 {
					t.Fatalf("chunk %d diverged from DecodeInto by %v", chunk, d)
				}
			}

			// Random uneven partitions, shuffled application order: element
			// independence means order cannot matter.
			rng := rngutil.New(11)
			for trial := 0; trial < 20; trial++ {
				var bounds []int
				for lo := 0; lo < dim; {
					hi := lo + 1 + rng.Intn(90)
					if hi > dim {
						hi = dim
					}
					bounds = append(bounds, lo, hi)
					lo = hi
				}
				order := rng.Perm(len(bounds) / 2)
				got := make([]float64, dim)
				for _, s := range order {
					lo, hi := bounds[2*s], bounds[2*s+1]
					if err := sd.DecodeSliceInto(got, lo, hi); err != nil {
						t.Fatalf("trial %d slice [%d,%d): %v", trial, lo, hi, err)
					}
				}
				if d := vecmath.MaxAbsDiff(ref, got); d != 0 {
					t.Fatalf("trial %d diverged from DecodeInto by %v", trial, d)
				}
			}

			// A partial decode leaves everything outside [lo, hi) untouched.
			sentinel := make([]float64, dim)
			for i := range sentinel {
				sentinel[i] = -1
			}
			if err := sd.DecodeSliceInto(sentinel, 10, 20); err != nil {
				t.Fatal(err)
			}
			for i := range sentinel {
				in := i >= 10 && i < 20
				if in && sentinel[i] != ref[i] {
					t.Fatalf("element %d inside slice = %v, want %v", i, sentinel[i], ref[i])
				}
				if !in && sentinel[i] != -1 {
					t.Fatalf("element %d outside slice was touched: %v", i, sentinel[i])
				}
			}
		})
	}
}

// TestDecodeSliceIntoBounds pins the error contract for malformed ranges.
func TestDecodeSliceIntoBounds(t *testing.T) {
	sd, _ := sliceDecoderFor(t, "cyclicrep", 32)
	dst := make([]float64, 32)
	for _, tc := range []struct{ lo, hi int }{{-1, 4}, {4, 33}, {8, 4}} {
		if err := sd.DecodeSliceInto(dst, tc.lo, tc.hi); err == nil {
			t.Fatalf("slice [%d,%d) accepted", tc.lo, tc.hi)
		}
	}
	if err := sd.DecodeSliceInto(dst, 4, 4); err != nil {
		t.Fatalf("empty slice [4,4) rejected: %v", err)
	}
}
