package coding

import (
	"fmt"
	"math"

	"bcc/internal/coupon"
	"bcc/internal/rngutil"
)

// BCCApprox is an extension of BCC to APPROXIMATE gradient recovery, in the
// spirit of approximate gradient coding: the master stops once a fraction
// Phi of the batches is covered and inflates the partial sum by
// nBatches/covered, an (approximately) unbiased stochastic gradient. The
// training loop degrades gracefully into distributed SGD: thresholds drop
// well below BCC's exact-coverage N*H_N — the collector's last few coupons
// are the expensive ones — at the price of gradient noise.
//
// Placement and encoding are identical to BCC; only the decodability rule
// and the decode-time rescaling differ. Phi = 1 recovers exact BCC.
type BCCApprox struct {
	// Phi is the coverage fraction in (0, 1]; default 0.8.
	Phi float64
	// MaxResample bounds feasibility retries, as in BCC. Feasibility still
	// requires FULL coverage to be possible so training can fall back to an
	// exact iteration if stragglers vanish.
	MaxResample int
}

func init() { Register(BCCApprox{}) }

// Name implements Scheme.
func (BCCApprox) Name() string { return "bccapprox" }

// Plan implements Scheme.
func (s BCCApprox) Plan(m, n, r int, rng *rngutil.RNG) (Plan, error) {
	phi := s.Phi
	if phi == 0 {
		phi = 0.8
	}
	if phi <= 0 || phi > 1 {
		return nil, fmt.Errorf("coding/bccapprox: Phi=%v outside (0,1]", phi)
	}
	base, err := BCC{MaxResample: s.MaxResample}.Plan(m, n, r, rng)
	if err != nil {
		return nil, fmt.Errorf("coding/bccapprox: %w", err)
	}
	bp := base.(*bccPlan)
	need := int(math.Ceil(phi * float64(bp.nBatches)))
	if need < 1 {
		need = 1
	}
	return &bccApproxPlan{bccPlan: bp, phi: phi, need: need}, nil
}

type bccApproxPlan struct {
	*bccPlan
	phi  float64
	need int
}

func (p *bccApproxPlan) Scheme() string { return "bccapprox" }

// CoverageTarget returns the number of batches the decoder waits for.
func (p *bccApproxPlan) CoverageTarget() int { return p.need }

// MinResponders overrides the embedded exact-BCC coverage bound: the
// approximate decoder is satisfied by `need` covered batches, and each
// worker holds one batch, so fewer than `need` workers can never be ready.
func (p *bccApproxPlan) MinResponders() int { return p.need }

// ExpectedThreshold implements Plan: the expected draws of the classic
// collector to see `need` distinct coupons of nBatches types, capped at n.
func (p *bccApproxPlan) ExpectedThreshold() float64 {
	e := coupon.PartialExpectedDraws(p.nBatches, p.need)
	if e > float64(p.n) {
		return float64(p.n)
	}
	return e
}

func (p *bccApproxPlan) NewDecoder() Decoder {
	nb := p.nBatches
	return &coverageDecoder{
		nBatches: nb,
		need:     p.need,
		tracker:  coupon.NewTracker(nb),
		kept:     make([][]float64, nb),
		heard:    newWorkerMask(p.n),
		scale: func(covered int) float64 {
			return float64(nb) / float64(covered)
		},
	}
}

var _ Scheme = BCCApprox{}
