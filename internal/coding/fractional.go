package coding

import (
	"fmt"
	"math"

	"bcc/internal/rngutil"
	"bcc/internal/vecmath"
)

// Fractional is the Fractional Repetition gradient-coding scheme of Tandon
// et al., referenced in footnote 2 of the paper: although designed for the
// same worst case as CyclicRep (tolerate s = r - 1 stragglers), it can
// finish EARLY when the responding workers happen to cover every block —
// making it an interesting middle ground between CR and BCC.
//
// Construction: requires m == n and r | n. The n workers form r groups; the
// n examples form n/r blocks of r consecutive examples. Within each group,
// worker j holds block j, so every block is replicated r times (once per
// group). Workers ship their block's gradient SUM, and the master decodes
// by summation once every block is covered — coverage decoding exactly like
// BCC, but with a deterministic, perfectly balanced placement.
//
// Any n - s workers necessarily cover all blocks (each block has r = s + 1
// replicas), so the worst-case threshold matches CR's m - r + 1 while the
// average threshold under a random response order is substantially lower.
type Fractional struct{}

func init() { Register(Fractional{}) }

// Name implements Scheme.
func (Fractional) Name() string { return "fractional" }

// Plan implements Scheme.
func (Fractional) Plan(m, n, r int, _ *rngutil.RNG) (Plan, error) {
	if err := validate("fractional", m, n, r); err != nil {
		return nil, err
	}
	if m != n {
		return nil, fmt.Errorf("coding/fractional: requires m == n; got m=%d n=%d", m, n)
	}
	if n%r != 0 {
		return nil, fmt.Errorf("coding/fractional: requires r | n; got n=%d r=%d", n, r)
	}
	nBlocks := n / r
	// Block b holds examples [b*r, (b+1)*r). Worker w in group g = w / nBlocks
	// holds block w % nBlocks.
	blocks := make([][]int, nBlocks)
	for bi := 0; bi < nBlocks; bi++ {
		ids := make([]int, r)
		for k := range ids {
			ids[k] = bi*r + k
		}
		blocks[bi] = ids
	}
	assign := make([][]int, n)
	blockOf := make([]int, n)
	for w := 0; w < n; w++ {
		bi := w % nBlocks
		blockOf[w] = bi
		assign[w] = blocks[bi]
	}
	p := &fractionalPlan{m: m, n: n, r: r, nBlocks: nBlocks, blockOf: blockOf, assign: assign}
	// The without-replacement coverage expectation is an O(n^2 * nBlocks)
	// inclusion-exclusion sum; solve it once here instead of on every
	// ExpectedThreshold call (the experiment harness queries it per trial).
	p.expected = p.computeExpectedThreshold()
	return p, nil
}

type fractionalPlan struct {
	m, n, r  int
	nBlocks  int
	blockOf  []int
	assign   [][]int
	expected float64 // E[K], computed at construction
}

func (p *fractionalPlan) Scheme() string          { return "fractional" }
func (p *fractionalPlan) Params() (int, int, int) { return p.m, p.n, p.r }
func (p *fractionalPlan) Assignments() [][]int    { return p.assign }

// NumBlocks returns the number of distinct data blocks n/r.
func (p *fractionalPlan) NumBlocks() int { return p.nBlocks }

// WorstCaseThreshold implements Plan: n - (r-1) workers always cover every
// block, because each block is replicated r times.
func (p *fractionalPlan) WorstCaseThreshold() int { return p.n - (p.r - 1) }

// ExpectedThreshold implements Plan: the expected number of draws, without
// replacement, from n workers (r replicas of each of n/r blocks) until all
// blocks appear — solved once at Plan construction.
func (p *fractionalPlan) ExpectedThreshold() float64 { return p.expected }

// computeExpectedThreshold evaluates E[K] exactly:
//
//	E[K] = n - sum over blocks of expected "wasted" draws … computed via
//	E[K] = sum_{t} P(K > t) with P(K > t) from inclusion-exclusion over
//	blocks entirely absent from the first t draws.
func (p *fractionalPlan) computeExpectedThreshold() float64 {
	n, r, nb := p.n, p.r, p.nBlocks
	// P(K > t) = P(some block has all r replicas outside the first t draws)
	//          = sum_{j>=1} (-1)^{j+1} C(nb, j) C(n - j*r, t) / C(n, t).
	// Expectation = sum_{t=0..n-1} P(K > t). Terms use log-space ratios.
	var e float64
	for t := 0; t < n; t++ {
		e += fractionalSurvival(n, r, nb, t)
	}
	return e
}

// fractionalSurvival returns P(K > t) as above; exported indirectly for
// tests via ExpectedThreshold cross-check against Monte-Carlo.
func fractionalSurvival(n, r, nb, t int) float64 {
	if t < nb {
		return 1
	}
	var p float64
	sign := 1.0
	logCnbj := 0.0
	for j := 1; j <= nb; j++ {
		logCnbj += math.Log(float64(nb-j+1)) - math.Log(float64(j))
		if n-j*r < t {
			break // C(n-j*r, t) = 0, and so are all later terms
		}
		// log [ C(n-j*r, t) / C(n, t) ] = sum_{i=0..t-1} log((n-j*r-i)/(n-i))
		var logRatio float64
		for i := 0; i < t; i++ {
			logRatio += math.Log(float64(n-j*r-i)) - math.Log(float64(n-i))
		}
		term := math.Exp(logCnbj + logRatio)
		p += sign * term
		sign = -sign
	}
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

func (p *fractionalPlan) CommLoadPerWorker() float64 { return 1 }

// EncodeInto implements Plan: block sum tagged with the block id, summed
// directly into a pooled payload buffer.
func (p *fractionalPlan) EncodeInto(dst []Message, worker int, parts [][]float64, bufs Buffers) []Message {
	checkParts("fractional", p.assign, worker, parts)
	buf := grabBuf(bufs, len(parts[0]))
	vecmath.SumVectorsInto(buf, parts)
	return append(dst, Message{
		From:  worker,
		Tag:   p.blockOf[worker],
		Vec:   buf,
		Units: 1,
	})
}

func (p *fractionalPlan) NewDecoder() Decoder {
	return &fractionalDecoder{
		plan:  p,
		kept:  make([][]float64, p.nBlocks),
		heard: newWorkerMask(p.n),
	}
}

type fractionalDecoder struct {
	plan    *fractionalPlan
	kept    [][]float64
	covered int
	heard   workerMask
	units   float64
}

func (d *fractionalDecoder) Offer(msg Message) bool {
	if d.Decodable() {
		return true
	}
	if d.heard.hear(msg.From) {
		d.units += msg.Units
	}
	if msg.Tag < 0 || msg.Tag >= d.plan.nBlocks {
		panic(fmt.Sprintf("coding/fractional: invalid block tag %d", msg.Tag))
	}
	if d.kept[msg.Tag] == nil {
		d.kept[msg.Tag] = msg.Vec
		d.covered++
	}
	return d.Decodable()
}

func (d *fractionalDecoder) Decodable() bool { return d.covered == d.plan.nBlocks }

func (d *fractionalDecoder) DecodeInto(dst []float64) error {
	if !d.Decodable() {
		return ErrNotDecodable
	}
	vecmath.SumVectorsInto(dst, d.kept)
	return nil
}

// DecodeSliceInto implements SliceDecoder: elements [lo, hi) of the
// block-order sum only. Every block slot is held once decodable, so the
// slice fold reproduces DecodeInto bit-for-bit on any partition.
func (d *fractionalDecoder) DecodeSliceInto(dst []float64, lo, hi int) error {
	if !d.Decodable() {
		return ErrNotDecodable
	}
	if err := checkDecodeSlice(dst, lo, hi); err != nil {
		return err
	}
	sumSparseSliceInto(dst, d.kept, lo, hi)
	return nil
}

func (d *fractionalDecoder) WorkersHeard() int      { return d.heard.count }
func (d *fractionalDecoder) UnitsReceived() float64 { return d.units }

// Reset implements Decoder.
func (d *fractionalDecoder) Reset() {
	for i := range d.kept {
		d.kept[i] = nil
	}
	d.covered = 0
	d.heard.reset()
	d.units = 0
}

var _ Scheme = Fractional{}
