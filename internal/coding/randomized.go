package coding

import (
	"fmt"

	"bcc/internal/coupon"
	"bcc/internal/rngutil"
	"bcc/internal/vecmath"
)

// Randomized is the "simple randomized scheme" of the paper's introduction
// (eqs. 5-6): every worker independently selects r of the m examples
// uniformly at random (without replacement) and ships each computed partial
// gradient INDIVIDUALLY to the master. The master keeps the first copy of
// each example's gradient and finishes once all m are covered.
//
// Like BCC it reaches the minimum recovery threshold up to a log factor
// (K ~ (m/r) log m), but because every message group carries r units its
// communication load blows up to ~ m log m — the deficiency BCC's batching
// step repairs.
type Randomized struct {
	// MaxResample bounds feasibility retries, as in BCC.
	MaxResample int
}

func init() { Register(Randomized{}) }

// Name implements Scheme.
func (Randomized) Name() string { return "randomized" }

// Plan implements Scheme.
func (s Randomized) Plan(m, n, r int, rng *rngutil.RNG) (Plan, error) {
	if err := validate("randomized", m, n, r); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("coding/randomized: nil rng (placement is randomized)")
	}
	maxTries := s.MaxResample
	if maxTries <= 0 {
		maxTries = 1000
	}
	resamples := 0
	for try := 0; try < maxTries; try++ {
		assign := make([][]int, n)
		for w := 0; w < n; w++ {
			assign[w] = rng.Sample(m, r)
		}
		if coverageFeasible(m, assign) {
			return &randomizedPlan{m: m, n: n, r: r, assign: assign, resamples: resamples}, nil
		}
		resamples++
	}
	return nil, fmt.Errorf("coding/randomized: no feasible placement after %d tries (m=%d n=%d r=%d)",
		maxTries, m, n, r)
}

type randomizedPlan struct {
	m, n, r   int
	assign    [][]int
	resamples int
}

func (p *randomizedPlan) Scheme() string          { return "randomized" }
func (p *randomizedPlan) Params() (int, int, int) { return p.m, p.n, p.r }
func (p *randomizedPlan) Assignments() [][]int    { return p.assign }
func (p *randomizedPlan) Resamples() int          { return p.resamples }
func (p *randomizedPlan) WorstCaseThreshold() int { return -1 }

// ExpectedThreshold implements Plan: the batch-drawing coupon collector's
// expectation (eq. 5), capped at n.
func (p *randomizedPlan) ExpectedThreshold() float64 {
	k := coupon.BatchExpectedDraws(p.m, p.r)
	if k > float64(p.n) {
		return float64(p.n)
	}
	return k
}

// CommLoadPerWorker implements Plan: r unit messages per worker.
func (p *randomizedPlan) CommLoadPerWorker() float64 { return float64(p.r) }

// EncodeInto implements Plan: one unit message per assigned example. The
// partial gradients are copied into pooled payload buffers so the messages
// never alias the caller's parts scratch.
func (p *randomizedPlan) EncodeInto(dst []Message, worker int, parts [][]float64, bufs Buffers) []Message {
	checkParts("randomized", p.assign, worker, parts)
	for k, g := range parts {
		buf := grabBuf(bufs, len(g))
		copy(buf, g)
		dst = append(dst, Message{From: worker, Tag: p.assign[worker][k], Vec: buf, Units: 1})
	}
	return dst
}

func (p *randomizedPlan) NewDecoder() Decoder {
	return &randomizedDecoder{
		plan:    p,
		tracker: coupon.NewTracker(p.m),
		kept:    make([][]float64, p.m),
		heard:   newWorkerMask(p.n),
	}
}

type randomizedDecoder struct {
	plan    *randomizedPlan
	tracker *coupon.Tracker
	kept    [][]float64
	heard   workerMask
	units   float64
}

func (d *randomizedDecoder) Offer(msg Message) bool {
	if d.Decodable() {
		return true
	}
	d.heard.hear(msg.From)
	d.units += msg.Units
	if msg.Tag < 0 || msg.Tag >= d.plan.m {
		panic(fmt.Sprintf("coding/randomized: message with invalid example tag %d", msg.Tag))
	}
	if d.tracker.Offer(msg.Tag) {
		d.kept[msg.Tag] = msg.Vec
	}
	return d.Decodable()
}

func (d *randomizedDecoder) Decodable() bool { return d.tracker.Complete() }

func (d *randomizedDecoder) DecodeInto(dst []float64) error {
	if !d.Decodable() {
		return ErrNotDecodable
	}
	vecmath.SumVectorsInto(dst, d.kept)
	return nil
}

// DecodeSliceInto implements SliceDecoder: elements [lo, hi) of the
// example-order sum only. Every example slot is held once decodable, so the
// slice fold reproduces DecodeInto bit-for-bit on any partition.
func (d *randomizedDecoder) DecodeSliceInto(dst []float64, lo, hi int) error {
	if !d.Decodable() {
		return ErrNotDecodable
	}
	if err := checkDecodeSlice(dst, lo, hi); err != nil {
		return err
	}
	sumSparseSliceInto(dst, d.kept, lo, hi)
	return nil
}

func (d *randomizedDecoder) WorkersHeard() int      { return d.heard.count }
func (d *randomizedDecoder) UnitsReceived() float64 { return d.units }

// Reset implements Decoder.
func (d *randomizedDecoder) Reset() {
	d.tracker.Reset()
	for i := range d.kept {
		d.kept[i] = nil
	}
	d.heard.reset()
	d.units = 0
}

var _ Scheme = Randomized{}
