package coding

import (
	"math"
	"testing"
	"testing/quick"

	"bcc/internal/rngutil"
	"bcc/internal/vecmath"
)

// TestFuzzAllSchemesRandomConfigs is a broad property check: random problem
// sizes, random arrival orders, every registered exact scheme — feeding the
// full worker set must always decode to the exact gradient sum, and
// decodability must be reached at or before the scheme's worst-case
// threshold when one exists.
func TestFuzzAllSchemesRandomConfigs(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rngutil.New(seed)
		// Sizes chosen so every scheme has a fighting chance: m == n for
		// the coded schemes, n >= 4x batches for coverage schemes.
		m := 6 + 2*rng.Intn(8) // 6..20, even
		n := m
		r := 1 + rng.Intn(m/2)
		gs := make([][]float64, m)
		want := make([]float64, 4)
		for u := range gs {
			g := make([]float64, 4)
			for i := range g {
				g[i] = rng.Normal()
			}
			gs[u] = g
			vecmath.AddInto(want, g)
		}
		for _, name := range Names() {
			if name == "bccapprox" {
				continue // approximate by design
			}
			s, err := Lookup(name)
			if err != nil {
				return false
			}
			plan, err := s.Plan(m, n, r, rng)
			if err != nil {
				continue // structurally rejected combination: fine
			}
			dec := plan.NewDecoder()
			order := rng.Perm(n)
			decodedAt := -1
			for i, w := range order {
				assign := plan.Assignments()[w]
				parts := make([][]float64, len(assign))
				for k, u := range assign {
					parts[k] = gs[u]
				}
				for _, msg := range Encode(plan, w, parts) {
					dec.Offer(msg)
				}
				if dec.Decodable() && decodedAt < 0 {
					decodedAt = i + 1
				}
			}
			if !dec.Decodable() {
				// Random placements may be infeasible only if the plan
				// constructor failed to guarantee coverage — that is a bug.
				return false
			}
			got, err := Decode(dec, 4)
			if err != nil {
				return false
			}
			if vecmath.MaxAbsDiff(got, want) > 1e-6*(1+vecmath.NormInf(want)) {
				t.Logf("scheme %s m=%d n=%d r=%d: decode error %v",
					name, m, n, r, vecmath.MaxAbsDiff(got, want))
				return false
			}
			if wc := plan.WorstCaseThreshold(); wc >= 0 && decodedAt > wc {
				t.Logf("scheme %s m=%d n=%d r=%d: decoded after %d > worst case %d",
					name, m, n, r, decodedAt, wc)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestFuzzDecodersIdempotentDecode checks Decode can be called repeatedly
// and late Offers never corrupt an already-decodable state.
func TestFuzzDecodersIdempotentDecode(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rngutil.New(seed)
		m := 8 + 2*rng.Intn(6)
		n := m
		r := 2 + rng.Intn(3)
		gs := make([][]float64, m)
		for u := range gs {
			gs[u] = []float64{rng.Normal(), rng.Normal()}
		}
		for _, name := range []string{"bcc", "cyclicrep", "uncoded"} {
			s, _ := Lookup(name)
			plan, err := s.Plan(m, n, r, rng)
			if err != nil {
				continue
			}
			dec := plan.NewDecoder()
			var first []float64
			for _, w := range rng.Perm(n) {
				assign := plan.Assignments()[w]
				parts := make([][]float64, len(assign))
				for k, u := range assign {
					parts[k] = gs[u]
				}
				for _, msg := range Encode(plan, w, parts) {
					dec.Offer(msg)
				}
				if dec.Decodable() && first == nil {
					out, err := Decode(dec, 2)
					if err != nil {
						return false
					}
					first = vecmath.Clone(out)
				}
			}
			if first == nil {
				return false
			}
			again, err := Decode(dec, 2)
			if err != nil {
				return false
			}
			if vecmath.MaxAbsDiff(first, again) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestFuzzExpectedThresholdsFinite sanity-checks the analytic threshold
// surface over the whole configuration grid.
func TestFuzzExpectedThresholdsFinite(t *testing.T) {
	rng := rngutil.New(1234)
	for _, name := range Names() {
		s, _ := Lookup(name)
		for m := 4; m <= 24; m += 4 {
			for r := 1; r <= m; r *= 2 {
				plan, err := s.Plan(m, m, r, rng)
				if err != nil {
					continue
				}
				e := plan.ExpectedThreshold()
				if math.IsNaN(e) {
					continue // explicitly MC-only schemes
				}
				if e <= 0 || e > float64(m)+1e-9 {
					t.Fatalf("%s m=%d r=%d: E[K] = %v out of (0, n]", name, m, r, e)
				}
				if wc := plan.WorstCaseThreshold(); wc >= 0 && e > float64(wc)+1e-9 {
					t.Fatalf("%s m=%d r=%d: E[K]=%v exceeds worst case %d", name, m, r, e, wc)
				}
			}
		}
	}
}
