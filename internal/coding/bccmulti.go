package coding

import (
	"fmt"
	"sort"

	"bcc/internal/coupon"
	"bcc/internal/rngutil"
	"bcc/internal/vecmath"
)

// BCCMulti is a design-space ablation of BCC: instead of ONE batch of r
// examples, each worker independently picks K distinct batches of r/K
// examples (same computational load r) and ships one sum per batch (K unit
// messages). Collection at the master becomes the group-drawing coupon
// collector over ceil(m/(r/K)) finer batches.
//
// The analysis shows why the paper settles on K = 1: with K batches the
// expected worker threshold is ~ (m/r)(log(m/r) + log K) — marginally WORSE
// than BCC's (m/r)(log(m/r) + gamma) — while the communication load grows by
// a factor of K. The only benefit is that a duplicated batch wastes 1/K of a
// worker's upload instead of all of it. The `multibatch` experiment
// quantifies this tradeoff.
type BCCMulti struct {
	// K is the number of batches per worker (default 2).
	K int
	// MaxResample bounds feasibility retries, as in BCC.
	MaxResample int
}

func init() { Register(BCCMulti{}) }

// Name implements Scheme.
func (BCCMulti) Name() string { return "bccmulti" }

// Plan implements Scheme.
func (s BCCMulti) Plan(m, n, r int, rng *rngutil.RNG) (Plan, error) {
	if err := validate("bccmulti", m, n, r); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("coding/bccmulti: nil rng (placement is randomized)")
	}
	k := s.K
	if k <= 0 {
		k = 2
	}
	if r < k {
		return nil, fmt.Errorf("coding/bccmulti: load r=%d cannot be split into K=%d batches", r, k)
	}
	batchSize := r / k
	nBatches := (m + batchSize - 1) / batchSize
	if k > nBatches {
		return nil, fmt.Errorf("coding/bccmulti: K=%d exceeds the %d available batches", k, nBatches)
	}
	batches := make([][]int, nBatches)
	for bi := 0; bi < nBatches; bi++ {
		lo, hi := bi*batchSize, (bi+1)*batchSize
		if hi > m {
			hi = m
		}
		ids := make([]int, hi-lo)
		for j := range ids {
			ids[j] = lo + j
		}
		batches[bi] = ids
	}
	maxTries := s.MaxResample
	if maxTries <= 0 {
		maxTries = 1000
	}
	for try := 0; try < maxTries; try++ {
		choice := make([][]int, n)
		covered := make([]bool, nBatches)
		nCovered := 0
		for w := 0; w < n; w++ {
			picks := rng.Sample(nBatches, k)
			sort.Ints(picks)
			choice[w] = picks
			for _, b := range picks {
				if !covered[b] {
					covered[b] = true
					nCovered++
				}
			}
		}
		if nCovered != nBatches {
			continue
		}
		assign := make([][]int, n)
		spans := make([][]batchSpan, n)
		for w := 0; w < n; w++ {
			var ids []int
			var sp []batchSpan
			for _, b := range choice[w] {
				lo := len(ids)
				ids = append(ids, batches[b]...)
				sp = append(sp, batchSpan{batch: b, lo: lo, hi: len(ids)})
			}
			assign[w] = ids
			spans[w] = sp
		}
		return &bccMultiPlan{
			m: m, n: n, r: r, k: k,
			nBatches: nBatches,
			assign:   assign,
			spans:    spans,
		}, nil
	}
	return nil, fmt.Errorf("coding/bccmulti: no feasible placement after %d tries (m=%d n=%d r=%d K=%d)",
		maxTries, m, n, r, k)
}

// batchSpan locates one batch's partial gradients inside a worker's
// assignment slice.
type batchSpan struct {
	batch, lo, hi int
}

type bccMultiPlan struct {
	m, n, r, k int
	nBatches   int
	assign     [][]int
	spans      [][]batchSpan
}

func (p *bccMultiPlan) Scheme() string          { return "bccmulti" }
func (p *bccMultiPlan) Params() (int, int, int) { return p.m, p.n, p.r }
func (p *bccMultiPlan) Assignments() [][]int    { return p.assign }

// NumBatches returns the (finer) batch count ceil(m/(r/K)).
func (p *bccMultiPlan) NumBatches() int { return p.nBatches }

func (p *bccMultiPlan) WorstCaseThreshold() int { return -1 }

// ExpectedThreshold implements Plan via the group-drawing collector: each
// worker reveals K distinct coupons of the nBatches types.
func (p *bccMultiPlan) ExpectedThreshold() float64 {
	k := coupon.BatchExpectedDraws(p.nBatches, p.k)
	if k > float64(p.n) {
		return float64(p.n)
	}
	return k
}

func (p *bccMultiPlan) CommLoadPerWorker() float64 { return float64(p.k) }

// EncodeInto implements Plan: one batch-sum message per selected batch,
// summed directly into pooled payload buffers.
func (p *bccMultiPlan) EncodeInto(dst []Message, worker int, parts [][]float64, bufs Buffers) []Message {
	checkParts("bccmulti", p.assign, worker, parts)
	for _, sp := range p.spans[worker] {
		sum := grabBuf(bufs, len(parts[0]))
		vecmath.Fill(sum, 0)
		for i := sp.lo; i < sp.hi; i++ {
			vecmath.AddInto(sum, parts[i])
		}
		dst = append(dst, Message{From: worker, Tag: sp.batch, Vec: sum, Units: 1})
	}
	return dst
}

func (p *bccMultiPlan) NewDecoder() Decoder {
	return &coverageDecoder{
		nBatches: p.nBatches,
		need:     p.nBatches,
		tracker:  coupon.NewTracker(p.nBatches),
		kept:     make([][]float64, p.nBatches),
		heard:    newWorkerMask(p.n),
		scale:    func(covered int) float64 { return 1 },
	}
}

var _ Scheme = BCCMulti{}

// ---------------------------------------------------------------------------
// coverageDecoder: shared batch-coverage decoding (bccmulti, bccapprox)
// ---------------------------------------------------------------------------

// coverageDecoder keeps the first message per batch and declares
// decodability once `need` batches are covered; DecodeInto writes the kept
// sums scaled by scale(covered) — identity for exact schemes, an inflation
// factor for approximate ones.
type coverageDecoder struct {
	nBatches int
	need     int
	tracker  *coupon.Tracker
	kept     [][]float64
	heard    workerMask
	units    float64
	covered  int
	scale    func(covered int) float64
	par      int // DecodeInto goroutine fan-out (0/1 = serial)
}

// SetDecodeParallelism implements ParallelDecoder.
func (d *coverageDecoder) SetDecodeParallelism(workers int) { d.par = workers }

func (d *coverageDecoder) Offer(msg Message) bool {
	if d.Decodable() {
		return true
	}
	d.heard.hear(msg.From)
	d.units += msg.Units
	if msg.Tag < 0 || msg.Tag >= d.nBatches {
		panic(fmt.Sprintf("coding: coverage decoder got invalid batch tag %d", msg.Tag))
	}
	if d.tracker.Offer(msg.Tag) {
		d.kept[msg.Tag] = msg.Vec
		d.covered++
	}
	return d.Decodable()
}

func (d *coverageDecoder) Decodable() bool { return d.covered >= d.need }

// DecodeInto sums the kept batch messages (scaled for the approximate
// schemes). With SetDecodeParallelism > 1 the fold is sharded over the
// output dimensions via decodeRange, bit-for-bit equal to the serial
// slot-order sum.
func (d *coverageDecoder) DecodeInto(dst []float64) error {
	if !d.Decodable() {
		return ErrNotDecodable
	}
	if d.par > 1 {
		vecmath.Shard(len(dst), d.par, func(lo, hi int) {
			d.decodeRange(dst, lo, hi)
		})
		return nil
	}
	s := d.scale(d.covered)
	sumSparseInto(dst, d.kept)
	if s != 1 {
		vecmath.Scale(s, dst)
	}
	return nil
}

// DecodeSliceInto implements SliceDecoder: reconstruct output elements
// [lo, hi) only.
func (d *coverageDecoder) DecodeSliceInto(dst []float64, lo, hi int) error {
	if !d.Decodable() {
		return ErrNotDecodable
	}
	if err := checkDecodeSlice(dst, lo, hi); err != nil {
		return err
	}
	d.decodeRange(dst, lo, hi)
	return nil
}

// decodeRange folds the kept batch sums over output dimensions [lo, hi) in
// slot order, then applies the coverage scale — the same per-element
// sequence as sumSparseInto + Scale, so any partition of the dimensions is
// bit-for-bit identical to the serial fold.
func (d *coverageDecoder) decodeRange(dst []float64, lo, hi int) {
	s := d.scale(d.covered)
	first := true
	for _, v := range d.kept {
		if v == nil {
			continue
		}
		if first {
			copy(dst[lo:hi], v[lo:hi])
			first = false
			continue
		}
		for t := lo; t < hi; t++ {
			dst[t] += v[t]
		}
	}
	if s != 1 {
		for t := lo; t < hi; t++ {
			dst[t] *= s
		}
	}
}

func (d *coverageDecoder) WorkersHeard() int      { return d.heard.count }
func (d *coverageDecoder) UnitsReceived() float64 { return d.units }

// Reset implements Decoder.
func (d *coverageDecoder) Reset() {
	d.tracker.Reset()
	for i := range d.kept {
		d.kept[i] = nil
	}
	d.heard.reset()
	d.units = 0
	d.covered = 0
}
