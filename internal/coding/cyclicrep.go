package coding

import (
	"fmt"

	"bcc/internal/linalg"
	"bcc/internal/rngutil"
	"bcc/internal/vecmath"
)

// CyclicRep is the Cyclic Repetition gradient-coding scheme of Tandon,
// Lei, Dimakis & Karampatziakis ("Gradient Coding", 2016), the scheme the
// paper benchmarks BCC against on EC2. It requires m == n (the paper groups
// examples into "super examples" to arrange this) and tolerates any
// s = r - 1 stragglers in the worst case, i.e. a deterministic recovery
// threshold of n - s = m - r + 1 (paper eq. 7) with unit communication load
// per worker (eq. 8).
//
// Construction (Algorithm of the gradient-coding paper): draw a random
// H in R^{s x n} whose rows sum to zero, so the all-ones vector lies in
// null(H). Row i of the coding matrix B is supported on the cyclic window
// {i, i+1, ..., i+s} (mod n), with leading coefficient 1 and the remaining s
// coefficients solved from H b_i = 0. Every row then lies in the
// (n-s)-dimensional null(H); generically any n-s rows span it, hence their
// span contains the all-ones vector and the master can decode from ANY n-s
// workers by solving a^T B_W = 1^T (here via Householder-QR least squares).
type CyclicRep struct {
	// MaxRetries bounds how many H draws are attempted when a draw is
	// degenerate (probability-zero event; default 50).
	MaxRetries int
}

func init() { Register(CyclicRep{}) }

// Name implements Scheme.
func (CyclicRep) Name() string { return "cyclicrep" }

// Plan implements Scheme.
func (c CyclicRep) Plan(m, n, r int, rng *rngutil.RNG) (Plan, error) {
	if err := validate("cyclicrep", m, n, r); err != nil {
		return nil, err
	}
	if m != n {
		return nil, fmt.Errorf("coding/cyclicrep: requires m == n (group examples first); got m=%d n=%d", m, n)
	}
	if rng == nil {
		return nil, fmt.Errorf("coding/cyclicrep: nil rng (construction is randomized)")
	}
	s := r - 1
	maxRetries := c.MaxRetries
	if maxRetries <= 0 {
		maxRetries = 50
	}
	var b *vecmath.Matrix
	var err error
	for try := 0; try < maxRetries; try++ {
		b, err = buildCyclicRepB(n, s, rng)
		if err == nil {
			break
		}
	}
	if err != nil {
		return nil, fmt.Errorf("coding/cyclicrep: construction failed after %d tries: %w", maxRetries, err)
	}
	assign := make([][]int, n)
	for w := 0; w < n; w++ {
		ids := make([]int, r)
		for k := 0; k < r; k++ {
			ids[k] = (w + k) % n
		}
		assign[w] = ids
	}
	return newCodedPlan("cyclicrep", m, n, r, s, b, assign), nil
}

// buildCyclicRepB constructs the n x n coding matrix for tolerance s.
func buildCyclicRepB(n, s int, rng *rngutil.RNG) (*vecmath.Matrix, error) {
	b := vecmath.NewMatrix(n, n)
	if s == 0 {
		// r = 1: no redundancy; B is the identity.
		for i := 0; i < n; i++ {
			b.Set(i, i, 1)
		}
		return b, nil
	}
	// H: s x n random Gaussian with each ROW summing to zero => H * 1 = 0.
	h := vecmath.NewMatrix(s, n)
	for i := 0; i < s; i++ {
		var rowSum float64
		for j := 0; j < n-1; j++ {
			v := rng.Normal()
			h.Set(i, j, v)
			rowSum += v
		}
		h.Set(i, n-1, -rowSum)
	}
	// Row i of B: support {i..i+s} mod n, leading coefficient 1, remaining
	// coefficients x solving H[:, supp[1:]] x = -H[:, supp[0]].
	for i := 0; i < n; i++ {
		sys := vecmath.NewMatrix(s, s)
		rhs := make([]float64, s)
		for row := 0; row < s; row++ {
			for col := 0; col < s; col++ {
				sys.Set(row, col, h.At(row, (i+1+col)%n))
			}
			rhs[row] = -h.At(row, i%n)
		}
		x, err := linalg.SolveLU(sys, rhs)
		if err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
		b.Set(i, i, 1)
		for col := 0; col < s; col++ {
			b.Set(i, (i+1+col)%n, x[col])
		}
	}
	return b, nil
}

// ---------------------------------------------------------------------------
// Shared real-coded plan/decoder (used by cyclicrep; the complex-coded MDS
// scheme has its own decoder in cyclicmds.go)
// ---------------------------------------------------------------------------

// codedPlan is a linear gradient code with real coefficient matrix B
// (n x m): worker i transmits sum_u B[i][u] g_u restricted to its support.
//
// Everything derivable from the code matrix alone is hoisted to plan
// construction — per-worker encoding coefficients and the all-ones target
// vector — and decode coefficient solves are memoized per responder SET
// (order-independent, coefficients stored by worker id) in a synchronized
// plan-level cache, so the same linear system is solved once per run
// instead of once per iteration.
type codedPlan struct {
	scheme  string
	m, n, r int
	s       int // worst-case straggler tolerance
	b       *vecmath.Matrix
	assign  [][]int
	// encCoeffs[w][k] = B[w][assign[w][k]]: the worker's encoding vector,
	// precomputed so EncodeInto allocates nothing.
	encCoeffs [][]float64
	// ones is the decode target 1^T, built once.
	ones []float64
	// decodes caches the decode vectors a (a^T B_W = 1^T) per responder
	// set, coefficients indexed by worker id.
	decodes solveCache[[]float64]
}

func newCodedPlan(scheme string, m, n, r, s int, b *vecmath.Matrix, assign [][]int) *codedPlan {
	enc := make([][]float64, n)
	for w := 0; w < n; w++ {
		cs := make([]float64, len(assign[w]))
		for k, u := range assign[w] {
			cs[k] = b.At(w, u)
		}
		enc[w] = cs
	}
	ones := make([]float64, m)
	vecmath.Fill(ones, 1)
	return &codedPlan{
		scheme: scheme,
		m:      m, n: n, r: r, s: s,
		b:         b,
		assign:    assign,
		encCoeffs: enc,
		ones:      ones,
	}
}

func (p *codedPlan) Scheme() string          { return p.scheme }
func (p *codedPlan) Params() (int, int, int) { return p.m, p.n, p.r }
func (p *codedPlan) Assignments() [][]int    { return p.assign }

// Matrix exposes the coding matrix for tests and diagnostics.
func (p *codedPlan) Matrix() *vecmath.Matrix { return p.b }

// WorstCaseThreshold implements Plan: n - s workers always suffice.
func (p *codedPlan) WorstCaseThreshold() int { return p.n - p.s }

// ExpectedThreshold implements Plan. The cyclic code decodes from any n-s
// workers and (in the full-window construction) from no fewer, so the
// threshold is deterministic.
func (p *codedPlan) ExpectedThreshold() float64 { return float64(p.n - p.s) }

func (p *codedPlan) CommLoadPerWorker() float64 { return 1 }

// EncodeInto implements Plan: one message carrying the coded combination,
// formed directly in a pooled payload buffer with the plan's precomputed
// coefficients.
func (p *codedPlan) EncodeInto(dst []Message, worker int, parts [][]float64, bufs Buffers) []Message {
	checkParts(p.scheme, p.assign, worker, parts)
	buf := grabBuf(bufs, len(parts[0]))
	vecmath.LinearCombinationInto(buf, p.encCoeffs[worker], parts)
	return append(dst, Message{
		From:  worker,
		Tag:   -1,
		Vec:   buf,
		Units: 1,
	})
}

// Solves returns how many decode linear systems this plan has actually
// solved (cache misses); exposed for the solve-cache regression tests.
func (p *codedPlan) Solves() int { return p.decodes.solveCount() }

func (p *codedPlan) NewDecoder() Decoder {
	return &codedDecoder{
		plan:     p,
		workers:  make([]int, 0, p.n),
		vecs:     make([][]float64, 0, p.n),
		sortBuf:  make([]int, 0, p.n),
		keyBuf:   make([]byte, 0, 4*p.n),
		coeffBuf: make([]float64, p.n),
	}
}

type codedDecoder struct {
	plan    *codedPlan
	workers []int
	vecs    [][]float64
	units   float64
	coeffs  []float64 // decoding vector a in arrival order, set once solvable
	par     int       // DecodeInto goroutine fan-out (0/1 = serial)

	// Scratch reused across iterations: responder-set key building and the
	// arrival-order coefficient view of a cached by-worker solve.
	sortBuf  []int
	keyBuf   []byte
	coeffBuf []float64
}

// SetDecodeParallelism implements ParallelDecoder.
func (d *codedDecoder) SetDecodeParallelism(workers int) { d.par = workers }

func (d *codedDecoder) Offer(msg Message) bool {
	if d.Decodable() {
		return true
	}
	d.workers = append(d.workers, msg.From)
	d.vecs = append(d.vecs, msg.Vec)
	d.units += msg.Units
	if len(d.workers) >= d.plan.WorstCaseThreshold() {
		d.trySolve()
	}
	return d.Decodable()
}

// trySolve attempts to find a with a^T B_W = 1^T for the workers heard so
// far, consulting the plan's solve cache first: a responder set that has
// decoded before — in any arrival order — reuses its coefficients, so the
// steady state of a run solves each system exactly once. Failure (a
// probability-zero degenerate subset, or fewer workers than the effective
// threshold) leaves the decoder waiting for more messages.
func (d *codedDecoder) trySolve() {
	var key []byte
	d.sortBuf, key = setKey(d.workers, d.sortBuf, d.keyBuf)
	d.keyBuf = key
	if byWorker, ok, hit := d.plan.decodes.get(key); hit {
		if ok {
			cs := d.coeffBuf[:len(d.workers)]
			for i, w := range d.workers {
				cs[i] = byWorker[w]
			}
			d.coeffs = cs
		}
		return
	}
	k := len(d.workers)
	// Build B_W^T : m x k, solve least squares against the all-ones vector.
	bt := vecmath.NewMatrix(d.plan.m, k)
	for col, w := range d.workers {
		for u := 0; u < d.plan.m; u++ {
			bt.Set(u, col, d.plan.b.At(w, u))
		}
	}
	a, err := linalg.LeastSquares(bt, d.plan.ones)
	if err != nil || linalg.Residual(bt, a, d.plan.ones) > 1e-6 {
		// Subset does not span the all-ones vector yet.
		d.plan.decodes.put(key, nil, false)
		return
	}
	byWorker := make([]float64, d.plan.n)
	for col, w := range d.workers {
		byWorker[w] = a[col]
	}
	d.plan.decodes.put(key, byWorker, true)
	d.coeffs = a
}

func (d *codedDecoder) Decodable() bool { return d.coeffs != nil }

// DecodeInto combines the kept messages with the solved coefficients. With
// SetDecodeParallelism > 1 the p-dimensional combination is sharded across
// goroutines element-wise over decodeRange, bit-for-bit equal to the serial
// fold.
func (d *codedDecoder) DecodeInto(dst []float64) error {
	if !d.Decodable() {
		return ErrNotDecodable
	}
	if d.par > 1 {
		vecmath.Shard(len(dst), d.par, func(lo, hi int) {
			d.decodeRange(dst, lo, hi)
		})
	} else {
		vecmath.LinearCombinationInto(dst, d.coeffs, d.vecs[:len(d.coeffs)])
	}
	return nil
}

// DecodeSliceInto implements SliceDecoder: reconstruct output elements
// [lo, hi) only.
func (d *codedDecoder) DecodeSliceInto(dst []float64, lo, hi int) error {
	if !d.Decodable() {
		return ErrNotDecodable
	}
	if err := checkDecodeSlice(dst, lo, hi); err != nil {
		return err
	}
	d.decodeRange(dst, lo, hi)
	return nil
}

// decodeRange combines output dimensions [lo, hi): each element accumulates
// its terms coeffs[i]*vecs[i][t] in slice order from zero — the same
// per-element sequence as LinearCombinationInto, so any partition of the
// dimensions reproduces the serial result bit-for-bit.
func (d *codedDecoder) decodeRange(dst []float64, lo, hi int) {
	vecs := d.vecs[:len(d.coeffs)]
	for t := lo; t < hi; t++ {
		dst[t] = 0
	}
	for i, v := range vecs {
		c := d.coeffs[i]
		for t := lo; t < hi; t++ {
			dst[t] += c * v[t]
		}
	}
}

func (d *codedDecoder) WorkersHeard() int      { return len(d.workers) }
func (d *codedDecoder) UnitsReceived() float64 { return d.units }

// Reset implements Decoder.
func (d *codedDecoder) Reset() {
	for i := range d.vecs {
		d.vecs[i] = nil
	}
	d.workers = d.workers[:0]
	d.vecs = d.vecs[:0]
	d.units = 0
	d.coeffs = nil
}

var _ Scheme = CyclicRep{}
