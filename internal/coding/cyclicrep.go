package coding

import (
	"fmt"

	"bcc/internal/linalg"
	"bcc/internal/rngutil"
	"bcc/internal/vecmath"
)

// CyclicRep is the Cyclic Repetition gradient-coding scheme of Tandon,
// Lei, Dimakis & Karampatziakis ("Gradient Coding", 2016), the scheme the
// paper benchmarks BCC against on EC2. It requires m == n (the paper groups
// examples into "super examples" to arrange this) and tolerates any
// s = r - 1 stragglers in the worst case, i.e. a deterministic recovery
// threshold of n - s = m - r + 1 (paper eq. 7) with unit communication load
// per worker (eq. 8).
//
// Construction (Algorithm of the gradient-coding paper): draw a random
// H in R^{s x n} whose rows sum to zero, so the all-ones vector lies in
// null(H). Row i of the coding matrix B is supported on the cyclic window
// {i, i+1, ..., i+s} (mod n), with leading coefficient 1 and the remaining s
// coefficients solved from H b_i = 0. Every row then lies in the
// (n-s)-dimensional null(H); generically any n-s rows span it, hence their
// span contains the all-ones vector and the master can decode from ANY n-s
// workers by solving a^T B_W = 1^T (here via Householder-QR least squares).
type CyclicRep struct {
	// MaxRetries bounds how many H draws are attempted when a draw is
	// degenerate (probability-zero event; default 50).
	MaxRetries int
}

func init() { Register(CyclicRep{}) }

// Name implements Scheme.
func (CyclicRep) Name() string { return "cyclicrep" }

// Plan implements Scheme.
func (c CyclicRep) Plan(m, n, r int, rng *rngutil.RNG) (Plan, error) {
	if err := validate("cyclicrep", m, n, r); err != nil {
		return nil, err
	}
	if m != n {
		return nil, fmt.Errorf("coding/cyclicrep: requires m == n (group examples first); got m=%d n=%d", m, n)
	}
	if rng == nil {
		return nil, fmt.Errorf("coding/cyclicrep: nil rng (construction is randomized)")
	}
	s := r - 1
	maxRetries := c.MaxRetries
	if maxRetries <= 0 {
		maxRetries = 50
	}
	var b *vecmath.Matrix
	var err error
	for try := 0; try < maxRetries; try++ {
		b, err = buildCyclicRepB(n, s, rng)
		if err == nil {
			break
		}
	}
	if err != nil {
		return nil, fmt.Errorf("coding/cyclicrep: construction failed after %d tries: %w", maxRetries, err)
	}
	assign := make([][]int, n)
	for w := 0; w < n; w++ {
		ids := make([]int, r)
		for k := 0; k < r; k++ {
			ids[k] = (w + k) % n
		}
		assign[w] = ids
	}
	return &codedPlan{
		scheme: "cyclicrep",
		m:      m, n: n, r: r, s: s,
		b:      b,
		assign: assign,
	}, nil
}

// buildCyclicRepB constructs the n x n coding matrix for tolerance s.
func buildCyclicRepB(n, s int, rng *rngutil.RNG) (*vecmath.Matrix, error) {
	b := vecmath.NewMatrix(n, n)
	if s == 0 {
		// r = 1: no redundancy; B is the identity.
		for i := 0; i < n; i++ {
			b.Set(i, i, 1)
		}
		return b, nil
	}
	// H: s x n random Gaussian with each ROW summing to zero => H * 1 = 0.
	h := vecmath.NewMatrix(s, n)
	for i := 0; i < s; i++ {
		var rowSum float64
		for j := 0; j < n-1; j++ {
			v := rng.Normal()
			h.Set(i, j, v)
			rowSum += v
		}
		h.Set(i, n-1, -rowSum)
	}
	// Row i of B: support {i..i+s} mod n, leading coefficient 1, remaining
	// coefficients x solving H[:, supp[1:]] x = -H[:, supp[0]].
	for i := 0; i < n; i++ {
		sys := vecmath.NewMatrix(s, s)
		rhs := make([]float64, s)
		for row := 0; row < s; row++ {
			for col := 0; col < s; col++ {
				sys.Set(row, col, h.At(row, (i+1+col)%n))
			}
			rhs[row] = -h.At(row, i%n)
		}
		x, err := linalg.SolveLU(sys, rhs)
		if err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
		b.Set(i, i, 1)
		for col := 0; col < s; col++ {
			b.Set(i, (i+1+col)%n, x[col])
		}
	}
	return b, nil
}

// ---------------------------------------------------------------------------
// Shared real-coded plan/decoder (used by cyclicrep; the complex-coded MDS
// scheme has its own decoder in cyclicmds.go)
// ---------------------------------------------------------------------------

// codedPlan is a linear gradient code with real coefficient matrix B
// (n x m): worker i transmits sum_u B[i][u] g_u restricted to its support.
type codedPlan struct {
	scheme  string
	m, n, r int
	s       int // worst-case straggler tolerance
	b       *vecmath.Matrix
	assign  [][]int
}

func (p *codedPlan) Scheme() string          { return p.scheme }
func (p *codedPlan) Params() (int, int, int) { return p.m, p.n, p.r }
func (p *codedPlan) Assignments() [][]int    { return p.assign }

// Matrix exposes the coding matrix for tests and diagnostics.
func (p *codedPlan) Matrix() *vecmath.Matrix { return p.b }

// WorstCaseThreshold implements Plan: n - s workers always suffice.
func (p *codedPlan) WorstCaseThreshold() int { return p.n - p.s }

// ExpectedThreshold implements Plan. The cyclic code decodes from any n-s
// workers and (in the full-window construction) from no fewer, so the
// threshold is deterministic.
func (p *codedPlan) ExpectedThreshold() float64 { return float64(p.n - p.s) }

func (p *codedPlan) CommLoadPerWorker() float64 { return 1 }

// Encode implements Plan: one message carrying the coded combination.
func (p *codedPlan) Encode(worker int, parts [][]float64) []Message {
	checkParts(p.scheme, p.assign, worker, parts)
	coeffs := make([]float64, len(parts))
	for k, u := range p.assign[worker] {
		coeffs[k] = p.b.At(worker, u)
	}
	return []Message{{
		From:  worker,
		Tag:   -1,
		Vec:   vecmath.LinearCombination(coeffs, parts),
		Units: 1,
	}}
}

func (p *codedPlan) NewDecoder() Decoder {
	return &codedDecoder{plan: p}
}

type codedDecoder struct {
	plan    *codedPlan
	workers []int
	vecs    [][]float64
	units   float64
	coeffs  []float64 // decoding vector a, cached once solvable
}

func (d *codedDecoder) Offer(msg Message) bool {
	if d.Decodable() {
		return true
	}
	d.workers = append(d.workers, msg.From)
	d.vecs = append(d.vecs, msg.Vec)
	d.units += msg.Units
	if len(d.workers) >= d.plan.WorstCaseThreshold() {
		d.trySolve()
	}
	return d.Decodable()
}

// trySolve attempts to find a with a^T B_W = 1^T for the workers heard so
// far. Failure (a probability-zero degenerate subset, or fewer workers than
// the threshold) leaves the decoder waiting for more messages.
func (d *codedDecoder) trySolve() {
	k := len(d.workers)
	// Build B_W^T : m x k, solve least squares against the all-ones vector.
	bt := vecmath.NewMatrix(d.plan.m, k)
	for col, w := range d.workers {
		for u := 0; u < d.plan.m; u++ {
			bt.Set(u, col, d.plan.b.At(w, u))
		}
	}
	ones := make([]float64, d.plan.m)
	vecmath.Fill(ones, 1)
	a, err := linalg.LeastSquares(bt, ones)
	if err != nil {
		return
	}
	if linalg.Residual(bt, a, ones) > 1e-6 {
		return // subset does not span the all-ones vector yet
	}
	d.coeffs = a
}

func (d *codedDecoder) Decodable() bool { return d.coeffs != nil }

func (d *codedDecoder) Decode() ([]float64, error) {
	if !d.Decodable() {
		return nil, ErrNotDecodable
	}
	return vecmath.LinearCombination(d.coeffs, d.vecs[:len(d.coeffs)]), nil
}

func (d *codedDecoder) WorkersHeard() int      { return len(d.workers) }
func (d *codedDecoder) UnitsReceived() float64 { return d.units }

var _ Scheme = CyclicRep{}
