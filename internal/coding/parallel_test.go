package coding

import (
	"fmt"
	"testing"

	"bcc/internal/rngutil"
	"bcc/internal/vecmath"
)

// encodeAll builds one iteration's messages for every worker of the plan at
// the given payload dimension.
func encodeAll(t *testing.T, plan Plan, dim int, seed uint64) [][]Message {
	t.Helper()
	m, n, _ := plan.Params()
	rng := rngutil.New(seed)
	gs := make([][]float64, m)
	for u := range gs {
		g := make([]float64, dim)
		for i := range g {
			g[i] = rng.Normal()
		}
		gs[u] = g
	}
	assign := plan.Assignments()
	msgs := make([][]Message, n)
	for w := 0; w < n; w++ {
		parts := make([][]float64, len(assign[w]))
		for k, u := range assign[w] {
			parts[k] = gs[u]
		}
		msgs[w] = Encode(plan, w, parts)
	}
	return msgs
}

// decodeWith runs one offer-until-decodable round at the given decode
// parallelism and returns the decoded gradient.
func decodeWith(t *testing.T, plan Plan, msgs [][]Message, order []int, dim, par int) []float64 {
	t.Helper()
	dec := plan.NewDecoder()
	SetDecodeParallelism(dec, par)
	for _, w := range order {
		for _, msg := range msgs[w] {
			dec.Offer(msg)
		}
		if dec.Decodable() {
			break
		}
	}
	dst := make([]float64, dim)
	if err := dec.DecodeInto(dst); err != nil {
		t.Fatalf("par=%d: %v", par, err)
	}
	return dst
}

// TestDecodeParallelismBitExactSchemes pins the decode-parallelism
// contract at the coding layer: for every scheme with a sharded DecodeInto,
// every worker count reproduces the serial decode bit-for-bit — including
// payload dimensions above and below the Shard inline cutoff.
func TestDecodeParallelismBitExactSchemes(t *testing.T) {
	const m, n, r = 24, 24, 6
	for _, scheme := range []string{"cyclicrep", "cyclicmds", "bccmulti", "bccapprox"} {
		for _, dim := range []int{64, 2048} {
			t.Run(fmt.Sprintf("%s/p=%d", scheme, dim), func(t *testing.T) {
				s, err := Lookup(scheme)
				if err != nil {
					t.Fatal(err)
				}
				plan, err := s.Plan(m, n, r, rngutil.New(3))
				if err != nil {
					t.Skipf("%s rejects m=%d n=%d r=%d: %v", scheme, m, n, r, err)
				}
				if _, ok := plan.NewDecoder().(ParallelDecoder); !ok {
					t.Fatalf("%s decoder does not implement ParallelDecoder", scheme)
				}
				msgs := encodeAll(t, plan, dim, 4)
				order := rngutil.New(5).Perm(n)
				ref := decodeWith(t, plan, msgs, order, dim, 0)
				for _, par := range []int{2, 3, 8, 64} {
					got := decodeWith(t, plan, msgs, order, dim, par)
					if d := vecmath.MaxAbsDiff(ref, got); d != 0 {
						t.Fatalf("dim %d par %d diverged from serial by %v", dim, par, d)
					}
				}
			})
		}
	}
}

// TestSetDecodeParallelismNoOp pins that schemes without a sharded decode
// accept the knob silently (the engine sets it unconditionally).
func TestSetDecodeParallelismNoOp(t *testing.T) {
	s, err := Lookup("uncoded")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := s.Plan(8, 8, 1, rngutil.New(1))
	if err != nil {
		t.Fatal(err)
	}
	dec := plan.NewDecoder()
	SetDecodeParallelism(dec, 8) // must not panic
	msgs := encodeAll(t, plan, 32, 2)
	got := decodeWith(t, plan, msgs, rngutil.New(3).Perm(8), 32, 8)
	want := decodeWith(t, plan, msgs, rngutil.New(3).Perm(8), 32, 0)
	if vecmath.MaxAbsDiff(got, want) != 0 {
		t.Fatal("uncoded decode changed under the parallelism knob")
	}
}
