package coding

import (
	"fmt"

	"bcc/internal/coupon"
	"bcc/internal/rngutil"
	"bcc/internal/vecmath"
)

// BCC is the paper's Batched Coupon's Collector scheme (§III).
//
// Data distribution: the m examples are partitioned into N = ceil(m/r)
// batches of (at most) r examples; every worker independently picks one
// batch uniformly at random. Communication: each worker ships the SUM of its
// batch's partial gradients (eq. 12) — a single unit-size message. The
// master keeps the first message per batch and decodes by summation once
// every batch is covered, emulating a coupon collector over N types; the
// expected recovery threshold is N*H_N (Theorem 1).
//
// The placement is decentralized (workers choose independently), so with a
// finite cluster there is a small probability some batch is chosen by
// nobody. MaxResample controls how many independent placements Plan tries
// before giving up; the paper's regime ("sufficiently large n") makes one
// draw feasible with overwhelming probability, and the resample count is
// recorded on the plan for the experiment harness to report.
type BCC struct {
	// MaxResample bounds the feasibility retries (default 1000).
	MaxResample int
	// Weights, if non-nil, skews the batch-selection distribution (length
	// must equal ceil(m/r); weights must be positive but need not be
	// normalized). The paper assumes uniform selection; this knob exists for
	// the `skew` robustness study — non-uniform selection inflates the
	// recovery threshold per the weighted coupon collector.
	Weights []float64
}

func init() { Register(BCC{}) }

// Name implements Scheme.
func (BCC) Name() string { return "bcc" }

// Plan implements Scheme.
func (b BCC) Plan(m, n, r int, rng *rngutil.RNG) (Plan, error) {
	if err := validate("bcc", m, n, r); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("coding/bcc: nil rng (placement is randomized)")
	}
	nBatches := (m + r - 1) / r
	if nBatches > n {
		return nil, fmt.Errorf("coding/bcc: %d batches cannot be covered by %d workers; need m/r <= n", nBatches, n)
	}
	// Batch b holds examples [b*r, min((b+1)*r, m)); the last batch may be
	// short (the paper zero-pads it, which is equivalent for gradients).
	batches := make([][]int, nBatches)
	for bi := 0; bi < nBatches; bi++ {
		lo, hi := bi*r, (bi+1)*r
		if hi > m {
			hi = m
		}
		ids := make([]int, hi-lo)
		for k := range ids {
			ids[k] = lo + k
		}
		batches[bi] = ids
	}
	maxTries := b.MaxResample
	if maxTries <= 0 {
		maxTries = 1000
	}
	var cum []float64
	if b.Weights != nil {
		if len(b.Weights) != nBatches {
			return nil, fmt.Errorf("coding/bcc: %d weights for %d batches", len(b.Weights), nBatches)
		}
		cum = make([]float64, nBatches)
		var total float64
		for i, w := range b.Weights {
			if w <= 0 {
				return nil, fmt.Errorf("coding/bcc: non-positive weight %v at batch %d", w, i)
			}
			total += w
			cum[i] = total
		}
	}
	pick := func() int {
		if cum == nil {
			return rng.Intn(nBatches)
		}
		x := rng.Float64() * cum[nBatches-1]
		lo, hi := 0, nBatches-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	choice := make([]int, n)
	resamples := 0
	for try := 0; try < maxTries; try++ {
		covered := make([]bool, nBatches)
		nCovered := 0
		for w := 0; w < n; w++ {
			c := pick()
			choice[w] = c
			if !covered[c] {
				covered[c] = true
				nCovered++
			}
		}
		if nCovered == nBatches {
			assign := make([][]int, n)
			for w := 0; w < n; w++ {
				assign[w] = batches[choice[w]]
			}
			return &bccPlan{
				m: m, n: n, r: r,
				nBatches:  nBatches,
				choice:    append([]int(nil), choice...),
				assign:    assign,
				resamples: resamples,
			}, nil
		}
		resamples++
	}
	return nil, fmt.Errorf("coding/bcc: no feasible placement after %d tries (m=%d n=%d r=%d; increase n or r)",
		maxTries, m, n, r)
}

type bccPlan struct {
	m, n, r   int
	nBatches  int
	choice    []int   // worker -> batch
	assign    [][]int // worker -> example ids (aliases batch slices)
	resamples int
}

func (p *bccPlan) Scheme() string          { return "bcc" }
func (p *bccPlan) Params() (int, int, int) { return p.m, p.n, p.r }
func (p *bccPlan) Assignments() [][]int    { return p.assign }

// BatchOf returns the batch index worker w selected.
func (p *bccPlan) BatchOf(w int) int { return p.choice[w] }

// NumBatches returns N = ceil(m/r).
func (p *bccPlan) NumBatches() int { return p.nBatches }

// Resamples returns how many infeasible placements were rejected before this
// one was drawn.
func (p *bccPlan) Resamples() int { return p.resamples }

// WorstCaseThreshold implements Plan. The placement is random, so no fixed
// worker count guarantees decodability in the worst case.
func (p *bccPlan) WorstCaseThreshold() int { return -1 }

// ExpectedThreshold implements Plan: K_BCC = N * H_N (Theorem 1), capped at
// n because the run stops once every worker reported.
func (p *bccPlan) ExpectedThreshold() float64 {
	k := coupon.ExpectedDraws(p.nBatches)
	if k > float64(p.n) {
		return float64(p.n)
	}
	return k
}

func (p *bccPlan) CommLoadPerWorker() float64 { return 1 }

// EncodeInto implements Plan: the batch sum, tagged with the batch id
// (eq. 12), summed directly into a pooled payload buffer.
func (p *bccPlan) EncodeInto(dst []Message, worker int, parts [][]float64, bufs Buffers) []Message {
	checkParts("bcc", p.assign, worker, parts)
	buf := grabBuf(bufs, len(parts[0]))
	vecmath.SumVectorsInto(buf, parts)
	return append(dst, Message{
		From:  worker,
		Tag:   p.choice[worker],
		Vec:   buf,
		Units: 1,
	})
}

func (p *bccPlan) NewDecoder() Decoder {
	return &bccDecoder{
		plan:    p,
		tracker: coupon.NewTracker(p.nBatches),
		kept:    make([][]float64, p.nBatches),
		heard:   newWorkerMask(p.n),
	}
}

type bccDecoder struct {
	plan    *bccPlan
	tracker *coupon.Tracker
	kept    [][]float64 // first message per batch
	heard   workerMask
	units   float64
}

// Offer implements Decoder: keep the first message per batch, discard
// duplicates (exactly the master's data-aggregation rule in §III-A).
func (d *bccDecoder) Offer(msg Message) bool {
	if d.Decodable() {
		return true
	}
	if d.heard.hear(msg.From) {
		d.units += msg.Units
	}
	if msg.Tag < 0 || msg.Tag >= d.plan.nBatches {
		panic(fmt.Sprintf("coding/bcc: message with invalid batch tag %d", msg.Tag))
	}
	if d.tracker.Offer(msg.Tag) {
		d.kept[msg.Tag] = msg.Vec
	}
	return d.Decodable()
}

func (d *bccDecoder) Decodable() bool { return d.tracker.Complete() }

func (d *bccDecoder) DecodeInto(dst []float64) error {
	if !d.Decodable() {
		return ErrNotDecodable
	}
	vecmath.SumVectorsInto(dst, d.kept)
	return nil
}

// DecodeSliceInto implements SliceDecoder: elements [lo, hi) of the batch
// sum only. Every batch slot is held once decodable, so the slot-order slice
// fold reproduces DecodeInto bit-for-bit on any partition.
func (d *bccDecoder) DecodeSliceInto(dst []float64, lo, hi int) error {
	if !d.Decodable() {
		return ErrNotDecodable
	}
	if err := checkDecodeSlice(dst, lo, hi); err != nil {
		return err
	}
	sumSparseSliceInto(dst, d.kept, lo, hi)
	return nil
}

func (d *bccDecoder) WorkersHeard() int      { return d.heard.count }
func (d *bccDecoder) UnitsReceived() float64 { return d.units }

// Reset implements Decoder.
func (d *bccDecoder) Reset() {
	d.tracker.Reset()
	for i := range d.kept {
		d.kept[i] = nil
	}
	d.heard.reset()
	d.units = 0
}

var _ Scheme = BCC{}
