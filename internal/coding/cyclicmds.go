package coding

import (
	"fmt"
	"math/cmplx"

	"bcc/internal/linalg"
	"bcc/internal/rngutil"
)

// CyclicMDS is a deterministic gradient code in the style of Raviv, Tamo,
// Tandon & Dimakis ("Gradient Coding from Cyclic MDS Codes") and Halbawi et
// al.'s Reed-Solomon construction — the [8]/[9] comparators in the paper
// (eq. 7): same worst-case threshold m - r + 1 and unit communication load
// as CyclicRep, but with no randomness in the code matrix.
//
// Construction: with omega = e^{2*pi*i/n} and s = r - 1, the generator
// polynomial p(x) = prod_{j=1..s} (x - omega^j) has degree s and divides
// x^n - 1. Row i of B holds p's coefficients cyclically shifted by i, so the
// rows generate the cyclic code { q in C^n : q(omega^j) = 0, j = 1..s } of
// dimension n - s. The all-ones vector is (x^n - 1)/(x - 1) = prod_{j>=1}
// (x - omega^j), a multiple of p, hence in the code; and any n - s cyclic
// shifts of p are linearly independent, so every (n-s)-subset of workers can
// decode.
//
// Messages carry a complex combination of real gradients, transported as a
// (real, imaginary) pair. Following the paper's accounting (eq. 8 counts
// L = 1 per worker for all coded schemes; real-valued embeddings of this
// code exist), a message counts as one communication unit.
type CyclicMDS struct{}

func init() { Register(CyclicMDS{}) }

// Name implements Scheme.
func (CyclicMDS) Name() string { return "cyclicmds" }

// Plan implements Scheme. The rng argument is ignored — the code is
// deterministic.
func (CyclicMDS) Plan(m, n, r int, _ *rngutil.RNG) (Plan, error) {
	if err := validate("cyclicmds", m, n, r); err != nil {
		return nil, err
	}
	if m != n {
		return nil, fmt.Errorf("coding/cyclicmds: requires m == n (group examples first); got m=%d n=%d", m, n)
	}
	s := r - 1
	roots := make([]complex128, s)
	for j := 1; j <= s; j++ {
		roots[j-1] = linalg.RootOfUnity(j, n)
	}
	coeffs := linalg.PolyFromRoots(roots) // length s+1 == r
	b := linalg.NewCMatrix(n, n)
	assign := make([][]int, n)
	for i := 0; i < n; i++ {
		ids := make([]int, r)
		for k := 0; k <= s; k++ {
			u := (i + k) % n
			b.Set(i, u, coeffs[k])
			ids[k] = u
		}
		assign[i] = ids
	}
	return &mdsPlan{m: m, n: n, r: r, s: s, b: b, assign: assign}, nil
}

type mdsPlan struct {
	m, n, r int
	s       int
	b       *linalg.CMatrix
	assign  [][]int
}

func (p *mdsPlan) Scheme() string          { return "cyclicmds" }
func (p *mdsPlan) Params() (int, int, int) { return p.m, p.n, p.r }
func (p *mdsPlan) Assignments() [][]int    { return p.assign }

// Matrix exposes the complex coding matrix for tests.
func (p *mdsPlan) Matrix() *linalg.CMatrix { return p.b }

func (p *mdsPlan) WorstCaseThreshold() int    { return p.n - p.s }
func (p *mdsPlan) ExpectedThreshold() float64 { return float64(p.n - p.s) }
func (p *mdsPlan) CommLoadPerWorker() float64 { return 1 }

// Encode implements Plan: z_i = sum_u B[i][u] g_u, shipped as (Re, Im).
func (p *mdsPlan) Encode(worker int, parts [][]float64) []Message {
	checkParts("cyclicmds", p.assign, worker, parts)
	dim := 0
	if len(parts) > 0 {
		dim = len(parts[0])
	}
	re := make([]float64, dim)
	im := make([]float64, dim)
	for k, u := range p.assign[worker] {
		c := p.b.At(worker, u)
		cr, ci := real(c), imag(c)
		g := parts[k]
		for t := 0; t < dim; t++ {
			re[t] += cr * g[t]
			im[t] += ci * g[t]
		}
	}
	return []Message{{From: worker, Tag: -1, Vec: re, Imag: im, Units: 1}}
}

func (p *mdsPlan) NewDecoder() Decoder { return &mdsDecoder{plan: p} }

type mdsDecoder struct {
	plan    *mdsPlan
	workers []int
	re, im  [][]float64
	units   float64
	coeffs  []complex128
}

func (d *mdsDecoder) Offer(msg Message) bool {
	if d.Decodable() {
		return true
	}
	d.workers = append(d.workers, msg.From)
	d.re = append(d.re, msg.Vec)
	d.im = append(d.im, msg.Imag)
	d.units += msg.Units
	if len(d.workers) >= d.plan.WorstCaseThreshold() {
		d.trySolve()
	}
	return d.Decodable()
}

func (d *mdsDecoder) trySolve() {
	k := len(d.workers)
	// Solve B_W^T a = 1 over C: B_W^T is m x k (m >= k), consistent because
	// the all-ones vector lies in the span of any n-s rows.
	bt := linalg.NewCMatrix(d.plan.m, k)
	for col, w := range d.workers {
		for u := 0; u < d.plan.m; u++ {
			bt.Set(u, col, d.plan.b.At(w, u))
		}
	}
	ones := make([]complex128, d.plan.m)
	for i := range ones {
		ones[i] = 1
	}
	a, err := linalg.CLeastSquares(bt, ones)
	if err != nil {
		return
	}
	// Verify the residual before accepting.
	var worst float64
	for u := 0; u < d.plan.m; u++ {
		var s complex128
		for col := 0; col < k; col++ {
			s += bt.At(u, col) * a[col]
		}
		if diff := cmplx.Abs(s - 1); diff > worst {
			worst = diff
		}
	}
	if worst > 1e-6 {
		return
	}
	d.coeffs = a
}

func (d *mdsDecoder) Decodable() bool { return d.coeffs != nil }

// Decode combines the complex messages and returns the real part; the
// imaginary part of the true combination is identically zero (the decode
// identity sum_i a_i B[i][u] = 1 holds in C and the gradients are real).
func (d *mdsDecoder) Decode() ([]float64, error) {
	if !d.Decodable() {
		return nil, ErrNotDecodable
	}
	dim := len(d.re[0])
	out := make([]float64, dim)
	for i, a := range d.coeffs {
		ar, ai := real(a), imag(a)
		re, im := d.re[i], d.im[i]
		for t := 0; t < dim; t++ {
			// Re[(ar + i*ai)(re + i*im)] = ar*re - ai*im
			out[t] += ar*re[t] - ai*im[t]
		}
	}
	return out, nil
}

func (d *mdsDecoder) WorkersHeard() int      { return len(d.workers) }
func (d *mdsDecoder) UnitsReceived() float64 { return d.units }

var _ Scheme = CyclicMDS{}
