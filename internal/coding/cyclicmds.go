package coding

import (
	"fmt"
	"math/cmplx"

	"bcc/internal/linalg"
	"bcc/internal/rngutil"
	"bcc/internal/vecmath"
)

// CyclicMDS is a deterministic gradient code in the style of Raviv, Tamo,
// Tandon & Dimakis ("Gradient Coding from Cyclic MDS Codes") and Halbawi et
// al.'s Reed-Solomon construction — the [8]/[9] comparators in the paper
// (eq. 7): same worst-case threshold m - r + 1 and unit communication load
// as CyclicRep, but with no randomness in the code matrix.
//
// Construction: with omega = e^{2*pi*i/n} and s = r - 1, the generator
// polynomial p(x) = prod_{j=1..s} (x - omega^j) has degree s and divides
// x^n - 1. Row i of B holds p's coefficients cyclically shifted by i, so the
// rows generate the cyclic code { q in C^n : q(omega^j) = 0, j = 1..s } of
// dimension n - s. The all-ones vector is (x^n - 1)/(x - 1) = prod_{j>=1}
// (x - omega^j), a multiple of p, hence in the code; and any n - s cyclic
// shifts of p are linearly independent, so every (n-s)-subset of workers can
// decode.
//
// Messages carry a complex combination of real gradients, transported as a
// (real, imaginary) pair. Following the paper's accounting (eq. 8 counts
// L = 1 per worker for all coded schemes; real-valued embeddings of this
// code exist), a message counts as one communication unit.
type CyclicMDS struct{}

func init() { Register(CyclicMDS{}) }

// Name implements Scheme.
func (CyclicMDS) Name() string { return "cyclicmds" }

// Plan implements Scheme. The rng argument is ignored — the code is
// deterministic.
func (CyclicMDS) Plan(m, n, r int, _ *rngutil.RNG) (Plan, error) {
	if err := validate("cyclicmds", m, n, r); err != nil {
		return nil, err
	}
	if m != n {
		return nil, fmt.Errorf("coding/cyclicmds: requires m == n (group examples first); got m=%d n=%d", m, n)
	}
	s := r - 1
	roots := make([]complex128, s)
	for j := 1; j <= s; j++ {
		roots[j-1] = linalg.RootOfUnity(j, n)
	}
	coeffs := linalg.PolyFromRoots(roots) // length s+1 == r
	b := linalg.NewCMatrix(n, n)
	assign := make([][]int, n)
	for i := 0; i < n; i++ {
		ids := make([]int, r)
		for k := 0; k <= s; k++ {
			u := (i + k) % n
			b.Set(i, u, coeffs[k])
			ids[k] = u
		}
		assign[i] = ids
	}
	ones := make([]complex128, m)
	for i := range ones {
		ones[i] = 1
	}
	return &mdsPlan{m: m, n: n, r: r, s: s, b: b, assign: assign, ones: ones}, nil
}

type mdsPlan struct {
	m, n, r int
	s       int
	b       *linalg.CMatrix
	assign  [][]int
	// ones is the decode target 1^T over C, built once.
	ones []complex128
	// decodes caches decode vectors per responder set (coefficients indexed
	// by worker id); like codedPlan's cache it makes the plan safe for
	// concurrent decoders and turns the per-iteration complex least-squares
	// solve into a one-time cost.
	decodes solveCache[[]complex128]
}

// Solves returns how many decode linear systems this plan has actually
// solved (cache misses); exposed for the solve-cache regression tests.
func (p *mdsPlan) Solves() int { return p.decodes.solveCount() }

func (p *mdsPlan) Scheme() string          { return "cyclicmds" }
func (p *mdsPlan) Params() (int, int, int) { return p.m, p.n, p.r }
func (p *mdsPlan) Assignments() [][]int    { return p.assign }

// Matrix exposes the complex coding matrix for tests.
func (p *mdsPlan) Matrix() *linalg.CMatrix { return p.b }

func (p *mdsPlan) WorstCaseThreshold() int { return p.n - p.s }

// MinResponders implements the exact converse bound: an MDS code over the
// workers cannot be decoded from fewer than n-s shares, regardless of which
// shares arrive.
func (p *mdsPlan) MinResponders() int         { return p.n - p.s }
func (p *mdsPlan) ExpectedThreshold() float64 { return float64(p.n - p.s) }
func (p *mdsPlan) CommLoadPerWorker() float64 { return 1 }

// EncodeInto implements Plan: z_i = sum_u B[i][u] g_u, shipped as (Re, Im)
// in pooled payload buffers.
func (p *mdsPlan) EncodeInto(dst []Message, worker int, parts [][]float64, bufs Buffers) []Message {
	checkParts("cyclicmds", p.assign, worker, parts)
	dim := 0
	if len(parts) > 0 {
		dim = len(parts[0])
	}
	re := grabBuf(bufs, dim)
	im := grabBuf(bufs, dim)
	vecmath.Fill(re, 0)
	vecmath.Fill(im, 0)
	for k, u := range p.assign[worker] {
		c := p.b.At(worker, u)
		cr, ci := real(c), imag(c)
		g := parts[k]
		for t := 0; t < dim; t++ {
			re[t] += cr * g[t]
			im[t] += ci * g[t]
		}
	}
	return append(dst, Message{From: worker, Tag: -1, Vec: re, Imag: im, Units: 1})
}

func (p *mdsPlan) NewDecoder() Decoder {
	return &mdsDecoder{
		plan:     p,
		workers:  make([]int, 0, p.n),
		re:       make([][]float64, 0, p.n),
		im:       make([][]float64, 0, p.n),
		sortBuf:  make([]int, 0, p.n),
		keyBuf:   make([]byte, 0, 4*p.n),
		coeffBuf: make([]complex128, p.n),
	}
}

type mdsDecoder struct {
	plan    *mdsPlan
	workers []int
	re, im  [][]float64
	units   float64
	coeffs  []complex128
	par     int // DecodeInto goroutine fan-out (0/1 = serial)

	// Scratch reused across iterations (see codedDecoder).
	sortBuf  []int
	keyBuf   []byte
	coeffBuf []complex128
}

// SetDecodeParallelism implements ParallelDecoder.
func (d *mdsDecoder) SetDecodeParallelism(workers int) { d.par = workers }

func (d *mdsDecoder) Offer(msg Message) bool {
	if d.Decodable() {
		return true
	}
	d.workers = append(d.workers, msg.From)
	d.re = append(d.re, msg.Vec)
	d.im = append(d.im, msg.Imag)
	d.units += msg.Units
	if len(d.workers) >= d.plan.WorstCaseThreshold() {
		d.trySolve()
	}
	return d.Decodable()
}

func (d *mdsDecoder) trySolve() {
	var key []byte
	d.sortBuf, key = setKey(d.workers, d.sortBuf, d.keyBuf)
	d.keyBuf = key
	if byWorker, ok, hit := d.plan.decodes.get(key); hit {
		if ok {
			cs := d.coeffBuf[:len(d.workers)]
			for i, w := range d.workers {
				cs[i] = byWorker[w]
			}
			d.coeffs = cs
		}
		return
	}
	k := len(d.workers)
	// Solve B_W^T a = 1 over C: B_W^T is m x k (m >= k), consistent because
	// the all-ones vector lies in the span of any n-s rows.
	bt := linalg.NewCMatrix(d.plan.m, k)
	for col, w := range d.workers {
		for u := 0; u < d.plan.m; u++ {
			bt.Set(u, col, d.plan.b.At(w, u))
		}
	}
	a, err := linalg.CLeastSquares(bt, d.plan.ones)
	if err != nil {
		d.plan.decodes.put(key, nil, false)
		return
	}
	// Verify the residual before accepting.
	var worst float64
	for u := 0; u < d.plan.m; u++ {
		var s complex128
		for col := 0; col < k; col++ {
			s += bt.At(u, col) * a[col]
		}
		if diff := cmplx.Abs(s - 1); diff > worst {
			worst = diff
		}
	}
	if worst > 1e-6 {
		d.plan.decodes.put(key, nil, false)
		return
	}
	byWorker := make([]complex128, d.plan.n)
	for col, w := range d.workers {
		byWorker[w] = a[col]
	}
	d.plan.decodes.put(key, byWorker, true)
	d.coeffs = a
}

func (d *mdsDecoder) Decodable() bool { return d.coeffs != nil }

// DecodeInto combines the complex messages and writes the real part; the
// imaginary part of the true combination is identically zero (the decode
// identity sum_i a_i B[i][u] = 1 holds in C and the gradients are real).
// With SetDecodeParallelism > 1 the output dimensions are sharded across
// goroutines; each element folds its per-worker terms in the same order as
// the serial loop, so results are bit-for-bit identical.
func (d *mdsDecoder) DecodeInto(dst []float64) error {
	if !d.Decodable() {
		return ErrNotDecodable
	}
	if d.par > 1 {
		vecmath.Shard(len(dst), d.par, func(lo, hi int) {
			d.decodeRange(dst, lo, hi)
		})
	} else {
		// Plain call: the serial hot path must not pay the heap-allocated
		// closure the goroutine fan-out needs.
		d.decodeRange(dst, 0, len(dst))
	}
	return nil
}

// DecodeSliceInto implements SliceDecoder: reconstruct output elements
// [lo, hi) only.
func (d *mdsDecoder) DecodeSliceInto(dst []float64, lo, hi int) error {
	if !d.Decodable() {
		return ErrNotDecodable
	}
	if err := checkDecodeSlice(dst, lo, hi); err != nil {
		return err
	}
	d.decodeRange(dst, lo, hi)
	return nil
}

// decodeRange combines output dimensions [lo, hi): each element folds its
// per-worker terms in coefficient order, so any partition of the dimensions
// reproduces the serial result bit-for-bit.
func (d *mdsDecoder) decodeRange(dst []float64, lo, hi int) {
	for t := lo; t < hi; t++ {
		dst[t] = 0
	}
	for i, a := range d.coeffs {
		ar, ai := real(a), imag(a)
		re, im := d.re[i], d.im[i]
		for t := lo; t < hi; t++ {
			// Re[(ar + i*ai)(re + i*im)] = ar*re - ai*im
			dst[t] += ar*re[t] - ai*im[t]
		}
	}
}

func (d *mdsDecoder) WorkersHeard() int      { return len(d.workers) }
func (d *mdsDecoder) UnitsReceived() float64 { return d.units }

// Reset implements Decoder.
func (d *mdsDecoder) Reset() {
	for i := range d.re {
		d.re[i], d.im[i] = nil, nil
	}
	d.workers = d.workers[:0]
	d.re = d.re[:0]
	d.im = d.im[:0]
	d.units = 0
	d.coeffs = nil
}

var _ Scheme = CyclicMDS{}
