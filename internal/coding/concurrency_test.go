package coding

import (
	"sync"
	"testing"

	"bcc/internal/rngutil"
	"bcc/internal/vecmath"
)

// These tests pin the Plan contract the pooled data plane relies on: one
// Plan serves many decoders concurrently (the solve caches are the only
// mutable plan state and are synchronized), and the decode-coefficient
// solves of the linear-coded schemes happen once per responder sequence, not
// once per iteration.

// TestPlanSafeForConcurrentDecoders runs many goroutines against one shared
// plan, each decoding several iterations with its own (Reset-reused) decoder
// under different arrival orders, and checks every decode is exact. Run
// under -race (the CI race job does) this asserts the plan-level caches are
// properly synchronized.
func TestPlanSafeForConcurrentDecoders(t *testing.T) {
	const (
		m, n       = 12, 12
		r          = 3
		goroutines = 8
		iterations = 5
	)
	rng := rngutil.New(99)
	gs, want := makeGradients(m, rng)
	for _, name := range []string{"bcc", "cyclicrep", "cyclicmds", "fractional", "uncoded"} {
		name := name
		t.Run(name, func(t *testing.T) {
			s, err := Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			plan, err := s.Plan(m, n, r, rngutil.New(100))
			if err != nil {
				t.Skipf("%s rejects m=%d n=%d r=%d: %v", name, m, n, r, err)
			}
			var wg sync.WaitGroup
			errs := make(chan error, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					orderRNG := rngutil.New(seed)
					dec := plan.NewDecoder()
					dst := make([]float64, gradDim)
					for it := 0; it < iterations; it++ {
						dec.Reset()
						for _, w := range orderRNG.Perm(n) {
							for _, msg := range encodeWorker(plan, w, gs) {
								dec.Offer(msg)
							}
							if dec.Decodable() {
								break
							}
						}
						if err := dec.DecodeInto(dst); err != nil {
							errs <- err
							return
						}
						if d := vecmath.MaxAbsDiff(dst, want); d > 1e-6*(1+vecmath.NormInf(want)) {
							t.Errorf("goroutine decode off by %v", d)
							return
						}
					}
				}(uint64(200 + g))
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		})
	}
}

// TestSolveCacheReusedAcrossIterations asserts the satellite fix: a
// cyclicrep/cyclicmds plan decoding the same responder SET many times —
// even in different arrival orders — solves its linear system exactly once
// (the seed repo re-solved it every iteration), while a genuinely different
// responder set triggers a fresh solve.
func TestSolveCacheReusedAcrossIterations(t *testing.T) {
	const m, n, r = 10, 10, 3
	rng := rngutil.New(123)
	gs, want := makeGradients(m, rng)

	type solvable interface {
		Plan
		Solves() int
	}
	for _, name := range []string{"cyclicrep", "cyclicmds"} {
		name := name
		t.Run(name, func(t *testing.T) {
			s, _ := Lookup(name)
			p, err := s.Plan(m, n, r, rngutil.New(7))
			if err != nil {
				t.Fatal(err)
			}
			plan := p.(solvable)
			threshold := plan.WorstCaseThreshold() // 8 of the 10 workers
			dec := plan.NewDecoder()
			dst := make([]float64, gradDim)
			decode := func(order []int) {
				t.Helper()
				dec.Reset()
				for _, w := range order {
					for _, msg := range encodeWorker(plan, w, gs) {
						dec.Offer(msg)
					}
					if dec.Decodable() {
						break
					}
				}
				if err := dec.DecodeInto(dst); err != nil {
					t.Fatal(err)
				}
				if d := vecmath.MaxAbsDiff(dst, want); d > 1e-6*(1+vecmath.NormInf(want)) {
					t.Fatalf("decode off by %v", d)
				}
			}
			// Workers 0..n-1 in index order: the responding set is the first
			// `threshold` indices.
			base := make([]int, n)
			for i := range base {
				base[i] = i
			}
			const iters = 6
			for it := 0; it < iters; it++ {
				decode(base)
			}
			if got := plan.Solves(); got != 1 {
				t.Fatalf("plan solved %d linear systems over %d identical iterations, want 1", got, iters)
			}
			// The SAME responder set arriving in reversed order must hit the
			// cache: the key is the set, coefficients are stored by worker.
			reversed := make([]int, 0, n)
			for i := threshold - 1; i >= 0; i-- {
				reversed = append(reversed, i)
			}
			for i := threshold; i < n; i++ {
				reversed = append(reversed, i)
			}
			decode(reversed)
			if got := plan.Solves(); got != 1 {
				t.Fatalf("same responder set in reversed order re-solved (count %d, want 1)", got)
			}
			// A different responder set is a genuinely different system.
			rotated := make([]int, n)
			for i := range rotated {
				rotated[i] = (i + 1) % n // first `threshold` responders now {1..threshold}
			}
			decode(rotated)
			if got := plan.Solves(); got < 2 {
				t.Fatalf("new responder set did not trigger a solve (count %d)", got)
			}
		})
	}
}

// TestDecoderResetReusable asserts Reset returns every registered scheme's
// decoder to a fresh state: a second iteration on a reused decoder must
// produce the identical sum and threshold as a fresh decoder.
func TestDecoderResetReusable(t *testing.T) {
	const m, n, r = 12, 12, 3
	rng := rngutil.New(321)
	gs, _ := makeGradients(m, rng)
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			s, _ := Lookup(name)
			plan, err := s.Plan(m, n, r, rngutil.New(13))
			if err != nil {
				t.Skipf("%s rejects m=%d n=%d r=%d: %v", name, m, n, r, err)
			}
			order := rngutil.New(17).Perm(n)
			decode := func(dec Decoder) ([]float64, int) {
				for _, w := range order {
					for _, msg := range encodeWorker(plan, w, gs) {
						dec.Offer(msg)
					}
					if dec.Decodable() {
						break
					}
				}
				out, err := Decode(dec, gradDim)
				if err != nil {
					t.Fatal(err)
				}
				return out, dec.WorkersHeard()
			}
			reused := plan.NewDecoder()
			first, firstHeard := decode(reused)
			reused.Reset()
			if reused.WorkersHeard() != 0 || reused.UnitsReceived() != 0 || reused.Decodable() {
				t.Fatal("Reset left decoder state behind")
			}
			second, secondHeard := decode(reused)
			fresh, freshHeard := decode(plan.NewDecoder())
			if d := vecmath.MaxAbsDiff(second, fresh); d != 0 {
				t.Fatalf("reused decoder differs from fresh by %v", d)
			}
			if d := vecmath.MaxAbsDiff(first, second); d != 0 {
				t.Fatalf("second decode differs from first by %v", d)
			}
			if firstHeard != secondHeard || secondHeard != freshHeard {
				t.Fatalf("thresholds drifted: %d, %d, %d", firstHeard, secondHeard, freshHeard)
			}
		})
	}
}
