package coding

import (
	"math"
	"testing"

	"bcc/internal/coupon"
	"bcc/internal/rngutil"
	"bcc/internal/vecmath"
)

// ---------------------------------------------------------------------------
// bccmulti
// ---------------------------------------------------------------------------

func TestBCCMultiDecodesExactly(t *testing.T) {
	rng := rngutil.New(700)
	for _, k := range []int{1, 2, 4} {
		plan, err := BCCMulti{K: k}.Plan(24, 60, 4, rng)
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		gs, want := makeGradients(24, rng)
		got, _ := driveDecoder(t, plan, gs, rng.Perm(60))
		checkExact(t, "bccmulti", got, want)
	}
}

func TestBCCMultiRespectsLoad(t *testing.T) {
	rng := rngutil.New(701)
	plan, err := BCCMulti{K: 3}.Plan(30, 40, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	for w, a := range plan.Assignments() {
		if len(a) > 6 {
			t.Fatalf("worker %d assigned %d > r=6 examples", w, len(a))
		}
	}
	if plan.CommLoadPerWorker() != 3 {
		t.Fatalf("comm load %v, want K=3", plan.CommLoadPerWorker())
	}
}

func TestBCCMultiMessageGranularity(t *testing.T) {
	rng := rngutil.New(702)
	plan, err := BCCMulti{K: 2}.Plan(12, 30, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	gs, _ := makeGradients(12, rng)
	msgs := encodeWorker(plan, 0, gs)
	if len(msgs) != 2 {
		t.Fatalf("worker sent %d messages, want K=2", len(msgs))
	}
	if msgs[0].Tag == msgs[1].Tag {
		t.Fatal("two messages with the same batch tag")
	}
}

func TestBCCMultiExpectedThresholdMatchesMC(t *testing.T) {
	rng := rngutil.New(703)
	scheme := BCCMulti{K: 2}
	m, n, r := 24, 200, 4 // batchSize 2 -> 12 batches, draws of 2
	want := coupon.BatchExpectedDraws(12, 2)
	gs, _ := makeGradients(m, rng)
	var sum float64
	const trials = 300
	for i := 0; i < trials; i++ {
		plan, err := scheme.Plan(m, n, r, rng)
		if err != nil {
			t.Fatal(err)
		}
		_, heard := driveDecoder(t, plan, gs, rng.Perm(n))
		sum += float64(heard)
	}
	got := sum / trials
	if math.Abs(got-want) > 0.12*want {
		t.Fatalf("measured E[K] %v vs analytic %v", got, want)
	}
}

func TestBCCMultiAblationConclusion(t *testing.T) {
	// The design-choice ablation: at equal computational load, K=1 (plain
	// BCC) has no worse threshold scaling and strictly lower communication
	// than K=2.
	m, r := 40, 4
	bccK := coupon.ExpectedDraws(10)           // K=1: 10 batches of 4
	multiK := coupon.BatchExpectedDraws(20, 2) // K=2: 20 batches of 2
	if multiK < bccK*0.95 {
		t.Fatalf("multi-batch threshold %v unexpectedly beats BCC %v", multiK, bccK)
	}
	bccComm := bccK * 1
	multiComm := multiK * 2
	if multiComm <= bccComm {
		t.Fatalf("multi-batch comm %v should exceed BCC %v", multiComm, bccComm)
	}
	_ = m
	_ = r
}

func TestBCCMultiRejectsBadShapes(t *testing.T) {
	rng := rngutil.New(704)
	if _, err := (BCCMulti{K: 5}).Plan(10, 10, 3, rng); err == nil {
		t.Fatal("r < K accepted")
	}
	if _, err := (BCCMulti{K: 2}).Plan(10, 10, 12, rng); err == nil {
		t.Fatal("r > m accepted")
	}
	if _, err := (BCCMulti{}).Plan(10, 10, 2, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

// ---------------------------------------------------------------------------
// bccapprox
// ---------------------------------------------------------------------------

func TestBCCApproxExactWhenPhiOne(t *testing.T) {
	rng := rngutil.New(710)
	plan, err := BCCApprox{Phi: 1}.Plan(20, 50, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	gs, want := makeGradients(20, rng)
	got, _ := driveDecoder(t, plan, gs, rng.Perm(50))
	checkExact(t, "bccapprox phi=1", got, want)
}

func TestBCCApproxThresholdBelowExact(t *testing.T) {
	rng := rngutil.New(711)
	approx, err := BCCApprox{Phi: 0.6}.Plan(40, 400, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := BCC{}.Plan(40, 400, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if approx.ExpectedThreshold() >= exact.ExpectedThreshold() {
		t.Fatalf("approx threshold %v not below exact %v",
			approx.ExpectedThreshold(), exact.ExpectedThreshold())
	}
	// Measure: approx decoders finish strictly earlier on the same orders.
	gs, _ := makeGradients(40, rng)
	var sumA, sumE float64
	for i := 0; i < 100; i++ {
		order := rng.Perm(400)
		_, hA := driveDecoder(t, approx, gs, order)
		_, hE := driveDecoder(t, exact, gs, order)
		sumA += float64(hA)
		sumE += float64(hE)
	}
	if sumA >= sumE {
		t.Fatalf("approx heard %v on average, exact %v", sumA/100, sumE/100)
	}
}

func TestBCCApproxScaling(t *testing.T) {
	// With phi < 1, the decoded vector must equal (sum of covered batches)
	// * nBatches/covered.
	rng := rngutil.New(712)
	plan, err := BCCApprox{Phi: 0.5}.Plan(16, 200, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	ap := plan.(*bccApproxPlan)
	if ap.CoverageTarget() != 2 { // ceil(0.5*4)
		t.Fatalf("coverage target %d, want 2", ap.CoverageTarget())
	}
	gs, _ := makeGradients(16, rng)
	dec := plan.NewDecoder()
	var rawSum []float64
	covered := map[int]bool{}
	for w := 0; w < 200 && !dec.Decodable(); w++ {
		for _, msg := range encodeWorker(plan, w, gs) {
			if !covered[msg.Tag] {
				covered[msg.Tag] = true
				if rawSum == nil {
					rawSum = vecmath.Clone(msg.Vec)
				} else {
					vecmath.AddInto(rawSum, msg.Vec)
				}
			}
			dec.Offer(msg)
		}
	}
	got, err := Decode(dec, gradDim)
	if err != nil {
		t.Fatal(err)
	}
	scale := 4.0 / float64(len(covered))
	want := vecmath.Clone(rawSum)
	vecmath.Scale(scale, want)
	if d := vecmath.MaxAbsDiff(got, want); d > 1e-12 {
		t.Fatalf("approx scaling off by %v", d)
	}
}

func TestBCCApproxEstimatorApproximatelyUnbiased(t *testing.T) {
	// Averaged over placements and arrival orders, the scaled partial sum
	// should approach the full gradient sum.
	rng := rngutil.New(713)
	m := 20
	gs, want := makeGradients(m, rng)
	scheme := BCCApprox{Phi: 0.6}
	mean := make([]float64, gradDim)
	const trials = 4000
	for i := 0; i < trials; i++ {
		plan, err := scheme.Plan(m, 100, 4, rng)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := driveDecoder(t, plan, gs, rng.Perm(100))
		vecmath.AddInto(mean, got)
	}
	vecmath.Scale(1.0/trials, mean)
	// Tolerance: the estimator is only exchangeable-approximately unbiased;
	// allow 10% of the gradient scale.
	if d := vecmath.MaxAbsDiff(mean, want); d > 0.1*(1+vecmath.NormInf(want)) {
		t.Fatalf("estimator bias %v too large", d)
	}
}

func TestBCCApproxRejectsBadPhi(t *testing.T) {
	rng := rngutil.New(714)
	if _, err := (BCCApprox{Phi: 1.5}).Plan(10, 20, 2, rng); err == nil {
		t.Fatal("phi > 1 accepted")
	}
	if _, err := (BCCApprox{Phi: -0.2}).Plan(10, 20, 2, rng); err == nil {
		t.Fatal("phi < 0 accepted")
	}
}
