package coding

import (
	"fmt"
	"testing"

	"bcc/internal/rngutil"
)

// The nested-scheme tests pin the family contract the adaptive controller
// rests on: every level L in [1, r] is a complete gradient code over the SAME
// placement (level L uses each worker's first L assigned units), with decode
// threshold n-L+1, and switching the active level never invalidates what a
// worker would send — lower levels are strict prefixes, so a worker's data
// layout is fixed for the whole run.

// retunableFor builds a nested family and returns it with its Retunable view.
func retunableFor(t *testing.T, m, n, r int, rng *rngutil.RNG) (Plan, Retunable) {
	t.Helper()
	p := planFor(t, "nested", m, n, r, rng)
	rp, ok := p.(Retunable)
	if !ok {
		t.Fatalf("nested plan does not implement Retunable")
	}
	return p, rp
}

// TestNestedEveryLevelSubsetContract runs the full responder-subset property
// suite (subsetCase) against EVERY level of a nested family — exhaustively
// over all 2^6 subsets of a (6,6,3) family, reusing one decoder per level so
// Reset isolation is exercised too. This is the per-level analogue of
// TestDecoderSubsetProperties, which only sees the family at its max level.
func TestNestedEveryLevelSubsetContract(t *testing.T) {
	rng := rngutil.New(901)
	_, rp := retunableFor(t, 6, 6, 3, rng.Split())
	gs, total := makeGradients(6, rng.Split())
	if rp.MinLevel() != 1 || rp.MaxLevel() != 3 {
		t.Fatalf("family levels [%d, %d], want [1, 3]", rp.MinLevel(), rp.MaxLevel())
	}
	for L := rp.MinLevel(); L <= rp.MaxLevel(); L++ {
		lp, err := rp.AtLevel(L)
		if err != nil {
			t.Fatalf("AtLevel(%d): %v", L, err)
		}
		if got, want := lp.WorstCaseThreshold(), 6-L+1; got != want {
			t.Fatalf("level %d: WorstCaseThreshold %d, want n-L+1 = %d", L, got, want)
		}
		if minR := MinResponders(lp); minR > lp.WorstCaseThreshold() {
			t.Fatalf("level %d: MinResponders %d exceeds WorstCaseThreshold %d", L, minR, lp.WorstCaseThreshold())
		}
		name := fmt.Sprintf("nested/L%d", L)
		dec := lp.NewDecoder()
		for mask := 0; mask < 1<<6; mask++ {
			var sub []int
			for w := 0; w < 6; w++ {
				if mask&(1<<w) != 0 {
					sub = append(sub, w)
				}
			}
			subsetCase(t, name, lp, dec, gs, total, sub)
		}
	}
}

// TestNestedEveryLevelRandomSubsets repeats the subset contract on a larger
// (12,12,4) family with random subsets in random arrival orders per level.
func TestNestedEveryLevelRandomSubsets(t *testing.T) {
	rng := rngutil.New(902)
	_, rp := retunableFor(t, 12, 12, 4, rng.Split())
	gs, total := makeGradients(12, rng.Split())
	for L := rp.MinLevel(); L <= rp.MaxLevel(); L++ {
		lp, err := rp.AtLevel(L)
		if err != nil {
			t.Fatalf("AtLevel(%d): %v", L, err)
		}
		name := fmt.Sprintf("nested/L%d", L)
		dec := lp.NewDecoder()
		for trial := 0; trial < 80; trial++ {
			perm := rng.Perm(12)
			sub := perm[:1+rng.Intn(12)]
			subsetCase(t, name, lp, dec, gs, total, sub)
		}
	}
}

// TestNestedPrefixPlacement pins the structural invariant that makes level
// switching free for workers: level L's assignment for every worker is
// exactly the first L entries of the family's (max-level) assignment, so a
// worker holding its r assigned units can serve any level by computing a
// prefix of its encoded parts.
func TestNestedPrefixPlacement(t *testing.T) {
	rng := rngutil.New(903)
	p, rp := retunableFor(t, 8, 8, 4, rng.Split())
	full := p.Assignments()
	for L := rp.MinLevel(); L <= rp.MaxLevel(); L++ {
		lp, err := rp.AtLevel(L)
		if err != nil {
			t.Fatalf("AtLevel(%d): %v", L, err)
		}
		for w, a := range lp.Assignments() {
			if len(a) != L {
				t.Fatalf("level %d: worker %d assigned %d units, want %d", L, w, len(a), L)
			}
			for k, u := range a {
				if full[w][k] != u {
					t.Fatalf("level %d: worker %d assignment %v is not a prefix of family assignment %v",
						L, w, a, full[w])
				}
			}
		}
	}
}

// TestNestedSetLevelSemantics drives the FAMILY plan (the object the engine
// mutates) through a descending level sweep: after each SetLevel, the active
// threshold, encode arity and a fresh decode must all reflect the new level,
// and a decoder Reset must snapshot the now-active level.
func TestNestedSetLevelSemantics(t *testing.T) {
	rng := rngutil.New(904)
	p, rp := retunableFor(t, 8, 8, 4, rng.Split())
	full := p.Assignments()
	gs, total := makeGradients(8, rng.Split())
	dec := p.NewDecoder()
	for L := rp.MaxLevel(); L >= rp.MinLevel(); L-- {
		if err := rp.SetLevel(L); err != nil {
			t.Fatalf("SetLevel(%d): %v", L, err)
		}
		if rp.Level() != L {
			t.Fatalf("Level() = %d after SetLevel(%d)", rp.Level(), L)
		}
		if got, want := p.WorstCaseThreshold(), 8-L+1; got != want {
			t.Fatalf("level %d: active WorstCaseThreshold %d, want %d", L, got, want)
		}
		dec.Reset() // snapshots the active level, like the engine's per-iteration Reset
		fed := 0
		for _, w := range rng.Perm(8) {
			// A worker at level L sends the first L of its encoded parts.
			parts := make([][]float64, L)
			for k, u := range full[w][:L] {
				parts[k] = gs[u]
			}
			for _, msg := range Encode(p, w, parts) {
				dec.Offer(msg)
			}
			fed++
			if dec.Decodable() {
				break
			}
		}
		if want := 8 - L + 1; fed != want {
			t.Fatalf("level %d: decodable after %d workers, want exactly the threshold %d", L, fed, want)
		}
		out, err := Decode(dec, gradDim)
		if err != nil {
			t.Fatalf("level %d: decode failed: %v", L, err)
		}
		checkExact(t, fmt.Sprintf("nested/SetLevel(%d)", L), out, total)
	}
	// Out-of-range levels must be rejected without changing the active level.
	rp.SetLevel(2)
	for _, bad := range []int{0, -1, 5} {
		if err := rp.SetLevel(bad); err == nil {
			t.Fatalf("SetLevel(%d) accepted out-of-range level", bad)
		}
		if _, err := rp.AtLevel(bad); err == nil {
			t.Fatalf("AtLevel(%d) accepted out-of-range level", bad)
		}
	}
	if rp.Level() != 2 {
		t.Fatalf("rejected SetLevel changed the active level to %d", rp.Level())
	}
}

// TestNestedConstructionDeterministic pins what live/tcp correctness depends
// on: two processes seeding the same RNG build bit-identical families at
// every level — same assignments and same encoded bytes — so a worker and a
// master that never exchange coefficients still agree.
func TestNestedConstructionDeterministic(t *testing.T) {
	build := func() (Plan, Retunable, [][]float64) {
		rng := rngutil.New(905)
		p, rp := retunableFor(t, 8, 8, 3, rng.Split())
		gs, _ := makeGradients(8, rng.Split())
		return p, rp, gs
	}
	p1, rp1, gs1 := build()
	p2, rp2, gs2 := build()
	a1, a2 := p1.Assignments(), p2.Assignments()
	for w := range a1 {
		for k := range a1[w] {
			if a1[w][k] != a2[w][k] {
				t.Fatalf("same-seed families disagree on assignment of worker %d", w)
			}
		}
	}
	for L := rp1.MinLevel(); L <= rp1.MaxLevel(); L++ {
		l1, err := rp1.AtLevel(L)
		if err != nil {
			t.Fatal(err)
		}
		l2, err := rp2.AtLevel(L)
		if err != nil {
			t.Fatal(err)
		}
		for w := 0; w < 8; w++ {
			m1 := encodeWorker(l1, w, gs1)
			m2 := encodeWorker(l2, w, gs2)
			if len(m1) != len(m2) {
				t.Fatalf("level %d worker %d: message counts %d vs %d", L, w, len(m1), len(m2))
			}
			for i := range m1 {
				for j := range m1[i].Vec {
					if m1[i].Vec[j] != m2[i].Vec[j] {
						t.Fatalf("level %d worker %d: same-seed encodes differ", L, w)
					}
				}
			}
		}
	}
}
