package coding

import (
	"bcc/internal/rngutil"
	"bcc/internal/vecmath"
)

// Uncoded is the paper's baseline: the m examples are partitioned disjointly
// across the n workers (no redundancy), each worker ships the sum of its
// partial gradients, and the master must wait for every worker that holds
// data. Its recovery threshold is therefore n and it provides no straggler
// protection, but it attains the minimum possible communication load.
type Uncoded struct{}

func init() { Register(Uncoded{}) }

// Name implements Scheme.
func (Uncoded) Name() string { return "uncoded" }

// Plan implements Scheme. The computational load of the uncoded scheme is
// structurally ceil(m/n); the r argument is validated against it so callers
// cannot silently assume redundancy that does not exist.
func (Uncoded) Plan(m, n, r int, _ *rngutil.RNG) (Plan, error) {
	need := (m + n - 1) / n
	if r < need {
		r = need
	}
	if err := validate("uncoded", m, n, r); err != nil {
		return nil, err
	}
	// Balanced contiguous partition; with n > m some workers hold nothing.
	assign := make([][]int, n)
	next := 0
	for w := 0; w < n; w++ {
		size := m / n
		if w < m%n {
			size++
		}
		ids := make([]int, size)
		for k := range ids {
			ids[k] = next
			next++
		}
		assign[w] = ids
	}
	holders := n
	if m < n {
		holders = m
	}
	return &uncodedPlan{m: m, n: n, r: need, assign: assign, holders: holders}, nil
}

type uncodedPlan struct {
	m, n, r int
	assign  [][]int
	holders int // workers with at least one example
}

func (p *uncodedPlan) Scheme() string          { return "uncoded" }
func (p *uncodedPlan) Params() (int, int, int) { return p.m, p.n, p.r }
func (p *uncodedPlan) Assignments() [][]int    { return p.assign }
func (p *uncodedPlan) WorstCaseThreshold() int { return p.holders }

// MinResponders implements the exact converse bound: uncoded has zero
// redundancy, so every data-holding worker is required.
func (p *uncodedPlan) MinResponders() int { return p.holders }
func (p *uncodedPlan) ExpectedThreshold() float64 {
	return float64(p.holders)
}
func (p *uncodedPlan) CommLoadPerWorker() float64 { return 1 }

// EncodeInto implements Plan: one message carrying the sum of the worker's
// partial gradients. Workers with no data transmit nothing.
func (p *uncodedPlan) EncodeInto(dst []Message, worker int, parts [][]float64, bufs Buffers) []Message {
	checkParts("uncoded", p.assign, worker, parts)
	if len(parts) == 0 {
		return dst
	}
	buf := grabBuf(bufs, len(parts[0]))
	vecmath.SumVectorsInto(buf, parts)
	return append(dst, Message{From: worker, Tag: worker, Vec: buf, Units: 1})
}

func (p *uncodedPlan) NewDecoder() Decoder {
	return &uncodedDecoder{plan: p, got: make([][]float64, p.n)}
}

type uncodedDecoder struct {
	plan  *uncodedPlan
	got   [][]float64 // indexed by worker, nil until heard
	heard int
	units float64
}

func (d *uncodedDecoder) Offer(msg Message) bool {
	if d.Decodable() {
		return true
	}
	if d.got[msg.From] == nil {
		d.got[msg.From] = msg.Vec
		d.heard++
		d.units += msg.Units
	}
	return d.Decodable()
}

func (d *uncodedDecoder) Decodable() bool { return d.heard >= d.plan.holders }

// DecodeInto sums in worker-index order so the result is bit-for-bit
// identical regardless of message arrival order.
func (d *uncodedDecoder) DecodeInto(dst []float64) error {
	if !d.Decodable() {
		return ErrNotDecodable
	}
	sumSparseInto(dst, d.got)
	return nil
}

// DecodeSliceInto implements SliceDecoder: elements [lo, hi) of the
// worker-order sum only; any partition reproduces DecodeInto bit-for-bit.
func (d *uncodedDecoder) DecodeSliceInto(dst []float64, lo, hi int) error {
	if !d.Decodable() {
		return ErrNotDecodable
	}
	if err := checkDecodeSlice(dst, lo, hi); err != nil {
		return err
	}
	sumSparseSliceInto(dst, d.got, lo, hi)
	return nil
}

func (d *uncodedDecoder) WorkersHeard() int      { return d.heard }
func (d *uncodedDecoder) UnitsReceived() float64 { return d.units }

// Reset implements Decoder.
func (d *uncodedDecoder) Reset() {
	for i := range d.got {
		d.got[i] = nil
	}
	d.heard = 0
	d.units = 0
}

var _ Scheme = Uncoded{}
