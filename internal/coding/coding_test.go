package coding

import (
	"math"
	"testing"

	"bcc/internal/rngutil"
	"bcc/internal/vecmath"
)

const gradDim = 6

// makeGradients builds m deterministic pseudo-random unit gradients and
// their total sum.
func makeGradients(m int, rng *rngutil.RNG) ([][]float64, []float64) {
	gs := make([][]float64, m)
	total := make([]float64, gradDim)
	for u := 0; u < m; u++ {
		g := make([]float64, gradDim)
		for t := range g {
			g[t] = rng.Normal()
		}
		gs[u] = g
		vecmath.AddInto(total, g)
	}
	return gs, total
}

// encodeWorker runs a worker's side of the protocol: gather its partial
// gradients per the plan's assignment and encode.
func encodeWorker(p Plan, w int, gs [][]float64) []Message {
	assign := p.Assignments()[w]
	parts := make([][]float64, len(assign))
	for k, u := range assign {
		parts[k] = gs[u]
	}
	return Encode(p, w, parts)
}

// driveDecoder feeds workers' messages in the given order until decodable;
// returns the decoded sum and the number of workers consumed, or -1 if the
// order was exhausted without decoding.
func driveDecoder(t *testing.T, p Plan, gs [][]float64, order []int) ([]float64, int) {
	t.Helper()
	dec := p.NewDecoder()
	for i, w := range order {
		for _, msg := range encodeWorker(p, w, gs) {
			dec.Offer(msg)
		}
		if dec.Decodable() {
			out, err := Decode(dec, gradDim)
			if err != nil {
				t.Fatalf("decodable decoder failed to decode: %v", err)
			}
			return out, i + 1
		}
	}
	return nil, -1
}

// checkExact asserts the decoded vector equals the true total.
func checkExact(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if got == nil {
		t.Fatalf("%s: decoder never became decodable", name)
	}
	if d := vecmath.MaxAbsDiff(got, want); d > 1e-8*(1+vecmath.NormInf(want)) {
		t.Fatalf("%s: decode error %v", name, d)
	}
}

// planFor builds a plan for the named scheme, skipping the combination when
// the scheme rejects it structurally.
func planFor(t *testing.T, name string, m, n, r int, rng *rngutil.RNG) Plan {
	t.Helper()
	s, err := Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Plan(m, n, r, rng)
	if err != nil {
		t.Skipf("%s rejects m=%d n=%d r=%d: %v", name, m, n, r, err)
	}
	return p
}

// ---------------------------------------------------------------------------
// Cross-scheme exactness
// ---------------------------------------------------------------------------

func TestAllSchemesDecodeExactly(t *testing.T) {
	configs := []struct{ m, n, r int }{
		{12, 12, 3}, {12, 12, 4}, {20, 20, 5}, {10, 10, 1}, {16, 16, 2},
	}
	for _, name := range Names() {
		if name == "bccapprox" {
			continue // approximate by design; exactness covered in bccext_test.go
		}
		for _, cfg := range configs {
			rng := rngutil.New(uint64(cfg.m*1000 + cfg.r))
			t.Run(name, func(t *testing.T) {
				p := planFor(t, name, cfg.m, cfg.n, cfg.r, rng)
				gs, want := makeGradients(cfg.m, rng)
				// Natural order.
				got, _ := driveDecoder(t, p, gs, seq(cfg.n))
				checkExact(t, name, got, want)
				// Random arrival order — stragglers at the front.
				got2, _ := driveDecoder(t, p, gs, rng.Perm(cfg.n))
				checkExact(t, name+"/permuted", got2, want)
			})
		}
	}
}

func seq(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

func TestSchemesRespectComputationalLoad(t *testing.T) {
	rng := rngutil.New(7)
	for _, name := range Names() {
		p := planFor(t, name, 20, 20, 4, rng)
		_, _, r := p.Params()
		for w, a := range p.Assignments() {
			if len(a) > r {
				t.Fatalf("%s: worker %d assigned %d > r=%d examples", name, w, len(a), r)
			}
			seen := map[int]bool{}
			for _, u := range a {
				if u < 0 || u >= 20 || seen[u] {
					t.Fatalf("%s: worker %d has invalid/duplicate example %d", name, w, u)
				}
				seen[u] = true
			}
		}
	}
}

func TestSchemesCoverage(t *testing.T) {
	rng := rngutil.New(8)
	for _, name := range Names() {
		p := planFor(t, name, 24, 24, 4, rng)
		if !coverageFeasible(24, p.Assignments()) {
			t.Fatalf("%s: plan does not cover all examples", name)
		}
	}
}

// ---------------------------------------------------------------------------
// Worst-case straggler tolerance (coded schemes)
// ---------------------------------------------------------------------------

// exhaustively check every (n-s)-subset decodes, for small n.
func testWorstCaseExhaustive(t *testing.T, name string, m, n, r int) {
	t.Helper()
	rng := rngutil.New(42)
	p := planFor(t, name, m, n, r, rng)
	k := p.WorstCaseThreshold()
	if k < 0 {
		t.Fatalf("%s should have a deterministic threshold", name)
	}
	gs, want := makeGradients(m, rng)
	subset := make([]int, k)
	var rec func(start, idx int)
	count := 0
	rec = func(start, idx int) {
		if idx == k {
			got, _ := driveDecoder(t, p, gs, subset)
			checkExact(t, name, got, want)
			count++
			return
		}
		for v := start; v <= n-(k-idx); v++ {
			subset[idx] = v
			rec(v+1, idx+1)
		}
	}
	rec(0, 0)
	if count == 0 {
		t.Fatal("no subsets enumerated")
	}
}

func TestCyclicRepToleratesAnyStragglers(t *testing.T) {
	testWorstCaseExhaustive(t, "cyclicrep", 9, 9, 3) // C(9,7) = 36 subsets
}

func TestCyclicMDSToleratesAnyStragglers(t *testing.T) {
	testWorstCaseExhaustive(t, "cyclicmds", 9, 9, 3)
}

func TestFractionalToleratesAnyStragglers(t *testing.T) {
	testWorstCaseExhaustive(t, "fractional", 9, 9, 3)
}

func TestCodedSchemesRandomSubsetsLargerN(t *testing.T) {
	rng := rngutil.New(43)
	for _, name := range []string{"cyclicrep", "cyclicmds"} {
		p := planFor(t, name, 30, 30, 6, rng)
		k := p.WorstCaseThreshold() // 25
		gs, want := makeGradients(30, rng)
		for trial := 0; trial < 25; trial++ {
			subset := rng.Sample(30, k)
			got, _ := driveDecoder(t, p, gs, subset)
			checkExact(t, name, got, want)
		}
	}
}

func TestCyclicRepThresholdValue(t *testing.T) {
	rng := rngutil.New(44)
	p := planFor(t, "cyclicrep", 50, 50, 10, rng)
	if got := p.WorstCaseThreshold(); got != 41 {
		t.Fatalf("CR threshold = %d, want m-r+1 = 41 (paper eq. 7)", got)
	}
	if got := p.ExpectedThreshold(); got != 41 {
		t.Fatalf("CR expected threshold = %v", got)
	}
}

func TestCyclicRepCannotDecodeBelowThreshold(t *testing.T) {
	// With the cyclic construction, fewer than n-s generic workers cannot
	// span the all-ones vector.
	rng := rngutil.New(45)
	p := planFor(t, "cyclicrep", 10, 10, 3, rng)
	gs, _ := makeGradients(10, rng)
	dec := p.NewDecoder()
	for w := 0; w < p.WorstCaseThreshold()-1; w++ {
		for _, msg := range encodeWorker(p, w, gs) {
			if dec.Offer(msg) {
				t.Fatalf("decodable after only %d workers (< threshold %d)", w+1, p.WorstCaseThreshold())
			}
		}
	}
	if _, err := Decode(dec, gradDim); err != ErrNotDecodable {
		t.Fatalf("expected ErrNotDecodable, got %v", err)
	}
}

// ---------------------------------------------------------------------------
// BCC specifics
// ---------------------------------------------------------------------------

func TestBCCBatchStructure(t *testing.T) {
	rng := rngutil.New(50)
	p := planFor(t, "bcc", 50, 50, 10, rng).(*bccPlan)
	if p.NumBatches() != 5 {
		t.Fatalf("batches = %d, want 5", p.NumBatches())
	}
	// Every worker's assignment is exactly one batch: r consecutive ids
	// starting at a multiple of r.
	for w := 0; w < 50; w++ {
		a := p.Assignments()[w]
		if len(a) != 10 {
			t.Fatalf("worker %d assigned %d examples", w, len(a))
		}
		if a[0]%10 != 0 {
			t.Fatalf("worker %d batch starts at %d", w, a[0])
		}
		for k := 1; k < len(a); k++ {
			if a[k] != a[0]+k {
				t.Fatalf("worker %d batch not contiguous", w)
			}
		}
		if p.BatchOf(w) != a[0]/10 {
			t.Fatalf("BatchOf mismatch for worker %d", w)
		}
	}
}

func TestBCCShortLastBatch(t *testing.T) {
	rng := rngutil.New(51)
	p := planFor(t, "bcc", 10, 20, 3, rng).(*bccPlan)
	if p.NumBatches() != 4 {
		t.Fatalf("batches = %d, want ceil(10/3)=4", p.NumBatches())
	}
	gs, want := makeGradients(10, rng)
	got, _ := driveDecoder(t, p, gs, seq(20))
	checkExact(t, "bcc short batch", got, want)
}

func TestBCCExpectedThresholdFormula(t *testing.T) {
	rng := rngutil.New(52)
	p := planFor(t, "bcc", 50, 50, 10, rng)
	want := 5 * (1 + 0.5 + 1.0/3 + 0.25 + 0.2)
	if got := p.ExpectedThreshold(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("E[K] = %v, want 5*H_5 = %v", got, want)
	}
}

func TestBCCThresholdStatisticsMatchTheory(t *testing.T) {
	// Monte-Carlo over placements AND arrival orders: the average number of
	// workers heard before coverage should approach ceil(m/r)*H.
	rng := rngutil.New(53)
	m, n, r := 40, 200, 10 // N = 4 batches, plenty of workers
	scheme, _ := Lookup("bcc")
	gs, _ := makeGradients(m, rng)
	var sum float64
	const trials = 400
	for i := 0; i < trials; i++ {
		p, err := scheme.Plan(m, n, r, rng)
		if err != nil {
			t.Fatal(err)
		}
		_, heard := driveDecoder(t, p, gs, rng.Perm(n))
		if heard < 0 {
			t.Fatal("infeasible plan escaped the feasibility check")
		}
		sum += float64(heard)
	}
	got := sum / trials
	want := 4 * (1 + 0.5 + 1.0/3 + 0.25) // 4*H_4 ~ 8.33
	if math.Abs(got-want) > 0.5 {
		t.Fatalf("measured E[K] = %v, theory %v", got, want)
	}
}

func TestBCCDuplicateBatchesDiscarded(t *testing.T) {
	rng := rngutil.New(54)
	p := planFor(t, "bcc", 12, 30, 4, rng)
	gs, want := makeGradients(12, rng)
	// Feed every worker; duplicates of already-covered batches must not
	// corrupt the sum.
	dec := p.NewDecoder()
	for w := 0; w < 30; w++ {
		for _, msg := range encodeWorker(p, w, gs) {
			dec.Offer(msg)
		}
	}
	got, err := Decode(dec, gradDim)
	if err != nil {
		t.Fatal(err)
	}
	checkExact(t, "bcc duplicates", got, want)
}

func TestBCCInfeasibleWhenTooFewWorkers(t *testing.T) {
	scheme, _ := Lookup("bcc")
	// 10 batches but only 5 workers: structurally impossible.
	if _, err := scheme.Plan(100, 5, 10, rngutil.New(1)); err == nil {
		t.Fatal("expected error when m/r > n")
	}
}

func TestBCCNilRNG(t *testing.T) {
	scheme, _ := Lookup("bcc")
	if _, err := scheme.Plan(10, 10, 2, nil); err == nil {
		t.Fatal("expected error for nil rng")
	}
}

// ---------------------------------------------------------------------------
// Randomized specifics
// ---------------------------------------------------------------------------

func TestRandomizedMessageGranularity(t *testing.T) {
	rng := rngutil.New(60)
	p := planFor(t, "randomized", 20, 20, 5, rng)
	gs, _ := makeGradients(20, rng)
	msgs := encodeWorker(p, 0, gs)
	if len(msgs) != 5 {
		t.Fatalf("randomized worker sent %d messages, want r=5", len(msgs))
	}
	for _, m := range msgs {
		if m.Units != 1 {
			t.Fatalf("unit message has Units=%v", m.Units)
		}
	}
	if p.CommLoadPerWorker() != 5 {
		t.Fatalf("CommLoadPerWorker = %v", p.CommLoadPerWorker())
	}
}

func TestRandomizedCommunicationLoadExceedsBCC(t *testing.T) {
	// The headline contrast of the paper: same threshold scaling, but the
	// randomized scheme pays ~r times the communication.
	rng := rngutil.New(61)
	m, n, r := 30, 120, 5
	bccPlan := planFor(t, "bcc", m, n, r, rng)
	rndPlan := planFor(t, "randomized", m, n, r, rng)
	gs, _ := makeGradients(m, rng)

	bccDec := bccPlan.NewDecoder()
	rndDec := rndPlan.NewDecoder()
	order := rng.Perm(n)
	for _, w := range order {
		if !bccDec.Decodable() {
			for _, msg := range encodeWorker(bccPlan, w, gs) {
				bccDec.Offer(msg)
			}
		}
		if !rndDec.Decodable() {
			for _, msg := range encodeWorker(rndPlan, w, gs) {
				rndDec.Offer(msg)
			}
		}
	}
	if !bccDec.Decodable() || !rndDec.Decodable() {
		t.Fatal("decoders did not finish")
	}
	if rndDec.UnitsReceived() <= bccDec.UnitsReceived() {
		t.Fatalf("randomized units %v should exceed BCC units %v",
			rndDec.UnitsReceived(), bccDec.UnitsReceived())
	}
}

// ---------------------------------------------------------------------------
// Fractional specifics
// ---------------------------------------------------------------------------

func TestFractionalExpectedThresholdMatchesMC(t *testing.T) {
	rng := rngutil.New(70)
	p := planFor(t, "fractional", 20, 20, 4, rng).(*fractionalPlan)
	want := p.ExpectedThreshold()
	gs, _ := makeGradients(20, rng)
	var sum float64
	const trials = 3000
	for i := 0; i < trials; i++ {
		_, heard := driveDecoder(t, p, gs, rng.Perm(20))
		sum += float64(heard)
	}
	got := sum / trials
	if math.Abs(got-want) > 0.15 {
		t.Fatalf("fractional E[K]: MC %v vs analytic %v", got, want)
	}
}

func TestFractionalEarlyFinish(t *testing.T) {
	// Footnote 2 of the paper: FR may finish before m-r+1 workers. With a
	// favourable order (one worker per block first), it finishes after
	// exactly n/r workers.
	rng := rngutil.New(71)
	p := planFor(t, "fractional", 20, 20, 4, rng).(*fractionalPlan)
	gs, want := makeGradients(20, rng)
	order := []int{0, 1, 2, 3, 4} // workers 0..4 hold blocks 0..4 (n/r = 5)
	got, heard := driveDecoder(t, p, gs, order)
	checkExact(t, "fractional early", got, want)
	if heard != 5 {
		t.Fatalf("finished after %d workers, want 5", heard)
	}
}

func TestFractionalRejectsBadShapes(t *testing.T) {
	scheme, _ := Lookup("fractional")
	if _, err := scheme.Plan(10, 10, 3, rngutil.New(1)); err == nil {
		t.Fatal("r must divide n")
	}
	if _, err := scheme.Plan(9, 10, 2, rngutil.New(1)); err == nil {
		t.Fatal("m must equal n")
	}
}

// ---------------------------------------------------------------------------
// Registry & misc
// ---------------------------------------------------------------------------

func TestRegistry(t *testing.T) {
	names := Names()
	want := []string{"bcc", "bccapprox", "bccmulti", "cyclicmds", "cyclicrep", "fractional", "nested", "randomized", "uncoded"}
	if len(names) != len(want) {
		t.Fatalf("registry = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("registry = %v, want %v", names, want)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown scheme should error")
	}
}

func TestUncodedWaitsForAllWorkers(t *testing.T) {
	rng := rngutil.New(80)
	p := planFor(t, "uncoded", 20, 20, 1, rng)
	gs, want := makeGradients(20, rng)
	got, heard := driveDecoder(t, p, gs, rng.Perm(20))
	checkExact(t, "uncoded", got, want)
	if heard != 20 {
		t.Fatalf("uncoded finished after %d workers, want all 20", heard)
	}
	if p.WorstCaseThreshold() != 20 {
		t.Fatalf("uncoded threshold %d", p.WorstCaseThreshold())
	}
}

func TestUncodedUnevenPartition(t *testing.T) {
	rng := rngutil.New(81)
	p := planFor(t, "uncoded", 23, 5, 5, rng)
	gs, want := makeGradients(23, rng)
	got, _ := driveDecoder(t, p, gs, seq(5))
	checkExact(t, "uncoded uneven", got, want)
}

func TestUncodedMoreWorkersThanExamples(t *testing.T) {
	rng := rngutil.New(82)
	p := planFor(t, "uncoded", 3, 6, 1, rng)
	gs, want := makeGradients(3, rng)
	got, heard := driveDecoder(t, p, gs, seq(6))
	checkExact(t, "uncoded sparse", got, want)
	if heard > 3 {
		t.Fatalf("waited for %d workers; only 3 hold data", heard)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	for _, name := range Names() {
		s, _ := Lookup(name)
		if _, err := s.Plan(0, 5, 1, rngutil.New(1)); err == nil {
			t.Fatalf("%s accepted m=0", name)
		}
		if _, err := s.Plan(10, 10, 11, rngutil.New(1)); err == nil {
			t.Fatalf("%s accepted r > m", name)
		}
	}
}

func TestEncodePanicsOnWrongArity(t *testing.T) {
	rng := rngutil.New(90)
	p := planFor(t, "bcc", 12, 12, 3, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("Encode with wrong arity did not panic")
		}
	}()
	Encode(p, 0, [][]float64{{1, 2, 3}})
}

func TestOfferAfterDecodableIsIgnored(t *testing.T) {
	rng := rngutil.New(91)
	p := planFor(t, "bcc", 12, 40, 3, rng)
	gs, want := makeGradients(12, rng)
	dec := p.NewDecoder()
	var doneAt int
	for w := 0; w < 40; w++ {
		for _, msg := range encodeWorker(p, w, gs) {
			dec.Offer(msg)
		}
		if dec.Decodable() && doneAt == 0 {
			doneAt = dec.WorkersHeard()
		}
	}
	if dec.WorkersHeard() != doneAt {
		t.Fatalf("WorkersHeard moved after decodability: %d -> %d", doneAt, dec.WorkersHeard())
	}
	got, _ := Decode(dec, gradDim)
	checkExact(t, "late offers", got, want)
}

// ---------------------------------------------------------------------------
// Responder-subset properties (fault-injection support)
// ---------------------------------------------------------------------------

// subsetCase feeds exactly one responder subset (in the given worker order)
// into a freshly Reset decoder and checks the subset-level contracts:
//
//   - any subset of size >= WorstCaseThreshold (when the plan declares one)
//     must be decodable — the "always sufficient" guarantee;
//   - any subset SMALLER than MinResponders must never be decodable, and
//     Offer must never have reported ready — the converse bound the master
//     engine's explicit degradation rests on;
//   - whenever the decoder reports decodable, DecodeInto must reproduce the
//     exact uncoded full gradient (bccapprox excepted: it rescales a
//     partial sum by design);
//   - the last Offer verdict, Decodable and DecodeInto's error must agree.
func subsetCase(t *testing.T, name string, p Plan, dec Decoder, gs [][]float64, total []float64, sub []int) {
	t.Helper()
	dec.Reset()
	anyReady := false
	for _, w := range sub {
		for _, msg := range encodeWorker(p, w, gs) {
			if dec.Offer(msg) {
				anyReady = true
			}
		}
	}
	if anyReady != dec.Decodable() {
		t.Fatalf("%s subset %v: Offer reported ready=%v but Decodable=%v", name, sub, anyReady, dec.Decodable())
	}
	minR := MinResponders(p)
	if dec.Decodable() {
		if len(sub) < minR {
			t.Fatalf("%s: subset %v of %d workers decodable below MinResponders %d", name, sub, len(sub), minR)
		}
		out, err := Decode(dec, gradDim)
		if err != nil {
			t.Fatalf("%s subset %v: decodable decoder failed: %v", name, sub, err)
		}
		if name != "bccapprox" {
			checkExact(t, name, out, total)
		}
		return
	}
	if wct := p.WorstCaseThreshold(); wct >= 0 && len(sub) >= wct {
		t.Fatalf("%s: subset %v has %d workers >= worst-case threshold %d but is not decodable",
			name, sub, len(sub), wct)
	}
	if err := dec.DecodeInto(make([]float64, gradDim)); err != ErrNotDecodable {
		t.Fatalf("%s subset %v: early DecodeInto returned %v, want ErrNotDecodable", name, sub, err)
	}
}

// TestDecoderSubsetProperties checks the subset contracts for every
// registered scheme: exhaustively over all 2^6 responder subsets of a small
// plan, then over random subsets in random arrival orders of a larger one.
// One decoder is reused across every subset, so Reset isolation is
// exercised a few hundred times per scheme as a side effect.
func TestDecoderSubsetProperties(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			rng := rngutil.New(4242)
			small := planFor(t, name, 6, 6, 2, rng.Split())
			gs, total := makeGradients(6, rng.Split())
			dec := small.NewDecoder()
			for mask := 0; mask < 1<<6; mask++ {
				var sub []int
				for w := 0; w < 6; w++ {
					if mask&(1<<w) != 0 {
						sub = append(sub, w)
					}
				}
				subsetCase(t, name, small, dec, gs, total, sub)
			}

			big := planFor(t, name, 12, 12, 3, rng.Split())
			gsBig, totalBig := makeGradients(12, rng.Split())
			decBig := big.NewDecoder()
			for trial := 0; trial < 120; trial++ {
				perm := rng.Perm(12)
				sub := perm[:1+rng.Intn(12)]
				subsetCase(t, name, big, decBig, gsBig, totalBig, sub)
			}
		})
	}
}

// TestMinRespondersBounds pins the per-scheme converse bounds themselves:
// the exact overrides where they are known, the generic coverage bound
// elsewhere, and consistency with WorstCaseThreshold (a set that is always
// sufficient can never be smaller than one that is certainly insufficient).
func TestMinRespondersBounds(t *testing.T) {
	rng := rngutil.New(77)
	cases := []struct {
		name    string
		m, n, r int
		want    int
	}{
		{"uncoded", 12, 12, 1, 12}, // every holder required
		{"uncoded", 6, 12, 1, 6},   // only the data-holding workers count
		{"cyclicmds", 12, 12, 3, 10},
		{"cyclicrep", 12, 12, 3, 4},
		{"bcc", 12, 12, 3, 4},
		{"fractional", 12, 12, 3, 4},
		{"randomized", 12, 12, 3, 4},
	}
	for _, tc := range cases {
		p := planFor(t, tc.name, tc.m, tc.n, tc.r, rng.Split())
		if got := MinResponders(p); got != tc.want {
			t.Errorf("%s(m=%d n=%d r=%d): MinResponders %d, want %d", tc.name, tc.m, tc.n, tc.r, got, tc.want)
		}
	}
	for _, name := range Names() {
		p := planFor(t, name, 12, 12, 3, rng.Split())
		minR := MinResponders(p)
		if minR < 1 {
			t.Errorf("%s: MinResponders %d < 1", name, minR)
		}
		if wct := p.WorstCaseThreshold(); wct >= 0 && minR > wct {
			t.Errorf("%s: MinResponders %d above WorstCaseThreshold %d", name, minR, wct)
		}
	}
}
