package coding

import (
	"fmt"
	"math"

	"bcc/internal/coupon"
	"bcc/internal/rngutil"
	"bcc/internal/vecmath"
)

// GeneralizedBCC is the heterogeneous-cluster scheme of the paper's §IV:
// worker i independently samples Loads[i] distinct examples uniformly at
// random (no batching — Theorem 2's construction G0) and, following the
// section's uncoded communication model, ships each partial gradient
// individually. The master decodes by coverage over the m examples.
//
// The per-worker loads typically come from the hetero package's P2
// allocator. Because loads are placement-specific the scheme is NOT in the
// global registry; construct it explicitly:
//
//	plan, err := coding.GeneralizedBCC{Loads: alloc.Loads}.Plan(m, n, maxLoad, rng)
type GeneralizedBCC struct {
	// Loads[i] is worker i's sample count (values are clamped to m).
	Loads []int
	// MaxResample bounds feasibility retries (default 1000): the union of
	// the samples must cover every example or no iteration can ever decode.
	MaxResample int
}

// Name implements Scheme.
func (GeneralizedBCC) Name() string { return "genbcc" }

// Plan implements Scheme. r must be >= max(Loads); it exists only to satisfy
// the uniform interface and is validated, not used for placement. Values of
// r above m are clamped to m, mirroring the per-load clamping.
func (s GeneralizedBCC) Plan(m, n, r int, rng *rngutil.RNG) (Plan, error) {
	if r > m {
		r = m
	}
	if err := validate("genbcc", m, n, r); err != nil {
		return nil, err
	}
	if len(s.Loads) != n {
		return nil, fmt.Errorf("coding/genbcc: %d loads for %d workers", len(s.Loads), n)
	}
	if rng == nil {
		return nil, fmt.Errorf("coding/genbcc: nil rng (placement is randomized)")
	}
	loads := make([]int, n)
	maxLoad := 0
	total := 0
	for i, l := range s.Loads {
		if l < 0 {
			return nil, fmt.Errorf("coding/genbcc: negative load %d for worker %d", l, i)
		}
		if l > m {
			l = m
		}
		loads[i] = l
		total += l
		if l > maxLoad {
			maxLoad = l
		}
	}
	if maxLoad > r {
		return nil, fmt.Errorf("coding/genbcc: max load %d exceeds declared r=%d", maxLoad, r)
	}
	if total < m {
		return nil, fmt.Errorf("coding/genbcc: total load %d cannot cover %d examples", total, m)
	}
	maxTries := s.MaxResample
	if maxTries <= 0 {
		maxTries = 1000
	}
	for try := 0; try < maxTries; try++ {
		assign := make([][]int, n)
		for w := 0; w < n; w++ {
			assign[w] = rng.Sample(m, loads[w])
		}
		if coverageFeasible(m, assign) {
			return &genBCCPlan{m: m, n: n, r: r, loads: loads, assign: assign}, nil
		}
	}
	return nil, fmt.Errorf("coding/genbcc: no feasible placement after %d tries (total load %d over m=%d)",
		maxTries, total, m)
}

type genBCCPlan struct {
	m, n, r int
	loads   []int
	assign  [][]int
}

func (p *genBCCPlan) Scheme() string          { return "genbcc" }
func (p *genBCCPlan) Params() (int, int, int) { return p.m, p.n, p.r }
func (p *genBCCPlan) Assignments() [][]int    { return p.assign }

// Loads returns the per-worker sample counts.
func (p *genBCCPlan) Loads() []int { return p.loads }

func (p *genBCCPlan) WorstCaseThreshold() int { return -1 }

// ExpectedThreshold implements Plan; heterogeneous loads have no clean
// closed form, so NaN signals "Monte-Carlo only".
func (p *genBCCPlan) ExpectedThreshold() float64 { return math.NaN() }

// CommLoadPerWorker implements Plan: the average per-worker load (uncoded
// communication ships every partial gradient separately).
func (p *genBCCPlan) CommLoadPerWorker() float64 {
	var total float64
	for _, l := range p.loads {
		total += float64(l)
	}
	return total / float64(p.n)
}

// EncodeInto implements Plan: one unit message per sampled example (§IV's
// uncoded communication model), copied into pooled payload buffers.
func (p *genBCCPlan) EncodeInto(dst []Message, worker int, parts [][]float64, bufs Buffers) []Message {
	checkParts("genbcc", p.assign, worker, parts)
	for k, g := range parts {
		buf := grabBuf(bufs, len(g))
		copy(buf, g)
		dst = append(dst, Message{From: worker, Tag: p.assign[worker][k], Vec: buf, Units: 1})
	}
	return dst
}

func (p *genBCCPlan) NewDecoder() Decoder {
	return &genBCCDecoder{
		plan:    p,
		tracker: coupon.NewTracker(p.m),
		kept:    make([][]float64, p.m),
		heard:   newWorkerMask(p.n),
	}
}

type genBCCDecoder struct {
	plan    *genBCCPlan
	tracker *coupon.Tracker
	kept    [][]float64
	heard   workerMask
	units   float64
}

func (d *genBCCDecoder) Offer(msg Message) bool {
	if d.Decodable() {
		return true
	}
	d.heard.hear(msg.From)
	d.units += msg.Units
	if msg.Tag < 0 || msg.Tag >= d.plan.m {
		panic(fmt.Sprintf("coding/genbcc: invalid example tag %d", msg.Tag))
	}
	if d.tracker.Offer(msg.Tag) {
		d.kept[msg.Tag] = msg.Vec
	}
	return d.Decodable()
}

func (d *genBCCDecoder) Decodable() bool { return d.tracker.Complete() }

func (d *genBCCDecoder) DecodeInto(dst []float64) error {
	if !d.Decodable() {
		return ErrNotDecodable
	}
	vecmath.SumVectorsInto(dst, d.kept)
	return nil
}

// DecodeSliceInto implements SliceDecoder: elements [lo, hi) of the
// example-order sum only. Every example slot is held once decodable, so the
// slice fold reproduces DecodeInto bit-for-bit on any partition.
func (d *genBCCDecoder) DecodeSliceInto(dst []float64, lo, hi int) error {
	if !d.Decodable() {
		return ErrNotDecodable
	}
	if err := checkDecodeSlice(dst, lo, hi); err != nil {
		return err
	}
	sumSparseSliceInto(dst, d.kept, lo, hi)
	return nil
}

func (d *genBCCDecoder) WorkersHeard() int      { return d.heard.count }
func (d *genBCCDecoder) UnitsReceived() float64 { return d.units }

// Reset implements Decoder.
func (d *genBCCDecoder) Reset() {
	d.tracker.Reset()
	for i := range d.kept {
		d.kept[i] = nil
	}
	d.heard.reset()
	d.units = 0
}

var _ Scheme = GeneralizedBCC{}

// ---------------------------------------------------------------------------
// Partitioned: the LB baseline's placement
// ---------------------------------------------------------------------------

// Partitioned is the load-balancing baseline of §IV-C as a coding scheme:
// the m examples are split into DISJOINT contiguous blocks sized by Loads
// (typically hetero.LoadBalancedLoads), each worker ships the sum of its
// block, and the master must wait for every loaded worker. It generalizes
// Uncoded to non-uniform loads. Not registered; construct explicitly.
type Partitioned struct {
	// Loads[i] is worker i's block size; the loads must sum to exactly m.
	Loads []int
}

// Name implements Scheme.
func (Partitioned) Name() string { return "partitioned" }

// Plan implements Scheme; r must be >= max(Loads).
func (s Partitioned) Plan(m, n, r int, _ *rngutil.RNG) (Plan, error) {
	if err := validate("partitioned", m, n, r); err != nil {
		return nil, err
	}
	if len(s.Loads) != n {
		return nil, fmt.Errorf("coding/partitioned: %d loads for %d workers", len(s.Loads), n)
	}
	total := 0
	maxLoad := 0
	for i, l := range s.Loads {
		if l < 0 {
			return nil, fmt.Errorf("coding/partitioned: negative load %d for worker %d", l, i)
		}
		total += l
		if l > maxLoad {
			maxLoad = l
		}
	}
	if total != m {
		return nil, fmt.Errorf("coding/partitioned: loads sum to %d, want m=%d", total, m)
	}
	if maxLoad > r {
		return nil, fmt.Errorf("coding/partitioned: max load %d exceeds declared r=%d", maxLoad, r)
	}
	assign := make([][]int, n)
	next := 0
	holders := 0
	for w := 0; w < n; w++ {
		ids := make([]int, s.Loads[w])
		for k := range ids {
			ids[k] = next
			next++
		}
		assign[w] = ids
		if len(ids) > 0 {
			holders++
		}
	}
	return &partitionedPlan{m: m, n: n, r: r, assign: assign, holders: holders}, nil
}

type partitionedPlan struct {
	m, n, r int
	assign  [][]int
	holders int
}

func (p *partitionedPlan) Scheme() string          { return "partitioned" }
func (p *partitionedPlan) Params() (int, int, int) { return p.m, p.n, p.r }
func (p *partitionedPlan) Assignments() [][]int    { return p.assign }
func (p *partitionedPlan) WorstCaseThreshold() int { return p.holders }

// MinResponders implements the exact converse bound: the partitioned
// baseline has zero redundancy, so every data-holding worker is required.
func (p *partitionedPlan) MinResponders() int         { return p.holders }
func (p *partitionedPlan) ExpectedThreshold() float64 { return float64(p.holders) }
func (p *partitionedPlan) CommLoadPerWorker() float64 { return 1 }

func (p *partitionedPlan) EncodeInto(dst []Message, worker int, parts [][]float64, bufs Buffers) []Message {
	checkParts("partitioned", p.assign, worker, parts)
	if len(parts) == 0 {
		return dst
	}
	buf := grabBuf(bufs, len(parts[0]))
	vecmath.SumVectorsInto(buf, parts)
	return append(dst, Message{From: worker, Tag: worker, Vec: buf, Units: 1})
}

func (p *partitionedPlan) NewDecoder() Decoder {
	return &partitionedDecoder{plan: p, got: make([][]float64, p.n)}
}

type partitionedDecoder struct {
	plan  *partitionedPlan
	got   [][]float64
	heard int
	units float64
}

func (d *partitionedDecoder) Offer(msg Message) bool {
	if d.Decodable() {
		return true
	}
	if d.got[msg.From] == nil {
		d.got[msg.From] = msg.Vec
		d.heard++
		d.units += msg.Units
	}
	return d.Decodable()
}

func (d *partitionedDecoder) Decodable() bool { return d.heard >= d.plan.holders }

func (d *partitionedDecoder) DecodeInto(dst []float64) error {
	if !d.Decodable() {
		return ErrNotDecodable
	}
	sumSparseInto(dst, d.got)
	return nil
}

// DecodeSliceInto implements SliceDecoder: elements [lo, hi) of the
// worker-order sum only; any partition reproduces DecodeInto bit-for-bit.
func (d *partitionedDecoder) DecodeSliceInto(dst []float64, lo, hi int) error {
	if !d.Decodable() {
		return ErrNotDecodable
	}
	if err := checkDecodeSlice(dst, lo, hi); err != nil {
		return err
	}
	sumSparseSliceInto(dst, d.got, lo, hi)
	return nil
}

func (d *partitionedDecoder) WorkersHeard() int      { return d.heard }
func (d *partitionedDecoder) UnitsReceived() float64 { return d.units }

// Reset implements Decoder.
func (d *partitionedDecoder) Reset() {
	for i := range d.got {
		d.got[i] = nil
	}
	d.heard = 0
	d.units = 0
}

var _ Scheme = Partitioned{}
