package coding

import (
	"math"
	"testing"

	"bcc/internal/rngutil"
)

func TestGenBCCDecodesExactly(t *testing.T) {
	rng := rngutil.New(800)
	m, n := 20, 10
	loads := []int{8, 8, 8, 8, 8, 4, 4, 4, 4, 4}
	plan, err := GeneralizedBCC{Loads: loads}.Plan(m, n, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	gs, want := makeGradients(m, rng)
	got, _ := driveDecoder(t, plan, gs, rng.Perm(n))
	checkExact(t, "genbcc", got, want)
}

func TestGenBCCRespectsLoads(t *testing.T) {
	rng := rngutil.New(801)
	loads := []int{5, 3, 0, 7, 5}
	plan, err := GeneralizedBCC{Loads: loads}.Plan(12, 5, 7, rng)
	if err != nil {
		t.Fatal(err)
	}
	for w, a := range plan.Assignments() {
		if len(a) != loads[w] {
			t.Fatalf("worker %d assigned %d, want %d", w, len(a), loads[w])
		}
		seen := map[int]bool{}
		for _, u := range a {
			if seen[u] {
				t.Fatalf("worker %d sampled example %d twice", w, u)
			}
			seen[u] = true
		}
	}
}

func TestGenBCCLoadsClampedToM(t *testing.T) {
	rng := rngutil.New(802)
	plan, err := GeneralizedBCC{Loads: []int{100, 100}}.Plan(6, 2, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	for w, a := range plan.Assignments() {
		if len(a) != 6 {
			t.Fatalf("worker %d assigned %d, want clamp to m=6", w, len(a))
		}
	}
	gp := plan.(*genBCCPlan)
	if math.IsNaN(gp.ExpectedThreshold()) == false {
		t.Fatal("heterogeneous threshold should be NaN (MC only)")
	}
}

func TestGenBCCValidation(t *testing.T) {
	rng := rngutil.New(803)
	if _, err := (GeneralizedBCC{Loads: []int{1}}).Plan(5, 2, 3, rng); err == nil {
		t.Fatal("wrong load count accepted")
	}
	if _, err := (GeneralizedBCC{Loads: []int{-1, 3}}).Plan(5, 2, 3, rng); err == nil {
		t.Fatal("negative load accepted")
	}
	if _, err := (GeneralizedBCC{Loads: []int{1, 1}}).Plan(5, 2, 3, rng); err == nil {
		t.Fatal("insufficient total load accepted")
	}
	if _, err := (GeneralizedBCC{Loads: []int{5, 5}}).Plan(5, 2, 3, rng); err == nil {
		t.Fatal("max load above r accepted")
	}
	if _, err := (GeneralizedBCC{Loads: []int{5, 5}}).Plan(5, 2, 5, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestGenBCCUncodedCommunication(t *testing.T) {
	rng := rngutil.New(804)
	loads := []int{3, 3, 3, 3}
	plan, err := GeneralizedBCC{Loads: loads}.Plan(6, 4, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	gs, _ := makeGradients(6, rng)
	msgs := encodeWorker(plan, 0, gs)
	if len(msgs) != 3 {
		t.Fatalf("worker sent %d messages, want one per sampled example", len(msgs))
	}
	if plan.CommLoadPerWorker() != 3 {
		t.Fatalf("comm load %v", plan.CommLoadPerWorker())
	}
}

func TestPartitionedDecodesExactly(t *testing.T) {
	rng := rngutil.New(810)
	loads := []int{4, 1, 0, 5, 2}
	plan, err := Partitioned{Loads: loads}.Plan(12, 5, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	gs, want := makeGradients(12, rng)
	dec := plan.NewDecoder()
	for _, w := range rng.Perm(5) {
		for _, msg := range encodeWorker(plan, w, gs) {
			dec.Offer(msg)
		}
	}
	got, err := Decode(dec, gradDim)
	if err != nil {
		t.Fatal(err)
	}
	checkExact(t, "partitioned", got, want)
	if dec.WorkersHeard() != 4 { // worker 2 holds nothing and sends nothing
		t.Fatalf("heard %d, want 4 holders", dec.WorkersHeard())
	}
}

func TestPartitionedDisjointCoverage(t *testing.T) {
	rng := rngutil.New(811)
	loads := []int{3, 3, 3, 3}
	plan, err := Partitioned{Loads: loads}.Plan(12, 4, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, 12)
	for _, a := range plan.Assignments() {
		for _, u := range a {
			if seen[u] {
				t.Fatalf("example %d assigned twice", u)
			}
			seen[u] = true
		}
	}
	for u, s := range seen {
		if !s {
			t.Fatalf("example %d unassigned", u)
		}
	}
}

func TestPartitionedValidation(t *testing.T) {
	rng := rngutil.New(812)
	if _, err := (Partitioned{Loads: []int{3, 3}}).Plan(5, 2, 3, rng); err == nil {
		t.Fatal("loads not summing to m accepted")
	}
	if _, err := (Partitioned{Loads: []int{5, 0}}).Plan(5, 2, 3, rng); err == nil {
		t.Fatal("max load above r accepted")
	}
	if _, err := (Partitioned{Loads: []int{3}}).Plan(5, 2, 3, rng); err == nil {
		t.Fatal("wrong load count accepted")
	}
}

func TestGenBCCvsPartitionedThresholds(t *testing.T) {
	// The §IV story in decoder terms: with redundancy (total load > m),
	// genbcc usually finishes before hearing every worker; partitioned
	// always needs all holders.
	rng := rngutil.New(813)
	m, n := 30, 12
	gloads := make([]int, n)
	for i := range gloads {
		gloads[i] = 10 // total 120 >> m
	}
	gplan, err := GeneralizedBCC{Loads: gloads}.Plan(m, n, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	ploads := make([]int, n)
	for i := range ploads {
		ploads[i] = m / n
	}
	ploads[0] += m % n
	pplan, err := Partitioned{Loads: ploads}.Plan(m, n, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	gs, _ := makeGradients(m, rng)
	var gsum, psum float64
	const trials = 200
	for i := 0; i < trials; i++ {
		order := rng.Perm(n)
		_, gh := driveDecoder(t, gplan, gs, order)
		_, ph := driveDecoder(t, pplan, gs, order)
		gsum += float64(gh)
		psum += float64(ph)
	}
	if gsum/trials >= psum/trials {
		t.Fatalf("genbcc avg threshold %v not below partitioned %v", gsum/trials, psum/trials)
	}
}
