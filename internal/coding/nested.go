package coding

import (
	"fmt"
	"sync/atomic"

	"bcc/internal/rngutil"
	"bcc/internal/vecmath"
)

// Nested is the adaptive nested gradient-code family (Maßny et al., "Nested
// Gradient Codes for Straggler Mitigation"): a sequence of cyclic gradient
// codes at redundancy levels L = 1..r over ONE shared cyclic data placement,
// so the master can re-tune the effective redundancy between iterations
// without moving data. Level L is a full cyclic-repetition code on the first
// L examples of every worker's window — it tolerates any s = L-1 stragglers
// (deterministic threshold n-L+1) at a computational load of L examples per
// worker. Because the per-worker windows are prefix-nested
// (level-L assignment = first L entries of the level-r assignment), lowering
// the level only shrinks how much of its resident data a worker processes.
//
// The plan implements the Retunable capability: SetLevel swaps the active
// encode matrix and decoder threshold atomically; encode/decode stay
// EncodeInto/DecodeInto/DecodeSliceInto-conformant at every level, so the
// zero-alloc steady state and master sharding carry over unchanged. Callers
// that re-tune must encode with the ACTIVE level's assignment (a prefix of
// Assignments()); AtLevel exposes each level as an immutable fixed Plan for
// processes that pin the level per message (remote workers).
type Nested struct {
	// MaxRetries bounds how many H draws are attempted per level when a draw
	// is degenerate (probability-zero event; default 50).
	MaxRetries int
}

func init() { Register(Nested{}) }

// Name implements Scheme.
func (Nested) Name() string { return "nested" }

// Plan implements Scheme: r is the MAXIMUM redundancy level (the data
// placement's window width); the family contains levels 1..r. Construction
// draws the per-level coding matrices in ascending level order from rng, so
// every process seeding the same rng builds bit-identical families.
func (c Nested) Plan(m, n, r int, rng *rngutil.RNG) (Plan, error) {
	if err := validate("nested", m, n, r); err != nil {
		return nil, err
	}
	if m != n {
		return nil, fmt.Errorf("coding/nested: requires m == n (group examples first); got m=%d n=%d", m, n)
	}
	if rng == nil {
		return nil, fmt.Errorf("coding/nested: nil rng (construction is randomized)")
	}
	maxRetries := c.MaxRetries
	if maxRetries <= 0 {
		maxRetries = 50
	}
	// The shared placement: worker w holds the cyclic window of its r
	// examples; level L uses the length-L prefix.
	assign := make([][]int, n)
	for w := 0; w < n; w++ {
		ids := make([]int, r)
		for k := 0; k < r; k++ {
			ids[k] = (w + k) % n
		}
		assign[w] = ids
	}
	levels := make([]*codedPlan, r)
	for L := 1; L <= r; L++ {
		s := L - 1
		var b *vecmath.Matrix
		var err error
		for try := 0; try < maxRetries; try++ {
			b, err = buildCyclicRepB(n, s, rng)
			if err == nil {
				break
			}
		}
		if err != nil {
			return nil, fmt.Errorf("coding/nested: level %d construction failed after %d tries: %w", L, maxRetries, err)
		}
		sub := make([][]int, n)
		for w := 0; w < n; w++ {
			sub[w] = assign[w][:L]
		}
		levels[L-1] = newCodedPlan("nested", m, n, L, s, b, sub)
	}
	p := &nestedPlan{m: m, n: n, r: r, assign: assign, levels: levels}
	p.level.Store(int32(r))
	return p, nil
}

// Retunable is the optional Plan capability of nested code families: the
// active redundancy level can be swapped between iterations. Levels are
// 1-based computational loads; level L's decoder threshold is the level
// plan's WorstCaseThreshold. Implementations must keep every level's
// assignment a prefix of Assignments() so callers can derive the active
// workload by slicing, and must make SetLevel safe for concurrent readers
// (encode on one goroutine, Level on another).
type Retunable interface {
	Plan
	// MinLevel and MaxLevel bound the family (inclusive).
	MinLevel() int
	MaxLevel() int
	// Level returns the active level.
	Level() int
	// SetLevel activates level L for subsequent EncodeInto/NewDecoder
	// threshold decisions. Out-of-range levels are an error.
	SetLevel(L int) error
	// AtLevel returns level L as an immutable fixed Plan (its Assignments
	// are the length-L prefix of the family's), for callers that must pin a
	// level independent of the family's active one.
	AtLevel(L int) (Plan, error)
}

// nestedPlan is the Retunable family: one immutable codedPlan per level plus
// an atomic active-level index. All per-level state (coding matrices, encode
// coefficients, solve caches) is built at construction; SetLevel is a single
// atomic store.
type nestedPlan struct {
	m, n, r int
	assign  [][]int      // the shared placement: level r windows
	levels  []*codedPlan // levels[L-1] is level L
	level   atomic.Int32
}

func (p *nestedPlan) active() *codedPlan { return p.levels[p.level.Load()-1] }

func (p *nestedPlan) Scheme() string          { return "nested" }
func (p *nestedPlan) Params() (int, int, int) { return p.m, p.n, p.r }

// Assignments returns the shared data placement (the max-level windows).
// The ACTIVE workload is the length-Level() prefix of each worker's slice.
func (p *nestedPlan) Assignments() [][]int { return p.assign }

// EncodeInto implements Plan for the active level: parts must match the
// active level's assignment (the length-Level() prefix).
func (p *nestedPlan) EncodeInto(dst []Message, worker int, parts [][]float64, bufs Buffers) []Message {
	return p.active().EncodeInto(dst, worker, parts, bufs)
}

// WorstCaseThreshold returns the ACTIVE level's deterministic threshold
// n - Level() + 1.
func (p *nestedPlan) WorstCaseThreshold() int { return p.active().WorstCaseThreshold() }

// ExpectedThreshold returns the active level's (deterministic) threshold.
func (p *nestedPlan) ExpectedThreshold() float64 { return p.active().ExpectedThreshold() }

func (p *nestedPlan) CommLoadPerWorker() float64 { return 1 }

// MinResponders implements the minResponders capability for the FAMILY:
// the master can always raise the level to MaxLevel, whose threshold
// n - MaxLevel + 1 is the fewest responders any level can decode from.
// Fewer reachable workers than that defeat every level, so the engine's
// explicit-degrade check keys off the family bound, not the active level's.
func (p *nestedPlan) MinResponders() int { return p.n - p.r + 1 }

// MinLevel implements Retunable.
func (p *nestedPlan) MinLevel() int { return 1 }

// MaxLevel implements Retunable.
func (p *nestedPlan) MaxLevel() int { return p.r }

// Level implements Retunable.
func (p *nestedPlan) Level() int { return int(p.level.Load()) }

// SetLevel implements Retunable.
func (p *nestedPlan) SetLevel(L int) error {
	if L < 1 || L > p.r {
		return fmt.Errorf("coding/nested: level %d out of range [1, %d]", L, p.r)
	}
	p.level.Store(int32(L))
	return nil
}

// AtLevel implements Retunable.
func (p *nestedPlan) AtLevel(L int) (Plan, error) {
	if L < 1 || L > p.r {
		return nil, fmt.Errorf("coding/nested: level %d out of range [1, %d]", L, p.r)
	}
	return p.levels[L-1], nil
}

// NewDecoder implements Plan. The decoder holds one per-level codedDecoder
// and snapshots the family's active level on Reset — the engine resets the
// decoder after the controller runs and the iteration's model goes out, so
// an iteration decodes entirely at the level its workers encoded with.
func (p *nestedPlan) NewDecoder() Decoder {
	decs := make([]*codedDecoder, len(p.levels))
	for i, lp := range p.levels {
		decs[i] = lp.NewDecoder().(*codedDecoder)
	}
	return &nestedDecoder{plan: p, decs: decs, active: decs[p.Level()-1]}
}

// nestedDecoder delegates one iteration's decode to the level snapshotted at
// the last Reset. It forwards the ParallelDecoder and SliceDecoder
// capabilities so sharded masters (which capture the capability once per
// run) keep working across level switches.
type nestedDecoder struct {
	plan   *nestedPlan
	decs   []*codedDecoder
	active *codedDecoder
}

func (d *nestedDecoder) Offer(msg Message) bool { return d.active.Offer(msg) }
func (d *nestedDecoder) Decodable() bool        { return d.active.Decodable() }
func (d *nestedDecoder) WorkersHeard() int      { return d.active.WorkersHeard() }
func (d *nestedDecoder) UnitsReceived() float64 { return d.active.UnitsReceived() }
func (d *nestedDecoder) DecodeInto(dst []float64) error {
	return d.active.DecodeInto(dst)
}

// DecodeSliceInto implements SliceDecoder.
func (d *nestedDecoder) DecodeSliceInto(dst []float64, lo, hi int) error {
	return d.active.DecodeSliceInto(dst, lo, hi)
}

// SetDecodeParallelism implements ParallelDecoder (applied to every level so
// the engine's once-per-run call covers all future switches).
func (d *nestedDecoder) SetDecodeParallelism(workers int) {
	for _, dec := range d.decs {
		dec.SetDecodeParallelism(workers)
	}
}

// Reset implements Decoder: drop buffer references and re-snapshot the
// active level for the next iteration.
func (d *nestedDecoder) Reset() {
	d.active.Reset()
	d.active = d.decs[d.plan.Level()-1]
}

var (
	_ Scheme          = Nested{}
	_ Retunable       = (*nestedPlan)(nil)
	_ minResponders   = (*nestedPlan)(nil)
	_ ParallelDecoder = (*nestedDecoder)(nil)
	_ SliceDecoder    = (*nestedDecoder)(nil)
)
