// Package stats provides the summary statistics used by the experiment
// harness: means, variances, quantiles, confidence intervals, histograms,
// and a streaming accumulator.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (0 for fewer than 2 points).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// StdErr returns the standard error of the mean.
func StdErr(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It panics on empty input or q
// outside [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: Quantile q=%v out of [0,1]", q))
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Min returns the smallest element; panics on empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element; panics on empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Summary bundles the common descriptive statistics of a sample.
type Summary struct {
	N                  int
	Mean, StdDev, Sem  float64
	Min, Median, Max   float64
	P05, P25, P75, P95 float64
}

// Summarize computes a Summary; it panics on empty input.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Sem:    StdErr(xs),
		Min:    Min(xs),
		Median: Median(xs),
		Max:    Max(xs),
		P05:    Quantile(xs, 0.05),
		P25:    Quantile(xs, 0.25),
		P75:    Quantile(xs, 0.75),
		P95:    Quantile(xs, 0.95),
	}
}

// String renders a compact one-line summary.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.3g min=%.4g med=%.4g max=%.4g",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.Max)
}

// CI95 returns the half-width of a normal-approximation 95%% confidence
// interval for the mean of xs.
func CI95(xs []float64) float64 { return 1.959964 * StdErr(xs) }

// Accumulator is a streaming mean/variance accumulator (Welford's online
// algorithm). The zero value is ready to use.
type Accumulator struct {
	n         int
	mean, m2  float64
	min, max  float64
	seenFirst bool
}

// Add folds x into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
	if !a.seenFirst || x < a.min {
		a.min = x
	}
	if !a.seenFirst || x > a.max {
		a.max = x
	}
	a.seenFirst = true
}

// N returns the number of accumulated observations.
func (a *Accumulator) N() int { return a.n }

// Mean returns the running mean.
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the running unbiased sample variance.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the running sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min returns the smallest observation (0 if none).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation (0 if none).
func (a *Accumulator) Max() float64 { return a.max }

// Histogram is a fixed-bin histogram over [Lo, Hi); values outside the range
// are clamped into the edge bins.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with the given bounds and bin count.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: NewHistogram with invalid bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records an observation.
func (h *Histogram) Add(x float64) {
	b := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if b < 0 {
		b = 0
	}
	if b >= len(h.Counts) {
		b = len(h.Counts) - 1
	}
	h.Counts[b]++
	h.total++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int { return h.total }

// Fraction returns the fraction of observations in bin b.
func (h *Histogram) Fraction(b int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[b]) / float64(h.total)
}
