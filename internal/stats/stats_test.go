package stats

import (
	"math"
	"testing"
	"testing/quick"

	"bcc/internal/rngutil"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if m := Mean(xs); m != 3 {
		t.Fatalf("Mean = %v", m)
	}
	if v := Variance(xs); math.Abs(v-2.5) > 1e-12 {
		t.Fatalf("Variance = %v", v)
	}
	if s := StdDev(xs); math.Abs(s-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("StdDev = %v", s)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || StdErr(nil) != 0 {
		t.Fatal("empty-input statistics should be 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 4 {
		t.Fatalf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); math.Abs(q-2.5) > 1e-12 {
		t.Fatalf("median = %v", q)
	}
	if q := Median([]float64{7}); q != 7 {
		t.Fatalf("single-element median = %v", q)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile sorted the caller's slice")
	}
}

func TestQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile(empty) did not panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatal("Min/Max wrong")
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	s := Summarize(xs)
	if s.N != 10 || s.Mean != 5.5 || s.Min != 1 || s.Max != 10 {
		t.Fatalf("Summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("Summary.String empty")
	}
}

func TestCI95(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	ci := CI95(xs)
	want := 1.959964 * StdDev(xs) / 10
	if math.Abs(ci-want) > 1e-9 {
		t.Fatalf("CI95 = %v, want %v", ci, want)
	}
}

func TestAccumulatorMatchesBatch(t *testing.T) {
	rng := rngutil.New(1)
	var acc Accumulator
	xs := make([]float64, 0, 1000)
	for i := 0; i < 1000; i++ {
		x := rng.Normal()*3 + 1
		xs = append(xs, x)
		acc.Add(x)
	}
	if acc.N() != 1000 {
		t.Fatalf("N = %d", acc.N())
	}
	if math.Abs(acc.Mean()-Mean(xs)) > 1e-10 {
		t.Fatalf("acc mean %v vs %v", acc.Mean(), Mean(xs))
	}
	if math.Abs(acc.Variance()-Variance(xs)) > 1e-8 {
		t.Fatalf("acc var %v vs %v", acc.Variance(), Variance(xs))
	}
	if acc.Min() != Min(xs) || acc.Max() != Max(xs) {
		t.Fatal("acc min/max mismatch")
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var acc Accumulator
	if acc.Variance() != 0 || acc.StdDev() != 0 {
		t.Fatal("empty accumulator variance should be 0")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for i := 0; i < 10; i++ {
		h.Add(float64(i))
	}
	if h.Total() != 10 {
		t.Fatalf("Total = %d", h.Total())
	}
	for b := 0; b < 5; b++ {
		if h.Counts[b] != 2 {
			t.Fatalf("bin %d count %d", b, h.Counts[b])
		}
		if math.Abs(h.Fraction(b)-0.2) > 1e-12 {
			t.Fatalf("bin %d fraction %v", b, h.Fraction(b))
		}
	}
	// Clamping.
	h.Add(-100)
	h.Add(+100)
	if h.Counts[0] != 3 || h.Counts[4] != 3 {
		t.Fatal("out-of-range values not clamped to edge bins")
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid histogram did not panic")
		}
	}()
	NewHistogram(1, 1, 3)
}

// Property: variance is invariant under translation.
func TestVarianceShiftInvariance(t *testing.T) {
	f := func(seed uint64, shift float64) bool {
		if math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 1e6 {
			shift = 1
		}
		rng := rngutil.New(seed)
		n := 2 + rng.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Normal()
			ys[i] = xs[i] + shift
		}
		return math.Abs(Variance(xs)-Variance(ys)) < 1e-6*(1+math.Abs(shift))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
