package checkpoint

import (
	"path/filepath"
	"testing"

	"bcc/internal/optimize"
)

// shardableState is a checkpoint whose vectors actually span Dim (unlike the
// minimal sampleState), so slicing exercises real coordinate ranges.
func shardableState(dim int) *State {
	w := make([]float64, dim)
	wPrev := make([]float64, dim)
	for i := range w {
		w[i] = float64(i) + 0.25
		wPrev[i] = float64(i) - 0.75
	}
	return &State{
		Scheme: "bcc", M: 8, N: 8, R: 4, Dim: dim, Seed: 11,
		Completed: 6,
		Opt:       optimize.State{Kind: "nesterov", T: 6, Theta: 1.5, W: w, WPrev: wPrev},
	}
}

// splitEven cuts [0, dim) into contiguous shards (the test's stand-in for the
// engine's chunk-aligned shard map; Merge only requires contiguity).
func splitEven(t *testing.T, s *State, shards int) []*Shard {
	t.Helper()
	parts := make([]*Shard, shards)
	at := 0
	for k := 0; k < shards; k++ {
		hi := at + (s.Dim-at)/(shards-k)
		sh, err := s.SliceOf(k, shards, at, hi)
		if err != nil {
			t.Fatal(err)
		}
		parts[k] = sh
		at = hi
	}
	return parts
}

func sameState(t *testing.T, got, want *State) {
	t.Helper()
	if got.Scheme != want.Scheme || got.M != want.M || got.N != want.N || got.R != want.R ||
		got.Dim != want.Dim || got.Seed != want.Seed || got.Completed != want.Completed {
		t.Fatalf("identity drifted: got %+v want %+v", got, want)
	}
	if got.Opt.Kind != want.Opt.Kind || got.Opt.T != want.Opt.T || got.Opt.Theta != want.Opt.Theta {
		t.Fatalf("scalar optimizer state drifted: got %+v want %+v", got.Opt, want.Opt)
	}
	if len(got.Opt.W) != len(want.Opt.W) || len(got.Opt.WPrev) != len(want.Opt.WPrev) {
		t.Fatalf("vector lengths: W %d/%d WPrev %d/%d",
			len(got.Opt.W), len(want.Opt.W), len(got.Opt.WPrev), len(want.Opt.WPrev))
	}
	for i := range want.Opt.W {
		if got.Opt.W[i] != want.Opt.W[i] {
			t.Fatalf("W[%d] = %v, want %v", i, got.Opt.W[i], want.Opt.W[i])
		}
	}
	for i := range want.Opt.WPrev {
		if got.Opt.WPrev[i] != want.Opt.WPrev[i] {
			t.Fatalf("WPrev[%d] = %v, want %v", i, got.Opt.WPrev[i], want.Opt.WPrev[i])
		}
	}
}

// TestShardSplitMergeRoundTrip: SliceOf then Merge is the identity for any
// shard count, including shards with empty ranges and out-of-order parts,
// with and without momentum vectors.
func TestShardSplitMergeRoundTrip(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4, 7, 24, 30} {
		s := shardableState(24)
		parts := splitEven(t, s, shards)
		// Merge must not care about order.
		for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
			parts[i], parts[j] = parts[j], parts[i]
		}
		got, err := Merge(parts)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		sameState(t, got, s)
	}
	// GD state: no WPrev; the merged state must keep it nil.
	s := shardableState(12)
	s.Opt.Kind, s.Opt.WPrev = "gd", nil
	got, err := Merge(splitEven(t, s, 3))
	if err != nil {
		t.Fatal(err)
	}
	if got.Opt.WPrev != nil {
		t.Fatal("merge invented a WPrev vector")
	}
	sameState(t, got, s)
}

// TestShardSliceIsACopy: mutating the original state after SliceOf must not
// leak into the shard (each shard file is written independently).
func TestShardSliceIsACopy(t *testing.T) {
	s := shardableState(8)
	sh, err := s.SliceOf(0, 2, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	s.Opt.W[0] = -999
	if sh.State.Opt.W[0] == -999 {
		t.Fatal("shard aliases the original weight vector")
	}
}

func TestShardSliceValidation(t *testing.T) {
	s := shardableState(8)
	for _, bad := range []struct {
		name                  string
		shard, shards, lo, hi int
	}{
		{"shard out of range", 2, 2, 0, 4},
		{"negative shard", -1, 2, 0, 4},
		{"zero shards", 0, 0, 0, 4},
		{"hi past dim", 0, 2, 0, 9},
		{"inverted range", 0, 2, 4, 2},
		{"negative lo", 0, 2, -1, 4},
	} {
		if _, err := s.SliceOf(bad.shard, bad.shards, bad.lo, bad.hi); err == nil {
			t.Fatalf("%s accepted", bad.name)
		}
	}
}

func TestShardMergeRejectsTornSets(t *testing.T) {
	s := shardableState(24)

	missing := splitEven(t, s, 4)[:3]
	if _, err := Merge(missing); err == nil {
		t.Fatal("merge accepted an incomplete shard set")
	}

	dup := splitEven(t, s, 4)
	dup[1] = dup[0]
	if _, err := Merge(dup); err == nil {
		t.Fatal("merge accepted a duplicated shard index")
	}

	gap := splitEven(t, s, 4)
	gap[2].Lo++ // no longer contiguous with shard 1
	if _, err := Merge(gap); err == nil {
		t.Fatal("merge accepted a coordinate gap")
	}

	// A shard written by a later iteration (torn checkpoint).
	torn := splitEven(t, s, 4)
	late := shardableState(24)
	late.Completed, late.Opt.T = 7, 7
	tornParts := splitEven(t, late, 4)
	torn[3] = tornParts[3]
	if _, err := Merge(torn); err == nil {
		t.Fatal("merge accepted shards from different iterations")
	}

	other := splitEven(t, s, 4)
	foreign := shardableState(24)
	foreign.Seed = 99
	other[0] = splitEven(t, foreign, 4)[0]
	if _, err := Merge(other); err == nil {
		t.Fatal("merge accepted a shard from a different job")
	}

	if _, err := Merge(nil); err == nil {
		t.Fatal("merge accepted zero shards")
	}
}

// TestShardSaveLoadRoundTrip: per-shard files round-trip through the same
// atomic write protocol, and the loaded set merges back to the original.
func TestShardSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := shardableState(16)
	base := filepath.Join(dir, "ckpt.bin")
	parts := splitEven(t, s, 4)
	for _, sh := range parts {
		if err := SaveShard(ShardPath(base, sh.Shard), sh); err != nil {
			t.Fatal(err)
		}
	}
	loaded := make([]*Shard, len(parts))
	for k := range parts {
		sh, err := LoadShard(ShardPath(base, k))
		if err != nil {
			t.Fatal(err)
		}
		if sh.Shard != k || sh.Shards != 4 {
			t.Fatalf("shard file %d identifies as %d of %d", k, sh.Shard, sh.Shards)
		}
		loaded[k] = sh
	}
	got, err := Merge(loaded)
	if err != nil {
		t.Fatal(err)
	}
	sameState(t, got, s)

	if err := SaveShard(filepath.Join(dir, "nil"), nil); err == nil {
		t.Fatal("nil shard accepted")
	}
	if _, err := LoadShard(filepath.Join(dir, "nope")); err == nil {
		t.Fatal("missing shard file accepted")
	}
}
