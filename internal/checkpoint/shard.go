package checkpoint

import (
	"fmt"
	"sort"

	"bcc/internal/optimize"
)

// Sharded checkpoints: a sharded master (cluster.Config.MasterShards) owns
// the model coordinate-wise, so its natural checkpoint unit is a coordinate
// slice. A full State splits into per-shard files with SliceOf/SaveShard and
// reassembles with LoadShard/Merge; the merged state is bit-identical to the
// original, so restore-and-resume semantics are exactly the unsharded ones.
//
// Scalar optimizer state (iteration count, momentum scalars) advances once
// per iteration on the coordinator, so it is replicated into every shard's
// file: each file is self-describing, and Merge cross-checks the replicas to
// catch shards from different iterations (a torn checkpoint) early.

// Shard is one master shard's slice of a checkpoint: the full job identity
// plus the optimizer vectors restricted to the shard's coordinate range
// [Lo, Hi). Dim in the embedded State remains the FULL model dimension.
type Shard struct {
	// Format versions the encoding; bump on incompatible changes.
	Format int
	// Shard is this slice's index in [0, Shards); Shards is the shard count
	// the checkpoint was split into.
	Shard  int
	Shards int
	// Lo and Hi are the owned coordinate range [Lo, Hi).
	Lo, Hi int
	// State carries the job identity, scalar optimizer state and the vector
	// fields sliced to [Lo, Hi).
	State State
}

// SliceOf extracts one shard's checkpoint: the scalar state verbatim, the
// vector fields copied down to [lo, hi). Empty ranges (lo == hi, a shard
// with more peers than chunks) are valid.
func (s *State) SliceOf(shard, shards, lo, hi int) (*Shard, error) {
	switch {
	case s == nil:
		return nil, fmt.Errorf("checkpoint: slicing nil state")
	case shards <= 0 || shard < 0 || shard >= shards:
		return nil, fmt.Errorf("checkpoint: shard %d of %d out of range", shard, shards)
	case lo < 0 || hi < lo || hi > s.Dim:
		return nil, fmt.Errorf("checkpoint: slice [%d,%d) outside model dim %d", lo, hi, s.Dim)
	}
	sl := *s // scalars and identity travel whole
	sl.Opt = sliceOptState(s.Opt, lo, hi)
	return &Shard{Shard: shard, Shards: shards, Lo: lo, Hi: hi, State: sl}, nil
}

func sliceOptState(o optimize.State, lo, hi int) optimize.State {
	out := o
	if o.W != nil {
		out.W = append([]float64(nil), o.W[lo:hi]...)
	}
	if o.WPrev != nil {
		out.WPrev = append([]float64(nil), o.WPrev[lo:hi]...)
	}
	return out
}

// Merge reassembles a full checkpoint from the complete shard set. The parts
// may arrive in any order; Merge verifies that they form one checkpoint —
// same identity, same scalar optimizer state, every shard index present
// exactly once, ranges contiguous and covering [0, Dim) — and returns the
// state that SliceOf split, bit for bit.
func Merge(parts []*Shard) (*State, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("checkpoint: merging zero shards")
	}
	sorted := append([]*Shard(nil), parts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Shard < sorted[j].Shard })
	ref := sorted[0]
	if len(sorted) != ref.Shards {
		return nil, fmt.Errorf("checkpoint: %d shards present, checkpoint was split into %d", len(sorted), ref.Shards)
	}
	out := ref.State // scalars and identity from shard 0; vectors rebuilt below
	// A vector is present in the checkpoint iff some non-empty shard carries
	// it (an empty shard's slice is indistinguishable from absence, so
	// presence cannot be read off any single shard).
	var haveW, haveWPrev bool
	for _, sh := range sorted {
		haveW = haveW || len(sh.State.Opt.W) > 0
		haveWPrev = haveWPrev || len(sh.State.Opt.WPrev) > 0
	}
	out.Opt.W, out.Opt.WPrev = nil, nil
	if haveW {
		out.Opt.W = make([]float64, ref.State.Dim)
	}
	if haveWPrev {
		out.Opt.WPrev = make([]float64, ref.State.Dim)
	}
	at := 0
	for i, sh := range sorted {
		if sh.Shard != i {
			return nil, fmt.Errorf("checkpoint: shard %d missing (found index %d twice)", i, sh.Shard)
		}
		if err := shardMatches(ref, sh); err != nil {
			return nil, err
		}
		if sh.Lo != at {
			return nil, fmt.Errorf("checkpoint: shard %d starts at %d, want %d (ranges must be contiguous)", i, sh.Lo, at)
		}
		want := sh.Hi - sh.Lo
		if want > 0 && ((haveW && len(sh.State.Opt.W) != want) || (haveWPrev && len(sh.State.Opt.WPrev) != want)) {
			return nil, fmt.Errorf("checkpoint: shard %d vectors do not match its range [%d,%d)", i, sh.Lo, sh.Hi)
		}
		if haveW {
			copy(out.Opt.W[sh.Lo:sh.Hi], sh.State.Opt.W)
		}
		if haveWPrev {
			copy(out.Opt.WPrev[sh.Lo:sh.Hi], sh.State.Opt.WPrev)
		}
		at = sh.Hi
	}
	if at != ref.State.Dim {
		return nil, fmt.Errorf("checkpoint: shards cover [0,%d), model dim is %d", at, ref.State.Dim)
	}
	return &out, nil
}

// shardMatches verifies that sh belongs to the same checkpoint as ref: same
// split, identity and scalar optimizer state (a disagreement means the files
// were written by different iterations or different jobs).
func shardMatches(ref, sh *Shard) error {
	a, b := ref.State, sh.State
	switch {
	case sh.Shards != ref.Shards:
		return fmt.Errorf("checkpoint: shard %d was split %d-way, shard %d %d-way", ref.Shard, ref.Shards, sh.Shard, sh.Shards)
	case a.Scheme != b.Scheme || a.M != b.M || a.N != b.N || a.R != b.R || a.Dim != b.Dim || a.Seed != b.Seed:
		return fmt.Errorf("checkpoint: shard %d belongs to a different job than shard %d", sh.Shard, ref.Shard)
	case a.Completed != b.Completed:
		return fmt.Errorf("checkpoint: shard %d is at iteration %d, shard %d at %d (torn checkpoint)",
			sh.Shard, b.Completed, ref.Shard, a.Completed)
	case a.Opt.Kind != b.Opt.Kind || a.Opt.T != b.Opt.T || a.Opt.Theta != b.Opt.Theta:
		return fmt.Errorf("checkpoint: shard %d scalar optimizer state differs from shard %d", sh.Shard, ref.Shard)
	}
	return nil
}

// ShardPath is the conventional per-shard file name for a checkpoint at
// path: "<path>.shard<k>".
func ShardPath(path string, shard int) string {
	return fmt.Sprintf("%s.shard%d", path, shard)
}

// SaveShard writes one shard atomically to path (same tmp+fsync+rename
// protocol as Save).
func SaveShard(path string, sh *Shard) error {
	if sh == nil {
		return fmt.Errorf("checkpoint: nil shard")
	}
	sh.Format = CurrentFormat
	sh.State.Format = CurrentFormat
	return writeAtomic(path, sh)
}

// LoadShard reads one shard from path.
func LoadShard(path string) (*Shard, error) {
	var sh Shard
	if err := readGob(path, &sh); err != nil {
		return nil, err
	}
	if sh.Format != CurrentFormat {
		return nil, fmt.Errorf("checkpoint: unsupported shard format %d (want %d)", sh.Format, CurrentFormat)
	}
	return &sh, nil
}
