package checkpoint

import (
	"os"
	"path/filepath"
	"testing"

	"bcc/internal/optimize"
)

func sampleState() *State {
	return &State{
		Scheme: "bcc", M: 50, N: 50, R: 10, Dim: 100, Seed: 7,
		Completed: 42,
		Opt: optimize.State{
			Kind:  "nesterov",
			T:     42,
			Theta: 3.25,
			W:     []float64{1, 2, 3},
			WPrev: []float64{0.5, 1.5, 2.5},
		},
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.bin")
	in := sampleState()
	if err := Save(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.Scheme != in.Scheme || out.Completed != 42 || out.Opt.Theta != 3.25 {
		t.Fatalf("round trip lost fields: %+v", out)
	}
	for i, v := range in.Opt.W {
		if out.Opt.W[i] != v {
			t.Fatalf("weights differ at %d", i)
		}
	}
	for i, v := range in.Opt.WPrev {
		if out.Opt.WPrev[i] != v {
			t.Fatalf("wPrev differs at %d", i)
		}
	}
}

func TestSaveAtomicNoTmpLeftover(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.bin")
	if err := Save(path, sampleState()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temporary file left behind")
	}
}

func TestSaveOverwrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.bin")
	s := sampleState()
	if err := Save(path, s); err != nil {
		t.Fatal(err)
	}
	s.Completed = 99
	if err := Save(path, s); err != nil {
		t.Fatal(err)
	}
	out, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.Completed != 99 {
		t.Fatalf("overwrite lost: completed=%d", out.Completed)
	}
}

func TestLoadMissing(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.bin")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.bin")
	if err := os.WriteFile(path, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("corrupt file accepted")
	}
}

func TestSaveNil(t *testing.T) {
	if err := Save(filepath.Join(t.TempDir(), "x"), nil); err == nil {
		t.Fatal("nil state accepted")
	}
}

func TestMatches(t *testing.T) {
	s := sampleState()
	if err := s.Matches("bcc", 50, 50, 10, 100, 7); err != nil {
		t.Fatal(err)
	}
	if err := s.Matches("uncoded", 50, 50, 10, 100, 7); err == nil {
		t.Fatal("scheme mismatch accepted")
	}
	if err := s.Matches("bcc", 50, 51, 10, 100, 7); err == nil {
		t.Fatal("topology mismatch accepted")
	}
	if err := s.Matches("bcc", 50, 50, 10, 200, 7); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if err := s.Matches("bcc", 50, 50, 10, 100, 8); err == nil {
		t.Fatal("seed mismatch accepted")
	}
}
