// Package checkpoint persists and restores distributed-training state so a
// long run can survive master restarts. A checkpoint stores the optimizer
// snapshot (weights plus momentum state), the job topology it belongs to,
// and the completed-iteration count; restoring into a job rebuilt from the
// same Spec and seed resumes training bit-for-bit (verified by tests).
//
// Files are written atomically: serialize to <path>.tmp, fsync, rename.
package checkpoint

import (
	"encoding/gob"
	"fmt"
	"os"

	"bcc/internal/optimize"
)

// State is the on-disk checkpoint content.
type State struct {
	// Format versions the encoding; bump on incompatible changes.
	Format int
	// Scheme/M/N/R/Dim/Seed identify the job the checkpoint belongs to;
	// Restore validates them to catch topology mismatches early.
	Scheme string
	M      int
	N      int
	R      int
	Dim    int
	Seed   uint64
	// Completed is the number of finished iterations.
	Completed int
	// Opt is the full optimizer snapshot.
	Opt optimize.State
}

// CurrentFormat is the encoding version this package writes.
const CurrentFormat = 1

// Save writes the state atomically to path.
func Save(path string, s *State) error {
	if s == nil {
		return fmt.Errorf("checkpoint: nil state")
	}
	s.Format = CurrentFormat
	return writeAtomic(path, s)
}

// writeAtomic gob-encodes v to <path>.tmp, fsyncs and renames into place —
// the write protocol shared by full and per-shard checkpoints.
func writeAtomic(path string, v any) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	enc := gob.NewEncoder(f)
	if err := enc.Encode(v); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: encode: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	return nil
}

func readGob(path string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	if err := gob.NewDecoder(f).Decode(v); err != nil {
		return fmt.Errorf("checkpoint: decode: %w", err)
	}
	return nil
}

// Load reads a checkpoint from path.
func Load(path string) (*State, error) {
	var s State
	if err := readGob(path, &s); err != nil {
		return nil, err
	}
	if s.Format != CurrentFormat {
		return nil, fmt.Errorf("checkpoint: unsupported format %d (want %d)", s.Format, CurrentFormat)
	}
	return &s, nil
}

// Matches reports whether the checkpoint belongs to a job with the given
// topology, returning a descriptive error otherwise.
func (s *State) Matches(scheme string, m, n, r, dim int, seed uint64) error {
	switch {
	case s.Scheme != scheme:
		return fmt.Errorf("checkpoint: scheme %q != job scheme %q", s.Scheme, scheme)
	case s.M != m || s.N != n || s.R != r:
		return fmt.Errorf("checkpoint: topology (m=%d n=%d r=%d) != job (m=%d n=%d r=%d)",
			s.M, s.N, s.R, m, n, r)
	case s.Dim != dim:
		return fmt.Errorf("checkpoint: dim %d != job dim %d", s.Dim, dim)
	case s.Seed != seed:
		return fmt.Errorf("checkpoint: seed %d != job seed %d (placement would differ)", s.Seed, seed)
	}
	return nil
}
