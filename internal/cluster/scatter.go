package cluster

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"bcc/internal/coding"
	"bcc/internal/wire"
)

// The scatter data plane of the sharded master (see sharded.go for the
// compute side): instead of funnelling every reply through one master
// socket, each worker holds one connection per master shard and writes each
// reply's coordinate slices — cut at the shard map's chunk-aligned
// boundaries — directly to the owning shard's listener. The master's
// per-shard readers ingest and count their slices concurrently and assemble
// each worker's slices back into one full-width reply for the coordinator,
// so the engine's control plane (arrival order, counting, fault handling)
// is exactly the single-socket protocol while the bytes of the p-dimensional
// payloads enter through M parallel sockets with per-shard measured byte
// accounting.
//
// Slice frames are ordinary reply frames over the negotiated frame codec
// (gob or wire) carrying the worker's metadata plus each message's
// [lo, hi) slice. The worker applies the lossy payload transform once
// in-process — the same wire boundary the channel fabric uses — and the
// slice frames themselves travel raw64: a slice of a transformed vector is
// not the transform of the slice, so re-encoding per shard would corrupt
// values (topk) or double-quantize byte counts; shipping the transformed
// values dense keeps every decoded coordinate bit-identical to the
// single-socket runtimes at the cost of not realizing topk's wire-byte
// savings on the scatter plane (measured bytes are observations, never
// conformance inputs).
//
// The shard map (count + chunk-aligned bounds) is deterministic from the
// run's spec, so it is never shipped whole: workers and master derive it
// independently via shardBounds, and the handshake verifies the shard COUNT
// (Hello.Shards) like the codec parameters — a disagreement would land
// coordinates on the wrong shard.

// scatterSlot is one worker's reassembly state: slices arrive on M
// independent connections in no particular relative order, keyed by
// iteration until all M frames of an iteration are in.
type scatterSlot struct {
	mu      sync.Mutex
	pending map[int]*scatterPending
}

type scatterPending struct {
	compute float64
	msgs    []coding.Message
	got     int
}

// scatterFabric is the sharded master's TCP fabric: the embedded tcpFabric
// owns the primary connections (handshake, model broadcasts, wire totals,
// reader accounting) and the scatter side adds M shard listeners whose
// connections carry the reply slices.
type scatterFabric struct {
	*tcpFabric
	shardLns   []net.Listener
	shardConns []net.Conn
	shardIn    []atomic.Int64
	shardOut   []atomic.Int64
	bounds     []int
	dim        int
	pool       *BufferPool
	slots      []scatterSlot
	out        chan Reply
}

// ShardAddrs returns the shard listeners' addresses in shard order, for
// handing to workers (WorkerEnv.ShardAddrs, Assign.ShardPorts).
func (f *scatterFabric) ShardAddrs() []string {
	addrs := make([]string, len(f.shardLns))
	for s, ln := range f.shardLns {
		addrs[s] = ln.Addr().String()
	}
	return addrs
}

// ShardWireIn implements the shardWireCounter capability: measured ingress
// bytes per shard listener, counted at the connection layer.
func (f *scatterFabric) ShardWireIn() []int64 {
	in := make([]int64, len(f.shardIn))
	for s := range f.shardIn {
		in[s] = f.shardIn[s].Load()
	}
	return in
}

func (f *scatterFabric) Replies() <-chan Reply { return f.out }

// drainReaders extends the tcpFabric drain to the scatter side: assembled
// replies parked in the out channel are discarded (recycled to the pool)
// so no shard reader can wedge on a full channel while the master waits for
// the workers' clean close.
func (f *scatterFabric) drainReaders(timeout time.Duration) bool {
	done := make(chan struct{})
	go func() {
		f.readers.Wait()
		close(done)
	}()
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		select {
		case <-done:
			return true
		case rep := <-f.replies:
			_ = rep
		case rep := <-f.out:
			recycleMsgs(f.pool, rep.Msgs)
		case <-deadline.C:
			return false
		}
	}
}

func (f *scatterFabric) Close() error {
	for _, c := range f.shardConns {
		_ = c.Close()
	}
	for _, ln := range f.shardLns {
		_ = ln.Close()
	}
	return f.tcpFabric.Close()
}

// buf returns a full-width assembly buffer.
func (f *scatterFabric) buf() []float64 {
	if f.pool != nil {
		return f.pool.Get()
	}
	return make([]float64, f.dim)
}

// ingest merges one shard's slice frame into the worker's pending assembly
// and returns the fully assembled reply once the last shard's slices are in
// (ok=false until then). Metadata (compute time, message tags and units) is
// identical on every shard's frame; the first to arrive fixes it.
func (f *scatterFabric) ingest(shard int, rep Reply) (Reply, bool, error) {
	if rep.Worker < 0 || rep.Worker >= len(f.slots) {
		return Reply{}, false, fmt.Errorf("cluster: scatter frame from unknown worker %d", rep.Worker)
	}
	slot := &f.slots[rep.Worker]
	lo := f.bounds[shard]
	slot.mu.Lock()
	defer slot.mu.Unlock()
	if slot.pending == nil {
		slot.pending = make(map[int]*scatterPending)
	}
	p := slot.pending[rep.Iter]
	if p == nil {
		p = &scatterPending{compute: rep.Compute, msgs: make([]coding.Message, len(rep.Msgs))}
		for i, m := range rep.Msgs {
			p.msgs[i] = coding.Message{From: m.From, Tag: m.Tag, Units: m.Units}
		}
		slot.pending[rep.Iter] = p
	}
	if len(rep.Msgs) != len(p.msgs) {
		return Reply{}, false, fmt.Errorf("cluster: scatter shard %d sent %d messages for worker %d iter %d, shard map says %d",
			shard, len(rep.Msgs), rep.Worker, rep.Iter, len(p.msgs))
	}
	for i, m := range rep.Msgs {
		dst := &p.msgs[i]
		if len(m.Vec) > 0 {
			if dst.Vec == nil {
				dst.Vec = f.buf()
			}
			copy(dst.Vec[lo:lo+len(m.Vec)], m.Vec)
		}
		if len(m.Imag) > 0 {
			if dst.Imag == nil {
				dst.Imag = f.buf()
			}
			copy(dst.Imag[lo:lo+len(m.Imag)], m.Imag)
		}
	}
	p.got++
	if p.got < len(f.shardLns) {
		return Reply{}, false, nil
	}
	delete(slot.pending, rep.Iter)
	return Reply{Iter: rep.Iter, Worker: rep.Worker, Compute: p.compute, Msgs: p.msgs}, true, nil
}

// scatterCommPlane is the comm plane of the shard connections: raw64 at the
// run's chunk size (see the package comment — slice frames carry
// already-transformed values dense).
func scatterCommPlane(cp commPlane, dim int) (commPlane, error) {
	return CommOptions{Chunk: cp.pc.ChunkElems()}.resolve(dim)
}

// newScatterFabric wraps an accepted primary fabric with shard listeners and
// accepts the workers' shard connections: exactly one connection per (alive
// worker, shard), each handshaking with the worker's index and the agreed
// shard count. Must be called after the primary accept so every worker is
// known to be dialing.
func newScatterFabric(primary *tcpFabric, shardLns []net.Listener, n, alive int, timeout time.Duration, codecName string, pool *BufferPool, cp commPlane, dim, shards int) (*scatterFabric, error) {
	scp, err := scatterCommPlane(cp, dim)
	if err != nil {
		return nil, err
	}
	f := &scatterFabric{
		tcpFabric: primary,
		shardLns:  shardLns,
		shardIn:   make([]atomic.Int64, shards),
		shardOut:  make([]atomic.Int64, shards),
		bounds:    shardBounds(dim, shards, cp.pc.ChunkElems()),
		dim:       dim,
		pool:      pool,
		slots:     make([]scatterSlot, n),
		out:       make(chan Reply, alive*4+4),
	}
	for s, ln := range shardLns {
		for i := 0; i < alive; i++ {
			if tl, ok := ln.(interface{ SetDeadline(time.Time) error }); ok && timeout > 0 {
				if err := tl.SetDeadline(time.Now().Add(timeout)); err != nil {
					f.Close()
					return nil, err
				}
			}
			raw, err := ln.Accept()
			if err != nil {
				f.Close()
				return nil, fmt.Errorf("cluster: scatter shard %d accept %d/%d: %w", s, i, alive, err)
			}
			// Nested counters: the inner conn feeds the shard's own in/out
			// totals, the outer one the fabric-wide totals the engine samples.
			conn := CountConn(CountConn(raw, &f.shardIn[s], &f.shardOut[s]), &f.bytesIn, &f.bytesOut)
			codec, err := newFrameCodec(codecName, conn, nil, scp)
			if err != nil {
				conn.Close()
				f.Close()
				return nil, err
			}
			hello, err := codec.ReadHello()
			if err != nil {
				conn.Close()
				f.Close()
				return nil, fmt.Errorf("cluster: scatter shard %d handshake: %w", s, err)
			}
			if hello.Shards != shards {
				conn.Close()
				f.Close()
				return nil, fmt.Errorf("cluster: scatter shard %d handshake worker %d: shard count mismatch: worker %d, master %d",
					s, hello.Worker, hello.Shards, shards)
			}
			if hello.Worker < 0 || hello.Worker >= n {
				conn.Close()
				f.Close()
				return nil, fmt.Errorf("cluster: scatter shard %d handshake: worker index %d out of range", s, hello.Worker)
			}
			f.shardConns = append(f.shardConns, conn)
			f.readers.Add(1)
			go func(shard int, codec frameCodec) {
				defer f.readers.Done()
				for {
					rep, err := codec.ReadReply()
					if err != nil {
						return
					}
					full, ok, err := f.ingest(shard, rep)
					if err != nil {
						// Malformed slice frame: abandon this connection; the
						// iteration times out rather than decoding garbage.
						return
					}
					if ok {
						f.out <- full
					}
				}
			}(s, codec)
		}
	}
	return f, nil
}

// listenShards opens `shards` loopback listeners for the scatter plane.
func listenShards(shards int) ([]net.Listener, error) {
	lns := make([]net.Listener, 0, shards)
	for s := 0; s < shards; s++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range lns {
				l.Close()
			}
			return nil, fmt.Errorf("cluster: scatter shard %d listen: %w", s, err)
		}
		lns = append(lns, ln)
	}
	return lns, nil
}

// ServeMasterScatterPool is ServeMasterPool for a sharded master: the
// primary listener carries handshakes and model broadcasts, and shardLns
// (one per master shard, in shard order) receive the workers' scattered
// reply slices. n is the cluster size (worker indices are validated against
// it), alive the number of workers that will dial. Every worker must be
// given the shard listeners' addresses (Assign.ShardPorts /
// WorkerEnv.ShardAddrs) and the same shard count in its spec. The caller
// owns the listeners; Close on the returned fabric closes them.
func ServeMasterScatterPool(ln net.Listener, shardLns []net.Listener, n, alive int, timeout time.Duration, codecName string, pool *BufferPool, comm CommOptions, dim int) (Fabric, error) {
	cp, err := comm.resolve(dim)
	if err != nil {
		return nil, err
	}
	shards := len(shardLns)
	primary, err := acceptWorkers(ln, alive, timeout, codecName, pool, comm, dim, shards)
	if err != nil {
		return nil, err
	}
	fab, err := newScatterFabric(primary, shardLns, n, alive, timeout, codecName, pool, cp, dim, shards)
	if err != nil {
		primary.Close()
		return nil, err
	}
	return fab, nil
}

// dialShards opens the worker side of the scatter plane: one connection per
// shard address, each handshaking with the worker's identity and shard
// count. Returns the per-shard frame codecs and a closer.
func dialShards(addrs []string, env WorkerEnv, cp commPlane, dim int) ([]frameCodec, func(), error) {
	scp, err := scatterCommPlane(cp, dim)
	if err != nil {
		return nil, nil, err
	}
	conns := make([]net.Conn, 0, len(addrs))
	closeAll := func() {
		for _, c := range conns {
			c.Close()
		}
	}
	codecs := make([]frameCodec, 0, len(addrs))
	for s, addr := range addrs {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			closeAll()
			return nil, nil, fmt.Errorf("cluster: worker %d dial shard %d: %w", env.Index, s, err)
		}
		conns = append(conns, conn)
		codec, err := newFrameCodec(env.Codec, conn, nil, scp)
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		h := scp.hello(env.Index)
		h.Shards = len(addrs)
		if err := codec.WriteHello(h); err != nil {
			closeAll()
			return nil, nil, fmt.Errorf("cluster: worker %d shard %d hello: %w", env.Index, s, err)
		}
		codecs = append(codecs, codec)
	}
	return codecs, closeAll, nil
}

// scatterSend returns the worker's reply path under the scatter plane: apply
// the lossy transform once in-process (coder is the run comm plane's payload
// coder, nil for raw64), then write each shard its slice of every message.
// The slice headers repeat the reply metadata so each shard frame is
// self-contained. Payload buffers are recycled once every slice is on the
// wire.
func scatterSend(codecs []frameCodec, bounds []int, coder *wire.VecCoder, bufs *BufferPool) func(Reply) error {
	// Reusable per-shard message scratch; the backing arrays grow once.
	scratch := make([][]coding.Message, len(codecs))
	return func(r Reply) error {
		applyReplyCodec(coder, r.Msgs)
		var firstErr error
		for s, codec := range codecs {
			lo, hi := bounds[s], bounds[s+1]
			msgs := scratch[s][:0]
			for _, m := range r.Msgs {
				sm := coding.Message{From: m.From, Tag: m.Tag, Units: m.Units}
				if m.Vec != nil {
					sm.Vec = m.Vec[lo:hi]
				}
				if m.Imag != nil {
					sm.Imag = m.Imag[lo:hi]
				}
				msgs = append(msgs, sm)
			}
			scratch[s] = msgs
			if err := codec.WriteReply(Reply{Iter: r.Iter, Worker: r.Worker, Compute: r.Compute, Msgs: msgs}); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("cluster: worker %d scatter to shard %d: %w", r.Worker, s, err)
			}
		}
		recycleMsgs(bufs, r.Msgs)
		return firstErr
	}
}
