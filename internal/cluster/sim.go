package cluster

import (
	"fmt"
	"math"

	"bcc/internal/coding"
	"bcc/internal/des"
	"bcc/internal/trace"
)

// RunSim executes the training run on the discrete-event simulator: worker
// latencies are drawn from cfg.Latency, message arrivals become events on a
// virtual clock, and the master advances the optimizer the moment the
// decoder reports decodability — exactly the semantics of the live runtime,
// but deterministic and orders of magnitude faster. This is the runtime the
// experiment harness uses to regenerate the paper's figures.
func RunSim(cfg *Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	lat := cfg.latency()
	dead := cfg.deadSet()
	drops := cfg.newDropper()
	_, n, _ := cfg.Plan.Params()
	points := workerPoints(cfg.Plan, cfg.Units)

	iters := make([]IterStats, 0, cfg.Iterations)

	type arrival struct {
		at      float64
		worker  int
		bcast   float64
		compute float64
		units   float64
		msgs    []coding.Message
	}

	for iter := 0; iter < cfg.Iterations; iter++ {
		q := cfg.Opt.Query()
		dec := cfg.Plan.NewDecoder()
		st := IterStats{Iter: iter, Loss: math.NaN()}

		// Phase 1: simulate every alive worker's pipeline on the virtual
		// clock. The DES fires arrivals in time order, so `arrivals` comes
		// out sorted.
		var sched des.Scheduler
		arrivals := make([]arrival, 0, n)
		for w := 0; w < n; w++ {
			if dead[w] {
				continue
			}
			if drops.drop() {
				continue // transmission lost in the network this iteration
			}
			bcast := lat.Broadcast(w, iter)
			comp := lat.Compute(w, iter, points[w])
			parts := computeParts(cfg, w, q)
			msgs := cfg.Plan.Encode(w, parts)
			if len(msgs) == 0 {
				continue // worker holds no data (uncoded with n > m)
			}
			var units float64
			for _, msg := range msgs {
				units += msg.Units
			}
			up := lat.Upload(w, iter, units)
			arr := arrival{worker: w, bcast: bcast, compute: comp, units: units, msgs: msgs}
			sched.After(bcast+comp+up, func() {
				arr.at = sched.Now()
				arrivals = append(arrivals, arr)
			})
		}
		sched.Run()

		// Phase 2: drain the master's receive queue in arrival order. With
		// a positive ingress cost the master is busy IngressPerUnit seconds
		// per unit, so messages queue behind each other; with zero cost the
		// drain is instantaneous at the arrival time.
		var wall float64
		var freeAt float64
		decoded := false
		var spans []trace.WorkerSpan
		for _, arr := range arrivals {
			start := arr.at
			if start < freeAt {
				start = freeAt
			}
			done := start + cfg.IngressPerUnit*arr.units
			freeAt = done
			counted := !decoded
			if counted {
				if arr.compute > st.Compute {
					st.Compute = arr.compute
				}
				for _, msg := range arr.msgs {
					st.Bytes += messageBytes(msg)
					dec.Offer(msg)
				}
				if dec.Decodable() {
					wall = done
					decoded = true
				}
			}
			if cfg.Trace != nil {
				spans = append(spans, trace.WorkerSpan{
					Worker:     arr.worker,
					BcastEnd:   arr.bcast,
					ComputeEnd: arr.bcast + arr.compute,
					Arrive:     arr.at,
					DrainStart: start,
					DrainEnd:   done,
					Counted:    counted,
					Units:      arr.units,
				})
				continue
			}
			if decoded {
				break
			}
		}
		if !decoded {
			return nil, fmt.Errorf("%w (iteration %d, %d arrivals)", ErrStalled, iter, len(arrivals))
		}
		if cfg.Trace != nil {
			cfg.Trace.Add(trace.Iteration{Iter: iter, DecodeTime: wall, Spans: spans})
		}
		st.Wall = wall
		st.Comm = st.Wall - st.Compute
		if err := finishIteration(cfg, dec, &st); err != nil {
			return nil, err
		}
		if cfg.LossEvery > 0 && iter%cfg.LossEvery == 0 {
			st.Loss = fullLoss(cfg)
		}
		iters = append(iters, st)
	}
	finalW := append([]float64(nil), cfg.Opt.Iterate()...)
	return summarize(finalW, iters), nil
}

func fullLoss(cfg *Config) float64 {
	rows := make([]int, cfg.Model.NumExamples())
	for i := range rows {
		rows[i] = i
	}
	return cfg.Model.SubsetLoss(cfg.Opt.Iterate(), rows) / float64(cfg.Model.NumExamples())
}
