package cluster

import (
	"context"
	"slices"

	"bcc/internal/coding"
	"bcc/internal/faults"
	"bcc/internal/trace"
	"bcc/internal/wire"
)

// The sim transport runs the master/worker timing model on a virtual clock:
// worker latencies are drawn from cfg.Latency, arrivals are ordered in
// simulated time exactly as the discrete-event scheduler would fire them
// (time order, ties broken by worker index — each worker contributes one
// upload event per iteration, so a stable sort realizes the identical
// order), and the engine advances the optimizer the moment the decoder
// reports decodability — exactly the semantics of the live transports, but
// deterministic and orders of magnitude faster. This is the transport the
// experiment harness uses to regenerate the paper's figures.
//
// The transport owns the iteration's scratch memory: per-worker partial-
// gradient buffers, per-worker message slices, and the arrivals array are
// all reused across iterations, and message payloads come from the run's
// BufferPool (the engine returns them after each decode). In steady state a
// simulated iteration therefore allocates nothing — the property the
// allocation-regression tests pin.
//
// Pipelined mode needs no special handling here: cancelling stale work the
// instant the next broadcast reaches a worker means every round starts with
// all workers idle, which is precisely what simulating each iteration as an
// isolated round already models. Per-iteration stats therefore coincide by
// construction; only Result.TotalElapsed differs (barrier rounds also wait
// for the straggler tail to finish draining).

// RunSim executes the training run on the discrete-event simulator.
func RunSim(cfg *Config) (*Result, error) {
	return RunSimContext(context.Background(), cfg)
}

// RunSimContext is RunSim bounded by a context: cancellation returns the
// completed iterations' partial Result alongside ctx.Err(). The simulator
// checks the context between workers while simulating an iteration, so even
// a single huge round is cancellable.
func RunSimContext(ctx context.Context, cfg *Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return runEngine(ctx, cfg, newSimTransport(cfg))
}

type simTransport struct {
	cfg    *Config
	pool   *BufferPool
	lat    Latency
	dead   map[int]bool
	drops  *dropper
	faults *faults.Plan
	points []int
	n      int
	coder  *wire.VecCoder // lossy payload transform (nil for raw64)
	frac   float64        // payload byte width relative to raw64
	// rp is non-nil on Retunable plans (the nested family): each
	// iteration's worker pipelines then use the ACTIVE level's assignment
	// prefix and point count, mirroring what a live worker derives from the
	// broadcast's level. prefPoints[w][k] is the point count of worker w's
	// first k assigned units.
	rp         coding.Retunable
	prefPoints [][]int

	// Reusable per-iteration scratch (the transport is driven by one
	// engine goroutine, strictly one iteration at a time).
	parts    [][]float64        // partial-gradient buffers, max assignment size
	msgs     [][]coding.Message // per-worker encoded messages, backing reused
	arrivals []simArrival
	src      simSource
}

func newSimTransport(cfg *Config) *simTransport {
	_, n, _ := cfg.Plan.Params()
	cp := cfg.comm()
	rp, _ := cfg.Plan.(coding.Retunable)
	var prefPoints [][]int
	if rp != nil {
		prefPoints = prefixPoints(cfg.Plan.Assignments(), cfg.Units)
	}
	return &simTransport{
		rp:         rp,
		prefPoints: prefPoints,
		cfg:        cfg,
		pool:       cfg.buffers(),
		lat:        withFaultSlowdowns(cfg.latency(), cfg.Faults),
		dead:       cfg.deadSet(),
		drops:      cfg.newDropper(),
		faults:     cfg.Faults,
		points:     workerPoints(cfg.Plan, cfg.Units),
		n:          n,
		coder:      cp.newCoder(),
		frac:       cp.frac,
		msgs:       make([][]coding.Message, n),
	}
}

func (t *simTransport) Traits() Traits { return Traits{Virtual: true, SyncQuery: true} }
func (t *simTransport) Shutdown()      {}

// simArrival is one worker transmission with its modelled timeline.
type simArrival struct {
	at      float64 // when the upload reached the master
	worker  int
	bcast   float64
	compute float64
	units   float64
	msgs    []coding.Message
	// drain bracket: the master's ingress occupancy for this transmission.
	drainStart, drainEnd float64
}

// cmpArrival orders arrivals in simulated time with ties broken by worker
// index — the order the DES event heap would fire them, since each worker's
// single upload event is scheduled in index order.
func cmpArrival(a, b simArrival) int {
	switch {
	case a.at < b.at:
		return -1
	case a.at > b.at:
		return 1
	default:
		return a.worker - b.worker
	}
}

// Broadcast simulates the whole iteration's worker pipelines up front:
// arrivals are ordered in virtual time (ties by worker index), then the
// master's receive queue is drained in arrival order — with a positive
// ingress cost the master is busy IngressPerUnit seconds per unit, so
// messages queue behind each other; with zero cost the drain is
// instantaneous at the arrival time.
func (t *simTransport) Broadcast(ctx context.Context, iter int, query []float64) (ArrivalSource, error) {
	lost := drawDrops(t.drops, t.dead, t.n)
	// On Retunable plans the iteration runs at the level the engine's
	// controller just activated: workers process only the active prefix of
	// their assignment, exactly like a live worker told the level in its
	// ModelUpdate.
	level := 0
	if t.rp != nil {
		level = t.rp.Level()
	}
	t.arrivals = t.arrivals[:0]
	for w := 0; w < t.n; w++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if t.dead[w] {
			continue
		}
		if !t.faults.Active(w, iter) {
			continue // crashed this iteration: no compute, no transmission
		}
		if lost[w] || t.faults.MasterDrop(w, iter) {
			continue // transmission lost in the network this iteration
		}
		assign, pts := t.cfg.Plan.Assignments()[w], t.points[w]
		if level > 0 {
			assign, pts = assign[:level], t.prefPoints[w][level]
		}
		bcast := t.lat.Broadcast(w, iter)
		comp := t.lat.Compute(w, iter, pts)
		t.parts = gradientPartsInto(t.cfg.Model, t.cfg.Units, assign,
			query, t.cfg.ComputeParallelism, t.parts)
		t.msgs[w] = t.cfg.Plan.EncodeInto(t.msgs[w][:0], w, t.parts, t.pool)
		msgs := t.msgs[w]
		if len(msgs) == 0 {
			continue // worker holds no data (uncoded with n > m)
		}
		// The wire boundary of the simulated runtime: the canonical lossy
		// transform is applied here, exactly where a TCP worker's serializer
		// would apply it, so decoded values match the socket runtimes bit
		// for bit.
		applyReplyCodec(t.coder, msgs)
		var units float64
		for _, msg := range msgs {
			units += msg.Units
		}
		// Upload time is charged per transmitted byte: compressed payloads
		// scale the unit load by the codec's byte fraction.
		up := t.lat.Upload(w, iter, units*t.frac)
		t.arrivals = append(t.arrivals, simArrival{
			at:     bcast + comp + up,
			worker: w,
			bcast:  bcast, compute: comp, units: units,
			msgs: msgs,
		})
	}
	slices.SortFunc(t.arrivals, cmpArrival)

	var freeAt float64
	for i := range t.arrivals {
		start := t.arrivals[i].at
		if start < freeAt {
			start = freeAt
		}
		done := start + t.cfg.IngressPerUnit*t.arrivals[i].units*t.frac
		freeAt = done
		t.arrivals[i].drainStart = start
		t.arrivals[i].drainEnd = done
	}
	t.src = simSource{t: t, arrivals: t.arrivals}
	return &t.src, nil
}

type simSource struct {
	t        *simTransport
	arrivals []simArrival
	next     int
	wall     float64
}

func (s *simSource) Next() (Arrival, bool, error) {
	if s.next >= len(s.arrivals) {
		return Arrival{}, false, nil
	}
	sa := s.arrivals[s.next]
	s.next++
	s.wall = sa.drainEnd
	arr := Arrival{Worker: sa.worker, Compute: sa.compute, Units: sa.units, Msgs: sa.msgs}
	if s.t.cfg.Trace != nil {
		arr.Span = &trace.WorkerSpan{
			Worker:     sa.worker,
			BcastEnd:   sa.bcast,
			ComputeEnd: sa.bcast + sa.compute,
			Arrive:     sa.at,
			DrainStart: sa.drainStart,
			DrainEnd:   sa.drainEnd,
			Units:      sa.units,
		}
	}
	return arr, true, nil
}

func (s *simSource) Wall() float64 { return s.wall }

// RoundEnd is when the last transmission finishes draining — the instant
// the master's barrier would release in non-pipelined mode.
func (s *simSource) RoundEnd() float64 {
	if len(s.arrivals) == 0 {
		return 0
	}
	return s.arrivals[len(s.arrivals)-1].drainEnd
}

// Finish recycles the payload buffers of the arrivals the engine never
// consumed (the post-decode straggler tail in non-tracing runs); the engine
// itself returns the consumed ones after the decode.
func (s *simSource) Finish() {
	for _, sa := range s.arrivals[s.next:] {
		recycleMsgs(s.t.pool, sa.msgs)
	}
	s.next = len(s.arrivals)
}
