package cluster

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"bcc/internal/faults"
	"bcc/internal/vecmath"
)

// The scenario conformance suite: every named fault scenario must produce
// bit-identical iterates and identical fault-event traces on the sim, live
// and tcp runtimes, in both barrier and pipelined mode. The suite leans on
// the same staggered-latency construction as the cross-runtime equivalence
// tests — worker w's (equal-load) computation finishes (w+1) virtual
// seconds after broadcast, so arrival order is fixed — and on the fault
// plan being a pure function of its seed, so all runtimes consult an
// identical schedule. The scenario library's slowdown factors keep the
// slowed arrival times distinct from every unslowed one (products of
// distinct staggers with factors 6 or 8 never collide with staggers 1..n),
// so the realized order stays deterministic on the live runtimes too.

// scenarioTopology is the shared conformance run shape: bcc with 2 batches
// over 8 workers (high redundancy, decode from any batch-covering prefix),
// which survives every library scenario's blast radius.
const (
	scenarioM, scenarioN, scenarioR = 8, 8, 4
	scenarioIters                   = 5
	scenarioSeed                    = 401
	// scenarioScale maps one virtual stagger second to 10 ms of real time —
	// wide enough for scheduler jitter, short enough that the slowed-worker
	// scenarios (factor up to 8 on stagger up to 8) stay test-sized.
	scenarioScale = 10e-3
)

// scenarioRun is one runtime's observation of a scenario: the result plus
// the fault-event trace seen by the observer.
type scenarioRun struct {
	res    *Result
	events []string
}

// runScenario executes the named scenario on one runtime. run is nil for
// the sim reference.
func runScenario(t *testing.T, name string, pipelined bool, run func(cfg *Config) (*Result, error)) scenarioRun {
	t.Helper()
	return runScenarioComm(t, name, pipelined, CommOptions{}, run)
}

// runScenarioComm is runScenario with an explicit payload-codec
// configuration — the codec axis of the conformance matrix.
func runScenarioComm(t *testing.T, name string, pipelined bool, comm CommOptions, run func(cfg *Config) (*Result, error)) scenarioRun {
	t.Helper()
	return runScenarioCfg(t, name, pipelined, comm, nil, run)
}

// runScenarioCfg is the fully general scenario runner: mut, if non-nil, may
// adjust the built Config before the run (the sharded-master conformance
// suite sets MasterShards through it).
func runScenarioCfg(t *testing.T, name string, pipelined bool, comm CommOptions, mut func(*Config), run func(cfg *Config) (*Result, error)) scenarioRun {
	t.Helper()
	plan, err := faults.Scenario(name, scenarioN, 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg, _ := buildRun(t, "bcc", scenarioM, scenarioN, scenarioR, scenarioIters, scenarioSeed,
		staggered(scenarioN, 4*scenarioR))
	cfg.Faults = plan
	cfg.Pipelined = pipelined
	cfg.Comm = comm
	// The conformance matrix runs with decode parallelism on: every runtime
	// must still match the sim reference (and the golden traces) exactly
	// with the knob set. At this suite's small dimension the Shard cutoff
	// keeps the fold inline, so what this pins is the knob's cross-runtime
	// plumbing being a pure no-op on results; the REAL fan-out's
	// bit-exactness is pinned by TestDecodeParallelismBitExact (dim 1500)
	// and the coding-level tests (dim 2048). ComputeParallelism stays
	// serial here only because worker-side fan-out adds real compute-time
	// jitter to the staggered-arrival construction on loaded machines; its
	// bit-exactness is pinned by the dedicated TestComputeParallelism*
	// tests.
	cfg.DecodeParallelism = 2
	if mut != nil {
		mut(cfg)
	}
	var events []string
	cfg.Observer = ObserverFuncs{Fault: func(ev faults.Event) {
		events = append(events, ev.String())
	}}
	if run == nil {
		run = RunSim
	}
	res, err := run(cfg)
	if err != nil {
		t.Fatalf("scenario %s: %v", name, err)
	}
	return scenarioRun{res: res, events: events}
}

// scenarioRuntimes lists the runtimes under conformance; sim is the
// reference implementation.
func scenarioRuntimes() []engineRuntime {
	opts := func(tcp bool, codec string) LiveOptions {
		return LiveOptions{TimeScale: scenarioScale, Timeout: 60 * time.Second, TCP: tcp, Codec: codec}
	}
	return []engineRuntime{
		{"live", func(cfg *Config) (*Result, error) { return RunLive(cfg, opts(false, "")) }},
		{"tcp-wire", func(cfg *Config) (*Result, error) { return RunLive(cfg, opts(true, "wire")) }},
	}
}

// TestScenarioConformance is the tentpole suite: for every named scenario,
// in barrier and pipelined mode, the live and tcp runtimes must reproduce
// the sim reference exactly — per-iteration recovery thresholds, comm
// loads, payload bytes, gradient norms, bit-identical final weights and an
// identical fault-event trace.
func TestScenarioConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("staggered live runs sleep real time")
	}
	for _, name := range faults.Names() {
		for _, pipelined := range []bool{false, true} {
			name, pipelined := name, pipelined
			mode := "barrier"
			if pipelined {
				mode = "pipelined"
			}
			t.Run(name+"/"+mode, func(t *testing.T) {
				t.Parallel()
				ref := runScenario(t, name, pipelined, nil)
				if len(ref.res.Iters) != scenarioIters {
					t.Fatalf("sim completed %d iterations, want %d", len(ref.res.Iters), scenarioIters)
				}
				for _, rt := range scenarioRuntimes() {
					got := runScenario(t, name, pipelined, rt.run)
					if len(got.res.Iters) != len(ref.res.Iters) {
						t.Fatalf("%s completed %d iterations, sim %d", rt.name, len(got.res.Iters), len(ref.res.Iters))
					}
					for i, it := range got.res.Iters {
						want := ref.res.Iters[i]
						if it.WorkersHeard != want.WorkersHeard || it.Units != want.Units ||
							it.Bytes != want.Bytes || it.GradNorm != want.GradNorm {
							t.Errorf("%s iter %d: (K=%d units=%v bytes=%d |g|=%v), sim (K=%d units=%v bytes=%d |g|=%v)",
								rt.name, i, it.WorkersHeard, it.Units, it.Bytes, it.GradNorm,
								want.WorkersHeard, want.Units, want.Bytes, want.GradNorm)
						}
					}
					if d := vecmath.MaxAbsDiff(got.res.FinalW, ref.res.FinalW); d != 0 {
						t.Errorf("%s final weights differ from sim by %v", rt.name, d)
					}
					if gotTr, wantTr := strings.Join(got.events, "\n"), strings.Join(ref.events, "\n"); gotTr != wantTr {
						t.Errorf("%s fault-event trace:\n%s\nsim saw:\n%s", rt.name, gotTr, wantTr)
					}
				}
			})
		}
	}
}

// TestScenarioFaultsPerturbTraining sanity-checks that the fault machinery
// actually bites: relative to the steady baseline, each disruptive scenario
// must change SOME observable of the sim run (recovery thresholds, counted
// worker sets or event traces) while still training to the same optimum
// tolerance as an unfaulted run.
func TestScenarioFaultsPerturbTraining(t *testing.T) {
	steady := runScenario(t, "steady", false, nil)
	if len(steady.events) != 0 {
		t.Fatalf("steady scenario emitted events: %v", steady.events)
	}
	for _, name := range []string{"flaky-tail", "rolling-restart", "partition", "slow-decile"} {
		got := runScenario(t, name, false, nil)
		if len(got.events) == 0 {
			t.Errorf("scenario %s emitted no fault events", name)
		}
		// Tail slowdowns may leave the decode prefix untouched (that is the
		// point of the redundancy) but then must still stretch the barrier's
		// tail drain, i.e. the end-to-end elapsed time.
		same := got.res.TotalElapsed == steady.res.TotalElapsed
		for i, it := range got.res.Iters {
			ref := steady.res.Iters[i]
			if it.WorkersHeard != ref.WorkersHeard || it.Units != ref.Units || it.Wall != ref.Wall {
				same = false
				break
			}
		}
		if same {
			t.Errorf("scenario %s left every observable identical to steady", name)
		}
	}
}

// TestScenarioBelowThresholdDegrades pins the explicit degradation
// contract on all three runtimes: when the fault plan crashes the cluster
// below the scheme's decodable minimum, the run must fail fast with
// ErrBelowThreshold (which also satisfies errors.Is(err, ErrStalled)),
// keep the completed iterations as a partial Result, fire OnRunEnd with
// it, and emit a KindDegraded fault event — instead of wedging the
// transport until its timeout.
func TestScenarioBelowThresholdDegrades(t *testing.T) {
	const crashAt = 2
	liveOpts := func(tcp bool) LiveOptions {
		return LiveOptions{TimeScale: 1e-6, Timeout: 30 * time.Second, TCP: tcp}
	}
	runtimes := []engineRuntime{
		{"sim", RunSim},
		{"live", func(cfg *Config) (*Result, error) { return RunLive(cfg, liveOpts(false)) }},
		{"tcp", func(cfg *Config) (*Result, error) { return RunLive(cfg, liveOpts(true)) }},
	}
	for _, rt := range runtimes {
		t.Run(rt.name, func(t *testing.T) {
			cfg, _ := buildRun(t, "bcc", 8, 8, 4, 6, 402, Zero{})
			// Crash all but one worker at crashAt: bcc with 2 batches cannot
			// possibly decode from a single worker.
			plan := &faults.Plan{N: 8}
			for w := 0; w < 7; w++ {
				plan.Crashes = append(plan.Crashes, faults.Crash{Worker: w, At: crashAt})
			}
			cfg.Faults = plan
			degradedSeen := false
			var end *Result
			cfg.Observer = ObserverFuncs{
				Fault:  func(ev faults.Event) { degradedSeen = degradedSeen || ev.Kind == faults.KindDegraded },
				RunEnd: func(r *Result) { end = r },
			}
			start := time.Now()
			res, err := rt.run(cfg)
			if !errors.Is(err, ErrBelowThreshold) {
				t.Fatalf("err = %v, want ErrBelowThreshold", err)
			}
			if !errors.Is(err, ErrStalled) {
				t.Fatalf("ErrBelowThreshold must wrap ErrStalled; err = %v", err)
			}
			if res == nil || len(res.Iters) != crashAt {
				t.Fatalf("partial result has %v iterations, want %d", res, crashAt)
			}
			if end != res {
				t.Fatalf("OnRunEnd saw %p, run returned %p", end, res)
			}
			if !degradedSeen {
				t.Fatal("no KindDegraded fault event reached the observer")
			}
			if elapsed := time.Since(start); elapsed > 10*time.Second {
				t.Fatalf("degradation was not fail-fast: took %v", elapsed)
			}
		})
	}
}

// TestScenarioStallEmitsDegradedSignal covers the other degradation arm:
// an unplanned stall (random DropProb loss on a zero-redundancy scheme) is
// detected after the fact and still signals the observer with KindDegraded
// before returning ErrStalled.
func TestScenarioStallEmitsDegradedSignal(t *testing.T) {
	cfg, _ := buildRun(t, "uncoded", 12, 12, 1, 50, 403, Zero{})
	cfg.DropProb = 0.3
	cfg.DropSeed = 10
	degradedSeen := false
	cfg.Observer = ObserverFuncs{Fault: func(ev faults.Event) {
		degradedSeen = degradedSeen || ev.Kind == faults.KindDegraded
	}}
	_, err := RunSim(cfg)
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("expected ErrStalled, got %v", err)
	}
	if errors.Is(err, ErrBelowThreshold) {
		t.Fatalf("random drops are not plan-predictable; err %v must not claim fail-fast", err)
	}
	if !degradedSeen {
		t.Fatal("stall did not emit a KindDegraded event")
	}
}

// TestScenarioPlanWorkerCountValidated pins Config.validate's plan/cluster
// size agreement check.
func TestScenarioPlanWorkerCountValidated(t *testing.T) {
	cfg, _ := buildRun(t, "bcc", 8, 8, 4, 2, 404, Zero{})
	cfg.Faults = &faults.Plan{N: 4}
	_, err := RunSim(cfg)
	if err == nil || !strings.Contains(err.Error(), "fault plan built for 4 workers") {
		t.Fatalf("mismatched plan size accepted: %v", err)
	}
	cfg.Faults = &faults.Plan{N: 8, Crashes: []faults.Crash{{Worker: 9, At: 0}}}
	if _, err := RunSim(cfg); err == nil {
		t.Fatal("invalid plan rule accepted")
	}
}

// TestScenarioCrashedWorkerComputeExcluded checks the worker-state
// accounting end to end on the sim runtime: while worker 0 (the only
// stagger-1 worker) is crashed, the realized recovery set shifts and its
// compute time never enters the iteration stats.
func TestScenarioCrashedWorkerComputeExcluded(t *testing.T) {
	mk := func(plan *faults.Plan) *Result {
		cfg, _ := buildRun(t, "bcc", 8, 8, 4, 4, 405, staggered(8, 16))
		cfg.Faults = plan
		res, err := RunSim(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := mk(nil)
	crashed := mk(&faults.Plan{N: 8, Crashes: []faults.Crash{{Worker: 0, At: 1, RestartAfter: 2}}})
	for i := 1; i < 3; i++ {
		// Worker 0 arrives first in the baseline (stagger 1); with it down,
		// the decode prefix must shift to later (slower) arrivals.
		if crashed.Iters[i].Wall <= base.Iters[i].Wall {
			t.Fatalf("iter %d: crashed-run wall %v not above baseline %v",
				i, crashed.Iters[i].Wall, base.Iters[i].Wall)
		}
	}
	for _, i := range []int{0, 3} {
		a, b := crashed.Iters[i], base.Iters[i]
		// NaN Loss sentinels compare unequal; neutralize them first.
		a.Loss, b.Loss = 0, 0
		if a != b {
			t.Fatalf("iter %d (worker 0 up): stats %+v differ from baseline %+v",
				i, crashed.Iters[i], base.Iters[i])
		}
	}
}

// TestScenarioSpecPlumbing drives a named scenario through the public
// Spec/Job path on the sim runtime and checks it matches the directly
// configured cluster run — the core wiring test.
func TestScenarioSpecPlumbing(t *testing.T) {
	// Direct: build the same plan core would derive.
	plan, err := faults.Scenario("rolling-restart", 8, 77)
	if err != nil {
		t.Fatal(err)
	}
	cfg, _ := buildRun(t, "bcc", 8, 8, 4, 6, 406, Zero{})
	cfg.Faults = plan
	if _, err := RunSim(cfg); err != nil {
		t.Fatalf("rolling-restart under zero latency: %v", err)
	}
	// The event stream must be identical for a re-run (determinism through
	// the whole Config path).
	collect := func() []string {
		cfg, _ := buildRun(t, "bcc", 8, 8, 4, 6, 406, Zero{})
		cfg.Faults = plan
		var evs []string
		cfg.Observer = ObserverFuncs{Fault: func(ev faults.Event) { evs = append(evs, ev.String()) }}
		if _, err := RunSim(cfg); err != nil {
			t.Fatal(err)
		}
		return evs
	}
	a, b := collect(), collect()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("fault traces differ between identical runs:\n%v\n%v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("rolling-restart emitted no events in 6 iterations")
	}
}
