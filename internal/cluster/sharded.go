package cluster

import (
	"fmt"
	"time"

	"bcc/internal/coding"
	"bcc/internal/optimize"
	"bcc/internal/vecmath"
)

// The sharded master data plane: the p-dimensional model is partitioned
// coordinate-wise into Config.MasterShards contiguous slices, each owned by
// one master shard that independently decodes its slice (via
// coding.SliceDecoder), applies the optimizer update on its slice (via
// optimize.SliceUpdater) and accounts its slice's bytes — while a thin
// coordinator (the engine loop) keeps the O(n) control plane centralized:
// arrival counting, threshold/MinResponders decisions, fault bookkeeping and
// Observer callbacks.
//
// Slice-ownership rules:
//
//   - Shard boundaries are contiguous, fixed for the whole run, and aligned
//     to the comm plane's wire chunk size (CommOptions.Chunk, default 512
//     elements), so a shard's slice is always a whole number of wire chunks
//     (except the last, which takes the remainder). Chunk alignment makes
//     the same boundaries usable as scatter boundaries on the wire (see
//     scatter.go).
//   - A shard writes ONLY grad[lo:hi] and the optimizer state of
//     coordinates [lo, hi); the coordinator owns everything else. Shards
//     share the iteration's decoder read-only — DecodeSliceInto over
//     disjoint ranges is safe by the SliceDecoder contract.
//   - The gradient norm is a sequential reduction over the full vector, so
//     the coordinator computes it serially after the shards join; the
//     optimizer's scalar state advances once per iteration via FinishStep,
//     also on the coordinator.
//
// Every per-element operation runs in the same order as the unsharded path
// (slot-order slice folds, elementwise scale and update, serial norm), so a
// sharded run is bit-for-bit identical to the unsharded engine for every
// scheme, runtime and shard count. Schemes whose decoder does not implement
// SliceDecoder, or optimizers without SliceUpdater, fall back to the serial
// finishIteration — documented, never an error.

// ShardStats are one master shard's cumulative counters over a run,
// surfaced through ShardObserver after every iteration (and in
// Result.Shards at the end) so shard imbalance is visible without a
// profiler.
type ShardStats struct {
	// Shard is the shard index in [0, MasterShards).
	Shard int `json:"shard"`
	// Lo and Hi are the shard's coordinate range [Lo, Hi).
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Iters counts iterations this shard has decoded.
	Iters int `json:"iters"`
	// DecodeNs is cumulative wall time the shard spent decoding, scaling and
	// updating its slice, in nanoseconds.
	DecodeNs int64 `json:"decode_ns"`
	// SliceBytesIn counts payload bytes attributed to this shard's slice: in
	// distributed scatter mode the measured wire bytes of the shard's
	// listener, otherwise the slice's width-proportional share of the
	// modelled iteration bytes.
	SliceBytesIn int64 `json:"slice_bytes_in"`
	// QueueDepth is the shard's pending-work depth at the last snapshot
	// (0 or 1 for in-process shards, which are dispatched synchronously).
	QueueDepth int `json:"queue_depth"`
}

// ShardObserver is the optional Observer capability for sharded runs: after
// each iteration the engine passes the cumulative per-shard stats. The slice
// is owned by the engine and valid only during the callback — copy it to
// retain. Only consulted when Config.MasterShards > 1.
type ShardObserver interface {
	OnShards(stats []ShardStats)
}

// ShardMap returns the master shard partition this Config's engine and
// scatter plane derive: MasterShards+1 boundaries cutting [0, Model.Dim())
// at wire-chunk multiples, shard s owning [map[s], map[s+1]). Callers that
// persist or transport per-slice state (sharded checkpoints, external
// shard processes) use this to stay aligned with the engine's ownership —
// the map is a pure function of (Dim, MasterShards, chunk), so every
// process derives the same one.
func (c *Config) ShardMap() []int {
	chunk := c.comm().pc.ChunkElems()
	shards := effectiveShards(c.Model.Dim(), c.MasterShards, chunk)
	return shardBounds(c.Model.Dim(), shards, chunk)
}

// effectiveShards clamps a configured shard count to the number of wire
// chunks the model actually splits into: more shards than chunks would only
// produce empty tail shards, whose goroutines, data listeners and leased
// ports are pure waste. Clamping is bit-compatible — shardBounds assigns
// the surplus shards empty tail ranges, so the non-empty prefix boundaries
// are identical either way. Every consumer of a shard count (the in-process
// shard group, the scatter listeners, external shard processes) derives it
// through this helper so both ends of every handshake agree.
func effectiveShards(dim, shards, chunk int) int {
	if shards < 1 {
		shards = 1
	}
	if chunk <= 0 {
		chunk = 1
	}
	nChunks := (dim + chunk - 1) / chunk
	if nChunks < 1 {
		nChunks = 1
	}
	if shards > nChunks {
		return nChunks
	}
	return shards
}

// shardBounds partitions [0, dim) into `shards` contiguous ranges aligned to
// the wire chunk size: whole chunks are distributed as evenly as possible
// (earlier shards take the extra chunk), and the final boundary is clamped
// to dim. With more shards than chunks the tail shards own empty ranges —
// callers avoid materializing those by clamping the count through
// effectiveShards first (and core.Spec validation rejects over-sharded
// specs outright). Returns shards+1 boundaries.
func shardBounds(dim, shards, chunk int) []int {
	if chunk <= 0 {
		chunk = 1
	}
	nChunks := (dim + chunk - 1) / chunk
	bounds := make([]int, shards+1)
	base, extra := nChunks/shards, nChunks%shards
	at := 0
	for s := 0; s < shards; s++ {
		bounds[s] = at * chunk
		if bounds[s] > dim {
			bounds[s] = dim
		}
		at += base
		if s < extra {
			at++
		}
	}
	bounds[shards] = dim
	return bounds
}

// shardWireCounter is the optional transport capability of scatter fabrics:
// measured per-shard ingress bytes, indexed by shard.
type shardWireCounter interface {
	ShardWireIn() []int64
}

// masterShards runs Config.MasterShards persistent shard goroutines for one
// engine run. The coordinator (engine loop) dispatches one iteration at a
// time: every shard concurrently decodes, scales and updates its own slice,
// then the coordinator joins them, computes the serial gradient norm and
// advances the optimizer's scalar state. Dispatch is two channel operations
// and a WaitGroup per iteration — no allocations in steady state, so the
// zero-alloc invariant of the unsharded engine carries over.
type masterShards struct {
	dec    coding.SliceDecoder
	opt    optimize.SliceUpdater
	grad   []float64
	bounds []int
	scale  float64 // 1/NumExamples, the gradient normalization
	dim    int

	work []chan struct{}
	done chan int // shard index, one per completed dispatch
	quit chan struct{}
	errs []error

	stats []ShardStats
	swc   shardWireCounter // non-nil in distributed scatter mode
	// swcBase is the per-shard counter baseline at engine start: handshake
	// bytes predate it, so SliceBytesIn counts payload traffic only, matching
	// Result.TotalWireIn's exclusion of handshakes.
	swcBase []int64
	so      ShardObserver // non-nil when the observer wants shard stats
}

// newMasterShards builds the shard group for a run, or returns nil when the
// decoder or optimizer lacks the slice capability — the engine then uses the
// serial path (the documented fallback; results are identical either way).
func newMasterShards(cfg *Config, dec coding.Decoder, grad []float64, tr Transport) *masterShards {
	sd, ok := dec.(coding.SliceDecoder)
	if !ok {
		return nil
	}
	su, ok := cfg.Opt.(optimize.SliceUpdater)
	if !ok {
		return nil
	}
	dim := cfg.Model.Dim()
	chunk := cfg.comm().pc.ChunkElems()
	m := effectiveShards(dim, cfg.MasterShards, chunk)
	ms := &masterShards{
		dec:    sd,
		opt:    su,
		grad:   grad,
		bounds: shardBounds(dim, m, chunk),
		scale:  1 / float64(cfg.Model.NumExamples()),
		dim:    dim,
		work:   make([]chan struct{}, m),
		done:   make(chan int, m),
		quit:   make(chan struct{}),
		errs:   make([]error, m),
		stats:  make([]ShardStats, m),
	}
	ms.swc, _ = tr.(shardWireCounter)
	if ms.swc != nil {
		ms.swcBase = ms.swc.ShardWireIn()
	}
	ms.so, _ = cfg.Observer.(ShardObserver)
	for s := 0; s < m; s++ {
		ms.work[s] = make(chan struct{}, 1)
		ms.stats[s] = ShardStats{Shard: s, Lo: ms.bounds[s], Hi: ms.bounds[s+1]}
		go ms.shardLoop(s)
	}
	return ms
}

// shardLoop is one shard's goroutine: wait for a dispatch, decode + scale +
// update the owned slice, report done. It exits when stop closes quit.
func (ms *masterShards) shardLoop(s int) {
	lo, hi := ms.bounds[s], ms.bounds[s+1]
	for {
		select {
		case <-ms.quit:
			return
		case <-ms.work[s]:
		}
		start := time.Now()
		err := ms.dec.DecodeSliceInto(ms.grad, lo, hi)
		if err == nil {
			for i := lo; i < hi; i++ {
				ms.grad[i] *= ms.scale
			}
			ms.opt.UpdateSlice(ms.grad, lo, hi)
		}
		ms.errs[s] = err
		st := &ms.stats[s]
		st.DecodeNs += time.Since(start).Nanoseconds()
		st.Iters++
		ms.done <- s
	}
}

// finishIteration is the sharded counterpart of finishIteration: dispatch
// every shard, join, then finish the scalar tail on the coordinator. The
// decoded gradient, the optimizer state and the recorded stats are
// bit-for-bit identical to the serial path.
func (ms *masterShards) finishIteration(st *IterStats) error {
	for _, ch := range ms.work {
		ch <- struct{}{}
	}
	for range ms.work {
		<-ms.done
	}
	for s, err := range ms.errs {
		if err != nil {
			return fmt.Errorf("cluster: master shard %d [%d,%d): %w", s, ms.bounds[s], ms.bounds[s+1], err)
		}
	}
	ms.opt.FinishStep()
	st.WorkersHeard = ms.dec.WorkersHeard()
	st.Units = ms.dec.UnitsReceived()
	st.GradNorm = vecmath.Norm2(ms.grad)
	ms.account(st)
	return nil
}

// account updates per-shard byte attribution and publishes the stats to the
// observer: measured per-shard wire bytes when the transport scatters to
// per-shard listeners, else each slice's width-proportional share of the
// iteration's modelled payload bytes.
func (ms *masterShards) account(st *IterStats) {
	var measured []int64
	if ms.swc != nil {
		// A transport may expose the capability but have no per-shard wire
		// (live transport over the channel fabric returns nil) — modelled
		// accounting then.
		measured = ms.swc.ShardWireIn()
	}
	if len(measured) > 0 {
		for s := range ms.stats {
			if s < len(measured) {
				ms.stats[s].SliceBytesIn = measured[s]
				if s < len(ms.swcBase) {
					ms.stats[s].SliceBytesIn -= ms.swcBase[s]
				}
			}
		}
	} else if ms.dim > 0 {
		for s := range ms.stats {
			width := ms.bounds[s+1] - ms.bounds[s]
			ms.stats[s].SliceBytesIn += int64(st.Bytes) * int64(width) / int64(ms.dim)
		}
	}
	for s := range ms.stats {
		ms.stats[s].QueueDepth = len(ms.work[s])
	}
	if ms.so != nil {
		ms.so.OnShards(ms.stats)
	}
}

// snapshot returns a copy of the cumulative shard stats (for Result.Shards).
func (ms *masterShards) snapshot() []ShardStats {
	out := make([]ShardStats, len(ms.stats))
	copy(out, ms.stats)
	return out
}

// stop terminates the shard goroutines. The engine defers it on every exit
// path; it must only be called with no dispatch in flight (the engine is
// single-threaded, so this holds by construction).
func (ms *masterShards) stop() { close(ms.quit) }
