package cluster

import (
	"testing"

	"bcc/internal/faults"
)

// The allocation-regression tests pin the tentpole property of the pooled
// data plane: once the first iteration has warmed the BufferPool and the
// per-worker scratch, a steady-state sim iteration — gradient compute,
// encode, arrival ordering, decode, optimizer advance — performs ZERO heap
// allocations per worker message. They measure by differencing: two
// identical runs that differ only in iteration count must cost the same
// number of allocations, because everything beyond the per-run fixed cost
// (decoder construction, result assembly) is reused.

// allocRun builds a reusable sim config+transport pair; RunTransport can be
// invoked on it repeatedly (the optimizer keeps advancing, which changes
// values but not allocation behaviour).
func allocRun(t *testing.T, scheme string, iters int) (*Config, *simTransport) {
	t.Helper()
	cfg, _ := buildRun(t, scheme, 8, 8, 2, iters, 77, Zero{})
	return cfg, newSimTransport(cfg)
}

// TestSimSteadyStateZeroAllocs asserts 0 allocations per worker message on
// the sim runtime's per-message path in steady state.
func TestSimSteadyStateZeroAllocs(t *testing.T) {
	// randomized and bccmulti send multiple messages per worker, pinning the
	// pool cap's scaling with the per-worker communication load.
	for _, scheme := range []string{"bcc", "uncoded", "cyclicrep", "fractional", "randomized", "bccmulti"} {
		t.Run(scheme, func(t *testing.T) {
			const shortIters, longIters = 2, 10
			cfgShort, trShort := allocRun(t, scheme, shortIters)
			cfgLong, trLong := allocRun(t, scheme, longIters)
			run := func(cfg *Config, tr *simTransport) {
				if _, err := RunTransport(cfg, tr); err != nil {
					t.Fatal(err)
				}
			}
			// Warm pools, scratch buffers and slice capacities.
			run(cfgShort, trShort)
			run(cfgLong, trLong)
			short := testing.AllocsPerRun(10, func() { run(cfgShort, trShort) })
			long := testing.AllocsPerRun(10, func() { run(cfgLong, trLong) })
			if long > short {
				_, n, _ := cfgLong.Plan.Params()
				extraMsgs := float64((longIters - shortIters) * n)
				t.Fatalf("steady-state iterations allocate: %.1f allocs for %d iterations vs %.1f for %d (%.3f allocs per worker message, want 0)",
					long, longIters, short, shortIters, (long-short)/extraMsgs)
			}
		})
	}
}

// TestSimZeroAllocsWithFaults differs the same way under DropProb fault
// injection: the per-iteration drop map is allowed (it is per iteration, not
// per message), so this pins a small constant bound per iteration rather
// than strict zero — catching any per-message regression on the fault path.
func TestSimZeroAllocsWithFaults(t *testing.T) {
	const shortIters, longIters = 2, 10
	mk := func(iters int) (*Config, *simTransport) {
		// High redundancy (2 batches, 16 workers) so 10% drops never stall.
		cfg, _ := buildRun(t, "bcc", 8, 16, 4, iters, 78, Zero{})
		cfg.DropProb = 0.1
		cfg.DropSeed = 7
		return cfg, newSimTransport(cfg)
	}
	cfgShort, trShort := mk(shortIters)
	cfgLong, trLong := mk(longIters)
	run := func(cfg *Config, tr *simTransport) {
		if _, err := RunTransport(cfg, tr); err != nil {
			t.Fatal(err)
		}
	}
	run(cfgShort, trShort)
	run(cfgLong, trLong)
	short := testing.AllocsPerRun(10, func() { run(cfgShort, trShort) })
	long := testing.AllocsPerRun(10, func() { run(cfgLong, trLong) })
	perIter := (long - short) / float64(longIters-shortIters)
	// One map allocation per iteration for the drop draw; 4 leaves headroom
	// for map-internal buckets while still catching per-message regressions
	// (12 workers' messages would dwarf it).
	if perIter > 4 {
		t.Fatalf("fault-injected iterations allocate %.2f allocs/iter (want <= 4: the drop map only)", perIter)
	}
}

// TestSimZeroAllocsWithFaultPlan pins the steady-state allocation budget of
// the FaultPlan path: every per-iteration fault decision — crash windows,
// slowdown factors, partition and burst drop checks, the engine's
// reachable-worker accounting — is a pure function consulted in place, so a
// fault-injected iteration allocates exactly as much as a fault-free one
// (zero per worker message). Differencing two run lengths over the SAME
// deterministic fault schedule isolates any regression.
func TestSimZeroAllocsWithFaultPlan(t *testing.T) {
	const shortIters, longIters = 2, 10
	plan := &faults.Plan{N: 16, Seed: 5,
		Crashes:    []faults.Crash{{Worker: 0, At: 1, RestartAfter: 2}},
		Slowdowns:  []faults.Slowdown{{Worker: 3, From: 0, Every: 3, Span: 1, Factor: 4}},
		Partitions: []faults.Partition{{From: 4, To: 6, Lo: 8, Hi: 10}},
		Bursts:     &faults.DropBursts{StartProb: 0.3, Length: 2, Frac: 0.4},
	}
	mk := func(iters int) (*Config, *simTransport) {
		// High redundancy (2 batches, 16 workers) so the scheduled faults
		// never stall a decode.
		cfg, _ := buildRun(t, "bcc", 8, 16, 4, iters, 79, Zero{})
		cfg.Faults = plan
		return cfg, newSimTransport(cfg)
	}
	cfgShort, trShort := mk(shortIters)
	cfgLong, trLong := mk(longIters)
	run := func(cfg *Config, tr *simTransport) {
		if _, err := RunTransport(cfg, tr); err != nil {
			t.Fatal(err)
		}
	}
	run(cfgShort, trShort)
	run(cfgLong, trLong)
	short := testing.AllocsPerRun(10, func() { run(cfgShort, trShort) })
	long := testing.AllocsPerRun(10, func() { run(cfgLong, trLong) })
	if long > short {
		perIter := (long - short) / float64(longIters-shortIters)
		t.Fatalf("fault-plan iterations allocate: %.1f allocs for %d iterations vs %.1f for %d (%.2f allocs/iter, want 0)",
			long, longIters, short, shortIters, perIter)
	}
}

// TestBufferPoolRecycles pins the pool contract: Get returns recycled
// buffers, Put drops foreign sizes and respects the cap, and a nil pool
// degrades to allocation.
func TestBufferPoolRecycles(t *testing.T) {
	p := NewBufferPool(4, 2)
	b := p.Get()
	if len(b) != 4 {
		t.Fatalf("Get returned length %d", len(b))
	}
	b[0] = 42
	p.Put(b)
	if again := p.Get(); &again[0] != &b[0] {
		t.Fatal("Put buffer was not recycled by Get")
	}
	p.Put(make([]float64, 3)) // foreign size: dropped
	if got := p.Get(); len(got) != 4 {
		t.Fatalf("foreign-sized Put corrupted the pool: Get length %d", len(got))
	}
	// Cap: only 2 buffers retained.
	p.Put(make([]float64, 4))
	p.Put(make([]float64, 4))
	p.Put(make([]float64, 4))
	p.mu.Lock()
	free := len(p.free)
	p.mu.Unlock()
	if free != 2 {
		t.Fatalf("free list holds %d buffers, cap is 2", free)
	}
	var nilPool *BufferPool
	nilPool.Put(make([]float64, 4)) // must not panic
	if buf := nilPool.Buf(5); len(buf) != 5 {
		t.Fatalf("nil pool Buf returned length %d", len(buf))
	}
}
