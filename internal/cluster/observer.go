package cluster

import "bcc/internal/faults"

// Observers give callers visibility into a run while it executes. The master
// engine (engine.go) invokes the hooks inline from its single iteration
// loop, so every runtime — sim, live, tcp — reports through the same code
// path and an observer attached to any of them sees the same sequence of
// callbacks for the same spec and seed. Hooks run synchronously on the
// master goroutine: a slow observer slows the master exactly like a slow
// optimizer would, and no locking is needed to accumulate state inside one.

// DecodeEvent describes the instant an iteration's gradient became
// decodable — before the straggler tail drains, before the optimizer
// advances. It is the paper's "recovery threshold reached" moment.
type DecodeEvent struct {
	// Iter is the iteration index.
	Iter int
	// Wall is the elapsed time at the decode point (virtual seconds on the
	// sim runtime, scaled real seconds on the live runtimes).
	Wall float64
	// WorkersHeard is the realized recovery threshold |W|.
	WorkersHeard int
	// Units is the communication load counted so far.
	Units float64
}

// Observer receives lifecycle callbacks from the master engine.
//
// OnDecode fires the moment an iteration's gradient becomes decodable;
// OnIteration fires once per completed iteration, after the optimizer has
// advanced, with the exact IterStats value that will appear in Result.Iters;
// OnWorkerFault fires at the start of each iteration for every scheduled
// fault event taking effect (crashes, restarts, slowdown and partition
// edges, burst starts — see Config.Faults), in the fault plan's
// deterministic order, plus once with a KindDegraded event when the run is
// about to degrade (ErrBelowThreshold fail-fast or a stalled iteration);
// OnRunEnd fires once with the final Result whenever a run produces one —
// including the partial Result of a cancelled or early-stopped run. Runs
// that die without a Result (stall, broken transport) do not call OnRunEnd.
type Observer interface {
	OnIteration(IterStats)
	OnDecode(DecodeEvent)
	OnWorkerFault(faults.Event)
	OnRunEnd(*Result)
}

// ObserverFuncs adapts free functions to the Observer interface; nil fields
// are no-ops. The zero value is a valid observer that observes nothing.
// Setting Shards additionally opts in to the ShardObserver capability of
// sharded-master runs (see sharded.go).
type ObserverFuncs struct {
	Iteration func(IterStats)
	Decode    func(DecodeEvent)
	Fault     func(faults.Event)
	RunEnd    func(*Result)
	Shards    func([]ShardStats)
}

// OnIteration implements Observer.
func (o ObserverFuncs) OnIteration(st IterStats) {
	if o.Iteration != nil {
		o.Iteration(st)
	}
}

// OnDecode implements Observer.
func (o ObserverFuncs) OnDecode(ev DecodeEvent) {
	if o.Decode != nil {
		o.Decode(ev)
	}
}

// OnWorkerFault implements Observer.
func (o ObserverFuncs) OnWorkerFault(ev faults.Event) {
	if o.Fault != nil {
		o.Fault(ev)
	}
}

// OnRunEnd implements Observer.
func (o ObserverFuncs) OnRunEnd(res *Result) {
	if o.RunEnd != nil {
		o.RunEnd(res)
	}
}

// OnShards implements ShardObserver.
func (o ObserverFuncs) OnShards(stats []ShardStats) {
	if o.Shards != nil {
		o.Shards(stats)
	}
}

// MultiObserver fans every callback out to obs in order. Nil entries are
// skipped; with no non-nil entries it returns nil (no observation).
func MultiObserver(obs ...Observer) Observer {
	flat := make(multiObserver, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			flat = append(flat, o)
		}
	}
	if len(flat) == 0 {
		return nil
	}
	return flat
}

type multiObserver []Observer

func (m multiObserver) OnIteration(st IterStats) {
	for _, o := range m {
		o.OnIteration(st)
	}
}

func (m multiObserver) OnDecode(ev DecodeEvent) {
	for _, o := range m {
		o.OnDecode(ev)
	}
}

func (m multiObserver) OnWorkerFault(ev faults.Event) {
	for _, o := range m {
		o.OnWorkerFault(ev)
	}
}

func (m multiObserver) OnRunEnd(res *Result) {
	for _, o := range m {
		o.OnRunEnd(res)
	}
}

// OnShards implements ShardObserver, forwarding to the members that opt in.
func (m multiObserver) OnShards(stats []ShardStats) {
	for _, o := range m {
		if so, ok := o.(ShardObserver); ok {
			so.OnShards(stats)
		}
	}
}
