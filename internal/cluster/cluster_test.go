package cluster

import (
	"errors"
	"math"
	"net"
	"strings"
	"testing"
	"time"

	"bcc/internal/coding"
	"bcc/internal/coupon"
	"bcc/internal/dataset"
	"bcc/internal/model"
	"bcc/internal/optimize"
	"bcc/internal/rngutil"
	"bcc/internal/trace"
	"bcc/internal/vecmath"
)

// buildRun assembles a full Config for the given scheme over a synthetic
// logistic-regression task. Returns the config and the model for reference
// computations.
func buildRun(t *testing.T, scheme string, m, n, r, iterations int, seed uint64, lat Latency) (*Config, *model.Logistic) {
	t.Helper()
	return buildRunDim(t, scheme, m, n, r, iterations, seed, lat, 12)
}

// buildRunDim is buildRun at a chosen feature dimension — the decode
// parallelism tests need dim >= 1024, vecmath.Shard's inline cutoff, or the
// sharded path under test never actually fans out.
func buildRunDim(t *testing.T, scheme string, m, n, r, iterations int, seed uint64, lat Latency, dim int) (*Config, *model.Logistic) {
	t.Helper()
	rng := rngutil.New(seed)
	ds, err := dataset.Generate(dataset.Config{N: 4 * m, Dim: dim, Separation: 1.5}, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	units, err := ds.Units(m)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := coding.Lookup(scheme)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sch.Plan(m, n, r, rng.Split())
	if err != nil {
		t.Skipf("%s rejects m=%d n=%d r=%d: %v", scheme, m, n, r, err)
	}
	mod := model.NewLogistic(ds)
	opt := optimize.NewNesterov(make([]float64, mod.Dim()), optimize.Constant(0.5))
	return &Config{
		Plan:       plan,
		Model:      mod,
		Units:      units,
		Opt:        opt,
		Iterations: iterations,
		Latency:    lat,
	}, mod
}

// referenceWeights runs the same optimizer sequentially on exact full
// gradients, through the allocation-free in-place path.
func referenceWeights(mod *model.Logistic, iterations int) []float64 {
	opt := optimize.NewNesterov(make([]float64, mod.Dim()), optimize.Constant(0.5))
	rows := model.AllRows(mod.NumExamples())
	return optimize.RunInPlace(opt, func(w, out []float64) {
		model.FullGradientInto(mod, w, out, rows)
	}, mod.Dim(), iterations)
}

func TestSimTrainsAllSchemes(t *testing.T) {
	for _, scheme := range coding.Names() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			cfg, mod := buildRun(t, scheme, 12, 12, 3, 20, 7, Zero{})
			cfg.LossEvery = 19
			res, err := RunSim(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Iters) != 20 {
				t.Fatalf("recorded %d iterations", len(res.Iters))
			}
			if scheme == "bccapprox" {
				// Approximate gradients: assert optimization progress, not
				// weight equality.
				if res.Iters[19].Loss >= math.Log(2) {
					t.Fatalf("approximate BCC did not reduce loss: %v", res.Iters[19].Loss)
				}
				return
			}
			ref := referenceWeights(mod, 20)
			if d := vecmath.MaxAbsDiff(res.FinalW, ref); d > 1e-6 {
				t.Fatalf("%s: final weights differ from sequential reference by %v", scheme, d)
			}
		})
	}
}

func TestSimFixedLatencyTimingExact(t *testing.T) {
	// Uncoded over 4 workers with deterministic latency: wall time per
	// iteration = bcast + slowest(compute) + upload; with the slowest factor
	// on worker 3.
	lat := Fixed{BroadcastTime: 1, PerPoint: 0.1, PerUnit: 2, Factor: []float64{1, 1, 1, 3}}
	cfg, _ := buildRun(t, "uncoded", 8, 4, 2, 3, 8, lat)
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Each worker holds 2 units x 4 points = 8 points. Worker 3: compute
	// 0.1*8*3 = 2.4, upload 2*3 = 6, bcast 1 => arrival 9.4; others arrive
	// at 1 + 0.8 + 2 = 3.8. Uncoded waits for worker 3.
	for _, it := range res.Iters {
		if math.Abs(it.Wall-9.4) > 1e-9 {
			t.Fatalf("iteration wall %v, want 9.4", it.Wall)
		}
		if math.Abs(it.Compute-2.4) > 1e-9 {
			t.Fatalf("compute %v, want 2.4 (max among heard)", it.Compute)
		}
		if math.Abs(it.Comm-7.0) > 1e-9 {
			t.Fatalf("comm %v, want 7.0", it.Comm)
		}
		if it.WorkersHeard != 4 {
			t.Fatalf("heard %d", it.WorkersHeard)
		}
	}
	if math.Abs(res.TotalWall-3*9.4) > 1e-9 {
		t.Fatalf("total wall %v", res.TotalWall)
	}
}

func TestSimBCCIgnoresStraggler(t *testing.T) {
	// BCC with one catastrophically slow worker: as long as its batch is
	// covered by someone else, the wall time must not include it.
	lat := Fixed{PerPoint: 0.01, PerUnit: 1, Factor: []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1000}}
	// m=8, r=2 -> 4 batches over 10 workers.
	cfg, _ := buildRun(t, "bcc", 8, 10, 2, 5, 9, lat)
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range res.Iters {
		if it.Wall > 100 {
			t.Fatalf("BCC waited for the straggler: wall=%v", it.Wall)
		}
	}
}

func TestSimBCCThresholdMatchesTheory(t *testing.T) {
	// Average workers heard over many iterations with iid worker latencies
	// should approach N*H_N. Use exponential-ish noise so arrival order is
	// a fresh uniform permutation each iteration.
	rng := rngutil.New(123)
	lat, err := NewShiftExp(60, []ShiftExpParams{{
		ComputeShift: 1e-4, ComputeMu: 50,
		CommShift: 1e-3, CommMu: 1,
	}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	m, n, r := 20, 60, 5 // 4 batches
	cfg, _ := buildRun(t, "bcc", m, n, r, 300, 10, lat)
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := coupon.ExpectedDraws(4) // 8.33
	if math.Abs(res.AvgWorkersHeard-want) > 0.8 {
		t.Fatalf("avg workers heard %v, theory %v", res.AvgWorkersHeard, want)
	}
}

func TestSimCyclicRepWaitsExactlyThreshold(t *testing.T) {
	rng := rngutil.New(124)
	lat, err := NewShiftExp(12, []ShiftExpParams{{
		ComputeShift: 1e-4, ComputeMu: 10, CommShift: 1e-3, CommMu: 0.5,
	}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg, _ := buildRun(t, "cyclicrep", 12, 12, 3, 10, 11, lat)
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range res.Iters {
		if it.WorkersHeard != 10 { // n - s = 12 - 2
			t.Fatalf("CR heard %d workers, want exactly 10", it.WorkersHeard)
		}
	}
}

func TestSimDeadWorkersCodedSchemeSurvives(t *testing.T) {
	cfg, mod := buildRun(t, "cyclicrep", 12, 12, 3, 15, 12, Zero{})
	cfg.Dead = []int{2, 7} // s = 2 tolerated
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := referenceWeights(mod, 15)
	if d := vecmath.MaxAbsDiff(res.FinalW, ref); d > 1e-6 {
		t.Fatalf("weights diverged despite tolerated failures: %v", d)
	}
	for _, it := range res.Iters {
		if it.WorkersHeard != 10 {
			t.Fatalf("heard %d", it.WorkersHeard)
		}
	}
}

func TestSimDeadWorkersBeyondToleranceStall(t *testing.T) {
	cfg, _ := buildRun(t, "cyclicrep", 12, 12, 3, 5, 13, Zero{})
	cfg.Dead = []int{1, 2, 3} // s = 2 < 3 dead
	_, err := RunSim(cfg)
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("expected ErrStalled, got %v", err)
	}
}

func TestSimUncodedAnyDeathStalls(t *testing.T) {
	cfg, _ := buildRun(t, "uncoded", 12, 12, 1, 5, 14, Zero{})
	cfg.Dead = []int{5}
	_, err := RunSim(cfg)
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("expected ErrStalled, got %v", err)
	}
}

func TestSimBCCDeadWorkerSurvivesWhenBatchCovered(t *testing.T) {
	// Find a worker whose batch has a duplicate holder; killing it must not
	// stall the run.
	cfg, _ := buildRun(t, "bcc", 8, 24, 2, 8, 15, Zero{})
	assign := cfg.Plan.Assignments()
	holders := map[int][]int{}
	for w := range assign {
		b := assign[w][0] / 2
		holders[b] = append(holders[b], w)
	}
	victim := -1
	for _, ws := range holders {
		if len(ws) > 1 {
			victim = ws[0]
			break
		}
	}
	if victim < 0 {
		t.Skip("no duplicated batch in this placement")
	}
	cfg.Dead = []int{victim}
	if _, err := RunSim(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSimReproducible(t *testing.T) {
	run := func() *Result {
		rng := rngutil.New(321)
		lat, err := NewShiftExp(12, []ShiftExpParams{{
			ComputeShift: 1e-3, ComputeMu: 5, CommShift: 0.01, CommMu: 2,
		}}, rng)
		if err != nil {
			t.Fatal(err)
		}
		cfg, _ := buildRun(t, "bcc", 12, 12, 3, 12, 16, lat)
		res, err := RunSim(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if vecmath.MaxAbsDiff(a.FinalW, b.FinalW) != 0 {
		t.Fatal("same seed gave different weights")
	}
	if a.TotalWall != b.TotalWall || a.AvgWorkersHeard != b.AvgWorkersHeard {
		t.Fatal("same seed gave different timings")
	}
}

func TestSimLossRecording(t *testing.T) {
	cfg, _ := buildRun(t, "uncoded", 8, 4, 2, 10, 17, Zero{})
	cfg.LossEvery = 3
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	recorded := 0
	for i, it := range res.Iters {
		if i%3 == 0 {
			if math.IsNaN(it.Loss) {
				t.Fatalf("loss missing at iteration %d", i)
			}
			recorded++
		} else if !math.IsNaN(it.Loss) {
			t.Fatalf("unexpected loss at iteration %d", i)
		}
	}
	if recorded != 4 {
		t.Fatalf("recorded %d losses", recorded)
	}
	// Loss should decrease over training (compare recorded samples).
	if first, later := res.Iters[0].Loss, res.Iters[6].Loss; later >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, later)
	}
}

func TestSimIngressSerialization(t *testing.T) {
	// With zero worker latency and a pure master bottleneck, iteration wall
	// time must be exactly (#messages drained) * IngressPerUnit, and the
	// uncoded scheme must drain all holders.
	cfg, _ := buildRun(t, "uncoded", 8, 4, 2, 3, 30, Zero{})
	cfg.IngressPerUnit = 0.25
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range res.Iters {
		if math.Abs(it.Wall-4*0.25) > 1e-12 {
			t.Fatalf("wall %v, want 1.0 (4 messages x 0.25)", it.Wall)
		}
	}
}

func TestSimIngressProportionalToThreshold(t *testing.T) {
	// The paper's §III-C observation: with a dominant master bottleneck the
	// total time of each scheme is roughly proportional to its recovery
	// threshold. Compare uncoded (K=n) against BCC (K ~ N H_N) under the
	// same ingress cost.
	runOne := func(scheme string, m, n, r int) float64 {
		cfg, _ := buildRun(t, scheme, m, n, r, 10, 31, Zero{})
		cfg.IngressPerUnit = 0.01
		res, err := RunSim(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalWall / res.AvgWorkersHeard
	}
	perWorkerUncoded := runOne("uncoded", 20, 20, 1)
	perWorkerBCC := runOne("bcc", 20, 20, 5)
	if math.Abs(perWorkerUncoded-perWorkerBCC) > 0.05*perWorkerUncoded {
		t.Fatalf("wall/threshold not constant: uncoded %v vs bcc %v", perWorkerUncoded, perWorkerBCC)
	}
}

func TestClusterTrainsSVMModel(t *testing.T) {
	// The fabric is model-agnostic: swap logistic regression for the
	// squared-hinge SVM and train with BCC.
	rng := rngutil.New(40)
	ds, err := dataset.Generate(dataset.Config{N: 96, Dim: 10, Separation: 40, StandardLabels: true}, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	units, err := ds.Units(12)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := coding.Lookup("bcc")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sch.Plan(12, 24, 3, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	svm := model.NewSVM(ds)
	cfg := &Config{
		Plan:       plan,
		Model:      svm,
		Units:      units,
		Opt:        optimize.NewNesterov(make([]float64, svm.Dim()), optimize.Constant(0.1)),
		Iterations: 60,
	}
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := svm.Accuracy(res.FinalW); acc < 0.8 {
		t.Fatalf("distributed SVM accuracy %v", acc)
	}
}

func TestResultSummaries(t *testing.T) {
	rng := rngutil.New(41)
	lat, err := NewShiftExp(20, []ShiftExpParams{{CommShift: 0.01, CommMu: 2}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg, _ := buildRun(t, "bcc", 10, 20, 2, 25, 42, lat)
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ws := res.WallSummary()
	if ws.N != 25 || ws.Mean <= 0 || ws.Min > ws.Max {
		t.Fatalf("wall summary %+v", ws)
	}
	ts := res.ThresholdSummary()
	if ts.Mean != res.AvgWorkersHeard {
		t.Fatalf("threshold summary mean %v != %v", ts.Mean, res.AvgWorkersHeard)
	}
}

func TestComputeParallelismBitExact(t *testing.T) {
	run := func(par int) *Result {
		cfg, _ := buildRun(t, "bcc", 16, 16, 4, 6, 34, Zero{})
		cfg.ComputeParallelism = par
		res, err := RunSim(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(0)
	for _, par := range []int{2, 4, 8, 64} {
		parallel := run(par)
		if d := vecmath.MaxAbsDiff(serial.FinalW, parallel.FinalW); d != 0 {
			t.Fatalf("parallelism %d diverged from serial by %v", par, d)
		}
	}
}

// TestDecodeParallelismBitExact mirrors TestComputeParallelismBitExact for
// the master's decode fan-out: every parallelism level must reproduce the
// serial run's final weights bit-for-bit, on every scheme whose decode
// combination is sharded. Dim 1500 exceeds vecmath.Shard's inline cutoff
// (1024), so the parallel levels genuinely fan out instead of folding back
// to the serial code path.
func TestDecodeParallelismBitExact(t *testing.T) {
	for _, scheme := range []string{"cyclicrep", "cyclicmds", "bccmulti"} {
		t.Run(scheme, func(t *testing.T) {
			run := func(par int) *Result {
				cfg, _ := buildRunDim(t, scheme, 16, 16, 4, 6, 34, Zero{}, 1500)
				cfg.DecodeParallelism = par
				res, err := RunSim(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			serial := run(0)
			for _, par := range []int{2, 4, 8, 64} {
				parallel := run(par)
				if d := vecmath.MaxAbsDiff(serial.FinalW, parallel.FinalW); d != 0 {
					t.Fatalf("decode parallelism %d diverged from serial by %v", par, d)
				}
				for i := range serial.Iters {
					if serial.Iters[i].GradNorm != parallel.Iters[i].GradNorm {
						t.Fatalf("decode parallelism %d changed iter %d gradient norm", par, i)
					}
				}
			}
		})
	}
}

// TestDecodeParallelismLiveRuntime checks the knob end to end on the live
// transport (the decode runs on the master engine, so every runtime shares
// the same sharded path). The staggered latency fixes the arrival ORDER:
// cyclicrep's decode coefficients depend on which responder subset arrives
// first, so only runs with identical arrival orders are comparable
// bit-for-bit.
func TestDecodeParallelismLiveRuntime(t *testing.T) {
	if testing.Short() {
		t.Skip("staggered live runs sleep real time")
	}
	mk := func(par int) *Result {
		cfg, _ := buildRunDim(t, "cyclicrep", 8, 8, 2, 4, 35, staggered(8, 4*2), 1500)
		cfg.DecodeParallelism = par
		res, err := RunLive(cfg, LiveOptions{TimeScale: liveEquivScale})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(0), mk(4)
	if d := vecmath.MaxAbsDiff(a.FinalW, b.FinalW); d != 0 {
		t.Fatalf("live parallel decode diverged by %v", d)
	}
}

func TestComputeParallelismLiveRuntime(t *testing.T) {
	mk := func(par int) *Result {
		cfg, _ := buildRun(t, "bcc", 8, 16, 2, 4, 35, Zero{})
		cfg.ComputeParallelism = par
		res, err := RunLive(cfg, LiveOptions{TimeScale: 1e-5})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(0), mk(4)
	if d := vecmath.MaxAbsDiff(a.FinalW, b.FinalW); d != 0 {
		t.Fatalf("live parallel gradients diverged by %v", d)
	}
}

func TestSimTraceRecording(t *testing.T) {
	lat := Fixed{BroadcastTime: 1, PerPoint: 0.1, PerUnit: 2}
	cfg, _ := buildRun(t, "uncoded", 8, 4, 2, 3, 32, lat)
	cfg.IngressPerUnit = 0.5
	var rec trace.Recorder
	cfg.Trace = &rec
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() != 3 {
		t.Fatalf("recorded %d iterations", rec.Len())
	}
	it := rec.Iterations[0]
	if len(it.Spans) != 4 {
		t.Fatalf("spans %d, want 4 workers", len(it.Spans))
	}
	counted := 0
	for _, s := range it.Spans {
		if !(s.BcastEnd <= s.ComputeEnd && s.ComputeEnd <= s.Arrive) {
			t.Fatalf("span phases out of order: %+v", s)
		}
		if !(s.Arrive <= s.DrainStart && s.DrainStart < s.DrainEnd) {
			t.Fatalf("drain out of order: %+v", s)
		}
		if s.Counted {
			counted++
		}
	}
	if counted != res.Iters[0].WorkersHeard {
		t.Fatalf("trace counted %d, stats say %d", counted, res.Iters[0].WorkersHeard)
	}
	if it.DecodeTime != res.Iters[0].Wall {
		t.Fatalf("trace decode time %v vs wall %v", it.DecodeTime, res.Iters[0].Wall)
	}
	if _, err := rec.Gantt(0, 60); err != nil {
		t.Fatal(err)
	}
}

func TestSimTraceDoesNotChangeMetrics(t *testing.T) {
	mk := func(withTrace bool) *Result {
		rng := rngutil.New(777)
		lat, err := NewShiftExp(12, []ShiftExpParams{{CommShift: 0.01, CommMu: 2}}, rng)
		if err != nil {
			t.Fatal(err)
		}
		cfg, _ := buildRun(t, "bcc", 12, 12, 3, 8, 33, lat)
		cfg.IngressPerUnit = 0.002
		if withTrace {
			cfg.Trace = &trace.Recorder{}
		}
		res, err := RunSim(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(false), mk(true)
	if a.TotalWall != b.TotalWall || a.AvgWorkersHeard != b.AvgWorkersHeard {
		t.Fatalf("tracing changed metrics: %v/%v vs %v/%v",
			a.TotalWall, a.AvgWorkersHeard, b.TotalWall, b.AvgWorkersHeard)
	}
	if vecmath.MaxAbsDiff(a.FinalW, b.FinalW) != 0 {
		t.Fatal("tracing changed training")
	}
}

func TestConfigValidation(t *testing.T) {
	cfg, _ := buildRun(t, "uncoded", 8, 4, 2, 5, 18, Zero{})
	bad := *cfg
	bad.Units = cfg.Units[:len(cfg.Units)-1]
	if _, err := RunSim(&bad); err == nil {
		t.Fatal("short units accepted")
	}
	bad2 := *cfg
	bad2.Iterations = 0
	if _, err := RunSim(&bad2); err == nil {
		t.Fatal("zero iterations accepted")
	}
	bad3 := *cfg
	bad3.Dead = []int{99}
	if _, err := RunSim(&bad3); err == nil {
		t.Fatal("out-of-range dead worker accepted")
	}
	bad4 := *cfg
	bad4.Plan = nil
	if _, err := RunSim(&bad4); err == nil {
		t.Fatal("nil plan accepted")
	}
}

func TestWorkerPoints(t *testing.T) {
	cfg, _ := buildRun(t, "uncoded", 8, 4, 2, 5, 19, Zero{})
	pts := workerPoints(cfg.Plan, cfg.Units)
	total := 0
	for _, p := range pts {
		total += p
	}
	if total != cfg.Model.NumExamples() {
		t.Fatalf("points sum %d != %d", total, cfg.Model.NumExamples())
	}
}

// ---------------------------------------------------------------------------
// Live (goroutine/channel) runtime
// ---------------------------------------------------------------------------

func TestLiveMatchesSimExactlyForBCC(t *testing.T) {
	// Coverage-based decoding is arrival-order independent, so live and sim
	// runs with identical plans and data produce bit-identical weights.
	mkCfg := func() (*Config, *model.Logistic) {
		return buildRun(t, "bcc", 10, 20, 2, 8, 20, Zero{})
	}
	cfgSim, _ := mkCfg()
	simRes, err := RunSim(cfgSim)
	if err != nil {
		t.Fatal(err)
	}
	cfgLive, _ := mkCfg()
	liveRes, err := RunLive(cfgLive, LiveOptions{TimeScale: 1e-5, Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if d := vecmath.MaxAbsDiff(simRes.FinalW, liveRes.FinalW); d != 0 {
		t.Fatalf("live and sim weights differ by %v", d)
	}
}

func TestLiveTrainsCyclicRep(t *testing.T) {
	cfg, mod := buildRun(t, "cyclicrep", 10, 10, 3, 10, 21, Zero{})
	res, err := RunLive(cfg, LiveOptions{TimeScale: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	ref := referenceWeights(mod, 10)
	if d := vecmath.MaxAbsDiff(res.FinalW, ref); d > 1e-6 {
		t.Fatalf("live CR weights differ from reference by %v", d)
	}
}

func TestLiveStragglerSkipped(t *testing.T) {
	// One worker sleeps 1000x longer; BCC should complete without it (its
	// batch has other holders with overwhelming probability given n >> N).
	factors := make([]float64, 30)
	for i := range factors {
		factors[i] = 1
	}
	factors[0] = 1000
	lat := Fixed{PerPoint: 1e-4, PerUnit: 0.01, Factor: factors}
	cfg, _ := buildRun(t, "bcc", 10, 30, 2, 4, 22, lat)
	start := time.Now()
	res, err := RunLive(cfg, LiveOptions{TimeScale: 1e-2, Timeout: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// Straggler upload alone would be 0.01*1000 = 10 virtual s = 100ms real
	// per iteration; the run must finish well under 4 of those.
	if elapsed > 2*time.Second {
		t.Fatalf("live run waited for the straggler: %v", elapsed)
	}
	for _, it := range res.Iters {
		if it.WorkersHeard > 29 {
			t.Fatalf("heard all workers including straggler")
		}
	}
}

func TestLiveStalledDetection(t *testing.T) {
	cfg, _ := buildRun(t, "uncoded", 8, 8, 1, 3, 23, Zero{})
	cfg.Dead = []int{3}
	_, err := RunLive(cfg, LiveOptions{TimeScale: 1e-5, Timeout: 10 * time.Second})
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("expected ErrStalled, got %v", err)
	}
}

func TestLiveTimeout(t *testing.T) {
	lat := Fixed{PerPoint: 10} // 10s virtual per point, scale 1e-2 -> ~3s real
	cfg, _ := buildRun(t, "uncoded", 4, 4, 1, 1, 24, lat)
	_, err := RunLive(cfg, LiveOptions{TimeScale: 1e-2, Timeout: 100 * time.Millisecond})
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("expected timeout, got %v", err)
	}
}

// ---------------------------------------------------------------------------
// TCP runtime
// ---------------------------------------------------------------------------

func TestTCPMatchesChannelRuntime(t *testing.T) {
	mk := func() (*Config, *model.Logistic) {
		return buildRun(t, "bcc", 8, 16, 2, 6, 25, Zero{})
	}
	cfgA, _ := mk()
	a, err := RunLive(cfgA, LiveOptions{TimeScale: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	cfgB, _ := mk()
	b, err := RunLive(cfgB, LiveOptions{TimeScale: 1e-5, TCP: true})
	if err != nil {
		t.Fatal(err)
	}
	if d := vecmath.MaxAbsDiff(a.FinalW, b.FinalW); d != 0 {
		t.Fatalf("TCP and channel weights differ by %v", d)
	}
	if b.TotalBytes == 0 {
		t.Fatal("TCP run reported zero bytes")
	}
}

func TestTCPWireCodecMatchesGob(t *testing.T) {
	mk := func() (*Config, *model.Logistic) {
		return buildRun(t, "bcc", 8, 16, 2, 6, 27, Zero{})
	}
	cfgA, _ := mk()
	a, err := RunLive(cfgA, LiveOptions{TimeScale: 1e-5, TCP: true, Codec: "gob"})
	if err != nil {
		t.Fatal(err)
	}
	cfgB, _ := mk()
	bRes, err := RunLive(cfgB, LiveOptions{TimeScale: 1e-5, TCP: true, Codec: "wire"})
	if err != nil {
		t.Fatal(err)
	}
	if d := vecmath.MaxAbsDiff(a.FinalW, bRes.FinalW); d != 0 {
		t.Fatalf("wire and gob codecs produced different weights: %v", d)
	}
	// Arrival order (and hence how many messages the master counts) is
	// scheduling-dependent in live mode; both runs must simply have moved
	// real payload.
	if a.TotalBytes == 0 || bRes.TotalBytes == 0 {
		t.Fatalf("payload bytes: gob %d, wire %d", a.TotalBytes, bRes.TotalBytes)
	}
}

func TestTCPWireCodecComplexScheme(t *testing.T) {
	// cyclicmds ships Imag payloads; the wire codec must carry them.
	cfg, mod := buildRun(t, "cyclicmds", 8, 8, 2, 5, 28, Zero{})
	res, err := RunLive(cfg, LiveOptions{TimeScale: 1e-5, TCP: true, Codec: "wire"})
	if err != nil {
		t.Fatal(err)
	}
	ref := referenceWeights(mod, 5)
	if d := vecmath.MaxAbsDiff(res.FinalW, ref); d > 1e-6 {
		t.Fatalf("wire-coded MDS weights differ from reference by %v", d)
	}
}

func TestUnknownCodecRejected(t *testing.T) {
	cfg, _ := buildRun(t, "bcc", 8, 16, 2, 2, 29, Zero{})
	if _, err := RunLive(cfg, LiveOptions{TimeScale: 1e-5, TCP: true, Codec: "json"}); err == nil {
		t.Fatal("unknown codec accepted")
	}
}

func TestTCPTrainsUncoded(t *testing.T) {
	cfg, mod := buildRun(t, "uncoded", 8, 4, 2, 8, 26, Zero{})
	res, err := RunLive(cfg, LiveOptions{TimeScale: 1e-5, TCP: true})
	if err != nil {
		t.Fatal(err)
	}
	ref := referenceWeights(mod, 8)
	if d := vecmath.MaxAbsDiff(res.FinalW, ref); d > 1e-6 {
		t.Fatalf("TCP uncoded weights differ by %v", d)
	}
}

func TestDropInjectionBCCSurvives(t *testing.T) {
	// With generous redundancy (n = 4x batches) BCC rides out a 20% message
	// loss rate: every batch usually has several holders per iteration.
	cfg, mod := buildRun(t, "bcc", 8, 32, 2, 12, 37, Zero{})
	cfg.DropProb = 0.2
	cfg.DropSeed = 9
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := referenceWeights(mod, 12)
	if d := vecmath.MaxAbsDiff(res.FinalW, ref); d > 1e-6 {
		t.Fatalf("weights diverged under drops: %v", d)
	}
}

func TestDropInjectionUncodedStalls(t *testing.T) {
	// Uncoded has zero redundancy: with a high drop rate over enough
	// iterations some worker's message is lost and the run stalls.
	cfg, _ := buildRun(t, "uncoded", 12, 12, 1, 50, 38, Zero{})
	cfg.DropProb = 0.3
	cfg.DropSeed = 10
	_, err := RunSim(cfg)
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("expected ErrStalled under drops, got %v", err)
	}
}

func TestDropInjectionLiveRuntime(t *testing.T) {
	cfg, _ := buildRun(t, "bcc", 8, 32, 2, 6, 39, Zero{})
	cfg.DropProb = 0.2
	cfg.DropSeed = 11
	if _, err := RunLive(cfg, LiveOptions{TimeScale: 1e-5, Timeout: 20 * time.Second}); err != nil {
		t.Fatal(err)
	}
}

func TestDropProbValidation(t *testing.T) {
	cfg, _ := buildRun(t, "bcc", 8, 16, 2, 2, 40, Zero{})
	cfg.DropProb = 1.5
	if _, err := RunSim(cfg); err == nil {
		t.Fatal("DropProb > 1 accepted")
	}
}

func TestServeMasterExternalWorkers(t *testing.T) {
	// The cmd/bcccluster path: the caller owns the listener, workers dial
	// in on their own (as separate processes would), and the master runs
	// over the assembled fabric.
	cfg, mod := buildRun(t, "bcc", 8, 4, 2, 6, 36, Zero{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	for w := 0; w < 4; w++ {
		env := WorkerEnv{
			Index:     w,
			Plan:      cfg.Plan,
			Model:     cfg.Model,
			Units:     cfg.Units,
			Latency:   Zero{},
			TimeScale: 1e-5,
		}
		go func() { _ = DialAndServeWorker(addr, env) }()
	}
	fab, err := ServeMaster(ln, 4, 10*time.Second, "gob", CommOptions{}, cfg.Model.Dim())
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close()
	res, err := RunWithFabric(cfg, fab, LiveOptions{TimeScale: 1e-5, Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ref := referenceWeights(mod, 6)
	if d := vecmath.MaxAbsDiff(res.FinalW, ref); d > 1e-6 {
		t.Fatalf("ServeMaster-trained weights differ from reference by %v", d)
	}
}

func TestServeMasterAcceptTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// No workers dial: accept must time out rather than hang.
	if _, err := ServeMaster(ln, 1, 100*time.Millisecond, "gob", CommOptions{}, 4); err == nil {
		t.Fatal("accept with no workers should time out")
	}
}

func TestShiftExpValidation(t *testing.T) {
	if _, err := NewShiftExp(0, []ShiftExpParams{{}}, rngutil.New(1)); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := NewShiftExp(3, []ShiftExpParams{{}, {}}, rngutil.New(1)); err == nil {
		t.Fatal("wrong param count accepted")
	}
	if _, err := NewShiftExp(3, []ShiftExpParams{{}}, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestShiftExpHeterogeneousParams(t *testing.T) {
	rng := rngutil.New(5)
	params := []ShiftExpParams{
		{ComputeShift: 1, ComputeMu: 100},
		{ComputeShift: 10, ComputeMu: 100},
	}
	lat, err := NewShiftExp(2, params, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Worker 1's shift is 10x worker 0's; with a light tail the sampled
	// compute times must reflect that.
	c0 := lat.Compute(0, 0, 5)
	c1 := lat.Compute(1, 0, 5)
	if c0 < 5 || c1 < 50 {
		t.Fatalf("shift not honored: c0=%v c1=%v", c0, c1)
	}
	if c1 < c0 {
		t.Fatalf("heterogeneity inverted: c0=%v c1=%v", c0, c1)
	}
}

func TestFixedLatencyDefaults(t *testing.T) {
	var f Fixed
	if f.Compute(0, 0, 100) != 0 || f.Upload(3, 1, 2) != 0 || f.Broadcast(1, 1) != 0 {
		t.Fatal("zero-value Fixed should cost nothing")
	}
}
