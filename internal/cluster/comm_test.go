package cluster

import (
	"math"
	"net"
	"strings"
	"testing"
	"time"

	"bcc/internal/vecmath"
	"bcc/internal/wire"
)

// The comm-plane tests pin the payload-codec subsystem: lossy codecs must be
// bit-for-bit deterministic across every runtime (the conformance axis),
// compressed runs must still train, the zero-alloc steady state must survive
// every codec, the TCP handshake must reject codec disagreement, and the
// measured wire accounting must match the frame grammar exactly.

// codecAxis is the lossy arm of the conformance matrix (raw64 is covered by
// TestScenarioConformance over the full scenario library).
func codecAxis() []CommOptions {
	return []CommOptions{
		{Payload: "f32"},
		{Payload: "topk"}, // default K = dim/16, floor 1
		{Payload: "topk", TopK: 3, Chunk: 5},
	}
}

// TestScenarioConformanceCodecs extends the conformance suite with the codec
// axis: under a lossy payload codec, the live channel runtime and BOTH tcp
// frame encodings must reproduce the sim reference bit for bit — the lossy
// transform is a pure function applied exactly once per payload, wherever
// each runtime's wire boundary happens to be.
func TestScenarioConformanceCodecs(t *testing.T) {
	if testing.Short() {
		t.Skip("staggered live runs sleep real time")
	}
	opts := func(tcp bool, codec string) LiveOptions {
		return LiveOptions{TimeScale: scenarioScale, Timeout: 60 * time.Second, TCP: tcp, Codec: codec}
	}
	runtimes := []engineRuntime{
		{"live", func(cfg *Config) (*Result, error) { return RunLive(cfg, opts(false, "")) }},
		{"tcp-gob", func(cfg *Config) (*Result, error) { return RunLive(cfg, opts(true, "gob")) }},
		{"tcp-wire", func(cfg *Config) (*Result, error) { return RunLive(cfg, opts(true, "wire")) }},
	}
	for _, scenario := range []string{"steady", "flaky-tail"} {
		for _, pipelined := range []bool{false, true} {
			for _, comm := range codecAxis() {
				scenario, pipelined, comm := scenario, pipelined, comm
				mode := "barrier"
				if pipelined {
					mode = "pipelined"
				}
				label := comm.Payload
				if comm.TopK != 0 || comm.Chunk != 0 {
					label = comm.Payload + "-tuned"
				}
				t.Run(scenario+"/"+mode+"/"+label, func(t *testing.T) {
					t.Parallel()
					ref := runScenarioComm(t, scenario, pipelined, comm, nil)
					if len(ref.res.Iters) != scenarioIters {
						t.Fatalf("sim completed %d iterations, want %d", len(ref.res.Iters), scenarioIters)
					}
					for _, rt := range runtimes {
						got := runScenarioComm(t, scenario, pipelined, comm, rt.run)
						if len(got.res.Iters) != len(ref.res.Iters) {
							t.Fatalf("%s completed %d iterations, sim %d", rt.name, len(got.res.Iters), len(ref.res.Iters))
						}
						for i, it := range got.res.Iters {
							want := ref.res.Iters[i]
							if it.WorkersHeard != want.WorkersHeard || it.Units != want.Units ||
								it.Bytes != want.Bytes || it.GradNorm != want.GradNorm {
								t.Errorf("%s iter %d: (K=%d units=%v bytes=%d |g|=%v), sim (K=%d units=%v bytes=%d |g|=%v)",
									rt.name, i, it.WorkersHeard, it.Units, it.Bytes, it.GradNorm,
									want.WorkersHeard, want.Units, want.Bytes, want.GradNorm)
							}
						}
						if d := vecmath.MaxAbsDiff(got.res.FinalW, ref.res.FinalW); d != 0 {
							t.Errorf("%s final weights differ from sim by %v", rt.name, d)
						}
					}
				})
			}
		}
	}
}

// TestLossyCodecsConverge checks that compressed training still optimizes:
// f32 must track the raw64 trajectory almost exactly, and top-k (a much
// coarser code) must still drive the loss well below chance.
func TestLossyCodecsConverge(t *testing.T) {
	run := func(comm CommOptions) *Result {
		t.Helper()
		cfg, _ := buildRunDim(t, "bcc", 12, 12, 3, 40, 91, Zero{}, 128)
		cfg.Comm = comm
		cfg.LossEvery = 39
		res, err := RunSim(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	raw := run(CommOptions{})
	f32 := run(CommOptions{Payload: "f32"})
	topk := run(CommOptions{Payload: "topk"}) // K = 128/16 = 8 of 128 coords

	rawLoss := raw.Iters[39].Loss
	if math.IsNaN(rawLoss) || rawLoss >= math.Ln2 {
		t.Fatalf("raw64 baseline did not train: loss %v", rawLoss)
	}
	// f32 rounds each coordinate to 24-bit mantissas; after 40 iterations the
	// trajectory stays close to full precision.
	if d := vecmath.MaxAbsDiff(f32.FinalW, raw.FinalW); d > 1e-2 {
		t.Fatalf("f32 weights drifted %v from raw64", d)
	}
	if loss := f32.Iters[39].Loss; loss > rawLoss*1.05+1e-9 {
		t.Fatalf("f32 loss %v much worse than raw64 %v", loss, rawLoss)
	}
	// Top-k keeps 1/16 of the coordinates per reply; convergence is slower
	// but the loss must still drop decisively below chance (ln 2).
	if loss := topk.Iters[39].Loss; math.IsNaN(loss) || loss >= 0.9*math.Ln2 {
		t.Fatalf("topk did not make optimization progress: loss %v (chance %v)", loss, math.Ln2)
	}
}

// TestSimZeroAllocsWithCodecs extends the steady-state zero-allocation
// invariant to the lossy codecs: quantization and top-k selection run in
// per-transport scratch (the coder's index heap, the engine's query buffer),
// so a compressed iteration allocates exactly as much as a raw64 one — zero
// per worker message.
func TestSimZeroAllocsWithCodecs(t *testing.T) {
	for _, comm := range []CommOptions{{Payload: "f32"}, {Payload: "topk"}} {
		comm := comm
		t.Run(comm.Payload, func(t *testing.T) {
			const shortIters, longIters = 2, 10
			mk := func(iters int) (*Config, *simTransport) {
				cfg, _ := buildRun(t, "bcc", 8, 8, 2, iters, 77, Zero{})
				cfg.Comm = comm
				return cfg, newSimTransport(cfg)
			}
			cfgShort, trShort := mk(shortIters)
			cfgLong, trLong := mk(longIters)
			run := func(cfg *Config, tr *simTransport) {
				if _, err := RunTransport(cfg, tr); err != nil {
					t.Fatal(err)
				}
			}
			run(cfgShort, trShort)
			run(cfgLong, trLong)
			short := testing.AllocsPerRun(10, func() { run(cfgShort, trShort) })
			long := testing.AllocsPerRun(10, func() { run(cfgLong, trLong) })
			if long > short {
				_, n, _ := cfgLong.Plan.Params()
				extraMsgs := float64((longIters - shortIters) * n)
				t.Fatalf("codec %s allocates in steady state: %.1f allocs for %d iterations vs %.1f for %d (%.3f per worker message, want 0)",
					comm.Payload, long, longIters, short, shortIters, (long-short)/extraMsgs)
			}
		})
	}
}

// TestCommOptionsValidation pins the error contract of the comm-plane knobs.
func TestCommOptionsValidation(t *testing.T) {
	cases := []struct {
		name string
		comm CommOptions
		want string
	}{
		{"unknown codec", CommOptions{Payload: "zstd"}, "unknown payload codec"},
		{"negative chunk", CommOptions{Chunk: -1}, "must be non-negative"},
		{"topk with raw64", CommOptions{TopK: 4}, "only topk keeps coordinates"},
		{"topk too large", CommOptions{Payload: "topk", TopK: 13}, "outside [1, 12]"},
		{"topk negative", CommOptions{Payload: "topk", TopK: -2}, "outside [1, 12]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.comm.Validate(12)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate(12) = %v, want error containing %q", err, tc.want)
			}
		})
	}
	for _, ok := range []CommOptions{{}, {Payload: "raw64"}, {Payload: "f32", Chunk: 9},
		{Payload: "topk"}, {Payload: "topk", TopK: 12}} {
		if err := ok.Validate(12); err != nil {
			t.Fatalf("Validate(12) rejected valid options %+v: %v", ok, err)
		}
	}
	// A run with an invalid comm config must fail at validation, not mid-run.
	cfg, _ := buildRun(t, "bcc", 8, 8, 2, 2, 50, Zero{})
	cfg.Comm = CommOptions{Payload: "zstd"}
	if _, err := RunSim(cfg); err == nil || !strings.Contains(err.Error(), "unknown payload codec") {
		t.Fatalf("RunSim with bad codec: %v", err)
	}
}

// TestTCPHandshakeRejectsCodecMismatch pins the negotiation contract: a
// worker announcing a different payload codec than the master must be
// refused at accept time, for both frame encodings.
func TestTCPHandshakeRejectsCodecMismatch(t *testing.T) {
	for _, frame := range []string{"gob", "wire"} {
		frame := frame
		t.Run(frame, func(t *testing.T) {
			cfg, _ := buildRun(t, "bcc", 8, 4, 2, 2, 51, Zero{})
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			env := WorkerEnv{
				Index: 0, Plan: cfg.Plan, Model: cfg.Model, Units: cfg.Units,
				Latency: Zero{}, TimeScale: 1e-5, Codec: frame,
				Comm: CommOptions{Payload: "f32"},
			}
			go func() { _ = DialAndServeWorker(ln.Addr().String(), env) }()
			_, err = ServeMaster(ln, 1, 5*time.Second, frame, CommOptions{Payload: "topk"}, cfg.Model.Dim())
			if err == nil || !strings.Contains(err.Error(), "payload codec mismatch") {
				t.Fatalf("mismatched handshake accepted: %v", err)
			}
		})
	}
}

// TestTCPChunkSizeInvariance pins the chunking contract end to end: the
// chunk size is streaming granularity only, so tcp-wire runs with wildly
// different chunk sizes produce bit-identical results and identical modelled
// byte counts.
func TestTCPChunkSizeInvariance(t *testing.T) {
	run := func(chunk int) *Result {
		t.Helper()
		cfg, _ := buildRunDim(t, "bcc", 8, 4, 2, 4, 52, Zero{}, 53)
		cfg.Comm = CommOptions{Payload: "f32", Chunk: chunk}
		res, err := RunLive(cfg, LiveOptions{TimeScale: 1e-5, Timeout: 30 * time.Second, TCP: true, Codec: "wire"})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(0) // wire default
	for _, chunk := range []int{1, 7, 1 << 12} {
		got := run(chunk)
		if d := vecmath.MaxAbsDiff(got.FinalW, ref.FinalW); d != 0 {
			t.Fatalf("chunk %d: final weights differ by %v", chunk, d)
		}
		if got.TotalBytes != ref.TotalBytes {
			t.Fatalf("chunk %d: modelled bytes %d, want %d", chunk, got.TotalBytes, ref.TotalBytes)
		}
	}
}

// TestWireAccountingMatchesAnalytic derives the exact number of bytes the
// wire frame grammar puts on the sockets for a fixed uncoded run and checks
// the measured per-iteration WireBytesIn/Out against it, per codec. Uncoded
// with m = n sends exactly one dense-vector message per worker and decodes
// only after all n arrive, so every frame of an iteration is consumed inside
// that iteration's accounting window.
func TestWireAccountingMatchesAnalytic(t *testing.T) {
	const (
		m, n, r  = 4, 4, 1
		dim      = 64
		iters    = 3
		topkK    = (dim + 15) / 16 // resolver default
		helloLen = 1 + 4 + 1 + 4 + 4
	)
	vecBytes := func(codec string, n, k int) int {
		switch codec {
		case "f32":
			return 4 + 4*n
		case "topk":
			return 4 + 4 + 8*k
		}
		return 4 + 8*n
	}
	for _, codec := range []string{"raw64", "f32", "topk"} {
		codec := codec
		t.Run(codec, func(t *testing.T) {
			cfg, _ := buildRunDim(t, "uncoded", m, n, r, iters, 53, Zero{}, dim)
			cfg.Comm = CommOptions{Payload: codec}
			var stats []IterStats
			cfg.Observer = ObserverFuncs{Iteration: func(st IterStats) { stats = append(stats, st) }}
			if _, err := RunLive(cfg, LiveOptions{TimeScale: 1e-5, Timeout: 30 * time.Second, TCP: true, Codec: "wire"}); err != nil {
				t.Fatal(err)
			}
			// Queries are quantized under f32 but ship dense under topk.
			qBytes := vecBytes("raw64", dim, 0)
			if codec == "f32" {
				qBytes = vecBytes("f32", dim, 0)
			}
			// One model frame per worker: type byte, iter, the active-level
			// stamp (uint32, 0 on non-retunable schemes), then the query.
			wantOut := n * (1 + 8 + 4 + qBytes)
			// One reply frame per worker: header + one message whose Vec is a
			// dim-length dense vector and whose Imag is nil (4-byte sentinel).
			msgBytes := 4 + 8 + 8 + vecBytes(codec, dim, topkK) + 4
			wantIn := n * (1 + 8 + 4 + 8 + 4 + msgBytes)
			if len(stats) != iters {
				t.Fatalf("observed %d iterations, want %d", len(stats), iters)
			}
			for _, st := range stats {
				if st.WireBytesOut != wantOut {
					t.Errorf("iter %d: WireBytesOut %d, want %d", st.Iter, st.WireBytesOut, wantOut)
				}
				if st.WireBytesIn != wantIn {
					t.Errorf("iter %d: WireBytesIn %d, want %d", st.Iter, st.WireBytesIn, wantIn)
				}
			}
		})
	}
}

// TestWireAccountingZeroOffWire pins the capability boundary: runtimes
// without real sockets report zero measured wire bytes (the modelled Bytes
// field still counts payloads).
func TestWireAccountingZeroOffWire(t *testing.T) {
	cfg, _ := buildRun(t, "bcc", 8, 8, 2, 3, 54, Zero{})
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalWireIn != 0 || res.TotalWireOut != 0 {
		t.Fatalf("sim reported wire bytes %d/%d, want 0/0", res.TotalWireIn, res.TotalWireOut)
	}
	if res.TotalBytes == 0 {
		t.Fatal("modelled payload bytes missing")
	}
	cfg2, _ := buildRun(t, "bcc", 8, 8, 2, 3, 54, Zero{})
	res2, err := RunLive(cfg2, LiveOptions{TimeScale: 1e-5, Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res2.TotalWireIn != 0 || res2.TotalWireOut != 0 {
		t.Fatalf("channel fabric reported wire bytes %d/%d, want 0/0", res2.TotalWireIn, res2.TotalWireOut)
	}
}

// TestWireAccountingPositiveOnTCP checks the other side of the boundary:
// a tcp run must report nonzero measured traffic in both directions, with
// the gob encoding strictly larger than the compact wire encoding for the
// same run.
func TestWireAccountingPositiveOnTCP(t *testing.T) {
	run := func(frame string) *Result {
		t.Helper()
		cfg, _ := buildRunDim(t, "bcc", 8, 4, 2, 3, 55, Zero{}, 64)
		res, err := RunLive(cfg, LiveOptions{TimeScale: 1e-5, Timeout: 30 * time.Second, TCP: true, Codec: frame})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	wireRes, gobRes := run("wire"), run("gob")
	if wireRes.TotalWireIn <= 0 || wireRes.TotalWireOut <= 0 {
		t.Fatalf("wire frames measured %d/%d bytes, want positive", wireRes.TotalWireIn, wireRes.TotalWireOut)
	}
	if gobRes.TotalWireIn <= wireRes.TotalWireIn {
		t.Fatalf("gob reply traffic %d not above wire %d", gobRes.TotalWireIn, wireRes.TotalWireIn)
	}
	// The modelled payload accounting must be identical across frame codecs.
	if wireRes.TotalBytes != gobRes.TotalBytes {
		t.Fatalf("modelled bytes differ across frame codecs: %d vs %d", wireRes.TotalBytes, gobRes.TotalBytes)
	}
}

// TestCodecCompressionOnWire measures the headline claim at the socket
// layer: relative to raw64, f32 must cut reply traffic by at least 40% and
// topk at K = dim/16 by at least 4x on the tcp runtime with wire frames.
func TestCodecCompressionOnWire(t *testing.T) {
	in := func(codec string) int {
		t.Helper()
		cfg, _ := buildRunDim(t, "bcc", 8, 4, 2, 4, 56, Zero{}, 1024)
		cfg.Comm = CommOptions{Payload: codec}
		res, err := RunLive(cfg, LiveOptions{TimeScale: 1e-5, Timeout: 30 * time.Second, TCP: true, Codec: "wire"})
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalWireIn
	}
	raw, f32, topk := in("raw64"), in("f32"), in("topk")
	if float64(f32) > 0.6*float64(raw) {
		t.Fatalf("f32 reply traffic %d not ≤ 60%% of raw64 %d", f32, raw)
	}
	if float64(topk) > float64(raw)/4 {
		t.Fatalf("topk reply traffic %d not ≤ 1/4 of raw64 %d", topk, raw)
	}
}

// TestQueryQuantizationMatchesWire pins the f32 determinism mechanism: the
// engine pre-quantizes the broadcast query, so the values a worker computes
// on are exactly what an f32 wire round trip would deliver.
func TestQueryQuantizationMatchesWire(t *testing.T) {
	v := []float64{1.0 / 3, -2.718281828, 1e-40, 6.5e12, math.Pi}
	q := append([]float64(nil), v...)
	wire.QuantizeF32(q)
	for i := range v {
		if want := float64(float32(v[i])); q[i] != want {
			t.Fatalf("QuantizeF32[%d] = %v, want %v", i, q[i], want)
		}
	}
}
