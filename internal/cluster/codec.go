package cluster

import (
	"encoding/gob"
	"fmt"
	"io"

	"bcc/internal/coding"
	"bcc/internal/wire"
)

// frameCodec abstracts the on-the-wire encoding of the TCP fabric's three
// frame types. Implementations are NOT safe for concurrent use; the fabric
// gives each connection direction its own codec instance.
type frameCodec interface {
	WriteHello(Hello) error
	ReadHello() (Hello, error)
	WriteModel(ModelUpdate) error
	ReadModel() (ModelUpdate, error)
	WriteReply(Reply) error
	ReadReply() (Reply, error)
}

// newFrameCodec builds a codec of the named kind over the connection.
// Supported: "gob" (default; self-describing, robust) and "wire" (compact
// hand-rolled binary, ~3-5x faster on gradient payloads). pool, if non-nil,
// backs the wire codec's reply deserialization: gradient-sized payloads are
// read straight into pooled buffers (the engine recycles them post-decode),
// so the TCP master's steady-state receive path stops allocating. cp is the
// resolved comm plane: the wire codec serializes payloads in the codec's
// compact representation, while gob applies the lossy transform in place
// before encoding (deterministically identical values, but gob's dense
// self-describing format does not shrink the bytes on the wire — only the
// wire frame codec realizes the compaction).
func newFrameCodec(name string, rw io.ReadWriter, pool *BufferPool, cp commPlane) (frameCodec, error) {
	switch name {
	case "", "gob":
		return &gobCodec{enc: gob.NewEncoder(rw), dec: gob.NewDecoder(rw), coder: cp.newCoder()}, nil
	case "wire":
		c := &wireCodec{w: wire.NewWriter(rw), r: wire.NewReader(rw)}
		c.w.SetPayload(cp.pc)
		c.r.SetPayload(cp.pc)
		if pool != nil {
			dim := pool.Dim()
			c.alloc = func(n int) []float64 {
				if n != dim {
					return nil // wire falls back to a fresh allocation
				}
				return pool.Get()
			}
		}
		return c, nil
	default:
		return nil, fmt.Errorf("cluster: unknown codec %q (want gob or wire)", name)
	}
}

// ---------------------------------------------------------------------------
// gob
// ---------------------------------------------------------------------------

type gobCodec struct {
	enc *gob.Encoder
	dec *gob.Decoder
	// coder applies the lossy payload transform during serialization (nil for
	// raw64). gob ships the transformed vector dense, so decoded values match
	// the wire codec bit for bit even though gob's byte count doesn't shrink.
	coder *wire.VecCoder
}

func (c *gobCodec) WriteHello(h Hello) error { return c.enc.Encode(&h) }
func (c *gobCodec) ReadHello() (Hello, error) {
	var h Hello
	err := c.dec.Decode(&h)
	return h, err
}
func (c *gobCodec) WriteModel(m ModelUpdate) error { return c.enc.Encode(&m) }
func (c *gobCodec) ReadModel() (ModelUpdate, error) {
	var m ModelUpdate
	err := c.dec.Decode(&m)
	return m, err
}
func (c *gobCodec) WriteReply(r Reply) error {
	// The payload buffers are owned by this worker until the frame is
	// serialized (the receiver gets gob's fresh copies), so transforming in
	// place here is safe and puts the lossy step at the same wire boundary
	// the other runtimes use.
	applyReplyCodec(c.coder, r.Msgs)
	return c.enc.Encode(&r)
}
func (c *gobCodec) ReadReply() (Reply, error) {
	var r Reply
	err := c.dec.Decode(&r)
	return r, err
}

// ---------------------------------------------------------------------------
// wire
// ---------------------------------------------------------------------------

type wireCodec struct {
	w *wire.Writer
	r *wire.Reader
	// alloc supplies pooled payload buffers to ReadReplyInto; nil means
	// plain allocation.
	alloc wire.VecAlloc
	// scratch is the reusable wire-level reply frame: its Msgs backing array
	// is recycled across reads (the payload buffers inside are handed off to
	// the cluster-level Reply, which the master owns).
	scratch wire.Reply
}

func (c *wireCodec) WriteHello(h Hello) error {
	codec, err := wire.ParsePayloadCodec(h.Payload)
	if err != nil {
		return err
	}
	return c.w.WriteHello(wire.Hello{Worker: h.Worker, Codec: codec, TopK: h.TopK, Chunk: h.Chunk, Shards: h.Shards})
}

func (c *wireCodec) ReadHello() (Hello, error) {
	if err := c.expect(wire.KindHello); err != nil {
		return Hello{}, err
	}
	h, err := c.r.ReadHello()
	return Hello{Worker: h.Worker, Payload: h.Codec.String(), TopK: h.TopK, Chunk: h.Chunk, Shards: h.Shards}, err
}

func (c *wireCodec) WriteModel(m ModelUpdate) error {
	return c.w.WriteModel(wire.Model{Iter: m.Iter, Level: m.Level, Query: m.Query})
}

func (c *wireCodec) ReadModel() (ModelUpdate, error) {
	if err := c.expect(wire.KindModel); err != nil {
		return ModelUpdate{}, err
	}
	m, err := c.r.ReadModel()
	return ModelUpdate{Iter: m.Iter, Level: m.Level, Query: m.Query}, err
}

func (c *wireCodec) WriteReply(r Reply) error {
	out := wire.Reply{Iter: r.Iter, Worker: r.Worker, Compute: r.Compute}
	out.Msgs = make([]wire.Msg, len(r.Msgs))
	for i, m := range r.Msgs {
		out.Msgs[i] = wire.Msg{From: m.From, Tag: m.Tag, Units: m.Units, Vec: m.Vec, Imag: m.Imag}
	}
	return c.w.WriteReply(out)
}

func (c *wireCodec) ReadReply() (Reply, error) {
	if err := c.expect(wire.KindReply); err != nil {
		return Reply{}, err
	}
	if err := c.r.ReadReplyInto(&c.scratch, c.alloc); err != nil {
		return Reply{}, err
	}
	in := &c.scratch
	rep := Reply{Iter: in.Iter, Worker: in.Worker, Compute: in.Compute}
	rep.Msgs = make([]coding.Message, len(in.Msgs))
	for i, m := range in.Msgs {
		rep.Msgs[i] = coding.Message{From: m.From, Tag: m.Tag, Units: m.Units, Vec: m.Vec, Imag: m.Imag}
	}
	return rep, nil
}

func (c *wireCodec) expect(kind byte) error {
	k, err := c.r.NextKind()
	if err != nil {
		return err
	}
	if k != kind {
		return fmt.Errorf("cluster: expected frame kind %d, got %d", kind, k)
	}
	return nil
}
