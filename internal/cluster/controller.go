package cluster

import (
	"bcc/internal/coding"
	"bcc/internal/faults"
)

// Adaptive redundancy: the engine's closed-loop re-tuning of a Retunable
// plan (coding.Retunable — today the nested code family). At the top of
// every iteration, BEFORE the query goes out, the engine hands the
// configured Controller a Telemetry snapshot and activates the level it
// returns (clamped to the family and floored at the MinResponders-safe
// level for the iteration's reachable fleet). Workers learn the level from
// the broadcast itself (ModelUpdate.Level), so an iteration is encoded and
// decoded at one agreed level on every runtime.
//
// Determinism contract: Telemetry is assembled exclusively from
// runtime-independent inputs — the deterministic fault plan's pure
// per-iteration queries, the configured dead set, and the previous
// iteration's realized threshold (itself pinned identical across runtimes
// by the conformance suite). A controller that is a pure function of its
// Telemetry sequence therefore makes the same decisions on sim, live and
// tcp, and adaptive runs stay bit-identical across runtimes. Controllers
// must not consult wall clocks, real arrival timings or other
// runtime-dependent signals.

// Controller picks the redundancy level for each iteration of a run with a
// Retunable plan. Retune is called once per iteration on the engine
// goroutine (never concurrently); the returned level is clamped to
// [MinLevel, MaxLevel] and raised to the MinResponders-safe floor before it
// is applied, so a controller may express intent without re-implementing
// the safety rails. Configs whose Plan is not Retunable ignore the
// Controller (the documented fixed-level default).
type Controller interface {
	Retune(t Telemetry) int
}

// Telemetry is the deterministic per-iteration signal a Controller decides
// from. All counts partition the fleet: a worker appears in at most one of
// Down/Lost/Slow (priority in that order).
type Telemetry struct {
	// Iter is the iteration about to run.
	Iter int
	// N is the fleet size.
	N int
	// Reachable counts workers that can contribute to this iteration's
	// decode: alive, not crashed and not scheduled to be partitioned or
	// burst-dropped.
	Reachable int
	// Down counts workers that do no work this iteration: configured dead
	// or crashed by the fault plan.
	Down int
	// Lost counts workers whose transmission is scheduled to be lost on the
	// master's side (partition window or drop burst): they compute but will
	// not contribute.
	Lost int
	// Slow counts workers inside a scheduled slowdown window: they will
	// contribute, but late.
	Slow int
	// PrevHeard is the previous iteration's realized recovery threshold
	// (IterStats.WorkersHeard), 0 before the first iteration.
	PrevHeard int
	// MinLevel, MaxLevel and Level describe the Retunable family's bounds
	// and currently active level.
	MinLevel, MaxLevel, Level int
}

// gatherTelemetry assembles the iteration's controller signal from the
// fault plan's pure queries and the dead set — O(n), allocation-free, and
// identical on every runtime.
func gatherTelemetry(plan *faults.Plan, dead map[int]bool, n, iter, reachable, prevHeard int, rp coding.Retunable) Telemetry {
	t := Telemetry{
		Iter:      iter,
		N:         n,
		Reachable: reachable,
		PrevHeard: prevHeard,
		MinLevel:  rp.MinLevel(),
		MaxLevel:  rp.MaxLevel(),
		Level:     rp.Level(),
	}
	for w := 0; w < n; w++ {
		switch {
		case dead[w] || !plan.Active(w, iter):
			t.Down++
		case !plan.Contributing(w, iter):
			t.Lost++
		case plan.SlowFactor(w, iter) > 1:
			t.Slow++
		}
	}
	return t
}

// AIMDController is the built-in straggler-tracking controller: it targets
// the cheapest level whose deterministic threshold covers the observed
// straggler tail (Down + Lost + Slow workers) with a safety margin — level
// L tolerates L-1 missing or late workers, so the target is
// tail + Margin + 1. Increases apply immediately (a thinning or slowing
// fleet must never stall waiting for redundancy); decreases are damped,
// one level per Window consecutive iterations of observed slack, so a
// single quiet round does not flap the code back down.
//
// The controller is a pure function of its Telemetry sequence (it reads no
// clocks and draws no randomness), so adaptive runs are bit-identical
// across the sim, live and tcp runtimes for a given (seed, scenario).
type AIMDController struct {
	// Margin is how many extra stragglers beyond the observed tail the
	// active level must tolerate (<= 0 means the default 1).
	Margin int
	// Window is how many consecutive iterations of slack precede each
	// one-level decrease (<= 0 means the default 3).
	Window int

	quiet int // consecutive iterations with target below the active level
}

// Retune implements Controller.
func (c *AIMDController) Retune(t Telemetry) int {
	margin := c.Margin
	if margin <= 0 {
		margin = 1
	}
	window := c.Window
	if window <= 0 {
		window = 3
	}
	target := 1 + t.Down + t.Lost + t.Slow + margin
	if target < t.MinLevel {
		target = t.MinLevel
	}
	if target > t.MaxLevel {
		target = t.MaxLevel
	}
	switch {
	case target > t.Level:
		c.quiet = 0
		return target
	case target < t.Level:
		c.quiet++
		if c.quiet >= window {
			c.quiet = 0
			return t.Level - 1
		}
		return t.Level
	default:
		c.quiet = 0
		return t.Level
	}
}

// FixedLevelController pins a Retunable plan at one level for the whole run
// — the explicit form of the no-controller default, useful for racing a
// fixed nested level against the adaptive controller under one plan.
type FixedLevelController struct{ Level int }

// Retune implements Controller.
func (c FixedLevelController) Retune(t Telemetry) int { return c.Level }
