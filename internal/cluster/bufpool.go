package cluster

import "sync"

// BufferPool recycles the gradient-sized []float64 payload buffers that flow
// through the iteration data plane: workers (or the TCP codec) draw message
// payloads from the pool, the master returns them once an iteration's decode
// is finished. In steady state every iteration therefore runs on the same
// handful of buffers and the per-message path performs no heap allocations.
//
// Ownership protocol (see also the package doc's "Performance" section):
//
//  1. An encoder (Plan.EncodeInto) or the wire codec draws a buffer and
//     fully overwrites it — Buf returns arbitrary contents, never zeroes.
//  2. The buffer travels inside a coding.Message to the master. From that
//     moment the producer must not touch it again.
//  3. The master (engine loop or transport) returns it via Put after the
//     iteration that consumed it has decoded — never earlier, because the
//     decoder may retain the buffer until DecodeInto runs.
//  4. Messages that never reach the decoder (dropped, stale, or arriving
//     after the decode point) are returned by whichever component discarded
//     them.
//
// The free list is a mutex-guarded stack rather than a sync.Pool: putting a
// slice header into sync.Pool boxes it into an interface, which allocates on
// every Put and would defeat the zero-allocation steady state the pool
// exists for. The stack's backing array is retained across iterations, so
// steady-state Get/Put touch no allocator at all. A nil *BufferPool is valid
// and degrades to plain allocation.
type BufferPool struct {
	dim  int
	max  int // free-list cap: beyond it, Put drops the buffer for the GC
	mu   sync.Mutex
	free [][]float64
}

// defaultPoolCap bounds the free list when the caller does not size it; a
// run's in-flight buffer count is a few per alive worker, so this covers
// large clusters while keeping worst-case retention modest.
const defaultPoolCap = 1024

// NewBufferPool creates a pool of length-dim buffers retaining at most max
// free buffers (max <= 0 selects a default). The cap matters when producers
// and consumers are unbalanced — e.g. a master receiving from out-of-process
// workers returns buffers nobody ever draws — so retention stays bounded.
func NewBufferPool(dim, max int) *BufferPool {
	if dim <= 0 {
		panic("cluster: NewBufferPool with non-positive dim")
	}
	if max <= 0 {
		max = defaultPoolCap
	}
	return &BufferPool{dim: dim, max: max}
}

// Dim returns the pooled buffer length.
func (p *BufferPool) Dim() int {
	if p == nil {
		return 0
	}
	return p.dim
}

// Get returns a length-dim buffer with arbitrary contents; the caller must
// overwrite every element. Falls back to a fresh allocation when the pool is
// empty or nil.
func (p *BufferPool) Get() []float64 {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return b
	}
	p.mu.Unlock()
	return make([]float64, p.dim)
}

// Put returns a buffer to the pool. Nil and foreign-sized buffers (e.g. a
// query vector, or payloads of a differently-sized run) are dropped
// silently, so callers can recycle unconditionally; so are buffers beyond
// the free-list cap.
func (p *BufferPool) Put(b []float64) {
	if p == nil || len(b) != p.dim {
		return
	}
	p.mu.Lock()
	if len(p.free) < p.max {
		p.free = append(p.free, b)
	}
	p.mu.Unlock()
}

// Buf implements coding.Buffers, letting the pool be handed directly to
// Plan.EncodeInto. Requests for foreign sizes fall back to allocation.
func (p *BufferPool) Buf(n int) []float64 {
	if p == nil || n != p.dim {
		return make([]float64, n)
	}
	return p.Get()
}
