package cluster

import (
	"fmt"

	"bcc/internal/coding"
	"bcc/internal/wire"
)

// CommOptions configures the comm plane's payload codec — how gradient
// payloads are represented between workers and the master. The zero value is
// raw64 (dense float64, bit-exact, today's format). The same options must be
// given to the master's Config and to every out-of-process worker's
// WorkerEnv; the TCP handshake verifies they agree.
//
// Lossy codecs ("f32", "topk") are deterministic across runtimes: the
// transform is a pure function of the payload values, applied exactly once
// per payload at each runtime's wire boundary (during serialization on TCP,
// in process on sim and channels), so the same spec + seed + codec produces
// bit-identical results on sim, live and tcp, barrier or pipelined.
type CommOptions struct {
	// Payload names the codec: "" or "raw64" (default, lossless), "f32"
	// (float32 quantization of query and reply vectors), or "topk" (keep the
	// TopK largest-magnitude reply coordinates, shipped index+value style;
	// queries stay dense).
	Payload string
	// TopK is the number of coordinates kept per reply vector under the
	// "topk" codec; 0 means dim/16 rounded up (the K = p/16 operating point).
	// Setting it with any other codec is an error.
	TopK int
	// Chunk is the wire framing chunk size in float64 elements (0 = the wire
	// default, 512). Chunking is staging + streaming granularity only — the
	// byte stream is identical for every chunk size — but master and TCP
	// workers must still agree so their streaming decode slices align.
	Chunk int
}

// Validate checks the options against a model dimension without building a
// run; Config.validate and core's Spec validation both funnel through it.
func (o CommOptions) Validate(dim int) error {
	_, err := o.resolve(dim)
	return err
}

// MaxShards returns the largest useful MasterShards value for a model of
// the given dimension under these options: the number of wire chunks the
// model splits into. Configuring more shards than that only produces empty
// tail shards (see effectiveShards); core's Spec validation rejects such
// specs using this bound.
func (o CommOptions) MaxShards(dim int) (int, error) {
	cp, err := o.resolve(dim)
	if err != nil {
		return 0, err
	}
	return effectiveShards(dim, dim+1, cp.pc.ChunkElems()), nil
}

// commPlane is the resolved comm-plane configuration of one run: the wire
// payload config with a concrete K, plus the payload-byte fraction relative
// to raw64 that the sim and live runtimes fold into their upload and ingress
// latency draws.
type commPlane struct {
	pc wire.PayloadConfig
	// frac is reply payload bytes divided by raw64 payload bytes at the
	// model dimension: 1 for raw64, 0.5 for f32, K/dim for topk. Latency
	// models charge upload and ingress per unit; scaling the units argument
	// by frac makes compressed payloads move proportionally faster, so the
	// coded-redundancy vs compression tradeoff shows up in modelled
	// wall-clock identically on every runtime.
	frac float64
}

func (o CommOptions) resolve(dim int) (commPlane, error) {
	codec, err := wire.ParsePayloadCodec(o.Payload)
	if err != nil {
		return commPlane{}, fmt.Errorf("cluster: %w", err)
	}
	if o.Chunk < 0 {
		return commPlane{}, fmt.Errorf("cluster: Comm.Chunk %d must be non-negative", o.Chunk)
	}
	k := 0
	if codec == wire.PayloadTopK {
		k = o.TopK
		if k == 0 {
			k = (dim + 15) / 16
			if k < 1 {
				k = 1
			}
		}
		if k < 0 || k > dim {
			return commPlane{}, fmt.Errorf("cluster: Comm.TopK %d outside [1, %d]", o.TopK, dim)
		}
	} else if o.TopK != 0 {
		return commPlane{}, fmt.Errorf("cluster: Comm.TopK %d set but payload codec is %q (only topk keeps coordinates)", o.TopK, codec)
	}
	pc := wire.PayloadConfig{Codec: codec, TopK: k, Chunk: o.Chunk}
	frac := 1.0
	if dim > 0 {
		frac = float64(pc.VecBytes(dim)) / float64(8*dim)
	}
	return commPlane{pc: pc, frac: frac}, nil
}

// lossy reports whether reply payloads are transformed at all.
func (p commPlane) lossy() bool { return p.pc.Codec != wire.PayloadRaw64 }

// lossyQuery reports whether model queries are transformed (f32 only: topk
// ships queries dense).
func (p commPlane) lossyQuery() bool { return p.pc.Codec == wire.PayloadF32 }

// newCoder returns a fresh in-process transform coder, or nil for raw64.
// Coders hold selection scratch and are per-goroutine.
func (p commPlane) newCoder() *wire.VecCoder {
	if !p.lossy() {
		return nil
	}
	return wire.NewVecCoder(p.pc)
}

// msgBytes is the modelled payload size of a message in bytes under this
// plane's codec — element bytes only, excluding framing prefixes, exactly
// the accounting IterStats.Bytes has always used (raw64 reproduces the old
// 8 bytes/float64 count bit-for-bit).
func (p commPlane) msgBytes(msg coding.Message) int {
	return p.pc.VecBytes(len(msg.Vec)) + p.pc.VecBytes(len(msg.Imag))
}

// applyReplyCodec runs every payload of msgs through the canonical lossy
// transform in place. A nil coder (raw64) is a no-op. The runtimes that
// never serialize call this at their wire-equivalent boundary: the sim
// transport right after encoding, the channel fabric in its send path. The
// TCP fabrics instead transform during (gob) or as (wire) serialization —
// each payload is transformed exactly once on every runtime.
func applyReplyCodec(coder *wire.VecCoder, msgs []coding.Message) {
	if coder == nil {
		return
	}
	for _, m := range msgs {
		coder.ApplyReply(m.Vec)
		coder.ApplyReply(m.Imag)
	}
}

// hello builds the handshake frame a TCP worker announces itself with: its
// index plus the resolved comm-plane parameters (effective chunk, so "0 =
// default" and an explicit 512 agree).
func (p commPlane) hello(worker int) Hello {
	return Hello{
		Worker:  worker,
		Payload: p.pc.Codec.String(),
		TopK:    p.pc.TopK,
		Chunk:   p.pc.ChunkElems(),
	}
}

// checkHello verifies a worker's announced comm plane against the master's.
// A silent mismatch would corrupt every payload (the master would parse f32
// bytes as float64s, or scatter top-k pairs it never receives), so the
// handshake is the last safe moment to fail.
func (p commPlane) checkHello(h Hello) error {
	if h.Payload != p.pc.Codec.String() {
		return fmt.Errorf("payload codec mismatch: worker %q, master %q", h.Payload, p.pc.Codec)
	}
	if h.TopK != p.pc.TopK {
		return fmt.Errorf("top-k mismatch: worker %d, master %d", h.TopK, p.pc.TopK)
	}
	if h.Chunk != p.pc.ChunkElems() {
		return fmt.Errorf("chunk size mismatch: worker %d, master %d", h.Chunk, p.pc.ChunkElems())
	}
	return nil
}

// wireCounter is the optional transport capability behind measured comm
// accounting: transports whose bytes genuinely cross a wire report running
// totals counted at the connection layer. The engine snapshots the totals
// around each iteration and records the deltas in IterStats.WireBytesIn/Out;
// transports without the capability (sim) or without real sockets (channel
// fabric) report zeros.
type wireCounter interface {
	// WireTotals returns cumulative bytes received by and sent from the
	// master's connections since the transport was built.
	WireTotals() (in, out int64)
}
