package cluster

import (
	"strings"
	"testing"

	"bcc/internal/coding"
	"bcc/internal/faults"
	"bcc/internal/vecmath"
)

// The nested-adaptive axis of the conformance matrix: a run whose redundancy
// level is re-tuned mid-flight by the AIMD controller must stay bit-identical
// across the sim, live and tcp runtimes, in barrier and pipelined mode. The
// controller reads only the fault plan's pure per-iteration schedule (never
// clocks), so the level trajectory is a pure function of (seed, scenario) and
// every runtime must realize the same one.

// adaptiveSwitchPlan is a fault schedule engineered to force level switches
// both ways within 8 iterations: the tail workers are slow for iterations
// 0-1 (holding the level up), quiet through 2-4 (the AIMD window expires
// twice, stepping the level down), then slow again at 5-6 (an immediate
// additive jump back up). Factors 6 and 8 on the two highest staggers keep
// every slowed arrival distinct from every unslowed one, so arrival order
// stays deterministic on the live runtimes.
func adaptiveSwitchPlan() *faults.Plan {
	return &faults.Plan{N: scenarioN,
		Slowdowns: []faults.Slowdown{
			{Worker: 6, From: 0, Every: 1000, Span: 2, Factor: 8},
			{Worker: 7, From: 0, Every: 1000, Span: 2, Factor: 6},
			{Worker: 6, From: 5, Every: 1000, Span: 2, Factor: 8},
			{Worker: 7, From: 5, Every: 1000, Span: 2, Factor: 6},
		},
	}
}

// runAdaptive executes one nested-adaptive run: the scenario topology with
// the "nested" family instead of fixed bcc, the AIMD controller on the
// engine, and the given fault plan. run is nil for the sim reference.
func runAdaptive(t *testing.T, plan *faults.Plan, iters int, pipelined bool, run func(cfg *Config) (*Result, error)) scenarioRun {
	t.Helper()
	cfg, _ := buildRun(t, "nested", scenarioM, scenarioN, scenarioR, iters, scenarioSeed,
		staggered(scenarioN, 4*scenarioR))
	cfg.Faults = plan
	cfg.Pipelined = pipelined
	cfg.DecodeParallelism = 2
	cfg.Controller = &AIMDController{Window: 2}
	var events []string
	cfg.Observer = ObserverFuncs{Fault: func(ev faults.Event) {
		events = append(events, ev.String())
	}}
	if run == nil {
		run = RunSim
	}
	res, err := run(cfg)
	if err != nil {
		t.Fatalf("nested-adaptive run: %v", err)
	}
	return scenarioRun{res: res, events: events}
}

// TestScenarioNestedAdaptiveConformance pins the mid-run level switch across
// runtimes: under the engineered switch schedule the sim reference must
// actually re-tune (both down and back up), and live and tcp-wire must
// reproduce the identical per-iteration level trajectory, recovery stats,
// bit-identical weights and fault-event trace, in barrier and pipelined mode.
func TestScenarioNestedAdaptiveConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("staggered live runs sleep real time")
	}
	const iters = 8
	for _, pipelined := range []bool{false, true} {
		pipelined := pipelined
		mode := "barrier"
		if pipelined {
			mode = "pipelined"
		}
		t.Run(mode, func(t *testing.T) {
			t.Parallel()
			ref := runAdaptive(t, adaptiveSwitchPlan(), iters, pipelined, nil)
			if len(ref.res.Iters) != iters {
				t.Fatalf("sim completed %d iterations, want %d", len(ref.res.Iters), iters)
			}
			if ref.res.LevelSwitches < 2 {
				t.Fatalf("switch schedule produced only %d level switches; the adaptive axis is not exercised", ref.res.LevelSwitches)
			}
			down, up := false, false
			for i := 1; i < len(ref.res.Iters); i++ {
				prev, cur := ref.res.Iters[i-1].Level, ref.res.Iters[i].Level
				down = down || cur < prev
				up = up || cur > prev
			}
			if !down || !up {
				t.Fatalf("level trajectory %v never switched both ways", levelsOf(ref.res))
			}
			for _, rt := range scenarioRuntimes() {
				got := runAdaptive(t, adaptiveSwitchPlan(), iters, pipelined, rt.run)
				if len(got.res.Iters) != len(ref.res.Iters) {
					t.Fatalf("%s completed %d iterations, sim %d", rt.name, len(got.res.Iters), len(ref.res.Iters))
				}
				for i, it := range got.res.Iters {
					want := ref.res.Iters[i]
					if it.Level != want.Level || it.WorkersHeard != want.WorkersHeard ||
						it.Units != want.Units || it.Bytes != want.Bytes || it.GradNorm != want.GradNorm {
						t.Errorf("%s iter %d: (L=%d K=%d units=%v bytes=%d |g|=%v), sim (L=%d K=%d units=%v bytes=%d |g|=%v)",
							rt.name, i, it.Level, it.WorkersHeard, it.Units, it.Bytes, it.GradNorm,
							want.Level, want.WorkersHeard, want.Units, want.Bytes, want.GradNorm)
					}
				}
				if got.res.LevelSwitches != ref.res.LevelSwitches {
					t.Errorf("%s counted %d level switches, sim %d", rt.name, got.res.LevelSwitches, ref.res.LevelSwitches)
				}
				if d := vecmath.MaxAbsDiff(got.res.FinalW, ref.res.FinalW); d != 0 {
					t.Errorf("%s final weights differ from sim by %v", rt.name, d)
				}
				if gotTr, wantTr := strings.Join(got.events, "\n"), strings.Join(ref.events, "\n"); gotTr != wantTr {
					t.Errorf("%s fault-event trace:\n%s\nsim saw:\n%s", rt.name, gotTr, wantTr)
				}
			}
		})
	}
}

// TestScenarioNestedAdaptiveLibrary runs the nested-adaptive stack through a
// named library scenario on every runtime — the same conformance checks, with
// the scenario generator (rather than a hand-built plan) driving telemetry.
func TestScenarioNestedAdaptiveLibrary(t *testing.T) {
	if testing.Short() {
		t.Skip("staggered live runs sleep real time")
	}
	plan, err := faults.Scenario("flaky-tail", scenarioN, 9)
	if err != nil {
		t.Fatal(err)
	}
	ref := runAdaptive(t, plan, scenarioIters, false, nil)
	for _, rt := range scenarioRuntimes() {
		got := runAdaptive(t, plan, scenarioIters, false, rt.run)
		for i, it := range got.res.Iters {
			want := ref.res.Iters[i]
			if it.Level != want.Level || it.WorkersHeard != want.WorkersHeard || it.GradNorm != want.GradNorm {
				t.Errorf("%s iter %d: (L=%d K=%d |g|=%v), sim (L=%d K=%d |g|=%v)",
					rt.name, i, it.Level, it.WorkersHeard, it.GradNorm, want.Level, want.WorkersHeard, want.GradNorm)
			}
		}
		if d := vecmath.MaxAbsDiff(got.res.FinalW, ref.res.FinalW); d != 0 {
			t.Errorf("%s final weights differ from sim by %v", rt.name, d)
		}
	}
}

// TestNestedAdaptiveDeterministicRerun pins that two identical adaptive sim
// runs realize the same level trajectory and weights — the controller holds
// no hidden clock or map-order dependence.
func TestNestedAdaptiveDeterministicRerun(t *testing.T) {
	a := runAdaptive(t, adaptiveSwitchPlan(), 8, false, nil)
	b := runAdaptive(t, adaptiveSwitchPlan(), 8, false, nil)
	la, lb := levelsOf(a.res), levelsOf(b.res)
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("level trajectories differ between identical runs:\n%v\n%v", la, lb)
		}
	}
	if d := vecmath.MaxAbsDiff(a.res.FinalW, b.res.FinalW); d != 0 {
		t.Fatalf("final weights differ between identical runs by %v", d)
	}
	if len(a.events) == 0 || strings.Join(a.events, "\n") != strings.Join(b.events, "\n") {
		t.Fatalf("fault traces differ or are empty:\n%v\n%v", a.events, b.events)
	}
}

func levelsOf(res *Result) []int {
	ls := make([]int, len(res.Iters))
	for i, it := range res.Iters {
		ls[i] = it.Level
	}
	return ls
}

// TestSimZeroAllocsWithController pins that the adaptive control plane —
// telemetry gathering, the AIMD decision, SetLevel, the per-level decoder
// snapshot — adds ZERO steady-state allocations per iteration on top of the
// nested data plane, measured by differencing two run lengths over the same
// deterministic fault schedule (the engine hook runs every iteration, so a
// per-iteration allocation anywhere in it would show).
func TestSimZeroAllocsWithController(t *testing.T) {
	const shortIters, longIters = 2, 10
	plan := &faults.Plan{N: 8, Seed: 6,
		Crashes:   []faults.Crash{{Worker: 0, At: 1, RestartAfter: 2}},
		Slowdowns: []faults.Slowdown{{Worker: 3, From: 0, Every: 3, Span: 1, Factor: 4}},
	}
	mk := func(iters int) (*Config, *simTransport) {
		cfg, _ := buildRun(t, "nested", 8, 8, 4, iters, 81, Zero{})
		cfg.Faults = plan
		return cfg, newSimTransport(cfg)
	}
	cfgShort, trShort := mk(shortIters)
	cfgLong, trLong := mk(longIters)
	run := func(cfg *Config, tr *simTransport) {
		// A fresh controller and a reset level per run keep every repeat's
		// trajectory identical; both are per-run fixed costs that cancel in
		// the differencing.
		cfg.Plan.(coding.Retunable).SetLevel(4)
		cfg.Controller = &AIMDController{Window: 2}
		if _, err := RunTransport(cfg, tr); err != nil {
			t.Fatal(err)
		}
	}
	run(cfgShort, trShort)
	run(cfgLong, trLong)
	short := testing.AllocsPerRun(10, func() { run(cfgShort, trShort) })
	long := testing.AllocsPerRun(10, func() { run(cfgLong, trLong) })
	if long > short {
		perIter := (long - short) / float64(longIters-shortIters)
		t.Fatalf("adaptive iterations allocate: %.1f allocs for %d iterations vs %.1f for %d (%.2f allocs/iter, want 0)",
			long, longIters, short, shortIters, perIter)
	}
}
