package cluster

import (
	"context"
	"net"
	"runtime"
	"testing"
	"time"
)

// TestPoolCapBoundsRetention: Config.PoolCap bounds the run's BufferPool
// free list — buffers recycled past the cap spill to the GC instead of
// being retained, so one large-p job cannot starve concurrent tenants.
func TestPoolCapBoundsRetention(t *testing.T) {
	cfg, _ := buildRun(t, "bcc", 8, 8, 2, 5, 31, nil)
	cfg.PoolCap = 3
	pool := cfg.Buffers()
	if pool.max != 3 {
		t.Fatalf("pool cap = %d, want the configured 3", pool.max)
	}
	dim := cfg.Model.Dim()
	for i := 0; i < 10; i++ {
		pool.Put(make([]float64, dim))
	}
	pool.mu.Lock()
	free := len(pool.free)
	pool.mu.Unlock()
	if free > 3 {
		t.Fatalf("free list holds %d buffers, cap is 3", free)
	}
	// A tiny cap costs allocations, never correctness: the run still
	// completes and decodes every iteration.
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iters) != 5 {
		t.Fatalf("capped-pool run completed %d/5 iterations", len(res.Iters))
	}
}

// TestPoolCapValidate: a negative cap is a configuration error.
func TestPoolCapValidate(t *testing.T) {
	cfg, _ := buildRun(t, "bcc", 8, 8, 2, 5, 31, nil)
	cfg.PoolCap = -1
	if _, err := RunSim(cfg); err == nil {
		t.Fatal("negative PoolCap accepted")
	}
}

// TestDrainFabricWaitsForWorkers drives a run over a caller-owned TCP
// fabric (the cmd/bcccluster and service-daemon ownership pattern) and
// asserts DrainFabric's contract: after the engine returns, the drain waits
// until every worker has closed its side — so the master's Close cannot
// reset a connection with a reply still in flight — and no reader or worker
// goroutines leak.
func TestDrainFabricWaitsForWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg, _ := buildRun(t, "bcc", 6, 6, 2, 4, 33, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	for w := 0; w < 6; w++ {
		env := WorkerEnv{
			Index: w, Plan: cfg.Plan, Model: cfg.Model, Units: cfg.Units,
			Latency: Zero{}, Codec: "wire", Comm: cfg.Comm,
		}
		go func() { _ = DialAndServeWorker(addr, env) }()
	}
	fab, err := ServeMasterPool(ln, 6, 10*time.Second, "wire", cfg.Buffers(), cfg.Comm, cfg.Model.Dim())
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunWithFabricContext(context.Background(), cfg, fab, LiveOptions{TCP: true, Codec: "wire"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iters) != 4 {
		t.Fatalf("completed %d/4 iterations", len(res.Iters))
	}
	if res.TotalWireIn <= 0 || res.TotalWireOut <= 0 {
		t.Fatalf("measured wire bytes missing: in=%d out=%d", res.TotalWireIn, res.TotalWireOut)
	}
	if !DrainFabric(fab, 10*time.Second) {
		t.Fatal("fabric did not drain: workers never closed their side")
	}
	if err := fab.Close(); err != nil {
		t.Fatal(err)
	}
	waitNoExtraGoroutines(t, before)
}
